// Allocation-regression tests for the firing hot path. The numbers
// asserted here are the documented steady-state budgets; if a change
// pushes past them, either tighten the code or consciously re-document
// the budget (see README.md, "Memory model").
package datacell

import (
	"testing"
	"time"

	"datacell/internal/bat"
	"datacell/internal/vector"
)

// TestSingleQueryFiringAllocs drives the canonical single-stream
// scan → predicate → project → emit chain through the public engine and
// asserts the steady-state allocation budget of one full cycle
// (Append + firing + result drain).
//
// Documented budget: ~50 allocations per cycle independent of batch size
// (headers, the firing env, scheduler bookkeeping — all O(1); every
// per-tuple buffer comes from the execution arena or basket ping-pong
// relations). The pre-arena engine cost >10000 allocations for the same
// cycle at batch 1000. The assert allows 150 to absorb sync.Pool refills
// after a mid-run GC.
func TestSingleQueryFiringAllocs(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (v int, w int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select t.v, t.w from [select * from s] t where t.v < 100`); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Out("q")
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{int64(i % 200), int64(i)}
	}
	var spare *bat.Relation
	cycle := func() {
		if err := eng.Append("s", rows...); err != nil {
			t.Fatal(err)
		}
		if err := eng.RunSync(); err != nil {
			t.Fatal(err)
		}
		out.Lock()
		spare = out.ExchangeLocked(spare)
		out.Unlock()
	}
	for i := 0; i < 5; i++ { // warm arena, ping-pong relations, pools
		cycle()
	}
	allocs := testing.AllocsPerRun(100, cycle)
	if allocs > 150 {
		t.Fatalf("single-query firing cycle allocates %.1f per run, budget 150 (steady state ~50)", allocs)
	}
	// The query must still compute the right thing.
	cycle()
	if spare.Len() != 500 {
		t.Fatalf("firing produced %d rows, want 500", spare.Len())
	}
}

// TestSamplingAddsNoFiringAllocs pins the tentpole's "near-zero hot-path
// cost" claim: enabling adaptive parallelism (controller installed,
// busy-clock instrumentation live, sampler baselines established) must
// not add a single allocation to the steady-state firing cycle. The
// sampler itself runs between measurements, exactly as the metronome
// does between firings in production.
func TestSamplingAddsNoFiringAllocs(t *testing.T) {
	run := func(auto bool) float64 {
		eng := New()
		if _, err := eng.Exec(`create basket s (v int, w int)`); err != nil {
			t.Fatal(err)
		}
		if err := eng.RegisterQuery("q", `select t.v, t.w from [select * from s] t where t.v < 100`); err != nil {
			t.Fatal(err)
		}
		if auto {
			if err := eng.SetParallelismAuto(); err != nil {
				t.Fatal(err)
			}
		}
		out, err := eng.Out("q")
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]Row, 1000)
		for i := range rows {
			rows[i] = Row{int64(i % 200), int64(i)}
		}
		var spare *bat.Relation
		cycle := func() {
			if err := eng.Append("s", rows...); err != nil {
				t.Fatal(err)
			}
			if err := eng.RunSync(); err != nil {
				t.Fatal(err)
			}
			out.Lock()
			spare = out.ExchangeLocked(spare)
			out.Unlock()
		}
		now := time.Now()
		for i := 0; i < 5; i++ {
			cycle()
			if auto {
				// Establish sampler baselines and the controller, so the
				// measured cycles run with the full signal layer installed.
				now = now.Add(time.Second)
				eng.adaptTick(now)
			}
		}
		// Best of five: a stray runtime allocation (GC bookkeeping, race
		// runtime, sync.Pool's random Put drops under -race) inside one
		// measured window must not fail the comparison, so take the minimum
		// over enough windows that both sides reach their true floor.
		best := testing.AllocsPerRun(100, cycle)
		for i := 0; i < 4; i++ {
			if m := testing.AllocsPerRun(100, cycle); m < best {
				best = m
			}
		}
		return best
	}
	static, auto := run(false), run(true)
	// Slack of 2: under -race, sync.Pool drops a quarter of Puts at
	// random, so the two integral AllocsPerRun averages can truncate to
	// adjacent values even when the true cost is identical. A sampler
	// that allocated per tuple or per firing would overshoot by tens.
	if auto > static+2 {
		t.Fatalf("adaptive sampling added allocations to the firing cycle: %.1f with auto vs %.1f static", auto, static)
	}
}

// TestSamplingKeepsAppendZeroAlloc asserts the stream-side half of the
// same claim: with the signal layer live, appending a prepared relation
// to the stream basket allocates nothing — occupancy and stall signals
// are atomic counters the sampler reads, never hooks in the append path.
func TestSamplingKeepsAppendZeroAlloc(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (v int, w int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select t.v from [select * from s] t where t.v < 100`); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelismAuto(); err != nil {
		t.Fatal(err)
	}
	const batch = 1000
	vs := make([]int64, batch)
	ws := make([]int64, batch)
	for i := range vs {
		vs[i], ws[i] = int64(i%200), int64(i)
	}
	rel := bat.NewRelation([]string{"v", "w"}, []*vector.Vector{
		vector.FromInts(vs), vector.FromInts(ws),
	})
	st := eng.Catalog().Basket("s")
	var spare *bat.Relation
	cycle := func() {
		if _, err := st.Append(rel); err != nil {
			t.Fatal(err)
		}
		st.Lock()
		spare = st.ExchangeLocked(spare)
		st.Unlock()
	}
	now := time.Now()
	for i := 0; i < 5; i++ {
		cycle()
		now = now.Add(time.Second)
		eng.adaptTick(now)
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("Basket.Append allocates %.1f per run with the signal layer live, want 0", allocs)
	}
}

// TestFalsePredicateSelectsNothing guards the late-materialisation paths
// against the nil-candidate ambiguity: a WHERE clause that folds to
// false must return no rows (not all rows), for one-time queries and for
// continuous firings alike — and the continuous query must still consume
// nothing, not loop re-emitting.
func TestFalsePredicateSelectsNothing(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create table tt (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("tt", Row{int64(1)}, Row{int64(2)}); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`select v from tt where false`,
		`select v from tt where v < 100 and false`,
		`select v from tt where false and v < 100`,
	} {
		res, err := eng.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if res.Len() != 0 {
			t.Fatalf("%s: returned %d rows, want 0", q, res.Len())
		}
	}

	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("never", `select t.v from [select * from s where false] t`); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Out("never")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("s", Row{int64(1)}, Row{int64(2)}); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("continuous false predicate emitted %d rows, want 0", out.Len())
	}
}

// TestFiringAllocsScaleWithQueriesNotTuples pins the late-materialisation
// property: doubling the batch size must not change the per-cycle
// allocation count (the bytes grow, the allocation count does not).
func TestFiringAllocsScaleWithQueriesNotTuples(t *testing.T) {
	run := func(batch int) float64 {
		eng := New()
		if _, err := eng.Exec(`create basket s (v int, w int)`); err != nil {
			t.Fatal(err)
		}
		if err := eng.RegisterQuery("q", `select t.v from [select * from s] t where t.v < 50`); err != nil {
			t.Fatal(err)
		}
		out, err := eng.Out("q")
		if err != nil {
			t.Fatal(err)
		}
		vs := make([]int64, batch)
		ws := make([]int64, batch)
		for i := range vs {
			vs[i], ws[i] = int64(i%100), int64(i)
		}
		rel := bat.NewRelation([]string{"v", "w"}, []*vector.Vector{
			vector.FromInts(vs), vector.FromInts(ws),
		})
		st := eng.Catalog().Basket("s")
		var spare *bat.Relation
		cycle := func() {
			if _, err := st.Append(rel); err != nil {
				t.Fatal(err)
			}
			if err := eng.RunSync(); err != nil {
				t.Fatal(err)
			}
			out.Lock()
			spare = out.ExchangeLocked(spare)
			out.Unlock()
		}
		for i := 0; i < 5; i++ {
			cycle()
		}
		return testing.AllocsPerRun(50, cycle)
	}
	small, large := run(500), run(4000)
	if large > small+60 {
		t.Fatalf("allocs grew with batch size: %.1f at 500 tuples vs %.1f at 4000", small, large)
	}
}
