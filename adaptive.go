package datacell

import (
	"fmt"
	"sort"
	"time"

	"datacell/internal/adapt"
	"datacell/internal/obs"
)

// AdaptOptions tunes the adaptive-parallelism controller (`set
// parallelism = auto`). The zero value means defaults; see
// internal/adapt.Config for the per-field semantics and default values.
// Options apply to controllers engine-wide; SetAdaptOptions resets every
// group's hysteresis state.
type AdaptOptions struct {
	// Tick is the sampling interval of the load metronome. Default 50ms.
	Tick time.Duration
	// HighWater / LowWater bracket basket occupancy: at or above
	// HighWater the group counts as backpressured, at or below LowWater
	// its clones may count as idle. Defaults 65536 (the ingest
	// periphery's watermark) and HighWater/8.
	HighWater int
	LowWater  int
	// StallFrac is the fraction of a window the ingest receptors must
	// have spent stalled to signal backpressure. Default 0.25.
	StallFrac float64
	// IdleFrac is the per-clone utilisation below which the wiring
	// counts as idle. Default 0.2.
	IdleFrac float64
	// Patience is how many consecutive ticks a signal must persist
	// before the controller acts. Default 3.
	Patience int
	// Cooldown is the minimum time between controller-driven rewires of
	// one group. Default 8×Tick.
	Cooldown time.Duration
	// MaxParallelism caps the partition count the controller may scale
	// to. Default GOMAXPROCS.
	MaxParallelism int
}

func (o AdaptOptions) config() adapt.Config {
	return adapt.Config{
		Tick:      o.Tick,
		HighWater: o.HighWater,
		LowWater:  o.LowWater,
		StallFrac: o.StallFrac,
		IdleFrac:  o.IdleFrac,
		Patience:  o.Patience,
		Cooldown:  o.Cooldown,
		MaxP:      o.MaxParallelism,
	}
}

// tick returns the effective sampling interval.
func (o AdaptOptions) tick() time.Duration {
	if o.Tick > 0 {
		return o.Tick
	}
	return 50 * time.Millisecond
}

// SetAdaptOptions replaces the controller tuning. Existing controllers
// are discarded (their hysteresis restarts under the new thresholds);
// current per-group targets persist until the controllers decide
// otherwise.
func (e *Engine) SetAdaptOptions(o AdaptOptions) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.adaptOpts = o
	for _, g := range e.groups {
		g.ctl = nil
	}
}

// SetParallelismAuto hands the partition count of every group without a
// per-stream override to the adaptive controller. Each such group starts
// from P=1 — the configuration static sweeps prove safe on any box — and
// scales up only on sustained backpressure, never beyond
// min(MaxParallelism, GOMAXPROCS) or what the group's partitionability
// verdict can exploit. SetParallelism(N) switches back to static. It can
// be called while the engine runs.
func (e *Engine) SetParallelismAuto() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.autoParallel {
		return nil
	}
	e.autoParallel = true
	for _, g := range e.groups {
		if g.ctlP < 1 {
			g.ctlP = 1
		}
		g.pendingReason = "parallelism set to auto (controller starts at P=1)"
	}
	return e.rewireAllLocked()
}

// ParallelismAuto reports whether the adaptive controller drives the
// engine-wide partition count.
func (e *Engine) ParallelismAuto() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.autoParallel
}

// SetStreamParallelism pins one stream's query group to a fixed
// partition count, overriding both the engine-wide setting and the
// controller (`set parallelism = N on <stream>`).
func (e *Engine) SetStreamParallelism(stream string, p int) error {
	if p < 1 {
		return fmt.Errorf("datacell: parallelism must be at least 1, got %d", p)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	g, err := e.groupLocked(stream)
	if err != nil {
		return err
	}
	if g.override == p {
		return nil
	}
	g.override = p
	g.pendingReason = fmt.Sprintf("stream parallelism pinned to %d", p)
	return e.rewireLocked(g)
}

// SetStreamParallelismAuto hands one stream's partition count to the
// adaptive controller regardless of the engine-wide setting
// (`set parallelism = auto on <stream>`).
func (e *Engine) SetStreamParallelismAuto(stream string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	g, err := e.groupLocked(stream)
	if err != nil {
		return err
	}
	if g.override == -1 {
		return nil
	}
	g.override = -1
	if g.ctlP < 1 {
		g.ctlP = 1
	}
	g.pendingReason = "stream parallelism set to auto (controller starts at P=1)"
	return e.rewireLocked(g)
}

// ClearStreamParallelism removes a stream's parallelism override so the
// group follows the engine-wide setting again
// (`set parallelism = default on <stream>`).
func (e *Engine) ClearStreamParallelism(stream string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	g, err := e.groupLocked(stream)
	if err != nil {
		return err
	}
	if g.override == 0 {
		return nil
	}
	g.override = 0
	g.pendingReason = "stream parallelism override cleared"
	return e.rewireLocked(g)
}

// groupAutoLocked reports whether the controller drives g's partition
// count. Caller holds e.mu.
func (e *Engine) groupAutoLocked(g *queryGroup) bool {
	return g.override == -1 || (g.override == 0 && e.autoParallel)
}

// groupParallelismLocked returns the partition count g's next wiring
// should target: a per-stream pin wins, then the controller target for
// auto groups, then the engine-wide setting. Caller holds e.mu.
func (e *Engine) groupParallelismLocked(g *queryGroup) int {
	if g.override > 0 {
		return g.override
	}
	if e.groupAutoLocked(g) {
		if g.ctlP < 1 {
			return 1
		}
		return g.ctlP
	}
	return e.parallelism
}

// maxUsefulP is the plan-side clamp on the group's partition count: the
// largest P its partitionability verdicts can exploit. 0 means
// unbounded (the core clamp still applies); 1 pins the group. Under the
// separate strategy one partitionable member is enough — the others
// simply keep single factories; under shared/partial the group-wide
// combined verdict decides.
func (g *queryGroup) maxUsefulP() int {
	if len(g.scans) == 0 {
		return 1
	}
	if g.effective == StrategySeparate {
		for _, m := range g.scans {
			if m.scan.Part.ClampP(2) > 1 {
				return 0
			}
		}
		return 1
	}
	if g.partitioning().ClampP(2) > 1 {
		return 0
	}
	return 1
}

// ensureControllerLocked returns g's controller, creating it with the
// engine's current options on first use. Caller holds e.mu.
func (e *Engine) ensureControllerLocked(g *queryGroup) *adapt.Controller {
	if g.ctl == nil {
		g.ctl = adapt.New(e.adaptOpts.config())
	}
	return g.ctl
}

// applyAutoPLocked installs a controller decision: records the new
// target and reason and rebuilds the wiring through the ordinary
// quiesce-and-swap rewire. Caller holds e.mu.
func (e *Engine) applyAutoPLocked(g *queryGroup, p int, reason string) error {
	if p < 1 {
		p = 1
	}
	g.ctlP = p
	g.pendingReason = reason
	return e.rewireLocked(g)
}

// adaptLoop is the load metronome: it samples every group each tick and
// lets the controllers of auto groups act. Started by Start, stopped by
// Stop.
func (e *Engine) adaptLoop(stop, done chan struct{}) {
	defer close(done)
	for {
		e.mu.Lock()
		d := e.adaptOpts.tick()
		e.mu.Unlock()
		t := time.NewTimer(d)
		select {
		case <-stop:
			t.Stop()
			return
		case now := <-t.C:
			e.adaptTick(now)
		}
	}
}

// adaptTick runs one sampling pass over all groups: windowed load deltas
// are computed for every group (feeding GroupInfo's rate fields), and
// groups under controller management additionally get a scaling
// decision. Exposed to tests via direct calls; production ticks come
// from adaptLoop.
func (e *Engine) adaptTick(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.groups))
	for n := range e.groups {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := e.groups[n]
		s, ok := e.sampleLocked(g, now)
		if !ok || len(g.scans) == 0 || !e.groupAutoLocked(g) {
			continue
		}
		ctl := e.ensureControllerLocked(g)
		e.ev.decisions.Inc()
		if d, act := ctl.Decide(now, s); act {
			e.ev.applies.Inc()
			e.trace.Add(obs.Event{Subsystem: "adapt", Kind: "decide", Name: n,
				Reason: d.Reason, Time: e.cat.Now(),
				Fields: fmt.Sprintf("p=%d occupancy=%d stalls=%d stall_time=%s busy=%s fires=%d window=%s",
					d.P, s.Occupancy, s.Stalls, s.StallTime, s.Busy, s.Fires, s.Window)})
			if err := e.applyAutoPLocked(g, d.P, d.Reason); err != nil {
				// A failed rewire leaves the old wiring torn down only if
				// the rebuild itself failed, which registration already
				// validated against; record the error as the last reason.
				g.lastRewireReason = fmt.Sprintf("rewire failed: %v", err)
			}
		}
	}
}

// sampleLocked computes g's windowed load sample: deltas of the ingest,
// firing and busy counters since the previous tick, plus instantaneous
// basket occupancy. The first call after a rewire (or ever) only
// establishes baselines and reports ok=false. The hot path pays nothing
// for this: all counters are atomics the sampler reads. Caller holds
// e.mu.
func (e *Engine) sampleLocked(g *queryGroup, now time.Time) (adapt.Sample, bool) {
	var tuples, stalls int64
	var stallT time.Duration
	for _, l := range g.listeners {
		for _, st := range l.Stats() {
			tuples += st.Tuples
			stalls += st.Stalls
			stallT += st.StallTime
		}
	}
	var busy time.Duration
	var fires int64
	for _, f := range g.wired {
		busy += f.Busy()
		fires += f.Fires()
	}
	occ := g.stream.Len()
	for _, m := range g.scans {
		if m.priv != nil && m.priv.Len() > occ {
			occ = m.priv.Len()
		}
	}
	for _, pb := range g.pbs {
		// Parts() excludes the catch-all: pruned tuples sit there by
		// design and no clone drains them, so they are not backpressure.
		for _, p := range pb.Parts() {
			if p.Len() > occ {
				occ = p.Len()
			}
		}
	}

	fresh := g.lastSampleAt.IsZero() || g.sampleGen != g.gen
	window := now.Sub(g.lastSampleAt)
	dTuples := tuples - g.lastIngTuples
	dStalls := stalls - g.lastIngStalls
	dStallT := stallT - g.lastIngStallT
	dBusy := busy - g.lastBusy
	dFires := fires - g.lastFires

	g.lastSampleAt = now
	g.sampleGen = g.gen
	g.lastIngTuples, g.lastIngStalls, g.lastIngStallT = tuples, stalls, stallT
	g.lastBusy, g.lastFires = busy, fires

	if fresh || window <= 0 {
		g.rates = groupRates{}
		return adapt.Sample{}, false
	}
	g.rates = groupRates{
		window:         window,
		tuplesPerSec:   float64(dTuples) / window.Seconds(),
		stallsDelta:    dStalls,
		stallTimeDelta: dStallT,
	}
	return adapt.Sample{
		Occupancy: occ,
		Stalls:    dStalls,
		StallTime: dStallT,
		Busy:      dBusy,
		Fires:     dFires,
		Window:    window,
		CurrentP:  e.groupParallelismLocked(g),
		MaxUseful: g.maxUsefulP(),
	}, true
}
