package datacell

import (
	"fmt"
	"io"

	"datacell/internal/ingest"
	"datacell/internal/vector"
)

// WireWriter encodes Rows as columnar batch frames of the engine's
// binary wire protocol — the sensor-side producer for feeding a stream
// over ListenIngest/ListenTCP sockets from outside the engine process.
// Rows accumulate and ship as one frame per `batch` tuples; call Flush
// when done (and before any deliberate pause, so downstream sees the
// tuples).
type WireWriter struct {
	bw    *ingest.BatchWriter
	types []vector.Type
}

// NewWireWriter returns a writer producing frames of `batch` tuples for
// the given schema onto w (typically a TCP connection to an ingest
// listener). Column types use the SQL names of the create-basket
// statement: int, float, bool, string, timestamp.
func NewWireWriter(w io.Writer, cols, types []string, batch int) (*WireWriter, error) {
	if len(cols) != len(types) {
		return nil, fmt.Errorf("datacell: %d columns but %d types", len(cols), len(types))
	}
	ts := make([]vector.Type, len(types))
	for i, s := range types {
		t, err := vector.ParseType(s)
		if err != nil {
			return nil, err
		}
		ts[i] = t
	}
	return &WireWriter{bw: ingest.NewBatchWriter(w, cols, ts, batch), types: ts}, nil
}

// WriteRow appends one tuple, converting values like Engine.Append
// does; a full batch is flushed as a frame.
func (ww *WireWriter) WriteRow(r Row) error {
	if len(r) != len(ww.types) {
		return fmt.Errorf("datacell: row has %d values, want %d", len(r), len(ww.types))
	}
	var buf [16]vector.Value
	vals := buf[:0]
	for i, x := range r {
		v, err := toValue(x, ww.types[i])
		if err != nil {
			return fmt.Errorf("datacell: column %d: %w", i, err)
		}
		vals = append(vals, v)
	}
	return ww.bw.WriteRow(vals...)
}

// Flush ships the pending tuples (if any) as one frame.
func (ww *WireWriter) Flush() error { return ww.bw.Flush() }
