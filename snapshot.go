package datacell

import "time"

// Snapshot is one consistent point-in-time view of a running engine,
// replacing the Stats() + Groups() + per-listener Stats() + RecoveryInfo
// bookkeeping a caller previously had to stitch together (and which could
// tear: each call re-acquired the engine lock, so a rewire could land
// between them). Engine.Snapshot gathers every section under a single
// acquisition of the engine mutex.
//
// Field stability: fields are append-only — new sections may be added in
// later versions, existing ones keep their names, types and meaning, so
// callers (cmd/datacell, cmd/datacellbench, external monitors) can encode
// a Snapshot and diff it across versions.
type Snapshot struct {
	// At is the engine-clock capture time (WithClock-aware).
	At time.Time
	// Started reports whether the scheduler is running.
	Started bool

	// Engine-wide configuration at capture time.
	Strategy        Strategy
	Parallelism     int
	AutoParallelism bool
	// WALDir is the open write-ahead-log root ("" when durability is off).
	WALDir string

	// Queries holds per-query activity counters, sorted by name — the same
	// rows Stats() returns.
	Queries []QueryStats
	// Groups holds per-stream wiring reports, sorted by stream — the same
	// rows Groups() returns. Each embeds its listeners' IngestStats
	// (GroupInfo.Receptors).
	Groups []GroupInfo
	// Ingest flattens every receptor shard's counters across all groups,
	// for callers that want listener totals without walking Groups.
	Ingest []IngestStats
	// Recovery reports the most recent WAL Recover pass, nil when no
	// recovery has run in this process.
	Recovery *RecoveryInfo
	// Subscriptions counts live query subscriptions (SubscribeQuery minus
	// Cancel/RemoveQuery).
	Subscriptions int
}

// Snapshot captures the engine's full observable state at one instant:
// configuration, per-query counters, per-stream group wiring with ingest
// shard stats, the last recovery report and the live subscription count.
// All sections are gathered under one acquisition of the engine mutex
// (nested locks follow the engine's fixed order: engine → group → basket),
// so the sections are mutually consistent — a concurrent rewire or
// register is either fully visible in every section or in none.
func (e *Engine) Snapshot() Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Snapshot{
		At:              e.cat.Now(),
		Started:         e.started,
		Strategy:        e.strategy,
		Parallelism:     e.parallelism,
		AutoParallelism: e.autoParallel,
		Queries:         e.statsLocked(),
		Groups:          e.groupsLocked(),
		Subscriptions:   e.subscriptionsLocked(),
	}
	if e.wal != nil {
		s.WALDir = e.wal.opts.Dir
	}
	if e.lastRecovery != nil {
		cp := *e.lastRecovery
		s.Recovery = &cp
	}
	for i := range s.Groups {
		s.Ingest = append(s.Ingest, s.Groups[i].Receptors...)
	}
	return s
}
