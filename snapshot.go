package datacell

import (
	"sort"
	"time"
)

// Snapshot is one consistent point-in-time view of a running engine,
// replacing the Stats() + Groups() + per-listener Stats() + RecoveryInfo
// bookkeeping a caller previously had to stitch together (and which could
// tear: each call re-acquired the engine lock, so a rewire could land
// between them). Engine.Snapshot gathers every section under a single
// acquisition of the engine mutex.
//
// Field stability: fields are append-only — new sections may be added in
// later versions, existing ones keep their names, types and meaning, so
// callers (cmd/datacell, cmd/datacellbench, external monitors) can encode
// a Snapshot and diff it across versions.
type Snapshot struct {
	// At is the engine-clock capture time (WithClock-aware).
	At time.Time
	// Started reports whether the scheduler is running.
	Started bool

	// Engine-wide configuration at capture time.
	Strategy        Strategy
	Parallelism     int
	AutoParallelism bool
	// WALDir is the open write-ahead-log root ("" when durability is off).
	WALDir string

	// Queries holds per-query activity counters, sorted by name — the same
	// rows Stats() returns.
	Queries []QueryStats
	// Groups holds per-stream wiring reports, sorted by stream — the same
	// rows Groups() returns. Each embeds its listeners' IngestStats
	// (GroupInfo.Receptors).
	Groups []GroupInfo
	// Ingest flattens every receptor shard's counters across all groups,
	// for callers that want listener totals without walking Groups.
	Ingest []IngestStats
	// Recovery reports the most recent WAL Recover pass, nil when no
	// recovery has run in this process.
	Recovery *RecoveryInfo
	// Subscriptions counts live query subscriptions (SubscribeQuery minus
	// Cancel/RemoveQuery).
	Subscriptions int

	// WAL holds per-stream log counters (appends, fsyncs, rotations and
	// group-commit batch sizes) for every log opened in this process;
	// empty when durability is off.
	WAL []WALStreamStats
	// Baskets holds per-stream basket occupancy: resident tuples, the
	// high-water mark and the lifetime append/drop/consume counters of
	// every stream basket with a query group.
	Baskets []BasketStats
	// EventsTotal counts engine trace events ever recorded (retained or
	// shed from the ring); Engine.Events returns the retained tail.
	EventsTotal uint64
}

// WALStreamStats is one stream's write-ahead-log counters.
type WALStreamStats struct {
	Stream      string
	Frames      uint64 // frame records appended
	Bytes       uint64 // record bytes appended
	Syncs       uint64 // fsync batches issued
	Rotations   uint64 // segment rotations
	Batches     uint64 // non-empty group-commit batches
	BatchFrames uint64 // frames across those batches (mean = BatchFrames/Batches)
	MaxBatch    uint64 // largest single commit batch
}

// BasketStats is one stream basket's occupancy and lifetime counters.
type BasketStats struct {
	Stream    string
	Resident  int   // tuples currently held
	HighWater int64 // peak resident occupancy
	Appended  int64
	Dropped   int64
	Consumed  int64
}

// Snapshot captures the engine's full observable state at one instant:
// configuration, per-query counters, per-stream group wiring with ingest
// shard stats, the last recovery report and the live subscription count.
// All sections are gathered under one acquisition of the engine mutex
// (nested locks follow the engine's fixed order: engine → group → basket),
// so the sections are mutually consistent — a concurrent rewire or
// register is either fully visible in every section or in none.
func (e *Engine) Snapshot() Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Snapshot{
		At:              e.cat.Now(),
		Started:         e.started,
		Strategy:        e.strategy,
		Parallelism:     e.parallelism,
		AutoParallelism: e.autoParallel,
		Queries:         e.statsLocked(),
		Groups:          e.groupsLocked(),
		Subscriptions:   e.subscriptionsLocked(),
	}
	if e.wal != nil {
		s.WALDir = e.wal.opts.Dir
		names := make([]string, 0, len(e.wal.logs))
		for n := range e.wal.logs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			ws := e.wal.logs[n].Stats()
			s.WAL = append(s.WAL, WALStreamStats{
				Stream:      n,
				Frames:      ws.Frames,
				Bytes:       ws.Bytes,
				Syncs:       ws.Syncs,
				Rotations:   ws.Rotations,
				Batches:     ws.Batches,
				BatchFrames: ws.BatchFrames,
				MaxBatch:    ws.MaxBatch,
			})
		}
	}
	if e.lastRecovery != nil {
		cp := *e.lastRecovery
		s.Recovery = &cp
	}
	for i := range s.Groups {
		s.Ingest = append(s.Ingest, s.Groups[i].Receptors...)
	}
	gnames := make([]string, 0, len(e.groups))
	for n := range e.groups {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		g := e.groups[n]
		bs := g.stream.Stats()
		s.Baskets = append(s.Baskets, BasketStats{
			Stream:    n,
			Resident:  g.stream.Len(),
			HighWater: bs.HighWater,
			Appended:  bs.Appended,
			Dropped:   bs.Dropped,
			Consumed:  bs.Consumed,
		})
	}
	s.EventsTotal = e.trace.Total()
	return s
}
