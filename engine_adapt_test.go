package datacell

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"testing"
	"time"

	"datacell/internal/ingest"
	"datacell/internal/vector"
)

// adaptiveQueries is the query mix of the adaptive differentials: a
// range query whose verdict routes with a catch-all, and a grouped
// avg query whose partitioned wiring stages partial aggregates and
// merges them with the combining merge (two-phase aggregation).
var adaptiveQueries = []NamedQuery{
	{Name: "rng", SQL: `select t.v from [select * from s where v >= 200 and v < 600] t`},
	{Name: "agg", SQL: `select t.k, avg(t.v) as a, count(*) as n from [select * from s where v < 800] t group by t.k`},
}

// forceAutoP drives the group's controller target directly, exercising
// the same applyAutoPLocked path a controller decision takes.
func forceAutoP(t *testing.T, eng *Engine, stream string, p int) {
	t.Helper()
	eng.mu.Lock()
	defer eng.mu.Unlock()
	g := eng.groups[stream]
	if g == nil {
		t.Fatalf("no group for stream %q", stream)
	}
	if err := eng.applyAutoPLocked(g, p, fmt.Sprintf("test force P=%d", p)); err != nil {
		t.Fatal(err)
	}
}

// adaptiveWorkload runs the adaptive query mix over a randomized stream.
// When auto is set the group runs under controller management and the
// test forces scale-ups and scale-downs mid-stream, so tuples keep
// migrating across wirings of different width while results accumulate.
func adaptiveWorkload(t *testing.T, strategy Strategy, auto bool, withNonPartitionable bool, seed int64) map[string][]string {
	t.Helper()
	eng := New()
	if err := eng.SetStrategy(strategy); err != nil {
		t.Fatal(err)
	}
	if auto {
		if err := eng.SetParallelismAuto(); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := eng.SetParallelism(1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	queries := adaptiveQueries
	if withNonPartitionable {
		queries = append(queries[:len(queries):len(queries)], NamedQuery{
			Name: "np", SQL: `select t.v from [select top 5 * from s] t`,
		})
	}
	if err := eng.RegisterQueries(queries); err != nil {
		t.Fatal(err)
	}
	// Forced controller trajectory: widen, widen more, collapse, rewiden —
	// every transition migrates in-flight tuples across wirings.
	forced := []int{2, 4, 1, 3}
	rng := rand.New(rand.NewSource(seed))
	for batch := 0; batch < 12; batch++ {
		n := 20 + rng.Intn(60)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{rng.Int63n(16), rng.Int63n(1000)}
		}
		if err := eng.Append("s", rows...); err != nil {
			t.Fatal(err)
		}
		if auto && batch%3 == 1 {
			// Rewire with the batch still undrained: the swap must carry
			// the in-flight tuples over.
			forceAutoP(t, eng, "s", forced[(batch/3)%len(forced)])
		}
		if err := eng.RunSync(); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string][]string{}
	for _, q := range queries {
		out, err := eng.Out(q.Name)
		if err != nil {
			t.Fatal(err)
		}
		tbl := tableOf(out.Snapshot())
		rows := make([]string, 0, len(tbl.Rows))
		for _, r := range tbl.Rows {
			parts := make([]string, len(r))
			for i, c := range r {
				parts[i] = fmt.Sprint(c)
			}
			rows = append(rows, strings.Join(parts, "|"))
		}
		sort.Strings(rows)
		got[q.Name] = rows
	}
	return got
}

// TestAdaptiveDifferential asserts controller-driven execution is
// result-equivalent to static single-partition execution: for every
// sharing strategy, auto mode with forced scale-ups and scale-downs
// mid-stream yields byte-identical output multisets to P=1 — including
// the range query's catch-all routing and the avg query's two-phase
// partial-aggregate merge.
func TestAdaptiveDifferential(t *testing.T) {
	for _, strategy := range []Strategy{StrategySeparate, StrategyShared, StrategyPartial} {
		t.Run(string(strategy), func(t *testing.T) {
			withNP := strategy == StrategySeparate
			want := adaptiveWorkload(t, strategy, false, withNP, 99)
			got := adaptiveWorkload(t, strategy, true, withNP, 99)
			for name, w := range want {
				g := got[name]
				if len(w) == 0 {
					t.Fatalf("%s produced no rows; differential is vacuous", name)
				}
				if len(g) != len(w) {
					t.Fatalf("%s: auto produced %d rows, static P=1 produced %d", name, len(g), len(w))
				}
				for i := range w {
					if g[i] != w[i] {
						t.Fatalf("%s: row %d differs: auto %q vs static %q", name, i, g[i], w[i])
					}
				}
			}
		})
	}
}

// TestAdaptiveScaleUpAndDown drives the controller end to end with
// deterministic ticks: sustained occupancy above the high-water mark
// scales the wiring up step by step to the configured cap, and a drained,
// idle group scales back down to one partition — with GroupInfo
// reporting the targets, the rewire count and the controller's reasons.
func TestAdaptiveScaleUpAndDown(t *testing.T) {
	eng := New()
	eng.SetAdaptOptions(AdaptOptions{
		HighWater:      64,
		LowWater:       8,
		Patience:       2,
		Cooldown:       time.Millisecond,
		MaxParallelism: 4,
	})
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQueries(adaptiveQueries); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelismAuto(); err != nil {
		t.Fatal(err)
	}
	info := func() GroupInfo {
		for _, g := range eng.Groups() {
			if g.Stream == "s" {
				return g
			}
		}
		t.Fatal("stream s missing from Groups")
		return GroupInfo{}
	}
	if gi := info(); !gi.AutoParallelism || gi.CurrentP != 1 {
		t.Fatalf("after enabling auto: AutoParallelism=%v CurrentP=%d, want true/1", gi.AutoParallelism, gi.CurrentP)
	}

	// Load phase: a big undrained append keeps occupancy far above the
	// high-water mark, so every tick signals backpressure.
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{int64(i % 16), int64(i % 1000)}
	}
	if err := eng.Append("s", rows...); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	tick := func() {
		now = now.Add(time.Second)
		eng.adaptTick(now)
	}
	reached := false
	for i := 0; i < 30 && !reached; i++ {
		tick()
		reached = info().CurrentP == 4
	}
	gi := info()
	if !reached {
		t.Fatalf("controller never scaled to the cap: CurrentP=%d after 30 loaded ticks", gi.CurrentP)
	}
	if gi.Partitions != 4 {
		t.Fatalf("wiring runs %d partitions, want 4", gi.Partitions)
	}
	if !strings.Contains(gi.LastRewireReason, "scale-up") {
		t.Fatalf("LastRewireReason = %q, want a scale-up reason", gi.LastRewireReason)
	}
	if gi.Rewires == 0 {
		t.Fatal("GroupInfo.Rewires stayed 0 across controller rewires")
	}
	if gi.IngestWindow == 0 {
		t.Fatal("GroupInfo.IngestWindow stayed 0; windowed deltas are not being sampled")
	}

	// Drain phase: empty baskets and idle clones walk P back down to 1.
	// Each rewire returns catch-all residue to the private replicas, so a
	// RunSync after every tick plays the role the live scheduler has in
	// production: re-splitting (and re-pruning) the migrated tuples.
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	down := false
	for i := 0; i < 30 && !down; i++ {
		tick()
		if err := eng.RunSync(); err != nil {
			t.Fatal(err)
		}
		down = info().CurrentP == 1
	}
	gi = info()
	if !down {
		t.Fatalf("controller never scaled back down: CurrentP=%d after 30 idle ticks", gi.CurrentP)
	}
	if !strings.Contains(gi.LastRewireReason, "scale-down") {
		t.Fatalf("LastRewireReason = %q, want a scale-down reason", gi.LastRewireReason)
	}
	// The full trajectory produced every row exactly once.
	out, err := eng.Out("rng")
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Stats().Appended; got != 400 {
		t.Fatalf("rng emitted %d rows across the scale trajectory, want 400", got)
	}
}

// TestAdaptiveCooldownBoundsThrash oscillates the load signal with an
// impatient controller (Patience=1) and asserts the cooldown keeps the
// group from rewiring on every swing.
func TestAdaptiveCooldownBoundsThrash(t *testing.T) {
	eng := New()
	eng.SetAdaptOptions(AdaptOptions{
		HighWater:      64,
		LowWater:       8,
		Patience:       1,
		Cooldown:       time.Hour,
		MaxParallelism: 4,
	})
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQueries(adaptiveQueries); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelismAuto(); err != nil {
		t.Fatal(err)
	}
	base := int64(0)
	for _, g := range eng.Groups() {
		if g.Stream == "s" {
			base = g.Rewires
		}
	}
	rows := make([]Row, 500)
	for i := range rows {
		rows[i] = Row{int64(i % 16), int64(i % 1000)}
	}
	now := time.Now()
	for i := 0; i < 50; i++ {
		// Swing: load up (occupancy high), tick, drain (occupancy zero,
		// clones idle), tick — each half-swing is a full patience run.
		if err := eng.Append("s", rows...); err != nil {
			t.Fatal(err)
		}
		now = now.Add(100 * time.Millisecond)
		eng.adaptTick(now)
		if err := eng.RunSync(); err != nil {
			t.Fatal(err)
		}
		now = now.Add(100 * time.Millisecond)
		eng.adaptTick(now)
	}
	var rewires int64
	for _, g := range eng.Groups() {
		if g.Stream == "s" {
			rewires = g.Rewires - base
		}
	}
	// One decision may land before the first cooldown engages; the hour
	// cooldown blocks everything after.
	if rewires > 1 {
		t.Fatalf("oscillating load caused %d rewires under an hour-long cooldown, want at most 1", rewires)
	}
}

// TestAdaptiveLiveUnderLoad runs the real sampler (Start/Stop) with an
// aggressive controller while batches stream in, then checks the results
// against a static P=1 synchronous run. With -race this doubles as the
// adaptation race test: controller rewires, scheduler firings and
// appends all interleave.
func TestAdaptiveLiveUnderLoad(t *testing.T) {
	want := adaptiveWorkload(t, StrategySeparate, false, false, 7)

	eng := New()
	defer eng.Stop()
	eng.SetAdaptOptions(AdaptOptions{
		Tick:           2 * time.Millisecond,
		HighWater:      32,
		LowWater:       4,
		Patience:       1,
		Cooldown:       4 * time.Millisecond,
		MaxParallelism: 4,
	})
	if err := eng.SetParallelismAuto(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQueries(adaptiveQueries); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for batch := 0; batch < 12; batch++ {
		n := 20 + rng.Intn(60)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{rng.Int63n(16), rng.Int63n(1000)}
		}
		if err := eng.Append("s", rows...); err != nil {
			t.Fatal(err)
		}
		time.Sleep(3 * time.Millisecond)
	}
	if !eng.Drain(60 * time.Second) {
		t.Fatal("engine did not drain")
	}
	eng.Stop()
	for _, q := range adaptiveQueries {
		out, err := eng.Out(q.Name)
		if err != nil {
			t.Fatal(err)
		}
		tbl := tableOf(out.Snapshot())
		rows := make([]string, 0, len(tbl.Rows))
		for _, r := range tbl.Rows {
			parts := make([]string, len(r))
			for i, c := range r {
				parts[i] = fmt.Sprint(c)
			}
			rows = append(rows, strings.Join(parts, "|"))
		}
		sort.Strings(rows)
		w := want[q.Name]
		if len(w) == 0 {
			t.Fatalf("%s produced no rows; differential is vacuous", q.Name)
		}
		if len(rows) != len(w) {
			t.Fatalf("%s: live auto produced %d rows, static P=1 produced %d", q.Name, len(rows), len(w))
		}
		for i := range w {
			if rows[i] != w[i] {
				t.Fatalf("%s: row %d differs: live auto %q vs static %q", q.Name, i, rows[i], w[i])
			}
		}
	}
}

// TestParallelismPragmas covers the SQL surface of adaptive parallelism:
// engine-wide auto, per-stream pins, per-stream auto, per-stream reset,
// and the rejections.
func TestParallelismPragmas(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQueries(adaptiveQueries); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`set parallelism = auto`); err != nil {
		t.Fatal(err)
	}
	if !eng.ParallelismAuto() {
		t.Fatal("`set parallelism = auto` did not enable the controller")
	}
	if _, err := eng.Exec(`set parallelism = 3 on s`); err != nil {
		t.Fatal(err)
	}
	gi := func() GroupInfo {
		for _, g := range eng.Groups() {
			if g.Stream == "s" {
				return g
			}
		}
		t.Fatal("stream s missing from Groups")
		return GroupInfo{}
	}
	if g := gi(); g.AutoParallelism || g.CurrentP != 3 || g.Partitions != 3 {
		t.Fatalf("after pin: auto=%v CurrentP=%d Partitions=%d, want false/3/3", g.AutoParallelism, g.CurrentP, g.Partitions)
	}
	if _, err := eng.Exec(`set parallelism = auto on s`); err != nil {
		t.Fatal(err)
	}
	if g := gi(); !g.AutoParallelism || g.CurrentP != 1 {
		t.Fatalf("after per-stream auto: auto=%v CurrentP=%d, want true/1", g.AutoParallelism, g.CurrentP)
	}
	if _, err := eng.Exec(`set parallelism = default on s`); err != nil {
		t.Fatal(err)
	}
	if g := gi(); !g.AutoParallelism {
		t.Fatal("default on s should fall back to the engine-wide auto setting")
	}
	if _, err := eng.Exec(`set parallelism = 2`); err != nil {
		t.Fatal(err)
	}
	if eng.ParallelismAuto() {
		t.Fatal("`set parallelism = 2` should switch the engine back to static")
	}
	if g := gi(); g.AutoParallelism || g.CurrentP != 2 {
		t.Fatalf("after static 2: auto=%v CurrentP=%d, want false/2", g.AutoParallelism, g.CurrentP)
	}

	for _, bad := range []string{
		`set parallelism = default`,
		`set parallelism = 'sideways'`,
		`set strategy = 'shared' on s`,
		`set parallelism = 2 on nosuch`,
	} {
		if _, err := eng.Exec(bad); err == nil {
			t.Errorf("%s: expected an error", bad)
		}
	}
}

// TestExplainAdaptive asserts explain surfaces the controller verdict:
// the auto target, and the clamp note for plans that cannot partition.
func TestExplainAdaptive(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQueries(adaptiveQueries); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`set parallelism = auto`); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Explain(`select t.v from [select * from s where v < 100] t`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "parallelism auto (controller target P=1") {
		t.Fatalf("explain lacks the controller verdict:\n%s", out)
	}
	if !strings.Contains(out, "rewires") {
		t.Fatalf("explain lacks the rewire account:\n%s", out)
	}
	out, err = eng.Explain(`select t.v from [select top 5 * from s] t`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "controller refuses scale-up") {
		t.Fatalf("explain of a non-partitionable plan lacks the clamp note:\n%s", out)
	}
}

// TestSeparateRouteAtIngestActive pins the separate-strategy fan-out:
// with partitioned members, receptor batches skip the stream basket,
// the replicator and the splitters entirely — each member's partitioned
// basket is fed directly — and results still come out exactly once.
func TestSeparateRouteAtIngestActive(t *testing.T) {
	eng := New()
	defer eng.Stop()
	if err := eng.SetStrategy(StrategySeparate); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select t.v from [select * from s where v >= 0 and v < 1000] t`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("g", `select t.k, count(*) as n from [select * from s] t group by t.k`); err != nil {
		t.Fatal(err)
	}
	l, err := eng.ListenIngest("s", "127.0.0.1:0", IngestOptions{Shards: 2, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, g := range eng.Groups() {
		if g.Stream == "s" {
			found = true
			if !strings.HasPrefix(g.IngestPath, "route-at-ingest") {
				t.Fatalf("ingest path = %q, want route-at-ingest fan-out", g.IngestPath)
			}
		}
	}
	if !found {
		t.Fatal("stream s missing from Groups")
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", l.Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	bw := ingest.NewBatchWriter(conn, []string{"k", "v"}, []vector.Type{vector.Int, vector.Int}, 32)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := bw.WriteRow(vector.NewInt(int64(i%16)), vector.NewInt(int64(i%1000))); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitIngested(t, eng, "s", n)
	if !eng.Drain(30 * time.Second) {
		t.Fatal("engine did not drain")
	}
	// The stream basket never saw the tuples: the fan-out delivered each
	// member's copy directly.
	eng.mu.Lock()
	streamAppended := eng.groups["s"].stream.Stats().Appended
	eng.mu.Unlock()
	if streamAppended != 0 {
		t.Fatalf("stream basket ingested %d tuples; separate route-at-ingest should have bypassed it", streamAppended)
	}
	out, err := eng.Out("q")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != n {
		t.Fatalf("query q emitted %d rows, want %d", out.Len(), n)
	}
	gout, err := eng.Out("g")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	tbl := tableOf(gout.Snapshot())
	for _, r := range tbl.Rows {
		total += r[1].(int64)
	}
	if total != n {
		t.Fatalf("grouped counts sum to %d, want %d", total, n)
	}
}
