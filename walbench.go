package datacell

import (
	"fmt"
	"io/fs"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"datacell/internal/ingest"
	"datacell/internal/vector"
	"datacell/internal/wal"
)

// WALIngestResult is one point of the durability sweep (`microbench -fig
// wal`): end-to-end binary-ingest events/second over loopback TCP with
// the write-ahead log off or on at one group-commit interval — the price
// of durability measured against the same feed the ingest figure uses.
type WALIngestResult struct {
	WAL          bool
	SyncInterval time.Duration
	Shards       int
	Batch        int
	Tuples       int
	Elapsed      time.Duration
	EventsPerSec float64
	Frames       int64 // binary frames decoded (= frames logged when WAL is on)
	WALBytes     int64 // bytes the log wrote across its segment files
	LoggedFrames int   // intact frames a post-run scan finds in the log
}

// RunIngestWAL measures binary ingest throughput with an optional WAL in
// the delivery path: `tuples` two-column tuples over `shards` concurrent
// loopback connections into a sharded ingest group teeing every batch to
// a per-stream log in a temporary directory, consumed by one full-stream
// query (shared strategy, parallelism = shards). The clock spans the
// first dial to full quiescence, so fsync batching is on the clock.
func RunIngestWAL(walOn bool, syncInterval time.Duration, shards, batch, tuples int) (WALIngestResult, error) {
	if shards < 1 {
		shards = 1
	}
	res := WALIngestResult{WAL: walOn, SyncInterval: syncInterval, Shards: shards, Batch: batch, Tuples: tuples}
	eng := New()
	defer eng.Stop()
	if err := eng.SetStrategy(StrategyShared); err != nil {
		return res, err
	}
	if err := eng.SetParallelism(shards); err != nil {
		return res, err
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		return res, err
	}
	if err := eng.RegisterQuery("sink", `select t.v from [select * from s] t where t.v < 10`); err != nil {
		return res, err
	}
	var walDir string
	if walOn {
		dir, err := os.MkdirTemp("", "datacell-walbench-")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)
		walDir = dir
		if err := eng.OpenWAL(WALOptions{Dir: dir, SyncInterval: syncInterval}); err != nil {
			return res, err
		}
	}
	l, err := eng.ListenIngest("s", "127.0.0.1:0", IngestOptions{Shards: shards, BatchSize: batch})
	if err != nil {
		return res, err
	}
	if err := eng.Start(); err != nil {
		return res, err
	}

	addrs := l.Addrs()
	start := time.Now()
	errs := make(chan error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := s * tuples / shards
		hi := (s + 1) * tuples / shards
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addrs[s%len(addrs)])
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			bw := ingest.NewBatchWriter(conn, []string{"k", "v"},
				[]vector.Type{vector.Int, vector.Int}, batch)
			for i := lo; i < hi; i++ {
				if err := bw.WriteRow(vector.NewInt(int64(i)), vector.NewInt(int64(i%1000))); err != nil {
					errs <- err
					return
				}
			}
			errs <- bw.Flush()
		}(s, lo, hi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return res, err
		}
	}

	deadline := time.Now().Add(5 * time.Minute)
	for {
		var ingested int64
		for _, st := range l.Stats() {
			ingested += st.Tuples
		}
		if ingested >= int64(tuples) {
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("datacell: wal ingest run stalled at %d/%d tuples", ingested, tuples)
		}
		time.Sleep(200 * time.Microsecond)
	}
	if !eng.Drain(5 * time.Minute) {
		return res, fmt.Errorf("datacell: wal ingest run did not drain")
	}
	res.Elapsed = time.Since(start)
	res.EventsPerSec = float64(tuples) / res.Elapsed.Seconds()
	for _, st := range l.Stats() {
		res.Frames += st.Frames
	}
	if walOn {
		frames, bytes, err := walDirUsage(filepath.Join(walDir, "s"))
		if err != nil {
			return res, err
		}
		res.LoggedFrames = frames
		res.WALBytes = bytes
	}
	return res, nil
}

// walDirUsage totals the segment files of one stream's log: intact frame
// count (via a read-only scan) and on-disk bytes.
func walDirUsage(dir string) (frames int, bytes int64, err error) {
	info, err := wal.Scan(dir, ^uint64(0), nil)
	if err != nil {
		return 0, 0, err
	}
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, werr error) error {
		if werr != nil || d.IsDir() {
			return werr
		}
		fi, serr := d.Info()
		if serr != nil {
			return serr
		}
		bytes += fi.Size()
		return nil
	})
	return info.Frames, bytes, err
}
