package datacell

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"datacell/internal/ingest"
	"datacell/internal/vector"
)

// IngestResult is one point of the ingest sweep (`microbench -fig
// ingest`): end-to-end events/second of feeding one stream over loopback
// TCP at one (protocol, shard count, batch size) setting — the
// repository's reproduction of the paper's Figure 4 communication
// pipeline, now with the wire protocol and receptor sharding as the
// swept variables.
type IngestResult struct {
	Binary  bool
	Shards  int
	Batch   int
	Tuples  int
	Elapsed time.Duration
	// EventsPerSec is stream tuples per second from first dial to full
	// kernel quiescence.
	EventsPerSec float64
	Frames       int64 // binary frames decoded (0 under the textual protocol)
	Stalls       int64 // backpressure stalls
	Results      int   // result tuples the query produced
}

// RunIngest measures end-to-end ingest throughput: `tuples` two-column
// tuples are shipped over `shards` concurrent loopback connections —
// binary frames or textual lines of `batch` tuples — into a sharded
// ingest group, consumed by one full-stream continuous query under the
// shared strategy at parallelism = shards (so the sharded runs route at
// ingest straight into partition baskets). The clock spans the first
// dial to full quiescence.
func RunIngest(binary bool, shards, batch, tuples int) (IngestResult, error) {
	if shards < 1 {
		shards = 1
	}
	res := IngestResult{Binary: binary, Shards: shards, Batch: batch, Tuples: tuples}
	eng := New()
	defer eng.Stop()
	if err := eng.SetStrategy(StrategyShared); err != nil {
		return res, err
	}
	if err := eng.SetParallelism(shards); err != nil {
		return res, err
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		return res, err
	}
	if err := eng.RegisterQuery("sink", `select t.v from [select * from s] t where t.v < 10`); err != nil {
		return res, err
	}
	l, err := eng.ListenIngest("s", "127.0.0.1:0", IngestOptions{Shards: shards, BatchSize: batch})
	if err != nil {
		return res, err
	}
	if err := eng.Start(); err != nil {
		return res, err
	}

	addrs := l.Addrs()
	start := time.Now()
	errs := make(chan error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := s * tuples / shards
		hi := (s + 1) * tuples / shards
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addrs[s%len(addrs)])
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			if binary {
				bw := ingest.NewBatchWriter(conn, []string{"k", "v"},
					[]vector.Type{vector.Int, vector.Int}, batch)
				for i := lo; i < hi; i++ {
					if err := bw.WriteRow(vector.NewInt(int64(i)), vector.NewInt(int64(i%1000))); err != nil {
						errs <- err
						return
					}
				}
				errs <- bw.Flush()
				return
			}
			w := bufio.NewWriterSize(conn, 64*1024)
			for i := lo; i < hi; i++ {
				if _, err := fmt.Fprintf(w, "%d|%d\n", i, i%1000); err != nil {
					errs <- err
					return
				}
			}
			errs <- w.Flush()
		}(s, lo, hi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return res, err
		}
	}

	// All bytes are written; wait for the receptors to deliver every
	// tuple, then for the kernel to consume them.
	deadline := time.Now().Add(5 * time.Minute)
	for {
		var ingested int64
		for _, st := range l.Stats() {
			ingested += st.Tuples
		}
		if ingested >= int64(tuples) {
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("datacell: ingest run stalled at %d/%d tuples", ingested, tuples)
		}
		time.Sleep(200 * time.Microsecond)
	}
	if !eng.Drain(5 * time.Minute) {
		return res, fmt.Errorf("datacell: ingest run did not drain")
	}
	res.Elapsed = time.Since(start)
	res.EventsPerSec = float64(tuples) / res.Elapsed.Seconds()
	for _, st := range l.Stats() {
		res.Frames += st.Frames
		res.Stalls += st.Stalls
	}
	out, err := eng.Out("sink")
	if err != nil {
		return res, err
	}
	res.Results = out.Len()
	return res, nil
}
