// Tickerfeed: a financial-stream application showing the paper's §5
// language features end to end — a with-block split replicating one stream
// into two differently filtered baskets, the outlier query with an
// order-by/top-n window, and incremental aggregates in session variables.
// Run with:
//
//	go run ./examples/tickerfeed
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"datacell"
)

func main() {
	eng := datacell.New()

	if _, err := eng.Exec(`
		create basket ticks (tag int, sym string, px float);
		declare seen int;
		set seen = 0;
	`); err != nil {
		log.Fatal(err)
	}

	// Split (§5 "Split and Merge"): the with-block binds each batch of
	// ticks once and routes it to two baskets with overlapping predicates
	// — partial replication, exactly the paper's example. The set
	// statement maintains a running count as a side effect (§5
	// "Aggregation").
	if err := eng.RegisterQuery("split", `
		with a as [select * from ticks]
		begin
			insert into hot  select a.tag, a.sym, a.px from a where a.px > 100;
			insert into cold select a.tag, a.sym, a.px from a where a.px <= 200;
			set seen = seen + (select count(*) from a);
		end`); err != nil {
		log.Fatal(err)
	}

	// Outliers (§5 "Filter and Map"): within every window of exactly 20
	// hot ticks in tag order, keep the expensive ones. The top-20 basket
	// expression makes the scheduler batch 20 tuples per firing.
	if err := eng.RegisterQuery("outliers", `
		select b.tag, b.sym, b.px
		from [select top 20 from hot order by tag] as b
		where b.px > 150`); err != nil {
		log.Fatal(err)
	}

	results := make(chan int, 64)
	if _, err := eng.SubscribeQuery("outliers", datacell.SubscribeOptions{OnEmit: func(em datacell.Emit) {
		for _, row := range em.Table.Rows {
			fmt.Printf("outlier: tag %v %s at %.2f\n", row[0], row[1], row[2])
		}
		results <- em.Table.Len()
	}}); err != nil {
		log.Fatal(err)
	}

	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()

	rng := rand.New(rand.NewSource(7))
	syms := []string{"ACME", "GLOBEX", "INITECH"}
	for i := 0; i < 400; i++ {
		px := 50 + rng.Float64()*150 // 50..200
		if err := eng.Append("ticks", datacell.Row{i, syms[rng.Intn(len(syms))], px}); err != nil {
			log.Fatal(err)
		}
	}

	got := 0
	deadline := time.After(5 * time.Second)
	for got == 0 {
		select {
		case n := <-results:
			got += n
		case <-deadline:
			log.Fatal("no outliers within 5s")
		}
	}

	// The incremental aggregate kept in a session variable, and a one-time
	// query over the cold basket (a basket inspected outside a basket
	// expression behaves like a table).
	eng.Drain(2 * time.Second)
	cold, err := eng.Query(`select count(*) as n from cold`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold ticks retained: %v\n", cold.Rows[0][0])
}
