// Quickstart: the smallest complete DataCell application.
//
// A stream of trades flows into a basket; a continuous query with a basket
// expression picks out the large trades; a subscriber prints them. Run
// with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"datacell"
)

func main() {
	eng := datacell.New()

	// A basket is a stream table: incoming tuples wait here until the
	// continuous queries have seen them.
	if _, err := eng.Exec(`create basket trades (sym string, px float, qty int)`); err != nil {
		log.Fatal(err)
	}

	// The [ ... ] is a basket expression: it consumes the trades it
	// references, which is what moves the stream forward. The outer where
	// clause filters without affecting consumption.
	err := eng.RegisterQuery("big",
		`select t.sym, t.px, t.qty from [select * from trades] t where t.px * t.qty > 10000`)
	if err != nil {
		log.Fatal(err)
	}

	done := make(chan struct{})
	_, err = eng.SubscribeQuery("big", datacell.SubscribeOptions{OnEmit: func(em datacell.Emit) {
		for _, row := range em.Table.Rows {
			fmt.Printf("large trade: %s %v x %v\n", row[0], row[1], row[2])
		}
		select {
		case <-done:
		default:
			close(done)
		}
	}})
	if err != nil {
		log.Fatal(err)
	}

	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()

	feed := []datacell.Row{
		{"ACME", 250.0, 10},   // 2500: small
		{"GLOBEX", 99.5, 200}, // 19900: large
		{"ACME", 252.0, 100},  // 25200: large
	}
	if err := eng.Append("trades", feed...); err != nil {
		log.Fatal(err)
	}

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		log.Fatal("no results within 5s")
	}
}
