// Networkmon: network flow monitoring over real TCP receptors and
// emitters — the deployment shape of the paper's Figure 1, with sensors
// and actuators as separate processes.
//
// A simulated probe process connects over TCP and streams flow records
// (src, dst, port, bytes) — by default as columnar batch frames over the
// engine's binary wire protocol, with -text as the escape hatch back to
// the flat pipe-separated tuple format (the receptor sniffs the protocol
// per connection, so both probes work against the same socket). Two
// continuous queries watch the stream: one flags elephant flows, one
// aggregates per-port traffic. An actuator process connects to the
// emitter side and receives the alerts. Run with:
//
//	go run ./examples/networkmon
//	go run ./examples/networkmon -text
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"strings"
	"time"

	"datacell"
	"datacell/internal/ingest"
	"datacell/internal/vector"
)

func main() {
	text := flag.Bool("text", false, "probe speaks the flat textual tuple protocol instead of binary frames")
	flag.Parse()
	eng := datacell.New()
	if _, err := eng.Exec(`create basket flows (src string, dst string, port int, bytes int)`); err != nil {
		log.Fatal(err)
	}

	if err := eng.RegisterQuery("elephants",
		`select f.src, f.dst, f.bytes from [select * from flows] f where f.bytes > 1000000`); err != nil {
		log.Fatal(err)
	}
	if err := eng.RegisterQuery("portload", `
		select f.port, sum(f.bytes) as total, count(*) as flows
		from [select top 50 from flows] f
		group by f.port
		having total > 5000000`); err != nil {
		log.Fatal(err)
	}

	// Show the compiled shape of a query before running it.
	plan, err := eng.Explain(`select f.src, f.dst, f.bytes from [select * from flows] f where f.bytes > 1000000`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("plan:\n" + plan)

	inAddr, err := eng.ListenTCP("flows", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	outAddr, err := eng.ServeTCP("elephants", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.SubscribeQuery("portload", datacell.SubscribeOptions{OnEmit: func(em datacell.Emit) {
		for _, row := range em.Table.Rows {
			fmt.Printf("hot port %v: %v bytes over %v flows\n", row[0], row[1], row[2])
		}
	}}); err != nil {
		log.Fatal(err)
	}

	// Actuator process: consumes elephant-flow alerts over TCP.
	gotAlert := make(chan string, 16)
	actuator, err := net.Dial("tcp", outAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer actuator.Close()
	go func() {
		sc := bufio.NewScanner(actuator)
		for sc.Scan() {
			gotAlert <- sc.Text()
		}
	}()

	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()

	// Probe process: streams flow records over TCP — binary frames by
	// default, textual lines with -text.
	probe, err := net.Dial("tcp", inAddr)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		defer probe.Close()
		rng := rand.New(rand.NewSource(1))
		flow := func(i int) (src, dst string, port, size int) {
			size = rng.Intn(200_000)
			if i%97 == 0 {
				size = 1_500_000 + rng.Intn(500_000) // an elephant
			}
			return fmt.Sprintf("10.0.0.%d", rng.Intn(255)), fmt.Sprintf("10.1.0.%d", rng.Intn(255)),
				[]int{80, 443, 53}[rng.Intn(3)], size
		}
		if *text {
			w := bufio.NewWriter(probe)
			for i := 0; i < 500; i++ {
				src, dst, port, size := flow(i)
				fmt.Fprintf(w, "%s|%s|%d|%d\n", src, dst, port, size)
			}
			w.Flush()
			return
		}
		bw := ingest.NewBatchWriter(probe,
			[]string{"src", "dst", "port", "bytes"},
			[]vector.Type{vector.Str, vector.Str, vector.Int, vector.Int}, 64)
		for i := 0; i < 500; i++ {
			src, dst, port, size := flow(i)
			if err := bw.WriteRow(vector.NewStr(src), vector.NewStr(dst),
				vector.NewInt(int64(port)), vector.NewInt(int64(size))); err != nil {
				log.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			log.Fatal(err)
		}
	}()

	select {
	case alert := <-gotAlert:
		parts := strings.Split(alert, "|")
		fmt.Printf("elephant flow alert: %s -> %s (%s bytes)\n", parts[0], parts[1], parts[2])
	case <-time.After(5 * time.Second):
		log.Fatal("no elephant alert within 5s")
	}
}
