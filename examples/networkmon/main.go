// Networkmon: network flow monitoring over real TCP receptors and
// emitters — the deployment shape of the paper's Figure 1, with sensors
// and actuators as separate processes speaking the flat textual tuple
// protocol.
//
// A simulated probe process connects over TCP and streams flow records
// (src, dst, port, bytes). Two continuous queries watch the stream: one
// flags elephant flows, one aggregates per-port traffic. An actuator
// process connects to the emitter side and receives the alerts. Run with:
//
//	go run ./examples/networkmon
package main

import (
	"bufio"
	"fmt"
	"log"
	"math/rand"
	"net"
	"strings"
	"time"

	"datacell"
)

func main() {
	eng := datacell.New()
	if _, err := eng.Exec(`create basket flows (src string, dst string, port int, bytes int)`); err != nil {
		log.Fatal(err)
	}

	if err := eng.RegisterQuery("elephants",
		`select f.src, f.dst, f.bytes from [select * from flows] f where f.bytes > 1000000`); err != nil {
		log.Fatal(err)
	}
	if err := eng.RegisterQuery("portload", `
		select f.port, sum(f.bytes) as total, count(*) as flows
		from [select top 50 from flows] f
		group by f.port
		having total > 5000000`); err != nil {
		log.Fatal(err)
	}

	// Show the compiled shape of a query before running it.
	plan, err := eng.Explain(`select f.src, f.dst, f.bytes from [select * from flows] f where f.bytes > 1000000`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("plan:\n" + plan)

	inAddr, err := eng.ListenTCP("flows", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	outAddr, err := eng.ServeTCP("elephants", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Subscribe("portload", func(t datacell.Table) {
		for _, row := range t.Rows {
			fmt.Printf("hot port %v: %v bytes over %v flows\n", row[0], row[1], row[2])
		}
	}); err != nil {
		log.Fatal(err)
	}

	// Actuator process: consumes elephant-flow alerts over TCP.
	gotAlert := make(chan string, 16)
	actuator, err := net.Dial("tcp", outAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer actuator.Close()
	go func() {
		sc := bufio.NewScanner(actuator)
		for sc.Scan() {
			gotAlert <- sc.Text()
		}
	}()

	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()

	// Probe process: streams flow records over TCP.
	probe, err := net.Dial("tcp", inAddr)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		defer probe.Close()
		rng := rand.New(rand.NewSource(1))
		w := bufio.NewWriter(probe)
		for i := 0; i < 500; i++ {
			size := rng.Intn(200_000)
			if i%97 == 0 {
				size = 1_500_000 + rng.Intn(500_000) // an elephant
			}
			fmt.Fprintf(w, "10.0.0.%d|10.1.0.%d|%d|%d\n",
				rng.Intn(255), rng.Intn(255), []int{80, 443, 53}[rng.Intn(3)], size)
		}
		w.Flush()
	}()

	select {
	case alert := <-gotAlert:
		parts := strings.Split(alert, "|")
		fmt.Printf("elephant flow alert: %s -> %s (%s bytes)\n", parts[0], parts[1], parts[2])
	case <-time.After(5 * time.Second):
		log.Fatal("no elephant alert within 5s")
	}
}
