// Trafficmonitor: a miniature Linear-Road-style application on the public
// API — the workload class the paper's introduction motivates (network and
// sensor monitoring).
//
// Position reports from cars stream in; one continuous query maintains
// per-segment congestion statistics with grouped aggregation over batches
// of reports, and a second one singles out crawling vehicles through a
// predicate window. A with-block split routes raw reports into both
// pipelines so each query owns its copy. Run with:
//
//	go run ./examples/trafficmonitor
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"datacell"
)

func main() {
	eng := datacell.New()

	if _, err := eng.Exec(`
		create basket reports (vid int, seg int, speed int);
	`); err != nil {
		log.Fatal(err)
	}

	// Congestion: average speed and car count per segment, computed over
	// each batch of reports. Batch processing is explicit: the basket
	// expression's top-100 window makes the scheduler wait until 100
	// reports have been collected before the query fires.
	err := eng.RegisterQuery("congestion", `
		select r.seg, avg(r.speed) as lav, count(*) as cars
		from [select top 100 from reports] r
		group by r.seg
		having lav < 40`)
	if err != nil {
		log.Fatal(err)
	}

	// Crawlers: a predicate window — only reports under 10 mph are even
	// consumed by this query; everything else stays for other consumers.
	err = eng.RegisterQuery("crawlers",
		`select c.vid, c.seg, c.speed from [select * from reports where reports.speed < 10] c`)
	if err != nil {
		log.Fatal(err)
	}

	congested := make(chan struct{})
	if _, err := eng.SubscribeQuery("congestion", datacell.SubscribeOptions{OnEmit: func(em datacell.Emit) {
		for _, row := range em.Table.Rows {
			fmt.Printf("congested segment %v: lav %.1f mph over %v cars\n", row[0], row[1], row[2])
		}
		if em.Table.Len() > 0 {
			select {
			case <-congested:
			default:
				close(congested)
			}
		}
	}}); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.SubscribeQuery("crawlers", datacell.SubscribeOptions{OnEmit: func(em datacell.Emit) {
		for _, row := range em.Table.Rows {
			fmt.Printf("crawler: car %v at segment %v doing %v mph\n", row[0], row[1], row[2])
		}
	}}); err != nil {
		log.Fatal(err)
	}

	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()

	// Simulate traffic: segment 7 is jammed, the rest flows freely.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		seg := rng.Intn(10)
		speed := 45 + rng.Intn(40)
		if seg == 7 {
			speed = 5 + rng.Intn(25)
		}
		if err := eng.Append("reports", datacell.Row{i, seg, speed}); err != nil {
			log.Fatal(err)
		}
	}

	select {
	case <-congested:
	case <-time.After(5 * time.Second):
		log.Fatal("no congestion detected within 5s")
	}
}
