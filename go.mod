module datacell

go 1.23
