// Benchmarks regenerating every figure of the paper's evaluation (§6).
// Each benchmark corresponds to one figure or reported number; the
// EXPERIMENTS.md file records the measured shapes against the paper's.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// The cmd/microbench and cmd/linearroad binaries print the same series in
// tabular form for plotting.
package datacell

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/core"
	"datacell/internal/expr"
	"datacell/internal/lroad"
	"datacell/internal/microbench"
	"datacell/internal/relop"
	"datacell/internal/vector"
)

// BenchmarkFig4CommPipeline measures the full sensor→TCP→kernel→TCP→actuator
// pipeline of Figure 4 for 8..64 chained queries, with and without the
// kernel in the loop. Reported metrics: ms per batch (Fig 4a) and
// tuples/s (Fig 4b).
func BenchmarkFig4CommPipeline(b *testing.B) {
	const tuples = 20_000
	for _, q := range []int{8, 16, 32, 64} {
		for _, withKernel := range []bool{true, false} {
			name := fmt.Sprintf("queries=%d/kernel=%v", q, withKernel)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := microbench.RunCommPipeline(q, tuples, withKernel)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.Elapsed.Microseconds())/1000, "ms/batch")
					b.ReportMetric(res.Throughput, "tuples/s")
				}
			})
		}
	}
}

// BenchmarkKernelThroughput is the §6.1 "pure kernel activity" number: the
// event rate of a single select factory with no communication in the loop
// (the paper reports ~7M events/s per factory). allocs/op covers 20
// firings plus the warm-up growth of the fresh baskets; the steady-state
// firing itself is allocation free.
func BenchmarkKernelThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rate, err := microbench.KernelThroughput(100_000, 20, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rate/1e6, "Mevents/s")
	}
}

// BenchmarkFig5aBatchProcessing sweeps the batch size T for 10/100/1000
// installed queries (Figure 5a). Reported metric: average end-to-end
// latency per tuple in microseconds.
func BenchmarkFig5aBatchProcessing(b *testing.B) {
	const gap = 2 * time.Microsecond
	for _, q := range []int{10, 100, 1000} {
		for _, batch := range []int{1, 100, 10_000, 100_000} {
			total := 100_000
			if batch == 1 {
				total = 10_000 // tuple-at-a-time is ~1000x slower; bound the run
			}
			name := fmt.Sprintf("queries=%d/T=%d", q, batch)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := microbench.RunBatchSweep(q, total, batch, gap, 1)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.LatencyPer.Nanoseconds())/1000, "µs/tuple")
				}
			})
		}
	}
}

// BenchmarkFig5bStrategies compares the three processing strategies while
// varying the number of installed queries at a fixed batch of 10^5 tuples
// (Figure 5b), driven through the public engine API: the queries are
// registered as SQL continuous queries and the strategy is selected with
// Engine.SetStrategy, exactly as an application would. Expected ordering:
// shared < partial < separate, the gap widening with the query count; the
// replicas/tuple metric shows separate copying the stream once per query
// while shared and partial ingest each tuple exactly once.
// (internal/microbench.RunStrategySweep keeps the hand-wired kernel
// variant of this experiment.)
func BenchmarkFig5bStrategies(b *testing.B) {
	const tuples = 100_000
	for _, q := range []int{2, 8, 32, 256, 1024} {
		for _, s := range []Strategy{StrategySeparate, StrategyShared, StrategyPartial} {
			b.Run(fmt.Sprintf("queries=%d/%s", q, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := RunFig5b(s, q, tuples, 1)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.Elapsed.Seconds(), "s/batch")
					b.ReportMetric(float64(res.ReplicaAppended)/float64(res.StreamAppended), "replicas/tuple")
				}
			})
		}
	}
}

// BenchmarkLinearRoad runs a shortened Linear Road benchmark (Figures 7-9)
// and reports the end-to-end input rate and the worst Q7 activation (the
// response-deadline headroom). cmd/linearroad runs the full three hours.
func BenchmarkLinearRoad(b *testing.B) {
	for _, sf := range []float64{0.5, 1} {
		b.Run(fmt.Sprintf("sf=%.1f", sf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := lroad.DefaultConfig(sf)
				cfg.Duration = 900 // 15 benchmark minutes per iteration
				res, err := lroad.Run(cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				if v := lroad.Validate(res); !v.OK() {
					b.Fatalf("validation failed: %v", v.Errors[0])
				}
				b.ReportMetric(float64(res.TotalIn), "tuples")
				b.ReportMetric(float64(res.MaxProc["Q7"].Microseconds())/1000, "maxQ7ms")
			}
		})
	}
}

// --- Ablations for the design choices DESIGN.md calls out ---------------

// BenchmarkAblationDelete compares the dedicated one-pass shift-delete
// operator against composing generic operators (gather the complement into
// a fresh vector), the paper's reported 20-30% win from new kernel
// operators.
func BenchmarkAblationDelete(b *testing.B) {
	const n = 1 << 16
	del := make([]int32, 0, n/10)
	for i := int32(0); i < n; i += 10 {
		del = append(del, i)
	}
	base := make([]int64, n)
	for i := range base {
		base[i] = int64(i)
	}
	b.Run("shift-delete", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := vector.FromInts(append([]int64(nil), base...))
			v.DeleteSorted(del)
		}
	})
	b.Run("gather-complement", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := vector.FromInts(append([]int64(nil), base...))
			keep := relop.CandNot(del, n)
			_ = v.Gather(keep)
		}
	})
}

// BenchmarkAblationColumnBinding measures the column-store advantage the
// paper leans on: a query touching 2 of 8 stream attributes processes only
// the bound columns, versus a row-style engine dragging all 8 through the
// pipeline.
func BenchmarkAblationColumnBinding(b *testing.B) {
	const n = 100_000
	const k = 8
	names := make([]string, k)
	cols := make([]*vector.Vector, k)
	rng := rand.New(rand.NewSource(1))
	for c := 0; c < k; c++ {
		names[c] = fmt.Sprintf("a%d", c)
		data := make([]int64, n)
		for i := range data {
			data[i] = rng.Int63n(10_000)
		}
		cols[c] = vector.FromInts(data)
	}
	full := bat.NewRelation(names, cols)

	run := func(b *testing.B, width int) {
		in := basket.New("bind.in", names[:width], typesOf(width))
		out := basket.New("bind.out", names[:width], typesOf(width))
		f := core.MustFactory("bind.q", []*basket.Basket{in}, []*basket.Basket{out},
			func(ctx *core.Context) error {
				rel := ctx.In(0).TakeAllLocked()
				sel := relop.SelectPred(rel.ColByName("a0"), relop.LT, vector.NewInt(100), nil)
				if len(sel) > 0 {
					if _, err := ctx.Out(0).AppendLocked(rel.Gather(sel)); err != nil {
						return err
					}
				}
				return nil
			})
		sub, err := full.Project(names[:width]...)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := in.Append(sub); err != nil {
				b.Fatal(err)
			}
			if _, err := f.TryFire(); err != nil {
				b.Fatal(err)
			}
			out.TakeAll()
		}
		b.SetBytes(int64(width * n * 8))
	}
	b.Run("bound-2-of-8", func(b *testing.B) { run(b, 2) })
	b.Run("all-8", func(b *testing.B) { run(b, 8) })
}

func typesOf(k int) []vector.Type {
	ts := make([]vector.Type, k)
	for i := range ts {
		ts[i] = vector.Int
	}
	return ts
}

// BenchmarkAblationPredicatePushdown compares the candidate-list selection
// path (predicates pushed into kernel primitives) against materialising
// boolean vectors for the same predicate.
func BenchmarkAblationPredicatePushdown(b *testing.B) {
	const n = 100_000
	rng := rand.New(rand.NewSource(2))
	data := make([]int64, n)
	for i := range data {
		data[i] = rng.Int63n(10_000)
	}
	rel := bat.NewRelation([]string{"x"}, []*vector.Vector{vector.FromInts(data)})
	pred := expr.NewBin(expr.And,
		expr.NewBin(expr.Ge, expr.NewCol("x"), expr.NewConst(vector.NewInt(100))),
		expr.NewBin(expr.Lt, expr.NewCol("x"), expr.NewConst(vector.NewInt(200))))
	b.Run("pushdown", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := expr.EvalSelect(pred, rel, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v, err := pred.Eval(rel)
			if err != nil {
				b.Fatal(err)
			}
			relop.SelectBool(v, nil)
		}
	})
}

// BenchmarkSQLQueryFiring measures the end-to-end cost of one firing of a
// compiled SQL continuous query over a 10^4-tuple batch — the overhead the
// SQL layer adds on top of the hand-wired kernel path.
func BenchmarkSQLQueryFiring(b *testing.B) {
	eng := New()
	if _, err := eng.Exec(`create basket s (v int, w int)`); err != nil {
		b.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select t.v, t.w from [select * from s] t where t.v < 100`); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	rows := make([]Row, 10_000)
	for i := range rows {
		rows[i] = Row{rng.Int63n(10_000), rng.Int63()}
	}
	out, err := eng.Out("q")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Append("s", rows...); err != nil {
			b.Fatal(err)
		}
		if err := eng.RunSync(); err != nil {
			b.Fatal(err)
		}
		out.TakeAll()
	}
	b.SetBytes(int64(len(rows) * 16))
}

// BenchmarkSingleQueryFiring isolates the steady-state cost of one firing
// cycle of a compiled continuous query — ingest of a pre-built columnar
// batch, one firing through the execution arena, result drain via
// relation ping-pong — with allocs/op as the headline metric. This is the
// benchmark the allocation-regression tests guard (the pre-arena engine
// sat at >10^4 allocs/op for the same cycle).
func BenchmarkSingleQueryFiring(b *testing.B) {
	eng := New()
	if _, err := eng.Exec(`create basket s (v int, w int)`); err != nil {
		b.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select t.v, t.w from [select * from s] t where t.v < 100`); err != nil {
		b.Fatal(err)
	}
	out, err := eng.Out("q")
	if err != nil {
		b.Fatal(err)
	}
	const n = 10_000
	rng := rand.New(rand.NewSource(3))
	vs := make([]int64, n)
	ws := make([]int64, n)
	for i := range vs {
		vs[i], ws[i] = rng.Int63n(10_000), rng.Int63()
	}
	batch := bat.NewRelation([]string{"v", "w"}, []*vector.Vector{
		vector.FromInts(vs), vector.FromInts(ws),
	})
	st := eng.Catalog().Basket("s")
	var spare *bat.Relation
	cycle := func() error {
		if _, err := st.Append(batch); err != nil {
			return err
		}
		if err := eng.RunSync(); err != nil {
			return err
		}
		out.Lock()
		spare = out.ExchangeLocked(spare)
		out.Unlock()
		return nil
	}
	for i := 0; i < 3; i++ { // warm arena and ping-pong relations
		if err := cycle(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.SetBytes(int64(n * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cycle(); err != nil {
			b.Fatal(err)
		}
	}
}
