package datacell

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// parallelWorkload feeds a randomized stream through a fixed query mix at
// the given strategy and parallelism, draining synchronously after every
// batch, and returns each query's full output as a sorted row multiset.
// withNonPartitionable adds a TOP-window query whose verdict is "none":
// under the separate strategy it exercises partitioned and unpartitioned
// members coexisting in one group; under shared/partial it would pin the
// whole group to one partition, defeating the differential, so it is
// omitted there.
func parallelWorkload(t *testing.T, strategy Strategy, parallelism int, withNonPartitionable bool, seed int64) map[string][]string {
	t.Helper()
	eng := New()
	if err := eng.SetStrategy(strategy); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelism(parallelism); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	queries := []NamedQuery{
		{Name: "rr1", SQL: `select t.v from [select * from s where v < 400] t`},
		{Name: "rr2", SQL: `select t.k, t.v from [select * from s where v >= 300 and v < 700] t where t.v % 2 = 0`},
		{Name: "agg", SQL: `select t.k, count(*) as n, sum(t.v) as total from [select * from s where v >= 100] t group by t.k`},
	}
	if withNonPartitionable {
		queries = append(queries, NamedQuery{
			Name: "np", SQL: `select t.v from [select top 5 * from s] t`,
		})
	}
	if err := eng.RegisterQueries(queries); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for batch := 0; batch < 12; batch++ {
		n := 20 + rng.Intn(60)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{rng.Int63n(16), rng.Int63n(1000)}
		}
		if err := eng.Append("s", rows...); err != nil {
			t.Fatal(err)
		}
		if err := eng.RunSync(); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string][]string{}
	for _, q := range queries {
		out, err := eng.Out(q.Name)
		if err != nil {
			t.Fatal(err)
		}
		tbl := tableOf(out.Snapshot())
		rows := make([]string, 0, len(tbl.Rows))
		for _, r := range tbl.Rows {
			parts := make([]string, len(r))
			for i, c := range r {
				parts[i] = fmt.Sprint(c)
			}
			rows = append(rows, strings.Join(parts, "|"))
		}
		sort.Strings(rows)
		got[q.Name] = rows
	}
	return got
}

// TestParallelDifferential asserts that partitioned execution is
// result-equivalent to single-partition execution: for every sharing
// strategy, the same randomized stream through the same query mix yields
// identical output multisets at P=1 and P=4.
func TestParallelDifferential(t *testing.T) {
	for _, strategy := range []Strategy{StrategySeparate, StrategyShared, StrategyPartial} {
		t.Run(string(strategy), func(t *testing.T) {
			withNP := strategy == StrategySeparate
			base := parallelWorkload(t, strategy, 1, withNP, 42)
			part := parallelWorkload(t, strategy, 4, withNP, 42)
			for name, want := range base {
				gotRows := part[name]
				if len(gotRows) != len(want) {
					t.Errorf("%s: P=4 produced %d rows, P=1 produced %d", name, len(gotRows), len(want))
					continue
				}
				for i := range want {
					if gotRows[i] != want[i] {
						t.Errorf("%s: row %d differs: P=4 %q vs P=1 %q", name, i, gotRows[i], want[i])
						break
					}
				}
				if len(want) == 0 {
					t.Errorf("%s: workload produced no rows; differential is vacuous", name)
				}
			}
		})
	}
}

// TestParallelismAcrossGroupWiring asserts the group actually partitions:
// P=4 with partitionable members reports 4 partitions, and a
// non-partitionable member pins a shared group back to 1.
func TestParallelismAcrossGroupWiring(t *testing.T) {
	eng := New()
	if err := eng.SetStrategy(StrategyShared); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q0", `select t.v from [select * from s where v < 10] t`); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	gs := eng.Groups()
	if len(gs) != 1 || gs[0].Partitions != 4 {
		t.Fatalf("partitionable shared group: %+v", gs)
	}
	// A TOP-window query must see the whole stream; the shared group falls
	// back to one partition.
	if err := eng.RegisterQuery("np", `select t.v from [select top 5 * from s] t`); err != nil {
		t.Fatal(err)
	}
	gs = eng.Groups()
	if len(gs) != 1 || gs[0].Partitions != 1 {
		t.Fatalf("group with non-partitionable member should fall back to P=1: %+v", gs)
	}
	if err := eng.RemoveQuery("np"); err != nil {
		t.Fatal(err)
	}
	gs = eng.Groups()
	if len(gs) != 1 || gs[0].Partitions != 4 {
		t.Fatalf("group should re-partition after removal: %+v", gs)
	}
}

// TestParallelismPragma drives SetParallelism through the SQL pragma and
// checks rejection of bad values.
func TestParallelismPragma(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`set parallelism = 4`); err != nil {
		t.Fatal(err)
	}
	if got := eng.Parallelism(); got != 4 {
		t.Fatalf("Parallelism() = %d, want 4", got)
	}
	if _, err := eng.Exec(`set parallelism = 0`); err == nil {
		t.Fatal("set parallelism = 0 should be rejected")
	}
	if _, err := eng.Exec(`set parallelism = 'lots'`); err == nil {
		t.Fatal("set parallelism = 'lots' should be rejected")
	}
	if err := eng.SetParallelism(-3); err == nil {
		t.Fatal("SetParallelism(-3) should be rejected")
	}
}

// TestExplainShowsPartitioning checks the explain surface of the verdict.
func TestExplainShowsPartitioning(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		sql  string
		want string
	}{
		{`select t.v from [select * from s where v < 10] t`, "partitioning range(v) across 4 partitions"},
		{`select t.v from [select * from s where v % 2 = 0] t`, "partitioning round-robin across 4 partitions"},
		{`select t.k, count(*) as n from [select * from s] t group by t.k`, "partitioning hash(k) across 4 partitions"},
		{`select t.v from [select top 5 * from s] t`, "partitioning none"},
	} {
		out, err := eng.Explain(tc.sql)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, tc.want) {
			t.Errorf("explain of %s missing %q:\n%s", tc.sql, tc.want, out)
		}
	}
	// Under shared wiring an installed non-partitionable member pins the
	// whole group; explain must describe the wiring the query would
	// actually get, not its private verdict.
	if err := eng.SetStrategy(StrategyShared); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("np", `select t.v from [select top 5 * from s] t`); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Explain(`select t.v from [select * from s where v < 10] t`)
	if err != nil {
		t.Fatal(err)
	}
	if want := "group members pin the stream to one partition"; !strings.Contains(out, want) {
		t.Errorf("explain missing %q:\n%s", want, out)
	}
}

// TestParallelRegisterDeregisterRace registers and removes queries, and
// flips strategy and parallelism, while a feeder thread keeps the stream
// under load. It exists to run under -race: the group rewires must never
// race the splitter, clones or merge emitters.
func TestParallelRegisterDeregisterRace(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		rows := make([]Row, 16)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for j := range rows {
				rows[j] = Row{rng.Int63n(16), rng.Int63n(1000)}
			}
			if err := eng.Append("s", rows...); err != nil {
				return
			}
		}
	}()

	strategies := []Strategy{StrategySeparate, StrategyShared, StrategyPartial}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("rq%d", i)
		sql := fmt.Sprintf(`select t.v from [select * from s where v < %d] t`, 100+i*50)
		if i%5 == 4 {
			sql = `select t.k, count(*) as n from [select * from s] t group by t.k`
		}
		if err := eng.RegisterQuery(name, sql); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := eng.SetParallelism(1 + i%4); err != nil {
				t.Fatal(err)
			}
		}
		if i%3 == 0 {
			if err := eng.SetStrategy(strategies[(i/3)%len(strategies)]); err != nil {
				t.Fatal(err)
			}
		}
		if i >= 4 {
			if err := eng.RemoveQuery(fmt.Sprintf("rq%d", i-4)); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if !eng.Drain(30 * time.Second) {
		t.Fatal("engine did not drain after register/deregister churn")
	}
}
