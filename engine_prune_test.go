package datacell

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// pruneWorkload feeds a randomized stream through a sargable-heavy query
// mix at the given strategy and parallelism and returns each query's
// output as a sorted row multiset. The mix exercises every sargable shape
// the router understands — half-open ranges, BETWEEN, IN-sets, OR-unions,
// point equality — plus a row-local but non-sargable member, and the feed
// includes values outside every predicate so the catch-all actually
// receives residuals.
func pruneWorkload(t *testing.T, strategy Strategy, parallelism int, seed int64) map[string][]string {
	t.Helper()
	eng := New()
	defer eng.Stop()
	if err := eng.SetStrategy(strategy); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelism(parallelism); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	queries := []NamedQuery{
		{Name: "range", SQL: `select t.v from [select * from s where v >= 100 and v < 400] t`},
		{Name: "between", SQL: `select t.k, t.v from [select * from s where v between 250 and 600] t where t.v % 2 = 0`},
		{Name: "inset", SQL: `select t.v from [select * from s where v in (7, 99, 512)] t`},
		{Name: "orunion", SQL: `select t.v from [select * from s where v < 50 or v >= 900 and v < 950] t`},
		{Name: "point", SQL: `select t.k from [select * from s where v = 333] t`},
	}
	if strategy == StrategySeparate {
		// A row-local member without a sargable predicate: under separate
		// wiring it coexists (own round-robin split); under shared/partial
		// it would downgrade the whole group to round-robin and defeat
		// the pruning differential, so it joins only here.
		queries = append(queries, NamedQuery{
			Name: "nonsarg", SQL: `select t.v from [select * from s where v % 3 = 0] t`,
		})
	}
	if err := eng.RegisterQueries(queries); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for batch := 0; batch < 10; batch++ {
		n := 30 + rng.Intn(50)
		rows := make([]Row, n)
		for i := range rows {
			// Values beyond every predicate (up to 2000) guarantee
			// residuals for the catch-all.
			rows[i] = Row{rng.Int63n(16), rng.Int63n(2000)}
		}
		if err := eng.Append("s", rows...); err != nil {
			t.Fatal(err)
		}
		if err := eng.RunSync(); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string][]string{}
	for _, q := range queries {
		out, err := eng.Out(q.Name)
		if err != nil {
			t.Fatal(err)
		}
		tbl := tableOf(out.Snapshot())
		rows := make([]string, 0, len(tbl.Rows))
		for _, r := range tbl.Rows {
			parts := make([]string, len(r))
			for i, c := range r {
				parts[i] = fmt.Sprint(c)
			}
			rows = append(rows, strings.Join(parts, "|"))
		}
		sort.Strings(rows)
		got[q.Name] = rows
	}
	return got
}

// TestPrunedRoutingDifferential asserts that range-routed (pruned)
// execution is byte-identical to single-partition execution: for every
// sharing strategy and P ∈ {2, 4}, the same randomized stream through the
// same sargable query mix yields identical output multisets to P=1.
func TestPrunedRoutingDifferential(t *testing.T) {
	for _, strategy := range []Strategy{StrategySeparate, StrategyShared, StrategyPartial} {
		t.Run(string(strategy), func(t *testing.T) {
			base := pruneWorkload(t, strategy, 1, 99)
			for _, p := range []int{2, 4} {
				part := pruneWorkload(t, strategy, p, 99)
				for name, want := range base {
					gotRows := part[name]
					if len(gotRows) != len(want) {
						t.Errorf("P=%d %s: %d rows, P=1 produced %d", p, name, len(gotRows), len(want))
						continue
					}
					for i := range want {
						if gotRows[i] != want[i] {
							t.Errorf("P=%d %s: row %d differs: %q vs %q", p, name, i, gotRows[i], want[i])
							break
						}
					}
					if len(want) == 0 && name != "point" && name != "inset" {
						t.Errorf("%s: workload produced no rows; differential is vacuous", name)
					}
				}
			}
		})
	}
}

// TestCatchAllReceivesResiduals pins the pruning mechanics: tuples no
// query can match are counted as pruned (they sit in the catch-all, which
// no clone scans), matching tuples are routed into scanned partitions,
// and the query's output is exactly the matching set.
func TestCatchAllReceivesResiduals(t *testing.T) {
	eng := New()
	defer eng.Stop()
	if err := eng.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select t.v from [select * from s where v >= 0 and v < 100] t`); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 0, 300)
	for i := int64(0); i < 300; i++ {
		rows = append(rows, Row{i}) // 0..99 match, 100..299 cannot
	}
	if err := eng.Append("s", rows...); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Out("q")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 100 {
		t.Fatalf("query emitted %d rows, want 100", out.Len())
	}
	gs := eng.Groups()
	if len(gs) != 1 {
		t.Fatalf("groups = %+v", gs)
	}
	g := gs[0]
	if g.Routing != "range(v)" {
		t.Fatalf("routing = %q, want range(v)", g.Routing)
	}
	if g.Pruned != 200 {
		t.Fatalf("pruned = %d, want the 200 tuples outside [0,100)", g.Pruned)
	}
	if g.RoutedParts != 100 {
		t.Fatalf("routed into scanned partitions = %d, want 100", g.RoutedParts)
	}
	if g.Partitions != 4 || g.Wirings != 1 {
		t.Fatalf("partitions/wirings = %d/%d, want 4/1", g.Partitions, g.Wirings)
	}
}

// TestNonSargableStaysRoundRobin asserts the fallback: a row-local
// predicate the sargable analysis cannot bound keeps blind round-robin
// routing — nothing is pruned, every tuple reaches a scanned partition.
func TestNonSargableStaysRoundRobin(t *testing.T) {
	eng := New()
	defer eng.Stop()
	if err := eng.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select t.v from [select * from s where v % 2 = 0] t`); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 0, 100)
	for i := int64(0); i < 100; i++ {
		rows = append(rows, Row{i})
	}
	if err := eng.Append("s", rows...); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	g := eng.Groups()[0]
	if g.Routing != "round-robin" {
		t.Fatalf("routing = %q, want round-robin", g.Routing)
	}
	if g.Pruned != 0 || g.RoutedParts != 100 {
		t.Fatalf("pruned/routed = %d/%d, want 0/100", g.Pruned, g.RoutedParts)
	}
	out, err := eng.Out("q")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 50 {
		t.Fatalf("query emitted %d rows, want 50", out.Len())
	}
}

// TestGroupRangeUnionUnderShared asserts the group-wide verdict: under
// shared wiring two sargable members route on the union of their
// intervals — a tuple matching either query reaches the partitions, a
// tuple matching neither is pruned — and both queries stay correct.
func TestGroupRangeUnionUnderShared(t *testing.T) {
	eng := New()
	defer eng.Stop()
	if err := eng.SetStrategy(StrategyShared); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelism(2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQueries([]NamedQuery{
		{Name: "low", SQL: `select t.v from [select * from s where v >= 0 and v < 100] t`},
		{Name: "high", SQL: `select t.v from [select * from s where v >= 200 and v < 300] t`},
	}); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 0, 400)
	for i := int64(0); i < 400; i++ {
		rows = append(rows, Row{i})
	}
	if err := eng.Append("s", rows...); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]int{"low": 100, "high": 100} {
		out, err := eng.Out(name)
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != want {
			t.Fatalf("%s emitted %d rows, want %d", name, out.Len(), want)
		}
	}
	g := eng.Groups()[0]
	if g.Routing != "range(v)" {
		t.Fatalf("routing = %q, want range(v)", g.Routing)
	}
	// [100,200) and [300,400) match neither member: 200 pruned.
	if g.Pruned != 200 || g.RoutedParts != 200 {
		t.Fatalf("pruned/routed = %d/%d, want 200/200", g.Pruned, g.RoutedParts)
	}
}

// TestPruneRewireMigratesCatchAll asserts live rewires never lose
// residuals: tuples parked in the catch-all at P=4 return to the stream
// when parallelism drops to 1, and a late query that *does* match them
// still sees them.
func TestPruneRewireMigratesCatchAll(t *testing.T) {
	eng := New()
	defer eng.Stop()
	if err := eng.SetStrategy(StrategyShared); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("low", `select t.v from [select * from s where v < 100] t`); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 0, 200)
	for i := int64(0); i < 200; i++ {
		rows = append(rows, Row{i})
	}
	if err := eng.Append("s", rows...); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	if g := eng.Groups()[0]; g.Pruned != 100 {
		t.Fatalf("pruned = %d, want 100", g.Pruned)
	}
	// A new member that matches the parked residuals: the rewire must
	// bring them back into scanned territory.
	if err := eng.RegisterQuery("high", `select t.v from [select * from s where v >= 100] t`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Out("high")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 100 {
		t.Fatalf("late query saw %d residual rows, want 100", out.Len())
	}
}
