package datacell

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestEngineQuickPath(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket trades (sym string, px float)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("big", `select * from [select * from trades] t where t.px > 100`); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []Row
	if _, err := eng.SubscribeQuery("big", SubscribeOptions{OnEmit: func(em Emit) {
		mu.Lock()
		got = append(got, em.Table.Rows...)
		mu.Unlock()
	}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if err := eng.Append("trades", Row{"ACME", 250.0}, Row{"TINY", 10.0}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0][0].(string) != "ACME" {
		t.Errorf("results: %v", got)
	}
}

func TestEngineMultipleQueriesSeparateBaskets(t *testing.T) {
	// Two queries over the same stream must each see every tuple
	// (replication via the separate-baskets strategy).
	eng := New()
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("low", `select * from [select * from s] t where t.v < 50`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("high", `select * from [select * from s] t where t.v >= 50`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := eng.Append("s", Row{i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	lowOut, err := eng.Out("low")
	if err != nil {
		t.Fatal(err)
	}
	highOut, err := eng.Out("high")
	if err != nil {
		t.Fatal(err)
	}
	if lowOut.Len() != 50 || highOut.Len() != 50 {
		t.Errorf("low=%d high=%d, want 50/50", lowOut.Len(), highOut.Len())
	}
}

func TestEngineOneTimeQuery(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create table hist (id int, bal float)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("hist", Row{1, 100.5}, Row{2, 200.0}); err != nil {
		t.Fatal(err)
	}
	tb, err := eng.Query(`select id, bal from hist where bal > 150`)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 || tb.Rows[0][0].(int64) != 2 {
		t.Errorf("result: %+v", tb)
	}
	if _, err := eng.Query(`select * from [select * from hist] t`); err == nil {
		t.Error("continuous query must be rejected by Query")
	}
}

func TestEnginePipelineQueryChain(t *testing.T) {
	// Query chain: q1 narrows the stream, q2 consumes q1's output.
	eng := New()
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("stage1", `select * from [select * from s] t where t.v > 10`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("stage2", `select * from [select * from stage1_out] t where t.v < 20`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := eng.Append("s", Row{i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Out("stage2")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 9 { // 11..19
		t.Errorf("chain results = %d, want 9", out.Len())
	}
}

func TestEngineTCPRoundTrip(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (ts int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("all", `select * from [select * from s] t`); err != nil {
		t.Fatal(err)
	}
	inAddr, err := eng.ListenTCP("s", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := 0
	if _, err := eng.SubscribeQuery("all", SubscribeOptions{OnEmit: func(em Emit) {
		mu.Lock()
		count += em.Table.Len()
		mu.Unlock()
	}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	conn, err := dial(inAddr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		fmt.Fprintf(conn, "%d|%d\n", i, i*i)
	}
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := count
		mu.Unlock()
		if n >= 10 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 10 {
		t.Errorf("delivered = %d", count)
	}
}

func TestEngineDynamicQueryAfterStart(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("first", `select * from [select * from s] t`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if err := eng.RegisterQuery("second", `select * from [select * from s] t where t.v > 5`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := eng.Append("s", Row{i}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := eng.Out("second")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for out.Len() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if out.Len() != 4 {
		t.Errorf("dynamic query results = %d, want 4", out.Len())
	}
}

func TestEngineClockInjection(t *testing.T) {
	eng := New()
	fixed := time.Unix(1000, 0)
	eng.SetClock(func() time.Time { return fixed })
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("s", Row{1}); err != nil {
		t.Fatal(err)
	}
	b := eng.Catalog().Basket("s")
	snap := b.Snapshot()
	ts := snap.ColByName("sys_ts")
	if ts.Ints()[0] != fixed.UnixMicro() {
		t.Errorf("arrival ts = %d", ts.Ints()[0])
	}
}

func TestRowConversionErrors(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (v int, f float, b bool, s string, t timestamp)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("s", Row{1, 2.5, true, "x", time.Unix(5, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("s", Row{1}); err == nil {
		t.Error("short row should fail")
	}
	if err := eng.Append("s", Row{"NaNint", 2.5, true, "x", time.Unix(5, 0)}); err == nil {
		t.Error("bad int should fail")
	}
	if err := eng.Append("nosuch", Row{1}); err == nil {
		t.Error("unknown stream should fail")
	}
}

// dial is a tiny indirection so the test file has no direct net import noise.

func TestEngineExplainAndStats(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	plan, err := eng.Explain(`select * from [select * from s] t where t.v > 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) == 0 {
		t.Fatal("empty explain")
	}
	if err := eng.RegisterQuery("q", `select * from [select * from s] t where t.v > 5`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := eng.Append("s", Row{i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	stats := eng.Stats()
	if len(stats) != 1 || stats[0].Name != "q" {
		t.Fatalf("stats: %+v", stats)
	}
	if stats[0].Fires == 0 || stats[0].OutRows != 4 || stats[0].Pending != 4 {
		t.Errorf("stats: %+v", stats[0])
	}
	if stats[0].Errors != 0 || stats[0].LastErr != nil {
		t.Errorf("unexpected errors: %+v", stats[0])
	}
}

func TestEngineRemoveQuery(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("keep", `select * from [select * from s] t`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("drop", `select * from [select * from s] t where t.v > 5`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	if err := eng.Append("s", Row{10}); err != nil {
		t.Fatal(err)
	}
	dropOut, _ := eng.Out("drop")
	keepOut, _ := eng.Out("keep")
	deadline := time.Now().Add(5 * time.Second)
	for (dropOut.Len() < 1 || keepOut.Len() < 1) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if dropOut.Len() != 1 {
		t.Fatalf("pre-removal results = %d", dropOut.Len())
	}

	if err := eng.RemoveQuery("drop"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RemoveQuery("drop"); err == nil {
		t.Error("double removal should fail")
	}
	dropOut.TakeAll()
	// New tuples no longer reach the removed query, but the survivor
	// keeps processing.
	if err := eng.Append("s", Row{20}); err != nil {
		t.Fatal(err)
	}
	for keepOut.Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if keepOut.Len() != 2 {
		t.Errorf("survivor results = %d, want 2", keepOut.Len())
	}
	time.Sleep(20 * time.Millisecond)
	if dropOut.Len() != 0 {
		t.Errorf("removed query still produced %d results", dropOut.Len())
	}
	if len(eng.Stats()) != 1 {
		t.Errorf("stats still lists removed query: %+v", eng.Stats())
	}
}
