package datacell

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"datacell/internal/bat"
	"datacell/internal/faultpoint"
	"datacell/internal/ingest"
	"datacell/internal/stream"
	"datacell/internal/vector"
	"datacell/internal/wal"
)

// walQueries is the crash-differential workload: a row-local slice and a
// range-pruned window over the textual stream s, plus two-phase grouped
// aggregates (sum/count and avg) and a top-N over a unique key on the
// binary stream a — every wiring shape recovery must reproduce exactly.
// Windows are disjoint so the partial strategy's residue chain leaves
// every query a non-empty slice (same constraint as the agg workload).
var walQueries = []NamedQuery{
	{Name: "s_low", SQL: `select t.k, t.v from [select * from s where v < 100] t`},
	{Name: "s_range", SQL: `select t.v from [select * from s where v >= 100 and v < 400] t`},
	{Name: "a_gsum", SQL: `select t.k, count(*) as n, sum(t.v) as total from [select * from a where v < 400] t group by t.k`},
	{Name: "a_gavg", SQL: `select t.k, avg(t.v) as av from [select * from a where v >= 400 and v < 800] t group by t.k`},
	{Name: "a_top", SQL: `select top 8 t.k, t.v, t.u from [select * from a where v >= 800] t order by t.u desc`},
}

var (
	walSTypes = []vector.Type{vector.Int, vector.Int}
	walATypes = []vector.Type{vector.Int, vector.Int, vector.Int}
)

// walSRows and walARows are closed-form (no RNG) so the kill -9 child
// process regenerates the identical feed without any channel to the
// parent.
func walSRows() []Row {
	rows := make([]Row, 800)
	for i := range rows {
		rows[i] = Row{int64(i % 16), int64((i * 37) % 2000)}
	}
	return rows
}

func walARows() []Row {
	rows := make([]Row, 800)
	for i := range rows {
		rows[i] = Row{int64(i % 12), int64((i * 53) % 1000), int64(i)}
	}
	return rows
}

func buildWALEngine(t testing.TB, strategy Strategy, parallelism int) *Engine {
	t.Helper()
	eng := New()
	if err := eng.SetStrategy(strategy); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelism(parallelism); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket a (k int, v int, u int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQueries(walQueries); err != nil {
		t.Fatal(err)
	}
	return eng
}

func collectWALOutputs(t testing.TB, eng *Engine) map[string][]string {
	t.Helper()
	got := map[string][]string{}
	for _, q := range walQueries {
		out, err := eng.Out(q.Name)
		if err != nil {
			t.Fatal(err)
		}
		tbl := tableOf(out.Snapshot())
		rows := make([]string, 0, len(tbl.Rows))
		for _, r := range tbl.Rows {
			parts := make([]string, len(r))
			for i, c := range r {
				parts[i] = fmt.Sprint(c)
			}
			rows = append(rows, strings.Join(parts, "|"))
		}
		sort.Strings(rows)
		got[q.Name] = rows
	}
	return got
}

// walReference is the uninterrupted run: the full feed resident, one
// synchronous scheduler pass — the output any crash-and-recover run must
// reproduce byte for byte.
func walReference(t testing.TB, strategy Strategy, parallelism int) map[string][]string {
	t.Helper()
	eng := buildWALEngine(t, strategy, parallelism)
	defer eng.Stop()
	if err := eng.Append("s", walSRows()...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("a", walARows()...); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	return collectWALOutputs(t, eng)
}

// walDurableRows reads one stream's segment files straight off disk —
// what genuinely survived the crash — as pipe-joined row strings.
func walDurableRows(t testing.TB, dir string, types []vector.Type) []string {
	t.Helper()
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return nil
	}
	names := make([]string, len(types))
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
	}
	rel := bat.NewEmptyRelation(names, types)
	br := bufio.NewReader(bytes.NewReader(nil))
	fr := ingest.NewFrameReader(br, types)
	var rows []string
	if _, err := wal.Scan(dir, 0, func(seq uint64, frame []byte) error {
		br.Reset(bytes.NewReader(frame))
		if _, derr := fr.DecodeFrameInto(rel); derr != nil {
			return derr
		}
		rows = append(rows, stream.EncodeRelation(rel, len(types))...)
		rel.Clear()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return rows
}

// walRemainder is the sender's redelivery after a crash: the multiset
// difference between everything it sent and what the WAL made durable.
// It also cross-checks the log never fabricates or duplicates rows.
func walRemainder(t testing.TB, all []Row, durable []string) []Row {
	t.Helper()
	durCount := map[string]int{}
	for _, r := range durable {
		durCount[r]++
	}
	var rem []Row
	for _, row := range all {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprint(v)
		}
		key := strings.Join(parts, "|")
		if durCount[key] > 0 {
			durCount[key]--
			continue
		}
		rem = append(rem, row)
	}
	for k, c := range durCount {
		if c > 0 {
			t.Fatalf("WAL holds %d cop(ies) of %q that were never sent", c, k)
		}
	}
	return rem
}

// walFeedCrash feeds both streams over TCP into an engine whose
// scheduler is stopped, with the given faultpoint armed; once the site
// fires it kills the engine. Write errors are expected — the crash
// severs the connections mid-feed.
func walFeedCrash(t *testing.T, eng *Engine, sAddr, aAddr, site string) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", sAddr)
		if err != nil {
			return
		}
		defer conn.Close()
		w := bufio.NewWriter(conn)
		for i, r := range walSRows() {
			fmt.Fprintf(w, "%d|%d\n", r[0], r[1])
			if i%40 == 39 {
				if w.Flush() != nil {
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
		w.Flush()
	}()
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", aAddr)
		if err != nil {
			return
		}
		defer conn.Close()
		bw := ingest.NewBatchWriter(conn, []string{"k", "v", "u"}, walATypes, 16)
		for i, r := range walARows() {
			if bw.WriteRow(vector.NewInt(r[0].(int64)), vector.NewInt(r[1].(int64)), vector.NewInt(r[2].(int64))) != nil {
				return
			}
			if i%40 == 39 {
				time.Sleep(time.Millisecond)
			}
		}
		bw.Flush()
	}()
	deadline := time.Now().Add(30 * time.Second)
	for faultpoint.Armed(site) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	fired := !faultpoint.Armed(site)
	eng.Kill()
	wg.Wait()
	if !fired {
		t.Fatalf("faultpoint %s never fired during the feed", site)
	}
}

// walCrashRun is one crash-and-recover leg: ingest with a fault armed,
// die at the faultpoint, then recover into a fresh engine over the same
// WAL directory, redeliver the non-durable remainder, and run to
// quiescence.
func walCrashRun(t *testing.T, strategy Strategy, parallelism int, site string, act faultpoint.Action, after int) map[string][]string {
	t.Helper()
	faultpoint.Clear()
	defer faultpoint.Clear()
	dir := t.TempDir()

	eng := buildWALEngine(t, strategy, parallelism)
	if err := eng.OpenWAL(WALOptions{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	ls, err := eng.ListenIngest("s", "127.0.0.1:0", IngestOptions{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	la, err := eng.ListenIngest("a", "127.0.0.1:0", IngestOptions{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Scheduler deliberately not started: the crash lands mid-ingest with
	// nothing consumed, so recovery owns the whole feed.
	faultpoint.Inject(site, act, after, nil)
	walFeedCrash(t, eng, ls.Addr(), la.Addr(), site)

	durS := walDurableRows(t, filepath.Join(dir, "s"), walSTypes)
	durA := walDurableRows(t, filepath.Join(dir, "a"), walATypes)

	eng2 := buildWALEngine(t, strategy, parallelism)
	defer eng2.Stop()
	if err := eng2.OpenWAL(WALOptions{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	rec, err := eng2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Tuples != int64(len(durS)+len(durA)) {
		t.Fatalf("Recover replayed %d tuples, the segment files hold %d", rec.Tuples, len(durS)+len(durA))
	}
	rec2, err := eng2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Frames != 0 {
		t.Fatalf("second Recover replayed %d frames, want a no-op", rec2.Frames)
	}
	if rem := walRemainder(t, walSRows(), durS); len(rem) > 0 {
		if err := eng2.Append("s", rem...); err != nil {
			t.Fatal(err)
		}
	}
	if rem := walRemainder(t, walARows(), durA); len(rem) > 0 {
		if err := eng2.Append("a", rem...); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng2.RunSync(); err != nil {
		t.Fatal(err)
	}
	return collectWALOutputs(t, eng2)
}

// TestWALCrashRecoveryDifferential is the acceptance differential: for
// every faultpoint site, sharing strategy and parallelism, an engine
// killed mid-ingest and restarted with Recover (plus the sender's
// redelivery of non-durable rows) emits byte-identical output to the
// uninterrupted run — including range-pruned and two-phase-aggregation
// wirings.
func TestWALCrashRecoveryDifferential(t *testing.T) {
	faults := []struct {
		site  string
		act   faultpoint.Action
		after int
	}{
		{wal.FaultAppend, faultpoint.Crash, 20},
		{wal.FaultAppend, faultpoint.Short, 20},
		{wal.FaultSync, faultpoint.Crash, 3},
		{wal.FaultSynced, faultpoint.Crash, 3},
		{ingest.FaultDeliver, faultpoint.Crash, 20},
	}
	for _, strategy := range []Strategy{StrategySeparate, StrategyShared, StrategyPartial} {
		for _, p := range []int{1, 4} {
			want := walReference(t, strategy, p)
			for _, f := range faults {
				t.Run(fmt.Sprintf("%s_P%d_%s_%s", strategy, p, f.site, f.act), func(t *testing.T) {
					got := walCrashRun(t, strategy, p, f.site, f.act, f.after)
					for name, w := range want {
						if len(w) == 0 {
							t.Fatalf("%s produced no rows; differential is vacuous", name)
						}
						g := got[name]
						if len(g) != len(w) {
							t.Fatalf("%s: recovered run produced %d rows, uninterrupted %d", name, len(g), len(w))
						}
						for i := range w {
							if g[i] != w[i] {
								t.Fatalf("%s: row %d differs after recovery: %q vs %q", name, i, g[i], w[i])
							}
						}
					}
				})
			}
		}
	}
}

// TestWALCheckpointOnCleanStop pins the clean-shutdown path: a drained,
// stopped engine leaves a checkpoint covering every logged frame, so the
// next start replays nothing.
func TestWALCheckpointOnCleanStop(t *testing.T) {
	dir := t.TempDir()
	eng := buildWALEngine(t, StrategyShared, 2)
	if err := eng.OpenWAL(WALOptions{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	l, err := eng.ListenIngest("s", "127.0.0.1:0", IngestOptions{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(conn)
	const n = 200
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%d|%d\n", i%16, i)
	}
	w.Flush()
	conn.Close()
	waitIngested(t, eng, "s", n)
	if !eng.Drain(60 * time.Second) {
		t.Fatal("engine did not drain")
	}
	eng.Stop()

	info, err := wal.Scan(filepath.Join(dir, "s"), ^uint64(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.LastSeq == 0 {
		t.Fatal("nothing was logged")
	}
	if info.Checkpoint != info.LastSeq {
		t.Fatalf("checkpoint %d, want %d (clean stop must checkpoint the whole log)", info.Checkpoint, info.LastSeq)
	}
	eng2 := buildWALEngine(t, StrategyShared, 2)
	defer eng2.Stop()
	if err := eng2.OpenWAL(WALOptions{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	rec, err := eng2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Frames != 0 {
		t.Fatalf("recovery after clean stop replayed %d frames, want 0", rec.Frames)
	}
}

// TestWALHistoryLateJoin pins the WAL-backed replay source: a
// late-registered reader gets the stream's full logged history back as
// the textual lines a stream.Replayer consumes.
func TestWALHistoryLateJoin(t *testing.T) {
	dir := t.TempDir()
	eng := buildWALEngine(t, StrategyShared, 1)
	defer eng.Stop()
	if err := eng.OpenWAL(WALOptions{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	l, err := eng.ListenIngest("s", "127.0.0.1:0", IngestOptions{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	w := bufio.NewWriter(conn)
	for i := 0; i < 50; i++ {
		line := fmt.Sprintf("%d|%d", i%16, i)
		want = append(want, line)
		fmt.Fprintf(w, "%s\n", line)
	}
	w.Flush()
	conn.Close()
	waitIngested(t, eng, "s", 50)

	rc, err := eng.WALHistory("s", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var got []string
	sc := bufio.NewScanner(rc)
	for sc.Scan() {
		got = append(got, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(want)
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("history returned %d lines, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("history line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// walKill9Env carries the WAL directory into the helper child process.
const walKill9Env = "DATACELL_WAL_KILL9_DIR"

// TestWALKill9Child is the subprocess half of TestWALKill9Differential:
// it ingests with a crash faultpoint armed past a real fsync and dies
// with os.Exit(137) — genuine process death, not a simulation. It skips
// unless the parent set the environment marker.
func TestWALKill9Child(t *testing.T) {
	dir := os.Getenv(walKill9Env)
	if dir == "" {
		t.Skip("helper for TestWALKill9Differential")
	}
	faultpoint.SetCrashFn(func() { os.Exit(137) })
	eng := buildWALEngine(t, StrategyShared, 2)
	if err := eng.OpenWAL(WALOptions{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	l, err := eng.ListenIngest("s", "127.0.0.1:0", IngestOptions{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	faultpoint.Inject(wal.FaultSynced, faultpoint.Crash, 5, nil)
	conn, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)
	for i, r := range walSRows() {
		fmt.Fprintf(w, "%d|%d\n", r[0], r[1])
		if i%20 == 19 {
			if w.Flush() != nil {
				break // the crash severed the connection under us
			}
			time.Sleep(time.Millisecond)
		}
	}
	w.Flush()
	time.Sleep(2 * time.Second) // group-commit ticks keep running; die soon
	os.Exit(3)                  // the faultpoint never fired: distinct failure code
}

// TestWALKill9Differential crashes a real process with exit(137) at a
// post-fsync faultpoint mid-ingest, then recovers from the files it left
// behind and checks the differential against an uninterrupted run.
func TestWALKill9Differential(t *testing.T) {
	if os.Getenv(walKill9Env) != "" {
		t.Skip("running as child")
	}
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "TestWALKill9Child$")
	cmd.Env = append(os.Environ(), walKill9Env+"="+dir)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 137 {
		t.Fatalf("child exit = %v, want code 137; output:\n%s", err, out)
	}

	durable := walDurableRows(t, filepath.Join(dir, "s"), walSTypes)
	if len(durable) == 0 {
		t.Fatal("nothing durable: the child crashed after an fsync, frames must survive")
	}

	ref := buildWALEngine(t, StrategyShared, 2)
	defer ref.Stop()
	if err := ref.Append("s", walSRows()...); err != nil {
		t.Fatal(err)
	}
	if err := ref.RunSync(); err != nil {
		t.Fatal(err)
	}
	want := collectWALOutputs(t, ref)

	eng := buildWALEngine(t, StrategyShared, 2)
	defer eng.Stop()
	if err := eng.OpenWAL(WALOptions{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	if rem := walRemainder(t, walSRows(), durable); len(rem) > 0 {
		if err := eng.Append("s", rem...); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	got := collectWALOutputs(t, eng)
	for _, name := range []string{"s_low", "s_range"} {
		w, g := want[name], got[name]
		if len(w) == 0 {
			t.Fatalf("%s produced no rows; differential is vacuous", name)
		}
		if len(g) != len(w) {
			t.Fatalf("%s: recovered %d rows, uninterrupted %d", name, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: row %d differs after kill -9 recovery: %q vs %q", name, i, g[i], w[i])
			}
		}
	}
}
