package basket

import (
	"sync"
	"testing"
	"time"

	"datacell/internal/bat"
	"datacell/internal/relop"
	"datacell/internal/vector"
)

func newIntBasket(name string) *Basket {
	return New(name, []string{"x"}, []vector.Type{vector.Int})
}

func userRel(vals ...int64) *bat.Relation {
	return bat.NewRelation([]string{"x"}, []*vector.Vector{vector.FromInts(vals)})
}

func TestSchemaHasImplicitTimestamp(t *testing.T) {
	b := New("s", []string{"a", "b"}, []vector.Type{vector.Int, vector.Str})
	names, types := b.Schema()
	if len(names) != 3 || names[2] != TimestampCol || types[2] != vector.Timestamp {
		t.Errorf("schema = %v %v", names, types)
	}
	un, ut := b.UserSchema()
	if len(un) != 2 || un[1] != "b" || ut[1] != vector.Str {
		t.Errorf("user schema = %v %v", un, ut)
	}
}

func TestAppendStampsArrivalTime(t *testing.T) {
	b := newIntBasket("s")
	fixed := time.Unix(42, 0)
	b.SetClock(func() time.Time { return fixed })
	if _, err := b.Append(userRel(1, 2)); err != nil {
		t.Fatal(err)
	}
	snap := b.Snapshot()
	ts := snap.ColByName(TimestampCol)
	if ts == nil || ts.Ints()[0] != fixed.UnixMicro() || ts.Ints()[1] != fixed.UnixMicro() {
		t.Errorf("timestamps = %v", ts)
	}
}

func TestAppendArityChecked(t *testing.T) {
	b := New("s", []string{"a", "b"}, []vector.Type{vector.Int, vector.Int})
	if _, err := b.Append(userRel(1)); err == nil {
		t.Error("wrong arity should fail")
	}
}

func TestIntegrityConstraintSilentDrop(t *testing.T) {
	b := newIntBasket("s")
	b.AddConstraint(Constraint{
		Name: "positive",
		Check: func(rel *bat.Relation) []int32 {
			return relop.SelectPred(rel.ColByName("x"), relop.GT, vector.NewInt(0), nil)
		},
	})
	n, err := b.Append(userRel(-1, 5, -2, 7))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("accepted %d, want 2", n)
	}
	st := b.Stats()
	if st.Appended != 2 || st.Dropped != 2 {
		t.Errorf("stats = %+v", st)
	}
	snap := b.Snapshot()
	if snap.Len() != 2 || snap.Col(0).Ints()[0] != 5 {
		t.Errorf("content: %v", snap.Col(0).Ints())
	}
}

func TestMultipleConstraintsIntersect(t *testing.T) {
	b := newIntBasket("s")
	b.AddConstraint(Constraint{Check: func(rel *bat.Relation) []int32 {
		return relop.SelectPred(rel.ColByName("x"), relop.GT, vector.NewInt(0), nil)
	}})
	b.AddConstraint(Constraint{Check: func(rel *bat.Relation) []int32 {
		return relop.SelectPred(rel.ColByName("x"), relop.LT, vector.NewInt(10), nil)
	}})
	n, _ := b.Append(userRel(-5, 3, 20))
	if n != 1 || b.Len() != 1 {
		t.Errorf("accepted %d, len %d", n, b.Len())
	}
}

func TestTakeAllAndSeqbase(t *testing.T) {
	b := newIntBasket("s")
	b.Append(userRel(1, 2, 3))
	b.Lock()
	if b.SeqbaseLocked() != 0 {
		t.Errorf("seqbase = %d", b.SeqbaseLocked())
	}
	got := b.TakeAllLocked()
	if got.Len() != 3 {
		t.Errorf("take = %d", got.Len())
	}
	if b.LenLocked() != 0 {
		t.Errorf("len after take = %d", b.LenLocked())
	}
	if b.SeqbaseLocked() != 3 {
		t.Errorf("seqbase after take = %d", b.SeqbaseLocked())
	}
	b.Unlock()
	if st := b.Stats(); st.Consumed != 3 {
		t.Errorf("consumed = %d", st.Consumed)
	}
}

func TestTakeAndDeleteSelected(t *testing.T) {
	b := newIntBasket("s")
	b.Append(userRel(10, 20, 30, 40))
	b.Lock()
	got := b.TakeLocked([]int32{1, 3})
	b.Unlock()
	if got.Col(0).Ints()[0] != 20 || got.Col(0).Ints()[1] != 40 {
		t.Errorf("take sel: %v", got.Col(0).Ints())
	}
	snap := b.Snapshot()
	if snap.Len() != 2 || snap.Col(0).Ints()[1] != 30 {
		t.Errorf("residue: %v", snap.Col(0).Ints())
	}
	b.Lock()
	b.DeleteLocked([]int32{0})
	b.Unlock()
	if b.Len() != 1 {
		t.Errorf("after delete len = %d", b.Len())
	}
}

func TestDisableBlocksAppend(t *testing.T) {
	b := newIntBasket("s")
	b.SetEnabled(false)
	done := make(chan int, 1)
	go func() {
		n, _ := b.Append(userRel(1))
		done <- n
	}()
	select {
	case <-done:
		t.Fatal("append should block while disabled")
	case <-time.After(20 * time.Millisecond):
	}
	b.SetEnabled(true)
	select {
	case n := <-done:
		if n != 1 {
			t.Errorf("accepted %d", n)
		}
	case <-time.After(time.Second):
		t.Fatal("append did not unblock")
	}
}

func TestCloseReleasesBlockedAppend(t *testing.T) {
	b := newIntBasket("s")
	b.SetEnabled(false)
	errc := make(chan error, 1)
	go func() {
		_, err := b.Append(userRel(1))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("close did not release producer")
	}
}

func TestWaitNotEmpty(t *testing.T) {
	b := newIntBasket("s")
	done := make(chan error, 1)
	go func() { done <- b.WaitNotEmpty(2) }()
	b.Append(userRel(1))
	select {
	case <-done:
		t.Fatal("woke below threshold")
	case <-time.After(10 * time.Millisecond):
	}
	b.Append(userRel(2))
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Closed basket returns ErrClosed when below threshold.
	b2 := newIntBasket("s2")
	done2 := make(chan error, 1)
	go func() { done2 <- b2.WaitNotEmpty(1) }()
	time.Sleep(5 * time.Millisecond)
	b2.Close()
	if err := <-done2; err != ErrClosed {
		t.Errorf("err = %v", err)
	}
}

func TestOnAppendHook(t *testing.T) {
	b := newIntBasket("s")
	var mu sync.Mutex
	calls := 0
	b.SetOnAppend(func() { mu.Lock(); calls++; mu.Unlock() })
	b.Append(userRel(1))
	b.Append(userRel()) // empty append must not fire the hook
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("hook calls = %d", calls)
	}
}

func TestAppendWithExplicitTimestampColumn(t *testing.T) {
	// Kernel-internal appends may carry the timestamp column through.
	b := newIntBasket("s")
	full := bat.NewRelation(
		[]string{"x", TimestampCol},
		[]*vector.Vector{vector.FromInts([]int64{7}), vector.FromTimestamps([]int64{123})},
	)
	b.Lock()
	n, err := b.AppendLocked(full)
	b.Unlock()
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	snap := b.Snapshot()
	if snap.ColByName(TimestampCol).Ints()[0] != 123 {
		t.Errorf("explicit ts lost: %v", snap)
	}
}

func TestAppendRow(t *testing.T) {
	b := New("s", []string{"a", "s"}, []vector.Type{vector.Int, vector.Str})
	if err := b.AppendRow(vector.NewInt(1), vector.NewStr("one")); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Errorf("len = %d", b.Len())
	}
}

func TestConcurrentAppendTake(t *testing.T) {
	b := newIntBasket("s")
	const producers, rows = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rows; i++ {
				b.Append(userRel(int64(i)))
			}
		}()
	}
	consumed := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for consumed < producers*rows {
			if b.WaitNotEmpty(1) != nil {
				return
			}
			consumed += b.TakeAll().Len()
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer stalled")
	}
	if consumed != producers*rows {
		t.Errorf("consumed %d, want %d", consumed, producers*rows)
	}
	if st := b.Stats(); st.Appended != producers*rows || st.Consumed != producers*rows {
		t.Errorf("stats = %+v", st)
	}
}

func TestCoverCreditsUnionDelete(t *testing.T) {
	// Two shared readers cover overlapping position sets; the union is
	// removed in one step, the uncovered tuple survives.
	b := newIntBasket("s")
	b.Append(userRel(10, 20, 30, 40))
	b.Lock()
	b.CoverLocked([]int32{0, 1})
	b.CoverLocked([]int32{1, 3})
	if n := b.DeleteCoveredLocked(1); n != 3 {
		t.Errorf("union delete removed %d, want 3", n)
	}
	b.Unlock()
	snap := b.Snapshot()
	if snap.Len() != 1 || snap.Col(0).Ints()[0] != 30 {
		t.Errorf("residue: %v", snap.Col(0).Ints())
	}
}

func TestCoverCreditsThresholdAndShift(t *testing.T) {
	b := newIntBasket("s")
	b.Append(userRel(1, 2, 3))
	b.Lock()
	b.CoverLocked([]int32{0, 2})
	b.CoverLocked([]int32{2})
	// Only position 2 reached two credits.
	if n := b.DeleteCoveredLocked(2); n != 1 {
		t.Errorf("threshold delete removed %d, want 1", n)
	}
	// Credits of the survivors shifted with the tuples: position 0 still
	// holds one credit, so a union delete removes exactly it.
	if n := b.DeleteCoveredLocked(1); n != 1 {
		t.Errorf("follow-up union delete removed %d, want 1", n)
	}
	if b.LenLocked() != 1 {
		t.Errorf("len = %d", b.LenLocked())
	}
	b.Unlock()
	// New arrivals start with zero credits while tracking is active.
	b.Append(userRel(4))
	b.Lock()
	if n := b.DeleteCoveredLocked(1); n != 0 {
		t.Errorf("fresh tuples deleted: %d", n)
	}
	// TakeAll resets the tracker entirely.
	b.TakeAllLocked()
	if n := b.DeleteCoveredLocked(1); n != 0 {
		t.Errorf("delete after take-all: %d", n)
	}
	b.Unlock()
}
