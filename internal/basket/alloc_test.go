package basket

import (
	"testing"

	"datacell/internal/bat"
	"datacell/internal/vector"
)

func appendBatch(n int) *bat.Relation {
	vs := make([]int64, n)
	ws := make([]int64, n)
	for i := range vs {
		vs[i] = int64(i)
		ws[i] = int64(i * 2)
	}
	return bat.NewRelation([]string{"v", "w"}, []*vector.Vector{
		vector.FromInts(vs), vector.FromInts(ws),
	})
}

func TestExchangeLocked(t *testing.T) {
	b := New("ex", []string{"v", "w"}, []vector.Type{vector.Int, vector.Int})
	if _, err := b.Append(appendBatch(5)); err != nil {
		t.Fatal(err)
	}
	b.Lock()
	full := b.ExchangeLocked(nil) // nil spare = TakeAllLocked
	b.Unlock()
	if full.Len() != 5 || b.Len() != 0 {
		t.Fatalf("exchange: got %d tuples, %d left", full.Len(), b.Len())
	}
	if _, err := b.Append(appendBatch(3)); err != nil {
		t.Fatal(err)
	}
	b.Lock()
	next := b.ExchangeLocked(full) // ping-pong: full becomes the spare
	b.Unlock()
	if next.Len() != 3 || b.Len() != 0 {
		t.Fatalf("second exchange: got %d tuples, %d left", next.Len(), b.Len())
	}
	if got := b.Stats(); got.Consumed != 8 {
		t.Fatalf("consumed %d, want 8", got.Consumed)
	}
	// The basket reuses the old relation: appending within its warmed
	// capacity must not allocate.
	batch := appendBatch(3)
	var spare *bat.Relation = next
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := b.Append(batch); err != nil {
			t.Fatal(err)
		}
		b.Lock()
		spare = b.ExchangeLocked(spare)
		b.Unlock()
	})
	if allocs > 0 {
		t.Fatalf("warmed append/exchange cycle allocates %.1f per run, want 0", allocs)
	}
}

// TestAppendAllocs is the allocation-regression guard of the ingest path:
// a steady-state Basket.Append — warmed capacity, no constraints — must
// not allocate at all (the documented constant is 0). Before the in-place
// timestamp stamping it cost a Concat'd intermediate plus a second copy.
func TestAppendAllocs(t *testing.T) {
	b := New("alloc", []string{"v", "w"}, []vector.Type{vector.Int, vector.Int})
	batch := appendBatch(1000)
	var spare *bat.Relation
	// Warm both ping-pong relations.
	for i := 0; i < 3; i++ {
		if _, err := b.Append(batch); err != nil {
			t.Fatal(err)
		}
		b.Lock()
		spare = b.ExchangeLocked(spare)
		b.Unlock()
	}
	if _, err := b.Append(batch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := b.Append(batch); err != nil {
			t.Fatal(err)
		}
		b.Lock()
		spare = b.ExchangeLocked(spare)
		b.Unlock()
	})
	if allocs > 0 {
		t.Fatalf("steady-state Append allocates %.1f per run, want 0", allocs)
	}
}

// TestAppendStampsAndFilters re-checks append semantics after the
// in-place rewrite: timestamps are stamped for every accepted tuple and
// constraints still silently filter.
func TestAppendStampsAndFilters(t *testing.T) {
	b := New("sem", []string{"v", "w"}, []vector.Type{vector.Int, vector.Int})
	b.AddConstraint(Constraint{
		Name: "v<3",
		Check: func(rel *bat.Relation) []int32 {
			var keep []int32
			for i, x := range rel.ColByName("v").Ints() {
				if x < 3 {
					keep = append(keep, int32(i))
				}
			}
			return keep
		},
	})
	n, err := b.Append(appendBatch(5))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("accepted %d, want 3", n)
	}
	rel := b.TakeAll()
	if rel.Len() != 3 || rel.NumCols() != 3 {
		t.Fatalf("resident %d×%d, want 3×3", rel.Len(), rel.NumCols())
	}
	ts := rel.ColByName(TimestampCol)
	if ts == nil || ts.Kind() != vector.Timestamp {
		t.Fatalf("missing timestamp column")
	}
	for i := 0; i < 3; i++ {
		if rel.Col(0).Ints()[i] != int64(i) || ts.Ints()[i] == 0 {
			t.Fatalf("row %d: v=%d ts=%d", i, rel.Col(0).Ints()[i], ts.Ints()[i])
		}
	}
	st := b.Stats()
	if st.Appended != 3 || st.Dropped != 2 {
		t.Fatalf("stats %+v", st)
	}
}
