package basket

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"datacell/internal/bat"
	"datacell/internal/interval"
	"datacell/internal/vector"
)

// Router computes the destination assignment of stream tuples under a
// partitioning verdict: round-robin, hash(col) or range(col) with a
// catch-all slot for tuples no query of the wiring can match. It is the
// routing half of the PartitionedBasket, extracted so that the decision
// "which partition gets this tuple" can be consulted anywhere tuples
// enter the system — the core partition splitter and, since the ingest
// periphery routes at the socket, every receptor shard — while the
// baskets themselves stay a placement concern.
//
// A Router is safe for concurrent use: the only mutable state is the
// round-robin cursor, which is advanced atomically, so several receptor
// shards routing batches of the same stream stay collectively balanced.
type Router struct {
	mode PartitionMode
	col  string // routing column (user-schema name) under hash and range
	p    int    // scanned destinations (the catch-all is not among them)
	rr   atomic.Int64

	// Range-routing state (mode PartitionRange). set is the matching
	// value domain; cuts are the p-1 ascending numeric cut points slicing
	// it into equal-measure partition ranges (nil when the set has no
	// sliceable measure, in which case matching tuples place by hash);
	// tuples outside set route to the catch-all slot p.
	set  interval.Set
	cuts []float64

	// Hash-prune state (mode PartitionHash with a sargable side
	// condition): tuples whose pruneCol value lies outside set divert to
	// the catch-all slot p before any partial-aggregate clone sees them,
	// the rest place by hash(col) as usual. Empty pruneCol disables
	// pruning.
	pruneCol string
}

// NewRouter builds a round-robin or hash router over p destinations.
func NewRouter(mode PartitionMode, col string, p int) (*Router, error) {
	if p < 1 {
		return nil, fmt.Errorf("basket: router: need at least 1 destination, got %d", p)
	}
	if mode == PartitionRange {
		return nil, fmt.Errorf("basket: router: range mode needs an interval set; use NewRangeRouter")
	}
	return &Router{mode: mode, col: col, p: p}, nil
}

// NewHashPrunedRouter builds a hash router over p destinations plus the
// catch-all slot p: tuples route by hash(hashCol) when their pruneCol
// value lies in set (a necessary condition of matching any query of the
// wiring) and to slot p otherwise. set must not cover every value — that
// is plain hash routing with a dead slot.
func NewHashPrunedRouter(hashCol, pruneCol string, p int, set interval.Set) (*Router, error) {
	if p < 1 {
		return nil, fmt.Errorf("basket: router: need at least 1 destination, got %d", p)
	}
	if pruneCol == "" {
		return nil, fmt.Errorf("basket: router: hash-pruned router needs a prune column")
	}
	if set.All() {
		return nil, fmt.Errorf("basket: router: prune set on %q covers every value; use plain hash", pruneCol)
	}
	return &Router{mode: PartitionHash, col: hashCol, p: p, pruneCol: pruneCol, set: set}, nil
}

// NewRangeRouter builds a range router over p destinations plus the
// catch-all slot p: tuples whose col value lies in set spread over the
// destinations (by equal-measure range slices when the set is numeric and
// bounded, by hash otherwise), tuples outside set route to slot p.
func NewRangeRouter(col string, p int, set interval.Set) (*Router, error) {
	if p < 1 {
		return nil, fmt.Errorf("basket: router: need at least 1 destination, got %d", p)
	}
	r := &Router{mode: PartitionRange, col: col, p: p, set: set}
	r.cuts, _ = set.Cuts(p)
	return r, nil
}

// Mode returns the routing mode.
func (r *Router) Mode() PartitionMode { return r.mode }

// Col returns the routing column ("" under round-robin).
func (r *Router) Col() string { return r.col }

// NumDestinations returns the number of routing slots: p scanned
// destinations, plus one catch-all slot under range mode and pruned hash
// mode.
func (r *Router) NumDestinations() int {
	if r.mode == PartitionRange || r.pruneCol != "" {
		return r.p + 1
	}
	return r.p
}

// RangeSet returns the matching value domain of range routing (the zero
// Set otherwise).
func (r *Router) RangeSet() interval.Set { return r.set }

// Describe renders the routing for explain/monitoring output:
// "round-robin", "hash(k)", "range(v)".
func (r *Router) Describe() string {
	switch r.mode {
	case PartitionHash:
		if r.pruneCol != "" {
			return fmt.Sprintf("hash(%s)+prune(%s)", r.col, r.pruneCol)
		}
		return fmt.Sprintf("hash(%s)", r.col)
	case PartitionRange:
		return fmt.Sprintf("range(%s)", r.col)
	}
	return r.mode.String()
}

// Route computes the routing assignment of rel's tuples, returning one
// ascending position list per destination slot (nil for slots that
// receive nothing). Under range routing the final slot is the
// catch-all's. It advances the round-robin cursor but does not touch any
// basket.
func (r *Router) Route(rel *bat.Relation) ([][]int32, error) {
	sels := make([][]int32, r.NumDestinations())
	return r.RouteInto(rel, sels)
}

// RouteInto is Route assigning into a caller-provided slice of
// NumDestinations position lists, reusing their capacity (entries are
// truncated, not reallocated, when possible). It returns sels.
func (r *Router) RouteInto(rel *bat.Relation, sels [][]int32) ([][]int32, error) {
	if len(sels) != r.NumDestinations() {
		return nil, fmt.Errorf("basket: router: %d destination slots, want %d", len(sels), r.NumDestinations())
	}
	for i := range sels {
		sels[i] = sels[i][:0]
	}
	p := r.p
	n := rel.Len()
	if n == 0 {
		return sels, nil
	}
	if p == 1 && r.mode != PartitionRange && r.pruneCol == "" {
		sels[0] = appendPositions(sels[0], n)
		return sels, nil
	}
	switch r.mode {
	case PartitionRoundRobin:
		base := r.rr.Add(int64(n)) - int64(n)
		for i := 0; i < n; i++ {
			k := int((base + int64(i)) % int64(p))
			sels[k] = append(sels[k], int32(i))
		}
	case PartitionHash:
		v := rel.ColByName(r.col)
		if v == nil {
			return nil, fmt.Errorf("basket: router: relation has no column %q", r.col)
		}
		var pv *vector.Vector
		if r.pruneCol != "" {
			pv = rel.ColByName(r.pruneCol)
			if pv == nil {
				return nil, fmt.Errorf("basket: router: relation has no column %q", r.pruneCol)
			}
		}
		for i := 0; i < n; i++ {
			if pv != nil && !r.set.Contains(pv.Get(i)) {
				// Necessary condition fails: no query of the wiring can
				// match the tuple, divert it past the clones.
				sels[p] = append(sels[p], int32(i))
				continue
			}
			k := int(hashValue(v, i) % uint64(p))
			sels[k] = append(sels[k], int32(i))
		}
	case PartitionRange:
		v := rel.ColByName(r.col)
		if v == nil {
			return nil, fmt.Errorf("basket: router: relation has no column %q", r.col)
		}
		for i := 0; i < n; i++ {
			val := v.Get(i)
			k := p // catch-all: no query of this wiring can match the tuple
			if r.set.Contains(val) {
				switch {
				case p == 1:
					k = 0
				case r.cuts != nil:
					// Partition j owns the j-th equal-measure half-open
					// slice of the matching domain (boundary values go
					// right, mirroring the `lo <= v and v < hi` window
					// idiom). Placement within the matching set never
					// affects correctness, only balance.
					x := val.AsFloat()
					k = sort.Search(len(r.cuts), func(i int) bool { return r.cuts[i] > x })
					if k >= p {
						k = p - 1
					}
				default:
					// No sliceable measure (IN-sets, unbounded or
					// non-numeric ranges): place matchers by hash.
					k = int(hashValue(v, i) % uint64(p))
				}
			}
			sels[k] = append(sels[k], int32(i))
		}
	default:
		return nil, fmt.Errorf("basket: router: unknown mode %d", r.mode)
	}
	return sels, nil
}

// appendPositions appends 0..n-1 to sel.
func appendPositions(sel []int32, n int) []int32 {
	for i := 0; i < n; i++ {
		sel = append(sel, int32(i))
	}
	return sel
}

// hashValue hashes element i of a column vector. The hash only has to
// co-locate equal keys; it carries no cross-run stability guarantees.
func hashValue(v *vector.Vector, i int) uint64 {
	switch v.Kind() {
	case vector.Int, vector.Timestamp:
		return mix64(uint64(v.Ints()[i]))
	case vector.Float:
		f := v.Floats()[i]
		if f == 0 {
			f = 0 // collapse -0.0 into +0.0: they are one grouping key
		}
		return mix64(math.Float64bits(f))
	case vector.Bool:
		if v.Bools()[i] {
			return mix64(1)
		}
		return mix64(0)
	case vector.Str:
		// FNV-1a.
		h := uint64(14695981039346656037)
		for _, c := range []byte(v.Strs()[i]) {
			h ^= uint64(c)
			h *= 1099511628211
		}
		return mix64(h)
	}
	return 0
}

// mix64 is the splitmix64 finaliser, scrambling low-entropy keys (small
// ints) into well-spread partition assignments.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
