package basket

import (
	"testing"

	"datacell/internal/bat"
	"datacell/internal/vector"
)

func intRelKV(pairs ...int64) *bat.Relation {
	rel := bat.NewEmptyRelation([]string{"k", "v"}, []vector.Type{vector.Int, vector.Int})
	for i := 0; i+1 < len(pairs); i += 2 {
		rel.AppendRow(vector.NewInt(pairs[i]), vector.NewInt(pairs[i+1]))
	}
	return rel
}

func TestPartitionedRoundRobinBalances(t *testing.T) {
	pb, err := NewPartitioned("s", []string{"k", "v"}, []vector.Type{vector.Int, vector.Int},
		4, PartitionRoundRobin, "")
	if err != nil {
		t.Fatal(err)
	}
	var rel *bat.Relation
	{
		rel = bat.NewEmptyRelation([]string{"k", "v"}, []vector.Type{vector.Int, vector.Int})
		for i := int64(0); i < 103; i++ {
			rel.AppendRow(vector.NewInt(i%5), vector.NewInt(i))
		}
	}
	n, err := pb.Append(rel)
	if err != nil {
		t.Fatal(err)
	}
	if n != 103 {
		t.Fatalf("accepted %d tuples, want 103", n)
	}
	total := 0
	for _, p := range pb.Parts() {
		l := p.Len()
		if l < 25 || l > 27 {
			t.Errorf("partition %s holds %d tuples; round-robin should balance 103/4", p.Name(), l)
		}
		total += l
	}
	if total != 103 {
		t.Fatalf("partitions hold %d tuples in total, want 103", total)
	}
	// A second append keeps rotating: the cursor persists across batches.
	if _, err := pb.Append(intRelKV(1, 1)); err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, p := range pb.Parts() {
		total += p.Len()
	}
	if total != 104 {
		t.Fatalf("after second append partitions hold %d, want 104", total)
	}
}

func TestPartitionedHashCoLocatesKeys(t *testing.T) {
	pb, err := NewPartitioned("s", []string{"k", "v"}, []vector.Type{vector.Int, vector.Int},
		3, PartitionHash, "k")
	if err != nil {
		t.Fatal(err)
	}
	rel := bat.NewEmptyRelation([]string{"k", "v"}, []vector.Type{vector.Int, vector.Int})
	for i := int64(0); i < 200; i++ {
		rel.AppendRow(vector.NewInt(i%7), vector.NewInt(i))
	}
	if _, err := pb.Append(rel); err != nil {
		t.Fatal(err)
	}
	// Every key must live in exactly one partition.
	home := map[int64]int{}
	for pi, p := range pb.Parts() {
		snap := p.Snapshot()
		ks := snap.ColByName("k")
		for i := 0; i < snap.Len(); i++ {
			k := ks.Ints()[i]
			if prev, ok := home[k]; ok && prev != pi {
				t.Fatalf("key %d found in partitions %d and %d", k, prev, pi)
			}
			home[k] = pi
		}
	}
	if len(home) != 7 {
		t.Fatalf("saw %d distinct keys, want 7", len(home))
	}
}

func TestPartitionedHashRejectsUnknownColumn(t *testing.T) {
	if _, err := NewPartitioned("s", []string{"v"}, []vector.Type{vector.Int},
		2, PartitionHash, "nope"); err == nil {
		t.Fatal("NewPartitioned should reject a hash column outside the schema")
	}
	if _, err := NewPartitioned("s", []string{"v"}, []vector.Type{vector.Int},
		0, PartitionRoundRobin, ""); err == nil {
		t.Fatal("NewPartitioned should reject zero partitions")
	}
}

func TestPartitionedSinglePartitionPassthrough(t *testing.T) {
	pb, err := NewPartitioned("s", []string{"k", "v"}, []vector.Type{vector.Int, vector.Int},
		1, PartitionHash, "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb.Append(intRelKV(1, 10, 2, 20, 3, 30)); err != nil {
		t.Fatal(err)
	}
	if got := pb.Parts()[0].Len(); got != 3 {
		t.Fatalf("single partition holds %d tuples, want 3", got)
	}
}
