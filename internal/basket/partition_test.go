package basket

import (
	"testing"

	"datacell/internal/bat"
	"datacell/internal/interval"
	"datacell/internal/vector"
)

func intRelKV(pairs ...int64) *bat.Relation {
	rel := bat.NewEmptyRelation([]string{"k", "v"}, []vector.Type{vector.Int, vector.Int})
	for i := 0; i+1 < len(pairs); i += 2 {
		rel.AppendRow(vector.NewInt(pairs[i]), vector.NewInt(pairs[i+1]))
	}
	return rel
}

func TestPartitionedRoundRobinBalances(t *testing.T) {
	pb, err := NewPartitioned("s", []string{"k", "v"}, []vector.Type{vector.Int, vector.Int},
		4, PartitionRoundRobin, "")
	if err != nil {
		t.Fatal(err)
	}
	var rel *bat.Relation
	{
		rel = bat.NewEmptyRelation([]string{"k", "v"}, []vector.Type{vector.Int, vector.Int})
		for i := int64(0); i < 103; i++ {
			rel.AppendRow(vector.NewInt(i%5), vector.NewInt(i))
		}
	}
	n, err := pb.Append(rel)
	if err != nil {
		t.Fatal(err)
	}
	if n != 103 {
		t.Fatalf("accepted %d tuples, want 103", n)
	}
	total := 0
	for _, p := range pb.Parts() {
		l := p.Len()
		if l < 25 || l > 27 {
			t.Errorf("partition %s holds %d tuples; round-robin should balance 103/4", p.Name(), l)
		}
		total += l
	}
	if total != 103 {
		t.Fatalf("partitions hold %d tuples in total, want 103", total)
	}
	// A second append keeps rotating: the cursor persists across batches.
	if _, err := pb.Append(intRelKV(1, 1)); err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, p := range pb.Parts() {
		total += p.Len()
	}
	if total != 104 {
		t.Fatalf("after second append partitions hold %d, want 104", total)
	}
}

func TestPartitionedHashCoLocatesKeys(t *testing.T) {
	pb, err := NewPartitioned("s", []string{"k", "v"}, []vector.Type{vector.Int, vector.Int},
		3, PartitionHash, "k")
	if err != nil {
		t.Fatal(err)
	}
	rel := bat.NewEmptyRelation([]string{"k", "v"}, []vector.Type{vector.Int, vector.Int})
	for i := int64(0); i < 200; i++ {
		rel.AppendRow(vector.NewInt(i%7), vector.NewInt(i))
	}
	if _, err := pb.Append(rel); err != nil {
		t.Fatal(err)
	}
	// Every key must live in exactly one partition.
	home := map[int64]int{}
	for pi, p := range pb.Parts() {
		snap := p.Snapshot()
		ks := snap.ColByName("k")
		for i := 0; i < snap.Len(); i++ {
			k := ks.Ints()[i]
			if prev, ok := home[k]; ok && prev != pi {
				t.Fatalf("key %d found in partitions %d and %d", k, prev, pi)
			}
			home[k] = pi
		}
	}
	if len(home) != 7 {
		t.Fatalf("saw %d distinct keys, want 7", len(home))
	}
}

func TestPartitionedHashRejectsUnknownColumn(t *testing.T) {
	if _, err := NewPartitioned("s", []string{"v"}, []vector.Type{vector.Int},
		2, PartitionHash, "nope"); err == nil {
		t.Fatal("NewPartitioned should reject a hash column outside the schema")
	}
	if _, err := NewPartitioned("s", []string{"v"}, []vector.Type{vector.Int},
		0, PartitionRoundRobin, ""); err == nil {
		t.Fatal("NewPartitioned should reject zero partitions")
	}
}

func TestPartitionedSinglePartitionPassthrough(t *testing.T) {
	pb, err := NewPartitioned("s", []string{"k", "v"}, []vector.Type{vector.Int, vector.Int},
		1, PartitionHash, "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb.Append(intRelKV(1, 10, 2, 20, 3, 30)); err != nil {
		t.Fatal(err)
	}
	if got := pb.Parts()[0].Len(); got != 3 {
		t.Fatalf("single partition holds %d tuples, want 3", got)
	}
}

func rangeSet(lo, hi int64) interval.Set {
	return interval.NewSet(interval.Interval{
		Lo: interval.Closed(vector.NewInt(lo)),
		Hi: interval.Open(vector.NewInt(hi)),
	})
}

func TestPartitionedRangeRoutesAndPrunes(t *testing.T) {
	// Matching domain [0,100) sliced over 4 partitions; everything else
	// must land in the catch-all.
	pb, err := NewPartitionedRange("s", []string{"k", "v"}, []vector.Type{vector.Int, vector.Int},
		4, "v", rangeSet(0, 100))
	if err != nil {
		t.Fatal(err)
	}
	rel := bat.NewEmptyRelation([]string{"k", "v"}, []vector.Type{vector.Int, vector.Int})
	for i := int64(-50); i < 150; i++ {
		rel.AppendRow(vector.NewInt(i), vector.NewInt(i))
	}
	n, err := pb.Append(rel)
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("accepted %d tuples, want 200", n)
	}
	if got := pb.CatchAll().Len(); got != 100 {
		t.Fatalf("catch-all holds %d tuples, want the 100 outside [0,100)", got)
	}
	total := 0
	for pi, p := range pb.Parts() {
		l := p.Len()
		if l != 25 {
			t.Errorf("partition %d holds %d tuples; equal-measure slices of [0,100) should each get 25", pi, l)
		}
		total += l
		// Every resident value must belong to the matching domain.
		snap := p.Snapshot()
		vs := snap.ColByName("v")
		for i := 0; i < snap.Len(); i++ {
			if v := vs.Ints()[i]; v < 0 || v >= 100 {
				t.Fatalf("partition %d holds non-matching value %d", pi, v)
			}
		}
	}
	if total != 100 {
		t.Fatalf("partitions hold %d matching tuples, want 100", total)
	}
	// Range slices are contiguous: partition order must follow value order.
	for pi, p := range pb.Parts() {
		snap := p.Snapshot()
		vs := snap.ColByName("v")
		for i := 0; i < snap.Len(); i++ {
			if got := int(vs.Ints()[i] / 25); got != pi {
				t.Fatalf("value %d landed in partition %d, want %d", vs.Ints()[i], pi, got)
			}
		}
	}
}

func TestPartitionedRangeHashPlacementForPointSets(t *testing.T) {
	// An IN-set has zero measure: matchers place by hash, the rest prunes.
	set := interval.NewSet(
		interval.Point(vector.NewInt(3)),
		interval.Point(vector.NewInt(7)),
		interval.Point(vector.NewInt(11)))
	pb, err := NewPartitionedRange("s", []string{"v"}, []vector.Type{vector.Int},
		2, "v", set)
	if err != nil {
		t.Fatal(err)
	}
	rel := bat.NewEmptyRelation([]string{"v"}, []vector.Type{vector.Int})
	for i := int64(0); i < 20; i++ {
		rel.AppendRow(vector.NewInt(i % 16))
	}
	if _, err := pb.Append(rel); err != nil {
		t.Fatal(err)
	}
	matched := pb.Parts()[0].Len() + pb.Parts()[1].Len()
	if matched != 4 { // 3,7,11 once each in 0..15, plus 3 again at i=19
		t.Fatalf("partitions hold %d tuples, want 4 matching the IN-set", matched)
	}
	if got := pb.CatchAll().Len(); got != 16 {
		t.Fatalf("catch-all holds %d tuples, want 16", got)
	}
}

func TestPartitionedRangeRejections(t *testing.T) {
	if _, err := NewPartitionedRange("s", []string{"v"}, []vector.Type{vector.Int},
		2, "nope", rangeSet(0, 10)); err == nil {
		t.Fatal("NewPartitionedRange should reject a column outside the schema")
	}
	all := interval.NewSet(interval.Interval{Lo: interval.Unbounded(), Hi: interval.Unbounded()})
	if _, err := NewPartitionedRange("s", []string{"v"}, []vector.Type{vector.Int},
		2, "v", all); err == nil {
		t.Fatal("NewPartitionedRange should reject a vacuous all-values set")
	}
}

func TestPartitionedRangeSinglePartitionStillPrunes(t *testing.T) {
	pb, err := NewPartitionedRange("s", []string{"v"}, []vector.Type{vector.Int},
		1, "v", rangeSet(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	rel := bat.NewEmptyRelation([]string{"v"}, []vector.Type{vector.Int})
	for i := int64(0); i < 30; i++ {
		rel.AppendRow(vector.NewInt(i))
	}
	if _, err := pb.Append(rel); err != nil {
		t.Fatal(err)
	}
	if got := pb.Parts()[0].Len(); got != 10 {
		t.Fatalf("partition holds %d, want the 10 matching tuples", got)
	}
	if got := pb.CatchAll().Len(); got != 20 {
		t.Fatalf("catch-all holds %d, want 20", got)
	}
}
