// Package basket implements the DataCell's central data structure: the
// basket, a temporary main-memory stream table.
//
// Every incoming tuple is appended to at least one basket and waits there to
// be processed; factories evaluate continuous queries over baskets as if
// they were ordinary tables and delete the tuples they have consumed. Unlike
// relational tables, baskets have no a-priori tuple order guarantees, their
// integrity constraints act as silent filters, their content does not
// survive a restart, and concurrent access is regulated with an exclusive
// locking scheme driven by the scheduler.
package basket

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datacell/internal/bat"
	"datacell/internal/vector"
)

// TimestampCol is the name of the implicit arrival-time column every basket
// carries ("for each relational table there exists an extra column, the
// timestamp column, that for each tuple reflects the time that this tuple
// entered the system").
const TimestampCol = "sys_ts"

// ErrClosed is returned by blocking operations after Close.
var ErrClosed = errors.New("basket: closed")

// Constraint is a basket integrity constraint. Check returns the positions
// of rel's tuples that satisfy the constraint; the remaining tuples are
// silently dropped on append — indistinguishable from tuples that never
// arrived.
type Constraint struct {
	Name  string
	Check func(rel *bat.Relation) []int32
}

// Stats carries monotonically increasing basket counters. HighWater is
// the occupancy high-water mark: the largest resident tuple count ever
// observed after an append — the basket-pressure signal the
// observability layer exports per stream.
type Stats struct {
	Appended  int64 // tuples accepted into the basket
	Dropped   int64 // tuples silently dropped by integrity constraints
	Consumed  int64 // tuples removed by factories
	HighWater int64 // peak resident occupancy
}

// Basket is a stream table: one column per declared attribute plus the
// implicit timestamp column. All mutating access happens under the basket
// lock; factories lock every input and output basket for the duration of
// one firing.
type Basket struct {
	name  string
	id    uint64 // global order for deadlock-free multi-basket locking
	types []vector.Type
	names []string

	mu       sync.Mutex
	notEmpty *sync.Cond // signalled on append
	enabled  *sync.Cond // signalled on SetEnabled(true)
	rel      *bat.Relation
	seqbase  bat.OID // oid of the first resident tuple (head stays dense)
	isOn     bool
	closed   bool

	constraints []Constraint
	onAppend    atomic.Value // func(), scheduler wake-up hook
	onEnable    atomic.Value // func(), partition-splitter resume hook

	// covers holds per-resident-tuple cover credits for the shared-baskets
	// strategy: each reader that has covered a tuple adds one credit, and
	// the group's unlocker removes every tuple that collected enough
	// credits in one step. nil until the first CoverLocked call; kept
	// positionally aligned with rel by the delete/take operations.
	covers []int32

	// gather is the reusable staging relation of constraint-filtered
	// appends, lazily created and guarded by mu like rel.
	gather *bat.Relation

	appended  int64
	dropped   int64
	consumed  int64
	highWater int64

	// now provides arrival timestamps; replaceable for simulated time.
	now func() time.Time
}

var basketIDs atomic.Uint64

// New creates an enabled, empty basket with the given attribute schema.
// The implicit timestamp column is appended automatically.
func New(name string, names []string, types []vector.Type) *Basket {
	allNames := append(append([]string(nil), names...), TimestampCol)
	allTypes := append(append([]vector.Type(nil), types...), vector.Timestamp)
	b := &Basket{
		name:  name,
		id:    basketIDs.Add(1),
		names: allNames,
		types: allTypes,
		rel:   bat.NewEmptyRelation(allNames, allTypes),
		isOn:  true,
		now:   time.Now,
	}
	b.notEmpty = sync.NewCond(&b.mu)
	b.enabled = sync.NewCond(&b.mu)
	return b
}

// Name returns the basket name.
func (b *Basket) Name() string { return b.name }

// ID returns the basket's unique lock-ordering id.
func (b *Basket) ID() uint64 { return b.id }

// Schema returns the column names and types, including the implicit
// timestamp column (always last).
func (b *Basket) Schema() ([]string, []vector.Type) {
	return append([]string(nil), b.names...), append([]vector.Type(nil), b.types...)
}

// UserSchema returns the declared attribute names and types, without the
// implicit timestamp column.
func (b *Basket) UserSchema() ([]string, []vector.Type) {
	n := len(b.names) - 1
	return append([]string(nil), b.names[:n]...), append([]vector.Type(nil), b.types[:n]...)
}

// SetClock replaces the arrival-time source (used by simulated-time runs).
func (b *Basket) SetClock(now func() time.Time) {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// SetOnAppend installs the scheduler wake-up hook, invoked (outside the
// basket lock) whenever tuples are accepted. A nil fn clears the hook.
func (b *Basket) SetOnAppend(fn func()) { b.onAppend.Store(fn) }

// SetOnEnable installs a hook invoked whenever the basket is (re)enabled.
// The hook may run with the basket lock held (SetEnabledLocked callers)
// and must not block; the partition splitter uses it to resume shipping
// tuples once a shared-basket cycle releases a partition. A nil fn clears
// the hook.
func (b *Basket) SetOnEnable(fn func()) { b.onEnable.Store(fn) }

func (b *Basket) fireOnEnable() {
	if fn, ok := b.onEnable.Load().(func()); ok && fn != nil {
		fn()
	}
}

// AddConstraint registers an integrity constraint. Constraints act as
// silent filters on append.
func (b *Basket) AddConstraint(c Constraint) {
	b.mu.Lock()
	b.constraints = append(b.constraints, c)
	b.mu.Unlock()
}

// Lock acquires the basket's exclusive lock. Factories must acquire all
// their basket locks in ID order; use core.LockAll.
func (b *Basket) Lock() { b.mu.Lock() }

// Unlock releases the basket's exclusive lock.
func (b *Basket) Unlock() { b.mu.Unlock() }

// Len returns the number of resident tuples.
func (b *Basket) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rel.Len()
}

// LenLocked returns the number of resident tuples; caller holds the lock.
func (b *Basket) LenLocked() int { return b.rel.Len() }

// Stats returns the basket counters.
func (b *Basket) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{Appended: b.appended, Dropped: b.dropped, Consumed: b.consumed, HighWater: b.highWater}
}

// Enabled reports whether the stream through this basket is flowing.
func (b *Basket) Enabled() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.isOn
}

// EnabledLocked reports whether the basket is enabled; caller holds the
// lock. Factory guards use it (the partition splitter defers while any
// partition is mid-cycle).
func (b *Basket) EnabledLocked() bool { return b.isOn }

// SetEnabled enables or disables the basket. While disabled, Append blocks
// (the stream is blocked, per the paper's basket-control semantics);
// re-enabling releases blocked producers.
func (b *Basket) SetEnabled(on bool) {
	b.mu.Lock()
	b.isOn = on
	if on {
		b.enabled.Broadcast()
	}
	b.mu.Unlock()
	if on {
		b.fireOnEnable()
	}
}

// SetEnabledLocked is SetEnabled for callers that already hold the basket
// lock (the locker/unlocker factories of the shared-baskets strategy).
func (b *Basket) SetEnabledLocked(on bool) {
	b.isOn = on
	if on {
		b.enabled.Broadcast()
		b.fireOnEnable()
	}
}

// Close marks the basket closed, releasing all blocked producers and
// consumers with ErrClosed.
func (b *Basket) Close() {
	b.mu.Lock()
	b.closed = true
	b.enabled.Broadcast()
	b.notEmpty.Broadcast()
	b.mu.Unlock()
}

// Reopen clears a Close, letting producers and emitters use the basket
// again. A removed query's output basket stays in the catalog but is
// closed when its emitter stops; re-registering the query name revives
// it through here.
func (b *Basket) Reopen() {
	b.mu.Lock()
	b.closed = false
	b.mu.Unlock()
}

// Append adds the tuples of rel (schema: the user attributes, in declared
// order) to the basket, stamping arrival timestamps and applying integrity
// constraints. It blocks while the basket is disabled. It returns the
// number of tuples accepted.
func (b *Basket) Append(rel *bat.Relation) (int, error) {
	b.mu.Lock()
	for !b.isOn && !b.closed {
		b.enabled.Wait()
	}
	if b.closed {
		b.mu.Unlock()
		return 0, ErrClosed
	}
	n, err := b.appendLocked(rel)
	b.mu.Unlock()
	if n > 0 {
		b.fireOnAppend()
	}
	return n, err
}

// AppendLocked is Append for callers that already hold the basket lock
// (factories writing their output baskets). It never blocks; appends to a
// disabled basket are allowed inside the kernel, since disabling only
// blocks the periphery. The scheduler hook is NOT fired; the caller's
// firing cycle handles wake-ups.
func (b *Basket) AppendLocked(rel *bat.Relation) (int, error) {
	if b.closed {
		return 0, ErrClosed
	}
	return b.appendLocked(rel)
}

func (b *Basket) appendLocked(rel *bat.Relation) (int, error) {
	if rel.NumCols() != len(b.names)-1 && rel.NumCols() != len(b.names) {
		return 0, fmt.Errorf("basket %s: append arity %d, want %d", b.name, rel.NumCols(), len(b.names)-1)
	}
	// Integrity constraints: keep only satisfying tuples, silently.
	keep := []int32(nil)
	full := rel.NumCols() == len(b.names)
	view := rel
	if !full && len(b.constraints) > 0 {
		// Present constraints with the basket's column names.
		view = rel.Rename(b.names[:rel.NumCols()])
	}
	for _, c := range b.constraints {
		sel := c.Check(view)
		if keep == nil {
			keep = sel
		} else {
			keep = intersect(keep, sel)
		}
	}
	in := rel
	if keep != nil && len(keep) != rel.Len() {
		if b.gather == nil {
			b.gather = &bat.Relation{}
		}
		in = rel.GatherInto(b.gather, keep)
	}
	accepted := in.Len()
	dropped := rel.Len() - accepted
	if accepted > 0 {
		if full {
			// AppendRelation matches columns positionally, so no renamed
			// intermediate is needed.
			b.rel.AppendRelation(in)
		} else {
			// Append the user columns straight into the resident relation and
			// stamp the arrival timestamps in place — no Concat'd intermediate,
			// no second copy.
			for i := 0; i < in.NumCols(); i++ {
				b.rel.Col(i).AppendVector(in.Col(i))
			}
			b.rel.Col(in.NumCols()).AppendN(vector.NewTimestampMicros(b.now().UnixMicro()), accepted)
		}
		b.appended += int64(accepted)
		if n := int64(b.rel.Len()); n > b.highWater {
			b.highWater = n
		}
		if b.covers != nil {
			b.covers = append(b.covers, make([]int32, accepted)...)
		}
		b.notEmpty.Broadcast()
	}
	b.dropped += int64(dropped)
	return accepted, nil
}

// AppendRow appends a single tuple of user-attribute values. Convenience
// for receptors and tests.
func (b *Basket) AppendRow(vals ...vector.Value) error {
	names, types := b.UserSchema()
	r := bat.NewEmptyRelation(names, types)
	r.AppendRow(vals...)
	_, err := b.Append(r)
	return err
}

func (b *Basket) fireOnAppend() {
	if fn, ok := b.onAppend.Load().(func()); ok && fn != nil {
		fn()
	}
}

// NotifyAppend fires the scheduler hook manually; factories call this via
// the core after a firing cycle that produced output.
func (b *Basket) NotifyAppend() { b.fireOnAppend() }

// AppendedLocked returns the total number of tuples ever accepted; the
// caller holds the lock. It serves as a generation counter for factories
// that must fire only on new arrivals.
func (b *Basket) AppendedLocked() int64 { return b.appended }

// RelLocked exposes the resident relation; caller holds the lock and must
// not retain the reference past unlock. Reading without deleting is how
// shared-basket factories scan their input.
func (b *Basket) RelLocked() *bat.Relation { return b.rel }

// SeqbaseLocked returns the oid of the first resident tuple.
func (b *Basket) SeqbaseLocked() bat.OID { return b.seqbase }

// TakeAllLocked removes and returns every resident tuple. The returned
// relation owns its columns.
func (b *Basket) TakeAllLocked() *bat.Relation {
	out := b.rel
	b.consumed += int64(out.Len())
	b.seqbase += bat.OID(out.Len())
	b.rel = bat.NewEmptyRelation(b.names, b.types)
	b.covers = nil
	return out
}

// ExchangeLocked removes and returns every resident tuple, installing
// spare — a relation previously returned by this method (or TakeAllLocked)
// on the same basket, cleared or not — as the new, emptied resident
// relation. Factories ping-pong two relations through it so the basket's
// column capacity is retained across firings instead of reallocated: the
// allocation-free replacement for TakeAllLocked on the firing hot path.
// A nil spare behaves exactly like TakeAllLocked.
func (b *Basket) ExchangeLocked(spare *bat.Relation) *bat.Relation {
	if spare == nil {
		return b.TakeAllLocked()
	}
	if spare.NumCols() != b.rel.NumCols() {
		panic(fmt.Sprintf("basket %s: exchange with %d cols, want %d", b.name, spare.NumCols(), b.rel.NumCols()))
	}
	out := b.rel
	b.consumed += int64(out.Len())
	b.seqbase += bat.OID(out.Len())
	spare.Clear()
	b.rel = spare
	b.covers = b.covers[:0]
	return out
}

// TakeLocked removes and returns the tuples at the given ascending
// positions. The returned relation owns its columns.
func (b *Basket) TakeLocked(sel []int32) *bat.Relation {
	out := b.rel.Gather(sel)
	b.rel.DeleteSorted(sel)
	b.covers = deleteSortedCounts(b.covers, sel)
	b.consumed += int64(len(sel))
	return out
}

// TakeIntoLocked is TakeLocked gathering into dst (overwritten, capacity
// retained) instead of a fresh relation: the allocation-free form for
// factories that stage a window per firing and do not retain it. It
// returns dst.
func (b *Basket) TakeIntoLocked(dst *bat.Relation, sel []int32) *bat.Relation {
	b.rel.GatherInto(dst, sel)
	b.rel.DeleteSorted(sel)
	b.covers = deleteSortedCounts(b.covers, sel)
	b.consumed += int64(len(sel))
	return dst
}

// DeleteLocked removes the tuples at the given ascending positions without
// materialising them.
func (b *Basket) DeleteLocked(sel []int32) {
	b.rel.DeleteSorted(sel)
	b.covers = deleteSortedCounts(b.covers, sel)
	b.consumed += int64(len(sel))
}

// CoverLocked adds one cover credit to each of the given resident
// positions. A shared-basket reader calls it once per firing with the
// positions its basket expression covered; the positions need not be
// sorted but must not repeat. Caller holds the basket lock.
func (b *Basket) CoverLocked(sel []int32) {
	if len(sel) == 0 {
		return
	}
	if n := b.rel.Len(); len(b.covers) < n {
		b.covers = append(b.covers, make([]int32, n-len(b.covers))...)
	}
	for _, p := range sel {
		b.covers[p]++
	}
}

// DeleteCoveredLocked removes every tuple that has collected at least min
// cover credits, shifting the surviving tuples' credits down with them.
// It returns the number of tuples removed. This is the shared-baskets
// unlocker's one-step delete: with min 1 it removes the union of what the
// group covered; with min = group size only tuples every member covered.
func (b *Basket) DeleteCoveredLocked(min int32) int {
	if len(b.covers) == 0 {
		return 0
	}
	ripe := make([]int32, 0, len(b.covers))
	for i, c := range b.covers {
		if c >= min {
			ripe = append(ripe, int32(i))
		}
	}
	if len(ripe) == 0 {
		return 0
	}
	b.DeleteLocked(ripe)
	return len(ripe)
}

// deleteSortedCounts removes the entries of counts at the given ascending
// positions, compacting in place (the credit-slice mirror of the
// relation's shift delete).
func deleteSortedCounts(counts []int32, sel []int32) []int32 {
	if len(counts) == 0 || len(sel) == 0 {
		return counts
	}
	w, di := 0, 0
	for i := range counts {
		if di < len(sel) && int(sel[di]) == i {
			di++
			continue
		}
		counts[w] = counts[i]
		w++
	}
	return counts[:w]
}

// WaitNotEmpty blocks until the basket holds at least min tuples or is
// closed. Used by emitters, which are transitions whose only input is an
// output basket.
func (b *Basket) WaitNotEmpty(min int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.rel.Len() < min && !b.closed {
		b.notEmpty.Wait()
	}
	if b.closed && b.rel.Len() < min {
		return ErrClosed
	}
	return nil
}

// TakeAll locks, removes and returns every resident tuple.
func (b *Basket) TakeAll() *bat.Relation {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.TakeAllLocked()
}

// Snapshot returns a deep copy of the resident tuples without consuming
// them (basket inspection outside a basket expression: behaves as any
// temporary table).
func (b *Basket) Snapshot() *bat.Relation {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rel.Clone()
}

func intersect(a, bsel []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(bsel)))
	i, j := 0, 0
	for i < len(a) && j < len(bsel) {
		switch {
		case a[i] < bsel[j]:
			i++
		case a[i] > bsel[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
