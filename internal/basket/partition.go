package basket

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"datacell/internal/bat"
	"datacell/internal/interval"
	"datacell/internal/vector"
)

// routePool recycles the per-partition gather staging relations of
// PartitionedBasket appends; each Append borrows one, gathers a
// partition's tuples into it (the partition copies them on ingest) and
// returns it.
var routePool = sync.Pool{New: func() any { return &bat.Relation{} }}

// PartitionMode selects how a PartitionedBasket routes tuples.
type PartitionMode uint8

// Partitioning modes.
const (
	// PartitionRoundRobin spreads tuples evenly over the partitions without
	// regard to content. Correct for row-local plans (predicate-window
	// selects), whose result is the same under any disjoint split.
	PartitionRoundRobin PartitionMode = iota
	// PartitionHash routes each tuple by a hash of one column, so tuples
	// with equal keys always land in the same partition. Required by
	// grouped plans: a group never straddles two partitions.
	PartitionHash
	// PartitionRange routes each tuple by where one column's value falls
	// in the plan's sargable interval set: matching tuples spread over
	// the partitions by range slice (or by hash when the set has no
	// sliceable measure), and tuples outside the set — which no query of
	// the wiring can ever match — short-circuit to a catch-all basket
	// that no clone scans. This is partition pruning: the P-way split
	// stops being mere placement and becomes work reduction.
	PartitionRange
)

// String names the mode.
func (m PartitionMode) String() string {
	switch m {
	case PartitionRoundRobin:
		return "round-robin"
	case PartitionHash:
		return "hash"
	case PartitionRange:
		return "range"
	}
	return "?"
}

// PartitionedBasket shards one logical stream into P partition baskets
// behind the basket ingest API: Append accepts the same relations a plain
// Basket would and routes every tuple to exactly one partition. Each
// partition is a full Basket (own lock, own timestamp column, own
// scheduler hooks), which is what lets the engine replicate a query's
// factory over the partitions and run the clones as independent Petri-net
// transitions.
type PartitionedBasket struct {
	name  string
	parts []*Basket
	mode  PartitionMode
	col   string // routing column (user-schema name) under hash and range modes
	rr    atomic.Int64

	// Range-routing state (mode PartitionRange). set is the matching
	// value domain; cuts are the p-1 ascending numeric cut points slicing
	// it into equal-measure partition ranges (nil when the set has no
	// sliceable measure, in which case matching tuples place by hash);
	// rest is the catch-all basket receiving tuples outside set.
	set  interval.Set
	cuts []float64
	rest *Basket

	// dests caches parts + rest so the per-firing append path never
	// re-slices.
	dests []*Basket
}

// NewPartitioned creates a partitioned basket of p partitions with the
// given attribute schema. For PartitionHash, hashCol names the routing
// column and must be one of the declared attributes.
func NewPartitioned(name string, names []string, types []vector.Type, p int, mode PartitionMode, hashCol string) (*PartitionedBasket, error) {
	if p < 1 {
		return nil, fmt.Errorf("basket: partitioned %s: need at least 1 partition, got %d", name, p)
	}
	if mode == PartitionHash {
		found := false
		for _, n := range names {
			if n == hashCol {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("basket: partitioned %s: hash column %q not in schema %v", name, hashCol, names)
		}
	}
	pb := &PartitionedBasket{name: name, mode: mode, col: hashCol}
	for i := 0; i < p; i++ {
		pb.parts = append(pb.parts, New(fmt.Sprintf("%s.p%d", name, i), names, types))
	}
	pb.dests = pb.parts
	return pb, nil
}

// NewPartitionedRange creates a range-routed partitioned basket of p
// partitions plus a catch-all: tuples whose col value lies in set spread
// over the partitions (by equal-measure range slices when the set is
// numeric and bounded, by hash otherwise), tuples outside set go to the
// catch-all. col must be one of the declared attributes and set must not
// cover every value (that would just be round-robin with extra steps).
func NewPartitionedRange(name string, names []string, types []vector.Type, p int, col string, set interval.Set) (*PartitionedBasket, error) {
	if p < 1 {
		return nil, fmt.Errorf("basket: partitioned %s: need at least 1 partition, got %d", name, p)
	}
	found := false
	for _, n := range names {
		if n == col {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("basket: partitioned %s: range column %q not in schema %v", name, col, names)
	}
	if set.All() {
		return nil, fmt.Errorf("basket: partitioned %s: range set on %q covers every value; use round-robin", name, col)
	}
	pb := &PartitionedBasket{name: name, mode: PartitionRange, col: col, set: set}
	pb.cuts, _ = set.Cuts(p)
	for i := 0; i < p; i++ {
		pb.parts = append(pb.parts, New(fmt.Sprintf("%s.p%d", name, i), names, types))
	}
	pb.rest = New(name+".rest", names, types)
	pb.dests = append(append([]*Basket(nil), pb.parts...), pb.rest)
	return pb, nil
}

// Name returns the partitioned basket's name.
func (pb *PartitionedBasket) Name() string { return pb.name }

// Parts returns the partition baskets scanned by query clones, in
// partition order. The catch-all is not among them.
func (pb *PartitionedBasket) Parts() []*Basket { return pb.parts }

// CatchAll returns the catch-all basket of range routing — the resting
// place of tuples no query of the wiring can match — or nil for the
// other modes.
func (pb *PartitionedBasket) CatchAll() *Basket { return pb.rest }

// Destinations returns every basket a tuple can be routed to: the
// partitions in order, then the catch-all when range routing is active.
// Split's result is indexed the same way. Callers must not mutate the
// returned slice.
func (pb *PartitionedBasket) Destinations() []*Basket { return pb.dests }

// RangeSet returns the matching value domain of range routing (the zero
// Set otherwise).
func (pb *PartitionedBasket) RangeSet() interval.Set { return pb.set }

// Describe renders the routing for explain/monitoring output:
// "round-robin", "hash(k)", "range(v)".
func (pb *PartitionedBasket) Describe() string {
	switch pb.mode {
	case PartitionHash:
		return fmt.Sprintf("hash(%s)", pb.col)
	case PartitionRange:
		return fmt.Sprintf("range(%s)", pb.col)
	}
	return pb.mode.String()
}

// NumPartitions returns the partition count P.
func (pb *PartitionedBasket) NumPartitions() int { return len(pb.parts) }

// Mode returns the routing mode.
func (pb *PartitionedBasket) Mode() PartitionMode { return pb.mode }

// HashCol returns the hash routing column ("" under round-robin).
func (pb *PartitionedBasket) HashCol() string { return pb.col }

// Split computes the routing assignment of rel's tuples, returning one
// ascending position list per destination basket (see Destinations; nil
// for destinations that receive nothing). Under range routing the final
// entry is the catch-all's. It advances the round-robin cursor but does
// not touch the partition baskets.
func (pb *PartitionedBasket) Split(rel *bat.Relation) ([][]int32, error) {
	p := len(pb.parts)
	nd := p
	if pb.rest != nil {
		nd++
	}
	sels := make([][]int32, nd)
	n := rel.Len()
	if n == 0 {
		return sels, nil
	}
	if p == 1 && pb.mode != PartitionRange {
		sels[0] = allPositions(n)
		return sels, nil
	}
	switch pb.mode {
	case PartitionRoundRobin:
		base := pb.rr.Add(int64(n)) - int64(n)
		for i := 0; i < n; i++ {
			k := int((base + int64(i)) % int64(p))
			sels[k] = append(sels[k], int32(i))
		}
	case PartitionHash:
		v := rel.ColByName(pb.col)
		if v == nil {
			return nil, fmt.Errorf("basket: partitioned %s: relation has no column %q", pb.name, pb.col)
		}
		for i := 0; i < n; i++ {
			k := int(hashValue(v, i) % uint64(p))
			sels[k] = append(sels[k], int32(i))
		}
	case PartitionRange:
		v := rel.ColByName(pb.col)
		if v == nil {
			return nil, fmt.Errorf("basket: partitioned %s: relation has no column %q", pb.name, pb.col)
		}
		for i := 0; i < n; i++ {
			val := v.Get(i)
			k := p // catch-all: no query of this wiring can match the tuple
			if pb.set.Contains(val) {
				switch {
				case p == 1:
					k = 0
				case pb.cuts != nil:
					// Partition j owns the j-th equal-measure half-open
					// slice of the matching domain (boundary values go
					// right, mirroring the `lo <= v and v < hi` window
					// idiom). Placement within the matching set never
					// affects correctness, only balance.
					x := val.AsFloat()
					k = sort.Search(len(pb.cuts), func(i int) bool { return pb.cuts[i] > x })
					if k >= p {
						k = p - 1
					}
				default:
					// No sliceable measure (IN-sets, unbounded or
					// non-numeric ranges): place matchers by hash.
					k = int(hashValue(v, i) % uint64(p))
				}
			}
			sels[k] = append(sels[k], int32(i))
		}
	default:
		return nil, fmt.Errorf("basket: partitioned %s: unknown mode %d", pb.name, pb.mode)
	}
	return sels, nil
}

// Append shards rel across the destinations through the public Basket
// ingest API (locking, integrity constraints, arrival stamping and
// scheduler wake-ups per destination). It returns the number of tuples
// accepted.
func (pb *PartitionedBasket) Append(rel *bat.Relation) (int, error) {
	sels, err := pb.Split(rel)
	if err != nil {
		return 0, err
	}
	dests := pb.Destinations()
	stage := routePool.Get().(*bat.Relation)
	defer routePool.Put(stage)
	total := 0
	for k, sel := range sels {
		if len(sel) == 0 {
			continue
		}
		n, err := dests[k].Append(rel.GatherInto(stage, sel))
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// AppendLocked is Append for callers that already hold every
// destination's lock (the partition-splitter factory, whose output set is
// the destinations). Scheduler hooks are not fired; the caller's firing
// cycle handles wake-ups.
func (pb *PartitionedBasket) AppendLocked(rel *bat.Relation) (int, error) {
	sels, err := pb.Split(rel)
	if err != nil {
		return 0, err
	}
	dests := pb.Destinations()
	stage := routePool.Get().(*bat.Relation)
	defer routePool.Put(stage)
	total := 0
	for k, sel := range sels {
		if len(sel) == 0 {
			continue
		}
		n, err := dests[k].AppendLocked(rel.GatherInto(stage, sel))
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func allPositions(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// hashValue hashes element i of a column vector. The hash only has to
// co-locate equal keys; it carries no cross-run stability guarantees.
func hashValue(v *vector.Vector, i int) uint64 {
	switch v.Kind() {
	case vector.Int, vector.Timestamp:
		return mix64(uint64(v.Ints()[i]))
	case vector.Float:
		f := v.Floats()[i]
		if f == 0 {
			f = 0 // collapse -0.0 into +0.0: they are one grouping key
		}
		return mix64(math.Float64bits(f))
	case vector.Bool:
		if v.Bools()[i] {
			return mix64(1)
		}
		return mix64(0)
	case vector.Str:
		// FNV-1a.
		h := uint64(14695981039346656037)
		for _, c := range []byte(v.Strs()[i]) {
			h ^= uint64(c)
			h *= 1099511628211
		}
		return mix64(h)
	}
	return 0
}

// mix64 is the splitmix64 finaliser, scrambling low-entropy keys (small
// ints) into well-spread partition assignments.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
