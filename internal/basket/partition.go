package basket

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"datacell/internal/bat"
	"datacell/internal/vector"
)

// routePool recycles the per-partition gather staging relations of
// PartitionedBasket appends; each Append borrows one, gathers a
// partition's tuples into it (the partition copies them on ingest) and
// returns it.
var routePool = sync.Pool{New: func() any { return &bat.Relation{} }}

// PartitionMode selects how a PartitionedBasket routes tuples.
type PartitionMode uint8

// Partitioning modes.
const (
	// PartitionRoundRobin spreads tuples evenly over the partitions without
	// regard to content. Correct for row-local plans (predicate-window
	// selects), whose result is the same under any disjoint split.
	PartitionRoundRobin PartitionMode = iota
	// PartitionHash routes each tuple by a hash of one column, so tuples
	// with equal keys always land in the same partition. Required by
	// grouped plans: a group never straddles two partitions.
	PartitionHash
)

// String names the mode.
func (m PartitionMode) String() string {
	switch m {
	case PartitionRoundRobin:
		return "round-robin"
	case PartitionHash:
		return "hash"
	}
	return "?"
}

// PartitionedBasket shards one logical stream into P partition baskets
// behind the basket ingest API: Append accepts the same relations a plain
// Basket would and routes every tuple to exactly one partition. Each
// partition is a full Basket (own lock, own timestamp column, own
// scheduler hooks), which is what lets the engine replicate a query's
// factory over the partitions and run the clones as independent Petri-net
// transitions.
type PartitionedBasket struct {
	name  string
	parts []*Basket
	mode  PartitionMode
	col   string // hash column (user-schema name) when mode is PartitionHash
	rr    atomic.Int64
}

// NewPartitioned creates a partitioned basket of p partitions with the
// given attribute schema. For PartitionHash, hashCol names the routing
// column and must be one of the declared attributes.
func NewPartitioned(name string, names []string, types []vector.Type, p int, mode PartitionMode, hashCol string) (*PartitionedBasket, error) {
	if p < 1 {
		return nil, fmt.Errorf("basket: partitioned %s: need at least 1 partition, got %d", name, p)
	}
	if mode == PartitionHash {
		found := false
		for _, n := range names {
			if n == hashCol {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("basket: partitioned %s: hash column %q not in schema %v", name, hashCol, names)
		}
	}
	pb := &PartitionedBasket{name: name, mode: mode, col: hashCol}
	for i := 0; i < p; i++ {
		pb.parts = append(pb.parts, New(fmt.Sprintf("%s.p%d", name, i), names, types))
	}
	return pb, nil
}

// Name returns the partitioned basket's name.
func (pb *PartitionedBasket) Name() string { return pb.name }

// Parts returns the partition baskets in partition order.
func (pb *PartitionedBasket) Parts() []*Basket { return pb.parts }

// NumPartitions returns the partition count P.
func (pb *PartitionedBasket) NumPartitions() int { return len(pb.parts) }

// Mode returns the routing mode.
func (pb *PartitionedBasket) Mode() PartitionMode { return pb.mode }

// HashCol returns the hash routing column ("" under round-robin).
func (pb *PartitionedBasket) HashCol() string { return pb.col }

// Split computes the partition assignment of rel's tuples, returning one
// ascending position list per partition (nil for partitions that receive
// nothing). It advances the round-robin cursor but does not touch the
// partition baskets.
func (pb *PartitionedBasket) Split(rel *bat.Relation) ([][]int32, error) {
	p := len(pb.parts)
	sels := make([][]int32, p)
	n := rel.Len()
	if n == 0 {
		return sels, nil
	}
	if p == 1 {
		sels[0] = allPositions(n)
		return sels, nil
	}
	switch pb.mode {
	case PartitionRoundRobin:
		base := pb.rr.Add(int64(n)) - int64(n)
		for i := 0; i < n; i++ {
			k := int((base + int64(i)) % int64(p))
			sels[k] = append(sels[k], int32(i))
		}
	case PartitionHash:
		v := rel.ColByName(pb.col)
		if v == nil {
			return nil, fmt.Errorf("basket: partitioned %s: relation has no column %q", pb.name, pb.col)
		}
		for i := 0; i < n; i++ {
			k := int(hashValue(v, i) % uint64(p))
			sels[k] = append(sels[k], int32(i))
		}
	default:
		return nil, fmt.Errorf("basket: partitioned %s: unknown mode %d", pb.name, pb.mode)
	}
	return sels, nil
}

// Append shards rel across the partitions through the public Basket ingest
// API (locking, integrity constraints, arrival stamping and scheduler
// wake-ups per partition). It returns the number of tuples accepted.
func (pb *PartitionedBasket) Append(rel *bat.Relation) (int, error) {
	sels, err := pb.Split(rel)
	if err != nil {
		return 0, err
	}
	stage := routePool.Get().(*bat.Relation)
	defer routePool.Put(stage)
	total := 0
	for k, sel := range sels {
		if len(sel) == 0 {
			continue
		}
		n, err := pb.parts[k].Append(rel.GatherInto(stage, sel))
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// AppendLocked is Append for callers that already hold every partition's
// lock (the partition-splitter factory, whose output set is the
// partitions). Scheduler hooks are not fired; the caller's firing cycle
// handles wake-ups.
func (pb *PartitionedBasket) AppendLocked(rel *bat.Relation) (int, error) {
	sels, err := pb.Split(rel)
	if err != nil {
		return 0, err
	}
	stage := routePool.Get().(*bat.Relation)
	defer routePool.Put(stage)
	total := 0
	for k, sel := range sels {
		if len(sel) == 0 {
			continue
		}
		n, err := pb.parts[k].AppendLocked(rel.GatherInto(stage, sel))
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func allPositions(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// hashValue hashes element i of a column vector. The hash only has to
// co-locate equal keys; it carries no cross-run stability guarantees.
func hashValue(v *vector.Vector, i int) uint64 {
	switch v.Kind() {
	case vector.Int, vector.Timestamp:
		return mix64(uint64(v.Ints()[i]))
	case vector.Float:
		f := v.Floats()[i]
		if f == 0 {
			f = 0 // collapse -0.0 into +0.0: they are one grouping key
		}
		return mix64(math.Float64bits(f))
	case vector.Bool:
		if v.Bools()[i] {
			return mix64(1)
		}
		return mix64(0)
	case vector.Str:
		// FNV-1a.
		h := uint64(14695981039346656037)
		for _, c := range []byte(v.Strs()[i]) {
			h ^= uint64(c)
			h *= 1099511628211
		}
		return mix64(h)
	}
	return 0
}

// mix64 is the splitmix64 finaliser, scrambling low-entropy keys (small
// ints) into well-spread partition assignments.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
