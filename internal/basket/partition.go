package basket

import (
	"fmt"
	"sync"

	"datacell/internal/bat"
	"datacell/internal/interval"
	"datacell/internal/vector"
)

// routePool recycles the per-partition gather staging relations of
// PartitionedBasket appends; each Append borrows one, gathers a
// partition's tuples into it (the partition copies them on ingest) and
// returns it.
var routePool = sync.Pool{New: func() any { return &bat.Relation{} }}

// selsPool recycles the per-destination position lists of the routing
// step: Append is called per receptor batch and per splitter firing, so
// the [][]int32 header and each destination's accumulated capacity are
// reused (RouteInto truncates instead of reallocating) rather than
// regrown every time.
var selsPool sync.Pool

// borrowSels returns a destination-position buffer of nd slots.
func borrowSels(nd int) *[][]int32 {
	if sp, _ := selsPool.Get().(*[][]int32); sp != nil {
		if len(*sp) == nd {
			return sp
		}
		// Wrong shape for this basket: resize, keeping what capacity fits.
		s := *sp
		for len(s) < nd {
			s = append(s, nil)
		}
		s = s[:nd]
		*sp = s
		return sp
	}
	s := make([][]int32, nd)
	return &s
}

// PartitionMode selects how a PartitionedBasket routes tuples.
type PartitionMode uint8

// Partitioning modes.
const (
	// PartitionRoundRobin spreads tuples evenly over the partitions without
	// regard to content. Correct for row-local plans (predicate-window
	// selects), whose result is the same under any disjoint split.
	PartitionRoundRobin PartitionMode = iota
	// PartitionHash routes each tuple by a hash of one column, so tuples
	// with equal keys always land in the same partition. Required by
	// grouped plans: a group never straddles two partitions.
	PartitionHash
	// PartitionRange routes each tuple by where one column's value falls
	// in the plan's sargable interval set: matching tuples spread over
	// the partitions by range slice (or by hash when the set has no
	// sliceable measure), and tuples outside the set — which no query of
	// the wiring can ever match — short-circuit to a catch-all basket
	// that no clone scans. This is partition pruning: the P-way split
	// stops being mere placement and becomes work reduction.
	PartitionRange
)

// String names the mode.
func (m PartitionMode) String() string {
	switch m {
	case PartitionRoundRobin:
		return "round-robin"
	case PartitionHash:
		return "hash"
	case PartitionRange:
		return "range"
	}
	return "?"
}

// PartitionedBasket shards one logical stream into P partition baskets
// behind the basket ingest API: Append accepts the same relations a plain
// Basket would and routes every tuple to exactly one partition. Each
// partition is a full Basket (own lock, own timestamp column, own
// scheduler hooks), which is what lets the engine replicate a query's
// factory over the partitions and run the clones as independent Petri-net
// transitions. The routing decision itself lives in the Router, so the
// same verdict drives the core splitter and the ingest periphery alike.
type PartitionedBasket struct {
	name   string
	parts  []*Basket
	router *Router
	rest   *Basket // catch-all of range routing, nil otherwise

	// dests caches parts + rest so the per-firing append path never
	// re-slices.
	dests []*Basket
}

// NewPartitioned creates a partitioned basket of p partitions with the
// given attribute schema. For PartitionHash, hashCol names the routing
// column and must be one of the declared attributes.
func NewPartitioned(name string, names []string, types []vector.Type, p int, mode PartitionMode, hashCol string) (*PartitionedBasket, error) {
	if p < 1 {
		return nil, fmt.Errorf("basket: partitioned %s: need at least 1 partition, got %d", name, p)
	}
	if mode == PartitionHash {
		found := false
		for _, n := range names {
			if n == hashCol {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("basket: partitioned %s: hash column %q not in schema %v", name, hashCol, names)
		}
	}
	router, err := NewRouter(mode, hashCol, p)
	if err != nil {
		return nil, fmt.Errorf("basket: partitioned %s: %w", name, err)
	}
	pb := &PartitionedBasket{name: name, router: router}
	for i := 0; i < p; i++ {
		pb.parts = append(pb.parts, New(fmt.Sprintf("%s.p%d", name, i), names, types))
	}
	pb.dests = pb.parts
	return pb, nil
}

// NewPartitionedHashPruned creates a hash-routed partitioned basket of p
// partitions plus a catch-all: tuples whose pruneCol value lies in set
// place by hash(hashCol), tuples outside it — which no query of the
// wiring can ever match — divert to the catch-all before any
// partial-aggregate clone copies them. Both columns must be declared
// attributes, and set must not cover every value.
func NewPartitionedHashPruned(name string, names []string, types []vector.Type, p int, hashCol, pruneCol string, set interval.Set) (*PartitionedBasket, error) {
	if p < 1 {
		return nil, fmt.Errorf("basket: partitioned %s: need at least 1 partition, got %d", name, p)
	}
	for _, col := range []string{hashCol, pruneCol} {
		found := false
		for _, n := range names {
			if n == col {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("basket: partitioned %s: routing column %q not in schema %v", name, col, names)
		}
	}
	router, err := NewHashPrunedRouter(hashCol, pruneCol, p, set)
	if err != nil {
		return nil, fmt.Errorf("basket: partitioned %s: %w", name, err)
	}
	pb := &PartitionedBasket{name: name, router: router}
	for i := 0; i < p; i++ {
		pb.parts = append(pb.parts, New(fmt.Sprintf("%s.p%d", name, i), names, types))
	}
	pb.rest = New(name+".rest", names, types)
	pb.dests = append(append([]*Basket(nil), pb.parts...), pb.rest)
	return pb, nil
}

// NewPartitionedRange creates a range-routed partitioned basket of p
// partitions plus a catch-all: tuples whose col value lies in set spread
// over the partitions (by equal-measure range slices when the set is
// numeric and bounded, by hash otherwise), tuples outside set go to the
// catch-all. col must be one of the declared attributes and set must not
// cover every value (that would just be round-robin with extra steps).
func NewPartitionedRange(name string, names []string, types []vector.Type, p int, col string, set interval.Set) (*PartitionedBasket, error) {
	if p < 1 {
		return nil, fmt.Errorf("basket: partitioned %s: need at least 1 partition, got %d", name, p)
	}
	found := false
	for _, n := range names {
		if n == col {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("basket: partitioned %s: range column %q not in schema %v", name, col, names)
	}
	if set.All() {
		return nil, fmt.Errorf("basket: partitioned %s: range set on %q covers every value; use round-robin", name, col)
	}
	router, err := NewRangeRouter(col, p, set)
	if err != nil {
		return nil, fmt.Errorf("basket: partitioned %s: %w", name, err)
	}
	pb := &PartitionedBasket{name: name, router: router}
	for i := 0; i < p; i++ {
		pb.parts = append(pb.parts, New(fmt.Sprintf("%s.p%d", name, i), names, types))
	}
	pb.rest = New(name+".rest", names, types)
	pb.dests = append(append([]*Basket(nil), pb.parts...), pb.rest)
	return pb, nil
}

// Name returns the partitioned basket's name.
func (pb *PartitionedBasket) Name() string { return pb.name }

// Parts returns the partition baskets scanned by query clones, in
// partition order. The catch-all is not among them.
func (pb *PartitionedBasket) Parts() []*Basket { return pb.parts }

// CatchAll returns the catch-all basket of range routing — the resting
// place of tuples no query of the wiring can match — or nil for the
// other modes.
func (pb *PartitionedBasket) CatchAll() *Basket { return pb.rest }

// Destinations returns every basket a tuple can be routed to: the
// partitions in order, then the catch-all when range routing is active.
// Split's result is indexed the same way. Callers must not mutate the
// returned slice.
func (pb *PartitionedBasket) Destinations() []*Basket { return pb.dests }

// Router returns the routing decision of this partitioned basket, shared
// with every path that appends into it.
func (pb *PartitionedBasket) Router() *Router { return pb.router }

// RangeSet returns the matching value domain of range routing (the zero
// Set otherwise).
func (pb *PartitionedBasket) RangeSet() interval.Set { return pb.router.RangeSet() }

// Describe renders the routing for explain/monitoring output:
// "round-robin", "hash(k)", "range(v)".
func (pb *PartitionedBasket) Describe() string { return pb.router.Describe() }

// NumPartitions returns the partition count P.
func (pb *PartitionedBasket) NumPartitions() int { return len(pb.parts) }

// Mode returns the routing mode.
func (pb *PartitionedBasket) Mode() PartitionMode { return pb.router.Mode() }

// HashCol returns the hash routing column ("" under round-robin).
func (pb *PartitionedBasket) HashCol() string { return pb.router.Col() }

// Split computes the routing assignment of rel's tuples, returning one
// ascending position list per destination basket (see Destinations; nil
// for destinations that receive nothing). Under range routing the final
// entry is the catch-all's. It advances the round-robin cursor but does
// not touch the partition baskets.
func (pb *PartitionedBasket) Split(rel *bat.Relation) ([][]int32, error) {
	sels, err := pb.router.Route(rel)
	if err != nil {
		return nil, fmt.Errorf("basket: partitioned %s: %w", pb.name, err)
	}
	return sels, nil
}

// Append shards rel across the destinations through the public Basket
// ingest API (locking, integrity constraints, arrival stamping and
// scheduler wake-ups per destination). It returns the number of tuples
// accepted.
func (pb *PartitionedBasket) Append(rel *bat.Relation) (int, error) {
	return pb.append(rel, (*Basket).Append)
}

// AppendLocked is Append for callers that already hold every
// destination's lock (the partition-splitter factory, whose output set is
// the destinations). Scheduler hooks are not fired; the caller's firing
// cycle handles wake-ups.
func (pb *PartitionedBasket) AppendLocked(rel *bat.Relation) (int, error) {
	return pb.append(rel, (*Basket).AppendLocked)
}

// append routes rel with pooled position buffers and hands every
// non-empty destination slice to sink (Append or AppendLocked).
func (pb *PartitionedBasket) append(rel *bat.Relation, sink func(*Basket, *bat.Relation) (int, error)) (int, error) {
	sp := borrowSels(len(pb.dests))
	defer selsPool.Put(sp)
	sels, err := pb.router.RouteInto(rel, *sp)
	if err != nil {
		return 0, fmt.Errorf("basket: partitioned %s: %w", pb.name, err)
	}
	*sp = sels
	stage := routePool.Get().(*bat.Relation)
	defer routePool.Put(stage)
	total := 0
	for k, sel := range sels {
		if len(sel) == 0 {
			continue
		}
		n, err := sink(pb.dests[k], rel.GatherInto(stage, sel))
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
