// Package faultpoint provides named, atomically-toggled failure sites for
// fault-injection testing. Production code threads Check calls through its
// failure-prone paths (writes, fsyncs, deliveries); tests arm a site with an
// Action and the call site simulates the corresponding fault: an injected
// error, a short (torn) write, or a crash.
//
// When no site is armed — the production steady state — Check is a single
// atomic load and returns immediately, so the hooks cost nothing on the hot
// path. Injections are one-shot: a site fires once after skipping a
// configured number of hits and then disarms itself, which keeps tests
// deterministic.
package faultpoint

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Action tells the call site how to fail when its faultpoint fires.
type Action uint8

const (
	// None means the site is not armed; proceed normally.
	None Action = iota
	// Err makes the call site return an injected error without damaging
	// any state (the hardened-path case: callers must surface it cleanly).
	Err
	// Short makes the call site perform a torn write — persist a prefix of
	// the record, then crash — leaving a partial record for recovery to
	// repair.
	Short
	// Crash makes the call site simulate abrupt process death at that
	// point: unflushed state is dropped and no further writes happen.
	Crash
)

func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Err:
		return "err"
	case Short:
		return "short"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// ErrInjected is the default error returned by sites armed with Err.
var ErrInjected = errors.New("faultpoint: injected failure")

type injection struct {
	act   Action
	after int64 // hits to skip before firing
	err   error
}

var (
	armed   atomic.Int32 // number of armed sites; 0 = fast path
	mu      sync.Mutex
	sites   map[string]*injection
	hits    map[string]int64
	crashFn atomic.Value // func()
)

// Inject arms site so that its (after+1)-th Check fires the action, then
// disarms it. err overrides ErrInjected for the Err action; pass nil for the
// default.
func Inject(site string, act Action, after int, err error) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = make(map[string]*injection)
	}
	if _, ok := sites[site]; !ok {
		armed.Add(1)
	}
	sites[site] = &injection{act: act, after: int64(after), err: err}
}

// Clear disarms every site and resets hit counters. Crash functions set with
// SetCrashFn are left in place.
func Clear() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(sites)))
	sites = nil
	hits = nil
}

// Armed reports whether the named site still has a pending injection.
func Armed(site string) bool {
	mu.Lock()
	defer mu.Unlock()
	_, ok := sites[site]
	return ok
}

// Hits returns how many times Check has been called for site while any site
// was armed. Useful for asserting a code path was actually exercised.
func Hits(site string) int64 {
	mu.Lock()
	defer mu.Unlock()
	return hits[site]
}

// Check is called by production code at a failure site. It returns the
// action to simulate, and for Err the error to return. When nothing is armed
// it is a single atomic load.
func Check(site string) (Action, error) {
	if armed.Load() == 0 {
		return None, nil
	}
	mu.Lock()
	defer mu.Unlock()
	if hits == nil {
		hits = make(map[string]int64)
	}
	hits[site]++
	in := sites[site]
	if in == nil {
		return None, nil
	}
	if in.after > 0 {
		in.after--
		return None, nil
	}
	delete(sites, site)
	armed.Add(-1)
	if in.act == Err && in.err != nil {
		return Err, in.err
	}
	if in.act == Err {
		return Err, fmt.Errorf("%w at %s", ErrInjected, site)
	}
	return in.act, nil
}

// SetCrashFn installs the function invoked by CrashNow when a Crash or Short
// action fires. Subprocess tests set os.Exit here so the crash is a real
// process death; when nil (the default) the call site simulates the crash
// in-process. Pass nil to restore the default.
func SetCrashFn(fn func()) {
	crashFn.Store(wrappedCrash{fn})
}

type wrappedCrash struct{ fn func() }

// CrashNow invokes the installed crash function, if any. It returns false
// when none is installed, in which case the caller must simulate the crash
// itself (drop buffers, refuse further writes).
func CrashNow() bool {
	v, _ := crashFn.Load().(wrappedCrash)
	if v.fn == nil {
		return false
	}
	v.fn()
	return true
}
