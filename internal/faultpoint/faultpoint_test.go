package faultpoint

import (
	"errors"
	"testing"
)

func TestDisarmedFastPath(t *testing.T) {
	Clear()
	if act, err := Check("nope"); act != None || err != nil {
		t.Fatalf("disarmed Check = %v, %v", act, err)
	}
	if Hits("nope") != 0 {
		t.Fatalf("hits counted while disarmed")
	}
}

func TestOneShotAfter(t *testing.T) {
	Clear()
	defer Clear()
	Inject("w", Err, 2, nil)
	for i := 0; i < 2; i++ {
		if act, _ := Check("w"); act != None {
			t.Fatalf("hit %d fired early: %v", i, act)
		}
	}
	act, err := Check("w")
	if act != Err || !errors.Is(err, ErrInjected) {
		t.Fatalf("third hit = %v, %v; want Err/ErrInjected", act, err)
	}
	if Armed("w") {
		t.Fatalf("site still armed after firing")
	}
	if act, _ := Check("w"); act != None {
		t.Fatalf("fired twice")
	}
	// Hits are counted only while some site is armed (the disarmed fast
	// path skips the bookkeeping entirely).
	if Hits("w") != 3 {
		t.Fatalf("hits = %d, want 3", Hits("w"))
	}
}

func TestCustomError(t *testing.T) {
	Clear()
	defer Clear()
	boom := errors.New("boom")
	Inject("e", Err, 0, boom)
	if _, err := Check("e"); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestCrashFn(t *testing.T) {
	Clear()
	defer SetCrashFn(nil)
	if CrashNow() {
		t.Fatalf("CrashNow with no fn should report false")
	}
	called := false
	SetCrashFn(func() { called = true })
	if !CrashNow() || !called {
		t.Fatalf("installed crash fn not invoked")
	}
	SetCrashFn(nil)
	if CrashNow() {
		t.Fatalf("crash fn not cleared")
	}
}

func TestClearDisarms(t *testing.T) {
	Clear()
	Inject("a", Crash, 0, nil)
	Inject("b", Short, 0, nil)
	Clear()
	if act, _ := Check("a"); act != None {
		t.Fatalf("a still armed after Clear")
	}
	if armed.Load() != 0 {
		t.Fatalf("armed counter = %d after Clear", armed.Load())
	}
}
