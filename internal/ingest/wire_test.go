package ingest

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"datacell/internal/bat"
	"datacell/internal/stream"
	"datacell/internal/vector"
)

// allTypesRelation builds a relation covering every wire-encodable column
// type, including values that stress the encodings (negative ints, -0.0,
// empty strings, pipes inside strings would break the textual format so
// they stay out of the equivalence test but not this one).
func allTypesRelation(withPipes bool) *bat.Relation {
	names := []string{"i", "f", "b", "s", "ts"}
	types := []vector.Type{vector.Int, vector.Float, vector.Bool, vector.Str, vector.Timestamp}
	rel := bat.NewEmptyRelation(names, types)
	strs := []string{"", "hello", "übergröße", "multi word value"}
	if withPipes {
		strs = append(strs, "a|b|c")
	}
	ints := []int64{0, -1, 1 << 40, -(1 << 40), 42}
	floats := []float64{0, -0.0, 3.14159, -2.5e300, 1e-9}
	for i := 0; i < 64; i++ {
		rel.AppendRow(
			vector.NewInt(ints[i%len(ints)]),
			vector.NewFloat(floats[i%len(floats)]),
			vector.NewBool(i%3 == 0),
			vector.NewStr(strs[i%len(strs)]),
			vector.NewTimestampMicros(int64(1700000000000000+i)),
		)
	}
	return rel
}

func relationsEqual(t *testing.T, a, b *bat.Relation) {
	t.Helper()
	if a.Len() != b.Len() || a.NumCols() != b.NumCols() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", a.Len(), a.NumCols(), b.Len(), b.NumCols())
	}
	for r := 0; r < a.Len(); r++ {
		for c := 0; c < a.NumCols(); c++ {
			if a.Col(c).Get(r) != b.Col(c).Get(r) {
				t.Fatalf("value mismatch at row %d col %d: %v vs %v", r, c, a.Col(c).Get(r), b.Col(c).Get(r))
			}
		}
	}
}

func TestFrameRoundTripAllTypes(t *testing.T) {
	src := allTypesRelation(true)
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteRelation(src); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bufio.NewReader(&buf), src.Types())
	got := bat.NewEmptyRelation(src.Names(), src.Types())
	n, err := fr.DecodeFrameInto(got)
	if err != nil {
		t.Fatal(err)
	}
	if n != src.Len() {
		t.Fatalf("decoded %d tuples, want %d", n, src.Len())
	}
	relationsEqual(t, src, got)
	if _, err := fr.DecodeFrameInto(got); err != io.EOF {
		t.Fatalf("want clean EOF at frame boundary, got %v", err)
	}
}

// TestFrameMatchesTextualCodec pins wire-level equivalence: the same
// tuples shipped through the binary frame codec and through the textual
// line codec decode to identical relations, over every column type.
func TestFrameMatchesTextualCodec(t *testing.T) {
	src := allTypesRelation(false) // '|' inside strings is a textual-format limitation
	types := src.Types()

	// Binary path.
	var bbuf bytes.Buffer
	if err := NewFrameWriter(&bbuf).WriteRelation(src); err != nil {
		t.Fatal(err)
	}
	binRel := bat.NewEmptyRelation(src.Names(), types)
	if _, err := NewFrameReader(bufio.NewReader(&bbuf), types).DecodeFrameInto(binRel); err != nil {
		t.Fatal(err)
	}

	// Textual path.
	txtRel := bat.NewEmptyRelation(src.Names(), types)
	for _, line := range stream.EncodeRelation(src, 0) {
		if err := stream.DecodeRowInto(line, types, txtRel); err != nil {
			t.Fatalf("textual decode of %q: %v", line, err)
		}
	}

	relationsEqual(t, binRel, txtRel)
	relationsEqual(t, src, binRel)
}

func TestFrameMultipleFramesAccumulate(t *testing.T) {
	src := allTypesRelation(true)
	var buf bytes.Buffer
	bw := NewBatchWriter(&buf, src.Names(), src.Types(), 10)
	if err := bw.WriteRelation(src); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bufio.NewReader(&buf), src.Types())
	got := bat.NewEmptyRelation(src.Names(), src.Types())
	total, frames := 0, 0
	for {
		n, err := fr.DecodeFrameInto(got)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += n
		frames++
	}
	if total != src.Len() {
		t.Fatalf("decoded %d tuples over %d frames, want %d", total, frames, src.Len())
	}
	if want := (src.Len() + 9) / 10; frames != want {
		t.Fatalf("decoded %d frames, want %d", frames, want)
	}
	relationsEqual(t, src, got)
}

// corruptFrame encodes src and returns the wire bytes for mutation tests.
func corruptFrame(t *testing.T, src *bat.Relation) []byte {
	t.Helper()
	buf, err := AppendFrame(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func decodeBytes(t *testing.T, b []byte, src *bat.Relation) (int, *bat.Relation, error) {
	t.Helper()
	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(b)), src.Types())
	rel := bat.NewEmptyRelation(src.Names(), src.Types())
	n, err := fr.DecodeFrameInto(rel)
	return n, rel, err
}

func TestFrameRejectsBadCRC(t *testing.T) {
	src := allTypesRelation(true)
	wire := corruptFrame(t, src)
	wire[len(wire)-1] ^= 0xFF // flip a payload byte; header CRC now disagrees
	_, rel, err := decodeBytes(t, wire, src)
	if !errors.Is(err, ErrBadCRC) {
		t.Fatalf("want ErrBadCRC, got %v", err)
	}
	if rel.Len() != 0 {
		t.Fatalf("bad frame appended %d tuples; must leave the relation untouched", rel.Len())
	}
}

func TestFrameRejectsTruncation(t *testing.T) {
	src := allTypesRelation(true)
	wire := corruptFrame(t, src)
	for _, cut := range []int{1, headerSize - 1, headerSize + 3, len(wire) / 2, len(wire) - 1} {
		_, rel, err := decodeBytes(t, wire[:cut], src)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: want ErrTruncated, got %v", cut, err)
		}
		if rel.Len() != 0 {
			t.Fatalf("cut at %d appended %d tuples", cut, rel.Len())
		}
	}
}

func TestFrameRejectsBadMagicAndVersion(t *testing.T) {
	src := allTypesRelation(true)
	wire := corruptFrame(t, src)

	bad := append([]byte(nil), wire...)
	bad[0] = 'x'
	if _, _, err := decodeBytes(t, bad, src); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}

	bad = append([]byte(nil), wire...)
	bad[2] = 99
	if _, _, err := decodeBytes(t, bad, src); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
}

func TestFrameRejectsSchemaMismatch(t *testing.T) {
	src := allTypesRelation(true)
	wire := corruptFrame(t, src)

	// Wrong column count on the reader side.
	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(wire)), []vector.Type{vector.Int})
	rel := bat.NewEmptyRelation([]string{"i"}, []vector.Type{vector.Int})
	if _, err := fr.DecodeFrameInto(rel); !errors.Is(err, ErrSchema) {
		t.Fatalf("want ErrSchema for column count, got %v", err)
	}

	// Wrong column type on the reader side.
	types := src.Types()
	types[0] = vector.Str
	fr = NewFrameReader(bufio.NewReader(bytes.NewReader(wire)), types)
	rel = bat.NewEmptyRelation(src.Names(), types)
	if _, err := fr.DecodeFrameInto(rel); !errors.Is(err, ErrSchema) {
		t.Fatalf("want ErrSchema for column type, got %v", err)
	}
}

func TestSniffBinary(t *testing.T) {
	src := allTypesRelation(true)
	wire := corruptFrame(t, src)
	if !SniffBinary(bufio.NewReader(bytes.NewReader(wire))) {
		t.Fatal("binary frame did not sniff as binary")
	}
	for _, text := range []string{"", "1|2.5|true|x|3\n", "héllo|1\n"} {
		if SniffBinary(bufio.NewReader(strings.NewReader(text))) {
			t.Fatalf("textual input %q sniffed as binary", text)
		}
	}
	// Sniffing must not consume: the reader still decodes the full frame.
	br := bufio.NewReader(bytes.NewReader(wire))
	if !SniffBinary(br) {
		t.Fatal("sniff failed")
	}
	fr := NewFrameReader(br, src.Types())
	rel := bat.NewEmptyRelation(src.Names(), src.Types())
	if n, err := fr.DecodeFrameInto(rel); err != nil || n != src.Len() {
		t.Fatalf("decode after sniff: n=%d err=%v", n, err)
	}
}

func TestDecodeFrameIntoSteadyStateAllocs(t *testing.T) {
	// Fixed-width columns only: string values intrinsically allocate.
	names := []string{"a", "b"}
	types := []vector.Type{vector.Int, vector.Float}
	src := bat.NewEmptyRelation(names, types)
	for i := 0; i < 256; i++ {
		src.AppendRow(vector.NewInt(int64(i)), vector.NewFloat(float64(i)*0.5))
	}
	wire, err := AppendFrame(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	many := bytes.Repeat(wire, 50)
	br := bufio.NewReader(bytes.NewReader(many))
	fr := NewFrameReader(br, types)
	rel := bat.NewEmptyRelation(names, types)
	// Warm up buffers and column capacity.
	if _, err := fr.DecodeFrameInto(rel); err != nil {
		t.Fatal(err)
	}
	rel.Clear()
	allocs := testing.AllocsPerRun(40, func() {
		if _, err := fr.DecodeFrameInto(rel); err != nil {
			t.Fatal(err)
		}
		rel.Clear()
	})
	if allocs > 1 {
		t.Fatalf("DecodeFrameInto allocates %.1f per frame at steady state, want <= 1", allocs)
	}
}
