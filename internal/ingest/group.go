package ingest

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/faultpoint"
	"datacell/internal/stream"
	"datacell/internal/vector"
)

// FaultDeliver is the faultpoint site between the WAL tee and the basket
// append: a crash here models dying after a frame is durably logged but
// before it is routed, the case recovery must replay.
const FaultDeliver = "ingest.deliver"

// BatchLog is the write-ahead tee of the delivery path. Every accepted
// batch — binary frames and textual lines alike, re-encoded through the
// one wire format — is logged before it is routed into baskets, so the
// WAL is a faithful prefix of what the kernel saw. *wal.Log implements it;
// the indirection keeps ingest free of a disk dependency.
type BatchLog interface {
	LogBatch(rel *bat.Relation) (uint64, error)
}

// Sink is where a receptor delivers decoded batches: the stream basket
// (splitter-fed path) or a partitioned basket (route-at-ingest path).
// Occupancy reports the largest resident tuple count across the sink's
// scanned destinations — the backpressure signal; the catch-all of range
// routing is excluded, since no factory drains it.
type Sink interface {
	Append(rel *bat.Relation) (int, error)
	Occupancy() int
	Describe() string
}

// basketSink delivers to a single stream basket.
type basketSink struct{ b *basket.Basket }

func (s basketSink) Append(rel *bat.Relation) (int, error) { return s.b.Append(rel) }
func (s basketSink) Occupancy() int                        { return s.b.Len() }
func (s basketSink) Describe() string                      { return "stream basket" }

// BasketSink returns a sink appending to a plain stream basket.
func BasketSink(b *basket.Basket) Sink { return basketSink{b: b} }

// partitionedSink routes every batch through the partitioned basket's
// Router straight into the destination partitions (and catch-all),
// skipping the stream basket and the splitter transition entirely.
type partitionedSink struct{ pb *basket.PartitionedBasket }

func (s partitionedSink) Append(rel *bat.Relation) (int, error) { return s.pb.Append(rel) }

func (s partitionedSink) Occupancy() int {
	occ := 0
	for _, p := range s.pb.Parts() {
		if n := p.Len(); n > occ {
			occ = n
		}
	}
	return occ
}

func (s partitionedSink) Describe() string {
	return fmt.Sprintf("route-at-ingest %s over %d partitions", s.pb.Describe(), s.pb.NumPartitions())
}

// PartitionedSink returns a sink routing batches straight into the
// partitions of pb.
func PartitionedSink(pb *basket.PartitionedBasket) Sink { return partitionedSink{pb: pb} }

// fanoutSink delivers every batch to all of its member sinks — the
// route-at-ingest form of the separate strategy's replicator: each
// member (and tap) receives its own copy of the batch directly, routed
// through the member's partitioned basket when it has one, so neither
// the stream basket nor the replicator and splitter transitions sit on
// the ingest path.
type fanoutSink struct{ sinks []Sink }

func (s fanoutSink) Append(rel *bat.Relation) (int, error) {
	n := 0
	var firstErr error
	for _, sub := range s.sinks {
		m, err := sub.Append(rel)
		if m > n {
			// Report the stream-level tuple count, not the sum over copies:
			// the receptor's Tuples counter means "stream tuples delivered",
			// matching the single-sink paths.
			n = m
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return n, firstErr
}

func (s fanoutSink) Occupancy() int {
	occ := 0
	for _, sub := range s.sinks {
		if n := sub.Occupancy(); n > occ {
			occ = n
		}
	}
	return occ
}

func (s fanoutSink) Describe() string {
	return fmt.Sprintf("route-at-ingest fan-out to %d member sinks", len(s.sinks))
}

// FanoutSink returns a sink replicating every batch into each member
// sink. Occupancy is the maximum across members, so backpressure
// engages when the slowest member lags.
func FanoutSink(sinks []Sink) Sink { return fanoutSink{sinks: sinks} }

// Target resolves the sink of every delivery. Acquire returns the current
// sink and a release function; the sink stays valid until release is
// called. Implementations guard sink swaps (engine rewires) behind this
// pair: a rewire blocks new acquisitions and waits out the held ones, so
// in-flight appends quiesce before baskets are drained and rewired.
type Target interface {
	Acquire() (Sink, func())
}

// SwitchTarget is the standard Target implementation: an RW-locked sink
// slot. Receptor deliveries hold the read side; Quiesce takes the write
// side, blocking until every in-flight delivery has released, and the
// returned resume function installs the next sink. The zero value is not
// usable; create with NewSwitchTarget.
type SwitchTarget struct {
	mu   sync.RWMutex
	sink Sink
}

// NewSwitchTarget returns a target initially delivering to sink.
func NewSwitchTarget(sink Sink) *SwitchTarget { return &SwitchTarget{sink: sink} }

// Acquire implements Target.
func (t *SwitchTarget) Acquire() (Sink, func()) {
	t.mu.RLock()
	return t.sink, t.mu.RUnlock
}

// Peek returns the current sink without guarding it (monitoring only).
func (t *SwitchTarget) Peek() Sink {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sink
}

// Quiesce blocks new deliveries and waits for in-flight ones to finish.
// The caller rewires its baskets, then calls the returned function with
// the sink of the new wiring (nil keeps the old one) to resume delivery.
func (t *SwitchTarget) Quiesce() func(next Sink) {
	t.mu.Lock()
	return func(next Sink) {
		if next != nil {
			t.sink = next
		}
		t.mu.Unlock()
	}
}

// Options tunes an ingest group.
type Options struct {
	// Shards is the number of listener shards (accept loops with their own
	// socket when the address allows it, on a shared socket otherwise).
	// 0 means 1.
	Shards int
	// BatchSize bounds how many decoded tuples accumulate before a
	// delivery into the sink while more input is already buffered on the
	// connection; the moment the sender pauses (nothing buffered), the
	// pending batch delivers regardless. 0 means 256.
	BatchSize int
	// HighWater is the sink occupancy (resident tuples) at which a
	// receptor stops reading its socket, letting TCP flow control push
	// back on the sender. 0 means 65536; negative disables backpressure.
	HighWater int
	// LowWater is the occupancy below which a stalled receptor resumes.
	// 0 means HighWater/2.
	LowWater int
	// WAL, when non-nil, logs every accepted batch before it is routed
	// into baskets. A log failure closes the connection (the sender sees
	// the break and retries) rather than delivering unlogged tuples.
	WAL BatchLog
	// IdleTimeout closes a connection whose client sends nothing for this
	// long, freeing the shard goroutine it would otherwise pin. 0 (the
	// default) disables the deadline.
	IdleTimeout time.Duration
}

func (o Options) shards() int {
	if o.Shards < 1 {
		return 1
	}
	return o.Shards
}

func (o Options) batchSize() int {
	if o.BatchSize < 1 {
		return 256
	}
	return o.BatchSize
}

func (o Options) highWater() int {
	switch {
	case o.HighWater < 0:
		return 0 // disabled
	case o.HighWater == 0:
		return 65536
	}
	return o.HighWater
}

func (o Options) lowWater() int {
	hw := o.highWater()
	if hw == 0 {
		return 0
	}
	if o.LowWater > 0 && o.LowWater < hw {
		return o.LowWater
	}
	return hw / 2
}

// Stats is one receptor shard's activity snapshot.
type Stats struct {
	Addr      string        // listen address of the shard
	Conns     int64         // connections accepted over the shard's lifetime
	Active    int64         // connections currently open
	TextConns int64         // connections that sniffed as textual
	Frames    int64         // binary frames decoded
	Tuples    int64         // tuples delivered into the sink
	Invalid   int64         // malformed lines / rejected frames
	TimedOut  int64         // connections closed by the idle read deadline
	WALErrors int64         // batches rejected because the WAL append failed
	Stalls    int64         // backpressure stalls
	StallTime time.Duration // total time spent stalled
	RouteTime time.Duration // total time spent routing batches into the sink
}

// Group is the sharded ingest periphery of one stream: Shards listener
// shards accepting connections whose tuple streams — binary frames or
// textual lines, sniffed per connection — are decoded independently and
// delivered through the group's Target. It replaces the single-socket,
// text-only stream.TCPReceptor for engine streams.
type Group struct {
	stream string
	names  []string
	types  []vector.Type
	target Target
	opts   Options

	shards []*shard

	mu      sync.Mutex
	conns   map[net.Conn]bool
	stopped bool
	wg      sync.WaitGroup
}

// shard is one accept loop with its own stats.
type shard struct {
	ln     net.Listener
	owns   bool // whether this shard closes ln (false for loops sharing a socket)
	addr   string
	conns  atomic.Int64
	active atomic.Int64
	text   atomic.Int64
	frames atomic.Int64
	tuples atomic.Int64
	inval  atomic.Int64
	tmout  atomic.Int64
	walErr atomic.Int64
	stalls atomic.Int64
	stallT atomic.Int64 // nanoseconds
	routeT atomic.Int64 // nanoseconds spent in sink.Append (route-at-ingest)
}

// Listen starts an ingest group for a stream with the given user schema
// on addr. With Shards > 1 and a wildcard port (":0"), every shard binds
// its own socket; with a fixed port the shards share the first socket as
// parallel accept loops. The group is accepting when Listen returns.
func Listen(streamName, addr string, names []string, types []vector.Type, target Target, opts Options) (*Group, error) {
	g := &Group{
		stream: streamName,
		names:  append([]string(nil), names...),
		types:  append([]vector.Type(nil), types...),
		target: target,
		opts:   opts,
		conns:  map[net.Conn]bool{},
	}
	first, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	g.shards = append(g.shards, &shard{ln: first, owns: true, addr: first.Addr().String()})
	for i := 1; i < opts.shards(); i++ {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			// Fixed port: fan out as parallel accept loops on the first
			// socket instead (the SO_REUSEPORT-style fallback).
			g.shards = append(g.shards, &shard{ln: first, owns: false, addr: first.Addr().String()})
			continue
		}
		g.shards = append(g.shards, &shard{ln: ln, owns: true, addr: ln.Addr().String()})
	}
	for _, s := range g.shards {
		g.wg.Add(1)
		go g.acceptLoop(s)
	}
	return g, nil
}

// Stream returns the stream name the group feeds.
func (g *Group) Stream() string { return g.stream }

// Addrs returns the bound listen address of every shard, in shard order
// (repeated when shards share a socket).
func (g *Group) Addrs() []string {
	out := make([]string, len(g.shards))
	for i, s := range g.shards {
		out[i] = s.addr
	}
	return out
}

// Stats snapshots every shard's counters, in shard order.
func (g *Group) Stats() []Stats {
	out := make([]Stats, len(g.shards))
	for i, s := range g.shards {
		out[i] = Stats{
			Addr:      s.addr,
			Conns:     s.conns.Load(),
			Active:    s.active.Load(),
			TextConns: s.text.Load(),
			Frames:    s.frames.Load(),
			Tuples:    s.tuples.Load(),
			Invalid:   s.inval.Load(),
			TimedOut:  s.tmout.Load(),
			WALErrors: s.walErr.Load(),
			Stalls:    s.stalls.Load(),
			StallTime: time.Duration(s.stallT.Load()),
			RouteTime: time.Duration(s.routeT.Load()),
		}
	}
	return out
}

// Close stops accepting, force-closes open connections (in-flight batches
// already decoded are still delivered) and waits for every decode loop to
// finish. Idempotent.
func (g *Group) Close() {
	g.mu.Lock()
	already := g.stopped
	g.stopped = true
	open := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		open = append(open, c)
	}
	g.mu.Unlock()
	if !already {
		for _, s := range g.shards {
			if s.owns {
				s.ln.Close()
			}
		}
		for _, c := range open {
			c.Close()
		}
	}
	g.wg.Wait()
}

func (g *Group) acceptLoop(s *shard) {
	defer g.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		g.mu.Lock()
		if g.stopped {
			g.mu.Unlock()
			conn.Close()
			return
		}
		g.conns[conn] = true
		g.wg.Add(1)
		g.mu.Unlock()
		s.conns.Add(1)
		s.active.Add(1)
		go func() {
			defer g.wg.Done()
			defer s.active.Add(-1)
			defer func() {
				g.mu.Lock()
				delete(g.conns, conn)
				g.mu.Unlock()
				conn.Close()
			}()
			g.serveConn(s, conn)
		}()
	}
}

// deadlineReader arms a fresh read deadline before every read, so a dead
// client that stops sending unblocks the decode loop instead of pinning a
// shard goroutine forever. hit records that the last read error was the
// idle deadline expiring (read by the same serve goroutine only).
type deadlineReader struct {
	conn net.Conn
	d    time.Duration
	hit  bool
}

func (r *deadlineReader) Read(p []byte) (int, error) {
	if r.d > 0 {
		r.conn.SetReadDeadline(time.Now().Add(r.d))
	}
	n, err := r.conn.Read(p)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			r.hit = true
		}
	}
	return n, err
}

// serveConn sniffs the protocol of one accepted connection and decodes it
// to completion.
func (g *Group) serveConn(s *shard, conn net.Conn) {
	dr := &deadlineReader{conn: conn, d: g.opts.IdleTimeout}
	br := bufio.NewReaderSize(dr, 64*1024)
	batch := bat.NewEmptyRelation(g.names, g.types)
	if SniffBinary(br) {
		g.serveBinary(s, dr, br, batch)
		return
	}
	if dr.hit {
		s.tmout.Add(1)
		return
	}
	s.text.Add(1)
	g.serveText(s, dr, br, batch)
}

// Delivery rule, both protocols: a batch ships when it reaches
// BatchSize — the accumulation bound while input keeps streaming — or
// the moment the connection has no more bytes already buffered, i.e.
// the sender paused. A frame boundary after a sender's Flush therefore
// delivers immediately instead of withholding decoded tuples until
// BatchSize accumulates; BatchSize only coalesces while more input is
// in flight.

func (g *Group) serveBinary(s *shard, dr *deadlineReader, br *bufio.Reader, batch *bat.Relation) {
	fr := NewFrameReader(br, g.types)
	for {
		_, err := fr.DecodeFrameInto(batch)
		if err == io.EOF {
			_ = g.deliver(s, batch)
			return
		}
		if err != nil {
			// A protocol error poisons the connection: frame boundaries are
			// lost, so deliver what decoded cleanly and drop the rest. An
			// idle-deadline expiry is the client's silence, not corruption.
			if dr.hit {
				s.tmout.Add(1)
			} else {
				s.inval.Add(1)
			}
			_ = g.deliver(s, batch)
			return
		}
		s.frames.Add(1)
		if batch.Len() >= g.opts.batchSize() || br.Buffered() == 0 {
			if g.deliver(s, batch) != nil {
				return
			}
		}
	}
}

func (g *Group) serveText(s *shard, dr *deadlineReader, br *bufio.Reader, batch *bat.Relation) {
	// A hand-rolled line loop instead of bufio.Scanner: the scanner
	// buffers internally, which would hide whether the sender paused —
	// the delivery signal above.
	var long []byte // spill buffer for lines longer than br's buffer
	for {
		chunk, err := br.ReadSlice('\n')
		switch err {
		case nil:
		case bufio.ErrBufferFull:
			// Accumulate the oversized line and keep reading it.
			long = append(long[:0], chunk...)
			for err == bufio.ErrBufferFull {
				chunk, err = br.ReadSlice('\n')
				long = append(long, chunk...)
			}
			if err != nil && err != io.EOF {
				if dr.hit {
					s.tmout.Add(1)
				}
				_ = g.deliver(s, batch)
				return
			}
			chunk = long
		case io.EOF:
			if len(chunk) == 0 {
				_ = g.deliver(s, batch)
				return
			}
		default:
			if dr.hit {
				s.tmout.Add(1)
			}
			_ = g.deliver(s, batch)
			return
		}
		line := strings.TrimRight(string(chunk), "\r\n")
		if line != "" {
			if derr := stream.DecodeRowInto(line, g.types, batch); derr != nil {
				s.inval.Add(1)
			}
		}
		if err == io.EOF {
			_ = g.deliver(s, batch)
			return
		}
		if batch.Len() >= g.opts.batchSize() || (batch.Len() > 0 && br.Buffered() == 0) {
			if g.deliver(s, batch) != nil {
				return
			}
		}
	}
}

// stallPoll is the backpressure polling interval. The receptor is not on
// the firing hot path — while stalled it is deliberately idle — so a
// fixed small sleep is the whole mechanism; TCP flow control upstream
// does the real pushing back.
const stallPoll = 200 * time.Microsecond

// deliver appends the batch through the group's target, honouring the
// backpressure watermarks: at or above high water the receptor stops
// reading its socket and polls until the factories drain the sink below
// low water. The batch is cleared after a successful append.
func (g *Group) deliver(s *shard, batch *bat.Relation) error {
	if batch.Len() == 0 {
		return nil
	}
	// Write-ahead tee: the batch is logged before anything is routed, so
	// recovery never has to invent tuples the kernel saw but the log
	// missed. A log failure drops the batch and closes the connection —
	// the sender's retry path owns redelivery.
	if g.opts.WAL != nil {
		if _, err := g.opts.WAL.LogBatch(batch); err != nil {
			s.walErr.Add(1)
			batch.Clear()
			return err
		}
	}
	// Crash-between-log-and-route faultpoint: the frame is durable but the
	// basket never sees it; recovery must replay it.
	if act, ferr := faultpoint.Check(FaultDeliver); act != faultpoint.None {
		if act != faultpoint.Err {
			faultpoint.CrashNow()
			ferr = fmt.Errorf("%w: crash at %s", faultpoint.ErrInjected, FaultDeliver)
		}
		batch.Clear()
		return ferr
	}
	hw, lw := g.opts.highWater(), g.opts.lowWater()
	for {
		sink, release := g.target.Acquire()
		if hw > 0 && sink.Occupancy() >= hw {
			release()
			if !g.stallUntilDrained(s, lw) {
				// Group closing: deliver anyway so decoded tuples are not
				// lost; the kernel keeps draining after the periphery stops.
				sink, release = g.target.Acquire()
				defer release()
				start := time.Now()
				n, err := sink.Append(batch)
				s.routeT.Add(int64(time.Since(start)))
				s.tuples.Add(int64(n))
				batch.Clear()
				return err
			}
			continue
		}
		// Route timing: one clock pair per frame (never per tuple) around
		// the sink append — the route stage of the latency breakdown.
		start := time.Now()
		n, err := sink.Append(batch)
		s.routeT.Add(int64(time.Since(start)))
		release()
		s.tuples.Add(int64(n))
		batch.Clear()
		return err
	}
}

// stallUntilDrained blocks until sink occupancy falls below lw, counting
// the stall. It returns false when the group is closing.
func (g *Group) stallUntilDrained(s *shard, lw int) bool {
	s.stalls.Add(1)
	start := time.Now()
	defer func() { s.stallT.Add(int64(time.Since(start))) }()
	for {
		time.Sleep(stallPoll)
		g.mu.Lock()
		stopped := g.stopped
		g.mu.Unlock()
		if stopped {
			return false
		}
		sink, release := g.target.Acquire()
		occ := sink.Occupancy()
		release()
		if occ < lw {
			return true
		}
	}
}
