package ingest

import (
	"math"
	"sync/atomic"
	"time"

	"datacell/internal/bat"
	"datacell/internal/stream"
	"datacell/internal/vector"
)

// Pacer schedules evenly spaced batch deadlines at a target tuple rate —
// the open-loop half of a workload driver. Deadlines advance with the
// clock whether or not the consumer keeps up: when a send blocks past its
// deadline the schedule does not stretch, the sender falls measurably
// behind, and the accumulated lag is the measurement (queue depth and
// stall time are observations in an open-loop harness, never throttles).
type Pacer struct {
	rate  float64 // tuples per second
	batch float64 // tuples per scheduled send
	now   func() time.Time

	base    time.Time // schedule origin (construction or last SetRate)
	n       int64     // batches scheduled since base
	offered float64   // tuples offered by completed schedule segments
	maxLag  time.Duration
}

// NewPacer returns a pacer offering rate tuples/second in batches of
// batch, using now as its clock (nil means time.Now).
func NewPacer(rate float64, batch int, now func() time.Time) *Pacer {
	if now == nil {
		now = time.Now
	}
	if batch < 1 {
		batch = 1
	}
	if rate <= 0 {
		rate = 1
	}
	return &Pacer{rate: rate, batch: float64(batch), now: now, base: now()}
}

// Next schedules the next batch: wait is how long the sender should sleep
// to hit the deadline (0 when it is already due), lag is how far past the
// deadline the clock already is (0 when on time). Exactly one of the two
// is non-zero for a sender that is keeping up or falling behind.
func (p *Pacer) Next() (wait, lag time.Duration) {
	deadline := p.base.Add(time.Duration(float64(p.n) * p.batch / p.rate * float64(time.Second)))
	p.n++
	t := p.now()
	if t.Before(deadline) {
		return deadline.Sub(t), 0
	}
	lag = t.Sub(deadline)
	if lag > p.maxLag {
		p.maxLag = lag
	}
	return 0, lag
}

// SetRate switches the offered rate, rebasing the schedule at the current
// instant (rate ramps re-anchor rather than replaying the past at the new
// rate). The tuples offered by the finished segment are folded into the
// offered total.
func (p *Pacer) SetRate(rate float64) {
	if rate <= 0 {
		rate = 1
	}
	t := p.now()
	p.offered += t.Sub(p.base).Seconds() * p.rate
	p.base, p.n, p.rate = t, 0, rate
}

// Rate returns the current offered rate in tuples/second.
func (p *Pacer) Rate() float64 { return p.rate }

// MaxLag returns the worst schedule slip observed.
func (p *Pacer) MaxLag() time.Duration { return p.maxLag }

// Offered returns how many tuples the schedule has called for so far —
// rate × elapsed across all segments, independent of what was actually
// sent. Offered minus sent is the open-loop backlog.
func (p *Pacer) Offered() int64 {
	return int64(p.offered + p.now().Sub(p.base).Seconds()*p.rate)
}

// PacedStats reports one PacedSender run.
type PacedStats struct {
	Tuples  int64 // tuples actually sent
	Batches int64 // frames written
	// Offered is what the schedule called for over the run; Offered-Tuples
	// is the backlog an overloaded engine forced the sender to accumulate.
	Offered int64
	// StallTime totals the time spent inside socket writes — on a healthy
	// connection microseconds per frame, so in practice it measures
	// receptor backpressure (watermark waits, accept stalls).
	StallTime time.Duration
	// MaxLag is the worst schedule slip: how far past its deadline the
	// most delayed batch started.
	MaxLag time.Duration
	// Reconnects counts mid-stream redials the record-aligned writer made.
	Reconnects int
	Elapsed    time.Duration
}

// PacedSender drives one binary-protocol connection at a target open-loop
// rate: batches are scheduled by a Pacer, framed by the wire encoder, and
// written through a record-aligned reconnecting writer (stream.Dialer
// backoff on dial and mid-stream failure). The rate can be changed while
// running (SetRate) for ramp phases.
type PacedSender struct {
	// Dialer locates the receptor shard and owns retry/backoff policy.
	Dialer *stream.Dialer
	// Names/Types give the stream's user schema (what BatchWriter expects).
	Names []string
	Types []vector.Type
	// Batch is tuples per frame (minimum 1).
	Batch int
	// Now and Sleep are swappable for simulated-time tests. Defaults:
	// time.Now, and a stop-aware timer sleep.
	Now   func() time.Time
	Sleep func(d time.Duration)

	rateBits atomic.Uint64 // float64 bits; shared with SetRate
}

// NewPacedSender returns a sender offering rate tuples/second to the
// dialer's address in frames of batch tuples.
func NewPacedSender(d *stream.Dialer, names []string, types []vector.Type, rate float64, batch int) *PacedSender {
	s := &PacedSender{Dialer: d, Names: names, Types: types, Batch: batch}
	s.SetRate(rate)
	return s
}

// SetRate changes the offered rate; a running Run picks it up before its
// next scheduled batch.
func (s *PacedSender) SetRate(rate float64) {
	s.rateBits.Store(floatBits(rate))
}

// Rate returns the currently offered rate.
func (s *PacedSender) Rate() float64 { return bitsFloat(s.rateBits.Load()) }

// Run sends until stop closes or a write fails terminally. fill must
// append n tuples to rel (whose columns match Names/Types); base is the
// index of the first tuple of the batch in this sender's sequence, so
// fills can generate deterministic, timestamped payloads. Returns the
// run's stats; on error the stats cover what was sent before it.
func (s *PacedSender) Run(stop <-chan struct{}, fill func(rel *bat.Relation, base int64, n int)) (PacedStats, error) {
	now := s.Now
	if now == nil {
		now = time.Now
	}
	batch := s.Batch
	if batch < 1 {
		batch = 1
	}
	var st PacedStats
	start := now()
	rw, err := stream.NewReconnWriter(s.Dialer)
	if err != nil {
		return st, err
	}
	defer rw.Close()
	fw := NewFrameWriter(rw)
	rel := bat.NewEmptyRelation(s.Names, s.Types)
	p := NewPacer(s.Rate(), batch, now)
	finish := func() PacedStats {
		st.Offered = p.Offered()
		st.MaxLag = p.MaxLag()
		st.Reconnects = rw.Reconnects
		st.Elapsed = now().Sub(start)
		return st
	}
	for {
		select {
		case <-stop:
			return finish(), nil
		default:
		}
		if r := s.Rate(); r != p.Rate() {
			p.SetRate(r)
		}
		wait, _ := p.Next()
		if wait > 0 && !s.sleep(wait, stop) {
			return finish(), nil
		}
		rel.Clear()
		fill(rel, st.Tuples, batch)
		t0 := now()
		werr := fw.WriteRelation(rel)
		st.StallTime += now().Sub(t0)
		if werr != nil {
			return finish(), werr
		}
		st.Tuples += int64(rel.Len())
		st.Batches++
	}
}

// sleep pauses for d, returning false when stop closed instead.
func (s *PacedSender) sleep(d time.Duration, stop <-chan struct{}) bool {
	if s.Sleep != nil {
		s.Sleep(d)
		select {
		case <-stop:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
