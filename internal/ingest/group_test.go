package ingest

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/vector"
)

var testSchema = struct {
	names []string
	types []vector.Type
}{
	names: []string{"k", "v"},
	types: []vector.Type{vector.Int, vector.Int},
}

func listenTest(t *testing.T, b *basket.Basket, opts Options) *Group {
	t.Helper()
	g, err := Listen("s", "127.0.0.1:0", testSchema.names, testSchema.types,
		NewSwitchTarget(BasketSink(b)), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// sendBinary ships n (k, v=k) tuples over one fresh binary connection.
func sendBinary(t *testing.T, addr string, lo, n, batch int) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := NewBatchWriter(conn, testSchema.names, testSchema.types, batch)
	for i := 0; i < n; i++ {
		k := int64(lo + i)
		if err := bw.WriteRow(vector.NewInt(k), vector.NewInt(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupShardedBinaryIngest(t *testing.T) {
	b := basket.New("s", testSchema.names, testSchema.types)
	g := listenTest(t, b, Options{Shards: 4, BatchSize: 32})
	addrs := g.Addrs()
	if len(addrs) != 4 {
		t.Fatalf("got %d shard addrs, want 4", len(addrs))
	}
	const perConn = 500
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			sendBinary(t, addr, i*perConn, perConn, 32)
		}(i, addr)
	}
	wg.Wait()
	waitFor(t, 5*time.Second, func() bool { return b.Len() == 4*perConn }, "all tuples ingested")

	total := Stats{}
	for _, st := range g.Stats() {
		total.Conns += st.Conns
		total.Frames += st.Frames
		total.Tuples += st.Tuples
		total.TextConns += st.TextConns
	}
	if total.Conns != 4 || total.TextConns != 0 {
		t.Fatalf("stats: %d conns (%d textual), want 4 binary", total.Conns, total.TextConns)
	}
	if total.Tuples != 4*perConn {
		t.Fatalf("stats: %d tuples delivered, want %d", total.Tuples, 4*perConn)
	}
	if total.Frames == 0 {
		t.Fatal("stats: no frames counted")
	}
}

func TestGroupTextualFallback(t *testing.T) {
	b := basket.New("s", testSchema.names, testSchema.types)
	g := listenTest(t, b, Options{BatchSize: 8})
	conn, err := net.Dial("tcp", g.Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(conn)
	for i := 0; i < 100; i++ {
		fmt.Fprintf(w, "%d|%d\n", i, i*2)
	}
	fmt.Fprintln(w, "not|a number") // structurally invalid: dropped, counted
	fmt.Fprintln(w, "1|2|3")        // arity mismatch: dropped, counted
	w.Flush()
	conn.Close()
	waitFor(t, 5*time.Second, func() bool { return b.Len() == 100 }, "textual tuples ingested")

	st := g.Stats()[0]
	if st.TextConns != 1 {
		t.Fatalf("textual connection not counted: %+v", st)
	}
	if st.Invalid != 2 {
		t.Fatalf("invalid lines = %d, want 2", st.Invalid)
	}
	if st.Tuples != 100 {
		t.Fatalf("tuples = %d, want 100", st.Tuples)
	}
}

// TestGroupMixedProtocolsOneSocket pins the sniffing contract: binary and
// textual senders coexist on the same listener.
func TestGroupMixedProtocolsOneSocket(t *testing.T) {
	b := basket.New("s", testSchema.names, testSchema.types)
	g := listenTest(t, b, Options{})
	addr := g.Addrs()[0]

	sendBinary(t, addr, 0, 50, 16)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(conn)
	for i := 0; i < 50; i++ {
		fmt.Fprintf(w, "%d|%d\n", 1000+i, i)
	}
	w.Flush()
	conn.Close()

	waitFor(t, 5*time.Second, func() bool { return b.Len() == 100 }, "mixed ingest")
}

func TestGroupRejectsPoisonedBinaryConn(t *testing.T) {
	b := basket.New("s", testSchema.names, testSchema.types)
	g := listenTest(t, b, Options{BatchSize: 4})
	conn, err := net.Dial("tcp", g.Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	// One good frame, then a corrupted one: the good tuples land, the
	// connection is dropped, the corruption is counted.
	rel := bat.NewEmptyRelation(testSchema.names, testSchema.types)
	rel.AppendRow(vector.NewInt(1), vector.NewInt(2))
	wire, err := AppendFrame(nil, rel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), wire...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return b.Len() == 1 && g.Stats()[0].Invalid == 1
	}, "good frame delivered, bad frame rejected")
	conn.Close()
}

// TestGroupBackpressureBoundsOccupancy is the package-level backpressure
// contract: with no consumer draining the sink, the receptor stalls at
// the high-water mark and basket occupancy stays bounded; once a consumer
// drains, every tuple arrives — none were lost to the stall.
func TestGroupBackpressureBoundsOccupancy(t *testing.T) {
	b := basket.New("s", testSchema.names, testSchema.types)
	const hw, batch, total = 100, 10, 3000
	g := listenTest(t, b, Options{BatchSize: batch, HighWater: hw, LowWater: 50})

	done := make(chan struct{})
	go func() {
		defer close(done)
		sendBinary(t, g.Addrs()[0], 0, total, batch)
	}()

	// While nothing drains, occupancy must cap at hw plus at most one
	// in-flight batch (the check happens before each delivery).
	maxSeen := 0
	waitFor(t, 10*time.Second, func() bool {
		if n := b.Len(); n > maxSeen {
			maxSeen = n
		}
		return g.Stats()[0].Stalls > 0
	}, "receptor to stall")
	for i := 0; i < 50; i++ {
		time.Sleep(time.Millisecond)
		if n := b.Len(); n > maxSeen {
			maxSeen = n
		}
	}
	if maxSeen > hw+batch {
		t.Fatalf("occupancy reached %d, want <= high water %d + batch %d", maxSeen, hw, batch)
	}

	// Drain: consume everything; the stalled receptor resumes and the full
	// stream arrives.
	got := 0
	waitFor(t, 30*time.Second, func() bool {
		got += b.TakeAll().Len()
		return got == total
	}, "drained stream to deliver every tuple")
	<-done

	st := g.Stats()[0]
	if st.Stalls == 0 || st.StallTime == 0 {
		t.Fatalf("stall accounting missing: %+v", st)
	}
	if st.Tuples != total {
		t.Fatalf("delivered %d tuples, want %d", st.Tuples, total)
	}
}

// TestGroupDeliversOnSenderPause is the regression test for the
// batch-withholding bug: a sender that flushes a small frame (or a few
// text lines) and keeps its connection open must see its tuples
// delivered immediately — BatchSize only coalesces while more input is
// in flight, it is not a minimum.
func TestGroupDeliversOnSenderPause(t *testing.T) {
	b := basket.New("s", testSchema.names, testSchema.types)
	g := listenTest(t, b, Options{}) // default BatchSize 256

	// Binary: one 3-tuple frame, connection stays open.
	bc, err := net.Dial("tcp", g.Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	bw := NewBatchWriter(bc, testSchema.names, testSchema.types, 100)
	for i := int64(0); i < 3; i++ {
		if err := bw.WriteRow(vector.NewInt(i), vector.NewInt(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return b.Len() == 3 }, "flushed frame to deliver while conn open")

	// Textual: two lines, connection stays open.
	tc, err := net.Dial("tcp", g.Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	if _, err := fmt.Fprintf(tc, "10|10\n11|11\n"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return b.Len() == 5 }, "text lines to deliver while conn open")
}

// TestGroupSharedSocketFallback pins the fixed-port path: shards that
// cannot bind their own socket become accept loops on the first one.
func TestGroupSharedSocketFallback(t *testing.T) {
	// Grab a concrete free port first.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	b := basket.New("s", testSchema.names, testSchema.types)
	g, err := Listen("s", addr, testSchema.names, testSchema.types,
		NewSwitchTarget(BasketSink(b)), Options{Shards: 3})
	if err != nil {
		t.Skipf("port %s raced away: %v", addr, err)
	}
	defer g.Close()
	addrs := g.Addrs()
	if len(addrs) != 3 {
		t.Fatalf("got %d shards, want 3", len(addrs))
	}
	for _, a := range addrs[1:] {
		if a != addrs[0] {
			t.Fatalf("fixed-port shards should share the socket: %v", addrs)
		}
	}
	sendBinary(t, addrs[0], 0, 200, 64)
	waitFor(t, 5*time.Second, func() bool { return b.Len() == 200 }, "ingest over shared socket")
}

func TestSwitchTargetQuiesceSwapsSink(t *testing.T) {
	b1 := basket.New("a", testSchema.names, testSchema.types)
	b2 := basket.New("b", testSchema.names, testSchema.types)
	tgt := NewSwitchTarget(BasketSink(b1))
	g, err := Listen("s", "127.0.0.1:0", testSchema.names, testSchema.types, tgt, Options{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	sendBinary(t, g.Addrs()[0], 0, 10, 1)
	waitFor(t, 5*time.Second, func() bool { return b1.Len() == 10 }, "first sink fed")

	resume := tgt.Quiesce()
	resume(BasketSink(b2))

	sendBinary(t, g.Addrs()[0], 10, 10, 1)
	waitFor(t, 5*time.Second, func() bool { return b2.Len() == 10 }, "second sink fed")
	if b1.Len() != 10 {
		t.Fatalf("first sink grew to %d after the swap", b1.Len())
	}
}
