// Package ingest is the DataCell's sharded ingest periphery: a binary
// batch wire protocol for stream tuples and receptor groups that accept
// many connections over many listener sockets, decode independently,
// route decoded batches straight to their destination partition baskets
// and push back on the socket when the kernel falls behind.
//
// The paper's Figure 4 shows the receptor-to-kernel communication
// pipeline dominating end-to-end cost long before the kernel saturates;
// this package attacks both halves of that cost: the textual
// tuple-at-a-time protocol is replaced by length-prefixed columnar frames
// (decoded with the kernel's zero-alloc buffer discipline), and the
// single receptor thread is replaced by a shard group whose members feed
// partition baskets concurrently. The textual format remains a
// first-class citizen: the first bytes of every connection are sniffed,
// so legacy sensors keep working against the same socket.
package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"datacell/internal/bat"
	"datacell/internal/vector"
)

// Frame layout (all integers little-endian):
//
//	offset 0   magic  0xD7 0xC3   (outside the textual format's alphabet)
//	offset 2   version            (currently 1)
//	offset 3   ncols              (user columns, uint8)
//	offset 4   payload length     (uint32, bytes of the columnar payload)
//	offset 8   payload CRC-32     (uint32, IEEE, over the payload bytes)
//	offset 12  payload:
//	           ncols column type bytes (vector.Type)
//	           tuple count (uint32)
//	           per column, in schema order, the column's values:
//	             int/timestamp  8-byte two's complement per value
//	             float          8-byte IEEE 754 bits per value
//	             bool           1 byte per value (0 or 1)
//	             string         uint32 byte length + UTF-8 bytes per value
//
// The header carries enough to skip a frame without decoding it; the
// payload carries enough to validate it against the stream schema.
const (
	magic0       = 0xD7
	magic1       = 0xC3
	wireVersion  = 1
	headerSize   = 12
	maxPayload   = 1 << 26 // 64 MiB; anything larger is a corrupt length
	maxWireCols  = 255
	maxStringLen = 1 << 24 // 16 MiB per string value
)

// Wire protocol errors. Decoders wrap them with position detail; use
// errors.Is to classify.
var (
	ErrBadMagic   = errors.New("ingest: bad frame magic")
	ErrBadVersion = errors.New("ingest: unsupported wire version")
	ErrBadCRC     = errors.New("ingest: frame CRC mismatch")
	ErrTruncated  = errors.New("ingest: truncated frame")
	ErrSchema     = errors.New("ingest: frame schema mismatch")
)

// AppendFrame encodes rel (user columns only, schema order) as one binary
// frame appended to buf, returning the extended buffer. It allocates only
// when buf lacks capacity, so a reused buffer makes steady-state encoding
// allocation-free.
func AppendFrame(buf []byte, rel *bat.Relation) ([]byte, error) {
	ncols := rel.NumCols()
	if ncols == 0 || ncols > maxWireCols {
		return buf, fmt.Errorf("ingest: cannot encode %d columns", ncols)
	}
	n := rel.Len()
	head := len(buf)
	buf = append(buf, magic0, magic1, wireVersion, byte(ncols))
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // payload length + CRC, patched below
	payloadStart := len(buf)
	for i := 0; i < ncols; i++ {
		buf = append(buf, byte(rel.Col(i).Kind()))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for i := 0; i < ncols; i++ {
		col := rel.Col(i)
		switch col.Kind() {
		case vector.Int, vector.Timestamp:
			for _, v := range col.Ints()[:n] {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
			}
		case vector.Float:
			for _, f := range col.Floats()[:n] {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
			}
		case vector.Bool:
			for _, b := range col.Bools()[:n] {
				if b {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
				}
			}
		case vector.Str:
			for _, s := range col.Strs()[:n] {
				if len(s) > maxStringLen {
					return buf[:head], fmt.Errorf("ingest: string value of %d bytes exceeds wire limit", len(s))
				}
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
				buf = append(buf, s...)
			}
		default:
			return buf[:head], fmt.Errorf("ingest: cannot encode column type %v", col.Kind())
		}
	}
	payload := buf[payloadStart:]
	if len(payload) > maxPayload {
		return buf[:head], fmt.Errorf("ingest: frame payload of %d bytes exceeds wire limit", len(payload))
	}
	binary.LittleEndian.PutUint32(buf[head+4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[head+8:], crc32.ChecksumIEEE(payload))
	return buf, nil
}

// FrameWriter encodes relations as binary frames onto an io.Writer,
// reusing one encode buffer across frames.
type FrameWriter struct {
	w   io.Writer
	buf []byte
}

// NewFrameWriter returns a frame writer on w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// WriteRelation encodes rel as one frame and writes it.
func (fw *FrameWriter) WriteRelation(rel *bat.Relation) error {
	buf, err := AppendFrame(fw.buf[:0], rel)
	if err != nil {
		return err
	}
	fw.buf = buf
	_, err = fw.w.Write(buf)
	return err
}

// BatchWriter accumulates rows of a fixed schema and flushes them as
// binary frames of up to batch tuples: the sensor-side producer of the
// wire protocol (lrgen replay, examples, benchmarks).
type BatchWriter struct {
	fw    *FrameWriter
	rel   *bat.Relation
	types []vector.Type
	batch int
}

// NewBatchWriter returns a batch writer of the given schema flushing
// frames of `batch` tuples (minimum 1) to w.
func NewBatchWriter(w io.Writer, names []string, types []vector.Type, batch int) *BatchWriter {
	if batch < 1 {
		batch = 1
	}
	return &BatchWriter{
		fw:    NewFrameWriter(w),
		rel:   bat.NewEmptyRelation(names, types),
		types: append([]vector.Type(nil), types...),
		batch: batch,
	}
}

// WriteRow appends one tuple; a full batch is flushed as a frame.
func (bw *BatchWriter) WriteRow(vals ...vector.Value) error {
	if len(vals) != len(bw.types) {
		return fmt.Errorf("ingest: row has %d values, want %d", len(vals), len(bw.types))
	}
	bw.rel.AppendRow(vals...)
	if bw.rel.Len() >= bw.batch {
		return bw.Flush()
	}
	return nil
}

// WriteRelation appends the tuples of rel, flushing full batches.
func (bw *BatchWriter) WriteRelation(rel *bat.Relation) error {
	for i := 0; i < rel.Len(); i++ {
		for c := 0; c < bw.rel.NumCols(); c++ {
			bw.rel.Col(c).Append(rel.Col(c).Get(i))
		}
		if bw.rel.Len() >= bw.batch {
			if err := bw.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush writes the pending tuples (if any) as one frame.
func (bw *BatchWriter) Flush() error {
	if bw.rel.Len() == 0 {
		return nil
	}
	err := bw.fw.WriteRelation(bw.rel)
	bw.rel.Clear()
	return err
}

// FrameReader decodes binary frames from a connection, validating every
// frame against the expected stream schema. The payload buffer is reused
// across frames, so steady-state decoding allocates only for string
// values (which must outlive the buffer).
type FrameReader struct {
	r     *bufio.Reader
	types []vector.Type
	head  [headerSize]byte
	buf   []byte
	offs  []int
}

// NewFrameReader returns a frame reader expecting the given user-column
// types.
func NewFrameReader(r *bufio.Reader, types []vector.Type) *FrameReader {
	return &FrameReader{r: r, types: append([]vector.Type(nil), types...)}
}

// DecodeFrameInto reads and validates one frame, appending its tuples to
// the columns of rel (whose schema must match the reader's types) —
// the binary sibling of stream.DecodeRowInto. It returns the number of
// tuples appended. A frame is validated in full (magic, version, schema,
// CRC, exact payload consumption) before anything is appended, so a bad
// frame leaves rel untouched. io.EOF is returned only at a clean frame
// boundary; a partial frame yields ErrTruncated.
func (fr *FrameReader) DecodeFrameInto(rel *bat.Relation) (int, error) {
	if _, err := io.ReadFull(fr.r, fr.head[:]); err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if fr.head[0] != magic0 || fr.head[1] != magic1 {
		return 0, fmt.Errorf("%w: 0x%02x%02x", ErrBadMagic, fr.head[0], fr.head[1])
	}
	if fr.head[2] != wireVersion {
		return 0, fmt.Errorf("%w: %d", ErrBadVersion, fr.head[2])
	}
	ncols := int(fr.head[3])
	if ncols != len(fr.types) {
		return 0, fmt.Errorf("%w: frame has %d columns, stream has %d", ErrSchema, ncols, len(fr.types))
	}
	plen := int(binary.LittleEndian.Uint32(fr.head[4:]))
	wantCRC := binary.LittleEndian.Uint32(fr.head[8:])
	if plen < ncols+4 || plen > maxPayload {
		return 0, fmt.Errorf("%w: payload length %d", ErrTruncated, plen)
	}
	if cap(fr.buf) < plen {
		fr.buf = make([]byte, plen)
	}
	payload := fr.buf[:plen]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return 0, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return 0, fmt.Errorf("%w: got 0x%08x, want 0x%08x", ErrBadCRC, got, wantCRC)
	}
	for i := 0; i < ncols; i++ {
		if vector.Type(payload[i]) != fr.types[i] {
			return 0, fmt.Errorf("%w: column %d is %v on the wire, %v in the stream",
				ErrSchema, i, vector.Type(payload[i]), fr.types[i])
		}
	}
	n := int(binary.LittleEndian.Uint32(payload[ncols:]))
	body := payload[ncols+4:]
	// Validate the whole payload before appending anything: column extents
	// are computed first, so a short or oversized body rejects cleanly.
	fr.offs = append(fr.offs[:0], 0)
	at := 0
	for i := 0; i < ncols; i++ {
		size, err := columnExtent(fr.types[i], body[at:], n)
		if err != nil {
			return 0, fmt.Errorf("column %d: %w", i, err)
		}
		at += size
		fr.offs = append(fr.offs, at)
	}
	if at != len(body) {
		return 0, fmt.Errorf("%w: %d trailing payload bytes", ErrSchema, len(body)-at)
	}
	for i := 0; i < ncols; i++ {
		decodeColumn(rel.Col(i), fr.types[i], body[fr.offs[i]:fr.offs[i+1]], n)
	}
	return n, nil
}

// columnExtent returns the byte size of one encoded column of n values,
// validating variable-length entries.
func columnExtent(t vector.Type, b []byte, n int) (int, error) {
	switch t {
	case vector.Int, vector.Timestamp, vector.Float:
		if len(b) < 8*n {
			return 0, fmt.Errorf("%w: fixed-width column", ErrTruncated)
		}
		return 8 * n, nil
	case vector.Bool:
		if len(b) < n {
			return 0, fmt.Errorf("%w: bool column", ErrTruncated)
		}
		return n, nil
	case vector.Str:
		at := 0
		for i := 0; i < n; i++ {
			if len(b)-at < 4 {
				return 0, fmt.Errorf("%w: string length", ErrTruncated)
			}
			l := int(binary.LittleEndian.Uint32(b[at:]))
			if l > maxStringLen {
				return 0, fmt.Errorf("%w: string of %d bytes", ErrSchema, l)
			}
			at += 4
			if len(b)-at < l {
				return 0, fmt.Errorf("%w: string body", ErrTruncated)
			}
			at += l
		}
		return at, nil
	}
	return 0, fmt.Errorf("%w: undecodable column type %v", ErrSchema, t)
}

// decodeColumn appends n values of a validated encoded column to v with
// typed appends — no boxing.
func decodeColumn(v *vector.Vector, t vector.Type, b []byte, n int) {
	switch t {
	case vector.Int, vector.Timestamp:
		for i := 0; i < n; i++ {
			v.AppendInt(int64(binary.LittleEndian.Uint64(b[8*i:])))
		}
	case vector.Float:
		for i := 0; i < n; i++ {
			v.AppendFloat(math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:])))
		}
	case vector.Bool:
		for i := 0; i < n; i++ {
			v.AppendBool(b[i] != 0)
		}
	case vector.Str:
		at := 0
		for i := 0; i < n; i++ {
			l := int(binary.LittleEndian.Uint32(b[at:]))
			at += 4
			v.AppendStr(string(b[at : at+l]))
			at += l
		}
	}
}

// WireHeaderSize is the byte size of a binary frame header: enough to
// learn a frame's total extent without touching its payload.
const WireHeaderSize = headerSize

// FrameSize validates the magic, version and payload-length bounds of the
// frame whose first WireHeaderSize bytes are head, and returns the frame's
// total byte size (header + payload). It lets a log or relay carve whole
// frames out of a byte stream without decoding them.
func FrameSize(head []byte) (int, error) {
	if len(head) < headerSize {
		return 0, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(head))
	}
	if head[0] != magic0 || head[1] != magic1 {
		return 0, fmt.Errorf("%w: 0x%02x%02x", ErrBadMagic, head[0], head[1])
	}
	if head[2] != wireVersion {
		return 0, fmt.Errorf("%w: %d", ErrBadVersion, head[2])
	}
	ncols := int(head[3])
	plen := int(binary.LittleEndian.Uint32(head[4:]))
	if plen < ncols+4 || plen > maxPayload {
		return 0, fmt.Errorf("%w: payload length %d", ErrTruncated, plen)
	}
	return headerSize + plen, nil
}

// VerifyFrame checks that frame holds exactly one structurally-valid frame
// whose payload matches its header CRC, without decoding any values. It is
// the integrity check WAL recovery runs over every logged record.
func VerifyFrame(frame []byte) error {
	size, err := FrameSize(frame)
	if err != nil {
		return err
	}
	if len(frame) != size {
		return fmt.Errorf("%w: %d bytes for a %d-byte frame", ErrTruncated, len(frame), size)
	}
	payload := frame[headerSize:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(frame[8:]); got != want {
		return fmt.Errorf("%w: got 0x%08x, want 0x%08x", ErrBadCRC, got, want)
	}
	return nil
}

// SniffBinary reports whether the connection speaks the binary frame
// protocol, by peeking at its first two bytes without consuming them. The
// magic bytes are outside the textual format's alphabet (tuples are
// UTF-8 lines), so a textual sensor can never be mistaken for a binary
// one. An empty connection (EOF before two bytes) sniffs as textual.
func SniffBinary(br *bufio.Reader) bool {
	b, err := br.Peek(2)
	if err != nil || len(b) < 2 {
		return false
	}
	return b[0] == magic0 && b[1] == magic1
}
