package ingest

import (
	"io"
	"net"
	"testing"
	"time"

	"datacell/internal/bat"
	"datacell/internal/stream"
	"datacell/internal/vector"
)

// fakeClock is a manually advanced clock for deterministic pacing tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) sleep(d time.Duration)   { c.t = c.t.Add(d) }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// fakeConn swallows writes, optionally charging simulated time per write.
type fakeConn struct{ onWrite func(n int) }

func (c *fakeConn) Write(p []byte) (int, error) {
	if c.onWrite != nil {
		c.onWrite(len(p))
	}
	return len(p), nil
}
func (c *fakeConn) Read([]byte) (int, error)           { return 0, io.EOF }
func (c *fakeConn) Close() error                       { return nil }
func (c *fakeConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *fakeConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *fakeConn) SetDeadline(time.Time) error        { return nil }
func (c *fakeConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *fakeConn) SetWriteDeadline(t time.Time) error { return nil }

var pacedSchema = struct {
	names []string
	types []vector.Type
}{[]string{"k", "v"}, []vector.Type{vector.Int, vector.Int}}

func fillSeq(rel *bat.Relation, base int64, n int) {
	for i := 0; i < n; i++ {
		rel.AppendRow(vector.NewInt(base+int64(i)), vector.NewInt(1))
	}
}

func newTestSender(clk *fakeClock, conn net.Conn, rate float64, batch int) (*PacedSender, chan struct{}) {
	d := &stream.Dialer{
		Addr:  "fake",
		Dial:  func(string) (net.Conn, error) { return conn, nil },
		Sleep: clk.sleep,
	}
	s := NewPacedSender(d, pacedSchema.names, pacedSchema.types, rate, batch)
	s.Now = clk.now
	s.Sleep = clk.sleep
	return s, make(chan struct{})
}

func TestPacerKeepsSchedule(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	p := NewPacer(1000, 10, clk.now)
	// First batch is due immediately; each further one 10ms later.
	if wait, lag := p.Next(); wait != 0 || lag != 0 {
		t.Fatalf("first batch: wait=%v lag=%v", wait, lag)
	}
	if wait, _ := p.Next(); wait != 10*time.Millisecond {
		t.Fatalf("second batch wait = %v, want 10ms", wait)
	}
	// A sender that slept to the deadline is on time, not lagging.
	clk.advance(10 * time.Millisecond)
	if wait, lag := p.Next(); wait != 10*time.Millisecond || lag != 0 {
		t.Fatalf("third batch: wait=%v lag=%v", wait, lag)
	}
	// Falling 35ms behind shows up as lag, and the schedule does not
	// stretch: the next deadline is still on the original grid.
	clk.advance(45 * time.Millisecond)
	if _, lag := p.Next(); lag != 25*time.Millisecond {
		t.Fatalf("lag = %v, want 25ms", lag)
	}
	if p.MaxLag() != 25*time.Millisecond {
		t.Fatalf("maxLag = %v", p.MaxLag())
	}
}

func TestPacerSetRateRebases(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	p := NewPacer(1000, 10, clk.now)
	clk.advance(1 * time.Second)
	if got := p.Offered(); got != 1000 {
		t.Fatalf("offered after 1s@1000 = %d", got)
	}
	p.SetRate(4000)
	clk.advance(500 * time.Millisecond)
	if got := p.Offered(); got != 3000 {
		t.Fatalf("offered after +0.5s@4000 = %d, want 3000", got)
	}
	// Rebasing means the first post-ramp batch is due now, not backfilled
	// at the new rate over the old segment.
	if wait, lag := p.Next(); wait != 0 || lag != 500*time.Millisecond {
		t.Fatalf("post-ramp first batch: wait=%v lag=%v", wait, lag)
	}
}

func TestPacedSenderOpenLoop(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	s, stop := newTestSender(clk, &fakeConn{}, 1000, 10)
	closed := false
	st, err := s.Run(stop, func(rel *bat.Relation, base int64, n int) {
		if base >= 1000 && !closed {
			closed = true
			close(stop)
		}
		fillSeq(rel, base, n)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tuples < 1000 || st.Tuples > 1020 {
		t.Fatalf("tuples = %d", st.Tuples)
	}
	if st.Batches != st.Tuples/10 {
		t.Fatalf("batches = %d for %d tuples", st.Batches, st.Tuples)
	}
	// A healthy sender keeps the schedule: no lag, instant (fake) writes.
	if st.MaxLag != 0 || st.StallTime != 0 {
		t.Fatalf("maxLag=%v stall=%v, want 0", st.MaxLag, st.StallTime)
	}
	// Offered tracks the schedule, so it matches what was sent ±1 batch.
	if d := st.Offered - st.Tuples; d < -10 || d > 10 {
		t.Fatalf("offered %d vs sent %d", st.Offered, st.Tuples)
	}
}

func TestPacedSenderMeasuresStall(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	// Every write blocks 25ms of simulated time against a 10ms batch
	// interval: the sender cannot keep up, and open-loop semantics demand
	// that show up as lag + stall, with Offered pulling ahead of Tuples.
	conn := &fakeConn{onWrite: func(int) { clk.advance(25 * time.Millisecond) }}
	s, stop := newTestSender(clk, conn, 1000, 10)
	closed := false
	st, err := s.Run(stop, func(rel *bat.Relation, base int64, n int) {
		if base >= 500 && !closed {
			closed = true
			close(stop)
		}
		fillSeq(rel, base, n)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxLag == 0 {
		t.Fatal("expected schedule lag under a stalling connection")
	}
	if st.StallTime < 500*time.Millisecond {
		t.Fatalf("stallTime = %v, want ≥ 500ms for %d writes", st.StallTime, st.Batches)
	}
	if st.Offered <= st.Tuples {
		t.Fatalf("offered %d should exceed sent %d when stalled", st.Offered, st.Tuples)
	}
}

func TestPacedSenderLiveRateChange(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	s, stop := newTestSender(clk, &fakeConn{}, 100, 10)
	swapped, closed := false, false
	st, err := s.Run(stop, func(rel *bat.Relation, base int64, n int) {
		if base >= 100 && !swapped {
			swapped = true
			s.SetRate(10000)
		}
		if base >= 2100 && !closed {
			closed = true
			close(stop)
		}
		fillSeq(rel, base, n)
	})
	if err != nil {
		t.Fatal(err)
	}
	// 100 tuples at 100/s is 1s; 2000 more at 10000/s is 0.2s. A sender
	// still pacing at the old rate would need 21s.
	if st.Elapsed > 2*time.Second {
		t.Fatalf("elapsed = %v, rate change not applied", st.Elapsed)
	}
	if st.Tuples < 2100 {
		t.Fatalf("tuples = %d", st.Tuples)
	}
}
