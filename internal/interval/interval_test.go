package interval

import (
	"testing"

	"datacell/internal/vector"
)

func iv(lo, hi int64) Interval {
	return Interval{Lo: Closed(vector.NewInt(lo)), Hi: Open(vector.NewInt(hi))}
}

func TestNewSetNormalizes(t *testing.T) {
	s := NewSet(iv(10, 20), iv(0, 5), iv(15, 30), iv(5, 7))
	if got := s.String(); got != "[0,7) u [10,30)" {
		t.Fatalf("normalized set = %s", got)
	}
	// Empty intervals are dropped.
	s = NewSet(Interval{Lo: Closed(vector.NewInt(5)), Hi: Open(vector.NewInt(5))})
	if !s.Empty() {
		t.Fatalf("[5,5) should be empty, got %s", s)
	}
	// Touching with a closed side merges; double-open touching does not.
	s = NewSet(iv(0, 5), Interval{Lo: Closed(vector.NewInt(5)), Hi: Closed(vector.NewInt(9))})
	if got := s.String(); got != "[0,9]" {
		t.Fatalf("touching merge = %s", got)
	}
	s = NewSet(
		Interval{Lo: Closed(vector.NewInt(0)), Hi: Open(vector.NewInt(5))},
		Interval{Lo: Open(vector.NewInt(5)), Hi: Closed(vector.NewInt(9))})
	if got := len(s.Intervals()); got != 2 {
		t.Fatalf("double-open touch merged: %s", s)
	}
}

func TestContains(t *testing.T) {
	s := NewSet(iv(0, 10), Point(vector.NewInt(42)),
		Interval{Lo: Open(vector.NewInt(100)), Hi: Unbounded()})
	cases := []struct {
		v    int64
		want bool
	}{
		{-1, false}, {0, true}, {9, true}, {10, false},
		{41, false}, {42, true}, {43, false},
		{100, false}, {101, true}, {1 << 40, true},
	}
	for _, c := range cases {
		if got := s.Contains(vector.NewInt(c.v)); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v in %s", c.v, got, c.want, s)
		}
	}
	if (Set{}).Contains(vector.NewInt(0)) {
		t.Error("empty set contains 0")
	}
	// Exactness across numeric kinds: a float probe against int bounds.
	if !s.Contains(vector.NewFloat(9.5)) || s.Contains(vector.NewFloat(10.0)) {
		t.Error("float probes against int bounds mis-resolved")
	}
}

func TestUnionIntersect(t *testing.T) {
	a := NewSet(iv(0, 10), iv(20, 30))
	b := NewSet(iv(5, 25), iv(40, 50))
	if got := a.Union(b).String(); got != "[0,30) u [40,50)" {
		t.Fatalf("union = %s", got)
	}
	if got := a.Intersect(b).String(); got != "[5,10) u [20,25)" {
		t.Fatalf("intersect = %s", got)
	}
	if got := a.Intersect(NewSet(iv(100, 200))); !got.Empty() {
		t.Fatalf("disjoint intersect = %s", got)
	}
	// Unbounded pieces.
	lt := NewSet(Interval{Lo: Unbounded(), Hi: Open(vector.NewInt(10))})
	ge := NewSet(Interval{Lo: Closed(vector.NewInt(0)), Hi: Unbounded()})
	if got := lt.Intersect(ge).String(); got != "[0,10)" {
		t.Fatalf("(-inf,10) ∩ [0,+inf) = %s", got)
	}
	if !lt.Union(ge).All() {
		t.Fatalf("(-inf,10) ∪ [0,+inf) should be everything, got %s", lt.Union(ge))
	}
}

func TestBoundedMeasureCuts(t *testing.T) {
	s := NewSet(iv(0, 10), iv(20, 30))
	if !s.Bounded() {
		t.Fatal("finite set reported unbounded")
	}
	if m, ok := s.Measure(); !ok || m != 20 {
		t.Fatalf("measure = %g, %v; want 20, true", m, ok)
	}
	cuts, ok := s.Cuts(4)
	if !ok || len(cuts) != 3 {
		t.Fatalf("cuts = %v, %v", cuts, ok)
	}
	// Equal measure slices: 0-5, 5-10, 20-25, 25-30.
	want := []float64{5, 10, 25}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("cuts = %v, want %v", cuts, want)
		}
	}
	// Point sets have zero measure: no cuts, hash placement instead.
	if _, ok := NewSet(Point(vector.NewInt(3)), Point(vector.NewInt(9))).Cuts(2); ok {
		t.Fatal("point set produced cuts")
	}
	// Unbounded sets cannot be sliced.
	if _, ok := NewSet(Interval{Lo: Unbounded(), Hi: Closed(vector.NewInt(5))}).Cuts(2); ok {
		t.Fatal("unbounded set produced cuts")
	}
	// String sets have no numeric measure.
	strSet := NewSet(Interval{Lo: Closed(vector.NewStr("a")), Hi: Closed(vector.NewStr("m"))})
	if _, ok := strSet.Measure(); ok {
		t.Fatal("string set reported a numeric measure")
	}
}

func TestAllAndStrings(t *testing.T) {
	all := NewSet(Interval{Lo: Unbounded(), Hi: Unbounded()})
	if !all.All() || !all.Contains(vector.NewInt(123)) {
		t.Fatalf("unbounded-both set should be All: %s", all)
	}
	s := NewSet(Interval{Lo: Closed(vector.NewStr("b")), Hi: Open(vector.NewStr("d"))})
	if !s.Contains(vector.NewStr("b")) || !s.Contains(vector.NewStr("cz")) ||
		s.Contains(vector.NewStr("d")) || s.Contains(vector.NewStr("a")) {
		t.Fatalf("string range membership wrong: %s", s)
	}
}
