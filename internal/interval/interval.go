// Package interval implements one-dimensional interval sets over scalar
// values, the value-domain algebra behind predicate/range-aware partition
// routing: the planner derives, for a sargable predicate, the set of
// column values a matching tuple can possibly carry, and the partitioned
// basket routes tuples whose value falls outside that set to a catch-all
// partition that no query clone ever scans.
//
// A Set is a union of disjoint intervals in ascending order. Bounds carry
// open/closed flags and may be unbounded, so every sargable SQL shape
// (col op constant, BETWEEN, IN-lists, OR-unions of ranges) maps onto a
// Set without loss. Membership tests are exact (vector.Value comparison);
// only the equal-measure cut points used for partition placement go
// through float64, which is safe because placement affects load balance,
// never correctness.
package interval

import (
	"sort"
	"strings"

	"datacell/internal/vector"
)

// Bound is one end of an interval.
type Bound struct {
	// Unbounded marks an infinite end (-inf for a low bound, +inf for a
	// high bound); Val and Open are ignored.
	Unbounded bool
	Val       vector.Value
	// Open excludes the bound value itself (strict comparison).
	Open bool
}

// Closed returns a finite inclusive bound.
func Closed(v vector.Value) Bound { return Bound{Val: v} }

// Open returns a finite exclusive bound.
func Open(v vector.Value) Bound { return Bound{Val: v, Open: true} }

// Unbounded returns an infinite bound.
func Unbounded() Bound { return Bound{Unbounded: true} }

// Interval is one contiguous run of values.
type Interval struct {
	Lo, Hi Bound
}

// Point returns the degenerate interval holding exactly v.
func Point(v vector.Value) Interval {
	return Interval{Lo: Closed(v), Hi: Closed(v)}
}

// pos is a totally ordered position on the value line: finite bound
// values nudged by an infinitesimal for open bounds, with -inf and +inf
// at the ends.
type pos struct {
	inf int // -1: -inf, 0: finite, +1: +inf
	val vector.Value
	eps int // -1: just below val, 0: val, +1: just above val
}

// startPos places a low bound: an open low bound starts just above its
// value.
func startPos(b Bound) pos {
	if b.Unbounded {
		return pos{inf: -1}
	}
	if b.Open {
		return pos{val: b.Val, eps: 1}
	}
	return pos{val: b.Val}
}

// endPos places a high bound: an open high bound ends just below its
// value.
func endPos(b Bound) pos {
	if b.Unbounded {
		return pos{inf: 1}
	}
	if b.Open {
		return pos{val: b.Val, eps: -1}
	}
	return pos{val: b.Val}
}

func cmpPos(a, b pos) int {
	if a.inf != b.inf {
		if a.inf < b.inf {
			return -1
		}
		return 1
	}
	if a.inf != 0 {
		return 0
	}
	if c := a.val.Compare(b.val); c != 0 {
		return c
	}
	switch {
	case a.eps < b.eps:
		return -1
	case a.eps > b.eps:
		return 1
	}
	return 0
}

// empty reports whether the interval contains no values. (For discrete
// types an open span like (3,4) over ints is treated as non-empty; the
// algebra is type-agnostic and over-approximation is always safe here.)
func (iv Interval) empty() bool {
	return cmpPos(startPos(iv.Lo), endPos(iv.Hi)) > 0
}

// contains reports whether v lies in the interval.
func (iv Interval) contains(v vector.Value) bool {
	if !iv.Lo.Unbounded {
		c := v.Compare(iv.Lo.Val)
		if c < 0 || (c == 0 && iv.Lo.Open) {
			return false
		}
	}
	if !iv.Hi.Unbounded {
		c := v.Compare(iv.Hi.Val)
		if c > 0 || (c == 0 && iv.Hi.Open) {
			return false
		}
	}
	return true
}

// String renders the interval: [0,10), {42}, (100,+inf).
func (iv Interval) String() string {
	if !iv.Lo.Unbounded && !iv.Hi.Unbounded &&
		!iv.Lo.Open && !iv.Hi.Open && iv.Lo.Val.Equal(iv.Hi.Val) {
		return "{" + iv.Lo.Val.String() + "}"
	}
	var b strings.Builder
	if iv.Lo.Unbounded {
		b.WriteString("(-inf")
	} else if iv.Lo.Open {
		b.WriteString("(" + iv.Lo.Val.String())
	} else {
		b.WriteString("[" + iv.Lo.Val.String())
	}
	b.WriteByte(',')
	if iv.Hi.Unbounded {
		b.WriteString("+inf)")
	} else if iv.Hi.Open {
		b.WriteString(iv.Hi.Val.String() + ")")
	} else {
		b.WriteString(iv.Hi.Val.String() + "]")
	}
	return b.String()
}

// Set is a union of disjoint intervals in ascending order. The zero Set
// is empty (no value belongs to it).
type Set struct {
	ivs []Interval
}

// NewSet builds a normalized set from arbitrary intervals: empty
// intervals are dropped, the rest sorted and overlapping or adjacent
// runs merged.
func NewSet(ivs ...Interval) Set {
	keep := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.empty() {
			keep = append(keep, iv)
		}
	}
	sort.Slice(keep, func(i, j int) bool {
		return cmpPos(startPos(keep[i].Lo), startPos(keep[j].Lo)) < 0
	})
	out := keep[:0]
	for _, iv := range keep {
		if len(out) == 0 {
			out = append(out, iv)
			continue
		}
		last := &out[len(out)-1]
		// Merge when iv starts at or before the position immediately
		// after last's end (overlap, or touching with at least one
		// closed side).
		if mergeable(*last, iv) {
			if cmpPos(endPos(iv.Hi), endPos(last.Hi)) > 0 {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return Set{ivs: append([]Interval(nil), out...)}
}

// mergeable reports whether b (starting at or after a) overlaps or is
// flush against a, so their union is one interval.
func mergeable(a, b Interval) bool {
	if cmpPos(startPos(b.Lo), endPos(a.Hi)) <= 0 {
		return true
	}
	// Touching at one value with at least one closed side: [1,2) ∪ [2,3].
	if !a.Hi.Unbounded && !b.Lo.Unbounded && a.Hi.Val.Equal(b.Lo.Val) &&
		(!a.Hi.Open || !b.Lo.Open) {
		return true
	}
	return false
}

// Intervals returns the set's intervals in ascending order.
func (s Set) Intervals() []Interval { return s.ivs }

// Empty reports whether no value belongs to the set.
func (s Set) Empty() bool { return len(s.ivs) == 0 }

// All reports whether every value belongs to the set (one interval,
// unbounded on both sides) — a vacuous constraint.
func (s Set) All() bool {
	return len(s.ivs) == 1 && s.ivs[0].Lo.Unbounded && s.ivs[0].Hi.Unbounded
}

// Bounded reports whether the set spans a finite range (non-empty, and
// both the lowest low bound and highest high bound are finite).
func (s Set) Bounded() bool {
	return len(s.ivs) > 0 && !s.ivs[0].Lo.Unbounded && !s.ivs[len(s.ivs)-1].Hi.Unbounded
}

// Contains reports whether v belongs to the set, by binary search over
// the disjoint ascending intervals. Comparisons are exact.
func (s Set) Contains(v vector.Value) bool {
	vp := pos{val: v}
	// First interval whose start lies strictly above v; the candidate is
	// its predecessor.
	i := sort.Search(len(s.ivs), func(i int) bool {
		return cmpPos(startPos(s.ivs[i].Lo), vp) > 0
	})
	return i > 0 && s.ivs[i-1].contains(v)
}

// Union returns the set of values in s or o.
func (s Set) Union(o Set) Set {
	return NewSet(append(append([]Interval(nil), s.ivs...), o.ivs...)...)
}

// Intersect returns the set of values in both s and o.
func (s Set) Intersect(o Set) Set {
	var out []Interval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(o.ivs) {
		a, b := s.ivs[i], o.ivs[j]
		lo := a.Lo
		if cmpPos(startPos(b.Lo), startPos(lo)) > 0 {
			lo = b.Lo
		}
		hi := a.Hi
		if cmpPos(endPos(b.Hi), endPos(hi)) < 0 {
			hi = b.Hi
		}
		if iv := (Interval{Lo: lo, Hi: hi}); !iv.empty() {
			out = append(out, iv)
		}
		// Advance whichever interval ends first.
		if cmpPos(endPos(a.Hi), endPos(b.Hi)) <= 0 {
			i++
		} else {
			j++
		}
	}
	return NewSet(out...)
}

// Measure returns the total numeric length of the set's intervals
// (points contribute zero). ok is false when the set is empty, unbounded,
// or holds non-numeric values, in which case equal-measure cuts are not
// available and placement falls back to hashing.
func (s Set) Measure() (float64, bool) {
	if len(s.ivs) == 0 || !s.Bounded() {
		return 0, false
	}
	total := 0.0
	for _, iv := range s.ivs {
		if !numericKind(iv.Lo.Val.Kind) || !numericKind(iv.Hi.Val.Kind) {
			return 0, false
		}
		total += iv.Hi.Val.AsFloat() - iv.Lo.Val.AsFloat()
	}
	return total, true
}

func numericKind(k vector.Type) bool {
	return k == vector.Int || k == vector.Float || k == vector.Timestamp
}

// Cuts returns p-1 ascending cut points splitting the set's numeric
// measure into p equal slices, for range placement of matching tuples
// across p partitions. ok is false when the set has no usable measure
// (unbounded, non-numeric, or measure zero — e.g. pure IN-lists), in
// which case matching tuples are placed by hash instead.
func (s Set) Cuts(p int) ([]float64, bool) {
	if p < 2 {
		return nil, false
	}
	total, ok := s.Measure()
	if !ok || total <= 0 {
		return nil, false
	}
	cuts := make([]float64, 0, p-1)
	acc := 0.0
	k := 1
	for _, iv := range s.ivs {
		lo, hi := iv.Lo.Val.AsFloat(), iv.Hi.Val.AsFloat()
		length := hi - lo
		for k < p {
			target := float64(k) * total / float64(p)
			if target > acc+length {
				break
			}
			cuts = append(cuts, lo+(target-acc))
			k++
		}
		acc += length
	}
	for k < p {
		// Numeric round-off starved the tail; pad with the top bound.
		cuts = append(cuts, s.ivs[len(s.ivs)-1].Hi.Val.AsFloat())
		k++
	}
	return cuts, true
}

// String renders the set as its intervals joined with " u ", e.g.
// "[0,10) u {42} u (100,+inf)". An empty set renders as "{}".
func (s Set) String() string {
	if len(s.ivs) == 0 {
		return "{}"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " u ")
}
