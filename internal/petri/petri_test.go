package petri

import (
	"testing"
	"testing/quick"
)

func TestFireConsumesAndProduces(t *testing.T) {
	n := NewNet()
	in := n.AddPlace("in", 2)
	out := n.AddPlace("out", 0)
	tr := &Transition{
		Name:    "t",
		Inputs:  []Arc{{Place: in, Weight: 1}},
		Outputs: []Arc{{Place: out, Weight: 1}},
	}
	if err := n.AddTransition(tr); err != nil {
		t.Fatal(err)
	}
	if !n.Enabled(tr) {
		t.Fatal("should be enabled")
	}
	if !n.Fire(tr) {
		t.Fatal("fire failed")
	}
	if in.Tokens() != 1 || out.Tokens() != 1 {
		t.Errorf("marking: in=%d out=%d", in.Tokens(), out.Tokens())
	}
	n.Fire(tr)
	if n.Fire(tr) {
		t.Error("fired with empty input")
	}
	if tr.Firings() != 2 {
		t.Errorf("firings = %d", tr.Firings())
	}
}

func TestWeightedArcs(t *testing.T) {
	n := NewNet()
	in := n.AddPlace("in", 3)
	out := n.AddPlace("out", 0)
	tr := &Transition{
		Name:    "batch",
		Inputs:  []Arc{{Place: in, Weight: 2}},
		Outputs: []Arc{{Place: out, Weight: 5}},
	}
	n.AddTransition(tr)
	if !n.Fire(tr) {
		t.Fatal("weight-2 fire failed with 3 tokens")
	}
	if n.Fire(tr) {
		t.Error("fired with 1 token left, weight 2")
	}
	if out.Tokens() != 5 {
		t.Errorf("out = %d", out.Tokens())
	}
}

func TestMultiInputAndRule(t *testing.T) {
	n := NewNet()
	a := n.AddPlace("a", 1)
	b := n.AddPlace("b", 0)
	out := n.AddPlace("out", 0)
	tr := &Transition{
		Name:    "join",
		Inputs:  []Arc{{Place: a, Weight: 1}, {Place: b, Weight: 1}},
		Outputs: []Arc{{Place: out, Weight: 1}},
	}
	n.AddTransition(tr)
	if n.Enabled(tr) {
		t.Error("enabled with one empty input")
	}
	b.tokens = 1
	if !n.Fire(tr) {
		t.Error("should fire when all inputs hold tokens")
	}
}

func TestTransitionValidation(t *testing.T) {
	n := NewNet()
	p := n.AddPlace("p", 0)
	if err := n.AddTransition(&Transition{Name: "no-out", Inputs: []Arc{{Place: p, Weight: 1}}}); err == nil {
		t.Error("transition without output should be rejected")
	}
	if err := n.AddTransition(&Transition{Name: "no-in", Outputs: []Arc{{Place: p, Weight: 1}}}); err == nil {
		t.Error("transition without input should be rejected")
	}
	if err := n.AddTransition(&Transition{
		Name:    "zero-weight",
		Inputs:  []Arc{{Place: p, Weight: 0}},
		Outputs: []Arc{{Place: p, Weight: 1}},
	}); err == nil {
		t.Error("zero arc weight should be rejected")
	}
}

func TestActionRunsInsideFiring(t *testing.T) {
	n := NewNet()
	in := n.AddPlace("in", 1)
	out := n.AddPlace("out", 0)
	ran := false
	tr := &Transition{
		Name:    "act",
		Inputs:  []Arc{{Place: in, Weight: 1}},
		Outputs: []Arc{{Place: out, Weight: 1}},
		Action: func() {
			ran = true
			// During the action the input token is consumed but the
			// output not yet produced: the atomic step.
			if in.Tokens() != 0 || out.Tokens() != 0 {
				t.Errorf("mid-fire marking: in=%d out=%d", in.Tokens(), out.Tokens())
			}
		},
	}
	n.AddTransition(tr)
	n.Fire(tr)
	if !ran {
		t.Error("action did not run")
	}
}

func TestRunUntilQuiescent(t *testing.T) {
	// Pipeline: source -> t1 -> mid -> t2 -> sink.
	n := NewNet()
	src := n.AddPlace("src", 5)
	mid := n.AddPlace("mid", 0)
	sink := n.AddPlace("sink", 0)
	n.AddTransition(&Transition{Name: "t1",
		Inputs: []Arc{{Place: src, Weight: 1}}, Outputs: []Arc{{Place: mid, Weight: 1}}})
	n.AddTransition(&Transition{Name: "t2",
		Inputs: []Arc{{Place: mid, Weight: 1}}, Outputs: []Arc{{Place: sink, Weight: 1}}})
	steps := n.Run(0)
	if steps != 10 {
		t.Errorf("steps = %d, want 10", steps)
	}
	if sink.Tokens() != 5 || src.Tokens() != 0 || mid.Tokens() != 0 {
		t.Errorf("final marking: %v", n.Marking())
	}
}

func TestRunBounded(t *testing.T) {
	// Cycle: a -> t -> a never quiesces; Run must respect the bound.
	n := NewNet()
	a := n.AddPlace("a", 1)
	n.AddTransition(&Transition{Name: "loop",
		Inputs: []Arc{{Place: a, Weight: 1}}, Outputs: []Arc{{Place: a, Weight: 1}}})
	if steps := n.Run(17); steps != 17 {
		t.Errorf("bounded run = %d", steps)
	}
}

func TestMarkingAndString(t *testing.T) {
	n := NewNet()
	n.AddPlace("p", 3)
	m := n.Marking()
	if m["p"] != 3 {
		t.Errorf("marking: %v", m)
	}
	if n.String() == "" {
		t.Error("empty String")
	}
	if n.Place("p") == nil || n.Place("zz") != nil {
		t.Error("Place lookup broken")
	}
	// AddPlace is idempotent per name.
	if n.AddPlace("p", 99).Tokens() != 3 {
		t.Error("AddPlace overwrote existing place")
	}
}

// Property: token count is conserved for 1-in/1-out unit-weight transitions.
func TestTokenConservationProperty(t *testing.T) {
	f := func(initial uint8, fires uint8) bool {
		n := NewNet()
		a := n.AddPlace("a", int(initial))
		b := n.AddPlace("b", 0)
		tr := &Transition{Name: "t",
			Inputs: []Arc{{Place: a, Weight: 1}}, Outputs: []Arc{{Place: b, Weight: 1}}}
		n.AddTransition(tr)
		for i := 0; i < int(fires); i++ {
			n.Fire(tr)
		}
		return a.Tokens()+b.Tokens() == int(initial) && a.Tokens() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
