// Package petri implements the Petri-net model underlying the DataCell's
// processing scheme: a directed bipartite graph of places (token holders)
// and transitions (computations). A transition is enabled when all of its
// input places hold tokens; firing consumes input tokens atomically, runs
// the transition's action, and deposits tokens in the output places. The
// firing order of enabled transitions is deliberately left undefined.
//
// In the DataCell, baskets are the places, tuples the tokens, and
// receptors, factories and emitters the transitions. This package provides
// the abstract model used to validate the scheduler's semantics; the
// concrete scheduler in internal/core instantiates the same firing rule
// over baskets.
package petri

import (
	"fmt"
	"strings"
	"sync"
)

// Place holds a non-negative number of tokens.
type Place struct {
	Name   string
	tokens int
}

// Tokens returns the current token count.
func (p *Place) Tokens() int { return p.tokens }

// Arc connects a place to a transition (or vice versa) with a weight: the
// number of tokens consumed or produced per firing.
type Arc struct {
	Place  *Place
	Weight int
}

// Transition models a computational step. Action, if non-nil, runs inside
// the atomic firing step.
type Transition struct {
	Name    string
	Inputs  []Arc
	Outputs []Arc
	Action  func()
	firings int
}

// Firings returns how many times the transition has fired.
func (t *Transition) Firings() int { return t.firings }

// Net is a Petri net. All methods are safe for concurrent use; firing is
// atomic with respect to other firings, matching the model's
// non-interruptible step.
type Net struct {
	mu          sync.Mutex
	places      map[string]*Place
	transitions []*Transition
}

// NewNet returns an empty net.
func NewNet() *Net {
	return &Net{places: map[string]*Place{}}
}

// AddPlace creates (or returns the existing) place with initial tokens.
func (n *Net) AddPlace(name string, tokens int) *Place {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.places[name]; ok {
		return p
	}
	p := &Place{Name: name, tokens: tokens}
	n.places[name] = p
	return p
}

// Place returns the named place, or nil.
func (n *Net) Place(name string) *Place {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.places[name]
}

// AddTransition registers a transition. Every transition must have at least
// one input and one output arc, as in the DataCell model.
func (n *Net) AddTransition(t *Transition) error {
	if len(t.Inputs) == 0 || len(t.Outputs) == 0 {
		return fmt.Errorf("petri: transition %s needs at least one input and one output", t.Name)
	}
	for _, a := range append(append([]Arc(nil), t.Inputs...), t.Outputs...) {
		if a.Weight <= 0 {
			return fmt.Errorf("petri: transition %s has non-positive arc weight", t.Name)
		}
	}
	n.mu.Lock()
	n.transitions = append(n.transitions, t)
	n.mu.Unlock()
	return nil
}

// Enabled reports whether t can fire: every input place holds at least the
// arc weight in tokens.
func (n *Net) Enabled(t *Transition) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.enabledLocked(t)
}

func (n *Net) enabledLocked(t *Transition) bool {
	for _, a := range t.Inputs {
		if a.Place.tokens < a.Weight {
			return false
		}
	}
	return true
}

// Fire atomically fires t if enabled and reports whether it fired.
func (n *Net) Fire(t *Transition) bool {
	n.mu.Lock()
	if !n.enabledLocked(t) {
		n.mu.Unlock()
		return false
	}
	for _, a := range t.Inputs {
		a.Place.tokens -= a.Weight
	}
	if t.Action != nil {
		t.Action()
	}
	for _, a := range t.Outputs {
		a.Place.tokens += a.Weight
	}
	t.firings++
	n.mu.Unlock()
	return true
}

// Step fires the first enabled transition (in registration order) and
// reports whether any fired. The model leaves firing order undefined;
// registration order is one admissible schedule.
func (n *Net) Step() bool {
	n.mu.Lock()
	ts := append([]*Transition(nil), n.transitions...)
	n.mu.Unlock()
	for _, t := range ts {
		if n.Fire(t) {
			return true
		}
	}
	return false
}

// Run fires transitions until quiescence (no transition enabled) or until
// maxSteps firings, returning the number of firings performed. A maxSteps
// of 0 means no bound; nets with cycles may then never return.
func (n *Net) Run(maxSteps int) int {
	steps := 0
	for maxSteps == 0 || steps < maxSteps {
		if !n.Step() {
			break
		}
		steps++
	}
	return steps
}

// Marking returns the current token count of every place.
func (n *Net) Marking() map[string]int {
	n.mu.Lock()
	defer n.mu.Unlock()
	m := make(map[string]int, len(n.places))
	for name, p := range n.places {
		m[name] = p.tokens
	}
	return m
}

// String renders the marking for debugging.
func (n *Net) String() string {
	m := n.Marking()
	parts := make([]string, 0, len(m))
	for name, tok := range m {
		parts = append(parts, fmt.Sprintf("%s=%d", name, tok))
	}
	return "{" + strings.Join(parts, " ") + "}"
}
