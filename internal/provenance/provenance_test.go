package provenance

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCaptureFieldsPopulated(t *testing.T) {
	p := Capture()
	if p.GoVersion == "" || p.GOOS == "" || p.GOARCH == "" {
		t.Fatalf("capture left identity fields empty: %+v", p)
	}
	if p.GOMAXPROCS <= 0 || p.NumCPU <= 0 {
		t.Fatalf("capture left cpu fields unset: %+v", p)
	}
	if p.CapturedAt == "" {
		t.Fatalf("capture left timestamp empty")
	}
}

func TestDiffIgnoresCapturedAt(t *testing.T) {
	a := Capture()
	b := a
	b.CapturedAt = "1999-01-01T00:00:00Z"
	if d := Diff(a, b); len(d) != 0 {
		t.Fatalf("timestamp-only difference reported: %v", d)
	}
}

func TestDiffReportsEnvironmentChanges(t *testing.T) {
	a := Capture()
	b := a
	b.GoVersion = "go0.0"
	b.NumCPU = a.NumCPU + 1
	d := Diff(a, b)
	if len(d) != 2 {
		t.Fatalf("want 2 diffs, got %v", d)
	}
	joined := strings.Join(d, "; ")
	if !strings.Contains(joined, "go_version") || !strings.Contains(joined, "num_cpu") {
		t.Fatalf("diff missing changed fields: %v", d)
	}
}

func TestDiffUnstampedBaseline(t *testing.T) {
	d := Diff(Info{}, Capture())
	if len(d) != 1 || !strings.Contains(d[0], "unstamped") {
		t.Fatalf("zero baseline should report unstamped, got %v", d)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := Capture()
	buf, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"go_version", "goos", "goarch", "gomaxprocs", "num_cpu", "captured_at"} {
		if !strings.Contains(string(buf), `"`+key+`"`) {
			t.Fatalf("marshalled provenance missing %q: %s", key, buf)
		}
	}
	var back Info
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, p)
	}
}
