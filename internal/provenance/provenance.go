// Package provenance stamps benchmark artifacts with the environment
// that produced them. Committed BENCH_*.json baselines are measured on a
// fixed machine; a gate comparing a fresh run against a baseline captured
// on different hardware or a different Go toolchain compares apples to
// oranges, so benchgate reads the stamp back and warns (never fails) when
// the environments diverge.
package provenance

import (
	"fmt"
	"runtime"
	"time"
)

// Info describes the environment of one benchmark capture.
type Info struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CapturedAt string `json:"captured_at"` // RFC3339
}

// Capture records the current environment.
func Capture() Info {
	return Info{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
	}
}

// Diff lists the environment fields on which a and b disagree, as
// human-readable "field: a vs b" strings. CapturedAt never counts: two
// captures of the same box at different times are the same environment.
// An entirely zero Info (an unstamped legacy baseline) diffs as a single
// "unstamped baseline" entry.
func Diff(a, b Info) []string {
	if (a == Info{}) {
		return []string{"unstamped baseline (no provenance recorded)"}
	}
	var out []string
	cmp := func(field, av, bv string) {
		if av != bv {
			out = append(out, fmt.Sprintf("%s: %s vs %s", field, av, bv))
		}
	}
	cmp("go_version", a.GoVersion, b.GoVersion)
	cmp("goos", a.GOOS, b.GOOS)
	cmp("goarch", a.GOARCH, b.GOARCH)
	cmp("gomaxprocs", fmt.Sprint(a.GOMAXPROCS), fmt.Sprint(b.GOMAXPROCS))
	cmp("num_cpu", fmt.Sprint(a.NumCPU), fmt.Sprint(b.NumCPU))
	return out
}
