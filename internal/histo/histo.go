// Package histo provides a fixed-footprint, lock-free latency histogram
// in the HDR style: values are bucketed logarithmically with 32 linear
// sub-buckets per power of two, which bounds the relative quantile error
// at ~3% across the full int64 range while keeping recording to a couple
// of atomic adds. Emit callbacks on the hot path record concurrently with
// readers taking quantiles; no locks, no allocation after construction.
package histo

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits linear sub-buckets per binary order of magnitude: values up
	// to 2^subBits are exact, larger ones land in a bucket no wider than
	// value/2^subBits (≈3% relative error).
	subBits = 5
	subSize = 1 << subBits
	// nBuckets covers the full non-negative int64 range: subSize exact
	// buckets plus subSize per remaining exponent.
	nBuckets = subSize + (63-subBits)*subSize
)

// H is a concurrent log-bucketed histogram of non-negative int64 samples
// (by convention nanoseconds; Record takes a time.Duration). The zero
// value is ready to use.
type H struct {
	counts [nBuckets]atomic.Int64
	total  atomic.Int64
	max    atomic.Int64
}

// index maps a sample to its bucket.
func index(v int64) int {
	if v < subSize {
		return int(v)
	}
	// v ∈ [2^(e+subBits), 2^(e+subBits+1)): drop e low bits, keeping
	// subBits+1 significant ones; the top bit is implied.
	e := bits.Len64(uint64(v)) - subBits - 1
	m := int(v>>uint(e)) - subSize
	return subSize + e*subSize + m
}

// bucketLow returns the smallest sample value mapping to bucket i, the
// inverse of index for bucket lower bounds.
func bucketLow(i int) int64 {
	if i < subSize {
		return int64(i)
	}
	e := (i - subSize) / subSize
	m := (i - subSize) % subSize
	return int64(subSize+m) << uint(e)
}

// Record adds one sample. Negative samples clamp to zero (a clock step
// backwards must not corrupt the buckets).
func (h *H) Record(d time.Duration) { h.RecordValue(int64(d)) }

// RecordValue adds one raw sample.
func (h *H) RecordValue(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[index(v)].Add(1)
	h.total.Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *H) Count() int64 { return h.total.Load() }

// Max returns the largest recorded sample (exact, not bucketed).
func (h *H) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the q-quantile (q in [0,1]) as a duration. The result
// is the midpoint of the bucket holding the q-th sample, so it carries the
// bucket's ≈3% relative error; Quantile(1) is bounded by the exact Max.
// Concurrent Records make the result approximate in the usual way — each
// bucket is read once, atomically.
func (h *H) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := 0; i < nBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= target {
			lo := bucketLow(i)
			hi := bucketLow(i + 1)
			mid := lo + (hi-lo)/2
			if m := h.max.Load(); mid > m {
				mid = m
			}
			return time.Duration(mid)
		}
	}
	return h.Max()
}

// Merge folds o's samples into h. Concurrent-safe on both sides, with the
// same read-once-per-bucket consistency as Quantile.
func (h *H) Merge(o *H) {
	for i := 0; i < nBuckets; i++ {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
			h.total.Add(c)
		}
	}
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Reset zeroes the histogram. Not safe against concurrent Records.
func (h *H) Reset() {
	for i := 0; i < nBuckets; i++ {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.max.Store(0)
}
