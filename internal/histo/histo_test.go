package histo

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestIndexBucketLowRoundTrip(t *testing.T) {
	// Every bucket's lower bound must map back to that bucket, and bucket
	// lows must be strictly increasing.
	prev := int64(-1)
	for i := 0; i < nBuckets; i++ {
		lo := bucketLow(i)
		if lo <= prev {
			t.Fatalf("bucketLow not increasing at %d: %d <= %d", i, lo, prev)
		}
		prev = lo
		if got := index(lo); got != i {
			t.Fatalf("index(bucketLow(%d)) = %d", i, got)
		}
	}
	if got := index(math.MaxInt64); got >= nBuckets {
		t.Fatalf("index(MaxInt64) = %d out of range %d", got, nBuckets)
	}
}

func TestExactSmallValues(t *testing.T) {
	var h H
	for v := int64(0); v < subSize; v++ {
		h.RecordValue(v)
	}
	if h.Count() != subSize {
		t.Fatalf("count = %d", h.Count())
	}
	// Values below 2^subBits are recorded exactly, so the median of 0..31
	// must come back as 16 (ceil-rank convention: rank 16 holds value 15,
	// bucket midpoints of width-1 buckets are exact).
	if got := h.Quantile(0.5); got != 15 {
		t.Fatalf("median = %v, want 15", got)
	}
	if h.Max() != subSize-1 {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestQuantileRelativeError(t *testing.T) {
	var h H
	rng := rand.New(rand.NewSource(42))
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, the shape of a latency distribution
		// with a long tail.
		v := int64(math.Exp(rng.Float64()*14) * 100)
		samples = append(samples, float64(v))
		h.RecordValue(v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))]
		got := float64(h.Quantile(q))
		if err := math.Abs(got-exact) / exact; err > 0.05 {
			t.Fatalf("q%.3f: got %.0f exact %.0f rel err %.3f", q, got, exact, err)
		}
	}
	if got, want := float64(h.Quantile(1)), samples[len(samples)-1]; got != want {
		t.Fatalf("q1 = %.0f, want exact max %.0f", got, want)
	}
}

func TestMerge(t *testing.T) {
	var a, b, both H
	for i := int64(0); i < 1000; i++ {
		a.RecordValue(i * 17)
		b.RecordValue(i * 1003)
		both.RecordValue(i * 17)
		both.RecordValue(i * 1003)
	}
	a.Merge(&b)
	if a.Count() != both.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), both.Count())
	}
	if a.Max() != both.Max() {
		t.Fatalf("merged max %v, want %v", a.Max(), both.Max())
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("q%.2f: merged %v, direct %v", q, a.Quantile(q), both.Quantile(q))
		}
	}
}

func TestConcurrentRecord(t *testing.T) {
	var h H
	const G, N = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				h.Record(time.Duration(g*N+i) * time.Microsecond)
				if i%64 == 0 {
					h.Quantile(0.99) // readers race recorders by design
				}
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != G*N {
		t.Fatalf("count = %d, want %d", h.Count(), G*N)
	}
	if h.Max() != time.Duration(G*N-1)*time.Microsecond {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestResetAndEmpty(t *testing.T) {
	var h H
	if h.Quantile(0.99) != 0 || h.Count() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.RecordValue(12345)
	h.Record(-5 * time.Second) // clamps, must not panic
	h.Reset()
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset histogram not zero")
	}
}
