package bat

import (
	"reflect"
	"testing"

	"datacell/internal/vector"
)

func intRel(t *testing.T, names []string, cols ...[]int64) *Relation {
	t.Helper()
	vs := make([]*vector.Vector, len(cols))
	for i, c := range cols {
		vs[i] = vector.FromInts(c)
	}
	return NewRelation(names, vs)
}

func TestBATBasics(t *testing.T) {
	b := New(vector.Int)
	b.Hseqbase = 100
	for i := int64(0); i < 5; i++ {
		b.Append(vector.NewInt(i * 10))
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d", b.Len())
	}
	if p := b.Pos(102); p != 2 {
		t.Errorf("Pos(102) = %d", p)
	}
	if p := b.Pos(99); p != -1 {
		t.Errorf("Pos(99) = %d, want -1", p)
	}
	if p := b.Pos(105); p != -1 {
		t.Errorf("Pos(105) = %d, want -1", p)
	}
	if o := b.OIDAt(3); o != 103 {
		t.Errorf("OIDAt(3) = %d", o)
	}
	b.DeleteSorted([]int32{0, 1})
	if b.Len() != 3 || b.Tail.Ints()[0] != 20 {
		t.Errorf("after delete: %v", b.Tail.Ints())
	}
}

func TestRelationBasics(t *testing.T) {
	r := intRel(t, []string{"A", "b"}, []int64{1, 2, 3}, []int64{10, 20, 30})
	if r.Len() != 3 || r.NumCols() != 2 {
		t.Fatalf("Len=%d NumCols=%d", r.Len(), r.NumCols())
	}
	// Names are stored lower-case; lookup is case-insensitive.
	if i := r.ColIndex("A"); i != 0 {
		t.Errorf("ColIndex(A) = %d", i)
	}
	if i := r.ColIndex("B"); i != 1 {
		t.Errorf("ColIndex(B) = %d", i)
	}
	if i := r.ColIndex("missing"); i != -1 {
		t.Errorf("ColIndex(missing) = %d", i)
	}
	if v := r.ColByName("b"); v == nil || v.Ints()[2] != 30 {
		t.Errorf("ColByName(b) = %v", v)
	}
}

func TestQualifiedLookup(t *testing.T) {
	r := intRel(t, []string{"s.a", "s.b"}, []int64{1}, []int64{2})
	if i := r.ColIndex("s.a"); i != 0 {
		t.Errorf("ColIndex(s.a) = %d", i)
	}
	if i := r.ColIndex("a"); i != 0 {
		t.Errorf("ColIndex(a) = %d", i)
	}
	if i := r.ColIndex("t.a"); i != 0 { // falls back to bare suffix match
		t.Errorf("ColIndex(t.a) = %d", i)
	}
	q := r.Qualify("z")
	if q.Names()[0] != "z.a" || q.Names()[1] != "z.b" {
		t.Errorf("Qualify = %v", q.Names())
	}
}

func TestProjectGather(t *testing.T) {
	r := intRel(t, []string{"a", "b", "c"}, []int64{1, 2}, []int64{3, 4}, []int64{5, 6})
	p, err := r.Project("c", "a")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 2 || p.Col(0).Ints()[0] != 5 || p.Col(1).Ints()[1] != 2 {
		t.Errorf("Project: %v", p)
	}
	if _, err := r.Project("zz"); err == nil {
		t.Error("Project(zz) should fail")
	}
	g := r.Gather([]int32{1})
	if g.Len() != 1 || g.Col(2).Ints()[0] != 6 {
		t.Errorf("Gather: %v", g)
	}
}

func TestAppendRowAndRelation(t *testing.T) {
	r := NewEmptyRelation([]string{"x", "s"}, []vector.Type{vector.Int, vector.Str})
	r.AppendRow(vector.NewInt(1), vector.NewStr("one"))
	r.AppendRow(vector.NewInt(2), vector.NewStr("two"))
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	row := r.Row(1)
	if row[0].I != 2 || row[1].S != "two" {
		t.Errorf("Row(1) = %v", row)
	}
	o := NewEmptyRelation([]string{"x", "s"}, []vector.Type{vector.Int, vector.Str})
	o.AppendRow(vector.NewInt(3), vector.NewStr("three"))
	r.AppendRelation(o)
	if r.Len() != 3 || r.Col(1).Strs()[2] != "three" {
		t.Errorf("AppendRelation: %v", r)
	}
}

func TestDeleteKeepClear(t *testing.T) {
	r := intRel(t, []string{"a", "b"}, []int64{1, 2, 3, 4}, []int64{5, 6, 7, 8})
	r.DeleteSorted([]int32{0, 3})
	if !reflect.DeepEqual(r.Col(0).Ints(), []int64{2, 3}) || !reflect.DeepEqual(r.Col(1).Ints(), []int64{6, 7}) {
		t.Errorf("DeleteSorted: %v %v", r.Col(0).Ints(), r.Col(1).Ints())
	}
	r.KeepSorted([]int32{1})
	if r.Len() != 1 || r.Col(0).Ints()[0] != 3 {
		t.Errorf("KeepSorted: %v", r.Col(0).Ints())
	}
	r.Clear()
	if r.Len() != 0 {
		t.Errorf("Clear: Len = %d", r.Len())
	}
}

func TestCloneIndependence(t *testing.T) {
	r := intRel(t, []string{"a"}, []int64{1, 2})
	c := r.Clone()
	c.Col(0).Set(0, vector.NewInt(99))
	if r.Col(0).Ints()[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestConcatRename(t *testing.T) {
	a := intRel(t, []string{"x"}, []int64{1, 2})
	b := intRel(t, []string{"y"}, []int64{3, 4})
	c := Concat(a, b)
	if c.NumCols() != 2 || c.Col(1).Ints()[1] != 4 {
		t.Errorf("Concat: %v", c)
	}
	rn := c.Rename([]string{"p", "q"})
	if rn.ColIndex("q") != 1 {
		t.Errorf("Rename: %v", rn.Names())
	}
}

func TestMisalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for misaligned columns")
		}
	}()
	NewRelation([]string{"a", "b"}, []*vector.Vector{
		vector.FromInts([]int64{1, 2}),
		vector.FromInts([]int64{1}),
	})
}

func TestTypesAndString(t *testing.T) {
	r := NewEmptyRelation([]string{"a", "b"}, []vector.Type{vector.Int, vector.Str})
	ts := r.Types()
	if ts[0] != vector.Int || ts[1] != vector.Str {
		t.Errorf("Types = %v", ts)
	}
	r.AppendRow(vector.NewInt(1), vector.NewStr("s"))
	if r.String() == "" {
		t.Error("empty String()")
	}
}
