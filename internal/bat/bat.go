// Package bat models MonetDB-style Binary Association Tables and the
// relation abstraction built on top of them.
//
// A BAT pairs a virtual, densely ascending head column of object identifiers
// (oids) with a materialised tail column of attribute values. For a relation
// of k attributes there are k BATs whose tails are tuple-order aligned: the
// attribute values of relational tuple t all sit at the same position in
// their respective tails. That alignment is what lets the engine reconstruct
// tuples positionally instead of via joins on stored keys.
package bat

import (
	"fmt"
	"strings"

	"datacell/internal/vector"
)

// OID identifies a tuple within a BAT's head sequence.
type OID = int64

// BAT is a single column: a virtual dense head starting at Hseqbase and a
// materialised tail. The head is never stored; position p in the tail
// corresponds to oid Hseqbase+p.
type BAT struct {
	// Hseqbase is the oid of the first tuple in the tail.
	Hseqbase OID
	// Tail holds the attribute values.
	Tail *vector.Vector
}

// New returns an empty BAT with tail type t and head sequence base 0.
func New(t vector.Type) *BAT {
	return &BAT{Tail: vector.New(t, 0)}
}

// Len returns the number of tuples.
func (b *BAT) Len() int { return b.Tail.Len() }

// Pos translates an oid to a tail position, or -1 if out of range.
func (b *BAT) Pos(o OID) int {
	p := int(o - b.Hseqbase)
	if p < 0 || p >= b.Len() {
		return -1
	}
	return p
}

// OIDAt returns the oid of the tuple at tail position p.
func (b *BAT) OIDAt(p int) OID { return b.Hseqbase + OID(p) }

// Append appends a value, extending the dense head.
func (b *BAT) Append(v vector.Value) { b.Tail.Append(v) }

// DeleteSorted removes the tuples at the given increasing tail positions.
// The head stays dense: surviving tuples are renumbered, exactly like the
// in-place shift operator added to the kernel for the DataCell.
func (b *BAT) DeleteSorted(del []int32) { b.Tail.DeleteSorted(del) }

// Relation is a set of tuple-order aligned columns with attribute names.
// It is the unit exchanged between relational operators, baskets and
// factories. Names are case-insensitive (stored lower-case).
type Relation struct {
	names []string
	cols  []*vector.Vector
}

// NewRelation builds a relation from aligned columns. All columns must have
// equal length.
func NewRelation(names []string, cols []*vector.Vector) *Relation {
	if len(names) != len(cols) {
		panic("bat: names/cols length mismatch")
	}
	r := &Relation{names: make([]string, len(names)), cols: cols}
	for i, n := range names {
		r.names[i] = strings.ToLower(n)
	}
	if len(cols) > 0 {
		n := cols[0].Len()
		for _, c := range cols[1:] {
			if c.Len() != n {
				panic("bat: misaligned columns")
			}
		}
	}
	return r
}

// NewEmptyRelation builds an empty relation with the given schema.
func NewEmptyRelation(names []string, types []vector.Type) *Relation {
	cols := make([]*vector.Vector, len(types))
	for i, t := range types {
		cols[i] = vector.New(t, 0)
	}
	return NewRelation(names, cols)
}

// Names returns the attribute names in column order.
func (r *Relation) Names() []string { return r.names }

// Types returns the column types in column order.
func (r *Relation) Types() []vector.Type {
	ts := make([]vector.Type, len(r.cols))
	for i, c := range r.cols {
		ts[i] = c.Kind()
	}
	return ts
}

// NumCols returns the number of attributes.
func (r *Relation) NumCols() int { return len(r.cols) }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	if len(r.cols) == 0 {
		return 0
	}
	return r.cols[0].Len()
}

// Col returns column i.
func (r *Relation) Col(i int) *vector.Vector { return r.cols[i] }

// ColIndex resolves an attribute name (case-insensitive; accepts a
// "table.attr" qualifier by matching the suffix) to a column index, or -1.
func (r *Relation) ColIndex(name string) int {
	name = strings.ToLower(name)
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		// Prefer an exact qualified match, then fall back to the bare name.
		for j, n := range r.names {
			if n == name {
				return j
			}
		}
		name = name[i+1:]
	}
	for j, n := range r.names {
		if n == name {
			return j
		}
		if k := strings.LastIndexByte(n, '.'); k >= 0 && n[k+1:] == name {
			return j
		}
	}
	return -1
}

// ColByName returns the column for name, or nil.
func (r *Relation) ColByName(name string) *vector.Vector {
	if i := r.ColIndex(name); i >= 0 {
		return r.cols[i]
	}
	return nil
}

// Project returns a relation with only the named columns, in the given
// order. The columns are shared, not copied.
func (r *Relation) Project(names ...string) (*Relation, error) {
	cols := make([]*vector.Vector, len(names))
	for i, n := range names {
		j := r.ColIndex(n)
		if j < 0 {
			return nil, fmt.Errorf("bat: unknown column %q", n)
		}
		cols[i] = r.cols[j]
	}
	return NewRelation(names, cols), nil
}

// Gather returns a new relation with the tuples at the given positions.
func (r *Relation) Gather(sel []int32) *Relation {
	cols := make([]*vector.Vector, len(r.cols))
	for i, c := range r.cols {
		cols[i] = c.Gather(sel)
	}
	return &Relation{names: append([]string(nil), r.names...), cols: cols}
}

// GatherInto overwrites dst with the tuples of r at the given positions,
// adopting r's schema and retaining dst's column capacity. dst must not
// share columns with r. It is the allocation-free form of Gather used by
// execution arenas; a zero-value &Relation{} is a valid (empty) dst. It
// returns dst.
func (r *Relation) GatherInto(dst *Relation, sel []int32) *Relation {
	dst.names = append(dst.names[:0], r.names...)
	dst.cols = sizeCols(dst.cols, len(r.cols))
	for i, c := range r.cols {
		c.GatherInto(dst.cols[i], sel)
	}
	return dst
}

// CloneInto overwrites dst with a deep copy of r, retaining dst's column
// capacity. dst must not share columns with r. It returns dst.
func (r *Relation) CloneInto(dst *Relation) *Relation {
	dst.names = append(dst.names[:0], r.names...)
	dst.cols = sizeCols(dst.cols, len(r.cols))
	for i, c := range r.cols {
		c.SliceInto(dst.cols[i], 0, c.Len())
	}
	return dst
}

// ConcatInto overwrites dst with the columns of a followed by the columns
// of b (same tuple count), sharing the column vectors with a and b exactly
// like Concat, but reusing dst's header slices. It returns dst.
func ConcatInto(dst, a, b *Relation) *Relation {
	dst.names = append(append(dst.names[:0], a.names...), b.names...)
	dst.cols = append(append(dst.cols[:0], a.cols...), b.cols...)
	return dst
}

// Reshape re-schemas r in place to the given names and types, emptying all
// columns while retaining as much backing capacity as possible. A
// zero-value &Relation{} is a valid receiver; ingest pools use Reshape to
// recycle staging relations across batches.
func (r *Relation) Reshape(names []string, types []vector.Type) {
	r.names = r.names[:0]
	for _, n := range names {
		r.names = append(r.names, strings.ToLower(n))
	}
	r.cols = sizeCols(r.cols, len(types))
	for i, t := range types {
		r.cols[i].Reset(t, 0)
	}
}

// sizeCols grows or truncates a column slice to n entries, allocating
// vectors only for newly added slots.
func sizeCols(cols []*vector.Vector, n int) []*vector.Vector {
	for len(cols) < n {
		cols = append(cols, &vector.Vector{})
	}
	return cols[:n]
}

// AppendRelation appends all tuples of o (schema-compatible by position).
func (r *Relation) AppendRelation(o *Relation) {
	if o.NumCols() != r.NumCols() {
		panic(fmt.Sprintf("bat: append %d cols to %d cols", o.NumCols(), r.NumCols()))
	}
	for i, c := range r.cols {
		c.AppendVector(o.cols[i])
	}
}

// AppendRow appends one tuple given as boxed values in column order.
func (r *Relation) AppendRow(vals ...vector.Value) {
	if len(vals) != len(r.cols) {
		panic("bat: row arity mismatch")
	}
	for i, c := range r.cols {
		c.Append(vals[i])
	}
}

// Row materialises tuple i as boxed values (for emitters and tests).
func (r *Relation) Row(i int) []vector.Value {
	out := make([]vector.Value, len(r.cols))
	for j, c := range r.cols {
		out[j] = c.Get(i)
	}
	return out
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	cols := make([]*vector.Vector, len(r.cols))
	for i, c := range r.cols {
		cols[i] = c.Clone()
	}
	return &Relation{names: append([]string(nil), r.names...), cols: cols}
}

// Clear removes all tuples, retaining the schema.
func (r *Relation) Clear() {
	for _, c := range r.cols {
		c.Clear()
	}
}

// DeleteSorted removes the tuples at the given increasing positions from all
// columns.
func (r *Relation) DeleteSorted(del []int32) {
	for _, c := range r.cols {
		c.DeleteSorted(del)
	}
}

// KeepSorted retains only the tuples at the given increasing positions.
func (r *Relation) KeepSorted(keep []int32) {
	for _, c := range r.cols {
		c.KeepSorted(keep)
	}
}

// Rename returns a relation with the same columns under new names
// (len(names) must equal NumCols). Columns are shared.
func (r *Relation) Rename(names []string) *Relation {
	return NewRelation(names, r.cols)
}

// Qualify returns a relation whose column names are prefixed "alias.name"
// (existing qualifiers are replaced). Columns are shared.
func (r *Relation) Qualify(alias string) *Relation {
	names := make([]string, len(r.names))
	for i, n := range r.names {
		if k := strings.LastIndexByte(n, '.'); k >= 0 {
			n = n[k+1:]
		}
		names[i] = alias + "." + n
	}
	return NewRelation(names, r.cols)
}

// Concat returns a relation with the columns of a followed by the columns
// of b (same tuple count). Used for join results.
func Concat(a, b *Relation) *Relation {
	names := append(append([]string(nil), a.names...), b.names...)
	cols := append(append([]*vector.Vector(nil), a.cols...), b.cols...)
	return NewRelation(names, cols)
}

// String renders a compact table for debugging.
func (r *Relation) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.names, "\t"))
	sb.WriteByte('\n')
	n := r.Len()
	for i := 0; i < n && i < 20; i++ {
		for j := range r.cols {
			if j > 0 {
				sb.WriteByte('\t')
			}
			sb.WriteString(r.cols[j].Get(i).String())
		}
		sb.WriteByte('\n')
	}
	if n > 20 {
		fmt.Fprintf(&sb, "… (%d rows)\n", n)
	}
	return sb.String()
}
