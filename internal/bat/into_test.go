package bat

import (
	"reflect"
	"testing"

	"datacell/internal/vector"
)

func sampleRel() *Relation {
	return NewRelation([]string{"a", "b"}, []*vector.Vector{
		vector.FromInts([]int64{1, 2, 3, 4}),
		vector.FromStrs([]string{"w", "x", "y", "z"}),
	})
}

func TestRelationGatherInto(t *testing.T) {
	r := sampleRel()
	sel := []int32{3, 1}
	dst := &Relation{}
	got := r.GatherInto(dst, sel)
	want := r.Gather(sel)
	if !reflect.DeepEqual(got.Names(), want.Names()) {
		t.Fatalf("names %v, want %v", got.Names(), want.Names())
	}
	if !reflect.DeepEqual(got.Col(0).Ints(), want.Col(0).Ints()) ||
		!reflect.DeepEqual(got.Col(1).Strs(), want.Col(1).Strs()) {
		t.Fatalf("GatherInto = %v, want %v", got, want)
	}
	// Reuse with a different (narrower) source adapts the schema.
	narrow := NewRelation([]string{"c"}, []*vector.Vector{vector.FromInts([]int64{7, 8})})
	got = narrow.GatherInto(dst, []int32{1})
	if got.NumCols() != 1 || got.Col(0).Ints()[0] != 8 {
		t.Fatalf("reused GatherInto = %v", got)
	}
	// Warmed steady state is allocation free.
	r.GatherInto(dst, sel)
	allocs := testing.AllocsPerRun(100, func() { r.GatherInto(dst, sel) })
	if allocs != 0 {
		t.Fatalf("warmed GatherInto allocates %.1f per run", allocs)
	}
}

func TestRelationCloneInto(t *testing.T) {
	r := sampleRel()
	dst := &Relation{}
	got := r.CloneInto(dst)
	if !reflect.DeepEqual(got.Col(0).Ints(), r.Col(0).Ints()) {
		t.Fatalf("CloneInto = %v, want %v", got, r)
	}
	got.Col(0).Set(0, vector.NewInt(99))
	if r.Col(0).Ints()[0] != 1 {
		t.Fatalf("CloneInto shares storage with source")
	}
}

func TestConcatInto(t *testing.T) {
	a := NewRelation([]string{"a"}, []*vector.Vector{vector.FromInts([]int64{1, 2})})
	b := NewRelation([]string{"b"}, []*vector.Vector{vector.FromStrs([]string{"x", "y"})})
	dst := &Relation{}
	got := ConcatInto(dst, a, b)
	want := Concat(a, b)
	if !reflect.DeepEqual(got.Names(), want.Names()) || got.NumCols() != want.NumCols() {
		t.Fatalf("ConcatInto = %v, want %v", got, want)
	}
	if got.Col(0) != a.Col(0) || got.Col(1) != b.Col(0) {
		t.Fatalf("ConcatInto must share columns, not copy")
	}
}

func TestReshape(t *testing.T) {
	r := &Relation{}
	r.Reshape([]string{"A", "b"}, []vector.Type{vector.Int, vector.Str})
	if !reflect.DeepEqual(r.Names(), []string{"a", "b"}) || r.Len() != 0 {
		t.Fatalf("Reshape: names %v len %d", r.Names(), r.Len())
	}
	r.AppendRow(vector.NewInt(1), vector.NewStr("s"))
	r.Reshape([]string{"x"}, []vector.Type{vector.Float})
	if r.NumCols() != 1 || r.Len() != 0 || r.Col(0).Kind() != vector.Float {
		t.Fatalf("Reshape did not re-schema: %v", r)
	}
}
