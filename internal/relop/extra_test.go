package relop

import (
	"reflect"
	"testing"

	"datacell/internal/vector"
)

func TestSelectRangeWithCandidates(t *testing.T) {
	v := vector.FromInts([]int64{0, 10, 20, 30, 40})
	got := SelectRange(v, vector.NewInt(10), vector.NewInt(40), true, true, []int32{0, 2, 4})
	if !reflect.DeepEqual(got, []int32{2, 4}) {
		t.Errorf("candidates: %v", got)
	}
	f := vector.FromFloats([]float64{1, 2, 3})
	got = SelectRange(f, vector.NewFloat(1.5), vector.NewFloat(2.5), true, true, []int32{0, 1})
	if !reflect.DeepEqual(got, []int32{1}) {
		t.Errorf("float candidates: %v", got)
	}
	s := vector.FromStrs([]string{"a", "b", "c"})
	got = SelectRange(s, vector.NewStr("a"), vector.NewStr("b"), false, true, []int32{0, 1, 2})
	if !reflect.DeepEqual(got, []int32{1}) {
		t.Errorf("str candidates: %v", got)
	}
}

func TestSelectPredTimestamps(t *testing.T) {
	v := vector.FromTimestamps([]int64{100, 200, 300})
	got := SelectPred(v, GE, vector.NewTimestampMicros(200), nil)
	if !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Errorf("timestamps: %v", got)
	}
}

func TestThetaJoinFloatsAndStrings(t *testing.T) {
	lf := vector.FromFloats([]float64{1.5, 3.5})
	rf := vector.FromFloats([]float64{2.0})
	lsel, rsel := ThetaJoin(lf, rf, GT)
	if len(lsel) != 1 || lsel[0] != 1 || rsel[0] != 0 {
		t.Errorf("float theta: %v %v", lsel, rsel)
	}
	ls := vector.FromStrs([]string{"a", "c"})
	rs := vector.FromStrs([]string{"b"})
	lsel, rsel = ThetaJoin(ls, rs, LT)
	if len(lsel) != 1 || lsel[0] != 0 {
		t.Errorf("str theta: %v %v", lsel, rsel)
	}
}

func TestHashJoinBools(t *testing.T) {
	l := vector.FromBools([]bool{true, false})
	r := vector.FromBools([]bool{true, true})
	lsel, rsel := HashJoin(l, r)
	if len(lsel) != 2 || lsel[0] != 0 || lsel[1] != 0 {
		t.Errorf("bool join: %v %v", lsel, rsel)
	}
}

func TestSemiAntiJoinFloats(t *testing.T) {
	l := vector.FromFloats([]float64{1.5, 2.5})
	r := vector.FromFloats([]float64{2.5})
	if got := SemiJoin(l, r); !reflect.DeepEqual(got, []int32{1}) {
		t.Errorf("semi floats: %v", got)
	}
	if got := AntiJoin(l, r); !reflect.DeepEqual(got, []int32{0}) {
		t.Errorf("anti floats: %v", got)
	}
}

func TestAggregateTimestampMinMax(t *testing.T) {
	v := vector.FromTimestamps([]int64{300, 100, 200})
	g := GroupBy(nil, 3)
	mn := Aggregate(AggMin, v, g)
	if mn.Kind() != vector.Timestamp || mn.Ints()[0] != 100 {
		t.Errorf("ts min: %v", mn)
	}
	mx := Aggregate(AggMax, v, g)
	if mx.Ints()[0] != 300 {
		t.Errorf("ts max: %v", mx)
	}
}

func TestGroupByFloatAndBoolKeys(t *testing.T) {
	f := vector.FromFloats([]float64{1.5, 2.5, 1.5})
	g := GroupBy([]*vector.Vector{f}, 3)
	if g.NumGroups() != 2 || g.GroupIDs[2] != 0 {
		t.Errorf("float keys: %+v", g)
	}
	b := vector.FromBools([]bool{true, false, true})
	g = GroupBy([]*vector.Vector{b}, 3)
	if g.NumGroups() != 2 {
		t.Errorf("bool keys: %+v", g)
	}
}

func TestAggregateAvgEmptyGroupIsNaN(t *testing.T) {
	// Degenerate: grouping over zero rows produces no groups; avg over a
	// sparse group must not divide by zero.
	v := vector.FromInts(nil)
	g := GroupBy(nil, 0)
	out := Aggregate(AggAvg, v, g)
	if out.Len() != 0 {
		t.Errorf("avg over empty: %v", out)
	}
}

func TestSortFloatsStringsBools(t *testing.T) {
	f := vector.FromFloats([]float64{2.5, 1.5})
	if perm := Sort([]SortKey{{Col: f}}, 2); perm[0] != 1 {
		t.Errorf("float sort: %v", perm)
	}
	s := vector.FromStrs([]string{"b", "a"})
	if perm := Sort([]SortKey{{Col: s}}, 2); perm[0] != 1 {
		t.Errorf("str sort: %v", perm)
	}
	b := vector.FromBools([]bool{true, false})
	if perm := Sort([]SortKey{{Col: b}}, 2); perm[0] != 1 {
		t.Errorf("bool sort: %v", perm)
	}
}
