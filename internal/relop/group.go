package relop

import (
	"math"

	"datacell/internal/vector"
)

// Grouping is the result of a GroupBy: every input tuple i is assigned the
// dense group id GroupIDs[i]; Repr[g] is the position of the first tuple of
// group g (used to materialise the key columns).
type Grouping struct {
	GroupIDs []int32
	Repr     []int32
}

// NumGroups returns the number of distinct groups.
func (g *Grouping) NumGroups() int { return len(g.Repr) }

// GroupBy computes a dense grouping over one or more aligned key columns.
// With no key columns every tuple falls into a single group 0 (global
// aggregate), provided n > 0.
func GroupBy(keys []*vector.Vector, n int) *Grouping {
	g := &Grouping{GroupIDs: make([]int32, n)}
	if len(keys) == 0 {
		if n > 0 {
			g.Repr = []int32{0}
		}
		return g
	}
	if len(keys) == 1 {
		return groupBySingle(keys[0], n)
	}
	ht := make(map[string]int32, 64)
	for i := 0; i < n; i++ {
		k := compositeKey(keys, i)
		id, ok := ht[k]
		if !ok {
			id = int32(len(g.Repr))
			ht[k] = id
			g.Repr = append(g.Repr, int32(i))
		}
		g.GroupIDs[i] = id
	}
	return g
}

func groupBySingle(key *vector.Vector, n int) *Grouping {
	g := &Grouping{GroupIDs: make([]int32, n)}
	switch key.Kind() {
	case vector.Int, vector.Timestamp:
		ht := make(map[int64]int32, 64)
		for i, k := range key.Ints() {
			id, ok := ht[k]
			if !ok {
				id = int32(len(g.Repr))
				ht[k] = id
				g.Repr = append(g.Repr, int32(i))
			}
			g.GroupIDs[i] = id
		}
	case vector.Str:
		ht := make(map[string]int32, 64)
		for i, k := range key.Strs() {
			id, ok := ht[k]
			if !ok {
				id = int32(len(g.Repr))
				ht[k] = id
				g.Repr = append(g.Repr, int32(i))
			}
			g.GroupIDs[i] = id
		}
	case vector.Float:
		ht := make(map[float64]int32, 64)
		for i, k := range key.Floats() {
			id, ok := ht[k]
			if !ok {
				id = int32(len(g.Repr))
				ht[k] = id
				g.Repr = append(g.Repr, int32(i))
			}
			g.GroupIDs[i] = id
		}
	case vector.Bool:
		ht := map[bool]int32{}
		for i, k := range key.Bools() {
			id, ok := ht[k]
			if !ok {
				id = int32(len(g.Repr))
				ht[k] = id
				g.Repr = append(g.Repr, int32(i))
			}
			g.GroupIDs[i] = id
		}
	}
	return g
}

// AggKind selects the aggregate function.
type AggKind uint8

// Aggregate functions.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
	// AggAvgSum is the mergeable numerator of AVG: the per-group float64
	// sum accumulated exactly as AggAvg accumulates it, without the final
	// division. Partial-aggregate plans pair it with an AggCount column so
	// a combining merge can re-derive the average; it is never produced by
	// the SQL parser.
	AggAvgSum
)

// String returns the SQL name of the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvgSum:
		return "avg_sum"
	}
	return "?"
}

// Mergeable reports whether per-partition partial states of this aggregate
// combine losslessly: counts and sums add, min/max compare, and avg is
// decomposed into AggAvgSum + AggCount first. (Distinct aggregates are not
// mergeable without shipping whole value sets.)
func (a AggKind) Mergeable() bool {
	switch a {
	case AggCount, AggSum, AggAvg, AggMin, AggMax, AggAvgSum:
		return true
	}
	return false
}

// MergeKind returns the aggregate a combining merge applies to partial
// states of kind a: partial counts and sums add up; min/max stay min/max.
// AVG must be decomposed (AggAvgSum + AggCount) before partials exist, so
// asking for its merge kind is a programming error.
func (a AggKind) MergeKind() AggKind {
	switch a {
	case AggCount, AggSum, AggAvgSum:
		return AggSum
	case AggMin, AggMax:
		return a
	}
	panic("relop: aggregate has no merge kind: " + a.String())
}

// Aggregate computes the aggregate over v per group and returns one value
// per group in group-id order. For AggCount, v may be nil (count(*)).
// Sum/avg over Int produce Int/Float respectively; min/max preserve the
// input type.
func Aggregate(kind AggKind, v *vector.Vector, g *Grouping) *vector.Vector {
	ng := g.NumGroups()
	switch kind {
	case AggCount:
		counts := make([]int64, ng)
		for _, id := range g.GroupIDs {
			counts[id]++
		}
		return vector.FromInts(counts)
	case AggSum:
		if v.Kind() == vector.Float {
			sums := make([]float64, ng)
			for i, x := range v.Floats() {
				sums[g.GroupIDs[i]] += x
			}
			return vector.FromFloats(sums)
		}
		sums := make([]int64, ng)
		for i, x := range v.Ints() {
			sums[g.GroupIDs[i]] += x
		}
		return vector.FromInts(sums)
	case AggAvg:
		sums := make([]float64, ng)
		counts := make([]int64, ng)
		if v.Kind() == vector.Float {
			for i, x := range v.Floats() {
				sums[g.GroupIDs[i]] += x
				counts[g.GroupIDs[i]]++
			}
		} else {
			for i, x := range v.Ints() {
				sums[g.GroupIDs[i]] += float64(x)
				counts[g.GroupIDs[i]]++
			}
		}
		for i := range sums {
			if counts[i] > 0 {
				sums[i] /= float64(counts[i])
			} else {
				sums[i] = math.NaN()
			}
		}
		return vector.FromFloats(sums)
	case AggAvgSum:
		sums := make([]float64, ng)
		if v.Kind() == vector.Float {
			for i, x := range v.Floats() {
				sums[g.GroupIDs[i]] += x
			}
		} else {
			for i, x := range v.Ints() {
				sums[g.GroupIDs[i]] += float64(x)
			}
		}
		return vector.FromFloats(sums)
	case AggMin, AggMax:
		return aggMinMax(kind, v, g)
	}
	panic("relop: unknown aggregate")
}

// CombineAvg finalises a decomposed average: sums holds per-group merged
// AggAvgSum numerators (Float), counts the merged AggCount denominators
// (Int). Division order matches single-pass AggAvg exactly, so when every
// tuple of a group was aggregated by one partition (hash routing) the
// result is bit-identical to the unpartitioned plan.
func CombineAvg(sums, counts *vector.Vector) *vector.Vector {
	out := make([]float64, sums.Len())
	s, c := sums.Floats(), counts.Ints()
	for i := range out {
		if c[i] > 0 {
			out[i] = s[i] / float64(c[i])
		} else {
			out[i] = math.NaN()
		}
	}
	return vector.FromFloats(out)
}

func aggMinMax(kind AggKind, v *vector.Vector, g *Grouping) *vector.Vector {
	ng := g.NumGroups()
	better := func(c int) bool {
		if kind == AggMin {
			return c < 0
		}
		return c > 0
	}
	switch v.Kind() {
	case vector.Int, vector.Timestamp:
		out := make([]int64, ng)
		seen := make([]bool, ng)
		for i, x := range v.Ints() {
			id := g.GroupIDs[i]
			if !seen[id] || (kind == AggMin && x < out[id]) || (kind == AggMax && x > out[id]) {
				out[id] = x
				seen[id] = true
			}
		}
		if v.Kind() == vector.Timestamp {
			return vector.FromTimestamps(out)
		}
		return vector.FromInts(out)
	case vector.Float:
		out := make([]float64, ng)
		seen := make([]bool, ng)
		for i, x := range v.Floats() {
			id := g.GroupIDs[i]
			if !seen[id] || (kind == AggMin && x < out[id]) || (kind == AggMax && x > out[id]) {
				out[id] = x
				seen[id] = true
			}
		}
		return vector.FromFloats(out)
	default:
		out := vector.New(v.Kind(), ng)
		vals := make([]vector.Value, ng)
		seen := make([]bool, ng)
		for i := 0; i < v.Len(); i++ {
			id := g.GroupIDs[i]
			x := v.Get(i)
			if !seen[id] || better(x.Compare(vals[id])) {
				vals[id] = x
				seen[id] = true
			}
		}
		for _, val := range vals {
			out.Append(val)
		}
		return out
	}
}

// Distinct returns, in first-occurrence order, one position per distinct
// composite key of the given aligned columns.
func Distinct(keys []*vector.Vector, n int) []int32 {
	g := GroupBy(keys, n)
	return g.Repr
}
