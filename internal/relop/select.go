// Package relop provides the vectorized relational operators of the
// column-store kernel: selections producing candidate lists, positional
// projection, hash and theta joins, grouped aggregation, sorting, top-N and
// distinct. Operators work column-at-a-time over vector.Vector values,
// optionally restricted by a candidate list of positions, mirroring the
// MonetDB execution primitives the DataCell reuses.
package relop

import (
	"datacell/internal/vector"
)

// CmpOp is a comparison operator code used by predicate selections and
// theta joins.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// Negate returns the complement operator (e.g. LT -> GE).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	return op
}

func cmpHolds(op CmpOp, c int) bool {
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	}
	return false
}

// SelectPred returns the positions in v (restricted to cand when non-nil)
// whose value compares to val under op. The result is sorted ascending.
func SelectPred(v *vector.Vector, op CmpOp, val vector.Value, cand []int32) []int32 {
	return SelectPredInto(make([]int32, 0, 64), v, op, val, cand)
}

// SelectPredInto is SelectPred appending into dst (overwritten from
// length 0, capacity retained); it returns the possibly grown dst. dst
// must not alias cand.
func SelectPredInto(dst []int32, v *vector.Vector, op CmpOp, val vector.Value, cand []int32) []int32 {
	out := dst[:0]
	switch v.Kind() {
	case vector.Int, vector.Timestamp:
		x := val.AsInt()
		s := v.Ints()
		if cand == nil {
			for i, e := range s {
				if intHolds(op, e, x) {
					out = append(out, int32(i))
				}
			}
		} else {
			for _, i := range cand {
				if intHolds(op, s[i], x) {
					out = append(out, i)
				}
			}
		}
	case vector.Float:
		x := val.AsFloat()
		s := v.Floats()
		if cand == nil {
			for i, e := range s {
				if floatHolds(op, e, x) {
					out = append(out, int32(i))
				}
			}
		} else {
			for _, i := range cand {
				if floatHolds(op, s[i], x) {
					out = append(out, i)
				}
			}
		}
	case vector.Bool:
		s := v.Bools()
		if cand == nil {
			for i, e := range s {
				if cmpHolds(op, cmpBool(e, val.B)) {
					out = append(out, int32(i))
				}
			}
		} else {
			for _, i := range cand {
				if cmpHolds(op, cmpBool(s[i], val.B)) {
					out = append(out, i)
				}
			}
		}
	case vector.Str:
		s := v.Strs()
		if cand == nil {
			for i, e := range s {
				if cmpHolds(op, cmpStr(e, val.S)) {
					out = append(out, int32(i))
				}
			}
		} else {
			for _, i := range cand {
				if cmpHolds(op, cmpStr(s[i], val.S)) {
					out = append(out, i)
				}
			}
		}
	}
	return out
}

func intHolds(op CmpOp, a, b int64) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	default:
		return a >= b
	}
}

func floatHolds(op CmpOp, a, b float64) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	default:
		return a >= b
	}
}

func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case b:
		return -1
	default:
		return 1
	}
}

func cmpStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// SelectRange returns the positions whose value lies between lo and hi.
// loIncl/hiIncl control bound inclusivity. This is the MonetDB
// select(b, lo, hi) primitive used by the paper's example factory.
func SelectRange(v *vector.Vector, lo, hi vector.Value, loIncl, hiIncl bool, cand []int32) []int32 {
	return SelectRangeInto(make([]int32, 0, 64), v, lo, hi, loIncl, hiIncl, cand)
}

// SelectRangeInto is SelectRange appending into dst (overwritten from
// length 0, capacity retained); it returns the possibly grown dst. dst
// must not alias cand.
func SelectRangeInto(dst []int32, v *vector.Vector, lo, hi vector.Value, loIncl, hiIncl bool, cand []int32) []int32 {
	out := dst[:0]
	switch v.Kind() {
	case vector.Int, vector.Timestamp:
		l, h := lo.AsInt(), hi.AsInt()
		s := v.Ints()
		test := func(e int64) bool {
			if e < l || (e == l && !loIncl) {
				return false
			}
			if e > h || (e == h && !hiIncl) {
				return false
			}
			return true
		}
		if cand == nil {
			for i, e := range s {
				if test(e) {
					out = append(out, int32(i))
				}
			}
		} else {
			for _, i := range cand {
				if test(s[i]) {
					out = append(out, i)
				}
			}
		}
	case vector.Float:
		l, h := lo.AsFloat(), hi.AsFloat()
		s := v.Floats()
		test := func(e float64) bool {
			if e < l || (e == l && !loIncl) {
				return false
			}
			if e > h || (e == h && !hiIncl) {
				return false
			}
			return true
		}
		if cand == nil {
			for i, e := range s {
				if test(e) {
					out = append(out, int32(i))
				}
			}
		} else {
			for _, i := range cand {
				if test(s[i]) {
					out = append(out, i)
				}
			}
		}
	default:
		lo0, hi0 := lo, hi
		test := func(e vector.Value) bool {
			cl := e.Compare(lo0)
			if cl < 0 || (cl == 0 && !loIncl) {
				return false
			}
			ch := e.Compare(hi0)
			if ch > 0 || (ch == 0 && !hiIncl) {
				return false
			}
			return true
		}
		n := v.Len()
		if cand == nil {
			for i := 0; i < n; i++ {
				if test(v.Get(i)) {
					out = append(out, int32(i))
				}
			}
		} else {
			for _, i := range cand {
				if test(v.Get(int(i))) {
					out = append(out, i)
				}
			}
		}
	}
	return out
}

// SelectBool returns the positions where the bool vector is true.
func SelectBool(v *vector.Vector, cand []int32) []int32 {
	return SelectBoolInto(make([]int32, 0, 64), v, cand)
}

// SelectBoolInto is SelectBool appending into dst (overwritten from
// length 0, capacity retained); it returns the possibly grown dst. dst
// must not alias cand.
func SelectBoolInto(dst []int32, v *vector.Vector, cand []int32) []int32 {
	out := dst[:0]
	s := v.Bools()
	if cand == nil {
		for i, b := range s {
			if b {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range cand {
		if s[i] {
			out = append(out, i)
		}
	}
	return out
}

// CandAll returns the full candidate list [0, n).
func CandAll(n int) []int32 {
	return CandAllInto(make([]int32, 0, n), n)
}

// CandAllInto is CandAll writing into dst (overwritten from length 0,
// capacity retained); it returns the possibly grown dst.
func CandAllInto(dst []int32, n int) []int32 {
	out := dst[:0]
	for i := 0; i < n; i++ {
		out = append(out, int32(i))
	}
	return out
}

// CandOrInto is CandOr appending into dst (overwritten from length 0,
// capacity retained); dst must alias neither input.
func CandOrInto(dst, a, b []int32) []int32 {
	out := dst[:0]
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// CandNotInto is CandNot appending into dst (overwritten from length 0,
// capacity retained); dst must not alias a.
func CandNotInto(dst, a []int32, n int) []int32 {
	out := dst[:0]
	j := 0
	for i := int32(0); i < int32(n); i++ {
		if j < len(a) && a[j] == i {
			j++
			continue
		}
		out = append(out, i)
	}
	return out
}

// CandAnd intersects two ascending candidate lists.
func CandAnd(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// CandOr unions two ascending candidate lists.
func CandOr(a, b []int32) []int32 {
	return CandOrInto(make([]int32, 0, len(a)+len(b)), a, b)
}

// CandNot complements an ascending candidate list with respect to domain
// [0, n).
func CandNot(a []int32, n int) []int32 {
	return CandNotInto(make([]int32, 0, n-len(a)), a, n)
}
