package relop

import (
	"math"
	"math/rand"
	"testing"

	"datacell/internal/vector"
)

// --- SortInto / TopNInto / MergeRuns ----------------------------------------

func randKeys(rng *rand.Rand, n int) []SortKey {
	a := make([]int64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.Int63n(8) // few distinct values: exercises stability
		b[i] = float64(rng.Int63n(5))
	}
	return []SortKey{
		{Col: vector.FromInts(a), Desc: false},
		{Col: vector.FromFloats(b), Desc: true},
	}
}

func TestSortIntoMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(200)
		keys := randKeys(rng, n)
		want := Sort(keys, n)
		buf := make([]int32, 0, 4) // deliberately too small: must grow
		got := SortInto(buf, keys, n)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pos %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestTopNIntoMatchesSortThenTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(150)
		keys := randKeys(rng, n)
		limit := rng.Intn(20) - 1 // includes -1 (unbounded)
		want := TopN(Sort(keys, n), limit)
		got := TopNInto(nil, keys, n, limit)
		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d limit=%d): len %d vs %d", trial, n, limit, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d limit=%d): pos %d: %d vs %d", trial, n, limit, i, got[i], want[i])
			}
		}
	}
}

func TestMergeRunsMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		// Build k sorted runs over one concatenated key column.
		k := 1 + rng.Intn(12) // crosses the fixed-size head buffers (8)
		var vals []int64
		bounds := []int32{0}
		for r := 0; r < k; r++ {
			m := rng.Intn(30)
			run := make([]int64, m)
			for i := range run {
				run[i] = rng.Int63n(10)
			}
			// Each run must be key-sorted.
			for i := 1; i < m; i++ {
				for j := i; j > 0 && run[j] < run[j-1]; j-- {
					run[j], run[j-1] = run[j-1], run[j]
				}
			}
			vals = append(vals, run...)
			bounds = append(bounds, int32(len(vals)))
		}
		keys := []SortKey{{Col: vector.FromInts(vals)}}
		for r := 0; r < k; r++ {
			if !IsSortedBy(keys, int(bounds[r]), int(bounds[r+1])) {
				t.Fatalf("trial %d: run %d not sorted", trial, r)
			}
		}
		got := MergeRuns(nil, keys, bounds)
		if len(got) != len(vals) {
			t.Fatalf("trial %d: merged %d of %d positions", trial, len(got), len(vals))
		}
		// Merged order must be key-sorted, a permutation, and tie-broken by
		// run order (positions with equal keys appear in ascending-run,
		// then ascending-position order — which for runs laid out
		// back-to-back is simply ascending position).
		seen := make([]bool, len(vals))
		for i, p := range got {
			if seen[p] {
				t.Fatalf("trial %d: position %d emitted twice", trial, p)
			}
			seen[p] = true
			if i > 0 {
				prev, cur := got[i-1], p
				if vals[prev] > vals[cur] {
					t.Fatalf("trial %d: out of order at %d", trial, i)
				}
				if vals[prev] == vals[cur] && prev > cur {
					t.Fatalf("trial %d: tie not broken by concatenation order at %d", trial, i)
				}
			}
		}
	}
}

// TestSortIntoSteadyStateAllocs pins the firing-path budget: sorting into a
// reused permutation buffer must not allocate per call beyond the bounded
// comparator closure (PR 3 discipline: arenas absorb the steady state).
func TestSortIntoSteadyStateAllocs(t *testing.T) {
	const n = 2048
	rng := rand.New(rand.NewSource(4))
	keys := randKeys(rng, n)
	perm := make([]int32, n)
	for i := 0; i < 3; i++ {
		perm = SortInto(perm, keys, n) // warm
	}
	allocs := testing.AllocsPerRun(50, func() {
		perm = SortInto(perm, keys, n)
	})
	if allocs > 4 {
		t.Fatalf("SortInto allocates %.1f per run with a warm buffer; budget is 4", allocs)
	}
	allocs = testing.AllocsPerRun(50, func() {
		perm = TopNInto(perm, keys, n, 16)
	})
	if allocs > 4 {
		t.Fatalf("TopNInto allocates %.1f per run with a warm buffer; budget is 4", allocs)
	}
}

func TestMergeRunsSteadyStateAllocs(t *testing.T) {
	const runs, per = 4, 512
	vals := make([]int64, 0, runs*per)
	bounds := []int32{0}
	for r := 0; r < runs; r++ {
		for i := 0; i < per; i++ {
			vals = append(vals, int64(i))
		}
		bounds = append(bounds, int32(len(vals)))
	}
	keys := []SortKey{{Col: vector.FromInts(vals)}}
	perm := make([]int32, len(vals))
	for i := 0; i < 3; i++ {
		perm = MergeRuns(perm, keys, bounds)
	}
	allocs := testing.AllocsPerRun(50, func() {
		perm = MergeRuns(perm, keys, bounds)
	})
	if allocs > 4 {
		t.Fatalf("MergeRuns allocates %.1f per run with a warm buffer; budget is 4", allocs)
	}
}

// --- AVG / SUM decomposition ------------------------------------------------

// combinePartials simulates the two-phase pipeline over explicit partitions:
// each partition computes (key, avg_sum, count, sum) partials, the combiner
// concatenates them in partition order, re-groups by key and merges.
func combinePartials(t *testing.T, partKeys [][]int64, partVals []*vector.Vector) (keys []int64, avg, sum *vector.Vector) {
	t.Helper()
	var mergedKeys []int64
	var avgSums []float64
	var counts, sums []int64
	var sumFs []float64
	isFloat := false
	for p := range partKeys {
		n := len(partKeys[p])
		if n == 0 {
			continue // empty partition contributes no partial rows
		}
		kv := vector.FromInts(partKeys[p])
		g := GroupBy([]*vector.Vector{kv}, n)
		keyRepr := kv.Gather(g.Repr)
		as := Aggregate(AggAvgSum, partVals[p], g)
		ct := Aggregate(AggCount, nil, g)
		sm := Aggregate(AggSum, partVals[p], g)
		for i := 0; i < keyRepr.Len(); i++ {
			mergedKeys = append(mergedKeys, keyRepr.Ints()[i])
			avgSums = append(avgSums, as.Floats()[i])
			counts = append(counts, ct.Ints()[i])
			if sm.Kind() == vector.Float {
				isFloat = true
				sumFs = append(sumFs, sm.Floats()[i])
			} else {
				sums = append(sums, sm.Ints()[i])
			}
		}
	}
	mk := vector.FromInts(mergedKeys)
	g2 := GroupBy([]*vector.Vector{mk}, len(mergedKeys))
	mSums := Aggregate(AggSum, vector.FromFloats(avgSums), g2)
	mCounts := Aggregate(AggSum, vector.FromInts(counts), g2)
	var mTotal *vector.Vector
	if isFloat {
		mTotal = Aggregate(AggSum, vector.FromFloats(sumFs), g2)
	} else {
		mTotal = Aggregate(AggSum, vector.FromInts(sums), g2)
	}
	return mk.Gather(g2.Repr).Ints(), CombineAvg(mSums, mCounts), mTotal
}

// singlePass aggregates the concatenation of the partitions in one pass.
func singlePass(partKeys [][]int64, partVals []*vector.Vector) (map[int64]float64, map[int64]vector.Value) {
	var allKeys []int64
	merged := vector.New(partVals[0].Kind(), 0)
	for p := range partKeys {
		allKeys = append(allKeys, partKeys[p]...)
		merged.AppendVector(partVals[p])
	}
	kv := vector.FromInts(allKeys)
	g := GroupBy([]*vector.Vector{kv}, len(allKeys))
	avg := Aggregate(AggAvg, merged, g)
	sum := Aggregate(AggSum, merged, g)
	wantAvg := map[int64]float64{}
	wantSum := map[int64]vector.Value{}
	for i, pos := range g.Repr {
		wantAvg[kv.Ints()[pos]] = avg.Floats()[i]
		wantSum[kv.Ints()[pos]] = sum.Get(i)
	}
	return wantAvg, wantSum
}

func checkDecomposition(t *testing.T, partKeys [][]int64, partVals []*vector.Vector) {
	t.Helper()
	wantAvg, wantSum := singlePass(partKeys, partVals)
	keys, avg, sum := combinePartials(t, partKeys, partVals)
	if len(keys) != len(wantAvg) {
		t.Fatalf("combine produced %d groups, single pass %d", len(keys), len(wantAvg))
	}
	for i, k := range keys {
		got, want := avg.Floats()[i], wantAvg[k]
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("group %d: combined avg %v != single-pass %v", k, got, want)
		}
		if gs, ws := sum.Get(i), wantSum[k]; gs.Compare(ws) != 0 {
			t.Errorf("group %d: combined sum %v != single-pass %v", k, gs, ws)
		}
	}
}

func TestAvgDecompositionGroupInOnePartition(t *testing.T) {
	// Hash routing: every group lives in exactly one partition; the combine
	// must be bit-identical to single-pass AVG even for floats.
	checkDecomposition(t,
		[][]int64{{1, 1, 1}, {2, 2}, {3}},
		[]*vector.Vector{
			vector.FromFloats([]float64{0.1, 0.2, 0.7}),
			vector.FromFloats([]float64{1e17, 3}),
			vector.FromFloats([]float64{-0.0}),
		})
}

func TestAvgDecompositionEmptyPartitions(t *testing.T) {
	checkDecomposition(t,
		[][]int64{{}, {5, 5, 6}, {}, {6}},
		[]*vector.Vector{
			vector.FromInts(nil),
			vector.FromInts([]int64{10, 20, 7}),
			vector.FromInts(nil),
			vector.FromInts([]int64{9}),
		})
}

func TestAvgDecompositionIntOverflowSums(t *testing.T) {
	// int64 SUM wraps; wrapping addition is associative, so partial sums
	// merged by AggSum must wrap to the same value as a single pass.
	big := int64(math.MaxInt64) - 3
	checkDecomposition(t,
		[][]int64{{1, 1}, {1, 1}},
		[]*vector.Vector{
			vector.FromInts([]int64{big, big}),
			vector.FromInts([]int64{big, 17}),
		})
}

func TestAvgDecompositionIntColumnsSplitGroups(t *testing.T) {
	// Round-robin routing splits groups across partitions. Integer inputs
	// keep float64 numerators exact, so the combine is still bit-identical.
	rng := rand.New(rand.NewSource(9))
	parts := make([][]int64, 4)
	vals := make([]*vector.Vector, 4)
	for p := range parts {
		n := rng.Intn(50)
		ks := make([]int64, n)
		vs := make([]int64, n)
		for i := range ks {
			ks[i] = rng.Int63n(6)
			vs[i] = rng.Int63n(1_000_000)
		}
		parts[p] = ks
		vals[p] = vector.FromInts(vs)
	}
	checkDecomposition(t, parts, vals)
}

func TestAggKindMergeability(t *testing.T) {
	for _, k := range []AggKind{AggCount, AggSum, AggAvg, AggMin, AggMax, AggAvgSum} {
		if !k.Mergeable() {
			t.Errorf("%s should be mergeable", k)
		}
	}
	if AggCount.MergeKind() != AggSum || AggAvgSum.MergeKind() != AggSum {
		t.Error("counts and avg numerators must merge by summation")
	}
	if AggMin.MergeKind() != AggMin || AggMax.MergeKind() != AggMax {
		t.Error("min/max must merge by min/max")
	}
}
