package relop

import (
	"sort"

	"datacell/internal/vector"
)

// SortKey describes one ordering column for Sort.
type SortKey struct {
	Col  *vector.Vector
	Desc bool
}

// Sort returns the permutation of positions [0, n) that orders the input by
// the given keys (stable, so equal keys keep arrival order — important for
// the temporal-order semantics of "order by tag" windows).
func Sort(keys []SortKey, n int) []int32 {
	perm := CandAll(n)
	if len(keys) == 0 {
		return perm
	}
	sort.SliceStable(perm, func(a, b int) bool {
		i, j := int(perm[a]), int(perm[b])
		for _, k := range keys {
			c := comparePos(k.Col, i, j)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return perm
}

func comparePos(v *vector.Vector, i, j int) int {
	switch v.Kind() {
	case vector.Int, vector.Timestamp:
		s := v.Ints()
		switch {
		case s[i] < s[j]:
			return -1
		case s[i] > s[j]:
			return 1
		default:
			return 0
		}
	case vector.Float:
		s := v.Floats()
		switch {
		case s[i] < s[j]:
			return -1
		case s[i] > s[j]:
			return 1
		default:
			return 0
		}
	case vector.Str:
		return cmpStr(v.Strs()[i], v.Strs()[j])
	case vector.Bool:
		return cmpBool(v.Bools()[i], v.Bools()[j])
	}
	return 0
}

// TopN truncates an ordering permutation to its first n entries, the
// implementation of the DataCell "top n" result-set constraint.
func TopN(perm []int32, n int) []int32 {
	if n < 0 || n > len(perm) {
		n = len(perm)
	}
	return perm[:n]
}

// IsSorted reports whether v is non-decreasing; used by tests and the
// heartbeat machinery.
func IsSorted(v *vector.Vector) bool {
	for i := 1; i < v.Len(); i++ {
		if comparePos(v, i-1, i) > 0 {
			return false
		}
	}
	return true
}
