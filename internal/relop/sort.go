package relop

import (
	"slices"

	"datacell/internal/vector"
)

// SortKey describes one ordering column for Sort.
type SortKey struct {
	Col  *vector.Vector
	Desc bool
}

// Sort returns the permutation of positions [0, n) that orders the input by
// the given keys (stable, so equal keys keep arrival order — important for
// the temporal-order semantics of "order by tag" windows).
func Sort(keys []SortKey, n int) []int32 {
	return SortInto(nil, keys, n)
}

// SortInto is the buffer-reusing form of Sort: it fills perm with the
// positions [0, n) (growing it only when its capacity is insufficient),
// sorts it stably by the keys and returns it. The firing hot path hands in
// an arena-owned permutation so steady-state sorting stays allocation-free.
func SortInto(perm []int32, keys []SortKey, n int) []int32 {
	perm = permAll(perm, n)
	if len(keys) == 0 {
		return perm
	}
	slices.SortStableFunc(perm, func(i, j int32) int {
		return compareKeys(keys, int(i), int(j))
	})
	return perm
}

// permAll resizes perm to n entries reusing its backing array and fills it
// with the identity permutation.
func permAll(perm []int32, n int) []int32 {
	if cap(perm) < n {
		perm = make([]int32, n)
	}
	perm = perm[:n]
	for i := range perm {
		perm[i] = int32(i)
	}
	return perm
}

// compareKeys orders two positions by the key list, honouring Desc.
func compareKeys(keys []SortKey, i, j int) int {
	for _, k := range keys {
		c := comparePos(k.Col, i, j)
		if c == 0 {
			continue
		}
		if k.Desc {
			return -c
		}
		return c
	}
	return 0
}

func comparePos(v *vector.Vector, i, j int) int {
	switch v.Kind() {
	case vector.Int, vector.Timestamp:
		s := v.Ints()
		switch {
		case s[i] < s[j]:
			return -1
		case s[i] > s[j]:
			return 1
		default:
			return 0
		}
	case vector.Float:
		s := v.Floats()
		switch {
		case s[i] < s[j]:
			return -1
		case s[i] > s[j]:
			return 1
		default:
			return 0
		}
	case vector.Str:
		return cmpStr(v.Strs()[i], v.Strs()[j])
	case vector.Bool:
		return cmpBool(v.Bools()[i], v.Bools()[j])
	}
	return 0
}

// TopN truncates an ordering permutation to its first n entries, the
// implementation of the DataCell "top n" result-set constraint.
func TopN(perm []int32, n int) []int32 {
	if n < 0 || n > len(perm) {
		n = len(perm)
	}
	return perm[:n]
}

// TopNInto computes the stable top-limit permutation of positions [0, n)
// under the keys, reusing perm's backing array. Instead of a full sort it
// keeps a bounded max-heap of the current best `limit` positions (ordered
// by key, then arrival position, so the result equals SortInto + TopN),
// which is the per-partition state a partial top-n clone maintains between
// combines. limit < 0 or limit >= n degenerates to a full stable sort.
func TopNInto(perm []int32, keys []SortKey, n, limit int) []int32 {
	if limit < 0 || limit >= n {
		return TopN(SortInto(perm, keys, n), limit)
	}
	if limit == 0 {
		return permAll(perm, 0)
	}
	// less is a total order (position breaks ties), so the selection is
	// stable by construction.
	less := func(i, j int32) bool {
		if c := compareKeys(keys, int(i), int(j)); c != 0 {
			return c < 0
		}
		return i < j
	}
	if cap(perm) < limit {
		perm = make([]int32, limit)
	}
	perm = perm[:0]
	siftDown := func(h []int32, i int) {
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(h) && less(h[big], h[l]) {
				big = l
			}
			if r < len(h) && less(h[big], h[r]) {
				big = r
			}
			if big == i {
				return
			}
			h[i], h[big] = h[big], h[i]
			i = big
		}
	}
	for i := 0; i < n; i++ {
		p := int32(i)
		if len(perm) < limit {
			perm = append(perm, p)
			// Sift up.
			for c := len(perm) - 1; c > 0; {
				par := (c - 1) / 2
				if !less(perm[par], perm[c]) {
					break
				}
				perm[par], perm[c] = perm[c], perm[par]
				c = par
			}
			continue
		}
		if less(p, perm[0]) {
			perm[0] = p
			siftDown(perm, 0)
		}
	}
	// Heap-sort the survivors into ascending (key, position) order.
	for end := len(perm) - 1; end > 0; end-- {
		perm[0], perm[end] = perm[end], perm[0]
		h := perm[:end]
		siftDown(h, 0)
	}
	return perm
}

// MergeRuns merges k key-sorted runs of the positions [0, n) into one
// ordering permutation, reusing perm's backing array. bounds holds k+1
// ascending offsets: run i spans positions [bounds[i], bounds[i+1]). The
// merge drives a min-heap of run heads (the "heap of heaps" a combining
// merge emitter uses over per-partition sorted partials), breaking key ties
// by run index and then position, so concatenation order decides ties
// deterministically. Each run must already be sorted by the keys.
func MergeRuns(perm []int32, keys []SortKey, bounds []int32) []int32 {
	if len(bounds) < 2 {
		return permAll(perm, 0)
	}
	n := int(bounds[len(bounds)-1])
	if cap(perm) < n {
		perm = make([]int32, n)
	}
	perm = perm[:0]
	// heads[i] is run i's next unmerged position; heap holds run indices.
	var headsBuf [8]int32
	var heapBuf [8]int32
	k := len(bounds) - 1
	heads := headsBuf[:0]
	if k > len(headsBuf) {
		heads = make([]int32, 0, k)
	}
	heap := heapBuf[:0]
	if k > len(heapBuf) {
		heap = make([]int32, 0, k)
	}
	less := func(a, b int32) bool {
		if c := compareKeys(keys, int(heads[a]), int(heads[b])); c != 0 {
			return c < 0
		}
		return a < b
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && less(heap[l], heap[small]) {
				small = l
			}
			if r < len(heap) && less(heap[r], heap[small]) {
				small = r
			}
			if small == i {
				return
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
	}
	for i := 0; i < k; i++ {
		heads = append(heads, bounds[i])
		if bounds[i] < bounds[i+1] {
			heap = append(heap, int32(i))
			for c := len(heap) - 1; c > 0; {
				par := (c - 1) / 2
				if !less(heap[c], heap[par]) {
					break
				}
				heap[par], heap[c] = heap[c], heap[par]
				c = par
			}
		}
	}
	for len(heap) > 0 {
		run := heap[0]
		perm = append(perm, heads[run])
		heads[run]++
		if heads[run] >= bounds[run+1] {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown(0)
	}
	return perm
}

// IsSortedBy reports whether the positions [lo, hi) are already in key
// order; combining merges use it to take the k-way-merge fast path only
// when each staged partial is a single sorted run.
func IsSortedBy(keys []SortKey, lo, hi int) bool {
	for i := lo + 1; i < hi; i++ {
		if compareKeys(keys, i-1, i) > 0 {
			return false
		}
	}
	return true
}

// IsSorted reports whether v is non-decreasing; used by tests and the
// heartbeat machinery.
func IsSorted(v *vector.Vector) bool {
	for i := 1; i < v.Len(); i++ {
		if comparePos(v, i-1, i) > 0 {
			return false
		}
	}
	return true
}
