package relop

import (
	"datacell/internal/vector"
)

// HashJoin computes the equi-join of two key columns and returns the aligned
// position lists (lsel[i], rsel[i]) of matching pairs. The build side is the
// smaller input. Output pairs are ordered by left position, preserving the
// tuple order of the probe side so downstream order-preserving operators keep
// working.
func HashJoin(l, r *vector.Vector) (lsel, rsel []int32) {
	// Build on the right, probe the left, so output is left-ordered.
	switch l.Kind() {
	case vector.Int, vector.Timestamp:
		return hashJoinInts(l.Ints(), r.Ints())
	case vector.Float:
		ht := make(map[float64][]int32, r.Len())
		for i, k := range r.Floats() {
			ht[k] = append(ht[k], int32(i))
		}
		for i, k := range l.Floats() {
			for _, j := range ht[k] {
				lsel = append(lsel, int32(i))
				rsel = append(rsel, j)
			}
		}
		return lsel, rsel
	case vector.Str:
		ht := make(map[string][]int32, r.Len())
		for i, k := range r.Strs() {
			ht[k] = append(ht[k], int32(i))
		}
		for i, k := range l.Strs() {
			for _, j := range ht[k] {
				lsel = append(lsel, int32(i))
				rsel = append(rsel, j)
			}
		}
		return lsel, rsel
	case vector.Bool:
		var ht [2][]int32
		for i, k := range r.Bools() {
			b := 0
			if k {
				b = 1
			}
			ht[b] = append(ht[b], int32(i))
		}
		for i, k := range l.Bools() {
			b := 0
			if k {
				b = 1
			}
			for _, j := range ht[b] {
				lsel = append(lsel, int32(i))
				rsel = append(rsel, j)
			}
		}
		return lsel, rsel
	}
	return nil, nil
}

func hashJoinInts(l, r []int64) (lsel, rsel []int32) {
	ht := make(map[int64][]int32, len(r))
	for i, k := range r {
		ht[k] = append(ht[k], int32(i))
	}
	lsel = make([]int32, 0, len(l))
	rsel = make([]int32, 0, len(l))
	for i, k := range l {
		for _, j := range ht[k] {
			lsel = append(lsel, int32(i))
			rsel = append(rsel, j)
		}
	}
	return lsel, rsel
}

// HashJoinMulti computes the equi-join over composite keys: lkeys[k] joins
// rkeys[k] for every k. All key columns on a side must be aligned.
func HashJoinMulti(lkeys, rkeys []*vector.Vector) (lsel, rsel []int32) {
	if len(lkeys) == 1 {
		return HashJoin(lkeys[0], rkeys[0])
	}
	// Composite keys are hashed via their textual form; adequate for the
	// moderate key counts of continuous queries.
	rn := rkeys[0].Len()
	ht := make(map[string][]int32, rn)
	for i := 0; i < rn; i++ {
		ht[compositeKey(rkeys, i)] = append(ht[compositeKey(rkeys, i)], int32(i))
	}
	ln := lkeys[0].Len()
	for i := 0; i < ln; i++ {
		for _, j := range ht[compositeKey(lkeys, i)] {
			lsel = append(lsel, int32(i))
			rsel = append(rsel, j)
		}
	}
	return lsel, rsel
}

func compositeKey(keys []*vector.Vector, i int) string {
	var b []byte
	for _, k := range keys {
		b = append(b, k.Get(i).String()...)
		b = append(b, 0x1f)
	}
	return string(b)
}

// ThetaJoin computes the join of two columns under an arbitrary comparison
// operator via a nested loop. Used for the benchmark's theta-join queries
// where no hash structure applies.
func ThetaJoin(l, r *vector.Vector, op CmpOp) (lsel, rsel []int32) {
	if op == EQ {
		return HashJoin(l, r)
	}
	ln, rn := l.Len(), r.Len()
	switch l.Kind() {
	case vector.Int, vector.Timestamp:
		ls, rs := l.Ints(), r.Ints()
		for i := 0; i < ln; i++ {
			for j := 0; j < rn; j++ {
				if intHolds(op, ls[i], rs[j]) {
					lsel = append(lsel, int32(i))
					rsel = append(rsel, int32(j))
				}
			}
		}
	case vector.Float:
		ls, rs := l.Floats(), r.Floats()
		for i := 0; i < ln; i++ {
			for j := 0; j < rn; j++ {
				if floatHolds(op, ls[i], rs[j]) {
					lsel = append(lsel, int32(i))
					rsel = append(rsel, int32(j))
				}
			}
		}
	default:
		for i := 0; i < ln; i++ {
			for j := 0; j < rn; j++ {
				if cmpHolds(op, l.Get(i).Compare(r.Get(j))) {
					lsel = append(lsel, int32(i))
					rsel = append(rsel, int32(j))
				}
			}
		}
	}
	return lsel, rsel
}

// AntiJoin returns the left positions that have no equi-match in r
// (NOT EXISTS / NOT IN semantics over single keys).
func AntiJoin(l, r *vector.Vector) []int32 {
	out := make([]int32, 0, l.Len())
	switch l.Kind() {
	case vector.Int, vector.Timestamp:
		set := make(map[int64]struct{}, r.Len())
		for _, k := range r.Ints() {
			set[k] = struct{}{}
		}
		for i, k := range l.Ints() {
			if _, ok := set[k]; !ok {
				out = append(out, int32(i))
			}
		}
	case vector.Str:
		set := make(map[string]struct{}, r.Len())
		for _, k := range r.Strs() {
			set[k] = struct{}{}
		}
		for i, k := range l.Strs() {
			if _, ok := set[k]; !ok {
				out = append(out, int32(i))
			}
		}
	default:
		set := make(map[float64]struct{}, r.Len())
		for i := 0; i < r.Len(); i++ {
			set[r.Get(i).AsFloat()] = struct{}{}
		}
		for i := 0; i < l.Len(); i++ {
			if _, ok := set[l.Get(i).AsFloat()]; !ok {
				out = append(out, int32(i))
			}
		}
	}
	return out
}

// SemiJoin returns the left positions that have at least one equi-match in
// r (EXISTS / IN semantics over single keys), each at most once.
func SemiJoin(l, r *vector.Vector) []int32 {
	out := make([]int32, 0, l.Len())
	switch l.Kind() {
	case vector.Int, vector.Timestamp:
		set := make(map[int64]struct{}, r.Len())
		for _, k := range r.Ints() {
			set[k] = struct{}{}
		}
		for i, k := range l.Ints() {
			if _, ok := set[k]; ok {
				out = append(out, int32(i))
			}
		}
	case vector.Str:
		set := make(map[string]struct{}, r.Len())
		for _, k := range r.Strs() {
			set[k] = struct{}{}
		}
		for i, k := range l.Strs() {
			if _, ok := set[k]; ok {
				out = append(out, int32(i))
			}
		}
	default:
		set := make(map[float64]struct{}, r.Len())
		for i := 0; i < r.Len(); i++ {
			set[r.Get(i).AsFloat()] = struct{}{}
		}
		for i := 0; i < l.Len(); i++ {
			if _, ok := set[l.Get(i).AsFloat()]; ok {
				out = append(out, int32(i))
			}
		}
	}
	return out
}
