package relop

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"datacell/internal/vector"
)

func TestSelectPredInts(t *testing.T) {
	v := vector.FromInts([]int64{5, 1, 9, 5, 3})
	cases := []struct {
		op   CmpOp
		val  int64
		want []int32
	}{
		{EQ, 5, []int32{0, 3}},
		{NE, 5, []int32{1, 2, 4}},
		{LT, 5, []int32{1, 4}},
		{LE, 5, []int32{0, 1, 3, 4}},
		{GT, 5, []int32{2}},
		{GE, 5, []int32{0, 2, 3}},
	}
	for _, c := range cases {
		got := SelectPred(v, c.op, vector.NewInt(c.val), nil)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SelectPred(%s %d) = %v, want %v", c.op, c.val, got, c.want)
		}
	}
}

func TestSelectPredWithCandidates(t *testing.T) {
	v := vector.FromInts([]int64{5, 1, 9, 5, 3})
	got := SelectPred(v, EQ, vector.NewInt(5), []int32{1, 2, 3})
	if !reflect.DeepEqual(got, []int32{3}) {
		t.Errorf("got %v", got)
	}
}

func TestSelectPredOtherKinds(t *testing.T) {
	f := vector.FromFloats([]float64{1.5, 2.5, 3.5})
	if got := SelectPred(f, GT, vector.NewFloat(2), nil); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Errorf("float: %v", got)
	}
	s := vector.FromStrs([]string{"b", "a", "c"})
	if got := SelectPred(s, LE, vector.NewStr("b"), nil); !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Errorf("str: %v", got)
	}
	b := vector.FromBools([]bool{true, false, true})
	if got := SelectPred(b, EQ, vector.NewBool(true), nil); !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Errorf("bool: %v", got)
	}
}

func TestSelectRange(t *testing.T) {
	v := vector.FromInts([]int64{0, 10, 20, 30, 40})
	got := SelectRange(v, vector.NewInt(10), vector.NewInt(30), true, true, nil)
	if !reflect.DeepEqual(got, []int32{1, 2, 3}) {
		t.Errorf("inclusive: %v", got)
	}
	got = SelectRange(v, vector.NewInt(10), vector.NewInt(30), false, false, nil)
	if !reflect.DeepEqual(got, []int32{2}) {
		t.Errorf("exclusive: %v", got)
	}
	fv := vector.FromFloats([]float64{0.5, 1.5, 2.5})
	got = SelectRange(fv, vector.NewFloat(1), vector.NewFloat(2), true, true, nil)
	if !reflect.DeepEqual(got, []int32{1}) {
		t.Errorf("float range: %v", got)
	}
	sv := vector.FromStrs([]string{"alpha", "beta", "gamma"})
	got = SelectRange(sv, vector.NewStr("b"), vector.NewStr("c"), true, true, nil)
	if !reflect.DeepEqual(got, []int32{1}) {
		t.Errorf("str range: %v", got)
	}
}

func TestSelectBool(t *testing.T) {
	v := vector.FromBools([]bool{true, false, true, false})
	if got := SelectBool(v, nil); !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Errorf("got %v", got)
	}
	if got := SelectBool(v, []int32{1, 2, 3}); !reflect.DeepEqual(got, []int32{2}) {
		t.Errorf("cand: %v", got)
	}
}

func TestCandOps(t *testing.T) {
	a := []int32{0, 2, 4, 6}
	b := []int32{2, 3, 4}
	if got := CandAnd(a, b); !reflect.DeepEqual(got, []int32{2, 4}) {
		t.Errorf("And: %v", got)
	}
	if got := CandOr(a, b); !reflect.DeepEqual(got, []int32{0, 2, 3, 4, 6}) {
		t.Errorf("Or: %v", got)
	}
	if got := CandNot(a, 7); !reflect.DeepEqual(got, []int32{1, 3, 5}) {
		t.Errorf("Not: %v", got)
	}
	if got := CandAll(3); !reflect.DeepEqual(got, []int32{0, 1, 2}) {
		t.Errorf("All: %v", got)
	}
}

// Property: And/Or/Not behave like set operations.
func TestCandSetProperties(t *testing.T) {
	gen := func(seed int64, n int) []int32 {
		rng := rand.New(rand.NewSource(seed))
		set := map[int32]bool{}
		for i := 0; i < n; i++ {
			set[int32(rng.Intn(64))] = true
		}
		out := make([]int32, 0, len(set))
		for k := range set {
			out = append(out, k)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	f := func(s1, s2 int64) bool {
		a, b := gen(s1, 20), gen(s2, 20)
		and := CandAnd(a, b)
		or := CandOr(a, b)
		// |A| + |B| = |A∪B| + |A∩B|
		if len(a)+len(b) != len(or)+len(and) {
			return false
		}
		// Complement identity: Not(Not(a)) == a within [0,64)
		if !reflect.DeepEqual(CandNot(CandNot(a, 64), 64), a) {
			return false
		}
		// A ∩ ¬A = ∅
		return len(CandAnd(a, CandNot(a, 64))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHashJoin(t *testing.T) {
	l := vector.FromInts([]int64{1, 2, 3, 2})
	r := vector.FromInts([]int64{2, 4, 2})
	lsel, rsel := HashJoin(l, r)
	// left-ordered pairs: (1,0),(1,2),(3,0),(3,2)
	wantL := []int32{1, 1, 3, 3}
	wantR := []int32{0, 2, 0, 2}
	if !reflect.DeepEqual(lsel, wantL) || !reflect.DeepEqual(rsel, wantR) {
		t.Errorf("HashJoin = %v,%v want %v,%v", lsel, rsel, wantL, wantR)
	}
}

func TestHashJoinStrsFloats(t *testing.T) {
	ls := vector.FromStrs([]string{"a", "b"})
	rs := vector.FromStrs([]string{"b", "b"})
	lsel, rsel := HashJoin(ls, rs)
	if len(lsel) != 2 || lsel[0] != 1 || rsel[0] != 0 || rsel[1] != 1 {
		t.Errorf("strs: %v %v", lsel, rsel)
	}
	lf := vector.FromFloats([]float64{1.5, 2.5})
	rf := vector.FromFloats([]float64{2.5})
	lsel, rsel = HashJoin(lf, rf)
	if len(lsel) != 1 || lsel[0] != 1 || rsel[0] != 0 {
		t.Errorf("floats: %v %v", lsel, rsel)
	}
}

func TestHashJoinMulti(t *testing.T) {
	l1 := vector.FromInts([]int64{1, 1, 2})
	l2 := vector.FromInts([]int64{10, 20, 10})
	r1 := vector.FromInts([]int64{1, 2})
	r2 := vector.FromInts([]int64{20, 10})
	lsel, rsel := HashJoinMulti([]*vector.Vector{l1, l2}, []*vector.Vector{r1, r2})
	if len(lsel) != 2 {
		t.Fatalf("pairs: %v %v", lsel, rsel)
	}
	if lsel[0] != 1 || rsel[0] != 0 || lsel[1] != 2 || rsel[1] != 1 {
		t.Errorf("got %v %v", lsel, rsel)
	}
}

func TestThetaJoin(t *testing.T) {
	l := vector.FromInts([]int64{1, 5})
	r := vector.FromInts([]int64{3, 4})
	lsel, rsel := ThetaJoin(l, r, LT)
	// 1<3, 1<4 -> (0,0),(0,1)
	if !reflect.DeepEqual(lsel, []int32{0, 0}) || !reflect.DeepEqual(rsel, []int32{0, 1}) {
		t.Errorf("theta: %v %v", lsel, rsel)
	}
	// EQ routes to hash join
	lsel, rsel = ThetaJoin(l, r, EQ)
	if len(lsel) != 0 || len(rsel) != 0 {
		t.Errorf("theta EQ: %v %v", lsel, rsel)
	}
}

// Property: HashJoin agrees with the nested-loop ThetaJoin on EQ semantics
// (as multisets of pairs).
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	f := func(l, r []int64) bool {
		if len(l) > 60 {
			l = l[:60]
		}
		if len(r) > 60 {
			r = r[:60]
		}
		for i := range l {
			l[i] %= 8
		}
		for i := range r {
			r[i] %= 8
		}
		lv, rv := vector.FromInts(l), vector.FromInts(r)
		hl, hr := HashJoin(lv, rv)
		type pair struct{ a, b int32 }
		got := map[pair]int{}
		for i := range hl {
			got[pair{hl[i], hr[i]}]++
		}
		want := map[pair]int{}
		for i, x := range l {
			for j, y := range r {
				if x == y {
					want[pair{int32(i), int32(j)}]++
				}
			}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSemiAntiJoin(t *testing.T) {
	l := vector.FromInts([]int64{1, 2, 3, 4})
	r := vector.FromInts([]int64{2, 4, 4})
	if got := SemiJoin(l, r); !reflect.DeepEqual(got, []int32{1, 3}) {
		t.Errorf("semi: %v", got)
	}
	if got := AntiJoin(l, r); !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Errorf("anti: %v", got)
	}
	ls := vector.FromStrs([]string{"a", "b"})
	rs := vector.FromStrs([]string{"b"})
	if got := SemiJoin(ls, rs); !reflect.DeepEqual(got, []int32{1}) {
		t.Errorf("semi strs: %v", got)
	}
	if got := AntiJoin(ls, rs); !reflect.DeepEqual(got, []int32{0}) {
		t.Errorf("anti strs: %v", got)
	}
}

func TestGroupBySingle(t *testing.T) {
	v := vector.FromInts([]int64{7, 8, 7, 9, 8})
	g := GroupBy([]*vector.Vector{v}, v.Len())
	if g.NumGroups() != 3 {
		t.Fatalf("groups = %d", g.NumGroups())
	}
	if !reflect.DeepEqual(g.GroupIDs, []int32{0, 1, 0, 2, 1}) {
		t.Errorf("ids = %v", g.GroupIDs)
	}
	if !reflect.DeepEqual(g.Repr, []int32{0, 1, 3}) {
		t.Errorf("repr = %v", g.Repr)
	}
}

func TestGroupByMultiAndEmpty(t *testing.T) {
	a := vector.FromInts([]int64{1, 1, 2})
	b := vector.FromStrs([]string{"x", "y", "x"})
	g := GroupBy([]*vector.Vector{a, b}, 3)
	if g.NumGroups() != 3 {
		t.Errorf("multi groups = %d", g.NumGroups())
	}
	// No keys: single global group.
	g = GroupBy(nil, 5)
	if g.NumGroups() != 1 || g.GroupIDs[4] != 0 {
		t.Errorf("global group: %+v", g)
	}
	g = GroupBy(nil, 0)
	if g.NumGroups() != 0 {
		t.Errorf("empty input should have no groups")
	}
}

func TestAggregates(t *testing.T) {
	key := vector.FromInts([]int64{1, 2, 1, 2, 1})
	val := vector.FromInts([]int64{10, 20, 30, 40, 50})
	g := GroupBy([]*vector.Vector{key}, 5)

	if got := Aggregate(AggCount, nil, g); !reflect.DeepEqual(got.Ints(), []int64{3, 2}) {
		t.Errorf("count: %v", got.Ints())
	}
	if got := Aggregate(AggSum, val, g); !reflect.DeepEqual(got.Ints(), []int64{90, 60}) {
		t.Errorf("sum: %v", got.Ints())
	}
	if got := Aggregate(AggAvg, val, g); !reflect.DeepEqual(got.Floats(), []float64{30, 30}) {
		t.Errorf("avg: %v", got.Floats())
	}
	if got := Aggregate(AggMin, val, g); !reflect.DeepEqual(got.Ints(), []int64{10, 20}) {
		t.Errorf("min: %v", got.Ints())
	}
	if got := Aggregate(AggMax, val, g); !reflect.DeepEqual(got.Ints(), []int64{50, 40}) {
		t.Errorf("max: %v", got.Ints())
	}
}

func TestAggregateFloats(t *testing.T) {
	val := vector.FromFloats([]float64{1.5, 2.5, 3.0})
	g := GroupBy(nil, 3)
	if got := Aggregate(AggSum, val, g); got.Floats()[0] != 7.0 {
		t.Errorf("float sum: %v", got.Floats())
	}
	if got := Aggregate(AggAvg, val, g); got.Floats()[0] != 7.0/3 {
		t.Errorf("float avg: %v", got.Floats())
	}
	if got := Aggregate(AggMin, val, g); got.Floats()[0] != 1.5 {
		t.Errorf("float min: %v", got.Floats())
	}
	if got := Aggregate(AggMax, val, g); got.Floats()[0] != 3.0 {
		t.Errorf("float max: %v", got.Floats())
	}
}

func TestAggregateStrMinMax(t *testing.T) {
	val := vector.FromStrs([]string{"pear", "apple", "plum"})
	g := GroupBy(nil, 3)
	if got := Aggregate(AggMin, val, g); got.Strs()[0] != "apple" {
		t.Errorf("str min: %v", got.Strs())
	}
	if got := Aggregate(AggMax, val, g); got.Strs()[0] != "plum" {
		t.Errorf("str max: %v", got.Strs())
	}
}

// Property: sum over random groups equals the scalar sum.
func TestAggregateSumProperty(t *testing.T) {
	f := func(vals []int64, keys []uint8) bool {
		n := min(len(vals), len(keys))
		if n == 0 {
			return true
		}
		vs := vector.FromInts(vals[:n])
		ks := make([]int64, n)
		for i := range ks {
			ks[i] = int64(keys[i] % 4)
		}
		kv := vector.FromInts(ks)
		g := GroupBy([]*vector.Vector{kv}, n)
		sums := Aggregate(AggSum, vs, g)
		var total, expect int64
		for _, s := range sums.Ints() {
			total += s
		}
		for _, v := range vals[:n] {
			expect += v
		}
		return total == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortAndTopN(t *testing.T) {
	v := vector.FromInts([]int64{3, 1, 2})
	perm := Sort([]SortKey{{Col: v}}, 3)
	if !reflect.DeepEqual(perm, []int32{1, 2, 0}) {
		t.Errorf("asc: %v", perm)
	}
	perm = Sort([]SortKey{{Col: v, Desc: true}}, 3)
	if !reflect.DeepEqual(perm, []int32{0, 2, 1}) {
		t.Errorf("desc: %v", perm)
	}
	if got := TopN(perm, 2); !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Errorf("topn: %v", got)
	}
	if got := TopN(perm, 99); len(got) != 3 {
		t.Errorf("topn overflow: %v", got)
	}
}

func TestSortMultiKeyStable(t *testing.T) {
	k1 := vector.FromInts([]int64{1, 1, 0, 0})
	k2 := vector.FromStrs([]string{"b", "a", "b", "a"})
	perm := Sort([]SortKey{{Col: k1}, {Col: k2}}, 4)
	if !reflect.DeepEqual(perm, []int32{3, 2, 1, 0}) {
		t.Errorf("multi: %v", perm)
	}
	// Equal keys preserve arrival order (stability).
	eq := vector.FromInts([]int64{5, 5, 5})
	perm = Sort([]SortKey{{Col: eq}}, 3)
	if !reflect.DeepEqual(perm, []int32{0, 1, 2}) {
		t.Errorf("stable: %v", perm)
	}
	// No keys: identity.
	perm = Sort(nil, 3)
	if !reflect.DeepEqual(perm, []int32{0, 1, 2}) {
		t.Errorf("identity: %v", perm)
	}
}

// Property: Sort produces a permutation that orders the data.
func TestSortProperty(t *testing.T) {
	f := func(data []int64) bool {
		v := vector.FromInts(data)
		perm := Sort([]SortKey{{Col: v}}, len(data))
		if len(perm) != len(data) {
			return false
		}
		seen := make([]bool, len(data))
		prev := int64(math.MinInt64)
		for _, p := range perm {
			if seen[p] {
				return false
			}
			seen[p] = true
			if data[p] < prev {
				return false
			}
			prev = data[p]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistinct(t *testing.T) {
	v := vector.FromStrs([]string{"a", "b", "a", "c", "b"})
	got := Distinct([]*vector.Vector{v}, 5)
	if !reflect.DeepEqual(got, []int32{0, 1, 3}) {
		t.Errorf("distinct: %v", got)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted(vector.FromInts([]int64{1, 2, 2, 3})) {
		t.Error("sorted reported unsorted")
	}
	if IsSorted(vector.FromInts([]int64{2, 1})) {
		t.Error("unsorted reported sorted")
	}
}

func TestCmpOpStringNegate(t *testing.T) {
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
		if op.String() == "?" {
			t.Errorf("missing String for %d", op)
		}
		if op.Negate().Negate() != op {
			t.Errorf("double negate of %s", op)
		}
	}
}
