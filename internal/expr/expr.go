// Package expr defines scalar expressions over relations and their
// vectorized evaluation. Expressions appear in select lists, where clauses
// and basket-expression predicates. Evaluation is column-at-a-time: an
// expression evaluated against a relation of n tuples yields a vector of n
// values. Comparisons against constants are additionally compiled into
// candidate-list selections so that simple predicate windows run as a single
// kernel primitive.
package expr

import (
	"fmt"
	"math"
	"strings"
	"time"

	"datacell/internal/bat"
	"datacell/internal/relop"
	"datacell/internal/vector"
)

// Expr is a scalar expression node.
type Expr interface {
	// Eval evaluates the expression against every tuple of rel.
	Eval(rel *bat.Relation) (*vector.Vector, error)
	// EvalInto evaluates like Eval but without allocating on the steady
	// state: when the node computes a new vector it writes into dst (when
	// non-nil) or a temporary drawn from s (when non-nil), and nodes that
	// only reference existing data (column references) return the shared
	// vector directly. dst must not alias any input column. With dst and s
	// both nil, EvalInto behaves exactly like Eval. Results drawn from s
	// are valid until s.Reset.
	EvalInto(rel *bat.Relation, dst *vector.Vector, s *Scratch) (*vector.Vector, error)
	// Type reports the result type given the input schema.
	Type(rel *bat.Relation) (vector.Type, error)
	// String renders the expression in SQL-ish syntax.
	String() string
}

// Const is a literal value.
type Const struct{ Val vector.Value }

// NewConst returns a literal expression.
func NewConst(v vector.Value) *Const { return &Const{Val: v} }

// Eval implements Expr.
func (c *Const) Eval(rel *bat.Relation) (*vector.Vector, error) {
	return vector.Fill(c.Val, rel.Len()), nil
}

// EvalInto implements Expr.
func (c *Const) EvalInto(rel *bat.Relation, dst *vector.Vector, s *Scratch) (*vector.Vector, error) {
	if dst == nil && s == nil {
		return c.Eval(rel)
	}
	return vector.FillInto(output(dst, s), c.Val, rel.Len()), nil
}

// Type implements Expr.
func (c *Const) Type(*bat.Relation) (vector.Type, error) { return c.Val.Kind, nil }

func (c *Const) String() string {
	if c.Val.Kind == vector.Str {
		return "'" + c.Val.S + "'"
	}
	return c.Val.String()
}

// Col references an input column by (possibly qualified) name.
type Col struct{ Name string }

// NewCol returns a column reference.
func NewCol(name string) *Col { return &Col{Name: strings.ToLower(name)} }

// Eval implements Expr.
func (c *Col) Eval(rel *bat.Relation) (*vector.Vector, error) {
	v := rel.ColByName(c.Name)
	if v == nil {
		return nil, fmt.Errorf("expr: unknown column %q (have %v)", c.Name, rel.Names())
	}
	return v, nil
}

// EvalInto implements Expr: a column reference returns the shared input
// vector, never copying.
func (c *Col) EvalInto(rel *bat.Relation, _ *vector.Vector, _ *Scratch) (*vector.Vector, error) {
	return c.Eval(rel)
}

// Type implements Expr.
func (c *Col) Type(rel *bat.Relation) (vector.Type, error) {
	v := rel.ColByName(c.Name)
	if v == nil {
		return 0, fmt.Errorf("expr: unknown column %q", c.Name)
	}
	return v.Kind(), nil
}

func (c *Col) String() string { return c.Name }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	And
	Or
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "and", "or"}

// String returns the SQL spelling.
func (o BinOp) String() string { return binOpNames[o] }

// IsCmp reports whether o is a comparison operator.
func (o BinOp) IsCmp() bool { return o >= Eq && o <= Ge }

// CmpOp translates a comparison BinOp to the relop code.
func (o BinOp) CmpOp() relop.CmpOp {
	switch o {
	case Eq:
		return relop.EQ
	case Ne:
		return relop.NE
	case Lt:
		return relop.LT
	case Le:
		return relop.LE
	case Gt:
		return relop.GT
	default:
		return relop.GE
	}
}

// Bin is a binary expression.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// NewBin returns a binary expression node.
func NewBin(op BinOp, l, r Expr) *Bin { return &Bin{Op: op, L: l, R: r} }

func (b *Bin) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Type implements Expr.
func (b *Bin) Type(rel *bat.Relation) (vector.Type, error) {
	if b.Op >= Eq {
		return vector.Bool, nil
	}
	lt, err := b.L.Type(rel)
	if err != nil {
		return 0, err
	}
	rt, err := b.R.Type(rel)
	if err != nil {
		return 0, err
	}
	if lt == vector.Float || rt == vector.Float {
		return vector.Float, nil
	}
	if lt == vector.Str || rt == vector.Str {
		if b.Op == Add {
			return vector.Str, nil
		}
		return 0, fmt.Errorf("expr: operator %s not defined on strings", b.Op)
	}
	return lt, nil
}

// Eval implements Expr.
func (b *Bin) Eval(rel *bat.Relation) (*vector.Vector, error) {
	return b.EvalInto(rel, nil, nil)
}

// EvalInto implements Expr.
func (b *Bin) EvalInto(rel *bat.Relation, dst *vector.Vector, s *Scratch) (*vector.Vector, error) {
	l, err := b.L.EvalInto(rel, nil, s)
	if err != nil {
		return nil, err
	}
	r, err := b.R.EvalInto(rel, nil, s)
	if err != nil {
		return nil, err
	}
	n := l.Len()
	if r.Len() != n {
		return nil, fmt.Errorf("expr: operand length mismatch %d vs %d", n, r.Len())
	}
	o := output(dst, s)
	switch {
	case b.Op == And || b.Op == Or:
		o.Reset(vector.Bool, n)
		out := o.Bools()
		lb, rb := l.Bools(), r.Bools()
		if b.Op == And {
			for i := range out {
				out[i] = lb[i] && rb[i]
			}
		} else {
			for i := range out {
				out[i] = lb[i] || rb[i]
			}
		}
		return o, nil
	case b.Op.IsCmp():
		return evalCmpInto(b.Op, l, r, n, o)
	default:
		return evalArithInto(b.Op, l, r, n, o)
	}
}

func evalCmpInto(op BinOp, l, r *vector.Vector, n int, o *vector.Vector) (*vector.Vector, error) {
	o.Reset(vector.Bool, n)
	out := o.Bools()
	c := op.CmpOp()
	lk, rk := l.Kind(), r.Kind()
	switch {
	case isIntKind(lk) && isIntKind(rk):
		ls, rs := l.Ints(), r.Ints()
		for i := range out {
			out[i] = intCmpHolds(c, ls[i], rs[i])
		}
	case lk == vector.Str && rk == vector.Str:
		ls, rs := l.Strs(), r.Strs()
		for i := range out {
			out[i] = cmpHolds(c, strings.Compare(ls[i], rs[i]))
		}
	case lk == vector.Bool && rk == vector.Bool:
		ls, rs := l.Bools(), r.Bools()
		for i := range out {
			out[i] = cmpHolds(c, cmpBools(ls[i], rs[i]))
		}
	default:
		lf, err := asFloats(l)
		if err != nil {
			return nil, err
		}
		rf, err := asFloats(r)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] = floatCmpHolds(c, lf[i], rf[i])
		}
	}
	return o, nil
}

func evalArithInto(op BinOp, l, r *vector.Vector, n int, o *vector.Vector) (*vector.Vector, error) {
	lk, rk := l.Kind(), r.Kind()
	if lk == vector.Str || rk == vector.Str {
		if op != Add {
			return nil, fmt.Errorf("expr: operator %s not defined on strings", op)
		}
		o.Reset(vector.Str, n)
		out := o.Strs()
		for i := range out {
			out[i] = l.Get(i).String() + r.Get(i).String()
		}
		return o, nil
	}
	if lk == vector.Float || rk == vector.Float {
		lf, err := asFloats(l)
		if err != nil {
			return nil, err
		}
		rf, err := asFloats(r)
		if err != nil {
			return nil, err
		}
		o.Reset(vector.Float, n)
		out := o.Floats()
		switch op {
		case Add:
			for i := range out {
				out[i] = lf[i] + rf[i]
			}
		case Sub:
			for i := range out {
				out[i] = lf[i] - rf[i]
			}
		case Mul:
			for i := range out {
				out[i] = lf[i] * rf[i]
			}
		case Div:
			for i := range out {
				if rf[i] == 0 {
					out[i] = math.NaN()
				} else {
					out[i] = lf[i] / rf[i]
				}
			}
		case Mod:
			for i := range out {
				out[i] = math.Mod(lf[i], rf[i])
			}
		}
		return o, nil
	}
	kind := vector.Int
	if lk == vector.Timestamp || rk == vector.Timestamp {
		kind = vector.Timestamp
	}
	ls, rs := l.Ints(), r.Ints()
	o.Reset(kind, n)
	out := o.Ints()
	switch op {
	case Add:
		for i := range out {
			out[i] = ls[i] + rs[i]
		}
	case Sub:
		for i := range out {
			out[i] = ls[i] - rs[i]
		}
	case Mul:
		for i := range out {
			out[i] = ls[i] * rs[i]
		}
	case Div:
		// Integer division, SQL style (truncating); division by zero
		// yields zero rather than a fault, matching the silent-filter
		// philosophy of the engine.
		for i := range out {
			if rs[i] != 0 {
				out[i] = ls[i] / rs[i]
			} else {
				out[i] = 0
			}
		}
	case Mod:
		for i := range out {
			if rs[i] == 0 {
				out[i] = 0
			} else {
				out[i] = ls[i] % rs[i]
			}
		}
	}
	return o, nil
}

func isIntKind(t vector.Type) bool { return t == vector.Int || t == vector.Timestamp }

func intCmpHolds(op relop.CmpOp, a, b int64) bool {
	switch op {
	case relop.EQ:
		return a == b
	case relop.NE:
		return a != b
	case relop.LT:
		return a < b
	case relop.LE:
		return a <= b
	case relop.GT:
		return a > b
	default:
		return a >= b
	}
}

func floatCmpHolds(op relop.CmpOp, a, b float64) bool {
	switch op {
	case relop.EQ:
		return a == b
	case relop.NE:
		return a != b
	case relop.LT:
		return a < b
	case relop.LE:
		return a <= b
	case relop.GT:
		return a > b
	default:
		return a >= b
	}
}

func cmpHolds(op relop.CmpOp, c int) bool {
	switch op {
	case relop.EQ:
		return c == 0
	case relop.NE:
		return c != 0
	case relop.LT:
		return c < 0
	case relop.LE:
		return c <= 0
	case relop.GT:
		return c > 0
	default:
		return c >= 0
	}
}

func cmpBools(a, b bool) int {
	switch {
	case a == b:
		return 0
	case b:
		return -1
	default:
		return 1
	}
}

func asFloats(v *vector.Vector) ([]float64, error) {
	switch v.Kind() {
	case vector.Float:
		return v.Floats(), nil
	case vector.Int, vector.Timestamp:
		ints := v.Ints()
		out := make([]float64, len(ints))
		for i, x := range ints {
			out[i] = float64(x)
		}
		return out, nil
	case vector.Bool:
		bs := v.Bools()
		out := make([]float64, len(bs))
		for i, b := range bs {
			if b {
				out[i] = 1
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("expr: %s not numeric", v.Kind())
}

// Not is logical negation.
type Not struct{ E Expr }

// NewNot returns a negation node.
func NewNot(e Expr) *Not { return &Not{E: e} }

// Eval implements Expr.
func (u *Not) Eval(rel *bat.Relation) (*vector.Vector, error) {
	return u.EvalInto(rel, nil, nil)
}

// EvalInto implements Expr.
func (u *Not) EvalInto(rel *bat.Relation, dst *vector.Vector, s *Scratch) (*vector.Vector, error) {
	v, err := u.E.EvalInto(rel, nil, s)
	if err != nil {
		return nil, err
	}
	in := v.Bools()
	o := output(dst, s)
	o.Reset(vector.Bool, len(in))
	out := o.Bools()
	for i, b := range in {
		out[i] = !b
	}
	return o, nil
}

// Type implements Expr.
func (u *Not) Type(*bat.Relation) (vector.Type, error) { return vector.Bool, nil }

func (u *Not) String() string { return "not " + u.E.String() }

// Neg is arithmetic negation.
type Neg struct{ E Expr }

// NewNeg returns an arithmetic negation node.
func NewNeg(e Expr) *Neg { return &Neg{E: e} }

// Eval implements Expr.
func (u *Neg) Eval(rel *bat.Relation) (*vector.Vector, error) {
	return u.EvalInto(rel, nil, nil)
}

// EvalInto implements Expr.
func (u *Neg) EvalInto(rel *bat.Relation, dst *vector.Vector, s *Scratch) (*vector.Vector, error) {
	v, err := u.E.EvalInto(rel, nil, s)
	if err != nil {
		return nil, err
	}
	o := output(dst, s)
	switch v.Kind() {
	case vector.Int, vector.Timestamp:
		in := v.Ints()
		o.Reset(vector.Int, len(in))
		out := o.Ints()
		for i, x := range in {
			out[i] = -x
		}
		return o, nil
	case vector.Float:
		in := v.Floats()
		o.Reset(vector.Float, len(in))
		out := o.Floats()
		for i, x := range in {
			out[i] = -x
		}
		return o, nil
	}
	return nil, fmt.Errorf("expr: cannot negate %s", v.Kind())
}

// Type implements Expr.
func (u *Neg) Type(rel *bat.Relation) (vector.Type, error) { return u.E.Type(rel) }

func (u *Neg) String() string { return "-" + u.E.String() }

// Call is a scalar function call. Supported: now(), abs(x), floor(x),
// ceil(x), round(x), sqrt(x), mod(a,b), least(a,b), greatest(a,b).
type Call struct {
	Name string
	Args []Expr
	// Now supplies the engine clock for now(); if nil, time.Now is used.
	// Injected by the planner so simulated-time runs stay deterministic.
	Now func() time.Time
}

// NewCall returns a function-call node.
func NewCall(name string, args ...Expr) *Call {
	return &Call{Name: strings.ToLower(name), Args: args}
}

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Type implements Expr.
func (c *Call) Type(rel *bat.Relation) (vector.Type, error) {
	switch c.Name {
	case "now":
		return vector.Timestamp, nil
	case "sqrt":
		return vector.Float, nil
	case "abs", "floor", "ceil", "round", "mod", "least", "greatest":
		if len(c.Args) == 0 {
			return 0, fmt.Errorf("expr: %s needs arguments", c.Name)
		}
		return c.Args[0].Type(rel)
	}
	return 0, fmt.Errorf("expr: unknown function %q", c.Name)
}

// Eval implements Expr.
func (c *Call) Eval(rel *bat.Relation) (*vector.Vector, error) {
	return c.EvalInto(rel, nil, nil)
}

// EvalInto implements Expr.
func (c *Call) EvalInto(rel *bat.Relation, dst *vector.Vector, s *Scratch) (*vector.Vector, error) {
	n := rel.Len()
	switch c.Name {
	case "now":
		nowFn := c.Now
		if nowFn == nil {
			nowFn = time.Now
		}
		return vector.FillInto(output(dst, s), vector.NewTimestampMicros(nowFn().UnixMicro()), n), nil
	case "abs", "floor", "ceil", "round", "sqrt":
		if len(c.Args) != 1 {
			return nil, fmt.Errorf("expr: %s takes 1 argument", c.Name)
		}
		v, err := c.Args[0].EvalInto(rel, nil, s)
		if err != nil {
			return nil, err
		}
		return evalUnaryMath(c.Name, v, output(dst, s))
	case "mod", "least", "greatest":
		if len(c.Args) != 2 {
			return nil, fmt.Errorf("expr: %s takes 2 arguments", c.Name)
		}
		l, err := c.Args[0].EvalInto(rel, nil, s)
		if err != nil {
			return nil, err
		}
		r, err := c.Args[1].EvalInto(rel, nil, s)
		if err != nil {
			return nil, err
		}
		return evalBinaryMath(c.Name, l, r, output(dst, s))
	}
	return nil, fmt.Errorf("expr: unknown function %q", c.Name)
}

func evalUnaryMath(name string, v, o *vector.Vector) (*vector.Vector, error) {
	if v.Kind() == vector.Int || v.Kind() == vector.Timestamp {
		if name == "abs" {
			in := v.Ints()
			o.Reset(vector.Int, len(in))
			out := o.Ints()
			for i, x := range in {
				if x < 0 {
					x = -x
				}
				out[i] = x
			}
			return o, nil
		}
		if name != "sqrt" {
			return v, nil // floor/ceil/round of ints are identities
		}
	}
	fs, err := asFloats(v)
	if err != nil {
		return nil, err
	}
	o.Reset(vector.Float, len(fs))
	out := o.Floats()
	for i, x := range fs {
		switch name {
		case "abs":
			out[i] = math.Abs(x)
		case "floor":
			out[i] = math.Floor(x)
		case "ceil":
			out[i] = math.Ceil(x)
		case "round":
			out[i] = math.Round(x)
		case "sqrt":
			out[i] = math.Sqrt(x)
		}
	}
	return o, nil
}

func evalBinaryMath(name string, l, r, o *vector.Vector) (*vector.Vector, error) {
	if isIntKind(l.Kind()) && isIntKind(r.Kind()) {
		ls, rs := l.Ints(), r.Ints()
		o.Reset(vector.Int, len(ls))
		out := o.Ints()
		for i := range out {
			switch name {
			case "mod":
				if rs[i] != 0 {
					out[i] = ls[i] % rs[i]
				} else {
					out[i] = 0
				}
			case "least":
				out[i] = min(ls[i], rs[i])
			case "greatest":
				out[i] = max(ls[i], rs[i])
			}
		}
		return o, nil
	}
	lf, err := asFloats(l)
	if err != nil {
		return nil, err
	}
	rf, err := asFloats(r)
	if err != nil {
		return nil, err
	}
	o.Reset(vector.Float, len(lf))
	out := o.Floats()
	for i := range out {
		switch name {
		case "mod":
			out[i] = math.Mod(lf[i], rf[i])
		case "least":
			out[i] = math.Min(lf[i], rf[i])
		case "greatest":
			out[i] = math.Max(lf[i], rf[i])
		}
	}
	return o, nil
}

// EvalSelect evaluates a boolean expression as a candidate-list selection
// over rel, restricted to cand (nil means all tuples). Conjunctions,
// disjunctions and column-vs-constant comparisons are pushed down to the
// kernel's selection primitives; anything else falls back to materialising
// the boolean vector.
func EvalSelect(e Expr, rel *bat.Relation, cand []int32) ([]int32, error) {
	return EvalSelectInto(e, rel, cand, nil)
}

// EvalSelectInto is EvalSelect drawing every selection buffer and
// expression temporary from s, so steady-state predicate evaluation
// allocates nothing. The returned list is owned by s (valid until
// s.Reset) unless it is cand itself. A nil s behaves exactly like
// EvalSelect.
func EvalSelectInto(e Expr, rel *bat.Relation, cand []int32, s *Scratch) ([]int32, error) {
	switch n := e.(type) {
	case *Bin:
		switch {
		case n.Op == And:
			l, err := EvalSelectInto(n.L, rel, cand, s)
			if err != nil {
				return nil, err
			}
			return EvalSelectInto(n.R, rel, l, s)
		case n.Op == Or:
			l, err := EvalSelectInto(n.L, rel, cand, s)
			if err != nil {
				return nil, err
			}
			r, err := EvalSelectInto(n.R, rel, cand, s)
			if err != nil {
				return nil, err
			}
			if s == nil {
				return relop.CandOr(l, r), nil
			}
			p := s.Sel()
			*p = relop.CandOrInto(*p, l, r)
			return *p, nil
		case n.Op.IsCmp():
			if col, konst, op, ok := colConstCmp(n, rel); ok {
				if s == nil {
					return relop.SelectPred(col, op, konst, cand), nil
				}
				p := s.Sel()
				*p = relop.SelectPredInto(*p, col, op, konst, cand)
				return *p, nil
			}
		}
	case *Not:
		inner, err := EvalSelectInto(n.E, rel, cand, s)
		if err != nil {
			return nil, err
		}
		if cand == nil {
			if s == nil {
				return relop.CandNot(inner, rel.Len()), nil
			}
			p := s.Sel()
			*p = relop.CandNotInto(*p, inner, rel.Len())
			return *p, nil
		}
		if s == nil {
			return candDiff(cand, inner), nil
		}
		p := s.Sel()
		*p = candDiffInto(*p, cand, inner)
		return *p, nil
	case *Between:
		if sel, ok := n.pushdownInto(rel, cand, s); ok {
			return sel, nil
		}
	case *Const:
		if n.Val.Kind == vector.Bool && n.Val.B {
			if cand == nil {
				if s == nil {
					return relop.CandAll(rel.Len()), nil
				}
				p := s.Sel()
				*p = relop.CandAllInto(*p, rel.Len())
				return *p, nil
			}
			return cand, nil
		}
		// A false predicate selects nothing. The result must be a non-nil
		// empty list: a nil candidate list means "unrestricted" to every
		// consumer (the kernel selections, the AND chain above, the plan's
		// late-materialisation paths), so returning nil here would turn
		// "no rows" into "all rows".
		return emptySel, nil
	}
	// General fallback: evaluate to a boolean vector then select.
	v, err := e.EvalInto(rel, nil, s)
	if err != nil {
		return nil, err
	}
	if v.Kind() != vector.Bool {
		return nil, fmt.Errorf("expr: predicate %s is %s, not bool", e, v.Kind())
	}
	if s == nil {
		return relop.SelectBool(v, cand), nil
	}
	p := s.Sel()
	*p = relop.SelectBoolInto(*p, v, cand)
	return *p, nil
}

// colConstCmp recognises col-op-const and const-op-col comparisons so they
// can run as kernel selections.
func colConstCmp(b *Bin, rel *bat.Relation) (*vector.Vector, vector.Value, relop.CmpOp, bool) {
	if c, ok := b.L.(*Col); ok {
		if k, ok2 := constOf(b.R); ok2 {
			if v := rel.ColByName(c.Name); v != nil {
				return v, k, b.Op.CmpOp(), true
			}
		}
	}
	if c, ok := b.R.(*Col); ok {
		if k, ok2 := constOf(b.L); ok2 {
			if v := rel.ColByName(c.Name); v != nil {
				// Flip: const op col  ==>  col op' const.
				op := b.Op.CmpOp()
				switch op {
				case relop.LT:
					op = relop.GT
				case relop.LE:
					op = relop.GE
				case relop.GT:
					op = relop.LT
				case relop.GE:
					op = relop.LE
				}
				return v, k, op, true
			}
		}
	}
	return nil, vector.Value{}, 0, false
}

// ConstValue reports the constant an expression folds to (literals and
// negated numeric literals). The planner's sargable-predicate analysis
// uses it to recognise col-op-constant comparisons.
func ConstValue(e Expr) (vector.Value, bool) { return constOf(e) }

func constOf(e Expr) (vector.Value, bool) {
	switch n := e.(type) {
	case *Const:
		return n.Val, true
	case *Neg:
		if v, ok := constOf(n.E); ok {
			switch v.Kind {
			case vector.Int, vector.Timestamp:
				v.I = -v.I
				return v, true
			case vector.Float:
				v.F = -v.F
				return v, true
			}
		}
	}
	return vector.Value{}, false
}

// emptySel is the shared non-nil empty selection: "no rows", as opposed
// to the nil list that means "no restriction". Read only.
var emptySel = make([]int32, 0)

// candDiff returns the entries of a not present in b (both ascending).
func candDiff(a, b []int32) []int32 {
	return candDiffInto(make([]int32, 0, len(a)), a, b)
}

// candDiffInto is candDiff appending into dst (overwritten from length 0);
// dst must alias neither input.
func candDiffInto(dst, a, b []int32) []int32 {
	out := dst[:0]
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}
