package expr

import (
	"reflect"
	"testing"
	"testing/quick"

	"datacell/internal/bat"
	"datacell/internal/vector"
)

func extraRel() *bat.Relation {
	return bat.NewRelation(
		[]string{"x", "s"},
		[]*vector.Vector{
			vector.FromInts([]int64{1, 5, 10, 15}),
			vector.FromStrs([]string{"apple", "apricot", "banana", "cherry"}),
		},
	)
}

func TestInList(t *testing.T) {
	r := extraRel()
	e := NewInList(NewCol("x"), []vector.Value{vector.NewInt(5), vector.NewInt(15)}, false)
	v, err := e.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Bools(), []bool{false, true, false, true}) {
		t.Errorf("in: %v", v.Bools())
	}
	ne := NewInList(NewCol("x"), []vector.Value{vector.NewInt(5)}, true)
	v, err = ne.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Bools(), []bool{true, false, true, true}) {
		t.Errorf("not in: %v", v.Bools())
	}
	se := NewInList(NewCol("s"), []vector.Value{vector.NewStr("banana")}, false)
	v, err = se.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Bools()[2] || v.Bools()[0] {
		t.Errorf("str in: %v", v.Bools())
	}
	if e.String() == "" || ne.String() == "" {
		t.Error("empty String")
	}
}

func TestBetween(t *testing.T) {
	r := extraRel()
	e := NewBetween(NewCol("x"), NewConst(vector.NewInt(5)), NewConst(vector.NewInt(10)), false)
	v, err := e.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Bools(), []bool{false, true, true, false}) {
		t.Errorf("between: %v", v.Bools())
	}
	ne := NewBetween(NewCol("x"), NewConst(vector.NewInt(5)), NewConst(vector.NewInt(10)), true)
	v, _ = ne.Eval(r)
	if !reflect.DeepEqual(v.Bools(), []bool{true, false, false, true}) {
		t.Errorf("not between: %v", v.Bools())
	}
}

func TestBetweenPushdownMatchesEval(t *testing.T) {
	f := func(data []int64, lo, hi int64) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		r := bat.NewRelation([]string{"x"}, []*vector.Vector{vector.FromInts(data)})
		e := NewBetween(NewCol("x"), NewConst(vector.NewInt(lo)), NewConst(vector.NewInt(hi)), false)
		fast, err := EvalSelect(e, r, nil)
		if err != nil {
			return false
		}
		v, err := e.Eval(r)
		if err != nil {
			return false
		}
		slow := []int32{}
		for i, b := range v.Bools() {
			if b {
				slow = append(slow, int32(i))
			}
		}
		return reflect.DeepEqual(append([]int32{}, fast...), slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCase(t *testing.T) {
	r := extraRel()
	e := NewCase([]WhenClause{
		{Cond: NewBin(Lt, NewCol("x"), NewConst(vector.NewInt(5))), Then: NewConst(vector.NewStr("low"))},
		{Cond: NewBin(Lt, NewCol("x"), NewConst(vector.NewInt(12))), Then: NewConst(vector.NewStr("mid"))},
	}, NewConst(vector.NewStr("high")))
	v, err := e.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"low", "mid", "mid", "high"}
	if !reflect.DeepEqual(v.Strs(), want) {
		t.Errorf("case: %v", v.Strs())
	}
	// First matching arm wins even if later arms also match.
	if e.String() == "" {
		t.Error("empty String")
	}
	noElse := &Case{Whens: e.Whens}
	if _, err := noElse.Eval(r); err == nil {
		t.Error("case without else should fail")
	}
}

func TestLike(t *testing.T) {
	r := extraRel()
	cases := []struct {
		pattern string
		want    []bool
	}{
		{"ap%", []bool{true, true, false, false}},
		{"%an%", []bool{false, false, true, false}},
		{"_herry", []bool{false, false, false, true}},
		{"%", []bool{true, true, true, true}},
		{"apple", []bool{true, false, false, false}},
		{"a_", []bool{false, false, false, false}},
	}
	for _, c := range cases {
		e := NewLike(NewCol("s"), c.pattern, false)
		v, err := e.Eval(r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(v.Bools(), c.want) {
			t.Errorf("like %q: %v, want %v", c.pattern, v.Bools(), c.want)
		}
	}
	if _, err := NewLike(NewCol("x"), "%", false).Eval(r); err == nil {
		t.Error("like over ints should fail")
	}
}

func TestLikeMatchProperties(t *testing.T) {
	// %s% always matches any s; exact string matches itself.
	f := func(s string) bool {
		if !likeMatch(s, "%") {
			return false
		}
		// Strings containing the wildcards themselves are still fine as
		// subjects.
		return likeMatch(s, s) || containsWild(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func containsWild(s string) bool {
	for _, c := range s {
		if c == '%' || c == '_' {
			return true
		}
	}
	return false
}
