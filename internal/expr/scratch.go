package expr

import (
	"datacell/internal/vector"
)

// Scratch is a reusable pool of evaluation temporaries: the vectors that
// hold intermediate expression results and the []int32 selection buffers
// produced by candidate-list evaluation. A Scratch is owned by exactly one
// firing at a time (the per-factory execution arena of the plan layer
// hands one out under the firing's basket locks), so no synchronisation is
// needed. Reset recycles every temporary for the next firing; values
// obtained from a Scratch must not be retained across Reset.
type Scratch struct {
	vecs []*vector.Vector
	vi   int
	sels [][]int32
	si   int
}

// Vec returns a reusable vector, distinct from every vector returned
// since the last Reset. The vector's kind and length are unspecified;
// callers Reset or overwrite it.
func (s *Scratch) Vec() *vector.Vector {
	if s.vi == len(s.vecs) {
		s.vecs = append(s.vecs, &vector.Vector{})
	}
	v := s.vecs[s.vi]
	s.vi++
	return v
}

// Sel returns a pointer to a reusable selection-buffer slot, distinct from
// every slot returned since the last Reset. The slot is reset to length 0;
// callers append through the pointer (or assign the grown slice back) so
// the slot retains the grown capacity for future firings.
func (s *Scratch) Sel() *[]int32 {
	if s.si == len(s.sels) {
		s.sels = append(s.sels, make([]int32, 0, 64))
	}
	p := &s.sels[s.si]
	s.si++
	*p = (*p)[:0]
	return p
}

// Reset recycles every vector and selection buffer handed out so far.
// Call only between firings: all values previously obtained from the
// Scratch are invalidated.
func (s *Scratch) Reset() {
	s.vi = 0
	s.si = 0
}

// output picks the destination vector of an expression node: the caller's
// dst when given, a scratch temporary when evaluating under an arena, and
// a freshly allocated vector otherwise (the classic Eval behaviour).
func output(dst *vector.Vector, s *Scratch) *vector.Vector {
	if dst != nil {
		return dst
	}
	if s != nil {
		return s.Vec()
	}
	return &vector.Vector{}
}
