package expr

import (
	"testing"

	"datacell/internal/bat"
	"datacell/internal/vector"
)

func evalRel() *bat.Relation {
	return bat.NewRelation([]string{"i", "f", "b", "s"}, []*vector.Vector{
		vector.FromInts([]int64{-3, 0, 5, 12}),
		vector.FromFloats([]float64{1.5, -2, 0, 8}),
		vector.FromBools([]bool{true, false, true, false}),
		vector.FromStrs([]string{"aa", "ab", "ba", "bb"}),
	})
}

// evalIntoExprs is the node zoo shared by the equivalence tests below.
func evalIntoExprs() []Expr {
	i, f, b, s := NewCol("i"), NewCol("f"), NewCol("b"), NewCol("s")
	return []Expr{
		NewConst(vector.NewInt(7)),
		i,
		NewBin(Add, i, NewConst(vector.NewInt(10))),
		NewBin(Mul, i, f),
		NewBin(Div, i, NewConst(vector.NewInt(0))),
		NewBin(Mod, i, NewConst(vector.NewInt(3))),
		NewBin(Lt, i, NewConst(vector.NewInt(4))),
		NewBin(Eq, s, NewConst(vector.NewStr("ba"))),
		NewBin(And, b, NewBin(Ge, f, NewConst(vector.NewFloat(0)))),
		NewBin(Or, b, NewBin(Ne, i, NewConst(vector.NewInt(0)))),
		NewNot(b),
		NewNeg(i),
		NewNeg(f),
		NewCall("abs", i),
		NewCall("sqrt", f),
		NewCall("least", i, NewConst(vector.NewInt(2))),
		NewCall("greatest", f, NewConst(vector.NewFloat(1))),
		NewBetween(i, NewConst(vector.NewInt(0)), NewConst(vector.NewInt(6)), false),
		NewInList(i, []vector.Value{vector.NewInt(0), vector.NewInt(5)}, false),
		NewLike(s, "a%", false),
	}
}

// TestEvalIntoMatchesEval checks that arena evaluation produces exactly
// what classic allocation-per-node evaluation produces, for every node
// type, and that results survive until Scratch reset.
func TestEvalIntoMatchesEval(t *testing.T) {
	rel := evalRel()
	sc := &Scratch{}
	for _, e := range evalIntoExprs() {
		want, werr := e.Eval(rel)
		sc.Reset()
		got, gerr := e.EvalInto(rel, nil, sc)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%s: Eval err %v, EvalInto err %v", e, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if got.Kind() != want.Kind() || got.Len() != want.Len() {
			t.Fatalf("%s: kind/len %v/%d vs %v/%d", e, got.Kind(), got.Len(), want.Kind(), want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			if !got.Get(i).Equal(want.Get(i)) {
				t.Fatalf("%s[%d] = %v, want %v", e, i, got.Get(i), want.Get(i))
			}
		}
	}
}

// TestEvalIntoSteadyStateAllocs checks that a warmed scratch makes the
// typed hot-path nodes allocation free.
func TestEvalIntoSteadyStateAllocs(t *testing.T) {
	rel := evalRel()
	e := NewBin(Add, NewBin(Mul, NewCol("i"), NewConst(vector.NewInt(3))), NewCol("i"))
	sc := &Scratch{}
	sc.Reset()
	if _, err := e.EvalInto(rel, nil, sc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		sc.Reset()
		if _, err := e.EvalInto(rel, nil, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed EvalInto allocates %.1f per run, want 0", allocs)
	}
}

// TestEvalSelectIntoMatchesEvalSelect checks candidate-list evaluation
// under a scratch against the allocating path, over predicates exercising
// pushdown, and/or/not composition and the boolean fallback.
func TestEvalSelectIntoMatchesEvalSelect(t *testing.T) {
	rel := evalRel()
	i, f, b := NewCol("i"), NewCol("f"), NewCol("b")
	preds := []Expr{
		NewBin(Gt, i, NewConst(vector.NewInt(0))),
		NewBin(And, NewBin(Ge, i, NewConst(vector.NewInt(0))), NewBin(Lt, f, NewConst(vector.NewFloat(5)))),
		NewBin(Or, NewBin(Lt, i, NewConst(vector.NewInt(0))), NewBin(Eq, i, NewConst(vector.NewInt(12)))),
		NewNot(NewBin(Lt, i, NewConst(vector.NewInt(5)))),
		NewBetween(i, NewConst(vector.NewInt(-3)), NewConst(vector.NewInt(5)), false),
		b,
		NewConst(vector.NewBool(true)),
		NewBin(And, b, NewBin(Gt, NewBin(Add, i, i), NewConst(vector.NewInt(-10)))),
	}
	cands := [][]int32{nil, {}, {0, 2}, {0, 1, 2, 3}}
	sc := &Scratch{}
	for _, p := range preds {
		for _, cand := range cands {
			want, werr := EvalSelect(p, rel, cand)
			sc.Reset()
			got, gerr := EvalSelectInto(p, rel, cand, sc)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s: err %v vs %v", p, werr, gerr)
			}
			if len(got) != len(want) {
				t.Fatalf("%s cand %v: got %v, want %v", p, cand, got, want)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("%s cand %v: got %v, want %v", p, cand, got, want)
				}
			}
		}
	}
}

// TestEvalSelectFalsePredicateSelectsNothing pins the nil-vs-empty
// distinction: a predicate that folds to false must yield a non-nil
// empty selection ("no rows"), never nil ("no restriction") — including
// through an AND chain whose left side is false.
func TestEvalSelectFalsePredicateSelectsNothing(t *testing.T) {
	rel := evalRel()
	f := NewConst(vector.NewBool(false))
	preds := []Expr{
		f,
		NewBin(And, f, NewBin(Lt, NewCol("i"), NewConst(vector.NewInt(100)))),
		NewBin(And, NewBin(Lt, NewCol("i"), NewConst(vector.NewInt(100))), f),
	}
	for _, p := range preds {
		for _, sc := range []*Scratch{nil, {}} {
			sel, err := EvalSelectInto(p, rel, nil, sc)
			if err != nil {
				t.Fatalf("%s: %v", p, err)
			}
			if sel == nil {
				t.Fatalf("%s: returned nil (means unrestricted), want non-nil empty", p)
			}
			if len(sel) != 0 {
				t.Fatalf("%s: selected %v, want nothing", p, sel)
			}
		}
	}
}

// TestScratchSlotsAreDistinct guards the arena invariant everything else
// relies on: two values obtained without an intervening Reset never
// alias.
func TestScratchSlotsAreDistinct(t *testing.T) {
	sc := &Scratch{}
	v1, v2 := sc.Vec(), sc.Vec()
	if v1 == v2 {
		t.Fatalf("Scratch.Vec returned the same vector twice")
	}
	s1, s2 := sc.Sel(), sc.Sel()
	if s1 == s2 {
		t.Fatalf("Scratch.Sel returned the same slot twice")
	}
	sc.Reset()
	if got := sc.Vec(); got != v1 {
		t.Fatalf("Reset does not recycle vectors in order")
	}
}
