package expr

import (
	"fmt"
	"strings"

	"datacell/internal/bat"
	"datacell/internal/relop"
	"datacell/internal/vector"
)

// InList is `e IN (v1, v2, …)` over constant values.
type InList struct {
	E      Expr
	Vals   []vector.Value
	Negate bool // NOT IN
}

// NewInList returns an IN-list node.
func NewInList(e Expr, vals []vector.Value, negate bool) *InList {
	return &InList{E: e, Vals: vals, Negate: negate}
}

// Type implements Expr.
func (n *InList) Type(*bat.Relation) (vector.Type, error) { return vector.Bool, nil }

func (n *InList) String() string {
	parts := make([]string, len(n.Vals))
	for i, v := range n.Vals {
		if v.Kind == vector.Str {
			parts[i] = "'" + v.S + "'"
		} else {
			parts[i] = v.String()
		}
	}
	op := " in ("
	if n.Negate {
		op = " not in ("
	}
	return n.E.String() + op + strings.Join(parts, ", ") + ")"
}

// Eval implements Expr.
func (n *InList) Eval(rel *bat.Relation) (*vector.Vector, error) {
	v, err := n.E.Eval(rel)
	if err != nil {
		return nil, err
	}
	out := make([]bool, v.Len())
	switch v.Kind() {
	case vector.Int, vector.Timestamp:
		set := make(map[int64]bool, len(n.Vals))
		for _, val := range n.Vals {
			set[val.AsInt()] = true
		}
		for i, x := range v.Ints() {
			out[i] = set[x] != n.Negate
		}
	case vector.Str:
		set := make(map[string]bool, len(n.Vals))
		for _, val := range n.Vals {
			set[val.S] = true
		}
		for i, x := range v.Strs() {
			out[i] = set[x] != n.Negate
		}
	case vector.Float:
		set := make(map[float64]bool, len(n.Vals))
		for _, val := range n.Vals {
			set[val.AsFloat()] = true
		}
		for i, x := range v.Floats() {
			out[i] = set[x] != n.Negate
		}
	default:
		for i := 0; i < v.Len(); i++ {
			hit := false
			for _, val := range n.Vals {
				if v.Get(i).Equal(val) {
					hit = true
					break
				}
			}
			out[i] = hit != n.Negate
		}
	}
	return vector.FromBools(out), nil
}

// EvalInto implements Expr. IN-lists are set-probe bound, not copy bound,
// so this defers to Eval (no buffer reuse).
func (n *InList) EvalInto(rel *bat.Relation, _ *vector.Vector, _ *Scratch) (*vector.Vector, error) {
	return n.Eval(rel)
}

// Between is `e BETWEEN lo AND hi` (inclusive both ends, SQL semantics).
type Between struct {
	E, Lo, Hi Expr
	Negate    bool
}

// NewBetween returns a BETWEEN node.
func NewBetween(e, lo, hi Expr, negate bool) *Between {
	return &Between{E: e, Lo: lo, Hi: hi, Negate: negate}
}

// Type implements Expr.
func (n *Between) Type(*bat.Relation) (vector.Type, error) { return vector.Bool, nil }

func (n *Between) String() string {
	op := " between "
	if n.Negate {
		op = " not between "
	}
	return n.E.String() + op + n.Lo.String() + " and " + n.Hi.String()
}

// Eval implements Expr.
func (n *Between) Eval(rel *bat.Relation) (*vector.Vector, error) {
	inner := NewBin(And,
		NewBin(Ge, n.E, n.Lo),
		NewBin(Le, n.E, n.Hi))
	v, err := inner.Eval(rel)
	if err != nil {
		return nil, err
	}
	if n.Negate {
		bs := v.Bools()
		out := make([]bool, len(bs))
		for i, b := range bs {
			out[i] = !b
		}
		return vector.FromBools(out), nil
	}
	return v, nil
}

// EvalInto implements Expr. The hot form of BETWEEN is the candidate-list
// pushdown below; materialised evaluation defers to Eval.
func (n *Between) EvalInto(rel *bat.Relation, _ *vector.Vector, _ *Scratch) (*vector.Vector, error) {
	return n.Eval(rel)
}

// pushdownInto lowers BETWEEN over a column with constant bounds into the
// kernel's range selection, drawing the result buffer from s when given.
// Used by EvalSelect.
func (n *Between) pushdownInto(rel *bat.Relation, cand []int32, s *Scratch) ([]int32, bool) {
	col, ok := n.E.(*Col)
	if !ok || n.Negate {
		return nil, false
	}
	lo, ok1 := constOf(n.Lo)
	hi, ok2 := constOf(n.Hi)
	if !ok1 || !ok2 {
		return nil, false
	}
	v := rel.ColByName(col.Name)
	if v == nil {
		return nil, false
	}
	if s == nil {
		return relop.SelectRange(v, lo, hi, true, true, cand), true
	}
	p := s.Sel()
	*p = relop.SelectRangeInto(*p, v, lo, hi, true, true, cand)
	return *p, true
}

// WhenClause is one WHEN…THEN arm of a Case.
type WhenClause struct {
	Cond Expr
	Then Expr
}

// Case is a searched CASE expression:
//
//	case when c1 then v1 when c2 then v2 … [else ve] end
type Case struct {
	Whens []WhenClause
	Else  Expr // nil means SQL NULL; we require Else for total functions
}

// NewCase returns a CASE node.
func NewCase(whens []WhenClause, els Expr) *Case { return &Case{Whens: whens, Else: els} }

// Type implements Expr.
func (n *Case) Type(rel *bat.Relation) (vector.Type, error) {
	if len(n.Whens) == 0 {
		return 0, fmt.Errorf("expr: case without when arms")
	}
	return n.Whens[0].Then.Type(rel)
}

func (n *Case) String() string {
	var b strings.Builder
	b.WriteString("case")
	for _, w := range n.Whens {
		b.WriteString(" when " + w.Cond.String() + " then " + w.Then.String())
	}
	if n.Else != nil {
		b.WriteString(" else " + n.Else.String())
	}
	b.WriteString(" end")
	return b.String()
}

// Eval implements Expr.
func (n *Case) Eval(rel *bat.Relation) (*vector.Vector, error) {
	if n.Else == nil {
		return nil, fmt.Errorf("expr: case requires an else arm (no null support)")
	}
	out, err := n.Else.Eval(rel)
	if err != nil {
		return nil, err
	}
	out = out.Clone()
	decided := make([]bool, out.Len())
	for _, w := range n.Whens {
		cond, err := w.Cond.Eval(rel)
		if err != nil {
			return nil, err
		}
		if cond.Kind() != vector.Bool {
			return nil, fmt.Errorf("expr: case condition is %s, not bool", cond.Kind())
		}
		val, err := w.Then.Eval(rel)
		if err != nil {
			return nil, err
		}
		cb := cond.Bools()
		for i := range cb {
			if cb[i] && !decided[i] {
				out.Set(i, val.Get(i))
				decided[i] = true
			}
		}
	}
	return out, nil
}

// EvalInto implements Expr; CASE arms are cold, so this defers to Eval.
func (n *Case) EvalInto(rel *bat.Relation, _ *vector.Vector, _ *Scratch) (*vector.Vector, error) {
	return n.Eval(rel)
}

// Like is the SQL LIKE operator with % (any run) and _ (any one char).
type Like struct {
	E       Expr
	Pattern string
	Negate  bool
}

// NewLike returns a LIKE node.
func NewLike(e Expr, pattern string, negate bool) *Like {
	return &Like{E: e, Pattern: pattern, Negate: negate}
}

// Type implements Expr.
func (n *Like) Type(*bat.Relation) (vector.Type, error) { return vector.Bool, nil }

func (n *Like) String() string {
	op := " like '"
	if n.Negate {
		op = " not like '"
	}
	return n.E.String() + op + n.Pattern + "'"
}

// Eval implements Expr.
func (n *Like) Eval(rel *bat.Relation) (*vector.Vector, error) {
	v, err := n.E.Eval(rel)
	if err != nil {
		return nil, err
	}
	if v.Kind() != vector.Str {
		return nil, fmt.Errorf("expr: like over %s column", v.Kind())
	}
	out := make([]bool, v.Len())
	for i, s := range v.Strs() {
		out[i] = likeMatch(s, n.Pattern) != n.Negate
	}
	return vector.FromBools(out), nil
}

// EvalInto implements Expr; pattern matching is match bound, not copy
// bound, so this defers to Eval.
func (n *Like) EvalInto(rel *bat.Relation, _ *vector.Vector, _ *Scratch) (*vector.Vector, error) {
	return n.Eval(rel)
}

// likeMatch implements SQL LIKE with an iterative two-pointer algorithm
// (no backtracking explosion on repeated %).
func likeMatch(s, p string) bool {
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
