package expr

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"datacell/internal/bat"
	"datacell/internal/vector"
)

func testRel() *bat.Relation {
	return bat.NewRelation(
		[]string{"a", "b", "f", "s"},
		[]*vector.Vector{
			vector.FromInts([]int64{1, 2, 3, 4}),
			vector.FromInts([]int64{10, 20, 30, 40}),
			vector.FromFloats([]float64{0.5, 1.5, 2.5, 3.5}),
			vector.FromStrs([]string{"w", "x", "y", "z"}),
		},
	)
}

func TestConstEval(t *testing.T) {
	r := testRel()
	v, err := NewConst(vector.NewInt(7)).Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 4 || v.Ints()[3] != 7 {
		t.Errorf("const: %v", v)
	}
}

func TestColEval(t *testing.T) {
	r := testRel()
	v, err := NewCol("b").Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if v.Ints()[1] != 20 {
		t.Errorf("col: %v", v)
	}
	if _, err := NewCol("nope").Eval(r); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestArith(t *testing.T) {
	r := testRel()
	cases := []struct {
		e    Expr
		want []int64
	}{
		{NewBin(Add, NewCol("a"), NewCol("b")), []int64{11, 22, 33, 44}},
		{NewBin(Sub, NewCol("b"), NewCol("a")), []int64{9, 18, 27, 36}},
		{NewBin(Mul, NewCol("a"), NewConst(vector.NewInt(3))), []int64{3, 6, 9, 12}},
		{NewBin(Mod, NewCol("b"), NewConst(vector.NewInt(7))), []int64{3, 6, 2, 5}},
	}
	for _, c := range cases {
		v, err := c.e.Eval(r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(v.Ints(), c.want) {
			t.Errorf("%s = %v, want %v", c.e, v.Ints(), c.want)
		}
	}
}

func TestDivision(t *testing.T) {
	r := testRel()
	// Integer division truncates, SQL style.
	v, err := NewBin(Div, NewCol("b"), NewConst(vector.NewInt(7))).Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != vector.Int || !reflect.DeepEqual(v.Ints(), []int64{1, 2, 4, 5}) {
		t.Errorf("int div: %v", v)
	}
	// Integer division by zero yields zero.
	z := bat.NewRelation([]string{"x"}, []*vector.Vector{vector.FromInts([]int64{0})})
	v, err = NewBin(Div, NewConst(vector.NewInt(1)), NewCol("x")).Eval(z)
	if err != nil {
		t.Fatal(err)
	}
	if v.Ints()[0] != 0 {
		t.Errorf("int div by zero: %v", v.Ints())
	}
	// Float division keeps fractional results; by zero yields NaN.
	v, err = NewBin(Div, NewCol("f"), NewConst(vector.NewFloat(2))).Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != vector.Float || v.Floats()[0] != 0.25 {
		t.Errorf("float div: %v", v)
	}
	zf := bat.NewRelation([]string{"x"}, []*vector.Vector{vector.FromFloats([]float64{0})})
	v, err = NewBin(Div, NewConst(vector.NewFloat(1)), NewCol("x")).Eval(zf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(v.Floats()[0]) {
		t.Errorf("float div by zero: %v", v.Floats())
	}
}

func TestMixedIntFloatArith(t *testing.T) {
	r := testRel()
	v, err := NewBin(Add, NewCol("a"), NewCol("f")).Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != vector.Float || v.Floats()[0] != 1.5 {
		t.Errorf("mixed: %v", v)
	}
}

func TestStringConcat(t *testing.T) {
	r := testRel()
	v, err := NewBin(Add, NewCol("s"), NewConst(vector.NewStr("!"))).Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if v.Strs()[0] != "w!" {
		t.Errorf("concat: %v", v.Strs())
	}
	if _, err := NewBin(Mul, NewCol("s"), NewCol("s")).Eval(r); err == nil {
		t.Error("string * string should fail")
	}
}

func TestComparisons(t *testing.T) {
	r := testRel()
	cases := []struct {
		e    Expr
		want []bool
	}{
		{NewBin(Gt, NewCol("a"), NewConst(vector.NewInt(2))), []bool{false, false, true, true}},
		{NewBin(Eq, NewCol("s"), NewConst(vector.NewStr("x"))), []bool{false, true, false, false}},
		{NewBin(Le, NewCol("f"), NewConst(vector.NewFloat(1.5))), []bool{true, true, false, false}},
		{NewBin(Ne, NewCol("a"), NewCol("a")), []bool{false, false, false, false}},
	}
	for _, c := range cases {
		v, err := c.e.Eval(r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(v.Bools(), c.want) {
			t.Errorf("%s = %v, want %v", c.e, v.Bools(), c.want)
		}
	}
}

func TestLogicAndNot(t *testing.T) {
	r := testRel()
	e := NewBin(And,
		NewBin(Gt, NewCol("a"), NewConst(vector.NewInt(1))),
		NewBin(Lt, NewCol("a"), NewConst(vector.NewInt(4))))
	v, err := e.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Bools(), []bool{false, true, true, false}) {
		t.Errorf("and: %v", v.Bools())
	}
	e2 := NewBin(Or, e, NewBin(Eq, NewCol("a"), NewConst(vector.NewInt(1))))
	v, err = e2.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Bools(), []bool{true, true, true, false}) {
		t.Errorf("or: %v", v.Bools())
	}
	v, err = NewNot(e2).Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Bools(), []bool{false, false, false, true}) {
		t.Errorf("not: %v", v.Bools())
	}
}

func TestNeg(t *testing.T) {
	r := testRel()
	v, err := NewNeg(NewCol("a")).Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if v.Ints()[2] != -3 {
		t.Errorf("neg: %v", v.Ints())
	}
	v, err = NewNeg(NewCol("f")).Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if v.Floats()[0] != -0.5 {
		t.Errorf("neg float: %v", v.Floats())
	}
	if _, err := NewNeg(NewCol("s")).Eval(r); err == nil {
		t.Error("neg of string should fail")
	}
}

func TestCalls(t *testing.T) {
	r := testRel()
	v, err := NewCall("abs", NewNeg(NewCol("a"))).Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Ints(), []int64{1, 2, 3, 4}) {
		t.Errorf("abs: %v", v.Ints())
	}
	v, err = NewCall("floor", NewCol("f")).Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if v.Floats()[1] != 1.0 {
		t.Errorf("floor: %v", v.Floats())
	}
	v, err = NewCall("sqrt", NewConst(vector.NewFloat(9))).Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if v.Floats()[0] != 3 {
		t.Errorf("sqrt: %v", v.Floats())
	}
	v, err = NewCall("greatest", NewCol("a"), NewConst(vector.NewInt(2))).Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Ints(), []int64{2, 2, 3, 4}) {
		t.Errorf("greatest: %v", v.Ints())
	}
	if _, err := NewCall("bogus").Eval(r); err == nil {
		t.Error("unknown function should fail")
	}
}

func TestNowInjection(t *testing.T) {
	r := testRel()
	fixed := time.Unix(100, 0)
	c := NewCall("now")
	c.Now = func() time.Time { return fixed }
	v, err := c.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != vector.Timestamp || v.Ints()[0] != fixed.UnixMicro() {
		t.Errorf("now: %v", v)
	}
}

func TestEvalSelectPushdown(t *testing.T) {
	r := testRel()
	// col-vs-const pushdown
	sel, err := EvalSelect(NewBin(Gt, NewCol("a"), NewConst(vector.NewInt(2))), r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel, []int32{2, 3}) {
		t.Errorf("pushdown: %v", sel)
	}
	// const-vs-col flips
	sel, err = EvalSelect(NewBin(Gt, NewConst(vector.NewInt(2)), NewCol("a")), r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel, []int32{0}) {
		t.Errorf("flipped: %v", sel)
	}
	// conjunction narrows candidates
	e := NewBin(And,
		NewBin(Ge, NewCol("a"), NewConst(vector.NewInt(2))),
		NewBin(Le, NewCol("b"), NewConst(vector.NewInt(30))))
	sel, err = EvalSelect(e, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel, []int32{1, 2}) {
		t.Errorf("and: %v", sel)
	}
	// col-vs-col falls back to bool vector
	sel, err = EvalSelect(NewBin(Lt, NewCol("a"), NewCol("b")), r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 4 {
		t.Errorf("fallback: %v", sel)
	}
	// not
	sel, err = EvalSelect(NewNot(NewBin(Gt, NewCol("a"), NewConst(vector.NewInt(2)))), r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel, []int32{0, 1}) {
		t.Errorf("not: %v", sel)
	}
	// negative constant folding through Neg
	sel, err = EvalSelect(NewBin(Gt, NewCol("a"), NewNeg(NewConst(vector.NewInt(1)))), r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 4 {
		t.Errorf("neg const: %v", sel)
	}
}

func TestEvalSelectBoolConst(t *testing.T) {
	r := testRel()
	sel, err := EvalSelect(NewConst(vector.NewBool(true)), r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 4 {
		t.Errorf("true const: %v", sel)
	}
	sel, err = EvalSelect(NewConst(vector.NewBool(false)), r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 0 {
		t.Errorf("false const: %v", sel)
	}
}

func TestEvalSelectNonBoolError(t *testing.T) {
	r := testRel()
	if _, err := EvalSelect(NewCol("a"), r, nil); err == nil {
		t.Error("non-bool predicate should fail")
	}
}

// Property: the pushdown path and the materialised boolean path agree.
func TestPushdownEquivalenceProperty(t *testing.T) {
	f := func(data []int64, threshold int64) bool {
		r := bat.NewRelation([]string{"x"}, []*vector.Vector{vector.FromInts(data)})
		e := NewBin(Lt, NewCol("x"), NewConst(vector.NewInt(threshold)))
		fast, err := EvalSelect(e, r, nil)
		if err != nil {
			return false
		}
		// Force the slow path by wrapping in an opaque comparison of
		// col-vs-col shape: (x < t) = true
		slowE := NewBin(Eq, e, NewConst(vector.NewBool(true)))
		slow, err := EvalSelect(slowE, r, nil)
		if err != nil {
			return false
		}
		if len(fast) != len(slow) {
			return false
		}
		for i := range fast {
			if fast[i] != slow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTypeInference(t *testing.T) {
	r := testRel()
	cases := []struct {
		e    Expr
		want vector.Type
	}{
		{NewBin(Add, NewCol("a"), NewCol("b")), vector.Int},
		{NewBin(Div, NewCol("a"), NewCol("b")), vector.Int},
		{NewBin(Div, NewCol("a"), NewCol("f")), vector.Float},
		{NewBin(Add, NewCol("a"), NewCol("f")), vector.Float},
		{NewBin(Gt, NewCol("a"), NewCol("b")), vector.Bool},
		{NewCall("now"), vector.Timestamp},
		{NewConst(vector.NewStr("q")), vector.Str},
	}
	for _, c := range cases {
		got, err := c.e.Type(r)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		if got != c.want {
			t.Errorf("Type(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	e := NewBin(And,
		NewBin(Gt, NewCol("a"), NewConst(vector.NewInt(1))),
		NewNot(NewBin(Eq, NewCol("s"), NewConst(vector.NewStr("x")))))
	s := e.String()
	if s != "((a > 1) and not (s = 'x'))" {
		t.Errorf("String() = %q", s)
	}
}
