// Package microbench implements the paper's §6.1 micro-benchmarks: the
// query-chain topology, the sensor/actuator communication pipeline
// (Figure 4), the batch-processing latency sweep (Figure 5a), the
// processing-strategy comparison (Figure 5b) and the pure-kernel
// throughput measurement.
package microbench

import (
	"fmt"
	"math/rand"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/core"
	"datacell/internal/relop"
	"datacell/internal/vector"
)

// tupleSchema is the two-column schema of the micro-benchmark stream: a
// creation timestamp (set by the sensor) and a random integer payload.
var (
	tupleNames = []string{"ts", "v"}
	tupleTypes = []vector.Type{vector.Timestamp, vector.Int}
)

// NewStreamBasket returns a fresh micro-benchmark stream basket.
func NewStreamBasket(name string) *basket.Basket {
	return basket.New(name, tupleNames, tupleTypes)
}

// MakeTuples creates n random tuples: payload uniform in [0, domain), the
// creation timestamp taken from now().
func MakeTuples(n int, domain int64, rng *rand.Rand, now func() time.Time) *bat.Relation {
	ts := make([]int64, n)
	vs := make([]int64, n)
	t := now().UnixMicro()
	for i := 0; i < n; i++ {
		ts[i] = t
		vs[i] = rng.Int63n(domain)
	}
	return bat.NewRelation(tupleNames, []*vector.Vector{
		vector.FromTimestamps(ts), vector.FromInts(vs),
	})
}

// QueryChain wires the paper's query-chain topology (Figure 3): k
// pass-everything select factories in a pipeline, the most general query
// first. It returns the entry basket, the exit basket and the factories.
//
// Each stage corresponds to the continuous query
//
//	select * from [select * from prev] s
//
// so every tuple flows through all k stages — the worst case for data
// volume through the system.
func QueryChain(k int, scheduler *core.Scheduler) (in, out *basket.Basket, err error) {
	baskets := make([]*basket.Basket, k+1)
	for i := range baskets {
		baskets[i] = NewStreamBasket(fmt.Sprintf("chain%d", i))
	}
	for i := 0; i < k; i++ {
		var spare *bat.Relation
		f, ferr := core.NewFactory(fmt.Sprintf("chainq%d", i),
			[]*basket.Basket{baskets[i]},
			[]*basket.Basket{baskets[i+1]},
			func(ctx *core.Context) error {
				rel := ctx.In(0).ExchangeLocked(spare)
				spare = rel
				if rel.Len() == 0 {
					return nil
				}
				_, err := ctx.Out(0).AppendLocked(rel)
				return err
			})
		if ferr != nil {
			return nil, nil, ferr
		}
		if err := scheduler.Register(f); err != nil {
			return nil, nil, err
		}
	}
	return baskets[0], baskets[k], nil
}

// RangeQueries builds q continuous range-select queries over the payload
// column, each selecting a random range of the given selectivity over
// domain [0, domain). They are the workload of Figures 5a and 5b.
func RangeQueries(q int, domain int64, selectivity float64, rng *rand.Rand) []core.ScanQuery {
	width := int64(float64(domain) * selectivity)
	if width < 1 {
		width = 1
	}
	out := make([]core.ScanQuery, q)
	for i := range out {
		lo := rng.Int63n(domain - width)
		hi := lo + width
		out[i] = core.ScanQuery{
			Name: fmt.Sprintf("range%d", i),
			Scan: func(rel *bat.Relation) (matched, covered []int32) {
				sel := relop.SelectRange(rel.ColByName("v"),
					vector.NewInt(lo), vector.NewInt(hi), true, false, nil)
				// Full-stream query: every tuple is covered (seen),
				// qualifying ones are emitted.
				return sel, relop.CandAll(rel.Len())
			},
		}
	}
	return out
}

// DisjointRangeQueries builds q queries over consecutive, disjoint ranges
// of the given width starting at 0 (the domain must be at least q*width).
// Matched tuples are covered; this is the regime where the partial-deletes
// strategy can shrink the input for later queries in the chain, and the
// only regime in which all three strategies are result-equivalent.
func DisjointRangeQueries(q int, domain, width int64) []core.ScanQuery {
	if width < 1 {
		width = 1
	}
	out := make([]core.ScanQuery, q)
	for i := range out {
		lo := int64(i) * width
		hi := lo + width
		if hi > domain {
			lo, hi = domain-width, domain
		}
		out[i] = core.ScanQuery{
			Name: fmt.Sprintf("disj%d", i),
			Scan: func(rel *bat.Relation) (matched, covered []int32) {
				sel := relop.SelectRange(rel.ColByName("v"),
					vector.NewInt(lo), vector.NewInt(hi), true, false, nil)
				return sel, sel
			},
		}
	}
	return out
}

// Strategy selects the multi-query processing scheme of Figure 5b.
type Strategy uint8

// Processing strategies (§4.2).
const (
	StrategySeparate Strategy = iota
	StrategyShared
	StrategyPartial
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategySeparate:
		return "separate-baskets"
	case StrategyShared:
		return "shared-baskets"
	case StrategyPartial:
		return "partial-deletes"
	}
	return "?"
}

// MultiQuery wires queries over stream in under the chosen strategy and
// registers all factories. It returns the per-query result baskets.
func MultiQuery(strategy Strategy, in *basket.Basket, queries []core.ScanQuery, sch *core.Scheduler) ([]*basket.Basket, error) {
	results := make([]*basket.Basket, len(queries))
	bound := make([]core.StreamQuery, len(queries))
	for i, q := range queries {
		results[i] = NewStreamBasket(fmt.Sprintf("%s.res%d", strategy, i))
		bound[i] = q.Bind(results[i])
	}
	var fs []*core.Factory
	var err error
	switch strategy {
	case StrategySeparate:
		fs, err = core.SeparateBaskets(strategy.String(), in, bound)
	case StrategyShared:
		fs, err = core.SharedBaskets(strategy.String(), in, bound)
	case StrategyPartial:
		fs, err = core.PartialDeletes(strategy.String(), in, bound)
	}
	if err != nil {
		return nil, err
	}
	for _, f := range fs {
		if err := sch.Register(f); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// BatchResult is one point of the Figure 5a sweep.
type BatchResult struct {
	Queries     int
	BatchSize   int
	Tuples      int
	LatencyPer  time.Duration // average end-to-end latency per tuple
	ElapsedProc time.Duration // pure processing time
}

// RunBatchSweep measures average per-tuple latency for q parallel range
// queries processing a stream of `total` tuples that arrive one every
// interArrival, in batches of batchSize (the Figure 5a experiment).
//
// Processing cost is measured for real; arrivals follow a virtual clock,
// standing in for the paper's sensor process. Latency of a tuple is the
// time from its (virtual) arrival to the completion of the batch that
// carried it, including queueing behind earlier batches. This reproduces
// both ends of the paper's curve: with T=1 the per-firing overhead exceeds
// the inter-arrival gap and the backlog (hence latency) grows without
// bound, while with very large T the batch fill time dominates and latency
// degrades again.
func RunBatchSweep(q, total, batchSize int, interArrival time.Duration, seed int64) (BatchResult, error) {
	rng := rand.New(rand.NewSource(seed))
	sch := core.NewScheduler()
	in := NewStreamBasket("sweep.in")
	queries := RangeQueries(q, 10_000, 0.001, rng)
	if _, err := MultiQuery(StrategySeparate, in, queries, sch); err != nil {
		return BatchResult{}, err
	}

	var procTotal time.Duration
	var latencyTotal time.Duration
	var procFree time.Duration // virtual time the engine becomes idle
	done := 0
	for done < total {
		n := min(batchSize, total-done)
		batch := MakeTuples(n, 10_000, rng, time.Now)
		if _, err := in.Append(batch); err != nil {
			return BatchResult{}, err
		}
		start := time.Now()
		if _, err := sch.RunUntilQuiescent(0); err != nil {
			return BatchResult{}, err
		}
		proc := time.Since(start)
		procTotal += proc

		// Virtual-clock bookkeeping: the batch is complete when its last
		// tuple has arrived; processing starts once the engine is free.
		lastArrival := time.Duration(done+n-1) * interArrival
		startAt := max(lastArrival, procFree)
		finish := startAt + proc
		procFree = finish
		for i := 0; i < n; i++ {
			arrival := time.Duration(done+i) * interArrival
			latencyTotal += finish - arrival
		}
		done += n
	}
	return BatchResult{
		Queries:     q,
		BatchSize:   batchSize,
		Tuples:      total,
		LatencyPer:  latencyTotal / time.Duration(total),
		ElapsedProc: procTotal,
	}, nil
}

// StrategyResult is one point of the Figure 5b sweep.
type StrategyResult struct {
	Strategy Strategy
	Queries  int
	Tuples   int
	Elapsed  time.Duration
	Results  int // total result tuples across queries
}

// RunStrategySweep measures the time to push one batch of total tuples
// through q queries under the given strategy (the Figure 5b experiment;
// the paper uses T = 10^5). The queries select disjoint 0.1%-wide ranges —
// the regime the partial-deletes strategy is designed for, and the only
// one in which all three strategies are result-equivalent.
func RunStrategySweep(strategy Strategy, q, total int, seed int64) (StrategyResult, error) {
	rng := rand.New(rand.NewSource(seed))
	sch := core.NewScheduler()
	in := NewStreamBasket("strat.in")
	const width = 10 // 0.1% of the base domain
	domain := max(int64(10_000), int64(q)*width)
	queries := DisjointRangeQueries(q, domain, width)
	results, err := MultiQuery(strategy, in, queries, sch)
	if err != nil {
		return StrategyResult{}, err
	}
	batch := MakeTuples(total, domain, rng, time.Now)
	if _, err := in.Append(batch); err != nil {
		return StrategyResult{}, err
	}
	start := time.Now()
	if _, err := sch.RunUntilQuiescent(0); err != nil {
		return StrategyResult{}, err
	}
	elapsed := time.Since(start)
	sum := 0
	for _, r := range results {
		sum += r.Len()
	}
	return StrategyResult{Strategy: strategy, Queries: q, Tuples: total, Elapsed: elapsed, Results: sum}, nil
}

// KernelThroughput measures pure kernel activity: tuples per second
// through a single select factory fed from a pre-filled basket, no
// communication in the loop (the §6.1 "pure kernel activity" number).
// The firing body is the allocation-free idiom: two relations ping-pong
// through ExchangeLocked so basket capacity is reused, the selection
// writes into a per-factory buffer, and the matched tuples are gathered
// into a per-factory staging relation.
func KernelThroughput(tuples, rounds int, seed int64) (perSecond float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	in := NewStreamBasket("kern.in")
	out := NewStreamBasket("kern.out")
	var spare, stage *bat.Relation
	var selBuf []int32
	stage = &bat.Relation{}
	f, err := core.NewFactory("kern.q",
		[]*basket.Basket{in}, []*basket.Basket{out},
		func(ctx *core.Context) error {
			rel := ctx.In(0).ExchangeLocked(spare)
			spare = rel
			selBuf = relop.SelectRangeInto(selBuf, rel.ColByName("v"), vector.NewInt(0), vector.NewInt(10), true, false, nil)
			if len(selBuf) > 0 {
				if _, err := ctx.Out(0).AppendLocked(rel.GatherInto(stage, selBuf)); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return 0, err
	}
	var outSpare *bat.Relation
	batch := MakeTuples(tuples, 10_000, rng, time.Now)
	start := time.Now()
	n := 0
	for r := 0; r < rounds; r++ {
		if _, err := in.Append(batch); err != nil {
			return 0, err
		}
		if _, err := f.TryFire(); err != nil {
			return 0, err
		}
		out.Lock()
		outSpare = out.ExchangeLocked(outSpare)
		out.Unlock()
		n += tuples
	}
	return float64(n) / time.Since(start).Seconds(), nil
}
