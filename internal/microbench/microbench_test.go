package microbench

import (
	"math/rand"
	"testing"
	"time"

	"datacell/internal/core"
)

func TestQueryChainMovesAllTuples(t *testing.T) {
	sch := core.NewScheduler()
	in, out, err := QueryChain(4, sch)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := in.Append(MakeTuples(500, 10_000, rng, time.Now)); err != nil {
		t.Fatal(err)
	}
	if _, err := sch.RunUntilQuiescent(0); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 500 {
		t.Errorf("exit basket = %d, want 500", out.Len())
	}
	if in.Len() != 0 {
		t.Errorf("entry residue = %d", in.Len())
	}
}

func TestRangeQueriesSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	qs := RangeQueries(10, 10_000, 0.01, rng)
	rel := MakeTuples(100_000, 10_000, rng, time.Now)
	for _, q := range qs {
		matched, covered := q.Scan(rel)
		if len(covered) != rel.Len() {
			t.Fatalf("%s: covered %d, want all", q.Name, len(covered))
		}
		frac := float64(len(matched)) / float64(rel.Len())
		if frac < 0.003 || frac > 0.03 {
			t.Errorf("%s: selectivity %.4f far from 0.01", q.Name, frac)
		}
	}
}

func TestDisjointRangeQueriesDisjoint(t *testing.T) {
	qs := DisjointRangeQueries(4, 10_000, 100)
	rng := rand.New(rand.NewSource(3))
	rel := MakeTuples(10_000, 10_000, rng, time.Now)
	seen := map[int32]bool{}
	for _, q := range qs {
		m, c := q.Scan(rel)
		if len(m) != len(c) {
			t.Errorf("%s: matched != covered", q.Name)
		}
		for _, p := range m {
			if seen[p] {
				t.Fatalf("%s: position %d matched twice — ranges overlap", q.Name, p)
			}
			seen[p] = true
		}
	}
	if len(seen) == 0 {
		t.Error("no matches at all")
	}
}

func TestAllStrategiesAgreeOnResults(t *testing.T) {
	// The three processing schemes must produce the same result volume for
	// the same workload and seed.
	const q, n, seed = 8, 20_000, 42
	var counts [3]int
	for i, s := range []Strategy{StrategySeparate, StrategyShared, StrategyPartial} {
		res, err := RunStrategySweep(s, q, n, seed)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		counts[i] = res.Results
		if res.Elapsed <= 0 {
			t.Errorf("%s: no elapsed time", s)
		}
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Errorf("strategies disagree: separate=%d shared=%d partial=%d",
			counts[0], counts[1], counts[2])
	}
	if counts[0] == 0 {
		t.Error("no results at all")
	}
}

func TestBatchSweepLatencyShape(t *testing.T) {
	// Batch processing must beat tuple-at-a-time by a wide margin (the
	// Figure 5a cliff): with a 2µs inter-arrival gap, per-firing overhead
	// exceeds the gap at T=1 so the backlog explodes, while T=1000
	// amortises it.
	const gap = 2 * time.Microsecond
	small, err := RunBatchSweep(10, 5_000, 1, gap, 7)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunBatchSweep(10, 5_000, 1_000, gap, 7)
	if err != nil {
		t.Fatal(err)
	}
	if big.LatencyPer >= small.LatencyPer {
		t.Errorf("batch latency %v not below tuple-at-a-time %v",
			big.LatencyPer, small.LatencyPer)
	}
	if small.LatencyPer/big.LatencyPer < 5 {
		t.Logf("warning: batch speedup only %.1fx (timing-sensitive)",
			float64(small.LatencyPer)/float64(big.LatencyPer))
	}
}

func TestKernelThroughputPositive(t *testing.T) {
	rate, err := KernelThroughput(100_000, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 1e5 {
		t.Errorf("kernel throughput %.0f tuples/s suspiciously low", rate)
	}
}

func TestCommPipelineWithAndWithoutKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("network pipeline in -short mode")
	}
	with, err := RunCommPipeline(4, 5_000, true)
	if err != nil {
		t.Fatal(err)
	}
	without, err := RunCommPipeline(4, 5_000, false)
	if err != nil {
		t.Fatal(err)
	}
	if with.Throughput <= 0 || without.Throughput <= 0 {
		t.Fatalf("throughput: with=%v without=%v", with.Throughput, without.Throughput)
	}
	// The kernel-in-loop pipeline cannot beat the raw communication
	// ceiling (Figure 4b's ordering).
	if with.Throughput > without.Throughput*1.5 {
		t.Errorf("kernel pipeline (%.0f/s) implausibly faster than raw pipe (%.0f/s)",
			with.Throughput, without.Throughput)
	}
}

func TestStrategyString(t *testing.T) {
	for _, s := range []Strategy{StrategySeparate, StrategyShared, StrategyPartial} {
		if s.String() == "?" {
			t.Errorf("missing name for strategy %d", s)
		}
	}
}
