package microbench

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"datacell/internal/core"
	"datacell/internal/stream"
)

// CommResult is one point of the Figure 4 experiment: a full pipeline with
// inter-process communication from a sensor process over TCP through the
// kernel (a query chain) and back over TCP to an actuator process.
type CommResult struct {
	Queries    int
	Tuples     int
	WithKernel bool
	Elapsed    time.Duration // E(b): first tuple created -> last tuple delivered
	Throughput float64       // tuples per second end to end
	AvgLatency time.Duration // mean per-tuple latency L(t) = D(t) - C(t)
}

// RunCommPipeline measures the elapsed time and throughput of shipping
// `tuples` two-column tuples from a sensor through a chain of q
// `select *` queries to an actuator, all over localhost TCP. With
// withKernel=false the sensor feeds the actuator directly, isolating the
// pure communication overhead (the flat curve of Figure 4a).
func RunCommPipeline(q, tuples int, withKernel bool) (CommResult, error) {
	res := CommResult{Queries: q, Tuples: tuples, WithKernel: withKernel}

	// Actuator: a TCP server collecting result tuples and computing
	// latency from the embedded creation timestamps.
	actLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer actLn.Close()
	type actStats struct {
		n       int
		latSum  time.Duration
		last    time.Time
		doneErr error
	}
	actDone := make(chan actStats, 1)
	go func() {
		var st actStats
		conn, err := actLn.Accept()
		if err != nil {
			st.doneErr = err
			actDone <- st
			return
		}
		defer conn.Close()
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			sep := strings.IndexByte(line, '|')
			if sep < 0 {
				continue
			}
			created, err := strconv.ParseInt(line[:sep], 10, 64)
			if err != nil {
				continue
			}
			now := time.Now()
			st.n++
			st.latSum += now.Sub(time.UnixMicro(created))
			st.last = now
			if st.n >= tuples {
				break
			}
		}
		st.doneErr = sc.Err()
		actDone <- st
	}()

	var sensorTarget string
	var sch *core.Scheduler
	var closers []func()
	if withKernel {
		sch = core.NewScheduler()
		in, out, err := QueryChain(q, sch)
		if err != nil {
			return res, err
		}
		tr, err := stream.ListenTCP("127.0.0.1:0", stream.NewReceptor(in))
		if err != nil {
			return res, err
		}
		closers = append(closers, tr.Close)
		em := stream.NewEmitter(out)
		actConn, err := net.Dial("tcp", actLn.Addr().String())
		if err != nil {
			return res, err
		}
		em.SubscribeWriter(actConn)
		em.Start()
		closers = append(closers, func() { em.Stop(); actConn.Close() })
		if err := sch.Start(); err != nil {
			return res, err
		}
		closers = append(closers, sch.Stop)
		sensorTarget = tr.Addr()
	} else {
		sensorTarget = actLn.Addr().String()
	}

	// Sensor: a separate goroutine standing in for the sensor process,
	// creating tuples with their creation timestamp in column one.
	start := time.Now()
	senderErr := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", sensorTarget)
		if err != nil {
			senderErr <- err
			return
		}
		w := bufio.NewWriter(conn)
		for i := 0; i < tuples; i++ {
			fmt.Fprintf(w, "%d|%d\n", time.Now().UnixMicro(), i%10000)
		}
		w.Flush()
		// Keep the connection open until the actuator confirms; closing
		// early would tear down the pipeline in kernel-less mode.
		senderErr <- nil
		time.Sleep(50 * time.Millisecond)
		conn.Close()
	}()

	if err := <-senderErr; err != nil {
		return res, err
	}
	select {
	case st := <-actDone:
		if st.doneErr != nil && st.n < tuples {
			return res, fmt.Errorf("microbench: actuator: %w after %d tuples", st.doneErr, st.n)
		}
		res.Elapsed = st.last.Sub(start)
		if st.n > 0 {
			res.AvgLatency = st.latSum / time.Duration(st.n)
			res.Throughput = float64(st.n) / res.Elapsed.Seconds()
		}
	case <-time.After(2 * time.Minute):
		return res, fmt.Errorf("microbench: pipeline stalled")
	}
	for i := len(closers) - 1; i >= 0; i-- {
		closers[i]()
	}
	return res, nil
}
