// Package adapt implements the load-feedback parallelism controller: a
// hysteresis policy that turns per-group load samples (ingest stalls,
// basket occupancy, clone utilisation) into per-group partition-count
// decisions. The package is pure policy — it owns no goroutines, takes
// no locks and touches no baskets; the engine samples the signals on its
// metronome tick, feeds them to Decide and applies the returned target
// through the ordinary quiesce-and-swap rewire path.
//
// The policy is deliberately conservative, mirroring the paper's
// scheduler argument (§5) that the kernel should exploit whatever the
// hardware offers — and nothing more:
//
//   - scale UP only on sustained backpressure: occupancy at or above the
//     high-water mark, or ingest receptors spending a large fraction of
//     the window stalled, for Patience consecutive ticks;
//   - scale DOWN only on sustained idleness: clone utilisation below
//     IdleFrac with occupancy at or below the low-water mark, again for
//     Patience consecutive ticks;
//   - always clamp to min(MaxP, GOMAXPROCS) and to the plan's
//     partitionability verdict (Sample.MaxUseful) — a one-core box or a
//     whole-stream plan never scales up, which is what keeps "auto"
//     from re-creating the P=2 < P=1 inversion static sweeps exhibit;
//   - a cooldown between rewires bounds thrash under oscillating load.
package adapt

import (
	"fmt"
	"runtime"
	"time"
)

// Config tunes the controller. The zero value means defaults.
type Config struct {
	// Tick is the nominal sampling interval; it is the fallback window
	// when a sample does not carry its own. Default 50ms.
	Tick time.Duration
	// HighWater is the occupancy (resident tuples in the group's hottest
	// scanned basket) at or above which the group counts as
	// backpressured. Default 65536, matching the ingest periphery's
	// backpressure watermark.
	HighWater int
	// LowWater is the occupancy at or below which clones may be
	// considered idle. Default HighWater/8.
	LowWater int
	// StallFrac is the fraction of the window the ingest receptors must
	// have spent stalled for the group to count as backpressured even
	// when occupancy is capped by the watermarks. Default 0.25.
	StallFrac float64
	// IdleFrac is the per-clone utilisation (busy time / (P × window))
	// below which the wiring counts as idle. Default 0.2.
	IdleFrac float64
	// Patience is how many consecutive ticks a signal must persist
	// before the controller acts — the hysteresis K. Default 3.
	Patience int
	// Cooldown is the minimum time between rewires of one group; a
	// rewire quiesces factories and drains baskets, so back-to-back
	// rewires under oscillating load would thrash. Default 8×Tick.
	Cooldown time.Duration
	// MaxP caps the partition count. Default GOMAXPROCS — clones beyond
	// the core count only add routing and merge overhead.
	MaxP int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Tick <= 0 {
		c.Tick = 50 * time.Millisecond
	}
	if c.HighWater <= 0 {
		c.HighWater = 65536
	}
	if c.LowWater <= 0 {
		c.LowWater = c.HighWater / 8
	}
	if c.StallFrac <= 0 {
		c.StallFrac = 0.25
	}
	if c.IdleFrac <= 0 {
		c.IdleFrac = 0.2
	}
	if c.Patience <= 0 {
		c.Patience = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 8 * c.Tick
	}
	if c.MaxP <= 0 {
		c.MaxP = runtime.GOMAXPROCS(0)
	}
	return c
}

// Sample is one windowed load snapshot of a query group. All counters
// are deltas over the window, not lifetime totals.
type Sample struct {
	// Occupancy is the resident tuple count of the group's hottest
	// scanned basket (stream, private replicas, partition baskets; the
	// catch-all is excluded — no clone drains it).
	Occupancy int
	// Stalls and StallTime are the ingest receptors' backpressure stalls
	// and stalled time within the window.
	Stalls    int64
	StallTime time.Duration
	// Busy is the time the wiring's factories spent executing bodies
	// within the window, summed across clones; Fires the firings.
	Busy  time.Duration
	Fires int64
	// Window is the wall time the deltas cover (0 means Config.Tick).
	Window time.Duration
	// CurrentP is the partition count of the installed wiring.
	CurrentP int
	// MaxUseful is the plan-side clamp: the largest P the group's
	// partitionability verdict can exploit (1 for whole-stream plans).
	// 0 means unknown, which leaves only the core clamp.
	MaxUseful int
}

// Decision is the controller's verdict when it decides to act.
type Decision struct {
	P      int    // new partition count to rewire to
	Reason string // human-readable justification, surfaced in GroupInfo/explain
}

// Controller holds the hysteresis state of one query group.
type Controller struct {
	cfg  Config
	up   int       // consecutive backpressured ticks
	down int       // consecutive idle ticks
	last time.Time // time of the last acted-on decision

	decisions int64
}

// New returns a controller with cfg (zero fields defaulted).
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Decisions returns how many decisions the controller has issued.
func (c *Controller) Decisions() int64 { return c.decisions }

// limit returns the P ceiling for a sample: the configured/core cap
// intersected with the plan verdict's clamp.
func (c *Controller) limit(s Sample) int {
	limit := c.cfg.MaxP
	if s.MaxUseful >= 1 && s.MaxUseful < limit {
		limit = s.MaxUseful
	}
	if limit < 1 {
		limit = 1
	}
	return limit
}

// Decide consumes one sample and reports whether the group should
// rewire. It never returns act=true twice within Cooldown, except for
// the hard clamp: a wiring running more clones than the cores or the
// plan can use is pure overhead and is cut back immediately.
func (c *Controller) Decide(now time.Time, s Sample) (Decision, bool) {
	limit := c.limit(s)
	if s.CurrentP > limit {
		c.up, c.down = 0, 0
		c.last = now
		c.decisions++
		return Decision{
			P:      limit,
			Reason: fmt.Sprintf("clamp: P=%d exceeds limit %d (min of cores and plan verdict)", s.CurrentP, limit),
		}, true
	}

	window := s.Window
	if window <= 0 {
		window = c.cfg.Tick
	}
	stalled := s.StallTime >= time.Duration(float64(window)*c.cfg.StallFrac)
	backpressured := s.Occupancy >= c.cfg.HighWater || stalled
	util := 0.0
	if s.CurrentP > 0 && window > 0 {
		util = float64(s.Busy) / (float64(window) * float64(s.CurrentP))
	}
	idle := s.CurrentP > 1 && util < c.cfg.IdleFrac && s.Occupancy <= c.cfg.LowWater

	switch {
	case backpressured && s.CurrentP < limit:
		c.up++
		c.down = 0
	case idle:
		c.down++
		c.up = 0
	default:
		c.up, c.down = 0, 0
	}

	// The counters keep accumulating through the cooldown so a persistent
	// signal acts the moment the cooldown expires, but no decision is
	// issued before then.
	if !c.last.IsZero() && now.Sub(c.last) < c.cfg.Cooldown {
		return Decision{}, false
	}

	switch {
	case c.up >= c.cfg.Patience:
		p := s.CurrentP * 2
		if p > limit {
			p = limit
		}
		c.up, c.down = 0, 0
		c.last = now
		c.decisions++
		return Decision{
			P: p,
			Reason: fmt.Sprintf("scale-up to P=%d: occupancy %d vs high water %d, stall %v of %v window, %d ticks sustained",
				p, s.Occupancy, c.cfg.HighWater, s.StallTime.Round(time.Microsecond), window.Round(time.Microsecond), c.cfg.Patience),
		}, true
	case c.down >= c.cfg.Patience:
		p := s.CurrentP / 2
		if p < 1 {
			p = 1
		}
		c.up, c.down = 0, 0
		c.last = now
		c.decisions++
		return Decision{
			P: p,
			Reason: fmt.Sprintf("scale-down to P=%d: clones %.0f%% busy (idle threshold %.0f%%), occupancy %d at/below low water %d, %d ticks sustained",
				p, util*100, c.cfg.IdleFrac*100, s.Occupancy, c.cfg.LowWater, c.cfg.Patience),
		}, true
	}
	return Decision{}, false
}
