package adapt

import (
	"strings"
	"testing"
	"time"
)

// testCfg is a deterministic configuration: no dependence on the host's
// core count, tight windows, explicit hysteresis.
func testCfg() Config {
	return Config{
		Tick:      10 * time.Millisecond,
		HighWater: 100,
		LowWater:  10,
		StallFrac: 0.25,
		IdleFrac:  0.2,
		Patience:  3,
		Cooldown:  80 * time.Millisecond,
		MaxP:      8,
	}
}

// tick advances the clock one configured tick.
func tick(now time.Time, cfg Config) time.Time { return now.Add(cfg.Tick) }

func TestScaleUpNeedsSustainedBackpressure(t *testing.T) {
	cfg := testCfg()
	c := New(cfg)
	now := time.Unix(0, 0)
	hot := Sample{Occupancy: 500, CurrentP: 1, MaxUseful: 8, Window: cfg.Tick}
	for i := 0; i < cfg.Patience-1; i++ {
		if d, ok := c.Decide(now, hot); ok {
			t.Fatalf("decided %+v after only %d ticks, patience is %d", d, i+1, cfg.Patience)
		}
		now = tick(now, cfg)
	}
	// One calm tick resets the streak.
	if _, ok := c.Decide(now, Sample{Occupancy: 50, CurrentP: 1, MaxUseful: 8, Window: cfg.Tick}); ok {
		t.Fatal("calm tick must not trigger a decision")
	}
	now = tick(now, cfg)
	for i := 0; i < cfg.Patience-1; i++ {
		if _, ok := c.Decide(now, hot); ok {
			t.Fatalf("streak did not reset: decided after %d post-calm ticks", i+1)
		}
		now = tick(now, cfg)
	}
	d, ok := c.Decide(now, hot)
	if !ok {
		t.Fatal("sustained backpressure did not trigger a scale-up")
	}
	if d.P != 2 {
		t.Fatalf("scale-up target P=%d, want doubling to 2", d.P)
	}
	if !strings.Contains(d.Reason, "scale-up") {
		t.Fatalf("reason %q does not explain the scale-up", d.Reason)
	}
}

func TestStallTimeAloneTriggersScaleUp(t *testing.T) {
	cfg := testCfg()
	c := New(cfg)
	now := time.Unix(0, 0)
	// Occupancy stays under the high-water mark (the ingest watermarks cap
	// it) but the receptors spend most of the window stalled.
	s := Sample{Occupancy: 50, StallTime: 8 * time.Millisecond, CurrentP: 2, MaxUseful: 8, Window: cfg.Tick}
	var d Decision
	var ok bool
	for i := 0; i < cfg.Patience; i++ {
		d, ok = c.Decide(now, s)
		now = tick(now, cfg)
	}
	if !ok {
		t.Fatal("sustained stall time did not trigger a scale-up")
	}
	if d.P != 4 {
		t.Fatalf("scale-up target P=%d, want 4", d.P)
	}
}

func TestScaleDownOnIdleClones(t *testing.T) {
	cfg := testCfg()
	c := New(cfg)
	now := time.Unix(0, 0)
	// P=4 but the clones are ~2% busy and the baskets are empty.
	idle := Sample{Occupancy: 0, Busy: 800 * time.Microsecond, CurrentP: 4, MaxUseful: 8, Window: cfg.Tick}
	var d Decision
	var ok bool
	for i := 0; i < cfg.Patience; i++ {
		d, ok = c.Decide(now, idle)
		now = tick(now, cfg)
	}
	if !ok {
		t.Fatal("sustained idleness did not trigger a scale-down")
	}
	if d.P != 2 {
		t.Fatalf("scale-down target P=%d, want halving to 2", d.P)
	}
	if !strings.Contains(d.Reason, "scale-down") {
		t.Fatalf("reason %q does not explain the scale-down", d.Reason)
	}
}

func TestBusyClonesAreNotScaledDown(t *testing.T) {
	cfg := testCfg()
	c := New(cfg)
	now := time.Unix(0, 0)
	// Empty baskets but clones busy 50% of the window: the group is keeping
	// up precisely because of its parallelism; don't take it away.
	busy := Sample{Occupancy: 0, Busy: 20 * time.Millisecond, CurrentP: 4, MaxUseful: 8, Window: cfg.Tick}
	for i := 0; i < 3*cfg.Patience; i++ {
		if d, ok := c.Decide(now, busy); ok {
			t.Fatalf("busy wiring scaled to %+v", d)
		}
		now = tick(now, cfg)
	}
}

func TestClampToCoresAndVerdict(t *testing.T) {
	cfg := testCfg()
	cfg.MaxP = 2 // a two-core box
	c := New(cfg)
	now := time.Unix(0, 0)
	hot := Sample{Occupancy: 500, CurrentP: 2, MaxUseful: 8, Window: cfg.Tick}
	// Backpressure at the core limit: no decision, ever.
	for i := 0; i < 3*cfg.Patience; i++ {
		if d, ok := c.Decide(now, hot); ok {
			t.Fatalf("scaled past the core limit: %+v", d)
		}
		now = tick(now, cfg)
	}
	// A whole-stream plan (MaxUseful=1) running at P=4 is clamped back
	// immediately, cooldown or not.
	d, ok := c.Decide(now, Sample{Occupancy: 500, CurrentP: 4, MaxUseful: 1, Window: cfg.Tick})
	if !ok {
		t.Fatal("over-limit wiring was not clamped")
	}
	if d.P != 1 {
		t.Fatalf("clamp target P=%d, want 1", d.P)
	}
	if !strings.Contains(d.Reason, "clamp") {
		t.Fatalf("reason %q does not explain the clamp", d.Reason)
	}
}

// TestCooldownBoundsThrash is the oscillating-load thrash test: load
// that flips between hot and idle every Patience ticks would, without a
// cooldown, rewire on every flip. The cooldown must bound the decision
// rate to at most one per cooldown window (plus the initial one).
func TestCooldownBoundsThrash(t *testing.T) {
	cfg := testCfg()
	cfg.Patience = 1 // act on a single tick — worst case for thrash
	c := New(cfg)
	now := time.Unix(0, 0)
	start := now
	p := 2
	decisions := 0
	const ticks = 100
	for i := 0; i < ticks; i++ {
		var s Sample
		if i%2 == 0 {
			s = Sample{Occupancy: 500, CurrentP: p, MaxUseful: 8, Window: cfg.Tick}
		} else {
			s = Sample{Occupancy: 0, CurrentP: p, MaxUseful: 8, Window: cfg.Tick}
		}
		if d, ok := c.Decide(now, s); ok {
			decisions++
			p = d.P
		}
		now = tick(now, cfg)
	}
	elapsed := now.Sub(start)
	bound := int(elapsed/cfg.Cooldown) + 1
	if decisions > bound {
		t.Fatalf("oscillating load produced %d decisions over %v; cooldown %v bounds it to %d",
			decisions, elapsed, cfg.Cooldown, bound)
	}
	if decisions == 0 {
		t.Fatal("no decision at all; the thrash bound is vacuous")
	}
	if got := c.Decisions(); got != int64(decisions) {
		t.Fatalf("Decisions() = %d, want %d", got, decisions)
	}
}

// TestSignalPersistsThroughCooldown pins that the hysteresis counters
// keep accumulating during the cooldown: a persistent signal acts the
// moment the cooldown expires rather than restarting its patience.
func TestSignalPersistsThroughCooldown(t *testing.T) {
	cfg := testCfg()
	cfg.Patience = 2
	c := New(cfg)
	now := time.Unix(0, 0)
	hot := Sample{Occupancy: 500, CurrentP: 1, MaxUseful: 8, Window: cfg.Tick}
	// First decision.
	var acted bool
	for i := 0; i < cfg.Patience; i++ {
		_, acted = c.Decide(now, hot)
		now = tick(now, cfg)
	}
	if !acted {
		t.Fatal("no initial decision")
	}
	// Keep the pressure on straight through the cooldown.
	hot.CurrentP = 2
	var d Decision
	deadline := now.Add(2 * cfg.Cooldown)
	for !acted2(&d, c, now, hot) {
		now = tick(now, cfg)
		if now.After(deadline) {
			t.Fatal("persistent signal never acted after the cooldown expired")
		}
	}
	if d.P != 4 {
		t.Fatalf("post-cooldown target P=%d, want 4", d.P)
	}
}

func acted2(d *Decision, c *Controller, now time.Time, s Sample) bool {
	got, ok := c.Decide(now, s)
	if ok {
		*d = got
	}
	return ok
}

func TestDefaults(t *testing.T) {
	c := New(Config{})
	cfg := c.Config()
	if cfg.Tick <= 0 || cfg.HighWater <= 0 || cfg.LowWater <= 0 || cfg.Patience <= 0 ||
		cfg.Cooldown <= 0 || cfg.MaxP < 1 || cfg.IdleFrac <= 0 || cfg.StallFrac <= 0 {
		t.Fatalf("defaults left zero fields: %+v", cfg)
	}
	if cfg.LowWater >= cfg.HighWater {
		t.Fatalf("low water %d not below high water %d", cfg.LowWater, cfg.HighWater)
	}
}
