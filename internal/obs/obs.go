// Package obs is the engine's self-monitoring layer: a dependency-free
// metrics registry (atomic counters, gauges and log-bucketed histograms
// with zero allocation on the record path) plus a bounded ring-buffer
// event trace (trace.go). The paper argues that running streams through a
// relational kernel inherits the DBMS's mature machinery; a DBMS you
// cannot ask where time goes is not mature machinery, so every subsystem
// registers its counters here and the admin server renders them in the
// Prometheus text exposition format.
//
// Hot-path discipline: a metric handle is obtained once, at wiring time;
// recording through it is a couple of atomic operations and never
// allocates (pinned by AllocsPerRun tests). Collection — WritePrometheus,
// Samples — walks the registry under its mutex and may allocate freely;
// it runs at scrape rate, not at tuple rate.
//
// Unit convention: a series whose name ends in "_seconds" or
// "_seconds_total" stores nanoseconds internally; the writers convert to
// floating-point seconds on the way out. Everything else is exported as
// the raw integer.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datacell/internal/histo"
)

// Counter is a monotonically increasing metric. The zero value is ready;
// Add and Inc are single atomic adds.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a caller bug; they are not checked on
// the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// AddDuration adds a duration in nanoseconds — for *_seconds_total series.
func (c *Counter) AddDuration(d time.Duration) { c.v.Add(int64(d)) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n is larger (high-water marks).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records a distribution of int64 samples (nanoseconds by
// convention) into fixed log-spaced buckets — a thin named wrapper over
// internal/histo. Recording is lock-free and allocation-free; it is
// exported as a Prometheus summary with p50/p99/p99.9 quantiles plus
// _count and _max companions.
type Histogram struct{ H histo.H }

// Record adds one duration sample.
func (h *Histogram) Record(d time.Duration) { h.H.Record(d) }

// RecordValue adds one raw sample.
func (h *Histogram) RecordValue(v int64) { h.H.RecordValue(v) }

// kind discriminates the series types a Registry holds.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) prom() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "summary"
	}
	return "gauge"
}

// series is one registered time series: a metric family name plus one
// label set and the handle holding (or computing) its value.
type series struct {
	labels  string // pre-rendered {k="v",…}, "" for unlabelled
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() int64
}

// family groups the series of one metric name, so HELP/TYPE render once.
type family struct {
	name   string
	help   string
	typ    kind
	series []*series
}

// Registry is an ordered collection of metric families. All registration
// methods are safe for concurrent use; handles are typically created at
// wiring time and recorded through for the component's lifetime.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// Labels renders an ordered key/value list into the Prometheus label
// form: Labels("query", "q1") → `{query="q1"}`. Values are escaped.
func Labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		v := kv[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) add(name, help string, typ kind, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter series. labels is a pre-rendered
// label set from Labels (or "").
func (r *Registry) Counter(name, help, labels string) *Counter {
	c := &Counter{}
	r.add(name, help, kindCounter, &series{labels: labels, counter: c})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	g := &Gauge{}
	r.add(name, help, kindGauge, &series{labels: labels, gauge: g})
	return g
}

// Histogram registers and returns a histogram series, exported as a
// summary (quantiles 0.5, 0.99, 0.999 plus _count and _max).
func (r *Registry) Histogram(name, help, labels string) *Histogram {
	h := &Histogram{}
	r.add(name, help, kindHistogram, &series{labels: labels, hist: h})
	return h
}

// CounterFunc registers a counter whose value is computed at collection
// time — the bridge for components that already keep their own atomics.
// fn runs under no registry lock ordering guarantees and must not call
// back into the registry.
func (r *Registry) CounterFunc(name, help, labels string, fn func() int64) {
	r.add(name, help, kindCounterFunc, &series{labels: labels, fn: fn})
}

// GaugeFunc registers a gauge computed at collection time.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() int64) {
	r.add(name, help, kindGaugeFunc, &series{labels: labels, fn: fn})
}

// Unregister removes every series of the family that records through the
// given handle (a *Counter, *Gauge or *Histogram previously returned by
// this registry). Families left empty disappear from the output. It is
// how per-query series leave the registry when their query is removed.
func (r *Registry) Unregister(handle any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for fi := 0; fi < len(r.families); fi++ {
		f := r.families[fi]
		kept := f.series[:0]
		for _, s := range f.series {
			if s.counter == handle || s.gauge == handle || s.hist == handle {
				continue
			}
			kept = append(kept, s)
		}
		f.series = kept
		if len(f.series) == 0 {
			delete(r.byName, f.name)
			r.families = append(r.families[:fi], r.families[fi+1:]...)
			fi--
		}
	}
}

// secondsScaled reports whether the family name carries the seconds unit
// convention (values stored as nanoseconds).
func secondsScaled(name string) bool {
	return strings.HasSuffix(name, "_seconds") || strings.HasSuffix(name, "_seconds_total")
}

func formatValue(name string, v int64) string {
	if secondsScaled(name) {
		return strconv.FormatFloat(float64(v)/1e9, 'g', -1, 64)
	}
	return strconv.FormatInt(v, 10)
}

// quantiles exported for every histogram series.
var histQuantiles = []struct {
	label string
	q     float64
}{{"0.5", 0.5}, {"0.99", 0.99}, {"0.999", 0.999}}

// WritePrometheus renders every family in the text exposition format,
// sorted by family name for stable diffs.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ.prom())
		r.mu.Lock()
		ss := make([]*series, len(f.series))
		copy(ss, f.series)
		r.mu.Unlock()
		for _, s := range ss {
			switch f.typ {
			case kindCounter:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(f.name, s.counter.Value()))
			case kindGauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(f.name, s.gauge.Value()))
			case kindCounterFunc, kindGaugeFunc:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(f.name, s.fn()))
			case kindHistogram:
				WriteSummary(w, f.name, s.labels, &s.hist.H)
			}
		}
	}
}

// WriteSummary renders one histogram as a Prometheus summary under the
// registry's unit convention. Exported so the engine can render per-query
// histograms it manages outside a registry with identical formatting.
func WriteSummary(w io.Writer, name, labels string, h *histo.H) {
	for _, hq := range histQuantiles {
		l := mergeLabels(labels, `quantile="`+hq.label+`"`)
		fmt.Fprintf(w, "%s%s %s\n", name, l, formatValue(name, int64(h.Quantile(hq.q))))
	}
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
	fmt.Fprintf(w, "%s_max%s %s\n", name, labels, formatValue(name, int64(h.Max())))
}

// WriteFamilyHeader renders the HELP/TYPE preamble of one metric family.
// Exported for writers that render dynamic per-entity series (per-query,
// per-stream) outside a registry with identical formatting.
func WriteFamilyHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// WriteSample renders one sample line under the registry's unit
// convention (…_seconds names store nanoseconds, exported as seconds).
func WriteSample(w io.Writer, name, labels string, v int64) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(name, v))
}

// mergeLabels splices extra into a pre-rendered label set.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// Sample is one collected value, the JSON-friendly form of a series used
// by /snapshot and the CLI's \stats.
type Sample struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Samples collects every series (histograms expand to quantile samples),
// sorted by name then labels.
func (r *Registry) Samples() []Sample {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	var out []Sample
	for _, f := range fams {
		r.mu.Lock()
		ss := make([]*series, len(f.series))
		copy(ss, f.series)
		r.mu.Unlock()
		for _, s := range ss {
			switch f.typ {
			case kindCounter:
				out = append(out, sampleOf(f.name, s.labels, s.counter.Value()))
			case kindGauge:
				out = append(out, sampleOf(f.name, s.labels, s.gauge.Value()))
			case kindCounterFunc, kindGaugeFunc:
				out = append(out, sampleOf(f.name, s.labels, s.fn()))
			case kindHistogram:
				for _, hq := range histQuantiles {
					out = append(out, sampleOf(f.name, mergeLabels(s.labels, `quantile="`+hq.label+`"`), int64(s.hist.H.Quantile(hq.q))))
				}
				out = append(out, sampleOf(f.name+"_count", s.labels, s.hist.H.Count()))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

func sampleOf(name, labels string, v int64) Sample {
	if secondsScaled(name) {
		return Sample{Name: name, Labels: labels, Value: float64(v) / 1e9}
	}
	return Sample{Name: name, Labels: labels, Value: float64(v)}
}
