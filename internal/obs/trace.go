package obs

import (
	"sync"
	"time"
)

// Event is one entry of the engine's event trace: a rewire, a recovery
// pass, a query registration, an adapt-controller verdict. Events are
// rare (control-plane rate, never tuple rate), so they carry readable
// strings rather than interned ids.
type Event struct {
	// Seq numbers events monotonically since engine start; gaps in a
	// drained ring reveal how many events were overwritten.
	Seq uint64 `json:"seq"`
	// Time is the engine-clock time the event was recorded.
	Time time.Time `json:"time"`
	// Subsystem names the emitting layer: engine, adapt, wal, ingest.
	Subsystem string `json:"subsystem"`
	// Kind is the event type within the subsystem: rewire, register,
	// remove, recover, decide, …
	Kind string `json:"kind"`
	// Name identifies the subject (stream or query name).
	Name string `json:"name,omitempty"`
	// Reason is the human explanation (rewire reasons, controller verdict
	// reasons).
	Reason string `json:"reason,omitempty"`
	// Duration is how long the traced operation took, when it is an
	// operation (rewires, recovery passes); zero for point events.
	Duration time.Duration `json:"duration_ns,omitempty"`
	// Fields carries preformatted key=value detail, e.g. a controller
	// verdict's inputs.
	Fields string `json:"fields,omitempty"`
}

// Trace is a bounded ring buffer of Events. Appends never block and never
// grow the buffer: once full, the oldest event is overwritten. The total
// append count is retained so a reader can tell how much history the ring
// has shed.
type Trace struct {
	mu    sync.Mutex
	buf   []Event
	next  uint64 // total events ever appended == next Seq
	first uint64 // Seq of the oldest retained event
}

// DefaultTraceCap is the ring capacity an engine allocates.
const DefaultTraceCap = 1024

// NewTrace returns a ring retaining the last capacity events (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, 0, capacity)}
}

// Add appends one event, stamping its Seq. Safe for concurrent use.
func (t *Trace) Add(ev Event) {
	t.mu.Lock()
	ev.Seq = t.next
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[int(t.next)%cap(t.buf)] = ev
		t.first = t.next - uint64(cap(t.buf)) + 1
	}
	t.next++
	t.mu.Unlock()
}

// Events returns the retained events oldest-first.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		return append(out, t.buf...)
	}
	start := int(t.next) % cap(t.buf)
	out = append(out, t.buf[start:]...)
	return append(out, t.buf[:start]...)
}

// Total returns how many events were ever appended (retained or shed).
func (t *Trace) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}
