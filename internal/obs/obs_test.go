package obs

import (
	"strings"
	"testing"
	"time"
)

// TestRecordPathAllocs pins the tentpole's hot-path contract: recording
// through a counter, gauge or histogram handle allocates nothing. These
// handles sit inside the firing cycle and the ingest deliver loop, both
// of which are gated by AllocsPerRun budgets upstream.
func TestRecordPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("datacell_test_total", "t", "")
	g := r.Gauge("datacell_test", "t", "")
	h := r.Histogram("datacell_test_seconds", "t", "")
	if a := testing.AllocsPerRun(1000, func() { c.Add(3); c.Inc() }); a != 0 {
		t.Fatalf("Counter record path allocates %.1f per run, want 0", a)
	}
	if a := testing.AllocsPerRun(1000, func() { g.Set(7); g.Add(-2); g.SetMax(9) }); a != 0 {
		t.Fatalf("Gauge record path allocates %.1f per run, want 0", a)
	}
	if a := testing.AllocsPerRun(1000, func() { h.Record(125 * time.Microsecond) }); a != 0 {
		t.Fatalf("Histogram record path allocates %.1f per run, want 0", a)
	}
}

func TestCounterGaugeValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", "")
	c.Add(5)
	c.Inc()
	if c.Value() != 6 {
		t.Fatalf("counter = %d, want 6", c.Value())
	}
	g := r.Gauge("g", "", "")
	g.Set(10)
	g.Add(-3)
	g.SetMax(5) // below current: no-op
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	g.SetMax(20)
	if g.Value() != 20 {
		t.Fatalf("gauge after SetMax = %d, want 20", g.Value())
	}
}

// TestWritePrometheus checks the text exposition: HELP/TYPE once per
// family, label sets rendered, the seconds unit convention applied, and
// histograms expanded to summaries.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("datacell_frames_total", "frames accepted", Labels("stream", "s")).Add(41)
	r.Counter("datacell_frames_total", "frames accepted", Labels("stream", "t")).Add(1)
	r.Counter("datacell_busy_seconds_total", "busy time", "").AddDuration(1500 * time.Millisecond)
	r.GaugeFunc("datacell_queries", "registered queries", "", func() int64 { return 3 })
	h := r.Histogram("datacell_latency_seconds", "ingest-to-emit", Labels("query", "q1"))
	for i := 0; i < 100; i++ {
		h.Record(time.Millisecond)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE datacell_frames_total counter",
		`datacell_frames_total{stream="s"} 41`,
		`datacell_frames_total{stream="t"} 1`,
		"datacell_busy_seconds_total 1.5",
		"# TYPE datacell_queries gauge",
		"datacell_queries 3",
		"# TYPE datacell_latency_seconds summary",
		`datacell_latency_seconds{query="q1",quantile="0.5"} 0.001`,
		`datacell_latency_seconds_count{query="q1"} 100`,
		`datacell_latency_seconds_max{query="q1"} 0.001`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE datacell_frames_total") != 1 {
		t.Fatalf("TYPE emitted more than once per family:\n%s", out)
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	keep := r.Counter("a_total", "", Labels("query", "keep"))
	drop := r.Counter("a_total", "", Labels("query", "drop"))
	h := r.Histogram("b_seconds", "", "")
	keep.Add(1)
	drop.Add(2)
	r.Unregister(drop)
	r.Unregister(h)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `a_total{query="keep"} 1`) {
		t.Fatalf("kept series missing:\n%s", out)
	}
	if strings.Contains(out, "drop") || strings.Contains(out, "b_seconds") {
		t.Fatalf("unregistered series still exported:\n%s", out)
	}
}

func TestSamplesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "", "").Add(1)
	r.Counter("a_total", "", "").Add(2)
	s := r.Samples()
	if len(s) != 2 || s[0].Name != "a_total" || s[1].Name != "z_total" {
		t.Fatalf("samples not sorted: %+v", s)
	}
	if s[0].Value != 2 {
		t.Fatalf("a_total = %v, want 2", s[0].Value)
	}
}

// TestTraceRing checks ring-buffer semantics: bounded retention, oldest
// overwritten first, monotone Seq, and Total counting shed history.
func TestTraceRing(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Add(Event{Subsystem: "engine", Kind: "rewire", Name: string(rune('a' + i))})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	if evs[0].Name != "g" || evs[3].Name != "j" {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
}

func TestTraceAddAllocs(t *testing.T) {
	// The trace is control-plane rate, but a full ring must still append
	// without growing: only the (amortised-zero) struct copy remains.
	tr := NewTrace(8)
	ev := Event{Subsystem: "adapt", Kind: "decide", Name: "s", Reason: "occupancy high"}
	for i := 0; i < 16; i++ {
		tr.Add(ev)
	}
	if a := testing.AllocsPerRun(1000, func() { tr.Add(ev) }); a != 0 {
		t.Fatalf("Trace.Add on a full ring allocates %.1f per run, want 0", a)
	}
}

func TestLabelsEscaping(t *testing.T) {
	if got := Labels("q", `a"b\c`); got != `{q="a\"b\\c"}` {
		t.Fatalf("Labels escaping wrong: %s", got)
	}
	if Labels() != "" {
		t.Fatalf("empty Labels should render empty")
	}
}
