package vector

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{Int: "int", Float: "float", Bool: "bool", Str: "string", Timestamp: "timestamp"}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func TestParseType(t *testing.T) {
	for name, want := range map[string]Type{
		"INT": Int, "integer": Int, "bigint": Int,
		"float": Float, "DOUBLE": Float,
		"bool": Bool, "boolean": Bool,
		"varchar": Str, "text": Str,
		"timestamp": Timestamp,
	} {
		got, err := ParseType(name)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("ParseType(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []Value{
		NewInt(-42), NewFloat(3.5), NewBool(true), NewBool(false),
		NewStr("hello world"), NewTimestampMicros(1234567890),
	}
	for _, v := range vals {
		s := v.String()
		got, err := ParseValue(v.Kind, s)
		if err != nil {
			t.Fatalf("ParseValue(%v, %q): %v", v.Kind, s, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %q -> %v", v, s, got)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	for _, tc := range []struct {
		t Type
		s string
	}{{Int, "abc"}, {Float, "x"}, {Bool, "maybe"}, {Timestamp, "12:00"}} {
		if _, err := ParseValue(tc.t, tc.s); err == nil {
			t.Errorf("ParseValue(%v, %q) should fail", tc.t, tc.s)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(2), NewFloat(1.5), 1},
		{NewStr("a"), NewStr("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
		{NewTimestampMicros(5), NewTimestampMicros(9), -1},
		{NewTimestampMicros(5), NewInt(5), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestVectorAppendGet(t *testing.T) {
	v := New(Int, 0)
	for i := int64(0); i < 100; i++ {
		v.AppendInt(i * 2)
	}
	if v.Len() != 100 {
		t.Fatalf("Len = %d", v.Len())
	}
	if got := v.Get(50); got.I != 100 {
		t.Errorf("Get(50) = %v", got)
	}
	v.Set(50, NewInt(-1))
	if got := v.Get(50); got.I != -1 {
		t.Errorf("after Set, Get(50) = %v", got)
	}
}

func TestVectorAllKinds(t *testing.T) {
	for _, k := range []Type{Int, Float, Bool, Str, Timestamp} {
		v := New(k, 4)
		var vals []Value
		switch k {
		case Int:
			vals = []Value{NewInt(1), NewInt(2)}
		case Float:
			vals = []Value{NewFloat(1.5), NewFloat(-2.5)}
		case Bool:
			vals = []Value{NewBool(true), NewBool(false)}
		case Str:
			vals = []Value{NewStr("x"), NewStr("y")}
		case Timestamp:
			vals = []Value{NewTimestamp(time.Unix(1, 0)), NewTimestampMicros(77)}
		}
		for _, val := range vals {
			v.Append(val)
		}
		if v.Len() != len(vals) {
			t.Fatalf("%v: Len = %d", k, v.Len())
		}
		for i, val := range vals {
			if !v.Get(i).Equal(val) {
				t.Errorf("%v: Get(%d) = %v, want %v", k, i, v.Get(i), val)
			}
		}
		c := v.Clone()
		c.Clear()
		if c.Len() != 0 || v.Len() != len(vals) {
			t.Errorf("%v: Clear on clone affected original", k)
		}
	}
}

func TestGather(t *testing.T) {
	v := FromInts([]int64{10, 20, 30, 40, 50})
	g := v.Gather([]int32{4, 0, 2})
	want := []int64{50, 10, 30}
	if !reflect.DeepEqual(g.Ints(), want) {
		t.Errorf("Gather = %v, want %v", g.Ints(), want)
	}
}

func TestSliceIsCopy(t *testing.T) {
	v := FromInts([]int64{1, 2, 3, 4})
	s := v.Slice(1, 3)
	s.Set(0, NewInt(99))
	if v.Get(1).I != 2 {
		t.Error("Slice shares storage with original")
	}
	if !reflect.DeepEqual(s.Ints(), []int64{99, 3}) {
		t.Errorf("slice contents = %v", s.Ints())
	}
}

func TestAppendVector(t *testing.T) {
	a := FromInts([]int64{1, 2})
	b := FromInts([]int64{3, 4})
	a.AppendVector(b)
	if !reflect.DeepEqual(a.Ints(), []int64{1, 2, 3, 4}) {
		t.Errorf("AppendVector = %v", a.Ints())
	}
	a.AppendVector(nil)
	if a.Len() != 4 {
		t.Error("AppendVector(nil) changed length")
	}
}

func TestDeleteSorted(t *testing.T) {
	cases := []struct {
		in   []int64
		del  []int32
		want []int64
	}{
		{[]int64{1, 2, 3, 4, 5}, []int32{0, 2, 4}, []int64{2, 4}},
		{[]int64{1, 2, 3}, []int32{}, []int64{1, 2, 3}},
		{[]int64{1, 2, 3}, []int32{0, 1, 2}, []int64{}},
		{[]int64{1, 2, 3}, []int32{2}, []int64{1, 2}},
		{[]int64{1, 2, 3}, []int32{0}, []int64{2, 3}},
	}
	for _, c := range cases {
		v := FromInts(append([]int64(nil), c.in...))
		v.DeleteSorted(c.del)
		if !reflect.DeepEqual(v.Ints(), c.want) && !(len(v.Ints()) == 0 && len(c.want) == 0) {
			t.Errorf("DeleteSorted(%v, %v) = %v, want %v", c.in, c.del, v.Ints(), c.want)
		}
	}
}

func TestKeepSorted(t *testing.T) {
	v := FromStrs([]string{"a", "b", "c", "d"})
	v.KeepSorted([]int32{1, 3})
	if !reflect.DeepEqual(v.Strs(), []string{"b", "d"}) {
		t.Errorf("KeepSorted = %v", v.Strs())
	}
}

func TestDropHead(t *testing.T) {
	v := FromFloats([]float64{1, 2, 3, 4})
	v.DropHead(2)
	if !reflect.DeepEqual(v.Floats(), []float64{3, 4}) {
		t.Errorf("DropHead = %v", v.Floats())
	}
}

// Property: DeleteSorted(del) followed by nothing equals KeepSorted of the
// complement, for random delete sets.
func TestDeleteKeepComplementProperty(t *testing.T) {
	f := func(data []int64, mask []bool) bool {
		n := len(data)
		var del, keep []int32
		for i := 0; i < n; i++ {
			if i < len(mask) && mask[i] {
				del = append(del, int32(i))
			} else {
				keep = append(keep, int32(i))
			}
		}
		a := FromInts(append([]int64(nil), data...))
		b := FromInts(append([]int64(nil), data...))
		a.DeleteSorted(del)
		b.KeepSorted(keep)
		return reflect.DeepEqual(a.Ints(), b.Ints())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Gather(sel).Get(i) == Get(sel[i]) for any valid selection.
func TestGatherProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(data []float64) bool {
		if len(data) == 0 {
			return true
		}
		v := FromFloats(data)
		sel := make([]int32, 32)
		for i := range sel {
			sel[i] = int32(rng.Intn(len(data)))
		}
		g := v.Gather(sel)
		for i, p := range sel {
			if g.Floats()[i] != data[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: DeleteSorted preserves the relative order of survivors.
func TestDeleteSortedOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]int64, int(n)+1)
		for i := range data {
			data[i] = int64(i) // identity so order is checkable
		}
		delSet := map[int32]bool{}
		for i := 0; i < len(data)/2; i++ {
			delSet[int32(rng.Intn(len(data)))] = true
		}
		del := make([]int32, 0, len(delSet))
		for k := range delSet {
			del = append(del, k)
		}
		sort.Slice(del, func(i, j int) bool { return del[i] < del[j] })
		v := FromInts(append([]int64(nil), data...))
		v.DeleteSorted(del)
		out := v.Ints()
		for i := 1; i < len(out); i++ {
			if out[i-1] >= out[i] {
				return false
			}
		}
		return len(out) == len(data)-len(del)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVectorString(t *testing.T) {
	v := FromInts([]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	s := v.String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestFill(t *testing.T) {
	cases := []struct {
		val  Value
		n    int
		want string
	}{
		{NewInt(7), 3, "7"},
		{NewFloat(2.5), 2, "2.5"},
		{NewBool(true), 4, "true"},
		{NewStr("x"), 2, "x"},
		{NewTimestampMicros(99), 1, "99"},
		{NewInt(0), 5, "0"},
	}
	for _, tc := range cases {
		v := Fill(tc.val, tc.n)
		if v.Kind() != tc.val.Kind || v.Len() != tc.n {
			t.Fatalf("Fill(%v, %d): kind %v len %d", tc.val, tc.n, v.Kind(), v.Len())
		}
		for i := 0; i < tc.n; i++ {
			if got := v.Get(i).String(); got != tc.want {
				t.Errorf("Fill(%v, %d)[%d] = %q, want %q", tc.val, tc.n, i, got, tc.want)
			}
		}
	}
	if v := Fill(NewStr("e"), 0); v.Len() != 0 {
		t.Errorf("Fill with n=0 has length %d", v.Len())
	}
}
