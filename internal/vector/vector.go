// Package vector implements typed, densely packed columnar vectors.
//
// A Vector holds all values of one attribute for a contiguous run of tuples,
// mirroring the tail column of a MonetDB BAT. Vectors are the unit of work
// for every relational operator in this engine: operators consume whole
// vectors (optionally restricted by a candidate list of positions) and
// produce whole vectors, which is what gives the DataCell its batch-at-a-time
// execution model.
package vector

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
	"time"
)

// Type enumerates the value types a Vector can hold.
type Type uint8

// Supported column types.
const (
	Int Type = iota // 64-bit signed integer
	Float
	Bool
	Str
	Timestamp // microseconds since the Unix epoch, stored as int64
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Str:
		return "string"
	case Timestamp:
		return "timestamp"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType maps a SQL type name to a vector Type.
func ParseType(s string) (Type, error) {
	switch strings.ToLower(s) {
	case "int", "integer", "bigint", "smallint", "tinyint":
		return Int, nil
	case "float", "double", "real", "decimal", "numeric":
		return Float, nil
	case "bool", "boolean", "bit":
		return Bool, nil
	case "string", "varchar", "char", "text", "clob":
		return Str, nil
	case "timestamp", "time", "date":
		return Timestamp, nil
	}
	return Int, fmt.Errorf("vector: unknown type %q", s)
}

// Value is a single scalar of any supported Type. It is the boxed form used
// at the boundaries of the engine (constants in expressions, row
// materialisation for emitters); operators never iterate Values in hot loops.
type Value struct {
	Kind Type
	I    int64 // Int and Timestamp payload
	F    float64
	B    bool
	S    string
}

// NewInt returns an Int Value.
func NewInt(i int64) Value { return Value{Kind: Int, I: i} }

// NewFloat returns a Float Value.
func NewFloat(f float64) Value { return Value{Kind: Float, F: f} }

// NewBool returns a Bool Value.
func NewBool(b bool) Value { return Value{Kind: Bool, B: b} }

// NewStr returns a Str Value.
func NewStr(s string) Value { return Value{Kind: Str, S: s} }

// NewTimestamp returns a Timestamp Value from a time.Time.
func NewTimestamp(t time.Time) Value { return Value{Kind: Timestamp, I: t.UnixMicro()} }

// NewTimestampMicros returns a Timestamp Value from epoch microseconds.
func NewTimestampMicros(us int64) Value { return Value{Kind: Timestamp, I: us} }

// AsFloat converts numeric Values to float64 (Int, Float, Timestamp, Bool).
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case Int, Timestamp:
		return float64(v.I)
	case Float:
		return v.F
	case Bool:
		if v.B {
			return 1
		}
		return 0
	}
	return 0
}

// AsInt converts numeric Values to int64.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case Int, Timestamp:
		return v.I
	case Float:
		return int64(v.F)
	case Bool:
		if v.B {
			return 1
		}
		return 0
	}
	return 0
}

// String renders the value in the engine's flat textual interchange format.
func (v Value) String() string {
	switch v.Kind {
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Timestamp:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Bool:
		if v.B {
			return "true"
		}
		return "false"
	case Str:
		return v.S
	}
	return "?"
}

// ParseValue parses the textual interchange format into a Value of type t.
func ParseValue(t Type, s string) (Value, error) {
	switch t {
	case Int, Timestamp:
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("vector: parse %s %q: %w", t, s, err)
		}
		return Value{Kind: t, I: i}, nil
	case Float:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return Value{}, fmt.Errorf("vector: parse float %q: %w", s, err)
		}
		return NewFloat(f), nil
	case Bool:
		b, err := strconv.ParseBool(strings.TrimSpace(s))
		if err != nil {
			return Value{}, fmt.Errorf("vector: parse bool %q: %w", s, err)
		}
		return NewBool(b), nil
	case Str:
		return NewStr(s), nil
	}
	return Value{}, fmt.Errorf("vector: parse: unknown type %v", t)
}

// Compare orders two Values of the same Kind: -1 if v < o, 0 if equal, 1 if
// v > o. Comparing across numeric kinds (Int/Float/Timestamp) compares the
// numeric magnitude.
func (v Value) Compare(o Value) int {
	if v.Kind == Str || o.Kind == Str {
		return strings.Compare(v.S, o.S)
	}
	if v.Kind == Bool && o.Kind == Bool {
		switch {
		case v.B == o.B:
			return 0
		case o.B:
			return -1
		default:
			return 1
		}
	}
	// Numeric comparison; avoid float round-trip when both are integral.
	if (v.Kind == Int || v.Kind == Timestamp) && (o.Kind == Int || o.Kind == Timestamp) {
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		default:
			return 0
		}
	}
	a, b := v.AsFloat(), o.AsFloat()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two Values compare equal.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Vector is a densely packed column of values of a single Type.
// The zero Vector is not usable; construct with New.
type Vector struct {
	kind   Type
	ints   []int64 // backing store for Int and Timestamp
	floats []float64
	bools  []bool
	strs   []string
}

// New returns an empty Vector of type t with capacity hint n.
func New(t Type, n int) *Vector {
	v := &Vector{kind: t}
	switch t {
	case Int, Timestamp:
		v.ints = make([]int64, 0, n)
	case Float:
		v.floats = make([]float64, 0, n)
	case Bool:
		v.bools = make([]bool, 0, n)
	case Str:
		v.strs = make([]string, 0, n)
	}
	return v
}

// Fill returns a vector holding n copies of val. It is the bulk
// materialisation primitive for constant expressions: one typed slice fill
// instead of n boxed Value appends.
func Fill(val Value, n int) *Vector {
	v := &Vector{kind: val.Kind}
	switch val.Kind {
	case Int, Timestamp:
		s := make([]int64, n)
		if val.I != 0 {
			for i := range s {
				s[i] = val.I
			}
		}
		v.ints = s
	case Float:
		s := make([]float64, n)
		if val.F != 0 {
			for i := range s {
				s[i] = val.F
			}
		}
		v.floats = s
	case Bool:
		s := make([]bool, n)
		if val.B {
			for i := range s {
				s[i] = true
			}
		}
		v.bools = s
	case Str:
		s := make([]string, n)
		if val.S != "" {
			for i := range s {
				s[i] = val.S
			}
		}
		v.strs = s
	}
	return v
}

// FillInto overwrites dst with n copies of val, adopting val's kind and
// retaining dst's backing capacity. It is the reuse form of Fill for
// execution arenas. It returns dst.
func FillInto(dst *Vector, val Value, n int) *Vector {
	dst.Reset(val.Kind, n)
	switch val.Kind {
	case Int, Timestamp:
		for i := range dst.ints {
			dst.ints[i] = val.I
		}
	case Float:
		for i := range dst.floats {
			dst.floats[i] = val.F
		}
	case Bool:
		for i := range dst.bools {
			dst.bools[i] = val.B
		}
	case Str:
		for i := range dst.strs {
			dst.strs[i] = val.S
		}
	}
	return dst
}

// FromInts builds an Int vector that takes ownership of s.
func FromInts(s []int64) *Vector { return &Vector{kind: Int, ints: s} }

// FromTimestamps builds a Timestamp vector that takes ownership of s
// (epoch microseconds).
func FromTimestamps(s []int64) *Vector { return &Vector{kind: Timestamp, ints: s} }

// FromFloats builds a Float vector that takes ownership of s.
func FromFloats(s []float64) *Vector { return &Vector{kind: Float, floats: s} }

// FromBools builds a Bool vector that takes ownership of s.
func FromBools(s []bool) *Vector { return &Vector{kind: Bool, bools: s} }

// FromStrs builds a Str vector that takes ownership of s.
func FromStrs(s []string) *Vector { return &Vector{kind: Str, strs: s} }

// Kind returns the element type.
func (v *Vector) Kind() Type { return v.kind }

// Len returns the number of elements.
func (v *Vector) Len() int {
	switch v.kind {
	case Int, Timestamp:
		return len(v.ints)
	case Float:
		return len(v.floats)
	case Bool:
		return len(v.bools)
	case Str:
		return len(v.strs)
	}
	return 0
}

// Ints exposes the backing slice of an Int or Timestamp vector.
// Callers must not append to it.
func (v *Vector) Ints() []int64 { return v.ints }

// Floats exposes the backing slice of a Float vector.
func (v *Vector) Floats() []float64 { return v.floats }

// Bools exposes the backing slice of a Bool vector.
func (v *Vector) Bools() []bool { return v.bools }

// Strs exposes the backing slice of a Str vector.
func (v *Vector) Strs() []string { return v.strs }

// Get returns element i boxed as a Value.
func (v *Vector) Get(i int) Value {
	switch v.kind {
	case Int, Timestamp:
		return Value{Kind: v.kind, I: v.ints[i]}
	case Float:
		return Value{Kind: Float, F: v.floats[i]}
	case Bool:
		return Value{Kind: Bool, B: v.bools[i]}
	case Str:
		return Value{Kind: Str, S: v.strs[i]}
	}
	panic("vector: bad kind")
}

// Set overwrites element i with val (val.Kind must match).
func (v *Vector) Set(i int, val Value) {
	switch v.kind {
	case Int, Timestamp:
		v.ints[i] = val.I
	case Float:
		v.floats[i] = val.F
	case Bool:
		v.bools[i] = val.B
	case Str:
		v.strs[i] = val.S
	}
}

// Append appends val (val.Kind must be assignable to v's kind).
func (v *Vector) Append(val Value) {
	switch v.kind {
	case Int, Timestamp:
		v.ints = append(v.ints, val.AsInt())
	case Float:
		v.floats = append(v.floats, val.AsFloat())
	case Bool:
		v.bools = append(v.bools, val.B)
	case Str:
		v.strs = append(v.strs, val.S)
	}
}

// AppendInt appends a raw int64 to an Int or Timestamp vector.
func (v *Vector) AppendInt(i int64) { v.ints = append(v.ints, i) }

// AppendFloat appends a raw float64 to a Float vector.
func (v *Vector) AppendFloat(f float64) { v.floats = append(v.floats, f) }

// AppendBool appends a raw bool to a Bool vector.
func (v *Vector) AppendBool(b bool) { v.bools = append(v.bools, b) }

// AppendStr appends a raw string to a Str vector.
func (v *Vector) AppendStr(s string) { v.strs = append(v.strs, s) }

// AppendVector appends the whole contents of o (same kind) to v.
func (v *Vector) AppendVector(o *Vector) {
	if o == nil || o.Len() == 0 {
		return
	}
	if v.kind != o.kind && !(numeric(v.kind) && numeric(o.kind)) {
		panic(fmt.Sprintf("vector: append %v to %v", o.kind, v.kind))
	}
	switch v.kind {
	case Int, Timestamp:
		v.ints = append(v.ints, o.ints...)
	case Float:
		v.floats = append(v.floats, o.floats...)
	case Bool:
		v.bools = append(v.bools, o.bools...)
	case Str:
		v.strs = append(v.strs, o.strs...)
	}
}

func numeric(t Type) bool { return t == Int || t == Timestamp }

// Reset re-types v to t and resizes it to n elements, retaining whatever
// backing capacity the vector already owns. The elements are unspecified
// (stale) until the caller overwrites them; Reset exists so execution
// arenas can recycle one vector across firings without reallocating.
func (v *Vector) Reset(t Type, n int) {
	v.kind = t
	v.ints, v.floats, v.bools, v.strs = v.ints[:0], v.floats[:0], v.bools[:0], v.strs[:0]
	// The active backing slice is kept non-nil (a zero-size make costs no
	// allocation) so Reset-built vectors are indistinguishable from
	// New-built ones.
	switch t {
	case Int, Timestamp:
		if cap(v.ints) < n || v.ints == nil {
			v.ints = make([]int64, n)
		} else {
			v.ints = v.ints[:n]
		}
	case Float:
		if cap(v.floats) < n || v.floats == nil {
			v.floats = make([]float64, n)
		} else {
			v.floats = v.floats[:n]
		}
	case Bool:
		if cap(v.bools) < n || v.bools == nil {
			v.bools = make([]bool, n)
		} else {
			v.bools = v.bools[:n]
		}
	case Str:
		if cap(v.strs) < n || v.strs == nil {
			v.strs = make([]string, n)
		} else {
			v.strs = v.strs[:n]
		}
	}
}

// AppendN appends n copies of val (val.Kind must be assignable to v's
// kind). One grow plus one fill instead of n boxed appends; the basket
// uses it to stamp a batch's arrival timestamps in place.
func (v *Vector) AppendN(val Value, n int) {
	switch v.kind {
	case Int, Timestamp:
		v.ints = appendFill(v.ints, val.AsInt(), n)
	case Float:
		v.floats = appendFill(v.floats, val.AsFloat(), n)
	case Bool:
		v.bools = appendFill(v.bools, val.B, n)
	case Str:
		v.strs = appendFill(v.strs, val.S, n)
	}
}

func appendFill[T any](s []T, x T, n int) []T {
	s = slices.Grow(s, n)[:len(s)+n]
	fill := s[len(s)-n:]
	for i := range fill {
		fill[i] = x
	}
	return s
}

// Gather returns a new vector with the elements at the given positions, in
// order. It is the positional tuple-reconstruction primitive of the engine.
func (v *Vector) Gather(sel []int32) *Vector {
	out := New(v.kind, len(sel))
	switch v.kind {
	case Int, Timestamp:
		for _, i := range sel {
			out.ints = append(out.ints, v.ints[i])
		}
	case Float:
		for _, i := range sel {
			out.floats = append(out.floats, v.floats[i])
		}
	case Bool:
		for _, i := range sel {
			out.bools = append(out.bools, v.bools[i])
		}
	case Str:
		for _, i := range sel {
			out.strs = append(out.strs, v.strs[i])
		}
	}
	return out
}

// GatherInto overwrites dst with the elements of v at the given positions,
// in order, adopting v's kind and retaining dst's backing capacity. dst
// must not alias v. It is the allocation-free form of Gather used on the
// firing hot path. It returns dst.
func (v *Vector) GatherInto(dst *Vector, sel []int32) *Vector {
	dst.Reset(v.kind, len(sel))
	switch v.kind {
	case Int, Timestamp:
		d := dst.ints
		for k, i := range sel {
			d[k] = v.ints[i]
		}
	case Float:
		d := dst.floats
		for k, i := range sel {
			d[k] = v.floats[i]
		}
	case Bool:
		d := dst.bools
		for k, i := range sel {
			d[k] = v.bools[i]
		}
	case Str:
		d := dst.strs
		for k, i := range sel {
			d[k] = v.strs[i]
		}
	}
	return dst
}

// SliceInto overwrites dst with elements [i, j) of v, adopting v's kind
// and retaining dst's backing capacity. dst must not alias v. It returns
// dst.
func (v *Vector) SliceInto(dst *Vector, i, j int) *Vector {
	dst.Reset(v.kind, 0)
	switch v.kind {
	case Int, Timestamp:
		dst.ints = append(dst.ints, v.ints[i:j]...)
	case Float:
		dst.floats = append(dst.floats, v.floats[i:j]...)
	case Bool:
		dst.bools = append(dst.bools, v.bools[i:j]...)
	case Str:
		dst.strs = append(dst.strs, v.strs[i:j]...)
	}
	return dst
}

// Slice returns a new vector holding elements [i, j). The result shares no
// state with v.
func (v *Vector) Slice(i, j int) *Vector {
	out := New(v.kind, j-i)
	switch v.kind {
	case Int, Timestamp:
		out.ints = append(out.ints, v.ints[i:j]...)
	case Float:
		out.floats = append(out.floats, v.floats[i:j]...)
	case Bool:
		out.bools = append(out.bools, v.bools[i:j]...)
	case Str:
		out.strs = append(out.strs, v.strs[i:j]...)
	}
	return out
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector { return v.Slice(0, v.Len()) }

// Clear empties v, retaining capacity.
func (v *Vector) Clear() {
	v.ints = v.ints[:0]
	v.floats = v.floats[:0]
	v.bools = v.bools[:0]
	v.strs = v.strs[:0]
}

// DeleteSorted removes the elements at the given strictly increasing
// positions with a single left-shifting pass, preserving the relative order
// of survivors. This is the dedicated "remove a set of tuples in one go"
// operator the paper reports as a 20-30% win over composing generic
// operators.
func (v *Vector) DeleteSorted(del []int32) {
	if len(del) == 0 {
		return
	}
	switch v.kind {
	case Int, Timestamp:
		v.ints = deleteSorted(v.ints, del)
	case Float:
		v.floats = deleteSorted(v.floats, del)
	case Bool:
		v.bools = deleteSorted(v.bools, del)
	case Str:
		v.strs = deleteSorted(v.strs, del)
	}
}

func deleteSorted[T any](s []T, del []int32) []T {
	w := int(del[0]) // first hole
	d := 0
	for r := int(del[0]); r < len(s); r++ {
		if d < len(del) && r == int(del[d]) {
			d++
			continue
		}
		s[w] = s[r]
		w++
	}
	return s[:w]
}

// KeepSorted retains only the elements at the given strictly increasing
// positions (the complement of DeleteSorted).
func (v *Vector) KeepSorted(keep []int32) {
	switch v.kind {
	case Int, Timestamp:
		v.ints = keepSorted(v.ints, keep)
	case Float:
		v.floats = keepSorted(v.floats, keep)
	case Bool:
		v.bools = keepSorted(v.bools, keep)
	case Str:
		v.strs = keepSorted(v.strs, keep)
	}
}

func keepSorted[T any](s []T, keep []int32) []T {
	for w, r := range keep {
		s[w] = s[r]
	}
	return s[:len(keep)]
}

// DropHead removes the first n elements, shifting the remainder left.
func (v *Vector) DropHead(n int) {
	switch v.kind {
	case Int, Timestamp:
		v.ints = append(v.ints[:0], v.ints[n:]...)
	case Float:
		v.floats = append(v.floats[:0], v.floats[n:]...)
	case Bool:
		v.bools = append(v.bools[:0], v.bools[n:]...)
	case Str:
		v.strs = append(v.strs[:0], v.strs[n:]...)
	}
}

// String renders a short debug representation.
func (v *Vector) String() string {
	n := v.Len()
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%d]{", v.kind, n)
	for i := 0; i < n && i < 8; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.Get(i).String())
	}
	if n > 8 {
		b.WriteString(", …")
	}
	b.WriteString("}")
	return b.String()
}
