package vector

import (
	"reflect"
	"testing"
)

func TestGatherIntoMatchesGather(t *testing.T) {
	vs := []*Vector{
		FromInts([]int64{10, 20, 30, 40, 50}),
		FromFloats([]float64{1.5, 2.5, 3.5, 4.5, 5.5}),
		FromBools([]bool{true, false, true, false, true}),
		FromStrs([]string{"a", "b", "c", "d", "e"}),
		FromTimestamps([]int64{1, 2, 3, 4, 5}),
	}
	sels := [][]int32{{}, {0}, {4, 2, 0}, {1, 1, 3}, {0, 1, 2, 3, 4}}
	for _, v := range vs {
		dst := &Vector{}
		for _, sel := range sels {
			want := v.Gather(sel)
			got := v.GatherInto(dst, sel)
			if got != dst {
				t.Fatalf("GatherInto did not return dst")
			}
			if got.Kind() != want.Kind() || got.Len() != want.Len() {
				t.Fatalf("kind/len mismatch: %v vs %v", got, want)
			}
			for i := 0; i < want.Len(); i++ {
				if !got.Get(i).Equal(want.Get(i)) {
					t.Fatalf("GatherInto(%v, %v) = %v, want %v", v, sel, got, want)
				}
			}
		}
	}
}

func TestGatherIntoReusesCapacity(t *testing.T) {
	v := FromInts([]int64{1, 2, 3, 4, 5, 6, 7, 8})
	sel := []int32{0, 2, 4, 6}
	dst := &Vector{}
	v.GatherInto(dst, sel) // warm up
	allocs := testing.AllocsPerRun(100, func() {
		v.GatherInto(dst, sel)
	})
	if allocs != 0 {
		t.Fatalf("warmed GatherInto allocates %.1f per run, want 0", allocs)
	}
}

func TestSliceIntoMatchesSlice(t *testing.T) {
	v := FromStrs([]string{"p", "q", "r", "s"})
	dst := &Vector{}
	got := v.SliceInto(dst, 1, 3)
	want := v.Slice(1, 3)
	if !reflect.DeepEqual(got.Strs(), want.Strs()) {
		t.Fatalf("SliceInto = %v, want %v", got, want)
	}
}

func TestResetRetypesAndRetainsCapacity(t *testing.T) {
	v := &Vector{}
	v.Reset(Float, 3)
	if v.Kind() != Float || v.Len() != 3 {
		t.Fatalf("Reset(Float, 3): kind %v len %d", v.Kind(), v.Len())
	}
	v.Floats()[0], v.Floats()[1], v.Floats()[2] = 1, 2, 3
	v.Reset(Int, 2)
	if v.Kind() != Int || v.Len() != 2 {
		t.Fatalf("Reset(Int, 2): kind %v len %d", v.Kind(), v.Len())
	}
	// Shrinking within capacity must not allocate.
	v.Reset(Int, 8)
	allocs := testing.AllocsPerRun(100, func() { v.Reset(Int, 4) })
	if allocs != 0 {
		t.Fatalf("within-capacity Reset allocates %.1f per run", allocs)
	}
	// The active slice is non-nil even at zero length (one-time queries
	// compare results with reflect.DeepEqual).
	z := &Vector{}
	z.Reset(Int, 0)
	if z.Ints() == nil {
		t.Fatalf("Reset left a nil backing slice")
	}
}

func TestAppendNMatchesRepeatedAppend(t *testing.T) {
	a := New(Timestamp, 0)
	b := New(Timestamp, 0)
	a.AppendInt(7)
	b.AppendInt(7)
	a.AppendN(NewTimestampMicros(42), 3)
	for i := 0; i < 3; i++ {
		b.Append(NewTimestampMicros(42))
	}
	if !reflect.DeepEqual(a.Ints(), b.Ints()) {
		t.Fatalf("AppendN = %v, want %v", a.Ints(), b.Ints())
	}
	s := New(Str, 0)
	s.AppendN(NewStr("x"), 2)
	if !reflect.DeepEqual(s.Strs(), []string{"x", "x"}) {
		t.Fatalf("AppendN strs = %v", s.Strs())
	}
}

func TestFillIntoMatchesFill(t *testing.T) {
	dst := &Vector{}
	for _, val := range []Value{NewInt(3), NewFloat(1.25), NewBool(true), NewStr("k"), NewTimestampMicros(9)} {
		got := FillInto(dst, val, 4)
		want := Fill(val, 4)
		if got.Kind() != want.Kind() || got.Len() != want.Len() {
			t.Fatalf("FillInto(%v) kind/len mismatch", val)
		}
		for i := 0; i < 4; i++ {
			if !got.Get(i).Equal(want.Get(i)) {
				t.Fatalf("FillInto(%v) = %v, want %v", val, got, want)
			}
		}
	}
}
