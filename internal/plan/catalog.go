// Package plan compiles parsed DataCell SQL statements into executable
// query plans and factories. A continuous query (one containing a basket
// expression) becomes a factory whose inputs are the baskets the basket
// expressions consume; firing the factory executes the plan once over the
// locked baskets, removing the covered tuples and appending results to the
// output basket. One-time queries run immediately over snapshots under the
// same locks.
package plan

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"datacell/internal/basket"
	"datacell/internal/vector"
)

// Kind distinguishes streams from persistent tables. Both are stored as
// baskets; the difference is consumption semantics — tuples referenced in a
// basket expression are removed from baskets but never from tables.
type Kind uint8

// Catalog object kinds.
const (
	KindBasket Kind = iota
	KindTable
)

// Catalog holds the named baskets/tables and session variables of one
// DataCell instance, plus the engine clock used by now() and arrival
// timestamps.
type Catalog struct {
	mu      sync.RWMutex
	baskets map[string]*basket.Basket
	kinds   map[string]Kind
	vars    map[string]vector.Value
	now     func() time.Time
}

// NewCatalog returns an empty catalog using the real-time clock.
func NewCatalog() *Catalog {
	return &Catalog{
		baskets: map[string]*basket.Basket{},
		kinds:   map[string]Kind{},
		vars:    map[string]vector.Value{},
		now:     time.Now,
	}
}

// SetClock replaces the engine clock (simulated-time runs). It also
// rebinds the arrival-time clock of every existing basket.
func (c *Catalog) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
	for _, b := range c.baskets {
		b.SetClock(now)
	}
}

// Now returns the current engine time.
func (c *Catalog) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now()
}

// CreateBasket registers a new basket (or table) and returns it.
func (c *Catalog) CreateBasket(name string, names []string, types []vector.Type, kind Kind) (*basket.Basket, error) {
	name = strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.baskets[name]; exists {
		return nil, fmt.Errorf("plan: %s already exists", name)
	}
	b := basket.New(name, names, types)
	b.SetClock(c.now)
	c.baskets[name] = b
	c.kinds[name] = kind
	return b, nil
}

// Basket returns the named basket, or nil.
func (c *Catalog) Basket(name string) *basket.Basket {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.baskets[strings.ToLower(name)]
}

// KindOf returns the kind of a named object (KindBasket if unknown).
func (c *Catalog) KindOf(name string) Kind {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.kinds[strings.ToLower(name)]
}

// Baskets returns all registered baskets, name-sorted.
func (c *Catalog) Baskets() []*basket.Basket {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.baskets))
	for n := range c.baskets {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*basket.Basket, len(names))
	for i, n := range names {
		out[i] = c.baskets[n]
	}
	return out
}

// DeclareVar registers a session variable initialised to the zero value of
// its type.
func (c *Catalog) DeclareVar(name string, t vector.Type) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vars[strings.ToLower(name)] = vector.Value{Kind: t}
}

// SetVar assigns a session variable (declaring it implicitly if needed).
func (c *Catalog) SetVar(name string, v vector.Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vars[strings.ToLower(name)] = v
}

// Var returns a session variable's current value.
func (c *Catalog) Var(name string) (vector.Value, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.vars[strings.ToLower(name)]
	return v, ok
}

// lockAll locks the given baskets in global ID order (deduplicated) and
// returns the unlock function. It is the locking discipline one-time
// queries share with factories.
func lockAll(bs []*basket.Basket) func() {
	uniq := make([]*basket.Basket, 0, len(bs))
	seen := map[uint64]bool{}
	for _, b := range bs {
		if b != nil && !seen[b.ID()] {
			seen[b.ID()] = true
			uniq = append(uniq, b)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].ID() < uniq[j].ID() })
	for _, b := range uniq {
		b.Lock()
	}
	return func() {
		for i := len(uniq) - 1; i >= 0; i-- {
			uniq[i].Unlock()
		}
	}
}
