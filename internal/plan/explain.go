package plan

import (
	"fmt"
	"strings"

	"datacell/internal/sql"
)

// Explain renders a human-readable plan description for a statement
// against the catalog: which baskets gate the firing (with thresholds),
// which are locked read-only, where results go, and the operator pipeline
// of each select block. It performs the same analysis as Compile without
// creating baskets or factories.
func Explain(cat *Catalog, stmt sql.Statement, name string) (string, error) {
	var b strings.Builder
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		if !s.IsContinuous() {
			fmt.Fprintf(&b, "one-time query %s\n", name)
			explainSelect(&b, s, 1)
			return b.String(), nil
		}
		fmt.Fprintf(&b, "continuous query %s -> %s_out\n", name, strings.ToLower(name))
		explainFiring(&b, cat, s)
		explainSelect(&b, s, 1)
	case *sql.InsertStmt:
		fmt.Fprintf(&b, "insert into %s (continuous: %v)\n", s.Target, s.Query.IsContinuous())
		if s.Query.IsContinuous() {
			explainFiring(&b, cat, s.Query)
		}
		explainSelect(&b, s.Query, 1)
	case *sql.WithBlock:
		fmt.Fprintf(&b, "with-block %s binding %q\n", name, s.Alias)
		explainFiring(&b, cat, s.Basket)
		fmt.Fprintf(&b, "  bind %s := basket expression\n", s.Alias)
		explainSelect(&b, s.Basket, 2)
		for _, st := range s.Body {
			switch t := st.(type) {
			case *sql.InsertStmt:
				fmt.Fprintf(&b, "  insert into %s\n", t.Target)
				explainSelect(&b, t.Query, 2)
			case *sql.SetStmt:
				fmt.Fprintf(&b, "  set %s = %s\n", t.Name, t.Value)
			}
		}
	case *sql.CreateStmt:
		fmt.Fprintf(&b, "create %s %s (%d columns)\n", s.Kind, s.Name, len(s.Cols))
	case *sql.DeclareStmt:
		fmt.Fprintf(&b, "declare %s %s\n", s.Name, s.Type)
	case *sql.SetStmt:
		fmt.Fprintf(&b, "set %s = %s\n", s.Name, s.Value)
	default:
		return "", fmt.Errorf("plan: cannot explain %T", stmt)
	}
	return b.String(), nil
}

func explainFiring(b *strings.Builder, cat *Catalog, s *sql.SelectStmt) {
	inputs, thresholds := consumedInputsIn(cat, s, len(s.From) == 0)
	if len(inputs) == 0 {
		inputs, thresholds = consumedInputsIn(cat, s, true)
	}
	for i, in := range inputs {
		fmt.Fprintf(b, "  fires on %s", in.Name())
		if thresholds[i] > 1 {
			fmt.Fprintf(b, " (threshold %d tuples)", thresholds[i])
		}
		b.WriteByte('\n')
	}
	for _, lo := range lockOnlyBaskets(cat, s, inputs) {
		fmt.Fprintf(b, "  locks %s (read-only)\n", lo.Name())
	}
	if len(inputs) == 1 {
		fmt.Fprintf(b, "  stream-scan artifact: single consumed stream %s (eligible for basket sharing)\n", inputs[0].Name())
		v := partitionVerdict(cat, s, inputs[0].Name())
		switch v.Mode {
		case PartRoundRobin:
			b.WriteString("  partitionable: round-robin (row-local predicate window)\n")
		case PartHash:
			fmt.Fprintf(b, "  partitionable: hash(%s) (grouped plan, keys co-locate)\n", v.Col)
			if col, set, ok := v.Prune(); ok {
				fmt.Fprintf(b, "  prune: %s in %s (non-matching tuples divert to the catch-all before partial aggregation)\n", col, set)
			}
		case PartRange:
			fmt.Fprintf(b, "  partitionable: range(%s in %s) (sargable predicate; non-matching tuples prune to the catch-all)\n",
				v.Col, v.Set())
		default:
			b.WriteString("  partitionable: no (plan must see the whole stream)\n")
		}
		if v.Mode != PartNone {
			if tp := twoPhaseSpec(cat, s, inputs[0].Name()); tp != nil {
				if tp.aggregated {
					b.WriteString("  two-phase: partial aggregate per partition + combining merge (re-group, fold partial states)\n")
				} else {
					b.WriteString("  two-phase: partial sort per partition + k-way combining merge\n")
				}
			}
		}
	}
}

func explainSelect(b *strings.Builder, s *sql.SelectStmt, depth int) {
	pad := strings.Repeat("  ", depth)
	for i := range s.From {
		tr := &s.From[i]
		switch {
		case tr.Basket != nil:
			fmt.Fprintf(b, "%sbasket-scan [%s] as %s (consuming)\n", pad, describeScan(tr.Basket), tr.Alias)
			if tr.Basket.Where != nil {
				fmt.Fprintf(b, "%s  predicate window: %s\n", pad, tr.Basket.Where)
			}
			if tr.Basket.Top >= 0 {
				fmt.Fprintf(b, "%s  window: top %d", pad, tr.Basket.Top)
				if len(tr.Basket.OrderBy) > 0 {
					fmt.Fprintf(b, " order by %s", tr.Basket.OrderBy[0].Expr)
				}
				b.WriteByte('\n')
			}
		case tr.Sub != nil:
			fmt.Fprintf(b, "%sderived table %s\n", pad, tr.Alias)
			explainSelect(b, tr.Sub, depth+1)
		default:
			fmt.Fprintf(b, "%sscan %s as %s\n", pad, tr.Name, tr.Alias)
		}
	}
	if len(s.From) > 1 {
		fmt.Fprintf(b, "%sjoin %d sources\n", pad, len(s.From))
	}
	if s.Where != nil {
		fmt.Fprintf(b, "%sfilter: %s\n", pad, s.Where)
	}
	agg := len(s.GroupBy) > 0
	for _, it := range s.Items {
		if it.Agg != nil {
			agg = true
		}
	}
	if agg {
		fmt.Fprintf(b, "%saggregate (%d group keys, %d items)\n", pad, len(s.GroupBy), len(s.Items))
	} else {
		fmt.Fprintf(b, "%sproject %d items\n", pad, len(s.Items))
	}
	if s.Having != nil {
		fmt.Fprintf(b, "%shaving: %s\n", pad, s.Having)
	}
	if s.Distinct {
		fmt.Fprintf(b, "%sdistinct\n", pad)
	}
	if s.Union != nil {
		op := "union"
		if s.UnionAll {
			op = "union all"
		}
		fmt.Fprintf(b, "%s%s\n", pad, op)
		explainSelect(b, s.Union, depth+1)
	}
	if len(s.OrderBy) > 0 {
		keys := make([]string, len(s.OrderBy))
		for i, oi := range s.OrderBy {
			keys[i] = oi.Expr.String()
			if oi.Desc {
				keys[i] += " desc"
			}
		}
		fmt.Fprintf(b, "%sorder by %s\n", pad, strings.Join(keys, ", "))
	}
	if s.Top >= 0 {
		fmt.Fprintf(b, "%stop %d\n", pad, s.Top)
	}
}

func describeScan(s *sql.SelectStmt) string {
	names := make([]string, 0, len(s.From))
	for i := range s.From {
		if s.From[i].Name != "" {
			names = append(names, s.From[i].Name)
		} else {
			names = append(names, "(nested)")
		}
	}
	return strings.Join(names, ", ")
}
