package plan

import (
	"fmt"
	"strings"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/core"
	"datacell/internal/expr"
	"datacell/internal/sql"
	"datacell/internal/vector"
)

// Compiled is the result of compiling one statement. Continuous statements
// carry a Factory to register with the scheduler and the Out basket where
// results accumulate; DDL and one-time statements execute immediately
// inside Compile and carry neither.
type Compiled struct {
	Name    string
	Factory *core.Factory
	Out     *basket.Basket
	// Result holds the rows of an immediately executed one-time query.
	Result *bat.Relation
}

// Continuous reports whether the statement compiled to a factory.
func (c *Compiled) Continuous() bool { return c.Factory != nil }

// Compile translates a parsed statement against the catalog. Continuous
// queries (those containing basket expressions) become factories; create,
// declare, set and one-time queries take effect immediately.
func Compile(cat *Catalog, stmt sql.Statement, name string) (*Compiled, error) {
	switch s := stmt.(type) {
	case *sql.CreateStmt:
		names := make([]string, len(s.Cols))
		types := make([]vector.Type, len(s.Cols))
		for i, c := range s.Cols {
			names[i] = c.Name
			types[i] = c.Type
		}
		kind := KindBasket
		if s.Kind == "table" {
			kind = KindTable
		}
		b, err := cat.CreateBasket(s.Name, names, types, kind)
		if err != nil {
			return nil, err
		}
		return &Compiled{Name: name, Out: b}, nil

	case *sql.DeclareStmt:
		cat.DeclareVar(s.Name, s.Type)
		return &Compiled{Name: name}, nil

	case *sql.SetStmt:
		if err := execSet(cat, newEnv(cat), s); err != nil {
			return nil, err
		}
		return &Compiled{Name: name}, nil

	case *sql.SelectStmt:
		if !s.IsContinuous() {
			rel, err := ExecuteQuery(cat, s)
			if err != nil {
				return nil, err
			}
			return &Compiled{Name: name, Result: rel}, nil
		}
		return compileContinuousSelect(cat, s, name, "", nil)

	case *sql.InsertStmt:
		if !s.Query.IsContinuous() {
			rel, err := ExecuteQuery(cat, s.Query)
			if err != nil {
				return nil, err
			}
			target, err := ensureTarget(cat, s.Target, s.Cols, rel)
			if err != nil {
				return nil, err
			}
			rel, err = conformToTarget(rel, target, s.Cols)
			if err != nil {
				return nil, err
			}
			if _, err := target.Append(rel); err != nil {
				return nil, err
			}
			return &Compiled{Name: name, Out: target}, nil
		}
		return compileContinuousInsert(cat, s, name)

	case *sql.WithBlock:
		return compileWithBlock(cat, s, name)
	}
	return nil, fmt.Errorf("plan: cannot compile %T", stmt)
}

// ExecuteQuery runs a one-time (non-continuous) select immediately,
// locking the referenced baskets for the duration.
func ExecuteQuery(cat *Catalog, s *sql.SelectStmt) (*bat.Relation, error) {
	refs := collectBaskets(cat, s)
	unlock := lockAll(refs)
	defer unlock()
	return newEnv(cat).execSelect(s)
}

func execSet(cat *Catalog, e *env, s *sql.SetStmt) error {
	refs := collectExprBaskets(cat, s.Value)
	if len(refs) > 0 && !insideFiring(e) {
		unlock := lockAll(refs)
		defer unlock()
	}
	rx, err := e.resolve(s.Value, nil)
	if err != nil {
		return err
	}
	one := bat.NewRelation([]string{"__one"}, []*vector.Vector{vector.FromInts([]int64{0})})
	v, err := rx.Eval(one)
	if err != nil {
		return err
	}
	if v.Len() == 0 {
		return fmt.Errorf("plan: set %s: empty value", s.Name)
	}
	cat.SetVar(s.Name, v.Get(0))
	return nil
}

// insideFiring reports whether the env runs inside a factory firing (locks
// already held). With-block bodies pass an env with bindings.
func insideFiring(e *env) bool { return len(e.binds) > 0 }

// compileContinuousInsert builds a factory for insert … select where the
// select is continuous, honouring the insert's explicit column list.
func compileContinuousInsert(cat *Catalog, ins *sql.InsertStmt, name string) (*Compiled, error) {
	return compileContinuousSelect(cat, ins.Query, name, ins.Target, ins.Cols)
}

// compileContinuousSelect builds a factory for a continuous select,
// appending results to target (created from the query's schema when it
// does not exist yet). It is the two compilation phases back to back:
// analysis (firing structure + shareable stream-scan artifact) and wiring
// (the standalone factory).
func compileContinuousSelect(cat *Catalog, s *sql.SelectStmt, name, target string, cols []string) (*Compiled, error) {
	a, err := analyzeSelect(cat, s, name, target, cols)
	if err != nil {
		return nil, err
	}
	return a.Wire()
}

// genTracker remembers the per-input append generations of a factory's
// last firing. Methods are called with the baskets locked (guard and body
// both run inside the firing).
type genTracker struct {
	inputs []*basket.Basket
	gens   []int64
}

func newGenTracker(inputs []*basket.Basket) *genTracker {
	t := &genTracker{inputs: inputs, gens: make([]int64, len(inputs))}
	for i := range t.gens {
		t.gens[i] = -1
	}
	return t
}

func (t *genTracker) changed() bool {
	for i, in := range t.inputs {
		if in.AppendedLocked() != t.gens[i] {
			return true
		}
	}
	return false
}

func (t *genTracker) update() {
	for i, in := range t.inputs {
		t.gens[i] = in.AppendedLocked()
	}
}

func compileWithBlock(cat *Catalog, w *sql.WithBlock, name string) (*Compiled, error) {
	// Prototype the binding to type-check the body and create targets.
	bindProto, err := protoEnv(cat).execBasketScan(w.Basket)
	if err != nil {
		return nil, fmt.Errorf("plan: %s: %w", name, err)
	}

	inputs, thresholds := consumedInputsIn(cat, w.Basket, true)
	if len(inputs) == 0 {
		return nil, fmt.Errorf("plan: %s: with-block consumes no baskets", name)
	}

	type insertTarget struct {
		stmt   *sql.InsertStmt
		target *basket.Basket
	}
	var inserts []insertTarget
	var outputs []*basket.Basket
	for _, st := range w.Body {
		switch b := st.(type) {
		case *sql.InsertStmt:
			pe := protoEnv(cat)
			pe.bind(w.Alias, bindProto)
			qproto, err := pe.execSelect(b.Query)
			if err != nil {
				return nil, fmt.Errorf("plan: %s: %w", name, err)
			}
			t, err := ensureTarget(cat, b.Target, b.Cols, qproto)
			if err != nil {
				return nil, err
			}
			inserts = append(inserts, insertTarget{stmt: b, target: t})
			outputs = append(outputs, t)
		case *sql.SetStmt:
			// Assignments execute per firing; nothing to pre-create.
		default:
			return nil, fmt.Errorf("plan: %s: unsupported with-block statement %T", name, st)
		}
	}
	if len(outputs) == 0 {
		// A pure variable-updating block (the paper's incremental
		// aggregate) still needs a nominal output basket for the
		// Petri-net structure.
		sink, err := ensureTarget(cat, strings.ToLower(name)+"_sink", nil, bindProto)
		if err != nil {
			return nil, err
		}
		outputs = append(outputs, sink)
	}
	lockOnly := lockOnlyBaskets(cat, w.Basket, inputs)
	outputs = append(outputs, lockOnly...)

	lastGens := newGenTracker(inputs)
	f, err := core.NewFactory(name, inputs, outputs, func(ctx *core.Context) error {
		lastGens.update()
		e := newEnv(cat)
		e.arena = getArena()
		defer putArena(e.arena)
		bound, err := e.execBasketScan(w.Basket)
		if err != nil {
			return err
		}
		e.bind(w.Alias, bound)
		// Statements run in declaration order, exactly once per binding
		// (the compound block executes for each basket binding).
		for _, st := range w.Body {
			switch b := st.(type) {
			case *sql.InsertStmt:
				rel, err := e.execSelect(b.Query)
				if err != nil {
					return err
				}
				if rel.Len() == 0 {
					continue
				}
				var target *basket.Basket
				for _, it := range inserts {
					if it.stmt == b {
						target = it.target
					}
				}
				rel, err = conformToTarget(rel, target, b.Cols)
				if err != nil {
					return err
				}
				if _, err := target.AppendLocked(rel); err != nil {
					return err
				}
			case *sql.SetStmt:
				if err := execSet(cat, e, b); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	f.SetGuard(func(*core.Context) bool { return lastGens.changed() })
	for i, th := range thresholds {
		if th > 1 {
			f.SetThreshold(i, th)
		}
	}
	return &Compiled{Name: name, Factory: f, Out: outputs[0]}, nil
}

// ensureTarget returns the named basket, creating it from the prototype
// schema when missing. cols, if given, names the subset/order of target
// columns the inserts will provide.
func ensureTarget(cat *Catalog, name string, cols []string, proto *bat.Relation) (*basket.Basket, error) {
	if b := cat.Basket(name); b != nil {
		return b, nil
	}
	names := proto.Names()
	types := proto.Types()
	if len(cols) > 0 {
		if len(cols) != len(names) {
			return nil, fmt.Errorf("plan: insert into %s: %d columns named but query yields %d", name, len(cols), len(names))
		}
		names = cols
	}
	// Strip qualifiers for the stored schema.
	clean := make([]string, len(names))
	for i, n := range names {
		clean[i] = bareName(n)
	}
	return cat.CreateBasket(name, clean, types, KindBasket)
}

// conformToTarget reorders/validates a result relation against the
// target's user schema. With an explicit column list, result columns map
// positionally onto the named target columns and the full target arity
// must be covered.
func conformToTarget(rel *bat.Relation, target *basket.Basket, cols []string) (*bat.Relation, error) {
	names, _ := target.UserSchema()
	if len(cols) == 0 {
		if rel.NumCols() != len(names) {
			return nil, fmt.Errorf("plan: insert into %s: arity %d, want %d", target.Name(), rel.NumCols(), len(names))
		}
		return rel, nil
	}
	if len(cols) != rel.NumCols() {
		return nil, fmt.Errorf("plan: insert column list has %d names but query yields %d columns", len(cols), rel.NumCols())
	}
	if len(cols) != len(names) {
		return nil, fmt.Errorf("plan: insert into %s must cover all %d columns", target.Name(), len(names))
	}
	byName := map[string]int{}
	for i, c := range cols {
		byName[strings.ToLower(c)] = i
	}
	perm := make([]*vector.Vector, len(names))
	for i, n := range names {
		j, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("plan: insert into %s: column %q not provided", target.Name(), n)
		}
		perm[i] = rel.Col(j)
	}
	return bat.NewRelation(names, perm), nil
}

// consumedInputs walks the statement's basket expressions and returns the
// catalog baskets they consume, plus per-input firing thresholds derived
// from TOP-n windows over single sources.
func consumedInputs(cat *Catalog, s *sql.SelectStmt) ([]*basket.Basket, []int) {
	return consumedInputsIn(cat, s, false)
}

// consumedInputsIn is consumedInputs with an explicit starting context:
// with-blocks pass inBasket=true because their top-level select *is* the
// basket expression.
func consumedInputsIn(cat *Catalog, s *sql.SelectStmt, startInBasket bool) ([]*basket.Basket, []int) {
	var inputs []*basket.Basket
	var thresholds []int
	seen := map[*basket.Basket]int{}
	var walkSel func(sel *sql.SelectStmt, inBasket bool)
	walkSel = func(sel *sql.SelectStmt, inBasket bool) {
		for i := range sel.From {
			tr := &sel.From[i]
			switch {
			case tr.Basket != nil:
				walkSel(tr.Basket, true)
			case tr.Sub != nil:
				walkSel(tr.Sub, inBasket)
			default:
				if !inBasket {
					continue
				}
				b := cat.Basket(tr.Name)
				if b == nil || cat.KindOf(tr.Name) != KindBasket {
					continue
				}
				th := 1
				if sel.Top > 0 && len(sel.From) == 1 {
					th = sel.Top
				}
				if idx, ok := seen[b]; ok {
					if th > thresholds[idx] {
						thresholds[idx] = th
					}
					continue
				}
				seen[b] = len(inputs)
				inputs = append(inputs, b)
				thresholds = append(thresholds, th)
			}
		}
		if sel.Union != nil {
			walkSel(sel.Union, inBasket)
		}
	}
	walkSel(s, startInBasket)
	return inputs, thresholds
}

// lockOnlyBaskets returns catalog baskets referenced outside basket
// expressions (tables, direct scans) that are not already inputs; the
// factory locks them via its output set without gating its firing on them.
func lockOnlyBaskets(cat *Catalog, s *sql.SelectStmt, inputs []*basket.Basket) []*basket.Basket {
	isInput := map[*basket.Basket]bool{}
	for _, b := range inputs {
		isInput[b] = true
	}
	var out []*basket.Basket
	seen := map[*basket.Basket]bool{}
	var walkSel func(sel *sql.SelectStmt, inBasket bool)
	walkExpr := func(x expr.Expr, inBasket bool) {
		for _, ref := range subqueriesOf(x) {
			walkSel(ref, inBasket)
		}
	}
	walkSel = func(sel *sql.SelectStmt, inBasket bool) {
		for i := range sel.From {
			tr := &sel.From[i]
			switch {
			case tr.Basket != nil:
				walkSel(tr.Basket, true)
			case tr.Sub != nil:
				walkSel(tr.Sub, inBasket)
			default:
				b := cat.Basket(tr.Name)
				if b == nil || isInput[b] || seen[b] {
					continue
				}
				consumed := inBasket && cat.KindOf(tr.Name) == KindBasket
				if !consumed {
					seen[b] = true
					out = append(out, b)
				}
			}
		}
		walkExpr(sel.Where, false)
		walkExpr(sel.Having, false)
		for _, it := range sel.Items {
			walkExpr(it.Expr, false)
			if it.Agg != nil {
				walkExpr(it.Agg.Arg, false)
			}
		}
		if sel.Union != nil {
			walkSel(sel.Union, inBasket)
		}
	}
	walkSel(s, false)
	return out
}

// collectBaskets returns every catalog basket a statement references.
func collectBaskets(cat *Catalog, s *sql.SelectStmt) []*basket.Basket {
	inputs, _ := consumedInputs(cat, s)
	return append(inputs, lockOnlyBaskets(cat, s, inputs)...)
}

// collectExprBaskets returns baskets referenced by scalar sub-queries in
// an expression.
func collectExprBaskets(cat *Catalog, x expr.Expr) []*basket.Basket {
	var out []*basket.Basket
	for _, sel := range subqueriesOf(x) {
		out = append(out, collectBaskets(cat, sel)...)
	}
	return out
}

// subqueriesOf extracts scalar sub-query selects from an expression tree.
func subqueriesOf(x expr.Expr) []*sql.SelectStmt {
	var out []*sql.SelectStmt
	var walk func(expr.Expr)
	walk = func(n expr.Expr) {
		switch t := n.(type) {
		case nil:
		case *sql.SubqueryExpr:
			out = append(out, t.Sel)
		case *expr.Bin:
			walk(t.L)
			walk(t.R)
		case *expr.Not:
			walk(t.E)
		case *expr.Neg:
			walk(t.E)
		case *expr.Call:
			for _, a := range t.Args {
				walk(a)
			}
		case *expr.Between:
			walk(t.E)
			walk(t.Lo)
			walk(t.Hi)
		case *expr.InList:
			walk(t.E)
		case *expr.Like:
			walk(t.E)
		case *expr.Case:
			for _, w := range t.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			walk(t.Else)
		}
	}
	walk(x)
	return out
}
