package plan

import (
	"strings"

	"datacell/internal/expr"
	"datacell/internal/interval"
	"datacell/internal/vector"
)

// Sargable-predicate analysis for partition pruning. For a row-local
// predicate-window select, the analysis derives per stream column a
// *necessary condition*: an interval set the column value of any matching
// tuple must fall into. pred(t) ⟹ t.col ∈ set, never the converse — the
// clone still evaluates the full predicate, so routing may send it false
// positives but must never hide a potential match. Tuples outside every
// set can match nothing and are routed to the catch-all partition that no
// clone scans; that is what turns a P-way split into work reduction.

// sargableSets extracts the per-column necessary-condition interval sets
// of predicate x. types maps the stream's user columns (lower-case,
// unqualified) to their declared types; comparisons against constants of
// an incompatible class (string constant on a numeric column, …) are
// dropped rather than guessed at. A nil/empty result means the predicate
// constrains no column.
func sargableSets(x expr.Expr, types map[string]vector.Type) map[string]interval.Set {
	switch n := x.(type) {
	case nil:
		return nil
	case *expr.Bin:
		switch n.Op {
		case expr.And:
			// x∧y true implies both hold: merge, intersecting sets on
			// columns both sides constrain.
			return andSets(sargableSets(n.L, types), sargableSets(n.R, types))
		case expr.Or:
			// x∨y true implies at least one holds: only columns both
			// sides constrain stay necessary, with the union set.
			return orSets(sargableSets(n.L, types), sargableSets(n.R, types))
		case expr.Eq, expr.Lt, expr.Le, expr.Gt, expr.Ge:
			col, val, op, ok := colConstCmpExpr(n, types)
			if !ok {
				return nil
			}
			return map[string]interval.Set{col: cmpSet(op, val)}
		}
		return nil
	case *expr.Between:
		if n.Negate {
			return nil
		}
		col, ok := streamCol(n.E, types)
		if !ok {
			return nil
		}
		lo, ok1 := expr.ConstValue(n.Lo)
		hi, ok2 := expr.ConstValue(n.Hi)
		if !ok1 || !ok2 || !classOK(types[col], lo) || !classOK(types[col], hi) {
			return nil
		}
		return map[string]interval.Set{col: interval.NewSet(
			interval.Interval{Lo: interval.Closed(lo), Hi: interval.Closed(hi)})}
	case *expr.InList:
		if n.Negate {
			return nil
		}
		col, ok := streamCol(n.E, types)
		if !ok {
			return nil
		}
		ivs := make([]interval.Interval, 0, len(n.Vals))
		for _, v := range n.Vals {
			if !classOK(types[col], v) {
				return nil
			}
			ivs = append(ivs, interval.Point(v))
		}
		return map[string]interval.Set{col: interval.NewSet(ivs...)}
	case *expr.Col:
		// A bare boolean column used as the predicate: col ∈ {true}.
		col, ok := streamCol(n, types)
		if !ok || types[col] != vector.Bool {
			return nil
		}
		return map[string]interval.Set{col: interval.NewSet(interval.Point(vector.NewBool(true)))}
	}
	return nil
}

// cmpSet maps `col op val` to the value set satisfying it.
func cmpSet(op expr.BinOp, val vector.Value) interval.Set {
	switch op {
	case expr.Eq:
		return interval.NewSet(interval.Point(val))
	case expr.Lt:
		return interval.NewSet(interval.Interval{Lo: interval.Unbounded(), Hi: interval.Open(val)})
	case expr.Le:
		return interval.NewSet(interval.Interval{Lo: interval.Unbounded(), Hi: interval.Closed(val)})
	case expr.Gt:
		return interval.NewSet(interval.Interval{Lo: interval.Open(val), Hi: interval.Unbounded()})
	default: // Ge
		return interval.NewSet(interval.Interval{Lo: interval.Closed(val), Hi: interval.Unbounded()})
	}
}

// colConstCmpExpr recognises col-op-const and const-op-col comparisons
// over a stream column, flipping the operator in the latter case.
func colConstCmpExpr(n *expr.Bin, types map[string]vector.Type) (string, vector.Value, expr.BinOp, bool) {
	if col, ok := streamCol(n.L, types); ok {
		if val, ok2 := expr.ConstValue(n.R); ok2 && classOK(types[col], val) {
			return col, val, n.Op, true
		}
	}
	if col, ok := streamCol(n.R, types); ok {
		if val, ok2 := expr.ConstValue(n.L); ok2 && classOK(types[col], val) {
			op := n.Op
			switch n.Op {
			case expr.Lt:
				op = expr.Gt
			case expr.Le:
				op = expr.Ge
			case expr.Gt:
				op = expr.Lt
			case expr.Ge:
				op = expr.Le
			}
			return col, val, op, true
		}
	}
	return "", vector.Value{}, 0, false
}

// streamCol resolves an expression to a stream column name (qualifier
// stripped, lower-cased), when it is a plain column reference declared in
// the stream schema.
func streamCol(e expr.Expr, types map[string]vector.Type) (string, bool) {
	c, ok := e.(*expr.Col)
	if !ok {
		return "", false
	}
	name := strings.ToLower(c.Name)
	if k := strings.LastIndexByte(name, '.'); k >= 0 {
		name = name[k+1:]
	}
	_, declared := types[name]
	return name, declared
}

// classOK reports whether a constant's class is comparable with a
// column's declared type (numeric with numeric, string with string, bool
// with bool); mixed-class comparisons are not sargable here.
func classOK(col vector.Type, v vector.Value) bool {
	switch col {
	case vector.Int, vector.Float, vector.Timestamp:
		return v.Kind == vector.Int || v.Kind == vector.Float || v.Kind == vector.Timestamp
	case vector.Str:
		return v.Kind == vector.Str
	case vector.Bool:
		return v.Kind == vector.Bool
	}
	return false
}

// andSets conjoins two per-column maps: columns in both intersect,
// columns in one carry over (the other conjunct only narrows further).
func andSets(a, b map[string]interval.Set) map[string]interval.Set {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(map[string]interval.Set, len(a)+len(b))
	for c, s := range a {
		out[c] = s
	}
	for c, s := range b {
		if prev, ok := out[c]; ok {
			out[c] = prev.Intersect(s)
		} else {
			out[c] = s
		}
	}
	return out
}

// orSets disjoins two per-column maps: only columns constrained on both
// sides remain necessary, with the union set; a vacuous union (everything)
// is dropped.
func orSets(a, b map[string]interval.Set) map[string]interval.Set {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := map[string]interval.Set{}
	for c, s := range a {
		o, ok := b[c]
		if !ok {
			continue
		}
		u := s.Union(o)
		if u.All() {
			continue
		}
		out[c] = u
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// bestRangeCol picks the routing column among the constrained columns:
// a column whose set is range-sliceable (finite numeric measure) beats a
// merely bounded one beats any constraint; ties break lexicographically
// for determinism. ok is false when no usable column remains.
func bestRangeCol(sets map[string]interval.Set) (string, bool) {
	best, bestRank := "", -1
	for col, s := range sets {
		if s.All() {
			continue
		}
		rank := 0
		if s.Bounded() {
			rank = 1
		}
		if m, ok := s.Measure(); ok && m > 0 {
			rank = 2
		}
		if rank > bestRank || (rank == bestRank && col < best) {
			best, bestRank = col, rank
		}
	}
	return best, bestRank >= 0
}
