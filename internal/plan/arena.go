package plan

import (
	"sync"

	"datacell/internal/bat"
	"datacell/internal/expr"
)

// execArena is the per-firing execution scratch of a compiled plan: an
// expression Scratch (vectors and selection buffers) plus a pool of
// relation headers for materialised intermediates. One arena is owned by
// exactly one firing at a time — the firing holds all of its basket locks
// for its whole duration, and the arena travels with the firing, so
// nothing here needs locking. Between firings the arena keeps its grown
// buffers, which is what makes the steady-state firing path allocation
// free.
//
// Arena-backed vectors and relations are only ever handed to the firing's
// own env; every value that leaves a firing (output baskets, emitters)
// is copied on append, so recycling the arena cannot leak tuples across
// firings or partitions.
type execArena struct {
	sc   expr.Scratch
	rels []*bat.Relation
	ri   int
	// perm is the reusable ORDER BY permutation buffer: SortInto/TopNInto
	// grow it once and steady-state sorting stays allocation free. It is
	// consumed (gathered through) before any nested select could reclaim
	// it, so one buffer per arena suffices; reset leaves it warm.
	perm []int32
}

// rel returns a reusable relation header, distinct from every header
// returned since the last reset.
func (a *execArena) rel() *bat.Relation {
	if a.ri == len(a.rels) {
		a.rels = append(a.rels, &bat.Relation{})
	}
	r := a.rels[a.ri]
	a.ri++
	return r
}

func (a *execArena) reset() {
	a.sc.Reset()
	a.ri = 0
}

// arenaPool recycles execution arenas across firings. Strategy wirings
// share one Fire function between partition clones that may fire
// concurrently, so the arena cannot live in a per-query closure; the pool
// guarantees each concurrent firing gets its own arena while steady-state
// firing still reuses warmed-up buffers.
var arenaPool = sync.Pool{New: func() any { return &execArena{} }}

func getArena() *execArena { return arenaPool.Get().(*execArena) }

func putArena(a *execArena) {
	a.reset()
	arenaPool.Put(a)
}
