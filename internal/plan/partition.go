package plan

import (
	"slices"
	"strings"

	"datacell/internal/expr"
	"datacell/internal/sql"
)

// PartMode classifies how a stream scan may be partitioned for parallel
// execution.
type PartMode uint8

// Partitionability verdicts.
const (
	// PartNone: the plan must see the whole stream; it runs at one
	// partition regardless of the engine's parallelism.
	PartNone PartMode = iota
	// PartRoundRobin: a row-local select/project plan whose result is the
	// same multiset under any disjoint split of the stream.
	PartRoundRobin
	// PartHash: a grouped plan that is correct under any split co-locating
	// tuples with equal grouping keys — hashing one grouping column.
	PartHash
)

// String names the verdict.
func (m PartMode) String() string {
	switch m {
	case PartNone:
		return "none"
	case PartRoundRobin:
		return "round-robin"
	case PartHash:
		return "hash"
	}
	return "?"
}

// Partitionability reports the partitioning verdict a continuous statement
// would receive from Analyze — the mode and, for hash partitioning, the
// stream column to route on. ok is false when the statement is not a
// shareable single-stream scan at all. Nothing is created.
func Partitionability(cat *Catalog, stmt sql.Statement) (PartMode, string, bool) {
	streamName, ok := ShareableStream(cat, stmt)
	if !ok {
		return PartNone, "", false
	}
	var sel *sql.SelectStmt
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		sel = s
	case *sql.InsertStmt:
		sel = s.Query
	}
	mode, col := partitionVerdict(cat, sel, streamName)
	return mode, col, true
}

// partitionVerdict decides how a single-stream continuous select may be
// partitioned. The analysis is deliberately conservative: predicate-window
// selects (row-local basket expression and row-local outer filters and
// projections) are round-robin-safe; grouped plans whose first grouping
// key is a plain stream column hash-partition on that column; everything
// else — tuple-count windows (TOP), ORDER BY, DISTINCT, UNION, joins,
// global aggregates, scalar sub-queries, session variables, now() — must
// see the whole stream and falls back to one partition.
func partitionVerdict(cat *Catalog, sel *sql.SelectStmt, streamName string) (PartMode, string) {
	if sel.Union != nil || sel.Distinct || len(sel.OrderBy) > 0 || sel.Top >= 0 || len(sel.From) != 1 {
		return PartNone, ""
	}
	// The basket expression must be a plain predicate window over the
	// stream: one named source, a bare * select list, no window or set
	// operations of its own. That also guarantees the outer query's
	// columns are exactly the stream's columns.
	be := sel.From[0].Basket
	if be == nil {
		return PartNone, ""
	}
	if len(be.From) != 1 || be.From[0].Name == "" || !strings.EqualFold(be.From[0].Name, streamName) {
		return PartNone, ""
	}
	if be.Union != nil || be.Distinct || len(be.OrderBy) > 0 || be.Top >= 0 ||
		len(be.GroupBy) > 0 || be.Having != nil {
		return PartNone, ""
	}
	if len(be.Items) != 1 || !be.Items[0].Star {
		return PartNone, ""
	}
	rowLocal := func(x expr.Expr) bool { return rowLocalExpr(cat, x) }
	if !rowLocal(be.Where) || !rowLocal(sel.Where) || !rowLocal(sel.Having) {
		return PartNone, ""
	}
	aggregated := len(sel.GroupBy) > 0
	for _, it := range sel.Items {
		if it.Agg != nil {
			aggregated = true
			if !rowLocal(it.Agg.Arg) {
				return PartNone, ""
			}
			continue
		}
		if !it.Star && !rowLocal(it.Expr) {
			return PartNone, ""
		}
	}
	if !aggregated {
		return PartRoundRobin, ""
	}
	if len(sel.GroupBy) == 0 {
		// A global aggregate would yield one row per partition instead of
		// one row total.
		return PartNone, ""
	}
	for _, g := range sel.GroupBy {
		if !rowLocal(g) {
			return PartNone, ""
		}
	}
	// Hashing any one grouping column co-locates equal full keys: equal
	// full key implies equal first key implies same partition.
	col, ok := sel.GroupBy[0].(*expr.Col)
	if !ok {
		return PartNone, ""
	}
	key := col.Name
	if k := strings.LastIndexByte(key, '.'); k >= 0 {
		key = key[k+1:]
	}
	b := cat.Basket(streamName)
	if b == nil {
		return PartNone, ""
	}
	names, _ := b.UserSchema()
	if !slices.Contains(names, key) {
		return PartNone, ""
	}
	return PartHash, key
}

// rowLocalExpr reports whether evaluating x over a subset of the stream's
// rows yields the same per-row values as over the whole stream. Scalar
// sub-queries and now() are evaluated per firing (partition clones fire
// independently), and session variables can change between firings, so
// all three disqualify.
func rowLocalExpr(cat *Catalog, x expr.Expr) bool {
	switch n := x.(type) {
	case nil:
		return true
	case *expr.Const:
		return true
	case *expr.Col:
		if _, isVar := cat.Var(n.Name); isVar {
			return false
		}
		return true
	case *expr.Bin:
		return rowLocalExpr(cat, n.L) && rowLocalExpr(cat, n.R)
	case *expr.Not:
		return rowLocalExpr(cat, n.E)
	case *expr.Neg:
		return rowLocalExpr(cat, n.E)
	case *expr.Between:
		return rowLocalExpr(cat, n.E) && rowLocalExpr(cat, n.Lo) && rowLocalExpr(cat, n.Hi)
	case *expr.InList:
		return rowLocalExpr(cat, n.E)
	case *expr.Like:
		return rowLocalExpr(cat, n.E)
	case *expr.Case:
		for _, w := range n.Whens {
			if !rowLocalExpr(cat, w.Cond) || !rowLocalExpr(cat, w.Then) {
				return false
			}
		}
		return rowLocalExpr(cat, n.Else)
	case *expr.Call:
		if n.Name == "now" {
			return false
		}
		for _, a := range n.Args {
			if !rowLocalExpr(cat, a) {
				return false
			}
		}
		return true
	}
	return false // sql.SubqueryExpr and anything unrecognised
}
