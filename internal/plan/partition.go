package plan

import (
	"fmt"
	"slices"
	"strings"

	"datacell/internal/expr"
	"datacell/internal/interval"
	"datacell/internal/sql"
	"datacell/internal/vector"
)

// PartMode classifies how a stream scan may be partitioned for parallel
// execution.
type PartMode uint8

// Partitionability verdicts.
const (
	// PartNone: the plan must see the whole stream; it runs at one
	// partition regardless of the engine's parallelism.
	PartNone PartMode = iota
	// PartRoundRobin: a row-local select/project plan whose result is the
	// same multiset under any disjoint split of the stream.
	PartRoundRobin
	// PartHash: a grouped plan that is correct under any split co-locating
	// tuples with equal grouping keys — hashing one grouping column.
	PartHash
	// PartRange: a row-local plan with a sargable predicate. A necessary
	// condition on one stream column restricts the values a matching
	// tuple can carry, so the splitter routes tuples inside the set
	// across the partitions by range (or hash, when the set has no
	// sliceable measure) and prunes tuples outside it to a catch-all
	// partition no clone scans.
	PartRange
)

// String names the verdict.
func (m PartMode) String() string {
	switch m {
	case PartNone:
		return "none"
	case PartRoundRobin:
		return "round-robin"
	case PartHash:
		return "hash"
	case PartRange:
		return "range"
	}
	return "?"
}

// Verdict is the full partitioning verdict of one continuous plan: the
// mode, the routing column (hash and range modes), and — for range mode —
// the per-column necessary-condition sets the sargable analysis derived
// (Ranges[Col] is the set routed on; the other entries let a query group
// find a column every member constrains).
type Verdict struct {
	Mode   PartMode
	Col    string
	Ranges map[string]interval.Set
}

// Set returns the routing column's interval set (range mode).
func (v Verdict) Set() interval.Set { return v.Ranges[v.Col] }

// Describe renders the verdict for explain output and group info:
// "none", "round-robin", "hash(k)", "range(v)".
func (v Verdict) Describe() string {
	switch v.Mode {
	case PartHash:
		return fmt.Sprintf("hash(%s)", v.Col)
	case PartRange:
		return fmt.Sprintf("range(%s)", v.Col)
	}
	return v.Mode.String()
}

// CombineVerdicts folds the verdicts of all queries sharing one stream
// split (the shared and partial wirings partition the stream once for
// the whole group) into the group-wide routing verdict:
//
//   - any non-partitionable member pins the group to one partition;
//   - hash members force hash routing on their column (row-local members
//     accept any disjoint split), and two hash members on different
//     columns pin the group;
//   - all-range members route by range on a column every member
//     constrains, with the union of their sets — a tuple outside the
//     union can match no member, so the catch-all stays safe;
//   - otherwise the group falls back to round-robin (an unconstrained
//     row-local member may match any tuple, so nothing can be pruned).
func CombineVerdicts(vs ...Verdict) Verdict {
	allRange := len(vs) > 0
	var hash *Verdict
	for i := range vs {
		switch vs[i].Mode {
		case PartNone:
			return Verdict{Mode: PartNone}
		case PartHash:
			if hash != nil && hash.Col != vs[i].Col {
				return Verdict{Mode: PartNone}
			}
			hash = &vs[i]
			allRange = false
		case PartRoundRobin:
			allRange = false
		}
	}
	if hash != nil {
		return Verdict{Mode: PartHash, Col: hash.Col}
	}
	if !allRange {
		return Verdict{Mode: PartRoundRobin}
	}
	// Intersect the constrained column sets across members, unioning the
	// value sets per column.
	union := map[string]interval.Set{}
	for col, s := range vs[0].Ranges {
		union[col] = s
	}
	for _, v := range vs[1:] {
		for col, s := range union {
			o, ok := v.Ranges[col]
			if !ok {
				delete(union, col)
				continue
			}
			u := s.Union(o)
			if u.All() {
				delete(union, col)
				continue
			}
			union[col] = u
		}
	}
	col, ok := bestRangeCol(union)
	if !ok {
		return Verdict{Mode: PartRoundRobin}
	}
	return Verdict{Mode: PartRange, Col: col, Ranges: union}
}

// Partitionability reports the partitioning verdict a continuous
// statement would receive from Analyze. ok is false when the statement is
// not a shareable single-stream scan at all. Nothing is created.
func Partitionability(cat *Catalog, stmt sql.Statement) (Verdict, bool) {
	streamName, ok := ShareableStream(cat, stmt)
	if !ok {
		return Verdict{Mode: PartNone}, false
	}
	var sel *sql.SelectStmt
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		sel = s
	case *sql.InsertStmt:
		sel = s.Query
	}
	return partitionVerdict(cat, sel, streamName), true
}

// partitionVerdict decides how a single-stream continuous select may be
// partitioned. The analysis is deliberately conservative: predicate-window
// selects (row-local basket expression and row-local outer filters and
// projections) partition by range when their predicate is sargable (the
// necessary condition prunes non-matching tuples to a catch-all) and
// round-robin otherwise; grouped plans whose first grouping key is a
// plain stream column hash-partition on that column; everything else —
// tuple-count windows (TOP), ORDER BY, DISTINCT, UNION, joins, global
// aggregates, scalar sub-queries, session variables, now() — must see the
// whole stream and falls back to one partition.
func partitionVerdict(cat *Catalog, sel *sql.SelectStmt, streamName string) Verdict {
	none := Verdict{Mode: PartNone}
	if sel.Union != nil || sel.Distinct || len(sel.OrderBy) > 0 || sel.Top >= 0 || len(sel.From) != 1 {
		return none
	}
	// The basket expression must be a plain predicate window over the
	// stream: one named source, a bare * select list, no window or set
	// operations of its own. That also guarantees the outer query's
	// columns are exactly the stream's columns.
	be := sel.From[0].Basket
	if be == nil {
		return none
	}
	if len(be.From) != 1 || be.From[0].Name == "" || !strings.EqualFold(be.From[0].Name, streamName) {
		return none
	}
	if be.Union != nil || be.Distinct || len(be.OrderBy) > 0 || be.Top >= 0 ||
		len(be.GroupBy) > 0 || be.Having != nil {
		return none
	}
	if len(be.Items) != 1 || !be.Items[0].Star {
		return none
	}
	rowLocal := func(x expr.Expr) bool { return rowLocalExpr(cat, x) }
	if !rowLocal(be.Where) || !rowLocal(sel.Where) || !rowLocal(sel.Having) {
		return none
	}
	aggregated := len(sel.GroupBy) > 0
	for _, it := range sel.Items {
		if it.Agg != nil {
			aggregated = true
			if !rowLocal(it.Agg.Arg) {
				return none
			}
			continue
		}
		if !it.Star && !rowLocal(it.Expr) {
			return none
		}
	}
	b := cat.Basket(streamName)
	if b == nil {
		return none
	}
	names, types := b.UserSchema()
	if !aggregated {
		// Sargable analysis over the conjunction of the window predicate
		// and the outer filter. Any constrained column upgrades the
		// verdict from round-robin to range routing with pruning.
		colTypes := make(map[string]vector.Type, len(names))
		for i, n := range names {
			colTypes[n] = types[i]
		}
		sets := andSets(sargableSets(be.Where, colTypes), sargableSets(sel.Where, colTypes))
		for col, s := range sets {
			if s.All() {
				delete(sets, col)
			}
		}
		if col, ok := bestRangeCol(sets); ok {
			return Verdict{Mode: PartRange, Col: col, Ranges: sets}
		}
		return Verdict{Mode: PartRoundRobin}
	}
	if len(sel.GroupBy) == 0 {
		// A global aggregate would yield one row per partition instead of
		// one row total.
		return none
	}
	for _, g := range sel.GroupBy {
		if !rowLocal(g) {
			return none
		}
	}
	// Hashing any one grouping column co-locates equal full keys: equal
	// full key implies equal first key implies same partition.
	col, ok := sel.GroupBy[0].(*expr.Col)
	if !ok {
		return none
	}
	key := col.Name
	if k := strings.LastIndexByte(key, '.'); k >= 0 {
		key = key[k+1:]
	}
	if !slices.Contains(names, key) {
		return none
	}
	return Verdict{Mode: PartHash, Col: key}
}

// rowLocalExpr reports whether evaluating x over a subset of the stream's
// rows yields the same per-row values as over the whole stream. Scalar
// sub-queries and now() are evaluated per firing (partition clones fire
// independently), and session variables can change between firings, so
// all three disqualify.
func rowLocalExpr(cat *Catalog, x expr.Expr) bool {
	switch n := x.(type) {
	case nil:
		return true
	case *expr.Const:
		return true
	case *expr.Col:
		if _, isVar := cat.Var(n.Name); isVar {
			return false
		}
		return true
	case *expr.Bin:
		return rowLocalExpr(cat, n.L) && rowLocalExpr(cat, n.R)
	case *expr.Not:
		return rowLocalExpr(cat, n.E)
	case *expr.Neg:
		return rowLocalExpr(cat, n.E)
	case *expr.Between:
		return rowLocalExpr(cat, n.E) && rowLocalExpr(cat, n.Lo) && rowLocalExpr(cat, n.Hi)
	case *expr.InList:
		return rowLocalExpr(cat, n.E)
	case *expr.Like:
		return rowLocalExpr(cat, n.E)
	case *expr.Case:
		for _, w := range n.Whens {
			if !rowLocalExpr(cat, w.Cond) || !rowLocalExpr(cat, w.Then) {
				return false
			}
		}
		return rowLocalExpr(cat, n.Else)
	case *expr.Call:
		if n.Name == "now" {
			return false
		}
		for _, a := range n.Args {
			if !rowLocalExpr(cat, a) {
				return false
			}
		}
		return true
	}
	return false // sql.SubqueryExpr and anything unrecognised
}
