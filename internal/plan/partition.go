package plan

import (
	"fmt"
	"slices"
	"strings"

	"datacell/internal/expr"
	"datacell/internal/interval"
	"datacell/internal/sql"
	"datacell/internal/vector"
)

// PartMode classifies how a stream scan may be partitioned for parallel
// execution.
type PartMode uint8

// Partitionability verdicts.
const (
	// PartNone: the plan must see the whole stream; it runs at one
	// partition regardless of the engine's parallelism.
	PartNone PartMode = iota
	// PartRoundRobin: a row-local select/project plan whose result is the
	// same multiset under any disjoint split of the stream.
	PartRoundRobin
	// PartHash: a grouped plan that is correct under any split co-locating
	// tuples with equal grouping keys — hashing one grouping column.
	PartHash
	// PartRange: a row-local plan with a sargable predicate. A necessary
	// condition on one stream column restricts the values a matching
	// tuple can carry, so the splitter routes tuples inside the set
	// across the partitions by range (or hash, when the set has no
	// sliceable measure) and prunes tuples outside it to a catch-all
	// partition no clone scans.
	PartRange
)

// String names the verdict.
func (m PartMode) String() string {
	switch m {
	case PartNone:
		return "none"
	case PartRoundRobin:
		return "round-robin"
	case PartHash:
		return "hash"
	case PartRange:
		return "range"
	}
	return "?"
}

// Verdict is the full partitioning verdict of one continuous plan: the
// mode, the routing column (hash and range modes), and — for range mode —
// the per-column necessary-condition sets the sargable analysis derived
// (Ranges[Col] is the set routed on; the other entries let a query group
// find a column every member constrains).
type Verdict struct {
	Mode   PartMode
	Col    string
	Ranges map[string]interval.Set
}

// Set returns the routing column's interval set (range mode).
func (v Verdict) Set() interval.Set { return v.Ranges[v.Col] }

// Prune returns the pruning column and set a hash-routed split should
// apply before cloning tuples into the partitions: when a grouped plan
// also carries sargable ranges, tuples outside the set can match no
// member and divert to the catch-all instead of being scanned by a
// partial-aggregate clone. ok is false when nothing can be pruned.
func (v Verdict) Prune() (col string, set interval.Set, ok bool) {
	if v.Mode != PartHash || len(v.Ranges) == 0 {
		return "", interval.Set{}, false
	}
	col, ok = bestRangeCol(v.Ranges)
	if !ok {
		return "", interval.Set{}, false
	}
	return col, v.Ranges[col], true
}

// Describe renders the verdict for explain output and group info:
// "none", "round-robin", "hash(k)", "range(v)".
func (v Verdict) Describe() string {
	switch v.Mode {
	case PartHash:
		return fmt.Sprintf("hash(%s)", v.Col)
	case PartRange:
		return fmt.Sprintf("range(%s)", v.Col)
	}
	return v.Mode.String()
}

// ClampP bounds a requested partition count by the verdict: a plan that
// must see the whole stream runs at one partition no matter what the
// engine parallelism or the adaptive controller asks for. It is the
// plan-side clamp of the scale-up policy.
func (v Verdict) ClampP(p int) int {
	if v.Mode == PartNone || p < 1 {
		return 1
	}
	return p
}

// CombineVerdicts folds the verdicts of all queries sharing one stream
// split (the shared and partial wirings partition the stream once for
// the whole group) into the group-wide routing verdict:
//
//   - any non-partitionable member pins the group to one partition;
//   - hash members force hash routing on their column (row-local members
//     accept any disjoint split), and two hash members on different
//     columns pin the group;
//   - all-range members route by range on a column every member
//     constrains, with the union of their sets — a tuple outside the
//     union can match no member, so the catch-all stays safe;
//   - otherwise the group falls back to round-robin (an unconstrained
//     row-local member may match any tuple, so nothing can be pruned).
func CombineVerdicts(vs ...Verdict) Verdict {
	allRange := len(vs) > 0
	var hash *Verdict
	for i := range vs {
		switch vs[i].Mode {
		case PartNone:
			return Verdict{Mode: PartNone}
		case PartHash:
			if hash != nil && hash.Col != vs[i].Col {
				return Verdict{Mode: PartNone}
			}
			hash = &vs[i]
			allRange = false
		case PartRoundRobin:
			allRange = false
		}
	}
	if hash != nil {
		out := Verdict{Mode: PartHash, Col: hash.Col}
		// Hash routing can still prune: a tuple outside every member's
		// necessary-condition set matches no member, so the splitter may
		// divert it to the catch-all before any clone aggregates it.
		if u := unionRanges(vs); len(u) > 0 {
			out.Ranges = u
		}
		return out
	}
	if !allRange {
		return Verdict{Mode: PartRoundRobin}
	}
	union := unionRanges(vs)
	col, ok := bestRangeCol(union)
	if !ok {
		return Verdict{Mode: PartRoundRobin}
	}
	return Verdict{Mode: PartRange, Col: col, Ranges: union}
}

// unionRanges intersects the constrained column sets across members,
// unioning the value sets per column: a column survives only when every
// member constrains it (a member with no ranges may match any tuple, so
// nothing is prunable for the group), and the union set is the necessary
// condition of "some member matches".
func unionRanges(vs []Verdict) map[string]interval.Set {
	if len(vs) == 0 {
		return nil
	}
	union := map[string]interval.Set{}
	for col, s := range vs[0].Ranges {
		union[col] = s
	}
	for _, v := range vs[1:] {
		for col, s := range union {
			o, ok := v.Ranges[col]
			if !ok {
				delete(union, col)
				continue
			}
			u := s.Union(o)
			if u.All() {
				delete(union, col)
				continue
			}
			union[col] = u
		}
	}
	return union
}

// Partitionability reports the partitioning verdict a continuous
// statement would receive from Analyze. ok is false when the statement is
// not a shareable single-stream scan at all. Nothing is created.
func Partitionability(cat *Catalog, stmt sql.Statement) (Verdict, bool) {
	streamName, ok := ShareableStream(cat, stmt)
	if !ok {
		return Verdict{Mode: PartNone}, false
	}
	var sel *sql.SelectStmt
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		sel = s
	case *sql.InsertStmt:
		sel = s.Query
	}
	return partitionVerdict(cat, sel, streamName), true
}

// TwoPhase reports whether a continuous statement would execute under
// partitioned wiring as a two-phase plan: per-partition partial
// aggregates (or sorted runs) folded by a combining merge emitter,
// rather than per-partition final results concatenated as they arrive.
// Nothing is created.
func TwoPhase(cat *Catalog, stmt sql.Statement) bool {
	streamName, ok := ShareableStream(cat, stmt)
	if !ok {
		return false
	}
	var sel *sql.SelectStmt
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		sel = s
	case *sql.InsertStmt:
		sel = s.Query
	}
	if partitionVerdict(cat, sel, streamName).Mode == PartNone {
		return false
	}
	return twoPhaseSpec(cat, sel, streamName) != nil
}

// partitionVerdict decides how a single-stream continuous select may be
// partitioned. Predicate-window selects (row-local basket expression and
// row-local outer filters and projections) partition by range when their
// predicate is sargable (the necessary condition prunes non-matching
// tuples to a catch-all) and round-robin otherwise; an outer ORDER BY
// stays partitionable when its two-phase form validates (per-partition
// sort, k-way combining merge). Grouped plans whose first grouping key is
// a plain stream column hash-partition on that column — with a combining
// merge when every aggregate is mergeable, and plain concatenation (which
// hash co-location keeps correct) otherwise, e.g. count(distinct).
// Other mergeable aggregations — expression group keys, global
// aggregates — go round-robin (or range) with a combining merge.
// Everything left — unordered TOP, DISTINCT, UNION, joins, scalar
// sub-queries, session variables, now() — must see the whole stream and
// falls back to one partition.
func partitionVerdict(cat *Catalog, sel *sql.SelectStmt, streamName string) Verdict {
	none := Verdict{Mode: PartNone}
	aggregated, ok := scanShape(cat, sel, streamName)
	if !ok {
		return none
	}
	b := cat.Basket(streamName)
	if b == nil {
		return none
	}
	names, types := b.UserSchema()
	// Sargable analysis over the conjunction of the window predicate and
	// the outer filter: the necessary-condition sets that let a split
	// prune non-matching tuples to the catch-all.
	be := sel.From[0].Basket
	colTypes := make(map[string]vector.Type, len(names))
	for i, n := range names {
		colTypes[n] = types[i]
	}
	sets := andSets(sargableSets(be.Where, colTypes), sargableSets(sel.Where, colTypes))
	for col, s := range sets {
		if s.All() {
			delete(sets, col)
		}
	}
	if !aggregated {
		if len(sel.OrderBy) == 0 && sel.Top >= 0 {
			// An unordered TOP keeps whichever tuples arrive first; any
			// split changes that set.
			return none
		}
		if len(sel.OrderBy) > 0 && twoPhaseSpec(cat, sel, streamName) == nil {
			return none
		}
		if col, ok := bestRangeCol(sets); ok {
			return Verdict{Mode: PartRange, Col: col, Ranges: sets}
		}
		return Verdict{Mode: PartRoundRobin}
	}
	tp := twoPhaseSpec(cat, sel, streamName)
	if tp == nil {
		// No valid two-phase form (non-mergeable aggregate, computed plain
		// item, unordered TOP). Hash co-location still makes per-partition
		// results exact when the full group key routes to one partition:
		// require a plain first grouping key and concatenate.
		if len(sel.OrderBy) > 0 || sel.Top >= 0 || len(sel.GroupBy) == 0 {
			return none
		}
		key, ok := plainStreamCol(sel.GroupBy[0], names)
		if !ok {
			return none
		}
		v := Verdict{Mode: PartHash, Col: key}
		if len(sets) > 0 {
			v.Ranges = sets
		}
		return v
	}
	// Hashing any one grouping column co-locates equal full keys: equal
	// full key implies equal first key implies same partition. That keeps
	// each group's partial state on a single partition, so even AVG
	// combines bit-exactly.
	if tp.nKeys > 0 {
		if key, ok := plainStreamCol(sel.GroupBy[0], names); ok {
			v := Verdict{Mode: PartHash, Col: key}
			if len(sets) > 0 {
				v.Ranges = sets
			}
			return v
		}
	}
	// Expression keys and global aggregates: any disjoint split works —
	// the combining merge re-groups across partitions.
	if col, ok := bestRangeCol(sets); ok {
		return Verdict{Mode: PartRange, Col: col, Ranges: sets}
	}
	return Verdict{Mode: PartRoundRobin}
}

// plainStreamCol reports whether g is a bare (possibly qualified) column
// reference naming a stream column, returning the bare name.
func plainStreamCol(g expr.Expr, names []string) (string, bool) {
	col, ok := g.(*expr.Col)
	if !ok {
		return "", false
	}
	key := col.Name
	if k := strings.LastIndexByte(key, '.'); k >= 0 {
		key = key[k+1:]
	}
	if !slices.Contains(names, key) {
		return "", false
	}
	return key, true
}

// rowLocalExpr reports whether evaluating x over a subset of the stream's
// rows yields the same per-row values as over the whole stream. Scalar
// sub-queries and now() are evaluated per firing (partition clones fire
// independently), and session variables can change between firings, so
// all three disqualify.
func rowLocalExpr(cat *Catalog, x expr.Expr) bool {
	switch n := x.(type) {
	case nil:
		return true
	case *expr.Const:
		return true
	case *expr.Col:
		if _, isVar := cat.Var(n.Name); isVar {
			return false
		}
		return true
	case *expr.Bin:
		return rowLocalExpr(cat, n.L) && rowLocalExpr(cat, n.R)
	case *expr.Not:
		return rowLocalExpr(cat, n.E)
	case *expr.Neg:
		return rowLocalExpr(cat, n.E)
	case *expr.Between:
		return rowLocalExpr(cat, n.E) && rowLocalExpr(cat, n.Lo) && rowLocalExpr(cat, n.Hi)
	case *expr.InList:
		return rowLocalExpr(cat, n.E)
	case *expr.Like:
		return rowLocalExpr(cat, n.E)
	case *expr.Case:
		for _, w := range n.Whens {
			if !rowLocalExpr(cat, w.Cond) || !rowLocalExpr(cat, w.Then) {
				return false
			}
		}
		return rowLocalExpr(cat, n.Else)
	case *expr.Call:
		if n.Name == "now" {
			return false
		}
		for _, a := range n.Args {
			if !rowLocalExpr(cat, a) {
				return false
			}
		}
		return true
	}
	return false // sql.SubqueryExpr and anything unrecognised
}
