package plan

import (
	"strings"
	"testing"

	"datacell/internal/sql"
)

// verdictOf parses one continuous statement and returns its verdict.
func verdictOf(t *testing.T, cat *Catalog, src string) (PartMode, string) {
	t.Helper()
	s, err := sql.ParseOne(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, ok := Partitionability(cat, s)
	if !ok {
		t.Fatalf("%q is not a shareable stream scan", src)
	}
	return v.Mode, v.Col
}

func TestPartitionVerdicts(t *testing.T) {
	h := newHarness(t)
	h.exec(`create basket s (k int, v int); declare limitvar int; set limitvar = 10; create table side (x int)`)

	cases := []struct {
		src  string
		mode PartMode
		col  string
	}{
		// Row-local predicate windows without a sargable predicate:
		// round-robin.
		{`select t.v from [select * from s] t`, PartRoundRobin, ""},
		{`select t.v from [select * from s where v * v < 100] t`, PartRoundRobin, ""},
		{`select t.v from [select * from s where v <> 3] t`, PartRoundRobin, ""},
		// Sargable predicate windows: range routing with pruning.
		{`select t.v from [select * from s where v < 10] t where t.v % 2 = 0`, PartRange, "v"},
		{`select t.k + t.v as kv from [select * from s where v between 2 and 8] t`, PartRange, "v"},
		{`select t.v from [select * from s where v in (1, 5, 9)] t`, PartRange, "v"},
		{`select t.v from [select * from s where v >= 0 and v < 100 or v >= 500 and v < 600] t`, PartRange, "v"},
		// The outer filter narrows the window predicate's column choice:
		// k is bounded, v is not, so routing prefers k.
		{`select t.v from [select * from s where v > 7] t where t.k between 0 and 9`, PartRange, "k"},
		// Grouped plans: hash on the (first) grouping key.
		{`select t.k, count(*) as n from [select * from s] t group by t.k`, PartHash, "k"},
		{`select t.k, t.v, sum(t.v) as sv from [select * from s] t group by t.k, t.v`, PartHash, "k"},
		{`select t.k, avg(t.v) as a from [select * from s where v > 0] t group by t.k having a > 1`, PartHash, "k"},
		// Two-phase plans: partial state per partition, combining merge.
		{`select count(*) as n from [select * from s] t`, PartRoundRobin, ""},                                  // global aggregate
		{`select t.v from [select * from s] t order by t.v`, PartRoundRobin, ""},                               // outer order: partial sort + k-way merge
		{`select t.v from [select * from s where v < 9] t order by t.v`, PartRange, "v"},                       // ordered + sargable: still prunes
		{`select t.k + 1 as k1, sum(t.v) as sv from [select * from s] t group by t.k + 1`, PartRoundRobin, ""}, // computed key: re-group at merge
		// Whole-stream plans: none.
		{`select t.v from [select top 5 * from s] t`, PartNone, ""},                           // tuple-count window
		{`select t.v from [select * from s order by v] t`, PartNone, ""},                      // ordered window
		{`select distinct t.v from [select * from s] t`, PartNone, ""},                        // distinct
		{`select t.v from [select * from s where v < limitvar] t`, PartNone, ""},              // session variable
		{`select top 5 t.v from [select * from s] t`, PartNone, ""},                           // unordered TOP
		{`select t.k, count(*) as n from [select * from s] t group by t.k + 1`, PartNone, ""}, // computed key, plain item ≠ key expr
	}
	for _, tc := range cases {
		mode, col := verdictOf(t, h.cat, tc.src)
		if mode != tc.mode || col != tc.col {
			t.Errorf("verdict of %q = (%s, %q), want (%s, %q)", tc.src, mode, col, tc.mode, tc.col)
		}
	}
}

func TestPartitionVerdictReachesStreamScan(t *testing.T) {
	h := newHarness(t)
	h.exec(`create basket s (k int, v int)`)
	s, err := sql.ParseOne(`select t.k, count(*) as n from [select * from s] t group by t.k`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(h.cat, s, "grouped")
	if err != nil {
		t.Fatal(err)
	}
	if a.Scan == nil {
		t.Fatal("no stream-scan artifact")
	}
	if a.Scan.Part.Mode != PartHash || a.Scan.Part.Col != "k" {
		t.Errorf("StreamScan verdict = (%s, %q), want (hash, k)", a.Scan.Part.Mode, a.Scan.Part.Col)
	}
}

func TestExplainIncludesVerdict(t *testing.T) {
	h := newHarness(t)
	h.exec(`create basket s (k int, v int)`)
	s, err := sql.ParseOne(`select t.v from [select * from s where v % 2 = 0] t`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Explain(h.cat, s, "rr")
	if err != nil {
		t.Fatal(err)
	}
	if want := "partitionable: round-robin"; !strings.Contains(out, want) {
		t.Errorf("explain missing %q:\n%s", want, out)
	}
	s, err = sql.ParseOne(`select t.v from [select * from s where v < 3] t`)
	if err != nil {
		t.Fatal(err)
	}
	out, err = Explain(h.cat, s, "rng")
	if err != nil {
		t.Fatal(err)
	}
	if want := "partitionable: range(v in (-inf,3))"; !strings.Contains(out, want) {
		t.Errorf("explain missing %q:\n%s", want, out)
	}
}
