package plan

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"datacell/internal/expr"
	"datacell/internal/sql"
	"datacell/internal/vector"
)

// The oracle tests compare the vectorized engine against an independent
// row-at-a-time reference evaluator on randomly generated predicates and
// aggregations — the classic differential-testing setup for query engines.

type oracleRow struct {
	a, b int64
	s    string
}

func oracleData(rng *rand.Rand, n int) []oracleRow {
	words := []string{"ant", "bee", "cat", "dog", "elk", "fox"}
	rows := make([]oracleRow, n)
	for i := range rows {
		rows[i] = oracleRow{
			a: rng.Int63n(20),
			b: rng.Int63n(100) - 50,
			s: words[rng.Intn(len(words))],
		}
	}
	return rows
}

// randPred builds a random predicate over columns a, b, s and its
// row-reference evaluator.
func randPred(rng *rand.Rand, depth int) (string, func(oracleRow) bool) {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(6) {
		case 0:
			k := rng.Int63n(20)
			return fmt.Sprintf("a = %d", k), func(r oracleRow) bool { return r.a == k }
		case 1:
			k := rng.Int63n(100) - 50
			return fmt.Sprintf("b < %d", k), func(r oracleRow) bool { return r.b < k }
		case 2:
			lo := rng.Int63n(15)
			hi := lo + rng.Int63n(10)
			return fmt.Sprintf("a between %d and %d", lo, hi),
				func(r oracleRow) bool { return r.a >= lo && r.a <= hi }
		case 3:
			return "s in ('ant', 'cat', 'elk')",
				func(r oracleRow) bool { return r.s == "ant" || r.s == "cat" || r.s == "elk" }
		case 4:
			return "s like '_o%'",
				func(r oracleRow) bool { return len(r.s) >= 2 && r.s[1] == 'o' }
		default:
			k := rng.Int63n(40)
			return fmt.Sprintf("a + b > %d", k), func(r oracleRow) bool { return r.a+r.b > k }
		}
	}
	l, lf := randPred(rng, depth-1)
	r, rf := randPred(rng, depth-1)
	switch rng.Intn(3) {
	case 0:
		return "(" + l + " and " + r + ")", func(x oracleRow) bool { return lf(x) && rf(x) }
	case 1:
		return "(" + l + " or " + r + ")", func(x oracleRow) bool { return lf(x) || rf(x) }
	default:
		return "not (" + l + ")", func(x oracleRow) bool { return !lf(x) }
	}
}

func loadOracleTable(t *testing.T, h *harness, rows []oracleRow) {
	t.Helper()
	h.exec("create table tt (a int, b int, s string)")
	tt := h.cat.Basket("tt")
	for _, r := range rows {
		if err := tt.AppendRow(vector.NewInt(r.a), vector.NewInt(r.b), vector.NewStr(r.s)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOracleRandomPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	h := newHarness(t)
	rows := oracleData(rng, 500)
	loadOracleTable(t, h, rows)

	for trial := 0; trial < 60; trial++ {
		predSQL, predGo := randPred(rng, 3)
		q := fmt.Sprintf("select a, b from tt where %s", predSQL)
		c := h.exec(q)
		if c.Result == nil {
			t.Fatalf("no result for %s", q)
		}
		var want [][2]int64
		for _, r := range rows {
			if predGo(r) {
				want = append(want, [2]int64{r.a, r.b})
			}
		}
		got := make([][2]int64, c.Result.Len())
		for i := range got {
			got[i] = [2]int64{c.Result.Col(0).Ints()[i], c.Result.Col(1).Ints()[i]}
		}
		if len(got) != len(want) {
			t.Fatalf("query %q: %d rows, oracle %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %q row %d: %v vs oracle %v", q, i, got[i], want[i])
			}
		}
	}
}

func TestOracleRandomAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := newHarness(t)
	rows := oracleData(rng, 400)
	loadOracleTable(t, h, rows)

	for trial := 0; trial < 20; trial++ {
		predSQL, predGo := randPred(rng, 2)
		q := fmt.Sprintf(`select a, count(*) as n, sum(b) as sb, min(b) as mn, max(b) as mx
			from tt where %s group by a order by a`, predSQL)
		c := h.exec(q)

		type agg struct{ n, sb, mn, mx int64 }
		oracle := map[int64]*agg{}
		for _, r := range rows {
			if !predGo(r) {
				continue
			}
			g := oracle[r.a]
			if g == nil {
				g = &agg{mn: r.b, mx: r.b}
				oracle[r.a] = g
			}
			g.n++
			g.sb += r.b
			if r.b < g.mn {
				g.mn = r.b
			}
			if r.b > g.mx {
				g.mx = r.b
			}
		}
		var keys []int64
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		if c.Result.Len() != len(keys) {
			t.Fatalf("query %q: %d groups, oracle %d", q, c.Result.Len(), len(keys))
		}
		for i, k := range keys {
			g := oracle[k]
			if c.Result.Col(0).Ints()[i] != k ||
				c.Result.Col(1).Ints()[i] != g.n ||
				c.Result.Col(2).Ints()[i] != g.sb ||
				c.Result.Col(3).Ints()[i] != g.mn ||
				c.Result.Col(4).Ints()[i] != g.mx {
				t.Fatalf("query %q group %d mismatch", q, k)
			}
		}
	}
}

// TestOracleStreamingEqualsBatch verifies the defining property of the
// DataCell: a continuous query over a stream produces, across all firings,
// exactly what the same one-time query would produce over the whole data.
func TestOracleStreamingEqualsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rows := oracleData(rng, 300)

	for trial := 0; trial < 15; trial++ {
		predSQL, _ := randPred(rng, 2)

		// Batch: one-time query over a table with everything.
		hb := newHarness(t)
		loadOracleTable(t, hb, rows)
		batch := hb.exec(fmt.Sprintf("select a, b from tt where %s", predSQL))

		// Streaming: the same predicate as a continuous query, fed in
		// random-sized chunks.
		hs := newHarness(t)
		hs.exec("create basket st (a int, b int, s string)")
		c := hs.exec(fmt.Sprintf(
			"select t.a, t.b from [select * from st] t where %s",
			qualify(predSQL)))
		st := hs.cat.Basket("st")
		i := 0
		for i < len(rows) {
			n := 1 + rng.Intn(50)
			for k := 0; k < n && i < len(rows); k++ {
				st.AppendRow(vector.NewInt(rows[i].a), vector.NewInt(rows[i].b), vector.NewStr(rows[i].s))
				i++
			}
			hs.run()
		}
		streamed := c.Out.TakeAll()
		if streamed.Len() != batch.Result.Len() {
			t.Fatalf("pred %q: streaming %d rows, batch %d", predSQL, streamed.Len(), batch.Result.Len())
		}
		if !reflect.DeepEqual(streamed.Col(0).Ints(), batch.Result.Col(0).Ints()) ||
			!reflect.DeepEqual(streamed.Col(1).Ints(), batch.Result.Col(1).Ints()) {
			t.Fatalf("pred %q: streaming and batch results differ", predSQL)
		}
	}
}

// qualify rewrites bare column names a, b, s to t.a, t.b, t.s by parsing
// and re-rendering the predicate with qualified column refs.
func qualify(pred string) string {
	stmt, err := sql.ParseOne("select * from x where " + pred)
	if err != nil {
		panic(err)
	}
	var rw func(e expr.Expr) expr.Expr
	rw = func(e expr.Expr) expr.Expr {
		switch n := e.(type) {
		case *expr.Col:
			return expr.NewCol("t." + n.Name)
		case *expr.Bin:
			return expr.NewBin(n.Op, rw(n.L), rw(n.R))
		case *expr.Not:
			return expr.NewNot(rw(n.E))
		case *expr.Neg:
			return expr.NewNeg(rw(n.E))
		case *expr.Between:
			return expr.NewBetween(rw(n.E), rw(n.Lo), rw(n.Hi), n.Negate)
		case *expr.InList:
			return expr.NewInList(rw(n.E), n.Vals, n.Negate)
		case *expr.Like:
			return expr.NewLike(rw(n.E), n.Pattern, n.Negate)
		}
		return e
	}
	return rw(stmt.(*sql.SelectStmt).Where).String()
}
