package plan

import (
	"fmt"
	"strings"

	"datacell/internal/basket"
	"datacell/internal/core"
	"datacell/internal/sql"
)

// Analysis is the result of the first compilation phase of a continuous
// select (or insert … select). It captures everything the wiring phase
// needs — the output basket, the consumed inputs with their firing
// thresholds, and the read-only side baskets — without committing to a
// factory topology. Wire builds the classic standalone factory; when the
// statement consumes exactly one stream, Scan additionally exposes the
// query as a reusable StreamScan artifact that the engine's query groups
// can wire under any of the paper's multi-query sharing strategies.
type Analysis struct {
	Name       string
	Out        *basket.Basket
	Inputs     []*basket.Basket
	Thresholds []int
	LockOnly   []*basket.Basket
	// Scan is non-nil when the statement is shareable: a continuous query
	// whose basket expressions consume exactly one stream.
	Scan *StreamScan

	cat  *Catalog
	sel  *sql.SelectStmt
	cols []string
}

// StreamScan is the reusable basket-expression artifact of one analyzed
// continuous query: the single stream it consumes and a Run body that
// executes the full plan once over an arbitrary basket holding that
// stream's tuples. The physical baskets are substituted per firing, so the
// same compiled query runs unchanged over a private replica
// (separate-baskets), the shared stream basket (shared-baskets), a chain
// basket (partial-deletes) — and, partitioned, over any partition of the
// stream with results staged into a per-partition basket.
type StreamScan struct {
	Query     string
	Stream    string         // catalog name of the consumed stream
	In        *basket.Basket // the catalog stream basket itself
	Out       *basket.Basket
	LockOnly  []*basket.Basket
	Threshold int
	// Part is the plan's partitionability verdict: range for row-local
	// predicate-window selects with a sargable predicate (Part.Col names
	// the routing column, Part.Ranges the per-column necessary-condition
	// sets — tuples outside Part.Set() prune to the catch-all),
	// round-robin for other row-local selects (any disjoint split of the
	// stream yields the same results), hash for grouped plans (Part.Col
	// names the stream column whose equal values must co-locate), none
	// when the plan must see the whole stream and stays at one partition.
	Part Verdict
	// Combine, when non-nil, is the two-phase decomposition the kernel
	// wires under partitioned execution: clones run Combine.Partial
	// (staging mergeable partial-aggregate state) and a combining merge
	// emitter folds the staged partials into final results. Run remains
	// the single-partition body; unpartitioned wirings ignore Combine.
	Combine *core.Combine
	// Run executes the query once with `in` substituted for the stream,
	// appending results to `out` (the query's result basket, or a
	// partition staging basket with the same schema). With report == nil
	// the query consumes (deletes) the tuples its basket expression covers
	// from `in`; with report non-nil it leaves `in` untouched and reports
	// the covered positions instead. Caller holds the locks of in, out and
	// LockOnly.
	Run func(in, out *basket.Basket, report func(covered []int32)) error
}

// StreamQuery adapts the artifact to the kernel's generalized multi-query
// strategy wirings.
func (s *StreamScan) StreamQuery() core.StreamQuery {
	return core.StreamQuery{
		Name:      s.Query,
		Threshold: s.Threshold,
		Out:       s.Out,
		LockOnly:  s.LockOnly,
		Fire:      s.Run,
		Combine:   s.Combine,
	}
}

// Analyze runs the first compilation phase of a continuous statement. It
// creates the output basket (like Compile would) but registers nothing
// with a scheduler; call Wire for the standalone factory, or hand
// Analysis.Scan to a strategy wiring. Statements other than continuous
// selects and insert…selects (with-blocks, DDL) are not analyzable.
func Analyze(cat *Catalog, stmt sql.Statement, name string) (*Analysis, error) {
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		if !s.IsContinuous() {
			return nil, fmt.Errorf("plan: %s: not a continuous query", name)
		}
		return analyzeSelect(cat, s, name, "", nil)
	case *sql.InsertStmt:
		if !s.Query.IsContinuous() {
			return nil, fmt.Errorf("plan: %s: not a continuous query", name)
		}
		return analyzeSelect(cat, s.Query, name, s.Target, s.Cols)
	}
	return nil, fmt.Errorf("plan: cannot analyze %T as a continuous query", stmt)
}

// analyzeSelect is the analysis phase of continuous-select compilation:
// type-check via prototype execution, create the target, and derive the
// firing structure. An empty target name auto-creates "<name>_out".
func analyzeSelect(cat *Catalog, s *sql.SelectStmt, name, target string, cols []string) (*Analysis, error) {
	proto, err := protoEnv(cat).execSelect(s)
	if err != nil {
		return nil, fmt.Errorf("plan: %s: %w", name, err)
	}
	if target == "" {
		target = strings.ToLower(name) + "_out"
	}
	out, err := ensureTarget(cat, target, cols, proto)
	if err != nil {
		return nil, err
	}
	inputs, thresholds := consumedInputs(cat, s)
	if len(inputs) == 0 {
		return nil, fmt.Errorf("plan: %s: continuous query consumes no baskets", name)
	}
	a := &Analysis{
		Name:       name,
		Out:        out,
		Inputs:     inputs,
		Thresholds: thresholds,
		LockOnly:   lockOnlyBaskets(cat, s, inputs),
		cat:        cat,
		sel:        s,
		cols:       cols,
	}
	if len(inputs) == 1 {
		a.Scan = a.newStreamScan()
	}
	return a, nil
}

// newStreamScan builds the shareable artifact of a single-stream analysis.
func (a *Analysis) newStreamScan() *StreamScan {
	stream := a.Inputs[0]
	cat, sel, cols := a.cat, a.sel, a.cols
	streamName := stream.Name()
	// Side baskets are computed against an empty input set: a direct
	// (non-consuming) scan of the stream itself must be locked too when
	// the factory's firing input is a substituted basket.
	lockOnly := lockOnlyBaskets(cat, sel, nil)
	ss := &StreamScan{
		Query:     a.Name,
		Stream:    streamName,
		In:        stream,
		Out:       a.Out,
		LockOnly:  lockOnly,
		Threshold: a.Thresholds[0],
		Part:      partitionVerdict(cat, sel, streamName),
		Run: func(in, out *basket.Basket, report func(covered []int32)) error {
			e := newEnv(cat)
			e.redirectFrom, e.redirectTo = streamName, in
			e.arena = getArena()
			defer putArena(e.arena)
			if report != nil {
				e.onCovered = func(b *basket.Basket, covered []int32) bool {
					if b != in {
						return false
					}
					report(covered)
					return true
				}
			}
			rel, err := e.execSelect(sel)
			if err != nil {
				return err
			}
			if rel.Len() == 0 {
				return nil
			}
			rel, err = conformToTarget(rel, out, cols)
			if err != nil {
				return err
			}
			_, err = out.AppendLocked(rel)
			return err
		},
	}
	// An aggregating or ordering plan that partitions does so via its
	// two-phase form: attach the compiled Combine so the strategy wirings
	// stage partial states and fold them with a combining merge. (A hash
	// verdict without a valid two-phase form — count(distinct) — keeps
	// the concatenating merge, which co-location makes exact.)
	if ss.Part.Mode != PartNone {
		if tp := twoPhaseSpec(cat, sel, streamName); tp != nil {
			ss.Combine = buildCombine(cat, sel, streamName, tp, cols)
		}
	}
	return ss
}

// Wire is the second compilation phase: it builds the classic standalone
// factory that fires on the analysis' inputs directly and consumes its
// basket expressions in place.
func (a *Analysis) Wire() (*Compiled, error) {
	outputs := append([]*basket.Basket{a.Out}, a.LockOnly...)
	cat, sel, out, cols := a.cat, a.sel, a.Out, a.cols
	lastGens := newGenTracker(a.Inputs)
	f, err := core.NewFactory(a.Name, a.Inputs, outputs, func(ctx *core.Context) error {
		lastGens.update()
		e := newEnv(cat)
		e.arena = getArena()
		defer putArena(e.arena)
		rel, err := e.execSelect(sel)
		if err != nil {
			return err
		}
		if rel.Len() == 0 {
			return nil
		}
		rel, err = conformToTarget(rel, out, cols)
		if err != nil {
			return err
		}
		_, err = out.AppendLocked(rel)
		return err
	})
	if err != nil {
		return nil, err
	}
	// Fire only on new arrivals: a predicate window can leave residual
	// tuples in its inputs, which must not retrigger the query until the
	// stream moves (otherwise the factory spins on an unchanged basket).
	f.SetGuard(func(*core.Context) bool { return lastGens.changed() })
	for i, th := range a.Thresholds {
		if th > 1 {
			f.SetThreshold(i, th)
		}
	}
	return &Compiled{Name: a.Name, Factory: f, Out: a.Out}, nil
}

// ShareableStream reports the single stream a continuous statement
// consumes, when the statement is eligible for the multi-query sharing
// strategies (exactly one consumed stream basket). It performs the same
// analysis as Analyze without creating anything.
func ShareableStream(cat *Catalog, stmt sql.Statement) (string, bool) {
	var sel *sql.SelectStmt
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		sel = s
	case *sql.InsertStmt:
		sel = s.Query
	default:
		return "", false
	}
	if !sel.IsContinuous() {
		return "", false
	}
	inputs, _ := consumedInputs(cat, sel)
	if len(inputs) != 1 {
		return "", false
	}
	return inputs[0].Name(), true
}
