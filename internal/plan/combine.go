package plan

import (
	"fmt"
	"strings"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/core"
	"datacell/internal/expr"
	"datacell/internal/relop"
	"datacell/internal/sql"
	"datacell/internal/vector"
)

// This file implements the planning side of two-phase partitioned
// aggregation: splitting an aggregating (or ordering) stream query into a
// per-partition partial plan plus a combining merge, the classic
// partial-aggregate/final-merge decomposition applied to DataCell's
// factory graph. twoPhaseSpec decides eligibility and derives the partial
// AST; buildCombine compiles the spec into the kernel's core.Combine
// artifact (Partial body + Merge fold).

// combineItem describes how one output item of a two-phase aggregated
// query is reconstructed from the partial-state columns at merge time.
type combineItem struct {
	isAgg bool
	agg   relop.AggKind // original aggregate kind (merge applies agg.MergeKind())
	avg   bool          // decomposed AVG: col holds AggAvgSum, cnt holds AggCount
	col   int           // partial-schema column index of the value (agg) or group key (plain)
	cnt   int           // partial-schema column index of the AVG count column
}

// twoPhase is the compiled decomposition spec of one stream query:
// the partial AST the clones execute, the partial-state schema (from
// prototype execution), and the recipe the merge applies.
type twoPhase struct {
	partial    *sql.SelectStmt
	aggregated bool
	nKeys      int           // leading group-key columns of the partial schema
	items      []combineItem // aggregated shape: one per sel.Items entry
	names      []string      // partial-state schema
	types      []vector.Type
	nOrder     int // ordered shape: trailing order-key columns of the partial schema
}

// scanShape reports whether a single-stream continuous select has the
// basic partitionable scan shape — a plain predicate window over the
// stream with row-local filters, projections, aggregate arguments and
// grouping keys — and whether it aggregates. It deliberately does not
// look at ORDER BY or TOP on the outer query: those decide between the
// concatenating and the two-phase merge, not partitionability itself.
func scanShape(cat *Catalog, sel *sql.SelectStmt, streamName string) (aggregated, ok bool) {
	if sel.Union != nil || sel.Distinct || len(sel.From) != 1 {
		return false, false
	}
	be := sel.From[0].Basket
	if be == nil {
		return false, false
	}
	if len(be.From) != 1 || be.From[0].Name == "" || !strings.EqualFold(be.From[0].Name, streamName) {
		return false, false
	}
	if be.Union != nil || be.Distinct || len(be.OrderBy) > 0 || be.Top >= 0 ||
		len(be.GroupBy) > 0 || be.Having != nil {
		return false, false
	}
	if len(be.Items) != 1 || !be.Items[0].Star {
		return false, false
	}
	rowLocal := func(x expr.Expr) bool { return rowLocalExpr(cat, x) }
	if !rowLocal(be.Where) || !rowLocal(sel.Where) || !rowLocal(sel.Having) {
		return false, false
	}
	aggregated = len(sel.GroupBy) > 0
	for _, it := range sel.Items {
		if it.Agg != nil {
			aggregated = true
			if !rowLocal(it.Agg.Arg) {
				return false, false
			}
			continue
		}
		if !it.Star && !rowLocal(it.Expr) {
			return false, false
		}
	}
	for _, g := range sel.GroupBy {
		if !rowLocal(g) {
			return false, false
		}
	}
	return aggregated, true
}

// twoPhaseSpec derives the partial/combine decomposition of a
// single-stream continuous select, or nil when the query has no valid
// two-phase form (in which case an aggregating plan may still partition
// under the legacy hash-co-location rule, and anything else pins to one
// partition). Two shapes exist:
//
//   - aggregated: every aggregate is mergeable and non-distinct, every
//     plain item repeats a grouping expression. The partial computes the
//     same grouping with decomposed aggregates (AVG becomes
//     AggAvgSum+AggCount); the merge re-groups the staged partials by the
//     key columns, folds each aggregate with its merge kind, then applies
//     HAVING, ORDER BY and TOP on the combined result.
//
//   - ordered (non-aggregated, ORDER BY present): the partial runs the
//     full row-local plan per partition, carries the order keys as extra
//     trailing columns and pre-truncates to TOP n; the merge k-way-merges
//     the staged sorted runs, re-truncates, and drops the carried keys.
//
// The partial AST is prototype-executed for validation: any shape the
// executor rejects (e.g. an order key naming a select alias the partial
// cannot carry) disqualifies the decomposition rather than failing at
// wiring time.
func twoPhaseSpec(cat *Catalog, sel *sql.SelectStmt, streamName string) *twoPhase {
	aggregated, ok := scanShape(cat, sel, streamName)
	if !ok {
		return nil
	}
	tp := &twoPhase{aggregated: aggregated}
	if aggregated {
		// TOP over an unordered grouped result picks whichever groups the
		// executor saw first — under partitioning that depends on the
		// split, so only an ordered TOP has a deterministic two-phase form.
		if sel.Top >= 0 && len(sel.OrderBy) == 0 {
			return nil
		}
		partial := &sql.SelectStmt{
			Top:     -1,
			From:    sel.From,
			Where:   sel.Where,
			GroupBy: sel.GroupBy,
		}
		for i, g := range sel.GroupBy {
			partial.Items = append(partial.Items, sql.SelectItem{Expr: g, Alias: fmt.Sprintf("__k%d", i)})
		}
		tp.nKeys = len(sel.GroupBy)
		tp.items = make([]combineItem, len(sel.Items))
		aggCol := tp.nKeys
		for i, it := range sel.Items {
			if it.Agg != nil {
				if it.Agg.Distinct || !it.Agg.Kind.Mergeable() {
					return nil
				}
				ci := combineItem{isAgg: true, agg: it.Agg.Kind, col: aggCol}
				if it.Agg.Kind == relop.AggAvg {
					ci.avg = true
					ci.cnt = aggCol + 1
					partial.Items = append(partial.Items,
						sql.SelectItem{Agg: &sql.AggSpec{Kind: relop.AggAvgSum, Star: it.Agg.Star, Arg: it.Agg.Arg}, Alias: fmt.Sprintf("__a%d", i)},
						sql.SelectItem{Agg: &sql.AggSpec{Kind: relop.AggCount, Star: true}, Alias: fmt.Sprintf("__a%d_c", i)})
					aggCol += 2
				} else {
					partial.Items = append(partial.Items,
						sql.SelectItem{Agg: &sql.AggSpec{Kind: it.Agg.Kind, Star: it.Agg.Star, Arg: it.Agg.Arg}, Alias: fmt.Sprintf("__a%d", i)})
					aggCol++
				}
				tp.items[i] = ci
				continue
			}
			if it.Star {
				return nil
			}
			ki := -1
			for k, g := range sel.GroupBy {
				if g.String() == it.Expr.String() {
					ki = k
					break
				}
			}
			if ki < 0 {
				return nil
			}
			tp.items[i] = combineItem{col: ki}
		}
		tp.partial = partial
	} else {
		if len(sel.OrderBy) == 0 {
			return nil
		}
		// Per-partition order keys are evaluated by every clone, so they
		// must be row-local like any projection.
		for _, oi := range sel.OrderBy {
			if !rowLocalExpr(cat, oi.Expr) {
				return nil
			}
		}
		partial := &sql.SelectStmt{
			Top:     sel.Top,
			From:    sel.From,
			Where:   sel.Where,
			OrderBy: sel.OrderBy,
		}
		partial.Items = append(partial.Items, sel.Items...)
		for i, oi := range sel.OrderBy {
			partial.Items = append(partial.Items, sql.SelectItem{Expr: oi.Expr, Alias: fmt.Sprintf("__o%d", i)})
		}
		tp.nOrder = len(sel.OrderBy)
		tp.partial = partial
	}
	proto, err := protoEnv(cat).execSelect(tp.partial)
	if err != nil {
		return nil
	}
	tp.names = proto.Names()
	tp.types = proto.Types()
	return tp
}

// buildCombine compiles a twoPhase spec into the kernel artifact. The
// Partial body mirrors StreamScan.Run (redirected, arena-backed, covered
// positions reported or consumed) but executes the partial AST and stages
// the partial-state relation without conforming it to the result schema.
// The Merge fold runs once per round, so its allocations are off the hot
// path by construction.
func buildCombine(cat *Catalog, sel *sql.SelectStmt, streamName string, tp *twoPhase, cols []string) *core.Combine {
	partialAST := tp.partial
	c := &core.Combine{
		Names: tp.names,
		Types: tp.types,
		Partial: func(in, out *basket.Basket, report func(covered []int32)) error {
			e := newEnv(cat)
			e.redirectFrom, e.redirectTo = streamName, in
			e.arena = getArena()
			defer putArena(e.arena)
			if report != nil {
				e.onCovered = func(b *basket.Basket, covered []int32) bool {
					if b != in {
						return false
					}
					report(covered)
					return true
				}
			}
			rel, err := e.execSelect(partialAST)
			if err != nil {
				return err
			}
			if rel.Len() == 0 {
				return nil
			}
			_, err = out.AppendLocked(rel)
			return err
		},
	}
	if tp.aggregated {
		c.Merge = func(parts []*bat.Relation, out *basket.Basket) (*bat.Relation, error) {
			combined, _, err := concatParts(parts, tp)
			if err != nil {
				return nil, err
			}
			return mergeAggregated(cat, sel, tp, combined, out, cols)
		}
	} else {
		c.Merge = func(parts []*bat.Relation, out *basket.Basket) (*bat.Relation, error) {
			combined, bounds, err := concatParts(parts, tp)
			if err != nil {
				return nil, err
			}
			return mergeOrdered(sel, tp, combined, bounds, out, cols)
		}
	}
	return c
}

// concatParts concatenates the staged per-partition partial relations
// into one relation with the partial-state schema, returning run bounds
// (k+1 ascending offsets over the non-empty parts) for the k-way merge.
// Staged relations carry the baskets' hidden timestamp column, so the
// columns are assembled by name, never by position.
func concatParts(parts []*bat.Relation, tp *twoPhase) (*bat.Relation, []int32, error) {
	cols := make([]*vector.Vector, len(tp.names))
	for j := range cols {
		cols[j] = vector.New(tp.types[j], 0)
	}
	bounds := []int32{0}
	for _, part := range parts {
		if part == nil || part.Len() == 0 {
			continue
		}
		for j, name := range tp.names {
			src := part.ColByName(name)
			if src == nil {
				return nil, nil, fmt.Errorf("plan: staged partial lacks column %q", name)
			}
			cols[j].AppendVector(src)
		}
		bounds = append(bounds, int32(cols[0].Len()))
	}
	return bat.NewRelation(tp.names, cols), bounds, nil
}

// mergeAggregated folds concatenated partial-aggregate states into final
// result rows: re-group by the leading key columns, apply each item's
// merge recipe, then the deferred HAVING / ORDER BY / TOP tail exactly as
// the unpartitioned plan applies it to its single-pass result.
func mergeAggregated(cat *Catalog, sel *sql.SelectStmt, tp *twoPhase, combined *bat.Relation, out *basket.Basket, cols []string) (*bat.Relation, error) {
	keys := make([]*vector.Vector, tp.nKeys)
	for i := range keys {
		keys[i] = combined.Col(i)
	}
	g := relop.GroupBy(keys, combined.Len())
	names := make([]string, len(sel.Items))
	outCols := make([]*vector.Vector, len(sel.Items))
	for i, it := range sel.Items {
		ci := tp.items[i]
		names[i] = it.ItemName(i)
		switch {
		case ci.avg:
			sums := relop.Aggregate(relop.AggSum, combined.Col(ci.col), g)
			counts := relop.Aggregate(relop.AggSum, combined.Col(ci.cnt), g)
			outCols[i] = relop.CombineAvg(sums, counts)
		case ci.isAgg:
			outCols[i] = relop.Aggregate(ci.agg.MergeKind(), combined.Col(ci.col), g)
		default:
			outCols[i] = combined.Col(ci.col).Gather(g.Repr)
		}
	}
	result := bat.NewRelation(names, outCols)
	e := newEnv(cat)
	if sel.Having != nil {
		hsel, err := e.evalPred(sel.Having, result, nil)
		if err != nil {
			return nil, err
		}
		result = result.Gather(hsel)
	}
	if len(sel.OrderBy) > 0 {
		sortKeys := make([]relop.SortKey, len(sel.OrderBy))
		for i, oi := range sel.OrderBy {
			v, err := e.evalExpr(oi.Expr, result)
			if err != nil {
				return nil, err
			}
			sortKeys[i] = relop.SortKey{Col: v, Desc: oi.Desc}
		}
		result = result.Gather(relop.Sort(sortKeys, result.Len()))
	}
	if sel.Top >= 0 && sel.Top < result.Len() {
		result = result.Gather(relop.CandAll(sel.Top))
	}
	return conformToTarget(result, out, cols)
}

// mergeOrdered folds concatenated ordered partials: each staged part is
// one run already sorted by the carried trailing order-key columns, so a
// k-way merge of the runs reproduces the global order (falling back to a
// full sort if a part arrived unsorted), TOP re-truncates the merged
// permutation, and the carried key columns are dropped.
func mergeOrdered(sel *sql.SelectStmt, tp *twoPhase, combined *bat.Relation, bounds []int32, out *basket.Basket, cols []string) (*bat.Relation, error) {
	base := len(tp.names) - tp.nOrder
	keys := make([]relop.SortKey, tp.nOrder)
	for i := range keys {
		keys[i] = relop.SortKey{Col: combined.Col(base + i), Desc: sel.OrderBy[i].Desc}
	}
	sorted := true
	for r := 0; r+1 < len(bounds); r++ {
		if !relop.IsSortedBy(keys, int(bounds[r]), int(bounds[r+1])) {
			sorted = false
			break
		}
	}
	var perm []int32
	if sorted {
		perm = relop.MergeRuns(nil, keys, bounds)
	} else {
		perm = relop.SortInto(nil, keys, combined.Len())
	}
	if sel.Top >= 0 {
		perm = relop.TopN(perm, sel.Top)
	}
	merged := combined.Gather(perm)
	outCols := make([]*vector.Vector, base)
	for i := range outCols {
		outCols[i] = merged.Col(i)
	}
	result := bat.NewRelation(tp.names[:base], outCols)
	return conformToTarget(result, out, cols)
}
