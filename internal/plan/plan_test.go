package plan

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"datacell/internal/core"
	"datacell/internal/sql"
	"datacell/internal/vector"
)

// harness bundles a catalog and scheduler and provides SQL conveniences.
type harness struct {
	t   *testing.T
	cat *Catalog
	sch *core.Scheduler
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	return &harness{t: t, cat: NewCatalog(), sch: core.NewScheduler()}
}

func (h *harness) exec(src string) *Compiled {
	h.t.Helper()
	stmts, err := sql.Parse(src)
	if err != nil {
		h.t.Fatalf("parse %q: %v", src, err)
	}
	var last *Compiled
	for i, s := range stmts {
		c, err := Compile(h.cat, s, h.t.Name()+"_q"+string(rune('a'+i)))
		if err != nil {
			h.t.Fatalf("compile %q: %v", src, err)
		}
		if c.Factory != nil {
			if err := h.sch.Register(c.Factory); err != nil {
				h.t.Fatal(err)
			}
		}
		last = c
	}
	return last
}

func (h *harness) feed(basketName string, rows ...[]vector.Value) {
	h.t.Helper()
	b := h.cat.Basket(basketName)
	if b == nil {
		h.t.Fatalf("no basket %q", basketName)
	}
	for _, r := range rows {
		if err := b.AppendRow(r...); err != nil {
			h.t.Fatal(err)
		}
	}
}

func (h *harness) run() {
	h.t.Helper()
	if _, err := h.sch.RunUntilQuiescent(10_000); err != nil {
		h.t.Fatal(err)
	}
}

func ints(vs ...int64) []vector.Value {
	out := make([]vector.Value, len(vs))
	for i, v := range vs {
		out[i] = vector.NewInt(v)
	}
	return out
}

func TestPaperQ1FullStream(t *testing.T) {
	h := newHarness(t)
	h.exec("create basket r (a int, b int)")
	c := h.exec("select * from [select * from R] as S where S.a > 10")
	h.feed("r", ints(5, 1), ints(15, 2), ints(25, 3))
	h.run()
	out := c.Out.TakeAll()
	if out.Len() != 2 {
		t.Fatalf("results = %d", out.Len())
	}
	if !reflect.DeepEqual(out.Col(0).Ints(), []int64{15, 25}) {
		t.Errorf("a values: %v", out.Col(0).Ints())
	}
	// q1's basket expression covers all tuples: the stream basket drains.
	if h.cat.Basket("r").Len() != 0 {
		t.Errorf("residue: %d", h.cat.Basket("r").Len())
	}
}

func TestPaperQ2PredicateWindow(t *testing.T) {
	h := newHarness(t)
	h.exec("create basket r (a int, b int)")
	c := h.exec("select * from [select * from R where R.b<10] as S where S.a > 10")
	h.feed("r", ints(15, 5), ints(20, 50), ints(5, 3))
	h.run()
	out := c.Out.TakeAll()
	if out.Len() != 1 || out.Col(0).Ints()[0] != 15 {
		t.Fatalf("results: %v", out)
	}
	// Only tuples inside the predicate window (b<10) were removed; the
	// tuple with b=50 stays for other queries.
	snap := h.cat.Basket("r").Snapshot()
	if snap.Len() != 1 || snap.Col(1).Ints()[0] != 50 {
		t.Errorf("residue: %v", snap)
	}
}

func TestOutliersTopNWindow(t *testing.T) {
	h := newHarness(t)
	h.exec("create basket x (tag int, payload int)")
	h.exec("create basket outliers (tag int, payload int)")
	c := h.exec(`insert into outliers
		select b.tag, b.payload
		from [select top 3 from X order by tag] as b
		where b.payload > 100`)
	// Threshold: factory must not fire until 3 tuples are present.
	h.feed("x", ints(2, 300), ints(1, 50))
	h.run()
	if got := h.cat.Basket("outliers").Len(); got != 0 {
		t.Fatalf("fired below window size: %d results", got)
	}
	h.feed("x", ints(3, 200), ints(4, 999))
	h.run()
	out := c.Out.TakeAll()
	// Window = 3 lowest tags {1,2,3}; payload>100 keeps tags 2 and 3.
	if out.Len() != 2 {
		t.Fatalf("outliers = %d", out.Len())
	}
	if !reflect.DeepEqual(out.Col(0).Ints(), []int64{2, 3}) {
		t.Errorf("tags: %v", out.Col(0).Ints())
	}
	// Tag 4 remains: outside the fixed window of 3.
	snap := h.cat.Basket("x").Snapshot()
	if snap.Len() != 1 || snap.Col(0).Ints()[0] != 4 {
		t.Errorf("residue: %v", snap)
	}
}

func TestSplitWithBlock(t *testing.T) {
	h := newHarness(t)
	h.exec("create basket x (tag int, payload int)")
	h.exec(`with A as [select * from X]
		begin
			insert into Y select * from A where A.payload>100;
			insert into Z select * from A where A.payload<=200;
		end`)
	h.feed("x", ints(1, 50), ints(2, 150), ints(3, 250))
	h.run()
	y, z := h.cat.Basket("y"), h.cat.Basket("z")
	if y == nil || z == nil {
		t.Fatal("targets not auto-created")
	}
	if y.Len() != 2 { // 150, 250
		t.Errorf("y = %d", y.Len())
	}
	if z.Len() != 2 { // 50, 150 (partial replication overlaps)
		t.Errorf("z = %d", z.Len())
	}
}

func TestMergeJoinBasketExpression(t *testing.T) {
	h := newHarness(t)
	h.exec("create basket x (id int, v int)")
	h.exec("create basket y (id int, w int)")
	c := h.exec("select A.* from [select * from X,Y where X.id=Y.id] as A")
	h.feed("x", ints(1, 10), ints(2, 20))
	h.feed("y", ints(2, 200), ints(3, 300))
	h.run()
	out := c.Out.TakeAll()
	if out.Len() != 1 {
		t.Fatalf("join results = %d: %v", out.Len(), out)
	}
	// Matched tuples were removed from both baskets; non-matched remain
	// for delayed arrivals.
	if h.cat.Basket("x").Len() != 1 || h.cat.Basket("y").Len() != 1 {
		t.Errorf("residues: x=%d y=%d", h.cat.Basket("x").Len(), h.cat.Basket("y").Len())
	}
	// The delayed arrival now matches.
	h.feed("y", ints(1, 100))
	h.run()
	out = c.Out.TakeAll()
	if out.Len() != 1 {
		t.Fatalf("delayed join results = %d", out.Len())
	}
	if h.cat.Basket("x").Len() != 0 {
		t.Errorf("x residue = %d", h.cat.Basket("x").Len())
	}
}

func TestGarbageCollectionTimeout(t *testing.T) {
	h := newHarness(t)
	now := time.Unix(10_000, 0)
	h.cat.SetClock(func() time.Time { return now })
	h.exec("create basket x (tag timestamp, id int, payload int)")
	h.exec("create basket trash (tag timestamp, id int, payload int)")
	h.exec("insert into trash [select all from X where X.tag < now()-1 hour]")
	old := vector.NewTimestamp(now.Add(-2 * time.Hour))
	fresh := vector.NewTimestamp(now.Add(-time.Minute))
	h.feed("x",
		[]vector.Value{old, vector.NewInt(1), vector.NewInt(10)},
		[]vector.Value{fresh, vector.NewInt(2), vector.NewInt(20)},
	)
	h.run()
	if got := h.cat.Basket("trash").Len(); got != 1 {
		t.Errorf("trash = %d", got)
	}
	snap := h.cat.Basket("x").Snapshot()
	if snap.Len() != 1 || snap.Col(1).Ints()[0] != 2 {
		t.Errorf("survivors: %v", snap)
	}
}

func TestIncrementalAggregateVariables(t *testing.T) {
	h := newHarness(t)
	h.exec("create basket x (payload int)")
	h.exec("declare cnt integer; declare tot integer; set tot = 0; set cnt = 0;")
	h.exec(`with Z as [select top 5 payload from X]
		begin
			set cnt = cnt + (select count(*) from Z);
			set tot = tot + (select sum(payload) from Z);
		end`)
	for i := int64(1); i <= 5; i++ {
		h.feed("x", ints(i))
	}
	h.run()
	cnt, _ := h.cat.Var("cnt")
	tot, _ := h.cat.Var("tot")
	if cnt.AsInt() != 5 || tot.AsInt() != 15 {
		t.Errorf("cnt=%v tot=%v", cnt, tot)
	}
	// Batch semantics: below the window size nothing updates.
	h.feed("x", ints(100))
	h.run()
	cnt, _ = h.cat.Var("cnt")
	if cnt.AsInt() != 5 {
		t.Errorf("updated below threshold: cnt=%v", cnt)
	}
}

func TestGroupByAggregation(t *testing.T) {
	h := newHarness(t)
	h.exec("create basket pos (seg int, speed int)")
	c := h.exec(`select seg, avg(speed) as v, count(*) as n
		from [select * from pos] p group by seg order by seg`)
	h.feed("pos", ints(1, 50), ints(2, 70), ints(1, 60), ints(2, 90))
	h.run()
	out := c.Out.TakeAll()
	if out.Len() != 2 {
		t.Fatalf("groups = %d", out.Len())
	}
	if !reflect.DeepEqual(out.Col(0).Ints(), []int64{1, 2}) {
		t.Errorf("segs: %v", out.Col(0).Ints())
	}
	if !reflect.DeepEqual(out.Col(1).Floats(), []float64{55, 80}) {
		t.Errorf("avgs: %v", out.Col(1).Floats())
	}
	if !reflect.DeepEqual(out.Col(2).Ints(), []int64{2, 2}) {
		t.Errorf("counts: %v", out.Col(2).Ints())
	}
}

func TestHavingFiltersGroups(t *testing.T) {
	h := newHarness(t)
	h.exec("create basket pos (seg int, speed int)")
	c := h.exec(`select seg, count(*) as n from [select * from pos] p
		group by seg having n >= 2`)
	h.feed("pos", ints(1, 10), ints(1, 20), ints(2, 30))
	h.run()
	out := c.Out.TakeAll()
	if out.Len() != 1 || out.Col(0).Ints()[0] != 1 {
		t.Errorf("having: %v", out)
	}
}

func TestOneTimeQueryOverTable(t *testing.T) {
	h := newHarness(t)
	h.exec("create table hist (id int, bal int)")
	h.feed("hist", ints(1, 100), ints(2, 200))
	c := h.exec("select id, bal from hist where bal > 150")
	if c.Result == nil || c.Result.Len() != 1 || c.Result.Col(0).Ints()[0] != 2 {
		t.Errorf("one-time result: %v", c.Result)
	}
	// Tables are never consumed.
	if h.cat.Basket("hist").Len() != 2 {
		t.Errorf("table consumed: %d", h.cat.Basket("hist").Len())
	}
}

func TestTableJoinInsideContinuousQuery(t *testing.T) {
	// A continuous query joining a stream with a persistent table: the
	// table is read under lock but never consumed.
	h := newHarness(t)
	h.exec("create basket s (id int, v int)")
	h.exec("create table ref (id int, name string)")
	ref := h.cat.Basket("ref")
	ref.AppendRow(vector.NewInt(1), vector.NewStr("one"))
	ref.AppendRow(vector.NewInt(2), vector.NewStr("two"))
	c := h.exec(`select t.id, r.name, t.v from [select * from s] t, ref r
		where t.id = r.id`)
	h.feed("s", ints(2, 20), ints(3, 30))
	h.run()
	out := c.Out.TakeAll()
	if out.Len() != 1 || out.Col(1).Strs()[0] != "two" {
		t.Errorf("join with table: %v", out)
	}
	if ref.Len() != 2 {
		t.Error("table was consumed")
	}
}

func TestInsertColumnList(t *testing.T) {
	h := newHarness(t)
	h.exec("create basket src (a int, b int)")
	h.exec("create basket dst (p int, q int)")
	h.exec("insert into dst (q, p) select t.a, t.b from [select * from src] t")
	h.feed("src", ints(1, 2))
	h.run()
	snap := h.cat.Basket("dst").Snapshot()
	// a -> q, b -> p: dst row should be (p=2, q=1).
	if snap.Col(0).Ints()[0] != 2 || snap.Col(1).Ints()[0] != 1 {
		t.Errorf("column mapping: %v", snap)
	}
}

func TestDistinctAndTop(t *testing.T) {
	h := newHarness(t)
	h.exec("create basket s (v int)")
	c := h.exec("select distinct t.v from [select * from s] t order by v limit 2")
	h.feed("s", ints(3), ints(1), ints(3), ints(2), ints(1))
	h.run()
	out := c.Out.TakeAll()
	if !reflect.DeepEqual(out.Col(0).Ints(), []int64{1, 2}) {
		t.Errorf("distinct+top: %v", out.Col(0).Ints())
	}
}

func TestCompileErrors(t *testing.T) {
	cat := NewCatalog()
	cases := []string{
		"select * from [select * from nosuch] t",               // unknown basket
		"select * from s where x > 1",                          // unknown table, one-time
		"create basket dup (a int); create basket dup (a int)", // duplicate
	}
	for _, src := range cases {
		stmts, err := sql.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		failed := false
		for _, s := range stmts {
			if _, err := Compile(cat, s, "t"); err != nil {
				failed = true
			}
		}
		if !failed {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestVariablesInPredicates(t *testing.T) {
	h := newHarness(t)
	h.exec("create basket s (v int)")
	h.exec("declare threshold int; set threshold = 10")
	c := h.exec("select * from [select * from s] t where t.v > threshold")
	h.feed("s", ints(5), ints(15))
	h.run()
	out := c.Out.TakeAll()
	if out.Len() != 1 || out.Col(0).Ints()[0] != 15 {
		t.Errorf("var predicate: %v", out)
	}
}

func TestConcurrentSchedulerEndToEnd(t *testing.T) {
	h := newHarness(t)
	h.exec("create basket s (v int)")
	c := h.exec("select * from [select * from s] t where t.v % 2 = 0")
	if err := h.sch.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.sch.Stop()
	for i := int64(0); i < 200; i++ {
		h.feed("s", ints(i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Out.Len() < 100 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := c.Out.Len(); got != 100 {
		t.Errorf("results = %d, want 100", got)
	}
}

func TestBetweenInLikeCaseInQueries(t *testing.T) {
	h := newHarness(t)
	h.exec("create basket s (v int, name string)")
	c := h.exec(`select t.v, t.name,
			case when t.v between 10 and 20 then 1 else 0 end as mid
		from [select * from s] t
		where t.name like 'a%' and t.v in (5, 15, 25)`)
	h.feed("s",
		[]vector.Value{vector.NewInt(5), vector.NewStr("alpha")},
		[]vector.Value{vector.NewInt(15), vector.NewStr("amber")},
		[]vector.Value{vector.NewInt(15), vector.NewStr("beta")},
		[]vector.Value{vector.NewInt(25), vector.NewStr("argon")},
		[]vector.Value{vector.NewInt(7), vector.NewStr("apex")},
	)
	h.run()
	out := c.Out.TakeAll()
	if out.Len() != 3 {
		t.Fatalf("results = %d: %v", out.Len(), out)
	}
	mids := out.ColByName("mid").Ints()
	if !reflect.DeepEqual(mids, []int64{0, 1, 0}) {
		t.Errorf("case arms: %v", mids)
	}
}

func TestUnionOfStreams(t *testing.T) {
	h := newHarness(t)
	h.exec("create basket a (v int)")
	h.exec("create basket b (v int)")
	c := h.exec(`select t.v from [select * from a] t
		union all
		select u.v from [select * from b] u
		order by v`)
	h.feed("a", ints(3), ints(1))
	h.feed("b", ints(2), ints(1))
	h.run()
	out := c.Out.TakeAll()
	if !reflect.DeepEqual(out.Col(0).Ints(), []int64{1, 1, 2, 3}) {
		t.Errorf("union all: %v", out.Col(0).Ints())
	}
}

func TestUnionDistinctDeduplicates(t *testing.T) {
	h := newHarness(t)
	h.exec("create table ta (v int)")
	h.exec("create table tb (v int)")
	h.feed("ta", ints(1), ints(2), ints(2))
	h.feed("tb", ints(2), ints(3))
	c := h.exec("select v from ta union select v from tb order by v")
	if c.Result == nil {
		t.Fatal("one-time union missing result")
	}
	if !reflect.DeepEqual(c.Result.Col(0).Ints(), []int64{1, 2, 3}) {
		t.Errorf("union distinct: %v", c.Result.Col(0).Ints())
	}
}

func TestCountDistinct(t *testing.T) {
	h := newHarness(t)
	h.exec("create basket pos (seg int, vid int)")
	c := h.exec(`select p.seg, count(distinct p.vid) as cars, count(*) as reports
		from [select * from pos] p group by p.seg order by p.seg`)
	h.feed("pos", ints(1, 100), ints(1, 100), ints(1, 200), ints(2, 300))
	h.run()
	out := c.Out.TakeAll()
	if out.Len() != 2 {
		t.Fatalf("groups: %v", out)
	}
	if !reflect.DeepEqual(out.ColByName("cars").Ints(), []int64{2, 1}) {
		t.Errorf("distinct cars: %v", out.ColByName("cars").Ints())
	}
	if !reflect.DeepEqual(out.ColByName("reports").Ints(), []int64{3, 1}) {
		t.Errorf("reports: %v", out.ColByName("reports").Ints())
	}
}

func TestCountDistinctStrings(t *testing.T) {
	h := newHarness(t)
	h.exec("create table tt (s string)")
	tt := h.cat.Basket("tt")
	for _, s := range []string{"a", "b", "a", "c"} {
		tt.AppendRow(vector.NewStr(s))
	}
	c := h.exec("select count(distinct s) as n from tt")
	if c.Result.Col(0).Ints()[0] != 3 {
		t.Errorf("distinct strings: %v", c.Result)
	}
}

func TestExplain(t *testing.T) {
	h := newHarness(t)
	h.exec("create basket x (tag int, payload int)")
	h.exec("create table hist (tag int, v int)")
	stmt, err := sql.ParseOne(`insert into outliers
		select b.tag, b.payload from [select top 20 from X order by tag] as b
		where b.payload > 100`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Explain(h.cat, stmt, "outliers")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fires on x", "threshold 20", "window: top 20", "filter: (b.payload > 100)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q in:\n%s", want, out)
		}
	}
	// A join with a table shows the read-only lock.
	stmt, err = sql.ParseOne(`select t.tag, h.v from [select * from x] t, hist h where t.tag = h.tag`)
	if err != nil {
		t.Fatal(err)
	}
	out, err = Explain(h.cat, stmt, "joined")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "locks hist (read-only)") || !strings.Contains(out, "join 2 sources") {
		t.Errorf("join explain:\n%s", out)
	}
	// A with-block explain covers the body.
	stmt, err = sql.ParseOne(`with a as [select * from x] begin insert into y select * from a; set n = n + 1; end`)
	if err != nil {
		t.Fatal(err)
	}
	out, err = Explain(h.cat, stmt, "split")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "insert into y") || !strings.Contains(out, "set n") {
		t.Errorf("with explain:\n%s", out)
	}
}

func TestCatalogBasics(t *testing.T) {
	cat := NewCatalog()
	b, err := cat.CreateBasket("S", []string{"v"}, []vector.Type{vector.Int}, KindBasket)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateBasket("s", nil, nil, KindBasket); err == nil {
		t.Error("duplicate (case-insensitive) create should fail")
	}
	if cat.Basket("S") != b || cat.Basket("s") != b {
		t.Error("case-insensitive lookup broken")
	}
	if cat.KindOf("s") != KindBasket {
		t.Error("kind lookup broken")
	}
	cat.CreateBasket("t", []string{"v"}, []vector.Type{vector.Int}, KindTable)
	if cat.KindOf("t") != KindTable {
		t.Error("table kind broken")
	}
	all := cat.Baskets()
	if len(all) != 2 || all[0].Name() != "s" || all[1].Name() != "t" {
		t.Errorf("baskets: %v", all)
	}
	cat.DeclareVar("X", vector.Float)
	if v, ok := cat.Var("x"); !ok || v.Kind != vector.Float {
		t.Errorf("var: %v %v", v, ok)
	}
	cat.SetVar("x", vector.NewFloat(2.5))
	if v, _ := cat.Var("x"); v.F != 2.5 {
		t.Errorf("set var: %v", v)
	}
	if _, ok := cat.Var("nope"); ok {
		t.Error("unknown var found")
	}
}

func TestSetWithSubqueryLocksBaskets(t *testing.T) {
	// A standalone SET whose value queries a basket must lock it safely.
	h := newHarness(t)
	h.exec("create table tt (v int)")
	h.feed("tt", ints(1), ints(2), ints(3))
	h.exec("declare total int; set total = (select sum(v) from tt)")
	if v, _ := h.cat.Var("total"); v.AsInt() != 6 {
		t.Errorf("total = %v", v)
	}
}

func TestPredicateWindowDoesNotSpin(t *testing.T) {
	// A predicate window leaves residual tuples in the basket; the
	// factory must quiesce after processing and only re-fire on new
	// arrivals (no busy loop on the unchanged residue).
	h := newHarness(t)
	h.exec("create basket r (a int, b int)")
	c := h.exec("select * from [select * from r where r.b < 10] s")
	h.feed("r", ints(1, 50), ints(2, 5))
	fires, err := h.sch.RunUntilQuiescent(0) // unbounded: must terminate
	if err != nil {
		t.Fatal(err)
	}
	if fires > 3 {
		t.Errorf("factory spun %d times on residue", fires)
	}
	if c.Out.Len() != 1 {
		t.Errorf("results = %d", c.Out.Len())
	}
	// New input re-triggers exactly once more.
	h.feed("r", ints(3, 7))
	fires, err = h.sch.RunUntilQuiescent(0)
	if err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Errorf("re-fire count = %d", fires)
	}
	if c.Out.Len() != 2 {
		t.Errorf("results after refire = %d", c.Out.Len())
	}
}
