package plan

import (
	"fmt"
	"slices"
	"strings"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/expr"
	"datacell/internal/relop"
	"datacell/internal/sql"
	"datacell/internal/vector"
)

// env carries the execution context of one firing: the catalog, the
// with-block bindings, and whether this is a prototype (schema-inference)
// run that must not touch basket contents.
//
// The redirect and onCovered hooks make one compiled statement runnable
// under any multi-query sharing strategy: redirect substitutes a physical
// basket (a private replica, the shared stream basket, or a chain basket)
// for a stream referenced by name inside basket expressions, and onCovered
// intercepts the consumption side-effect so shared readers can report
// covered positions instead of deleting them.
type env struct {
	cat   *Catalog
	binds map[string]*bat.Relation // lazily created by bind
	proto bool                     // schema-inference mode: empty inputs, no side effects

	// redirectFrom/redirectTo substitute a physical basket for the stream
	// of that catalog name (lower-case) inside basket expressions. An empty
	// redirectFrom means no redirection. (A single pair, not a map: a
	// shareable query consumes exactly one stream, and keeping it flat
	// keeps firing setup allocation free.)
	redirectFrom string
	redirectTo   *basket.Basket
	// onCovered, when non-nil, is offered the covered positions of each
	// consuming source before deletion; returning true claims the
	// consumption (the executor must not delete).
	onCovered func(b *basket.Basket, covered []int32) bool

	// arena, when non-nil, provides the firing's reusable scratch vectors,
	// selection buffers and relation headers. Set only on firing paths
	// (StreamScan.Run, compiled factory bodies), never on one-time queries
	// whose results escape to the caller.
	arena *execArena
}

func newEnv(cat *Catalog) *env {
	return &env{cat: cat}
}

func protoEnv(cat *Catalog) *env {
	return &env{cat: cat, proto: true}
}

// bind registers a with-block binding.
func (e *env) bind(name string, rel *bat.Relation) {
	if e.binds == nil {
		e.binds = map[string]*bat.Relation{}
	}
	e.binds[name] = rel
}

// scratch returns the arena's expression scratch, or nil outside firings.
func (e *env) scratch() *expr.Scratch {
	if e.arena == nil {
		return nil
	}
	return &e.arena.sc
}

// arenaVec returns a reusable vector under an arena and a fresh one
// otherwise.
func (e *env) arenaVec() *vector.Vector {
	if e.arena == nil {
		return &vector.Vector{}
	}
	return e.arena.sc.Vec()
}

// arenaRel returns a reusable relation header under an arena and a fresh
// one otherwise.
func (e *env) arenaRel() *bat.Relation {
	if e.arena == nil {
		return &bat.Relation{}
	}
	return e.arena.rel()
}

// orderPerm computes the ordering permutation of n positions under the
// keys, truncated to the first limit entries (limit < 0 keeps all). On
// firing paths the arena's permutation buffer is reused, so steady-state
// ORDER BY (and its bounded-heap TOP n form) allocates nothing; the
// buffer is safe to hand out because every caller gathers through it
// before any nested select could reclaim the arena.
func (e *env) orderPerm(keys []relop.SortKey, n, limit int) []int32 {
	if e.arena == nil {
		return relop.TopNInto(nil, keys, n, limit)
	}
	e.arena.perm = relop.TopNInto(e.arena.perm, keys, n, limit)
	return e.arena.perm
}

// hiddenCol reports whether a (possibly qualified) column is one of the
// engine's internal columns, excluded from * expansion.
func hiddenCol(name string) bool {
	if k := strings.LastIndexByte(name, '.'); k >= 0 {
		name = name[k+1:]
	}
	return strings.HasPrefix(name, "__") || name == basket.TimestampCol
}

func bareName(name string) string {
	if k := strings.LastIndexByte(name, '.'); k >= 0 {
		return name[k+1:]
	}
	return name
}

// resolve rewrites an expression for evaluation against proto: session
// variables become constants, scalar sub-queries are executed and folded,
// and now() is bound to the engine clock. Resolution is identity
// preserving: a node whose children resolve to themselves is returned
// unchanged, so variable-free, subquery-free predicates — the firing hot
// path — resolve without allocating. (Call nodes are the exception: the
// clock injection must not mutate the shared AST, so they are always
// copied.)
func (e *env) resolve(x expr.Expr, proto *bat.Relation) (expr.Expr, error) {
	switch n := x.(type) {
	case nil:
		return nil, nil
	case *expr.Const:
		return n, nil
	case *expr.Col:
		if proto != nil && proto.ColIndex(n.Name) >= 0 {
			return n, nil
		}
		if v, ok := e.cat.Var(n.Name); ok {
			return expr.NewConst(v), nil
		}
		return n, nil // unknown names error at evaluation with context
	case *expr.Bin:
		l, err := e.resolve(n.L, proto)
		if err != nil {
			return nil, err
		}
		r, err := e.resolve(n.R, proto)
		if err != nil {
			return nil, err
		}
		if l == n.L && r == n.R {
			return n, nil
		}
		return expr.NewBin(n.Op, l, r), nil
	case *expr.Not:
		c, err := e.resolve(n.E, proto)
		if err != nil {
			return nil, err
		}
		if c == n.E {
			return n, nil
		}
		return expr.NewNot(c), nil
	case *expr.Neg:
		c, err := e.resolve(n.E, proto)
		if err != nil {
			return nil, err
		}
		if c == n.E {
			return n, nil
		}
		return expr.NewNeg(c), nil
	case *expr.Call:
		args := make([]expr.Expr, len(n.Args))
		for i, a := range n.Args {
			ra, err := e.resolve(a, proto)
			if err != nil {
				return nil, err
			}
			args[i] = ra
		}
		c := expr.NewCall(n.Name, args...)
		c.Now = e.cat.Now
		return c, nil
	case *expr.Between:
		ex, err := e.resolve(n.E, proto)
		if err != nil {
			return nil, err
		}
		lo, err := e.resolve(n.Lo, proto)
		if err != nil {
			return nil, err
		}
		hi, err := e.resolve(n.Hi, proto)
		if err != nil {
			return nil, err
		}
		if ex == n.E && lo == n.Lo && hi == n.Hi {
			return n, nil
		}
		return expr.NewBetween(ex, lo, hi, n.Negate), nil
	case *expr.InList:
		ex, err := e.resolve(n.E, proto)
		if err != nil {
			return nil, err
		}
		if ex == n.E {
			return n, nil
		}
		return expr.NewInList(ex, n.Vals, n.Negate), nil
	case *expr.Like:
		ex, err := e.resolve(n.E, proto)
		if err != nil {
			return nil, err
		}
		if ex == n.E {
			return n, nil
		}
		return expr.NewLike(ex, n.Pattern, n.Negate), nil
	case *expr.Case:
		whens := make([]expr.WhenClause, len(n.Whens))
		for i, w := range n.Whens {
			c, err := e.resolve(w.Cond, proto)
			if err != nil {
				return nil, err
			}
			t, err := e.resolve(w.Then, proto)
			if err != nil {
				return nil, err
			}
			whens[i] = expr.WhenClause{Cond: c, Then: t}
		}
		els, err := e.resolve(n.Else, proto)
		if err != nil {
			return nil, err
		}
		return expr.NewCase(whens, els), nil
	case *sql.SubqueryExpr:
		rel, err := e.execSelect(n.Sel)
		if err != nil {
			return nil, fmt.Errorf("plan: scalar subquery: %w", err)
		}
		return expr.NewConst(scalarOf(rel)), nil
	}
	return nil, fmt.Errorf("plan: cannot resolve expression %T", x)
}

// scalarOf extracts the single value of a scalar sub-query result. An
// empty result yields the zero value of the first column's type (so that
// incremental aggregates like cnt+count(*) see 0, not an error).
func scalarOf(rel *bat.Relation) vector.Value {
	if rel.NumCols() == 0 {
		return vector.NewInt(0)
	}
	if rel.Len() == 0 {
		return vector.Value{Kind: rel.Col(0).Kind()}
	}
	return rel.Col(0).Get(0)
}

// evalExpr resolves and evaluates a scalar expression over rel, drawing
// temporaries from the firing arena when one is installed.
func (e *env) evalExpr(x expr.Expr, rel *bat.Relation) (*vector.Vector, error) {
	rx, err := e.resolve(x, rel)
	if err != nil {
		return nil, err
	}
	return rx.EvalInto(rel, nil, e.scratch())
}

// evalPred resolves a predicate and evaluates it as a candidate list. The
// result is always ascending and duplicate free; under an arena it is
// owned by the firing scratch.
func (e *env) evalPred(x expr.Expr, rel *bat.Relation, cand []int32) ([]int32, error) {
	if x == nil {
		if cand != nil {
			return cand, nil
		}
		if s := e.scratch(); s != nil {
			p := s.Sel()
			*p = relop.CandAllInto(*p, rel.Len())
			return *p, nil
		}
		return relop.CandAll(rel.Len()), nil
	}
	rx, err := e.resolve(x, rel)
	if err != nil {
		return nil, err
	}
	sel, err := expr.EvalSelectInto(rx, rel, cand, e.scratch())
	if sel == nil && err == nil {
		// Normalise: downstream a nil list means "unrestricted", but an
		// evaluated predicate that selected nothing must stay "no rows".
		sel = emptySel
	}
	return sel, err
}

// emptySel is the shared non-nil empty selection ("no rows"); a nil list
// means "no restriction" instead. Read only.
var emptySel = make([]int32, 0)

// source is one FROM-clause input after evaluation.
type source struct {
	alias   string
	rel     *bat.Relation  // qualified columns; hidden __pos column if consumable
	consume *basket.Basket // non-nil when tuples referenced must be deleted
	posCol  string         // name of the hidden position column
}

// evalTableRef materialises one table reference. insideBasket selects the
// consuming semantics for named baskets. skipPos suppresses the hidden
// position column: the single-source fast path tracks positions through
// its candidate list instead of a materialised column (late
// materialisation), so the column — and its per-firing allocation — is
// only needed for joins and ORDER BY/TOP windows.
func (e *env) evalTableRef(tr *sql.TableRef, idx int, insideBasket, skipPos bool) (*source, error) {
	s := &source{alias: tr.Alias}
	switch {
	case tr.Basket != nil:
		rel, err := e.execBasketScan(tr.Basket)
		if err != nil {
			return nil, err
		}
		s.rel = rel.Qualify(tr.Alias)
	case tr.Sub != nil:
		rel, err := e.execSelect(tr.Sub)
		if err != nil {
			return nil, err
		}
		s.rel = rel.Qualify(tr.Alias)
	default:
		if bound, ok := e.binds[tr.Name]; ok {
			s.rel = bound.Qualify(tr.Alias)
			break
		}
		b := e.cat.Basket(tr.Name)
		if b == nil {
			return nil, fmt.Errorf("plan: unknown basket or table %q", tr.Name)
		}
		consuming := insideBasket && e.cat.KindOf(tr.Name) == KindBasket
		if consuming && e.redirectTo != nil && !e.proto && strings.EqualFold(tr.Name, e.redirectFrom) {
			b = e.redirectTo
		}
		var rel *bat.Relation
		if e.proto {
			names, types := b.Schema()
			rel = bat.NewEmptyRelation(names, types)
		} else {
			rel = b.RelLocked()
		}
		s.rel = rel.Qualify(tr.Alias)
		if consuming && !e.proto {
			s.consume = b
		}
	}
	if s.consume != nil && !skipPos {
		// Attach the hidden position column used to trace covered tuples
		// through joins and top-N restrictions.
		n := s.rel.Len()
		pos := make([]int64, n)
		for i := range pos {
			pos[i] = int64(i)
		}
		s.posCol = fmt.Sprintf("__pos_%d", idx)
		names := append(append([]string(nil), s.rel.Names()...), s.posCol)
		cols := make([]*vector.Vector, 0, len(names))
		for i := 0; i < s.rel.NumCols(); i++ {
			cols = append(cols, s.rel.Col(i))
		}
		cols = append(cols, vector.FromInts(pos))
		s.rel = bat.NewRelation(names, cols)
	}
	return s, nil
}

// splitAnd flattens a conjunction into its conjuncts.
func splitAnd(x expr.Expr) []expr.Expr {
	if b, ok := x.(*expr.Bin); ok && b.Op == expr.And {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	if x == nil {
		return nil
	}
	return []expr.Expr{x}
}

func andAll(conjuncts []expr.Expr) expr.Expr {
	var out expr.Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = expr.NewBin(expr.And, out, c)
		}
	}
	return out
}

// joinSources joins the FROM sources left-to-right, consuming equi- and
// theta-join conjuncts from the WHERE clause, and applies the remaining
// predicate as a filter. It returns the joined, filtered relation.
func (e *env) joinSources(srcs []*source, where expr.Expr) (*bat.Relation, error) {
	conjuncts := splitAnd(where)
	cur := srcs[0].rel
	for _, nxt := range srcs[1:] {
		var lkeys, rkeys []*vector.Vector
		var thetaL, thetaR *vector.Vector
		var thetaOp relop.CmpOp
		rest := conjuncts[:0:0]
		for _, c := range conjuncts {
			b, ok := c.(*expr.Bin)
			if !ok || !b.Op.IsCmp() {
				rest = append(rest, c)
				continue
			}
			lc, lok := b.L.(*expr.Col)
			rc, rok := b.R.(*expr.Col)
			if !lok || !rok {
				rest = append(rest, c)
				continue
			}
			lv, rv := cur.ColByName(lc.Name), nxt.rel.ColByName(rc.Name)
			op := b.Op
			if lv == nil || rv == nil {
				// Try the swapped orientation.
				lv, rv = cur.ColByName(rc.Name), nxt.rel.ColByName(lc.Name)
				switch op {
				case expr.Lt:
					op = expr.Gt
				case expr.Le:
					op = expr.Ge
				case expr.Gt:
					op = expr.Lt
				case expr.Ge:
					op = expr.Le
				}
			}
			if lv == nil || rv == nil {
				rest = append(rest, c)
				continue
			}
			if op == expr.Eq {
				lkeys = append(lkeys, lv)
				rkeys = append(rkeys, rv)
			} else if thetaL == nil {
				thetaL, thetaR, thetaOp = lv, rv, op.CmpOp()
			} else {
				rest = append(rest, c)
			}
		}
		conjuncts = rest

		var lsel, rsel []int32
		switch {
		case len(lkeys) > 0:
			lsel, rsel = relop.HashJoinMulti(lkeys, rkeys)
		case thetaL != nil:
			lsel, rsel = relop.ThetaJoin(thetaL, thetaR, thetaOp)
			thetaL = nil
		default:
			// Cross product: rare, used only by tiny control inputs.
			ln, rn := cur.Len(), nxt.rel.Len()
			lsel = make([]int32, 0, ln*rn)
			rsel = make([]int32, 0, ln*rn)
			for i := 0; i < ln; i++ {
				for j := 0; j < rn; j++ {
					lsel = append(lsel, int32(i))
					rsel = append(rsel, int32(j))
				}
			}
		}
		cur = bat.Concat(cur.Gather(lsel), nxt.rel.Gather(rsel))
	}
	if len(conjuncts) > 0 {
		sel, err := e.evalPred(andAll(conjuncts), cur, nil)
		if err != nil {
			return nil, err
		}
		cur = cur.Gather(sel)
	}
	return cur, nil
}

// execBasketScan evaluates a basket expression: it selects the referenced
// tuples, removes them from their underlying baskets (the side effect that
// makes the window move) and returns the selected tuples projected through
// the expression's select list.
func (e *env) execBasketScan(be *sql.SelectStmt) (*bat.Relation, error) {
	if len(be.From) == 0 {
		return nil, fmt.Errorf("plan: basket expression needs a FROM clause")
	}
	if e.fastScanOK(be) {
		return e.execSingleScan(be)
	}
	srcs := make([]*source, len(be.From))
	for i := range be.From {
		s, err := e.evalTableRef(&be.From[i], i, true, false)
		if err != nil {
			return nil, err
		}
		srcs[i] = s
	}
	var j *bat.Relation
	var err error
	if len(srcs) == 1 {
		sel, perr := e.evalPred(be.Where, srcs[0].rel, nil)
		if perr != nil {
			return nil, perr
		}
		j = srcs[0].rel.Gather(sel)
	} else {
		j, err = e.joinSources(srcs, be.Where)
		if err != nil {
			return nil, err
		}
	}

	// ORDER BY applies to the full selection before TOP fixes the window.
	if len(be.OrderBy) > 0 {
		keys := make([]relop.SortKey, len(be.OrderBy))
		for i, oi := range be.OrderBy {
			v, err := e.evalExpr(oi.Expr, j)
			if err != nil {
				return nil, err
			}
			keys[i] = relop.SortKey{Col: v, Desc: oi.Desc}
		}
		// A TOP window bounds the sort: the heap form never materialises
		// the full permutation.
		j = j.Gather(e.orderPerm(keys, j.Len(), be.Top))
	}
	if be.Top >= 0 && be.Top < j.Len() {
		j = j.Gather(relop.CandAll(be.Top))
	}

	// Delete the covered tuples from their baskets.
	for _, s := range srcs {
		if s.consume == nil {
			continue
		}
		posv := j.ColByName(s.posCol)
		if posv == nil {
			continue
		}
		covered := make([]int32, 0, posv.Len())
		seen := map[int32]bool{}
		for _, p := range posv.Ints() {
			if !seen[int32(p)] {
				seen[int32(p)] = true
				covered = append(covered, int32(p))
			}
		}
		sortAsc(covered)
		if e.onCovered != nil && e.onCovered(s.consume, covered) {
			continue
		}
		if len(covered) > 0 {
			s.consume.DeleteLocked(covered)
		}
	}

	out, err := e.selectTail(be, j)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fastScanOK reports whether a basket expression qualifies for the
// single-source late-materialisation path: one FROM source, no ORDER BY
// (an ordered window must reorder its position trace), and no scalar
// subqueries in the parts that run after consumption (the fast path
// consumes after projecting, so a subquery re-reading the scanned basket
// must keep the classic ordering).
func (e *env) fastScanOK(be *sql.SelectStmt) bool {
	if len(be.From) != 1 || len(be.OrderBy) > 0 || be.Union != nil {
		return false
	}
	if exprHasSubquery(be.Having) {
		return false
	}
	for _, g := range be.GroupBy {
		if exprHasSubquery(g) {
			return false
		}
	}
	for _, it := range be.Items {
		if exprHasSubquery(it.Expr) {
			return false
		}
		if it.Agg != nil && exprHasSubquery(it.Agg.Arg) {
			return false
		}
	}
	return true
}

// execSingleScan is the basket-expression hot path: instead of gathering
// every column of the selection at each stage, it carries the source
// relation plus a candidate list between stages and materialises — one
// gather per output column — only at the projection boundary. Covered
// positions are the candidate list itself (the hidden position column of
// the general path is the identity here), so a steady-state firing
// allocates nothing beyond its arena.
func (e *env) execSingleScan(be *sql.SelectStmt) (*bat.Relation, error) {
	src, err := e.evalTableRef(&be.From[0], 0, true, true)
	if err != nil {
		return nil, err
	}
	sel, err := e.evalPred(be.Where, src.rel, nil)
	if err != nil {
		return nil, err
	}
	if be.Top >= 0 && be.Top < len(sel) {
		sel = sel[:be.Top]
	}
	// Project before consuming: the projection reads the live source
	// columns (copying into the arena), and only then does the delete
	// shift them.
	out, err := e.selectTailCand(be, src.rel, sel, src.consume != nil)
	if err != nil {
		return nil, err
	}
	if src.consume != nil && !e.proto {
		// evalPred results are ascending and duplicate free — exactly the
		// covered-positions form CoverLocked/DeleteLocked require.
		if e.onCovered != nil && e.onCovered(src.consume, sel) {
			return out, nil
		}
		if len(sel) > 0 {
			src.consume.DeleteLocked(sel)
		}
	}
	return out, nil
}

// restrictCol returns col restricted to cand. With cand == nil the column
// is shared unless mustCopy is set (callers about to delete from the
// source need their own copy).
func (e *env) restrictCol(col *vector.Vector, cand []int32, mustCopy bool) *vector.Vector {
	if cand == nil {
		if !mustCopy {
			return col
		}
		return col.SliceInto(e.arenaVec(), 0, col.Len())
	}
	return col.GatherInto(e.arenaVec(), cand)
}

// materializeCand returns rel restricted to cand as a materialised
// relation. With cand == nil it shares rel unless mustCopy is set.
func (e *env) materializeCand(rel *bat.Relation, cand []int32, mustCopy bool) *bat.Relation {
	if cand == nil {
		if !mustCopy {
			return rel
		}
		return rel.CloneInto(e.arenaRel())
	}
	return rel.GatherInto(e.arenaRel(), cand)
}

// selectTailCand applies the select tail to rel restricted to cand with
// late materialisation: plain column projections gather only the output
// columns; anything needing whole-relation evaluation (aggregation,
// distinct, having, computed expressions) materialises the restriction
// once into the arena and reuses the classic tail. mustCopy marks rel as
// live basket storage that the caller will mutate after projection.
func (e *env) selectTailCand(sel *sql.SelectStmt, rel *bat.Relation, cand []int32, mustCopy bool) (*bat.Relation, error) {
	aggregated := len(sel.GroupBy) > 0
	for _, it := range sel.Items {
		if it.Agg != nil {
			aggregated = true
		}
	}
	if aggregated || sel.Distinct || sel.Having != nil {
		return e.selectTail(sel, e.materializeCand(rel, cand, mustCopy))
	}
	return e.projectItems(sel, rel, cand, mustCopy)
}

// projectItems evaluates a non-aggregated select list over rel restricted
// to cand (nil = all rows). It is the single projection implementation:
// the classic tail passes an already-materialised relation with cand nil;
// the late-materialisation paths pass the source relation plus the
// candidate list, so each output column is gathered exactly once.
func (e *env) projectItems(sel *sql.SelectStmt, rel *bat.Relation, cand []int32, mustCopy bool) (*bat.Relation, error) {
	names := make([]string, 0, len(sel.Items))
	cols := make([]*vector.Vector, 0, len(sel.Items))
	taken := map[string]bool{}
	var mat *bat.Relation // lazily materialised restriction for computed items
	for i, it := range sel.Items {
		if it.Star {
			for c := 0; c < rel.NumCols(); c++ {
				qn := rel.Names()[c]
				if hiddenCol(qn) {
					continue
				}
				if it.StarAlias != "" && !strings.HasPrefix(qn, it.StarAlias+".") {
					continue
				}
				name := bareName(qn)
				if taken[name] {
					name = qn // keep the qualifier on conflicts
				}
				taken[name] = true
				names = append(names, name)
				cols = append(cols, e.restrictCol(rel.Col(c), cand, mustCopy))
			}
			continue
		}
		rx, err := e.resolve(it.Expr, rel)
		if err != nil {
			return nil, err
		}
		var v *vector.Vector
		if c, ok := rx.(*expr.Col); ok {
			src := rel.ColByName(c.Name)
			if src == nil {
				return nil, fmt.Errorf("expr: unknown column %q (have %v)", c.Name, rel.Names())
			}
			v = e.restrictCol(src, cand, mustCopy)
		} else {
			if mat == nil {
				mat = e.materializeCand(rel, cand, mustCopy)
			}
			v, err = rx.EvalInto(mat, nil, e.scratch())
			if err != nil {
				return nil, err
			}
		}
		name := it.ItemName(i)
		taken[name] = true
		names = append(names, name)
		cols = append(cols, v)
	}
	return bat.NewRelation(names, cols), nil
}

// exprHasSubquery reports whether an expression tree contains a scalar
// subquery, without allocating.
func exprHasSubquery(x expr.Expr) bool {
	switch n := x.(type) {
	case nil:
	case *sql.SubqueryExpr:
		return true
	case *expr.Bin:
		return exprHasSubquery(n.L) || exprHasSubquery(n.R)
	case *expr.Not:
		return exprHasSubquery(n.E)
	case *expr.Neg:
		return exprHasSubquery(n.E)
	case *expr.Call:
		for _, a := range n.Args {
			if exprHasSubquery(a) {
				return true
			}
		}
	case *expr.Between:
		return exprHasSubquery(n.E) || exprHasSubquery(n.Lo) || exprHasSubquery(n.Hi)
	case *expr.InList:
		return exprHasSubquery(n.E)
	case *expr.Like:
		return exprHasSubquery(n.E)
	case *expr.Case:
		for _, w := range n.Whens {
			if exprHasSubquery(w.Cond) || exprHasSubquery(w.Then) {
				return true
			}
		}
		return exprHasSubquery(n.Else)
	}
	return false
}

// execSelect evaluates a full select statement (outer query semantics: no
// consumption except via nested basket expressions).
func (e *env) execSelect(sel *sql.SelectStmt) (*bat.Relation, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("plan: select needs a FROM clause")
	}
	srcs := make([]*source, len(sel.From))
	for i := range sel.From {
		s, err := e.evalTableRef(&sel.From[i], i, false, false)
		if err != nil {
			return nil, err
		}
		srcs[i] = s
	}

	aggregated := len(sel.GroupBy) > 0
	for _, it := range sel.Items {
		if it.Agg != nil {
			aggregated = true
		}
	}

	var j *bat.Relation
	var err error
	if len(srcs) == 1 {
		selv, perr := e.evalPred(sel.Where, srcs[0].rel, nil)
		if perr != nil {
			return nil, perr
		}
		if sel.Union == nil && len(sel.OrderBy) == 0 {
			// Late materialisation: skip the whole-relation gather and
			// project straight off (rel, selv). Top over a plain projection
			// truncates the candidate list before any column is copied.
			if sel.Top >= 0 && !aggregated && !sel.Distinct && sel.Top < len(selv) {
				selv = selv[:sel.Top]
			}
			result, terr := e.selectTailCand(sel, srcs[0].rel, selv, false)
			if terr != nil {
				return nil, terr
			}
			if sel.Top >= 0 && sel.Top < result.Len() {
				result = result.Gather(relop.CandAll(sel.Top))
			}
			return result, nil
		}
		j = srcs[0].rel.Gather(selv)
	} else {
		j, err = e.joinSources(srcs, sel.Where)
		if err != nil {
			return nil, err
		}
	}

	result, err := e.selectTail(sel, j)
	if err != nil {
		return nil, err
	}

	if sel.Union != nil {
		rhs, err := e.execSelect(sel.Union)
		if err != nil {
			return nil, err
		}
		if rhs.NumCols() != result.NumCols() {
			return nil, fmt.Errorf("plan: union branches have %d vs %d columns",
				result.NumCols(), rhs.NumCols())
		}
		combined := result.Clone()
		combined.AppendRelation(rhs.Rename(result.Names()))
		if !sel.UnionAll {
			cols := make([]*vector.Vector, combined.NumCols())
			for i := range cols {
				cols[i] = combined.Col(i)
			}
			combined = combined.Gather(relop.Distinct(cols, combined.Len()))
		}
		result = combined
	}

	aligned := !aggregated && !sel.Distinct && sel.Union == nil
	if len(sel.OrderBy) > 0 {
		base := result
		if aligned {
			base = j
		}
		keys := make([]relop.SortKey, len(sel.OrderBy))
		for i, oi := range sel.OrderBy {
			v, kerr := e.evalExpr(oi.Expr, base)
			if kerr != nil && aligned {
				// Order key may reference a select-list alias.
				v, kerr = e.evalExpr(oi.Expr, result)
			}
			if kerr != nil {
				return nil, kerr
			}
			keys[i] = relop.SortKey{Col: v, Desc: oi.Desc}
		}
		result = result.Gather(e.orderPerm(keys, result.Len(), sel.Top))
	}
	if sel.Top >= 0 && sel.Top < result.Len() {
		result = result.Gather(relop.CandAll(sel.Top))
	}
	return result, nil
}

// selectTail applies grouping/aggregation or projection, having and
// distinct to the joined, filtered relation.
func (e *env) selectTail(sel *sql.SelectStmt, j *bat.Relation) (*bat.Relation, error) {
	aggregated := len(sel.GroupBy) > 0
	for _, it := range sel.Items {
		if it.Agg != nil {
			aggregated = true
		}
	}
	var result *bat.Relation
	if aggregated {
		keys := make([]*vector.Vector, len(sel.GroupBy))
		for i, g := range sel.GroupBy {
			v, err := e.evalExpr(g, j)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		grouping := relop.GroupBy(keys, j.Len())
		names := make([]string, 0, len(sel.Items))
		cols := make([]*vector.Vector, 0, len(sel.Items))
		for i, it := range sel.Items {
			switch {
			case it.Star:
				return nil, fmt.Errorf("plan: * cannot be combined with aggregation")
			case it.Agg != nil && it.Agg.Distinct:
				if it.Agg.Kind != relop.AggCount {
					return nil, fmt.Errorf("plan: distinct is only supported for count()")
				}
				if it.Agg.Arg == nil {
					return nil, fmt.Errorf("plan: count(distinct *) is not meaningful")
				}
				v, err := e.evalExpr(it.Agg.Arg, j)
				if err != nil {
					return nil, err
				}
				cols = append(cols, countDistinct(v, grouping))
				names = append(names, it.ItemName(i))
			case it.Agg != nil:
				var arg *vector.Vector
				if !it.Agg.Star && it.Agg.Kind != relop.AggCount {
					v, err := e.evalExpr(it.Agg.Arg, j)
					if err != nil {
						return nil, err
					}
					arg = v
				} else if it.Agg.Star && it.Agg.Kind != relop.AggCount {
					// sum(*)/avg(*) etc. take the single visible column.
					var only *vector.Vector
					cnt := 0
					for c := 0; c < j.NumCols(); c++ {
						if !hiddenCol(j.Names()[c]) {
							only = j.Col(c)
							cnt++
						}
					}
					if cnt != 1 {
						return nil, fmt.Errorf("plan: %s(*) needs exactly one input column, have %d", it.Agg.Kind, cnt)
					}
					arg = only
				} else if it.Agg.Arg != nil {
					v, err := e.evalExpr(it.Agg.Arg, j)
					if err != nil {
						return nil, err
					}
					arg = v
				}
				cols = append(cols, relop.Aggregate(it.Agg.Kind, arg, grouping))
				names = append(names, it.ItemName(i))
			default:
				v, err := e.evalExpr(it.Expr, j)
				if err != nil {
					return nil, err
				}
				cols = append(cols, v.Gather(grouping.Repr))
				names = append(names, it.ItemName(i))
			}
		}
		result = bat.NewRelation(names, cols)
		if sel.Having != nil {
			hsel, err := e.evalPred(sel.Having, result, nil)
			if err != nil {
				return nil, err
			}
			result = result.Gather(hsel)
		}
	} else {
		if sel.Having != nil {
			return nil, fmt.Errorf("plan: HAVING requires GROUP BY or aggregates")
		}
		var err error
		result, err = e.projectItems(sel, j, nil, false)
		if err != nil {
			return nil, err
		}
	}
	if sel.Distinct {
		allCols := make([]*vector.Vector, result.NumCols())
		for i := range allCols {
			allCols[i] = result.Col(i)
		}
		result = result.Gather(relop.Distinct(allCols, result.Len()))
	}
	return result, nil
}

// countDistinct computes count(distinct v) per group.
func countDistinct(v *vector.Vector, g *relop.Grouping) *vector.Vector {
	seen := map[[2]int64]bool{}
	counts := make([]int64, g.NumGroups())
	useInts := v.Kind() == vector.Int || v.Kind() == vector.Timestamp
	seenStr := map[string]bool{}
	for i, gid := range g.GroupIDs {
		if useInts {
			k := [2]int64{int64(gid), v.Ints()[i]}
			if !seen[k] {
				seen[k] = true
				counts[gid]++
			}
			continue
		}
		k := fmt.Sprintf("%d\x1f%s", gid, v.Get(i))
		if !seenStr[k] {
			seenStr[k] = true
			counts[gid]++
		}
	}
	return vector.FromInts(counts)
}

func sortAsc(s []int32) {
	if !slices.IsSorted(s) {
		slices.Sort(s)
	}
}
