package plan

import (
	"fmt"
	"slices"
	"strings"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/expr"
	"datacell/internal/relop"
	"datacell/internal/sql"
	"datacell/internal/vector"
)

// env carries the execution context of one firing: the catalog, the
// with-block bindings, and whether this is a prototype (schema-inference)
// run that must not touch basket contents.
//
// The redirect and onCovered hooks make one compiled statement runnable
// under any multi-query sharing strategy: redirect substitutes a physical
// basket (a private replica, the shared stream basket, or a chain basket)
// for a stream referenced by name inside basket expressions, and onCovered
// intercepts the consumption side-effect so shared readers can report
// covered positions instead of deleting them.
type env struct {
	cat   *Catalog
	binds map[string]*bat.Relation
	proto bool // schema-inference mode: empty inputs, no side effects

	// redirect maps a stream's catalog name (lower-case) to the basket a
	// basket expression should actually read. nil means no redirection.
	redirect map[string]*basket.Basket
	// onCovered, when non-nil, is offered the covered positions of each
	// consuming source before deletion; returning true claims the
	// consumption (the executor must not delete).
	onCovered func(b *basket.Basket, covered []int32) bool
}

func newEnv(cat *Catalog) *env {
	return &env{cat: cat, binds: map[string]*bat.Relation{}}
}

func protoEnv(cat *Catalog) *env {
	return &env{cat: cat, binds: map[string]*bat.Relation{}, proto: true}
}

// hiddenCol reports whether a (possibly qualified) column is one of the
// engine's internal columns, excluded from * expansion.
func hiddenCol(name string) bool {
	if k := strings.LastIndexByte(name, '.'); k >= 0 {
		name = name[k+1:]
	}
	return strings.HasPrefix(name, "__") || name == basket.TimestampCol
}

func bareName(name string) string {
	if k := strings.LastIndexByte(name, '.'); k >= 0 {
		return name[k+1:]
	}
	return name
}

// resolve rewrites an expression for evaluation against proto: session
// variables become constants, scalar sub-queries are executed and folded,
// and now() is bound to the engine clock.
func (e *env) resolve(x expr.Expr, proto *bat.Relation) (expr.Expr, error) {
	switch n := x.(type) {
	case nil:
		return nil, nil
	case *expr.Const:
		return n, nil
	case *expr.Col:
		if proto != nil && proto.ColIndex(n.Name) >= 0 {
			return n, nil
		}
		if v, ok := e.cat.Var(n.Name); ok {
			return expr.NewConst(v), nil
		}
		return n, nil // unknown names error at evaluation with context
	case *expr.Bin:
		l, err := e.resolve(n.L, proto)
		if err != nil {
			return nil, err
		}
		r, err := e.resolve(n.R, proto)
		if err != nil {
			return nil, err
		}
		return expr.NewBin(n.Op, l, r), nil
	case *expr.Not:
		c, err := e.resolve(n.E, proto)
		if err != nil {
			return nil, err
		}
		return expr.NewNot(c), nil
	case *expr.Neg:
		c, err := e.resolve(n.E, proto)
		if err != nil {
			return nil, err
		}
		return expr.NewNeg(c), nil
	case *expr.Call:
		args := make([]expr.Expr, len(n.Args))
		for i, a := range n.Args {
			ra, err := e.resolve(a, proto)
			if err != nil {
				return nil, err
			}
			args[i] = ra
		}
		c := expr.NewCall(n.Name, args...)
		c.Now = e.cat.Now
		return c, nil
	case *expr.Between:
		ex, err := e.resolve(n.E, proto)
		if err != nil {
			return nil, err
		}
		lo, err := e.resolve(n.Lo, proto)
		if err != nil {
			return nil, err
		}
		hi, err := e.resolve(n.Hi, proto)
		if err != nil {
			return nil, err
		}
		return expr.NewBetween(ex, lo, hi, n.Negate), nil
	case *expr.InList:
		ex, err := e.resolve(n.E, proto)
		if err != nil {
			return nil, err
		}
		return expr.NewInList(ex, n.Vals, n.Negate), nil
	case *expr.Like:
		ex, err := e.resolve(n.E, proto)
		if err != nil {
			return nil, err
		}
		return expr.NewLike(ex, n.Pattern, n.Negate), nil
	case *expr.Case:
		whens := make([]expr.WhenClause, len(n.Whens))
		for i, w := range n.Whens {
			c, err := e.resolve(w.Cond, proto)
			if err != nil {
				return nil, err
			}
			t, err := e.resolve(w.Then, proto)
			if err != nil {
				return nil, err
			}
			whens[i] = expr.WhenClause{Cond: c, Then: t}
		}
		els, err := e.resolve(n.Else, proto)
		if err != nil {
			return nil, err
		}
		return expr.NewCase(whens, els), nil
	case *sql.SubqueryExpr:
		rel, err := e.execSelect(n.Sel)
		if err != nil {
			return nil, fmt.Errorf("plan: scalar subquery: %w", err)
		}
		return expr.NewConst(scalarOf(rel)), nil
	}
	return nil, fmt.Errorf("plan: cannot resolve expression %T", x)
}

// scalarOf extracts the single value of a scalar sub-query result. An
// empty result yields the zero value of the first column's type (so that
// incremental aggregates like cnt+count(*) see 0, not an error).
func scalarOf(rel *bat.Relation) vector.Value {
	if rel.NumCols() == 0 {
		return vector.NewInt(0)
	}
	if rel.Len() == 0 {
		return vector.Value{Kind: rel.Col(0).Kind()}
	}
	return rel.Col(0).Get(0)
}

// evalExpr resolves and evaluates a scalar expression over rel.
func (e *env) evalExpr(x expr.Expr, rel *bat.Relation) (*vector.Vector, error) {
	rx, err := e.resolve(x, rel)
	if err != nil {
		return nil, err
	}
	return rx.Eval(rel)
}

// evalPred resolves a predicate and evaluates it as a candidate list.
func (e *env) evalPred(x expr.Expr, rel *bat.Relation, cand []int32) ([]int32, error) {
	if x == nil {
		if cand != nil {
			return cand, nil
		}
		return relop.CandAll(rel.Len()), nil
	}
	rx, err := e.resolve(x, rel)
	if err != nil {
		return nil, err
	}
	return expr.EvalSelect(rx, rel, cand)
}

// source is one FROM-clause input after evaluation.
type source struct {
	alias   string
	rel     *bat.Relation  // qualified columns; hidden __pos column if consumable
	consume *basket.Basket // non-nil when tuples referenced must be deleted
	posCol  string         // name of the hidden position column
}

// evalTableRef materialises one table reference. insideBasket selects the
// consuming semantics for named baskets.
func (e *env) evalTableRef(tr *sql.TableRef, idx int, insideBasket bool) (*source, error) {
	s := &source{alias: tr.Alias}
	switch {
	case tr.Basket != nil:
		rel, err := e.execBasketScan(tr.Basket)
		if err != nil {
			return nil, err
		}
		s.rel = rel.Qualify(tr.Alias)
	case tr.Sub != nil:
		rel, err := e.execSelect(tr.Sub)
		if err != nil {
			return nil, err
		}
		s.rel = rel.Qualify(tr.Alias)
	default:
		if bound, ok := e.binds[tr.Name]; ok {
			s.rel = bound.Qualify(tr.Alias)
			break
		}
		b := e.cat.Basket(tr.Name)
		if b == nil {
			return nil, fmt.Errorf("plan: unknown basket or table %q", tr.Name)
		}
		consuming := insideBasket && e.cat.KindOf(tr.Name) == KindBasket
		if consuming && e.redirect != nil && !e.proto {
			if rb, ok := e.redirect[strings.ToLower(tr.Name)]; ok {
				b = rb
			}
		}
		var rel *bat.Relation
		if e.proto {
			names, types := b.Schema()
			rel = bat.NewEmptyRelation(names, types)
		} else {
			rel = b.RelLocked()
		}
		s.rel = rel.Qualify(tr.Alias)
		if consuming && !e.proto {
			s.consume = b
		}
	}
	if s.consume != nil {
		// Attach the hidden position column used to trace covered tuples
		// through joins and top-N restrictions.
		n := s.rel.Len()
		pos := make([]int64, n)
		for i := range pos {
			pos[i] = int64(i)
		}
		s.posCol = fmt.Sprintf("__pos_%d", idx)
		names := append(append([]string(nil), s.rel.Names()...), s.posCol)
		cols := make([]*vector.Vector, 0, len(names))
		for i := 0; i < s.rel.NumCols(); i++ {
			cols = append(cols, s.rel.Col(i))
		}
		cols = append(cols, vector.FromInts(pos))
		s.rel = bat.NewRelation(names, cols)
	}
	return s, nil
}

// splitAnd flattens a conjunction into its conjuncts.
func splitAnd(x expr.Expr) []expr.Expr {
	if b, ok := x.(*expr.Bin); ok && b.Op == expr.And {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	if x == nil {
		return nil
	}
	return []expr.Expr{x}
}

func andAll(conjuncts []expr.Expr) expr.Expr {
	var out expr.Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = expr.NewBin(expr.And, out, c)
		}
	}
	return out
}

// joinSources joins the FROM sources left-to-right, consuming equi- and
// theta-join conjuncts from the WHERE clause, and applies the remaining
// predicate as a filter. It returns the joined, filtered relation.
func (e *env) joinSources(srcs []*source, where expr.Expr) (*bat.Relation, error) {
	conjuncts := splitAnd(where)
	cur := srcs[0].rel
	for _, nxt := range srcs[1:] {
		var lkeys, rkeys []*vector.Vector
		var thetaL, thetaR *vector.Vector
		var thetaOp relop.CmpOp
		rest := conjuncts[:0:0]
		for _, c := range conjuncts {
			b, ok := c.(*expr.Bin)
			if !ok || !b.Op.IsCmp() {
				rest = append(rest, c)
				continue
			}
			lc, lok := b.L.(*expr.Col)
			rc, rok := b.R.(*expr.Col)
			if !lok || !rok {
				rest = append(rest, c)
				continue
			}
			lv, rv := cur.ColByName(lc.Name), nxt.rel.ColByName(rc.Name)
			op := b.Op
			if lv == nil || rv == nil {
				// Try the swapped orientation.
				lv, rv = cur.ColByName(rc.Name), nxt.rel.ColByName(lc.Name)
				switch op {
				case expr.Lt:
					op = expr.Gt
				case expr.Le:
					op = expr.Ge
				case expr.Gt:
					op = expr.Lt
				case expr.Ge:
					op = expr.Le
				}
			}
			if lv == nil || rv == nil {
				rest = append(rest, c)
				continue
			}
			if op == expr.Eq {
				lkeys = append(lkeys, lv)
				rkeys = append(rkeys, rv)
			} else if thetaL == nil {
				thetaL, thetaR, thetaOp = lv, rv, op.CmpOp()
			} else {
				rest = append(rest, c)
			}
		}
		conjuncts = rest

		var lsel, rsel []int32
		switch {
		case len(lkeys) > 0:
			lsel, rsel = relop.HashJoinMulti(lkeys, rkeys)
		case thetaL != nil:
			lsel, rsel = relop.ThetaJoin(thetaL, thetaR, thetaOp)
			thetaL = nil
		default:
			// Cross product: rare, used only by tiny control inputs.
			ln, rn := cur.Len(), nxt.rel.Len()
			lsel = make([]int32, 0, ln*rn)
			rsel = make([]int32, 0, ln*rn)
			for i := 0; i < ln; i++ {
				for j := 0; j < rn; j++ {
					lsel = append(lsel, int32(i))
					rsel = append(rsel, int32(j))
				}
			}
		}
		cur = bat.Concat(cur.Gather(lsel), nxt.rel.Gather(rsel))
	}
	if len(conjuncts) > 0 {
		sel, err := e.evalPred(andAll(conjuncts), cur, nil)
		if err != nil {
			return nil, err
		}
		cur = cur.Gather(sel)
	}
	return cur, nil
}

// execBasketScan evaluates a basket expression: it selects the referenced
// tuples, removes them from their underlying baskets (the side effect that
// makes the window move) and returns the selected tuples projected through
// the expression's select list.
func (e *env) execBasketScan(be *sql.SelectStmt) (*bat.Relation, error) {
	if len(be.From) == 0 {
		return nil, fmt.Errorf("plan: basket expression needs a FROM clause")
	}
	srcs := make([]*source, len(be.From))
	for i := range be.From {
		s, err := e.evalTableRef(&be.From[i], i, true)
		if err != nil {
			return nil, err
		}
		srcs[i] = s
	}
	var j *bat.Relation
	var err error
	if len(srcs) == 1 {
		sel, perr := e.evalPred(be.Where, srcs[0].rel, nil)
		if perr != nil {
			return nil, perr
		}
		j = srcs[0].rel.Gather(sel)
	} else {
		j, err = e.joinSources(srcs, be.Where)
		if err != nil {
			return nil, err
		}
	}

	// ORDER BY applies to the full selection before TOP fixes the window.
	if len(be.OrderBy) > 0 {
		keys := make([]relop.SortKey, len(be.OrderBy))
		for i, oi := range be.OrderBy {
			v, err := e.evalExpr(oi.Expr, j)
			if err != nil {
				return nil, err
			}
			keys[i] = relop.SortKey{Col: v, Desc: oi.Desc}
		}
		perm := relop.Sort(keys, j.Len())
		j = j.Gather(perm)
	}
	if be.Top >= 0 && be.Top < j.Len() {
		j = j.Gather(relop.CandAll(be.Top))
	}

	// Delete the covered tuples from their baskets.
	for _, s := range srcs {
		if s.consume == nil {
			continue
		}
		posv := j.ColByName(s.posCol)
		if posv == nil {
			continue
		}
		covered := make([]int32, 0, posv.Len())
		seen := map[int32]bool{}
		for _, p := range posv.Ints() {
			if !seen[int32(p)] {
				seen[int32(p)] = true
				covered = append(covered, int32(p))
			}
		}
		sortAsc(covered)
		if e.onCovered != nil && e.onCovered(s.consume, covered) {
			continue
		}
		if len(covered) > 0 {
			s.consume.DeleteLocked(covered)
		}
	}

	out, err := e.selectTail(be, j)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// execSelect evaluates a full select statement (outer query semantics: no
// consumption except via nested basket expressions).
func (e *env) execSelect(sel *sql.SelectStmt) (*bat.Relation, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("plan: select needs a FROM clause")
	}
	srcs := make([]*source, len(sel.From))
	for i := range sel.From {
		s, err := e.evalTableRef(&sel.From[i], i, false)
		if err != nil {
			return nil, err
		}
		srcs[i] = s
	}
	var j *bat.Relation
	var err error
	if len(srcs) == 1 {
		selv, perr := e.evalPred(sel.Where, srcs[0].rel, nil)
		if perr != nil {
			return nil, perr
		}
		j = srcs[0].rel.Gather(selv)
	} else {
		j, err = e.joinSources(srcs, sel.Where)
		if err != nil {
			return nil, err
		}
	}

	aggregated := len(sel.GroupBy) > 0
	for _, it := range sel.Items {
		if it.Agg != nil {
			aggregated = true
		}
	}

	result, err := e.selectTail(sel, j)
	if err != nil {
		return nil, err
	}

	if sel.Union != nil {
		rhs, err := e.execSelect(sel.Union)
		if err != nil {
			return nil, err
		}
		if rhs.NumCols() != result.NumCols() {
			return nil, fmt.Errorf("plan: union branches have %d vs %d columns",
				result.NumCols(), rhs.NumCols())
		}
		combined := result.Clone()
		combined.AppendRelation(rhs.Rename(result.Names()))
		if !sel.UnionAll {
			cols := make([]*vector.Vector, combined.NumCols())
			for i := range cols {
				cols[i] = combined.Col(i)
			}
			combined = combined.Gather(relop.Distinct(cols, combined.Len()))
		}
		result = combined
	}

	aligned := !aggregated && !sel.Distinct && sel.Union == nil
	if len(sel.OrderBy) > 0 {
		base := result
		if aligned {
			base = j
		}
		keys := make([]relop.SortKey, len(sel.OrderBy))
		for i, oi := range sel.OrderBy {
			v, kerr := e.evalExpr(oi.Expr, base)
			if kerr != nil && aligned {
				// Order key may reference a select-list alias.
				v, kerr = e.evalExpr(oi.Expr, result)
			}
			if kerr != nil {
				return nil, kerr
			}
			keys[i] = relop.SortKey{Col: v, Desc: oi.Desc}
		}
		perm := relop.Sort(keys, result.Len())
		result = result.Gather(perm)
	}
	if sel.Top >= 0 && sel.Top < result.Len() {
		result = result.Gather(relop.CandAll(sel.Top))
	}
	return result, nil
}

// selectTail applies grouping/aggregation or projection, having and
// distinct to the joined, filtered relation.
func (e *env) selectTail(sel *sql.SelectStmt, j *bat.Relation) (*bat.Relation, error) {
	aggregated := len(sel.GroupBy) > 0
	for _, it := range sel.Items {
		if it.Agg != nil {
			aggregated = true
		}
	}
	var result *bat.Relation
	if aggregated {
		keys := make([]*vector.Vector, len(sel.GroupBy))
		for i, g := range sel.GroupBy {
			v, err := e.evalExpr(g, j)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		grouping := relop.GroupBy(keys, j.Len())
		names := make([]string, 0, len(sel.Items))
		cols := make([]*vector.Vector, 0, len(sel.Items))
		for i, it := range sel.Items {
			switch {
			case it.Star:
				return nil, fmt.Errorf("plan: * cannot be combined with aggregation")
			case it.Agg != nil && it.Agg.Distinct:
				if it.Agg.Kind != relop.AggCount {
					return nil, fmt.Errorf("plan: distinct is only supported for count()")
				}
				if it.Agg.Arg == nil {
					return nil, fmt.Errorf("plan: count(distinct *) is not meaningful")
				}
				v, err := e.evalExpr(it.Agg.Arg, j)
				if err != nil {
					return nil, err
				}
				cols = append(cols, countDistinct(v, grouping))
				names = append(names, it.ItemName(i))
			case it.Agg != nil:
				var arg *vector.Vector
				if !it.Agg.Star && it.Agg.Kind != relop.AggCount {
					v, err := e.evalExpr(it.Agg.Arg, j)
					if err != nil {
						return nil, err
					}
					arg = v
				} else if it.Agg.Star && it.Agg.Kind != relop.AggCount {
					// sum(*)/avg(*) etc. take the single visible column.
					var only *vector.Vector
					cnt := 0
					for c := 0; c < j.NumCols(); c++ {
						if !hiddenCol(j.Names()[c]) {
							only = j.Col(c)
							cnt++
						}
					}
					if cnt != 1 {
						return nil, fmt.Errorf("plan: %s(*) needs exactly one input column, have %d", it.Agg.Kind, cnt)
					}
					arg = only
				} else if it.Agg.Arg != nil {
					v, err := e.evalExpr(it.Agg.Arg, j)
					if err != nil {
						return nil, err
					}
					arg = v
				}
				cols = append(cols, relop.Aggregate(it.Agg.Kind, arg, grouping))
				names = append(names, it.ItemName(i))
			default:
				v, err := e.evalExpr(it.Expr, j)
				if err != nil {
					return nil, err
				}
				cols = append(cols, v.Gather(grouping.Repr))
				names = append(names, it.ItemName(i))
			}
		}
		result = bat.NewRelation(names, cols)
		if sel.Having != nil {
			hsel, err := e.evalPred(sel.Having, result, nil)
			if err != nil {
				return nil, err
			}
			result = result.Gather(hsel)
		}
	} else {
		names := make([]string, 0, len(sel.Items))
		cols := make([]*vector.Vector, 0, len(sel.Items))
		taken := map[string]bool{}
		for i, it := range sel.Items {
			if it.Star {
				for c := 0; c < j.NumCols(); c++ {
					qn := j.Names()[c]
					if hiddenCol(qn) {
						continue
					}
					if it.StarAlias != "" && !strings.HasPrefix(qn, it.StarAlias+".") {
						continue
					}
					name := bareName(qn)
					if taken[name] {
						name = qn // keep the qualifier on conflicts
					}
					taken[name] = true
					names = append(names, name)
					cols = append(cols, j.Col(c))
				}
				continue
			}
			v, err := e.evalExpr(it.Expr, j)
			if err != nil {
				return nil, err
			}
			name := it.ItemName(i)
			taken[name] = true
			names = append(names, name)
			cols = append(cols, v)
		}
		result = bat.NewRelation(names, cols)
		if sel.Having != nil {
			return nil, fmt.Errorf("plan: HAVING requires GROUP BY or aggregates")
		}
	}
	if sel.Distinct {
		allCols := make([]*vector.Vector, result.NumCols())
		for i := range allCols {
			allCols[i] = result.Col(i)
		}
		result = result.Gather(relop.Distinct(allCols, result.Len()))
	}
	return result, nil
}

// countDistinct computes count(distinct v) per group.
func countDistinct(v *vector.Vector, g *relop.Grouping) *vector.Vector {
	seen := map[[2]int64]bool{}
	counts := make([]int64, g.NumGroups())
	useInts := v.Kind() == vector.Int || v.Kind() == vector.Timestamp
	seenStr := map[string]bool{}
	for i, gid := range g.GroupIDs {
		if useInts {
			k := [2]int64{int64(gid), v.Ints()[i]}
			if !seen[k] {
				seen[k] = true
				counts[gid]++
			}
			continue
		}
		k := fmt.Sprintf("%d\x1f%s", gid, v.Get(i))
		if !seenStr[k] {
			seenStr[k] = true
			counts[gid]++
		}
	}
	return vector.FromInts(counts)
}

func sortAsc(s []int32) {
	if !slices.IsSorted(s) {
		slices.Sort(s)
	}
}
