package lroad

import (
	"testing"
	"time"

	"datacell/internal/bat"
	"datacell/internal/vector"
)

// feedNetwork pushes tuples into the network and fires all collections.
func feedNetwork(t *testing.T, net *Network, tuples []Tuple) {
	t.Helper()
	names, types := InputSchema()
	batch := bat.NewEmptyRelation(names, types)
	for _, tp := range tuples {
		batch.AppendRow(tp.Values()...)
	}
	if _, err := net.In.Append(batch); err != nil {
		t.Fatal(err)
	}
	for _, col := range net.Collections {
		for _, f := range col.Factories {
			if _, err := f.TryFire(); err != nil {
				t.Fatalf("%s: %v", f.Name(), err)
			}
		}
	}
}

func posReport(time, vid, spd, xway, lane, dir, pos int64) Tuple {
	return Tuple{Typ: TypePosition, Time: time, VID: vid, Spd: spd,
		XWay: xway, Lane: lane, Dir: dir, Seg: pos / SegFeet, Pos: pos}
}

func TestTollFor(t *testing.T) {
	cases := []struct {
		lav      float64
		cars     int
		accident bool
		want     int64
	}{
		{30, 60, false, 200}, // 2*(60-50)^2
		{30, 51, false, 2},
		{30, 50, false, 0},  // not enough cars
		{40, 100, false, 0}, // moving fine
		{10, 100, true, 0},  // accident zone
	}
	for _, c := range cases {
		if got := TollFor(c.lav, c.cars, c.accident); got != c.want {
			t.Errorf("TollFor(%v,%d,%v) = %d, want %d", c.lav, c.cars, c.accident, got, c.want)
		}
	}
}

func TestAccidentAffects(t *testing.T) {
	// Eastbound (dir 0): accident ahead means higher segment.
	if !AccidentAffects(0, 10, 14) || AccidentAffects(0, 10, 15) || AccidentAffects(0, 10, 9) {
		t.Error("eastbound range wrong")
	}
	// Westbound (dir 1): accident ahead means lower segment.
	if !AccidentAffects(1, 10, 6) || AccidentAffects(1, 10, 5) || AccidentAffects(1, 10, 11) {
		t.Error("westbound range wrong")
	}
}

func TestSplitRoutesByType(t *testing.T) {
	net, err := NewNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	feedNetwork(t, net, []Tuple{
		posReport(1, 1, 50, 0, 1, 0, 100),
		{Typ: TypeBalance, Time: 1, VID: 1, QID: 7},
		{Typ: TypeDailyExp, Time: 1, VID: 1, QID: 8, Day: 3},
	})
	// Balance and day queries were answered (baskets drained through).
	if net.BalOut.Len() != 1 {
		t.Errorf("balance answers = %d", net.BalOut.Len())
	}
	if net.DayOut.Len() != 1 {
		t.Errorf("day answers = %d", net.DayOut.Len())
	}
	// The position report produced a crossing (new car) and a toll alert.
	if net.TollAlerts.Len() != 1 {
		t.Errorf("toll alerts = %d", net.TollAlerts.Len())
	}
}

func TestStoppedCarAndAccidentDetection(t *testing.T) {
	net, err := NewNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	const pos = 10 * SegFeet
	// Two cars each report the same position four times, 30 s apart.
	for r := int64(0); r < 4; r++ {
		feedNetwork(t, net, []Tuple{
			posReport(r*30, 1, 0, 0, 2, 0, pos),
			posReport(r*30, 2, 0, 0, 2, 0, pos),
		})
	}
	tap := net.AccEventsTap.Snapshot()
	if tap.Len() != 1 {
		t.Fatalf("accident events = %d, want 1", tap.Len())
	}
	if tap.ColByName("active").Ints()[0] != 1 || tap.ColByName("seg").Ints()[0] != 10 {
		t.Errorf("event: %v", tap)
	}
	// One car moves away: accident clears.
	feedNetwork(t, net, []Tuple{posReport(120, 1, 40, 0, 2, 0, pos+4000)})
	tap = net.AccEventsTap.Snapshot()
	if tap.Len() != 2 || tap.ColByName("active").Ints()[1] != 0 {
		t.Fatalf("clear event missing: %v", tap)
	}
}

func TestAccidentAlertSuppressesToll(t *testing.T) {
	net, err := NewNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	const accPos = 20 * SegFeet
	// Create an accident at segment 20.
	for r := int64(0); r < 4; r++ {
		feedNetwork(t, net, []Tuple{
			posReport(r*30, 1, 0, 0, 2, 0, accPos),
			posReport(r*30, 2, 0, 0, 2, 0, accPos),
		})
	}
	net.TollAlerts.TakeAll()
	net.AccAlerts.TakeAll()
	// A third car crosses into segment 17, eastbound: accident at 20 is
	// three segments downstream -> accident alert, no toll.
	feedNetwork(t, net, []Tuple{posReport(130, 3, 55, 0, 1, 0, 17*SegFeet)})
	if net.AccAlerts.Len() != 1 {
		t.Errorf("accident alerts = %d", net.AccAlerts.Len())
	}
	if net.TollAlerts.Len() != 0 {
		t.Errorf("toll alerts = %d, want 0", net.TollAlerts.Len())
	}
	// A car on the other direction is unaffected.
	feedNetwork(t, net, []Tuple{posReport(131, 4, 55, 0, 1, 1, 17*SegFeet)})
	if net.TollAlerts.Len() != 1 {
		t.Errorf("other direction should get a toll alert")
	}
}

func TestStatisticsAndTollAssessment(t *testing.T) {
	net, err := NewNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Minute 0: 60 distinct slow cars in segment 5 -> congestion.
	var tuples []Tuple
	for v := int64(100); v < 160; v++ {
		tuples = append(tuples, posReport(10, v, 20, 0, 1, 0, 5*SegFeet+v))
	}
	feedNetwork(t, net, tuples)
	// Minute 1: the minute-0 bucket flushes; a car crosses into segment 5.
	feedNetwork(t, net, []Tuple{posReport(70, 999, 30, 0, 1, 0, 5*SegFeet+9)})
	// The crossing car pays 2*(60-50)^2 = 200.
	alerts := net.TollAlerts.Snapshot()
	var found bool
	vids := alerts.ColByName("vid").Ints()
	tolls := alerts.ColByName("toll").Ints()
	for i := range vids {
		if vids[i] == 999 {
			found = true
			if tolls[i] != 200 {
				t.Errorf("toll = %d, want 200", tolls[i])
			}
		}
	}
	if !found {
		t.Fatal("no toll alert for crossing car")
	}
	// The toll lands in the car's balance.
	bal := net.Balances.Snapshot()
	bvid := bal.ColByName("vid").Ints()
	bbal := bal.ColByName("bal").Ints()
	var got int64 = -1
	for i := range bvid {
		if bvid[i] == 999 {
			got = bbal[i]
		}
	}
	if got != 200 {
		t.Errorf("balance = %d, want 200", got)
	}
	// A balance request is answered with the accumulated balance.
	feedNetwork(t, net, []Tuple{{Typ: TypeBalance, Time: 80, VID: 999, QID: 42}})
	ans := net.BalOut.Snapshot()
	if ans.Len() != 1 || ans.ColByName("bal").Ints()[0] != 200 {
		t.Errorf("balance answer: %v", ans)
	}
}

func TestDailyExpenditureAnswers(t *testing.T) {
	net, err := NewNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	feedNetwork(t, net, []Tuple{{Typ: TypeDailyExp, Time: 5, VID: 1234, QID: 9, Day: 17}})
	ans := net.DayOut.Snapshot()
	if ans.Len() != 1 {
		t.Fatalf("answers = %d", ans.Len())
	}
	want := HistToll(1234%HistVIDBuckets, 17)
	if got := ans.ColByName("total").Ints()[0]; got != want {
		t.Errorf("total = %d, want %d", got, want)
	}
}

func TestGeneratorRampAndReports(t *testing.T) {
	cfg := GenConfig{SF: 1, Duration: 600, Seed: 3, XWays: 2}
	g := NewGenerator(cfg)
	var first, last int
	for !g.Done() {
		n := len(g.Tick())
		if g.Now() == 60 {
			first = n
		}
		last = n
	}
	if g.TotalTuples == 0 {
		t.Fatal("no tuples generated")
	}
	if last <= first {
		t.Errorf("arrival rate did not ramp: first=%d last=%d", first, last)
	}
	if g.TotalPos+g.TotalBalQ+g.TotalDayQ != g.TotalTuples {
		t.Errorf("tuple accounting: %d+%d+%d != %d",
			g.TotalPos, g.TotalBalQ, g.TotalDayQ, g.TotalTuples)
	}
}

func TestGeneratorSchedulesDetectableAccidents(t *testing.T) {
	cfg := GenConfig{SF: 0.5, Duration: 1800, Seed: 5, XWays: 1}
	g := NewGenerator(cfg)
	for !g.Done() {
		g.Tick()
	}
	accs := g.Accidents()
	if len(accs) == 0 {
		t.Fatal("no accidents scheduled in 30 minutes")
	}
	for _, a := range accs {
		if a.End-a.Start < ReportEvery*StopsToReport {
			t.Errorf("accident too short to detect: %+v", a)
		}
		if a.VID1 == a.VID2 {
			t.Errorf("accident with one car: %+v", a)
		}
	}
}

func TestEndToEndShortRunValidates(t *testing.T) {
	cfg := GenConfig{SF: 0.3, Duration: 1200, Seed: 7, XWays: 1}
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalIn == 0 {
		t.Fatal("no input processed")
	}
	v := Validate(res)
	for _, e := range v.Errors {
		t.Errorf("validation: %s", e)
	}
	if v.ExpectedAccidents > 0 && v.DetectedAccidents != v.ExpectedAccidents {
		t.Errorf("detected %d of %d accidents", v.DetectedAccidents, v.ExpectedAccidents)
	}
	// Deadlines: every collection activation stays far below the 5 s
	// (and Q6's 10 s) response-time goals.
	for name, maxp := range res.MaxProc {
		if maxp > 5*time.Second {
			t.Errorf("%s exceeded the 5 s deadline: %v", name, maxp)
		}
	}
	// Figures are derivable.
	if len(res.TuplesPerSec) != int(cfg.Duration) {
		t.Errorf("fig8 series length %d", len(res.TuplesPerSec))
	}
	if len(res.Q7AvgSeries()) == 0 {
		t.Error("fig9 series empty")
	}
	if len(res.LoadSeries("Q1")) == 0 {
		t.Error("fig7 series empty")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cfg := GenConfig{SF: 0.2, Duration: 600, Seed: 11, XWays: 1}
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Validate(res).OK() {
		t.Fatal("baseline run should validate")
	}
	// Corrupt a toll alert: conservation must fail.
	tolls := res.TollAlerts.ColByName("toll")
	tolls.Set(0, vector.NewInt(tolls.Ints()[0]+1))
	if Validate(res).OK() {
		t.Error("validator missed toll corruption")
	}
}

func TestValidateCatchesMissingAccidentEvent(t *testing.T) {
	cfg := GenConfig{SF: 0.2, Duration: 900, Seed: 13, XWays: 1}
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := Validate(res); !v.OK() || v.DetectedAccidents == 0 {
		t.Fatalf("baseline should validate with accidents: %+v", v.Errors)
	}
	// Drop all accident events: detection rule must fail.
	res.AccEvents.Clear()
	if Validate(res).OK() {
		t.Error("validator missed deleted accident events")
	}
}

func TestValidateCatchesLostAlerts(t *testing.T) {
	cfg := GenConfig{SF: 0.2, Duration: 600, Seed: 17, XWays: 1}
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Validate(res).OK() {
		t.Fatal("baseline should validate")
	}
	// Pretend one crossing was never answered.
	res.Crossings++
	if Validate(res).OK() {
		t.Error("validator missed a lost alert")
	}
}

func TestValidateCatchesWrongDailyAnswer(t *testing.T) {
	cfg := GenConfig{SF: 0.2, Duration: 600, Seed: 19, XWays: 1}
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.DayAnswers.Len() == 0 {
		t.Skip("no daily answers in this short run")
	}
	tot := res.DayAnswers.ColByName("total")
	tot.Set(0, vector.NewInt(tot.Ints()[0]+1))
	if Validate(res).OK() {
		t.Error("validator missed a wrong daily-expenditure answer")
	}
}

func TestHarnessSeries(t *testing.T) {
	pts := []LoadPoint{
		{BenchSec: 10, Proc: 2 * time.Millisecond},
		{BenchSec: 20, Proc: 4 * time.Millisecond},
		{BenchSec: 70, Proc: 6 * time.Millisecond},
	}
	out := avgByMinute(pts)
	if len(out) != 2 {
		t.Fatalf("series: %+v", out)
	}
	if out[0].Minute != 0 || out[0].Value != 3 {
		t.Errorf("minute 0: %+v", out[0])
	}
	if out[1].Minute != 1 || out[1].Value != 6 {
		t.Errorf("minute 1: %+v", out[1])
	}
	if avgByMinute(nil) != nil {
		t.Error("empty series should be nil")
	}
}
