package lroad

import (
	"fmt"
	"io"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/vector"
)

// LoadPoint is one activation of a query collection: the benchmark time at
// which it fired and the real processing time it took (the y-axis of the
// paper's Figure 7).
type LoadPoint struct {
	BenchSec int64
	Proc     time.Duration
}

// MinutePoint is a per-benchmark-minute aggregate.
type MinutePoint struct {
	Minute int64
	Value  float64
}

// RunResult holds everything the Figure 7/8/9 harness measures plus the
// raw outputs needed by the validator.
type RunResult struct {
	Config GenConfig

	// TuplesPerSec is the input arrival series (Figure 8).
	TuplesPerSec []int
	// TotalIn is the cumulative input count (Figure 7a).
	TotalIn int64
	// Load maps collection name to its activation series (Figure 7b-h).
	Load map[string][]LoadPoint
	// MaxProc is the worst per-activation processing time per collection —
	// the response-deadline check (5 s for Q4/Q5/Q7, 10 s for Q6).
	MaxProc map[string]time.Duration

	// Outputs drained from the network, for validation.
	TollAlerts, AccAlerts, AccEvents, BalAnswers, DayAnswers *bat.Relation
	Crossings                                                int64
	FinalBalances                                            *bat.Relation

	// Ground truth from the generator.
	Accidents                      []Accident
	TotalPos, TotalBalQ, TotalDayQ int64
}

// Q7AvgSeries returns Figure 9: the average Q7 processing time per
// benchmark minute.
func (r *RunResult) Q7AvgSeries() []MinutePoint { return avgByMinute(r.Load["Q7"]) }

// LoadSeries returns the average processing time per benchmark minute for
// one collection (the per-collection panels of Figure 7).
func (r *RunResult) LoadSeries(collection string) []MinutePoint {
	return avgByMinute(r.Load[collection])
}

func avgByMinute(points []LoadPoint) []MinutePoint {
	if len(points) == 0 {
		return nil
	}
	sums := map[int64]time.Duration{}
	counts := map[int64]int{}
	maxMin := int64(0)
	for _, p := range points {
		m := p.BenchSec / 60
		sums[m] += p.Proc
		counts[m]++
		if m > maxMin {
			maxMin = m
		}
	}
	var out []MinutePoint
	for m := int64(0); m <= maxMin; m++ {
		if counts[m] == 0 {
			continue
		}
		avg := sums[m] / time.Duration(counts[m])
		out = append(out, MinutePoint{Minute: m, Value: float64(avg.Microseconds()) / 1000})
	}
	return out
}

// Run executes the Linear Road benchmark in simulated time: tuples are fed
// second by second at the benchmark's arrival rate, and each collection's
// factories fire synchronously in pipeline order with their real
// processing time recorded against the benchmark clock. Feeding by
// timestamp preserves the workload's load shape without a three-hour
// wall-clock run. progress, when non-nil, receives a line every ten
// benchmark minutes.
func Run(cfg GenConfig, progress io.Writer) (*RunResult, error) {
	gen := NewGenerator(cfg)
	net, err := NewNetwork(nil)
	if err != nil {
		return nil, err
	}
	res := &RunResult{
		Config:     cfg,
		Load:       map[string][]LoadPoint{},
		MaxProc:    map[string]time.Duration{},
		TollAlerts: intRelation("time", "vid", "toll", "lav100"),
		AccAlerts:  intRelation("time", "vid", "seg"),
		AccEvents:  intRelation("time", "xway", "dir", "seg", "active"),
		BalAnswers: intRelation("time", "qid", "vid", "bal"),
		DayAnswers: intRelation("time", "qid", "vid", "day", "total"),
	}

	names, types := InputSchema()
	for !gen.Done() {
		sec := gen.Now()
		tuples := gen.Tick()
		res.TuplesPerSec = append(res.TuplesPerSec, len(tuples))
		res.TotalIn += int64(len(tuples))
		if len(tuples) > 0 {
			batch := bat.NewEmptyRelation(names, types)
			for _, t := range tuples {
				batch.AppendRow(t.Values()...)
			}
			if _, err := net.In.Append(batch); err != nil {
				return nil, err
			}
		}
		// Fire the collections in pipeline order; repeated firing within
		// a collection drains multi-step feedback (none in this wiring).
		for _, col := range net.Collections {
			start := time.Now()
			for _, f := range col.Factories {
				if _, err := f.TryFire(); err != nil {
					return nil, fmt.Errorf("lroad: %s: %w", f.Name(), err)
				}
			}
			proc := time.Since(start)
			res.Load[col.Name] = append(res.Load[col.Name], LoadPoint{BenchSec: sec, Proc: proc})
			if proc > res.MaxProc[col.Name] {
				res.MaxProc[col.Name] = proc
			}
		}
		drainInto(res.TollAlerts, net.TollAlerts)
		drainInto(res.AccAlerts, net.AccAlerts)
		drainInto(res.BalAnswers, net.BalOut)
		drainInto(res.DayAnswers, net.DayOut)

		if progress != nil && sec%600 == 0 {
			fmt.Fprintf(progress, "minute %3d: %6d tuples/s, total %9d\n",
				sec/60, len(tuples), res.TotalIn)
		}
	}
	res.Accidents = gen.Accidents()
	res.TotalPos, res.TotalBalQ, res.TotalDayQ = gen.TotalPos, gen.TotalBalQ, gen.TotalDayQ
	res.FinalBalances = net.Balances.Snapshot()
	st := net.Crossings.Stats()
	res.Crossings = st.Consumed + int64(net.Crossings.Len())
	drainInto(res.AccEvents, net.AccEventsTap)
	return res, nil
}

// drainInto moves all tuples of src into the accumulator dst, dropping the
// implicit arrival-timestamp column.
func drainInto(dst *bat.Relation, src *basket.Basket) {
	rel := src.TakeAll()
	if rel.Len() == 0 {
		return
	}
	k := dst.NumCols()
	cols := make([]*vector.Vector, k)
	for i := 0; i < k; i++ {
		cols[i] = rel.Col(i)
	}
	dst.AppendRelation(bat.NewRelation(dst.Names(), cols))
}
