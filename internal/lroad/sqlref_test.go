package lroad

import (
	"testing"
)

func TestSQLReferenceRouting(t *testing.T) {
	ref, err := NewSQLReference()
	if err != nil {
		t.Fatal(err)
	}
	err = ref.Feed([]Tuple{
		posReportT(1, 1, 50, 0, 1, 0, 100),
		{Typ: TypeBalance, Time: 1, VID: 1, QID: 7},
		{Typ: TypeDailyExp, Time: 1, VID: 1, QID: 8, Day: 3},
		posReportT(2, 2, 60, 0, 1, 0, 6000),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Split routed the two historical queries; position reports were
	// consumed by the statistics pipeline.
	if got := ref.Cat.Basket("accq").Len(); got != 1 {
		t.Errorf("accq = %d", got)
	}
	if got := ref.Cat.Basket("segstats").Len(); got != 2 {
		t.Errorf("segstats = %d", got)
	}
}

func TestSQLReferenceDailyExpenditureMatchesNative(t *testing.T) {
	ref, err := NewSQLReference()
	if err != nil {
		t.Fatal(err)
	}
	native, err := NewNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	tuples := []Tuple{
		{Typ: TypeDailyExp, Time: 5, VID: 1234, QID: 9, Day: 17},
		{Typ: TypeDailyExp, Time: 6, VID: 42, QID: 10, Day: 3},
		{Typ: TypeDailyExp, Time: 7, VID: 999999, QID: 11, Day: 68},
	}
	if err := ref.Feed(tuples); err != nil {
		t.Fatal(err)
	}
	feedNative(t, native, tuples)

	sqlOut := ref.Cat.Basket("dayout").Snapshot()
	natOut := native.DayOut.Snapshot()
	if sqlOut.Len() != len(tuples) || natOut.Len() != len(tuples) {
		t.Fatalf("answers: sql=%d native=%d", sqlOut.Len(), natOut.Len())
	}
	// Both formulations must produce identical totals per request.
	sqlByQID := map[int64]int64{}
	for i := 0; i < sqlOut.Len(); i++ {
		sqlByQID[sqlOut.ColByName("qid").Ints()[i]] = sqlOut.ColByName("total").Ints()[i]
	}
	for i := 0; i < natOut.Len(); i++ {
		qid := natOut.ColByName("qid").Ints()[i]
		if natOut.ColByName("total").Ints()[i] != sqlByQID[qid] {
			t.Errorf("qid %d: native %d vs sql %d", qid,
				natOut.ColByName("total").Ints()[i], sqlByQID[qid])
		}
	}
}

func TestSQLReferenceSegstatsAggregation(t *testing.T) {
	ref, err := NewSQLReference()
	if err != nil {
		t.Fatal(err)
	}
	// Three cars in the same segment and minute, one duplicated vid.
	err = ref.Feed([]Tuple{
		posReportT(10, 1, 30, 0, 1, 0, 5*SegFeet),
		posReportT(20, 1, 50, 0, 1, 0, 5*SegFeet),
		posReportT(30, 2, 40, 0, 1, 0, 5*SegFeet),
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := ref.Cat.Basket("segstats").Snapshot()
	if stats.Len() != 1 {
		t.Fatalf("stats rows = %d", stats.Len())
	}
	if got := stats.ColByName("cars").Ints()[0]; got != 2 {
		t.Errorf("distinct cars = %d, want 2", got)
	}
	if got := stats.ColByName("avgspd").Floats()[0]; got != 40 {
		t.Errorf("avg speed = %v, want 40", got)
	}
}

// posReportT builds a position report (test helper shared with the native
// network tests, which use posReport with a different argument order).
func posReportT(time, vid, spd, xway, lane, dir, pos int64) Tuple {
	return Tuple{Typ: TypePosition, Time: time, VID: vid, Spd: spd,
		XWay: xway, Lane: lane, Dir: dir, Seg: pos / SegFeet, Pos: pos}
}

// feedNative pushes tuples through the hand-wired network (mirrors the
// helper in lroad_test.go but without requiring the harness).
func feedNative(t *testing.T, net *Network, tuples []Tuple) {
	t.Helper()
	names, _ := InputSchema()
	batch := intRelation(names...)
	for _, tp := range tuples {
		batch.AppendRow(tp.Values()...)
	}
	if _, err := net.In.Append(batch); err != nil {
		t.Fatal(err)
	}
	for _, col := range net.Collections {
		for _, f := range col.Factories {
			if _, err := f.TryFire(); err != nil {
				t.Fatalf("%s: %v", f.Name(), err)
			}
		}
	}
}
