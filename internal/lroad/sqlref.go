package lroad

import (
	"fmt"

	"datacell/internal/core"
	"datacell/internal/plan"
	"datacell/internal/sql"
	"datacell/internal/vector"
)

// SQLReference builds the declarative counterpart of the hand-wired query
// network: the benchmark's routing, statistics and historical-query logic
// expressed purely in DataCell SQL, compiled through the ordinary planner.
// The paper implemented all 38 Linear Road queries this way ("completely
// in SQL and by exploiting the power of a modern DBMS"); the hand-wired
// network in queries.go is the performance path, and this reference
// documents — and tests — the equivalence of the two formulations for the
// stateless collections.
type SQLReference struct {
	Cat *plan.Catalog
	Sch *core.Scheduler
}

// sqlRefStatements is the DataCell SQL program. Stateful collections
// (stopped-car runs, accident bookkeeping, 5-minute LAV windows, balance
// accumulation) need factory state and are covered by the native network;
// everything declarative lives here.
var sqlRefStatements = []string{
	// Input stream and routing targets.
	`create basket input (typ int, time int, vid int, spd int, xway int,
		lane int, dir int, seg int, pos int, qid int, day int)`,
	`create basket pos (time int, vid int, spd int, xway int, lane int,
		dir int, seg int, pos int)`,
	`create basket accq (time int, vid int, qid int)`,
	`create basket dayq (time int, vid int, qid int, day int)`,

	// Collection Q5 — filter by type: one with-block split routes the
	// stream, replicating the paper's Figure 6 edge from the input to the
	// three pipelines.
	`with a as [select * from input]
	 begin
		insert into pos  select a.time, a.vid, a.spd, a.xway, a.lane,
			a.dir, a.seg, a.pos from a where a.typ = 0;
		insert into accq select a.time, a.vid, a.qid from a where a.typ = 2;
		insert into dayq select a.time, a.vid, a.qid, a.day from a where a.typ = 3;
	 end`,

	// Collection Q3 (declarative core) — per-minute segment statistics
	// with grouped aggregation and distinct car counts.
	`insert into segstats
	 select p.time / 60 as minute, p.xway, p.dir, p.seg,
			avg(p.spd) as avgspd, count(distinct p.vid) as cars
	 from [select * from pos] p
	 group by p.time / 60, p.xway, p.dir, p.seg`,

	// Collection Q6 — daily expenditure answers: a relational join of the
	// requests against the historical toll table. The derived table maps
	// vehicles to history buckets so the join runs on equi-keys.
	`insert into dayout
	 select r.time, r.qid, r.vid, r.day, h.toll
	 from (select d.time, d.qid, d.vid, d.day, d.vid % 1000 as bucket
		   from [select * from dayq] d) r,
		  hist h
	 where r.bucket = h.bucket and r.day = h.day`,
}

// NewSQLReference compiles the SQL program against a fresh catalog,
// pre-loading the historical table, and registers the resulting factories.
func NewSQLReference() (*SQLReference, error) {
	cat := plan.NewCatalog()
	sch := core.NewScheduler()

	// Historical table, identical to the native network's.
	hist, err := cat.CreateBasket("hist",
		[]string{"bucket", "day", "toll"},
		[]vector.Type{vector.Int, vector.Int, vector.Int}, plan.KindTable)
	if err != nil {
		return nil, err
	}
	rows := intRelation("bucket", "day", "toll")
	for b := int64(0); b < HistVIDBuckets; b++ {
		for d := int64(1); d < NumDays; d++ {
			rows.AppendRow(vector.NewInt(b), vector.NewInt(d), vector.NewInt(HistToll(b, d)))
		}
	}
	if _, err := hist.Append(rows); err != nil {
		return nil, err
	}
	if _, err := cat.CreateBasket("segstats",
		[]string{"minute", "xway", "dir", "seg", "avgspd", "cars"},
		[]vector.Type{vector.Int, vector.Int, vector.Int, vector.Int, vector.Float, vector.Int},
		plan.KindBasket); err != nil {
		return nil, err
	}
	if _, err := cat.CreateBasket("dayout",
		[]string{"time", "qid", "vid", "day", "total"},
		[]vector.Type{vector.Int, vector.Int, vector.Int, vector.Int, vector.Int},
		plan.KindBasket); err != nil {
		return nil, err
	}

	for i, src := range sqlRefStatements {
		stmt, err := sql.ParseOne(src)
		if err != nil {
			return nil, fmt.Errorf("lroad: sql reference statement %d: %w", i, err)
		}
		c, err := plan.Compile(cat, stmt, fmt.Sprintf("lrsql%d", i))
		if err != nil {
			return nil, fmt.Errorf("lroad: sql reference statement %d: %w", i, err)
		}
		if c.Factory != nil {
			if err := sch.Register(c.Factory); err != nil {
				return nil, err
			}
		}
	}
	return &SQLReference{Cat: cat, Sch: sch}, nil
}

// Feed appends tuples to the SQL pipeline's input and drains the network.
func (r *SQLReference) Feed(tuples []Tuple) error {
	in := r.Cat.Basket("input")
	names, types := InputSchema()
	_ = types
	batch := intRelation(names...)
	for _, t := range tuples {
		batch.AppendRow(t.Values()...)
	}
	if _, err := in.Append(batch); err != nil {
		return err
	}
	_, err := r.Sch.RunUntilQuiescent(10_000)
	return err
}
