// Package lroad implements the Linear Road stream benchmark on the
// DataCell: a synthetic traffic generator with ground-truth accident
// scheduling, the seven continuous-query collections of the paper's
// Figure 6 wired as factories over baskets, a result validator, and the
// measurement harness that regenerates Figures 7, 8 and 9.
//
// Linear Road simulates cars on multi-lane expressways. The system must
// detect accidents (two or more cars stopped at the same position for four
// consecutive position reports), compute per-segment statistics (latest
// average velocity and car counts), assess variable tolls on segment
// crossings, alert cars of accidents ahead, and answer account-balance and
// daily-expenditure requests against accumulated and historical data —
// all within per-query response deadlines (5 s, 10 s for the daily
// expenditure query).
package lroad

import (
	"datacell/internal/vector"
)

// Report types of the Linear Road input schema.
const (
	TypePosition = 0 // position report, every 30 s per car
	TypeBalance  = 2 // account balance request
	TypeDailyExp = 3 // daily expenditure request
)

// Road geometry and timing constants (Linear Road specification values).
const (
	SegFeet        = 5280 // one segment is one mile
	NumSegs        = 100  // segments per expressway
	ReportEvery    = 30   // seconds between a car's position reports
	StopsToReport  = 4    // consecutive identical positions that mean "stopped"
	LavWindowMin   = 5    // minutes in the latest-average-velocity window
	TollLavLimit   = 40   // no toll if the segment moves at >= 40 mph
	TollCarLimit   = 50   // no toll if the previous minute had <= 50 cars
	AccAlertRange  = 4    // downstream segments that receive accident alerts
	HistVIDBuckets = 1000 // vid hash buckets of the historical toll table
	NumDays        = 70   // history days (day 1..69; 0 is today)
)

// TollFor computes the variable toll charged on a segment crossing given
// the segment's latest average velocity (mph) and the number of distinct
// cars seen in the previous minute. Zero means no toll. Shared by the
// query network and the validator so both implement one rule.
func TollFor(lav float64, cars int, accident bool) int64 {
	if accident || lav >= TollLavLimit || cars <= TollCarLimit {
		return 0
	}
	d := int64(cars - TollCarLimit)
	return 2 * d * d
}

// AccidentAffects reports whether a car entering segment carSeg travelling
// in direction dir must be alerted about (and exempted from tolls by) an
// accident in segment accSeg: the accident lies at most AccAlertRange
// segments downstream of the car.
func AccidentAffects(dir, carSeg, accSeg int64) bool {
	if dir == 0 {
		return accSeg >= carSeg && accSeg-carSeg <= AccAlertRange
	}
	return accSeg <= carSeg && carSeg-accSeg <= AccAlertRange
}

// HistToll is the deterministic historical toll of a (vid bucket, day)
// pair. The paper loads the benchmark's pre-generated ten weeks of history
// into relational tables; we generate the same information from a fixed
// function into a (bucket, day, toll) table so the daily-expenditure query
// still runs as a real relational join.
func HistToll(vidBucket, day int64) int64 {
	return (vidBucket*31+day*7)%90 + 10
}

// Tuple is one Linear Road input event in struct form.
type Tuple struct {
	Typ  int64 // TypePosition, TypeBalance or TypeDailyExp
	Time int64 // benchmark seconds since start
	VID  int64
	Spd  int64 // mph
	XWay int64
	Lane int64 // 0..4
	Dir  int64 // 0 east, 1 west
	Seg  int64 // 0..99
	Pos  int64 // feet from expressway start
	QID  int64 // query id for type 2/3
	Day  int64 // day for type 3 (1..69)
}

// InputSchema returns the column names and types of the input stream.
func InputSchema() ([]string, []vector.Type) {
	names := []string{"typ", "time", "vid", "spd", "xway", "lane", "dir", "seg", "pos", "qid", "day"}
	types := make([]vector.Type, len(names))
	for i := range types {
		types[i] = vector.Int
	}
	return names, types
}

// Values renders the tuple in input-schema column order.
func (t Tuple) Values() []vector.Value {
	return []vector.Value{
		vector.NewInt(t.Typ), vector.NewInt(t.Time), vector.NewInt(t.VID),
		vector.NewInt(t.Spd), vector.NewInt(t.XWay), vector.NewInt(t.Lane),
		vector.NewInt(t.Dir), vector.NewInt(t.Seg), vector.NewInt(t.Pos),
		vector.NewInt(t.QID), vector.NewInt(t.Day),
	}
}

// Accident is a ground-truth accident scheduled by the generator.
type Accident struct {
	XWay, Dir, Pos, Seg int64
	Start, End          int64 // benchmark seconds
	VID1, VID2          int64
}
