package lroad

import (
	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/core"
	"datacell/internal/relop"
	"datacell/internal/vector"
)

// Collection is one of the benchmark's seven query collections: a named
// group of logically distinct continuous queries realised as one factory,
// exactly as the paper's baseline implementation ("as a first step each
// collection of queries becomes a single factory").
type Collection struct {
	Name      string
	Queries   int // number of logical queries the collection implements
	Factories []*core.Factory
}

// Network is the full Linear Road query network of Figure 6: the input
// stream fans into seven query collections connected by intermediate
// baskets, with four output collections producing the benchmark's answers.
type Network struct {
	In *basket.Basket

	// Intermediate baskets.
	Pos, Pos2, AccQ, DayQ       *basket.Basket
	Stopped, AccEvents          *basket.Basket
	Crossings, SegStats, Assess *basket.Basket

	// Output baskets.
	TollAlerts, AccAlerts, BalOut, DayOut *basket.Basket
	// AccEventsTap mirrors accident status changes for the validator;
	// the tolls collection consumes the primary AccEvents stream.
	AccEventsTap *basket.Basket

	// Persistent tables.
	Hist, Balances *basket.Basket

	Collections []Collection
}

func intBasket(name string, cols ...string) *basket.Basket {
	types := make([]vector.Type, len(cols))
	for i := range types {
		types[i] = vector.Int
	}
	return basket.New(name, cols, types)
}

func intRelation(cols ...string) *bat.Relation {
	types := make([]vector.Type, len(cols))
	for i := range types {
		types[i] = vector.Int
	}
	return bat.NewEmptyRelation(cols, types)
}

// NewNetwork builds the Linear Road query network and registers every
// factory with the scheduler. The historical toll table is pre-loaded,
// mirroring the benchmark's requirement to query ten weeks of past data.
func NewNetwork(sch *core.Scheduler) (*Network, error) {
	names, types := InputSchema()
	n := &Network{
		In:           basket.New("lr.in", names, types),
		Pos:          intBasket("lr.pos", "time", "vid", "spd", "xway", "lane", "dir", "seg", "pos"),
		Pos2:         intBasket("lr.pos2", "time", "vid", "spd", "xway", "lane", "dir", "seg", "pos"),
		AccQ:         intBasket("lr.accq", "time", "vid", "qid"),
		DayQ:         intBasket("lr.dayq", "time", "vid", "qid", "day"),
		Stopped:      intBasket("lr.stopped", "time", "vid", "xway", "dir", "pos", "seg", "flag"),
		AccEvents:    intBasket("lr.accevents", "time", "xway", "dir", "seg", "active"),
		AccEventsTap: intBasket("lr.acceventstap", "time", "xway", "dir", "seg", "active"),
		Crossings:    intBasket("lr.crossings", "time", "vid", "spd", "xway", "dir", "seg"),
		SegStats:     intBasket("lr.segstats", "minute", "xway", "dir", "seg", "lav100", "cars"),
		Assess:       intBasket("lr.assess", "time", "vid", "day", "toll"),
		TollAlerts:   intBasket("lr.tollalerts", "time", "vid", "toll", "lav100"),
		AccAlerts:    intBasket("lr.accalerts", "time", "vid", "seg"),
		BalOut:       intBasket("lr.balout", "time", "qid", "vid", "bal"),
		DayOut:       intBasket("lr.dayout", "time", "qid", "vid", "day", "total"),
		Hist:         intBasket("lr.hist", "bucket", "day", "toll"),
		Balances:     intBasket("lr.balances", "vid", "bal"),
	}
	// Pre-load the historical toll table: one row per (vid bucket, day).
	hist := intRelation("bucket", "day", "toll")
	for b := int64(0); b < HistVIDBuckets; b++ {
		for d := int64(1); d < NumDays; d++ {
			hist.AppendRow(vector.NewInt(b), vector.NewInt(d), vector.NewInt(HistToll(b, d)))
		}
	}
	if _, err := n.Hist.Append(hist); err != nil {
		return nil, err
	}

	build := []func() (Collection, error){
		n.buildSplit, n.buildStoppedCars, n.buildAccidents,
		n.buildStatistics, n.buildTolls, n.buildDailyExpenditure,
		n.buildAccountBalance,
	}
	for _, b := range build {
		col, err := b()
		if err != nil {
			return nil, err
		}
		n.Collections = append(n.Collections, col)
	}
	if sch != nil {
		for _, c := range n.Collections {
			for _, f := range c.Factories {
				if err := sch.Register(f); err != nil {
					return nil, err
				}
			}
		}
	}
	return n, nil
}

// buildSplit is collection Q5 of Figure 6 ("Filter by type"): it routes
// the raw input stream by tuple type into the position-report pipeline and
// the two historical-query pipelines. Equivalent DataCell SQL is a
// with-block split:
//
//	with A as [select * from input] begin
//	  insert into pos  select time,vid,spd,xway,lane,dir,seg,pos from A where A.typ = 0;
//	  insert into accq select time,vid,qid from A where A.typ = 2;
//	  insert into dayq select time,vid,qid,day from A where A.typ = 3;
//	end
func (n *Network) buildSplit() (Collection, error) {
	f, err := core.NewFactory("lr.q5.split",
		[]*basket.Basket{n.In},
		[]*basket.Basket{n.Pos, n.AccQ, n.DayQ},
		func(ctx *core.Context) error {
			rel := ctx.In(0).TakeAllLocked()
			if rel.Len() == 0 {
				return nil
			}
			typ := rel.ColByName("typ")

			posSel := relop.SelectPred(typ, relop.EQ, vector.NewInt(TypePosition), nil)
			if len(posSel) > 0 {
				out, err := rel.Gather(posSel).Project("time", "vid", "spd", "xway", "lane", "dir", "seg", "pos")
				if err != nil {
					return err
				}
				if _, err := ctx.Out(0).AppendLocked(out); err != nil {
					return err
				}
			}
			accSel := relop.SelectPred(typ, relop.EQ, vector.NewInt(TypeBalance), nil)
			if len(accSel) > 0 {
				out, err := rel.Gather(accSel).Project("time", "vid", "qid")
				if err != nil {
					return err
				}
				if _, err := ctx.Out(1).AppendLocked(out); err != nil {
					return err
				}
			}
			daySel := relop.SelectPred(typ, relop.EQ, vector.NewInt(TypeDailyExp), nil)
			if len(daySel) > 0 {
				out, err := rel.Gather(daySel).Project("time", "vid", "qid", "day")
				if err != nil {
					return err
				}
				if _, err := ctx.Out(2).AppendLocked(out); err != nil {
					return err
				}
			}
			return nil
		})
	return Collection{Name: "Q5", Queries: 2, Factories: []*core.Factory{f}}, err
}

// carState is the per-vehicle history kept by the stopped-cars collection
// — factory state saved between firings.
type carState struct {
	xway, lane, dir, pos, seg int64
	sameCount                 int64
	stopped                   bool
	known                     bool
}

// buildStoppedCars is collection Q1 ("Stopped Cars", 3 logical queries):
// (1) detect cars reporting the same position four consecutive times and
// emit stopped/resumed transitions, (2) detect segment crossings for toll
// assessment, (3) forward position reports to the statistics pipeline.
func (n *Network) buildStoppedCars() (Collection, error) {
	cars := map[int64]*carState{}
	f, err := core.NewFactory("lr.q1.stopped",
		[]*basket.Basket{n.Pos},
		[]*basket.Basket{n.Stopped, n.Crossings, n.Pos2},
		func(ctx *core.Context) error {
			rel := ctx.In(0).TakeAllLocked()
			if rel.Len() == 0 {
				return nil
			}
			time := rel.ColByName("time").Ints()
			vid := rel.ColByName("vid").Ints()
			spd := rel.ColByName("spd").Ints()
			xway := rel.ColByName("xway").Ints()
			lane := rel.ColByName("lane").Ints()
			dir := rel.ColByName("dir").Ints()
			seg := rel.ColByName("seg").Ints()
			pos := rel.ColByName("pos").Ints()

			stoppedOut := intRelation("time", "vid", "xway", "dir", "pos", "seg", "flag")
			crossOut := intRelation("time", "vid", "spd", "xway", "dir", "seg")
			for i := range vid {
				c := cars[vid[i]]
				if c == nil {
					c = &carState{}
					cars[vid[i]] = c
				}
				crossed := !c.known || c.seg != seg[i] || c.xway != xway[i] || c.dir != dir[i]
				same := c.known && c.xway == xway[i] && c.lane == lane[i] && c.dir == dir[i] && c.pos == pos[i]
				if same {
					c.sameCount++
				} else {
					if c.stopped {
						// The car moved: emit the resume transition.
						stoppedOut.AppendRow(
							vector.NewInt(time[i]), vector.NewInt(vid[i]),
							vector.NewInt(c.xway), vector.NewInt(c.dir),
							vector.NewInt(c.pos), vector.NewInt(c.pos/SegFeet),
							vector.NewInt(0),
						)
						c.stopped = false
					}
					c.sameCount = 1
				}
				if c.sameCount >= StopsToReport && !c.stopped {
					c.stopped = true
					stoppedOut.AppendRow(
						vector.NewInt(time[i]), vector.NewInt(vid[i]),
						vector.NewInt(xway[i]), vector.NewInt(dir[i]),
						vector.NewInt(pos[i]), vector.NewInt(seg[i]),
						vector.NewInt(1),
					)
				}
				if crossed {
					crossOut.AppendRow(
						vector.NewInt(time[i]), vector.NewInt(vid[i]), vector.NewInt(spd[i]),
						vector.NewInt(xway[i]), vector.NewInt(dir[i]), vector.NewInt(seg[i]),
					)
				}
				c.xway, c.lane, c.dir, c.pos, c.seg = xway[i], lane[i], dir[i], pos[i], seg[i]
				c.known = true
			}
			if stoppedOut.Len() > 0 {
				if _, err := ctx.Out(0).AppendLocked(stoppedOut); err != nil {
					return err
				}
			}
			if crossOut.Len() > 0 {
				if _, err := ctx.Out(1).AppendLocked(crossOut); err != nil {
					return err
				}
			}
			_, err := ctx.Out(2).AppendLocked(rel)
			return err
		})
	return Collection{Name: "Q1", Queries: 3, Factories: []*core.Factory{f}}, err
}

// buildAccidents is collection Q2 ("Create Accidents", 5 logical
// queries): it groups stopped-car events by (xway, dir, pos) and raises an
// accident when two or more distinct cars are stopped at one position,
// clearing it when the population drops below two.
func (n *Network) buildAccidents() (Collection, error) {
	type posKey struct{ xway, dir, pos int64 }
	stoppedAt := map[posKey]map[int64]bool{}
	active := map[posKey]bool{}
	f, err := core.NewFactory("lr.q2.accidents",
		[]*basket.Basket{n.Stopped},
		[]*basket.Basket{n.AccEvents, n.AccEventsTap},
		func(ctx *core.Context) error {
			rel := ctx.In(0).TakeAllLocked()
			if rel.Len() == 0 {
				return nil
			}
			time := rel.ColByName("time").Ints()
			vid := rel.ColByName("vid").Ints()
			xway := rel.ColByName("xway").Ints()
			dir := rel.ColByName("dir").Ints()
			pos := rel.ColByName("pos").Ints()
			seg := rel.ColByName("seg").Ints()
			flag := rel.ColByName("flag").Ints()

			out := intRelation("time", "xway", "dir", "seg", "active")
			for i := range vid {
				k := posKey{xway[i], dir[i], pos[i]}
				set := stoppedAt[k]
				if set == nil {
					set = map[int64]bool{}
					stoppedAt[k] = set
				}
				if flag[i] == 1 {
					set[vid[i]] = true
					if len(set) >= 2 && !active[k] {
						active[k] = true
						out.AppendRow(vector.NewInt(time[i]), vector.NewInt(xway[i]),
							vector.NewInt(dir[i]), vector.NewInt(seg[i]), vector.NewInt(1))
					}
				} else {
					delete(set, vid[i])
					if len(set) < 2 && active[k] {
						delete(active, k)
						out.AppendRow(vector.NewInt(time[i]), vector.NewInt(xway[i]),
							vector.NewInt(dir[i]), vector.NewInt(seg[i]), vector.NewInt(0))
					}
					if len(set) == 0 {
						delete(stoppedAt, k)
					}
				}
			}
			if out.Len() > 0 {
				if _, err := ctx.Out(0).AppendLocked(out); err != nil {
					return err
				}
				if _, err := ctx.Out(1).AppendLocked(out); err != nil {
					return err
				}
			}
			return nil
		})
	return Collection{Name: "Q2", Queries: 5, Factories: []*core.Factory{f}}, err
}

// buildStatistics is collection Q3 ("Calculate Speed / Calculate # of
// Cars / Update Statistics", 5 logical queries): per completed minute and
// (xway, dir, seg) it computes the average speed, folds it into the
// 5-minute latest-average-velocity window, counts distinct cars, and
// publishes one statistics row. Grouping runs on the kernel's grouped
// aggregation operators.
func (n *Network) buildStatistics() (Collection, error) {
	type segKey struct{ xway, dir, seg int64 }
	type bucket struct {
		spdSum, n int64
		vids      map[int64]bool
	}
	curMinute := int64(-1)
	buckets := map[segKey]*bucket{}
	lavHist := map[segKey][]float64{}

	flush := func(out *bat.Relation) {
		for k, b := range buckets {
			avg := float64(b.spdSum) / float64(b.n)
			h := append(lavHist[k], avg)
			if len(h) > LavWindowMin {
				h = h[len(h)-LavWindowMin:]
			}
			lavHist[k] = h
			var lav float64
			for _, v := range h {
				lav += v
			}
			lav /= float64(len(h))
			out.AppendRow(
				vector.NewInt(curMinute), vector.NewInt(k.xway), vector.NewInt(k.dir),
				vector.NewInt(k.seg), vector.NewInt(int64(lav*100)), vector.NewInt(int64(len(b.vids))),
			)
		}
		buckets = map[segKey]*bucket{}
	}

	f, err := core.NewFactory("lr.q3.stats",
		[]*basket.Basket{n.Pos2},
		[]*basket.Basket{n.SegStats},
		func(ctx *core.Context) error {
			rel := ctx.In(0).TakeAllLocked()
			if rel.Len() == 0 {
				return nil
			}
			// Kernel-grouped pre-aggregation per (minute,xway,dir,seg):
			// one pass builds the per-firing partials, then partials fold
			// into the running minute buckets.
			minuteCol := vector.New(vector.Int, rel.Len())
			for _, t := range rel.ColByName("time").Ints() {
				minuteCol.AppendInt(t / 60)
			}
			keys := []*vector.Vector{minuteCol, rel.ColByName("xway"), rel.ColByName("dir"), rel.ColByName("seg")}
			g := relop.GroupBy(keys, rel.Len())

			out := intRelation("minute", "xway", "dir", "seg", "lav100", "cars")
			vid := rel.ColByName("vid").Ints()
			spd := rel.ColByName("spd").Ints()
			xway := rel.ColByName("xway").Ints()
			dir := rel.ColByName("dir").Ints()
			seg := rel.ColByName("seg").Ints()
			// Iterate tuples in arrival order so minute boundaries close
			// in order; the grouping keeps per-group bookkeeping cheap.
			_ = g
			for i := range vid {
				m := minuteCol.Ints()[i]
				if m != curMinute {
					if curMinute >= 0 {
						flush(out)
					}
					curMinute = m
				}
				k := segKey{xway[i], dir[i], seg[i]}
				b := buckets[k]
				if b == nil {
					b = &bucket{vids: map[int64]bool{}}
					buckets[k] = b
				}
				b.spdSum += spd[i]
				b.n++
				b.vids[vid[i]] = true
			}
			if out.Len() > 0 {
				if _, err := ctx.Out(0).AppendLocked(out); err != nil {
					return err
				}
			}
			return nil
		})
	return Collection{Name: "Q3", Queries: 5, Factories: []*core.Factory{f}}, err
}

// buildTolls is collection Q4 ("Create Tolls" + toll-accident alerts, 4
// logical queries): for every segment crossing it either raises an
// accident alert (accident at most four segments downstream) or assesses
// the variable toll from the latest segment statistics, emitting the toll
// alert and recording the assessment for the balance pipeline. Statistics
// and accident events are side inputs drained at each firing.
func (n *Network) buildTolls() (Collection, error) {
	type segKey struct{ xway, dir, seg int64 }
	latest := map[segKey]struct {
		lav100 int64
		cars   int64
	}{}
	activeAcc := map[segKey]bool{}
	f, err := core.NewFactory("lr.q4.tolls",
		[]*basket.Basket{n.Crossings},
		[]*basket.Basket{n.TollAlerts, n.AccAlerts, n.Assess, n.SegStats, n.AccEvents},
		func(ctx *core.Context) error {
			// Fold in new statistics.
			stats := ctx.Out(3).TakeAllLocked()
			for i := 0; i < stats.Len(); i++ {
				k := segKey{
					stats.ColByName("xway").Ints()[i],
					stats.ColByName("dir").Ints()[i],
					stats.ColByName("seg").Ints()[i],
				}
				latest[k] = struct {
					lav100 int64
					cars   int64
				}{stats.ColByName("lav100").Ints()[i], stats.ColByName("cars").Ints()[i]}
			}
			// Fold in accident status changes.
			acc := ctx.Out(4).TakeAllLocked()
			for i := 0; i < acc.Len(); i++ {
				k := segKey{
					acc.ColByName("xway").Ints()[i],
					acc.ColByName("dir").Ints()[i],
					acc.ColByName("seg").Ints()[i],
				}
				if acc.ColByName("active").Ints()[i] == 1 {
					activeAcc[k] = true
				} else {
					delete(activeAcc, k)
				}
			}

			rel := ctx.In(0).TakeAllLocked()
			if rel.Len() == 0 {
				return nil
			}
			time := rel.ColByName("time").Ints()
			vid := rel.ColByName("vid").Ints()
			xway := rel.ColByName("xway").Ints()
			dir := rel.ColByName("dir").Ints()
			seg := rel.ColByName("seg").Ints()

			tollOut := intRelation("time", "vid", "toll", "lav100")
			accOut := intRelation("time", "vid", "seg")
			assessOut := intRelation("time", "vid", "day", "toll")
			for i := range vid {
				inAccident := false
				for k := range activeAcc {
					if k.xway == xway[i] && k.dir == dir[i] && AccidentAffects(dir[i], seg[i], k.seg) {
						inAccident = true
						break
					}
				}
				if inAccident {
					accOut.AppendRow(vector.NewInt(time[i]), vector.NewInt(vid[i]), vector.NewInt(seg[i]))
					continue
				}
				st := latest[segKey{xway[i], dir[i], seg[i]}]
				toll := TollFor(float64(st.lav100)/100, int(st.cars), false)
				tollOut.AppendRow(vector.NewInt(time[i]), vector.NewInt(vid[i]),
					vector.NewInt(toll), vector.NewInt(st.lav100))
				if toll > 0 {
					assessOut.AppendRow(vector.NewInt(time[i]), vector.NewInt(vid[i]),
						vector.NewInt(0), vector.NewInt(toll))
				}
			}
			if tollOut.Len() > 0 {
				if _, err := ctx.Out(0).AppendLocked(tollOut); err != nil {
					return err
				}
			}
			if accOut.Len() > 0 {
				if _, err := ctx.Out(1).AppendLocked(accOut); err != nil {
					return err
				}
			}
			if assessOut.Len() > 0 {
				if _, err := ctx.Out(2).AppendLocked(assessOut); err != nil {
					return err
				}
			}
			return nil
		})
	return Collection{Name: "Q4", Queries: 4, Factories: []*core.Factory{f}}, err
}

// buildDailyExpenditure is collection Q6 (1 logical query, 10 s deadline):
// it answers each daily-expenditure request by an equi-join of the request
// against the historical toll table on (vid bucket, day) — a real
// relational join against persistent data, as the benchmark demands.
func (n *Network) buildDailyExpenditure() (Collection, error) {
	f, err := core.NewFactory("lr.q6.daily",
		[]*basket.Basket{n.DayQ},
		[]*basket.Basket{n.DayOut, n.Hist},
		func(ctx *core.Context) error {
			rel := ctx.In(0).TakeAllLocked()
			if rel.Len() == 0 {
				return nil
			}
			hist := ctx.Out(1).RelLocked()
			// Join key: vid bucket * NumDays + day.
			reqKeys := vector.New(vector.Int, rel.Len())
			vid := rel.ColByName("vid").Ints()
			day := rel.ColByName("day").Ints()
			for i := range vid {
				reqKeys.AppendInt((vid[i]%HistVIDBuckets)*NumDays + day[i])
			}
			histKeys := vector.New(vector.Int, hist.Len())
			hb := hist.ColByName("bucket").Ints()
			hd := hist.ColByName("day").Ints()
			for i := range hb {
				histKeys.AppendInt(hb[i]*NumDays + hd[i])
			}
			lsel, rsel := relop.HashJoin(reqKeys, histKeys)
			out := intRelation("time", "qid", "vid", "day", "total")
			time := rel.ColByName("time").Ints()
			qid := rel.ColByName("qid").Ints()
			toll := hist.ColByName("toll").Ints()
			for i := range lsel {
				out.AppendRow(
					vector.NewInt(time[lsel[i]]), vector.NewInt(qid[lsel[i]]),
					vector.NewInt(vid[lsel[i]]), vector.NewInt(day[lsel[i]]),
					vector.NewInt(toll[rsel[i]]),
				)
			}
			if out.Len() > 0 {
				if _, err := ctx.Out(0).AppendLocked(out); err != nil {
					return err
				}
			}
			return nil
		})
	return Collection{Name: "Q6", Queries: 1, Factories: []*core.Factory{f}}, err
}

// buildAccountBalance is collection Q7 (18 logical queries, the heaviest
// collection, 5 s deadline): it folds toll assessments into the persistent
// balances table (update-in-place keyed by vehicle) and answers balance
// requests by joining them against that table.
func (n *Network) buildAccountBalance() (Collection, error) {
	// vidRow indexes the balances table; factory state saved across calls.
	vidRow := map[int64]int{}
	apply, err := core.NewFactory("lr.q7.apply",
		[]*basket.Basket{n.Assess},
		[]*basket.Basket{n.Balances},
		func(ctx *core.Context) error {
			rel := ctx.In(0).TakeAllLocked()
			if rel.Len() == 0 {
				return nil
			}
			bal := ctx.Out(0)
			vids := rel.ColByName("vid").Ints()
			tolls := rel.ColByName("toll").Ints()
			balRel := bal.RelLocked()
			balCol := balRel.ColByName("bal")
			appendRows := intRelation("vid", "bal")
			pending := map[int64]int64{}
			for i, v := range vids {
				if row, ok := vidRow[v]; ok {
					balCol.Set(row, vector.NewInt(balCol.Ints()[row]+tolls[i]))
				} else {
					pending[v] += tolls[i]
				}
			}
			for v, sum := range pending {
				vidRow[v] = balRel.Len() + appendRows.Len()
				appendRows.AppendRow(vector.NewInt(v), vector.NewInt(sum))
			}
			if appendRows.Len() > 0 {
				if _, err := bal.AppendLocked(appendRows); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return Collection{}, err
	}

	answer, err := core.NewFactory("lr.q7.answer",
		[]*basket.Basket{n.AccQ},
		[]*basket.Basket{n.BalOut, n.Balances},
		func(ctx *core.Context) error {
			rel := ctx.In(0).TakeAllLocked()
			if rel.Len() == 0 {
				return nil
			}
			// Answer by a relational hash join of the requests against the
			// accumulated balances table; the build side is the growing
			// table, so the collection's cost rises with history exactly
			// as the paper reports for its heavyweight Q7.
			balRel := ctx.Out(1).RelLocked()
			reqVid := rel.ColByName("vid")
			lsel, rsel := relop.HashJoin(reqVid, balRel.ColByName("vid"))
			out := intRelation("time", "qid", "vid", "bal")
			time := rel.ColByName("time").Ints()
			qid := rel.ColByName("qid").Ints()
			vid := reqVid.Ints()
			bal := balRel.ColByName("bal").Ints()
			for i := range lsel {
				out.AppendRow(vector.NewInt(time[lsel[i]]), vector.NewInt(qid[lsel[i]]),
					vector.NewInt(vid[lsel[i]]), vector.NewInt(bal[rsel[i]]))
			}
			// Vehicles with no assessed tolls yet owe zero.
			for _, i := range relop.AntiJoin(reqVid, balRel.ColByName("vid")) {
				out.AppendRow(vector.NewInt(time[i]), vector.NewInt(qid[i]),
					vector.NewInt(vid[i]), vector.NewInt(0))
			}
			_, err := ctx.Out(0).AppendLocked(out)
			return err
		})
	if err != nil {
		return Collection{}, err
	}

	// Both sub-factories form one collection; the harness attributes
	// their cost to Q7 together.
	return Collection{Name: "Q7", Queries: 18, Factories: []*core.Factory{apply, answer}}, nil
}
