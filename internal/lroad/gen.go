package lroad

import (
	"math"
	"math/rand"
)

// GenConfig parameterises the traffic generator.
type GenConfig struct {
	// SF is the Linear Road scale factor: it scales the arrival-rate ramp.
	// SF 1 ramps from ~15-20 tuples/s to ~1700 tuples/s over a full
	// three-hour run, matching the paper's Figure 8.
	SF float64
	// Duration is the benchmark length in seconds (the paper runs 10800).
	Duration int64
	// Seed makes runs reproducible.
	Seed int64
	// XWays is the number of expressways (the spec uses one per 0.5 SF).
	XWays int64
}

// DefaultConfig returns the configuration of a full paper run at the given
// scale factor.
func DefaultConfig(sf float64) GenConfig {
	xways := int64(math.Max(1, math.Round(sf/0.5)))
	return GenConfig{SF: sf, Duration: 10800, Seed: 1, XWays: xways}
}

// car is the generator-internal vehicle state.
type car struct {
	vid     int64
	xway    int64
	dir     int64
	lane    int64
	pos     int64 // feet
	spd     int64 // mph
	phase   int64 // report offset within the 30 s cycle
	stopped bool  // scripted accident participant
	stopPos int64
	stopEnd int64
}

// Generator produces the Linear Road input stream second by second, with
// ground-truth accident scheduling. Cars enter according to the arrival
// ramp, report their position every 30 seconds, and exit at the end of the
// expressway. Accidents are scripted: two cars are forced to the same
// position at speed zero for long enough to be detectable (four
// consecutive reports each), then released. Accident frequency increases
// after the first hour, as in the paper's workload description.
type Generator struct {
	cfg     GenConfig
	rng     *rand.Rand
	now     int64
	nextVID int64
	nextQID int64
	cars    map[int64]*car

	accidents    []Accident // ground truth, in schedule order
	nextAccCheck int64

	TotalTuples int64
	TotalPos    int64 // type-0 tuples emitted
	TotalBalQ   int64 // type-2 tuples emitted
	TotalDayQ   int64 // type-3 tuples emitted
}

// NewGenerator returns a generator for the given configuration.
func NewGenerator(cfg GenConfig) *Generator {
	if cfg.XWays <= 0 {
		cfg.XWays = 1
	}
	return &Generator{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		cars: map[int64]*car{},
	}
}

// Now returns the current benchmark second.
func (g *Generator) Now() int64 { return g.now }

// Done reports whether the benchmark duration has elapsed.
func (g *Generator) Done() bool { return g.now >= g.cfg.Duration }

// Accidents returns the ground-truth accident schedule so far.
func (g *Generator) Accidents() []Accident { return g.accidents }

// Rate returns the target position-report rate (tuples/second) at
// benchmark second t: a slowly accelerating ramp matching Figure 8.
func (g *Generator) Rate(t int64) float64 {
	frac := float64(t) / float64(g.cfg.Duration)
	return g.cfg.SF * (17 + 1683*math.Pow(frac, 2.2))
}

// Tick produces the tuples of the current benchmark second and advances
// the clock.
func (g *Generator) Tick() []Tuple {
	t := g.now
	g.now++

	// Population control: each car reports once per 30 s, so the active
	// car count follows rate * 30.
	target := int(g.Rate(t) * ReportEvery)
	for len(g.cars) < target {
		g.spawn(t)
	}

	g.maybeScheduleAccident(t)

	var out []Tuple
	for _, c := range g.cars {
		g.advance(c, t)
		if (t+c.phase)%ReportEvery == 0 {
			g.TotalPos++
			out = append(out, Tuple{
				Typ: TypePosition, Time: t, VID: c.vid, Spd: c.spd,
				XWay: c.xway, Lane: c.lane, Dir: c.dir,
				Seg: c.pos / SegFeet, Pos: c.pos,
			})
			// A fraction of reporting cars also issue historical queries.
			r := g.rng.Float64()
			switch {
			case r < 0.01:
				g.nextQID++
				g.TotalBalQ++
				out = append(out, Tuple{Typ: TypeBalance, Time: t, VID: c.vid, QID: g.nextQID})
			case r < 0.015:
				g.nextQID++
				g.TotalDayQ++
				out = append(out, Tuple{
					Typ: TypeDailyExp, Time: t, VID: c.vid, QID: g.nextQID,
					Day: 1 + g.rng.Int63n(NumDays-1),
				})
			}
		}
	}
	// Remove cars that left the expressway.
	for vid, c := range g.cars {
		if c.pos >= NumSegs*SegFeet {
			delete(g.cars, vid)
		}
	}
	g.TotalTuples += int64(len(out))
	return out
}

func (g *Generator) spawn(t int64) {
	g.nextVID++
	c := &car{
		vid:   g.nextVID,
		xway:  g.rng.Int63n(g.cfg.XWays),
		dir:   g.rng.Int63n(2),
		lane:  1 + g.rng.Int63n(3),
		pos:   g.rng.Int63n(NumSegs*SegFeet/4) * 4, // enter in the first quarter
		spd:   40 + g.rng.Int63n(60),
		phase: g.rng.Int63n(ReportEvery),
	}
	g.cars[c.vid] = c
}

func (g *Generator) advance(c *car, t int64) {
	if c.stopped {
		if t >= c.stopEnd {
			c.stopped = false
			c.spd = 30 + g.rng.Int63n(40)
		} else {
			c.pos = c.stopPos
			c.spd = 0
			return
		}
	}
	// Speed wanders a little; position advances at spd mph = spd*5280/3600 ft/s.
	c.spd += g.rng.Int63n(7) - 3
	if c.spd < 30 {
		c.spd = 30
	}
	if c.spd > 100 {
		c.spd = 100
	}
	c.pos += c.spd * SegFeet / 3600
}

// maybeScheduleAccident scripts accidents with a frequency that grows
// after the first hour (the paper observes accident work increasing from
// minute 60 on). Two moving cars on the same expressway and direction are
// forced to one position at speed zero for long enough that both file four
// identical reports.
func (g *Generator) maybeScheduleAccident(t int64) {
	if t < g.nextAccCheck {
		return
	}
	// Interval between accidents: 10 min early on, shrinking to 1 min.
	frac := float64(t) / float64(g.cfg.Duration)
	gap := int64(600 - 540*math.Min(1, math.Max(0, (frac-0.33)/0.5)))
	g.nextAccCheck = t + gap

	// Pick two candidate cars on the same (xway, dir), both moving.
	var a, b *car
	for _, c := range g.cars {
		if c.stopped || c.pos > (NumSegs-10)*SegFeet {
			continue
		}
		if a == nil {
			a = c
			continue
		}
		if c.xway == a.xway && c.dir == a.dir && c.vid != a.vid {
			b = c
			break
		}
	}
	if a == nil || b == nil {
		return
	}
	// Stop both long enough for 4 reports each plus slack.
	dur := int64(ReportEvery*StopsToReport + 60 + g.rng.Int63n(120))
	pos := a.pos
	for _, c := range []*car{a, b} {
		c.stopped = true
		c.stopPos = pos
		c.stopEnd = t + dur
		c.lane = 2
		c.pos = pos
		c.spd = 0
	}
	g.accidents = append(g.accidents, Accident{
		XWay: a.xway, Dir: a.dir, Pos: pos, Seg: pos / SegFeet,
		Start: t, End: t + dur, VID1: a.vid, VID2: b.vid,
	})
}
