package lroad

import (
	"fmt"
)

// Validation is the outcome of checking a benchmark run against the
// generator's ground truth and the benchmark's consistency rules.
type Validation struct {
	Errors []string

	ExpectedAccidents int
	DetectedAccidents int
	ClearedAccidents  int
}

// OK reports whether no validation rule was violated.
func (v *Validation) OK() bool { return len(v.Errors) == 0 }

func (v *Validation) errf(format string, args ...any) {
	v.Errors = append(v.Errors, fmt.Sprintf(format, args...))
}

// detectSlack bounds how long after an accident starts the network may
// take to raise it: both cars must each file StopsToReport reports
// (30 s apart, with up to 30 s of phase offset), plus one report of slack.
const detectSlack = ReportEvery*(StopsToReport+2) + ReportEvery

// Validate checks a completed run:
//
//  1. Accident detection is exact: every ground-truth accident that had
//     time to be detected appears as exactly one "active" event at the
//     right location within the detection window, and accidents that had
//     time to clear produce a matching "cleared" event. The generator
//     never stops cars outside scripted accidents, so false positives are
//     also errors.
//  2. Every segment crossing received exactly one response: a toll alert
//     or an accident alert.
//  3. Toll conservation: the tolls announced in alerts equal the final
//     account balances.
//  4. Every balance request and every well-formed daily-expenditure
//     request was answered, and daily-expenditure answers match the
//     historical table exactly.
func Validate(res *RunResult) *Validation {
	v := &Validation{}
	dur := res.Config.Duration

	// --- Rule 1: accidents ---------------------------------------------
	type accKey struct{ xway, dir, seg int64 }
	type event struct {
		time   int64
		active int64
	}
	events := map[accKey][]event{}
	times := res.AccEvents.ColByName("time").Ints()
	xways := res.AccEvents.ColByName("xway").Ints()
	dirs := res.AccEvents.ColByName("dir").Ints()
	segs := res.AccEvents.ColByName("seg").Ints()
	actives := res.AccEvents.ColByName("active").Ints()
	for i := range times {
		k := accKey{xways[i], dirs[i], segs[i]}
		events[k] = append(events[k], event{times[i], actives[i]})
	}
	totalRaised := 0
	for _, evs := range events {
		for _, e := range evs {
			if e.active == 1 {
				totalRaised++
			}
		}
	}

	expected := 0
	for _, acc := range res.Accidents {
		if acc.Start+detectSlack > dur {
			continue // too late in the run to demand detection
		}
		expected++
		k := accKey{acc.XWay, acc.Dir, acc.Seg}
		found := false
		for _, e := range events[k] {
			if e.active == 1 && e.time > acc.Start && e.time <= acc.Start+detectSlack {
				found = true
				v.DetectedAccidents++
				break
			}
		}
		if !found {
			v.errf("accident at xway %d dir %d seg %d (t=%d) not detected",
				acc.XWay, acc.Dir, acc.Seg, acc.Start)
			continue
		}
		if acc.End+detectSlack <= dur {
			cleared := false
			for _, e := range events[k] {
				if e.active == 0 && e.time >= acc.End && e.time <= acc.End+detectSlack {
					cleared = true
					v.ClearedAccidents++
					break
				}
			}
			if !cleared {
				v.errf("accident at xway %d dir %d seg %d (t=%d..%d) never cleared",
					acc.XWay, acc.Dir, acc.Seg, acc.Start, acc.End)
			}
		}
	}
	v.ExpectedAccidents = expected
	if totalRaised > len(res.Accidents) {
		v.errf("%d accidents raised but only %d scheduled (false positives)",
			totalRaised, len(res.Accidents))
	}

	// --- Rule 2: every crossing answered --------------------------------
	answered := int64(res.TollAlerts.Len() + res.AccAlerts.Len())
	if answered != res.Crossings {
		v.errf("crossings %d but alerts %d (toll %d + accident %d)",
			res.Crossings, answered, res.TollAlerts.Len(), res.AccAlerts.Len())
	}

	// --- Rule 3: toll conservation --------------------------------------
	var announced int64
	for _, toll := range res.TollAlerts.ColByName("toll").Ints() {
		announced += toll
	}
	var banked int64
	for _, b := range res.FinalBalances.ColByName("bal").Ints() {
		banked += b
	}
	if announced != banked {
		v.errf("announced tolls %d != final balances %d", announced, banked)
	}

	// --- Rule 4: historical queries -------------------------------------
	if int64(res.BalAnswers.Len()) != res.TotalBalQ {
		v.errf("balance answers %d != balance requests %d", res.BalAnswers.Len(), res.TotalBalQ)
	}
	if int64(res.DayAnswers.Len()) != res.TotalDayQ {
		v.errf("daily-expenditure answers %d != requests %d", res.DayAnswers.Len(), res.TotalDayQ)
	}
	dvid := res.DayAnswers.ColByName("vid").Ints()
	dday := res.DayAnswers.ColByName("day").Ints()
	dtot := res.DayAnswers.ColByName("total").Ints()
	for i := range dvid {
		want := HistToll(dvid[i]%HistVIDBuckets, dday[i])
		if dtot[i] != want {
			v.errf("daily expenditure for vid %d day %d: got %d, want %d",
				dvid[i], dday[i], dtot[i], want)
			break // one detailed report is enough
		}
	}

	// Balance answers must be non-negative and bounded by the final
	// balance of the vehicle (balances only grow).
	finalBal := map[int64]int64{}
	fvid := res.FinalBalances.ColByName("vid").Ints()
	fbal := res.FinalBalances.ColByName("bal").Ints()
	for i := range fvid {
		finalBal[fvid[i]] = fbal[i]
	}
	bvid := res.BalAnswers.ColByName("vid").Ints()
	bbal := res.BalAnswers.ColByName("bal").Ints()
	for i := range bvid {
		if bbal[i] < 0 || bbal[i] > finalBal[bvid[i]] {
			v.errf("balance answer %d for vid %d outside [0, %d]",
				bbal[i], bvid[i], finalBal[bvid[i]])
			break
		}
	}
	return v
}
