package sql

import (
	"fmt"
	"strconv"
	"strings"

	"datacell/internal/expr"
	"datacell/internal/relop"
	"datacell/internal/vector"
)

// Parse parses a semicolon-separated script into statements.
func Parse(src string) ([]Statement, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Statement
	for !p.at(TokEOF, "") {
		if p.acceptOp(";") {
			continue
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.acceptOp(";") && !p.at(TokEOF, "") && !p.at(TokKeyword, "end") {
			return nil, p.errf("expected ';' after statement, got %s", p.peek())
		}
	}
	return out, nil
}

// ParseOne parses exactly one statement.
func ParseOne(src string) (Statement, error) {
	ss, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(ss) != 1 {
		return nil, fmt.Errorf("sql: expected one statement, got %d", len(ss))
	}
	return ss[0], nil
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) peek() Token { return p.toks[p.i] }
func (p *parser) next() Token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k TokKind, text string) bool {
	t := p.peek()
	return t.Kind == k && (text == "" || t.Text == text)
}

func (p *parser) acceptKw(kw string) bool {
	if p.at(TokKeyword, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	if p.at(TokOp, op) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %q, got %s", kw, p.peek())
	}
	return nil
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, got %s", op, p.peek())
	}
	return nil
}

// softKeywords may double as identifiers (column or basket names): they
// only act as keywords in their specific syntactic slots (interval units,
// type names).
var softKeywords = map[string]bool{
	"second": true, "seconds": true, "minute": true, "minutes": true,
	"hour": true, "hours": true, "day": true, "days": true,
	"timestamp": true, "text": true, "stream": true,
	"explain": true, "analyze": true,
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent && !(t.Kind == TokKeyword && softKeywords[t.Text]) {
		return "", p.errf("expected identifier, got %s", t)
	}
	p.i++
	return t.Text, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(TokKeyword, "select"):
		return p.selectStmt()
	case p.at(TokKeyword, "insert"):
		return p.insertStmt()
	case p.at(TokKeyword, "create"):
		return p.createStmt()
	case p.at(TokKeyword, "declare"):
		return p.declareStmt()
	case p.at(TokKeyword, "set"):
		return p.setStmt()
	case p.at(TokKeyword, "with"):
		return p.withBlock()
	case p.at(TokKeyword, "explain"):
		return p.explainStmt()
	case p.at(TokOp, "["):
		// A bare basket expression used as a statement: select everything
		// from it (the paper's heartbeat example).
		b, err := p.basketExpr()
		if err != nil {
			return nil, err
		}
		return &SelectStmt{
			Top:   -1,
			Items: []SelectItem{{Star: true}},
			From:  []TableRef{{Basket: b, Alias: "b"}},
		}, nil
	}
	return nil, p.errf("expected statement, got %s", p.peek())
}

// explainStmt parses the two explain forms: `explain <statement>`
// describes how a statement would compile and wire; `explain analyze
// <query-name>` reports the stage timings of a registered running query.
func (p *parser) explainStmt() (Statement, error) {
	p.next() // explain
	if p.acceptKw("analyze") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Analyze: true, Query: name}, nil
	}
	inner, err := p.statement()
	if err != nil {
		return nil, err
	}
	if _, nested := inner.(*ExplainStmt); nested {
		return nil, p.errf("explain cannot nest")
	}
	return &ExplainStmt{Stmt: inner}, nil
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Top: -1}
	if p.acceptKw("distinct") {
		s.Distinct = true
	}
	if p.acceptKw("top") {
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		s.Top = n
	}
	// Select list. "select top 20 from X" and "select all from X" mean *.
	if p.at(TokKeyword, "from") || p.acceptKw("all") {
		s.Items = []SelectItem{{Star: true}}
	} else {
		for {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			s.Items = append(s.Items, *item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("from") {
		for {
			tr, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, *tr)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("where") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("having") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	// UNION [ALL]: the second branch is parsed recursively; any ORDER BY
	// and LIMIT it carries apply to the combined result and are hoisted
	// to this statement.
	if p.acceptKw("union") {
		all := p.acceptKw("all")
		rhs, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		s.Union, s.UnionAll = rhs, all
		s.OrderBy, rhs.OrderBy = rhs.OrderBy, nil
		s.Top, rhs.Top = rhs.Top, -1
		return s, nil
	}
	if p.acceptKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if p.acceptKw("desc") {
				oi.Desc = true
			} else {
				p.acceptKw("asc")
			}
			s.OrderBy = append(s.OrderBy, oi)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("limit") {
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		s.Top = n
	}
	return s, nil
}

func (p *parser) selectItem() (*SelectItem, error) {
	if p.acceptOp("*") {
		return &SelectItem{Star: true}, nil
	}
	// alias.* form
	if p.peek().Kind == TokIdent && p.toks[p.i+1].Kind == TokOp && p.toks[p.i+1].Text == "." &&
		p.toks[p.i+2].Kind == TokOp && p.toks[p.i+2].Text == "*" {
		alias := p.next().Text
		p.next() // .
		p.next() // *
		return &SelectItem{Star: true, StarAlias: strings.ToLower(alias)}, nil
	}
	item := &SelectItem{}
	if agg, ok := p.tryAgg(); ok {
		a, err := agg()
		if err != nil {
			return nil, err
		}
		item.Agg = a
	} else {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		item.Expr = e
	}
	if p.acceptKw("as") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		item.Alias = a
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

// tryAgg peeks for an aggregate keyword followed by '('.
func (p *parser) tryAgg() (func() (*AggSpec, error), bool) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, false
	}
	var kind relop.AggKind
	switch t.Text {
	case "count":
		kind = relop.AggCount
	case "sum":
		kind = relop.AggSum
	case "avg":
		kind = relop.AggAvg
	case "min":
		kind = relop.AggMin
	case "max":
		kind = relop.AggMax
	default:
		return nil, false
	}
	if !(p.toks[p.i+1].Kind == TokOp && p.toks[p.i+1].Text == "(") {
		return nil, false
	}
	return func() (*AggSpec, error) {
		p.next() // agg keyword
		p.next() // (
		spec := &AggSpec{Kind: kind}
		if p.acceptKw("distinct") {
			spec.Distinct = true
		}
		if p.acceptOp("*") {
			spec.Star = true
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			spec.Arg = e
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return spec, nil
	}, true
}

func (p *parser) tableRef() (*TableRef, error) {
	tr := &TableRef{}
	switch {
	case p.at(TokOp, "["):
		b, err := p.basketExpr()
		if err != nil {
			return nil, err
		}
		tr.Basket = b
	case p.at(TokOp, "("):
		p.next()
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		tr.Sub = sub
	default:
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		tr.Name = strings.ToLower(name)
	}
	if p.acceptKw("as") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		tr.Alias = strings.ToLower(a)
	} else if p.peek().Kind == TokIdent {
		tr.Alias = strings.ToLower(p.next().Text)
	}
	if tr.Alias == "" {
		tr.Alias = tr.Name
	}
	return tr, nil
}

// basketExpr parses [select …]. The sub-query is syntactically an ordinary
// select; the brackets give it the delete side-effect semantics.
func (p *parser) basketExpr() (*SelectStmt, error) {
	if err := p.expectOp("["); err != nil {
		return nil, err
	}
	sel, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("]"); err != nil {
		return nil, err
	}
	return sel, nil
}

func (p *parser) insertStmt() (*InsertStmt, error) {
	if err := p.expectKw("insert"); err != nil {
		return nil, err
	}
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Target: strings.ToLower(name)}
	if p.acceptOp("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, strings.ToLower(c))
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.at(TokKeyword, "select"):
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		ins.Query = sel
	case p.at(TokOp, "["):
		b, err := p.basketExpr()
		if err != nil {
			return nil, err
		}
		ins.Query = &SelectStmt{
			Top:   -1,
			Items: []SelectItem{{Star: true}},
			From:  []TableRef{{Basket: b, Alias: "b"}},
		}
	case p.at(TokKeyword, "values"):
		return nil, p.errf("insert … values is not supported; use insert … select")
	default:
		return nil, p.errf("expected select or basket expression after insert target")
	}
	return ins, nil
}

func (p *parser) createStmt() (*CreateStmt, error) {
	if err := p.expectKw("create"); err != nil {
		return nil, err
	}
	var kind string
	switch {
	case p.acceptKw("basket"), p.acceptKw("stream"):
		kind = "basket"
	case p.acceptKw("table"):
		kind = "table"
	default:
		return nil, p.errf("expected basket, stream or table after create")
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	cs := &CreateStmt{Kind: kind, Name: strings.ToLower(name)}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		cn, err := p.ident()
		if err != nil {
			return nil, err
		}
		ct, err := p.typeName()
		if err != nil {
			return nil, err
		}
		cs.Cols = append(cs.Cols, ColDef{Name: strings.ToLower(cn), Type: ct})
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return cs, nil
}

func (p *parser) typeName() (vector.Type, error) {
	t := p.peek()
	if t.Kind != TokKeyword && t.Kind != TokIdent {
		return 0, p.errf("expected type name, got %s", t)
	}
	p.i++
	typ, err := vector.ParseType(t.Text)
	if err != nil {
		return 0, p.errf("%v", err)
	}
	// Optional length, e.g. varchar(32): parsed and ignored.
	if p.acceptOp("(") {
		if _, err := p.intLiteral(); err != nil {
			return 0, err
		}
		if err := p.expectOp(")"); err != nil {
			return 0, err
		}
	}
	return typ, nil
}

func (p *parser) declareStmt() (*DeclareStmt, error) {
	if err := p.expectKw("declare"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	typ, err := p.typeName()
	if err != nil {
		return nil, err
	}
	return &DeclareStmt{Name: strings.ToLower(name), Type: typ}, nil
}

func (p *parser) setStmt() (*SetStmt, error) {
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	s := &SetStmt{Name: strings.ToLower(name), Value: e}
	// Optional `on <stream>` suffix scopes an engine pragma to one
	// stream's query group, e.g. `set parallelism = auto on trades`.
	if t := p.peek(); t.Kind == TokIdent && strings.EqualFold(t.Text, "on") {
		p.i++
		on, err := p.ident()
		if err != nil {
			return nil, err
		}
		s.On = on
	}
	return s, nil
}

func (p *parser) withBlock() (*WithBlock, error) {
	if err := p.expectKw("with"); err != nil {
		return nil, err
	}
	alias, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("as"); err != nil {
		return nil, err
	}
	b, err := p.basketExpr()
	if err != nil {
		return nil, err
	}
	w := &WithBlock{Alias: strings.ToLower(alias), Basket: b}
	if err := p.expectKw("begin"); err != nil {
		return nil, err
	}
	for !p.at(TokKeyword, "end") {
		if p.acceptOp(";") {
			continue
		}
		var s Statement
		switch {
		case p.at(TokKeyword, "insert"):
			s, err = p.insertStmt()
		case p.at(TokKeyword, "set"):
			s, err = p.setStmt()
		default:
			return nil, p.errf("with-block body allows insert and set statements, got %s", p.peek())
		}
		if err != nil {
			return nil, err
		}
		w.Body = append(w.Body, s)
		if !p.acceptOp(";") && !p.at(TokKeyword, "end") {
			return nil, p.errf("expected ';' in with-block, got %s", p.peek())
		}
	}
	p.next() // end
	if len(w.Body) == 0 {
		return nil, p.errf("empty with-block body")
	}
	return w, nil
}

func (p *parser) intLiteral() (int, error) {
	t := p.peek()
	if t.Kind != TokNumber {
		return 0, p.errf("expected number, got %s", t)
	}
	n, err := strconv.Atoi(t.Text)
	if err != nil {
		return 0, p.errf("bad integer %q", t.Text)
	}
	p.i++
	return n, nil
}

// ---- expressions (precedence climbing) ----

func (p *parser) expr() (expr.Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (expr.Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = expr.NewBin(expr.Or, l, r)
	}
	return l, nil
}

func (p *parser) andExpr() (expr.Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("and") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = expr.NewBin(expr.And, l, r)
	}
	return l, nil
}

func (p *parser) notExpr() (expr.Expr, error) {
	if p.acceptKw("not") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return expr.NewNot(e), nil
	}
	return p.cmpExpr()
}

var cmpOps = map[string]expr.BinOp{
	"=": expr.Eq, "<>": expr.Ne, "<": expr.Lt, "<=": expr.Le, ">": expr.Gt, ">=": expr.Ge,
}

func (p *parser) cmpExpr() (expr.Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokOp {
		if op, ok := cmpOps[t.Text]; ok {
			p.i++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return expr.NewBin(op, l, r), nil
		}
	}
	// Postfix predicates: [NOT] BETWEEN / IN / LIKE.
	negate := false
	if p.at(TokKeyword, "not") {
		nxt := p.toks[p.i+1]
		if nxt.Kind == TokKeyword && (nxt.Text == "between" || nxt.Text == "in" || nxt.Text == "like") {
			p.i++
			negate = true
		}
	}
	switch {
	case p.acceptKw("between"):
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("and"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return expr.NewBetween(l, lo, hi, negate), nil
	case p.acceptKw("in"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var vals []vector.Value
		for {
			e, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			v, ok := constExprValue(e)
			if !ok {
				return nil, p.errf("IN list elements must be constants")
			}
			vals = append(vals, v)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return expr.NewInList(l, vals, negate), nil
	case p.acceptKw("like"):
		t := p.peek()
		if t.Kind != TokString {
			return nil, p.errf("LIKE expects a string pattern, got %s", t)
		}
		p.i++
		return expr.NewLike(l, t.Text, negate), nil
	}
	if negate {
		return nil, p.errf("dangling NOT")
	}
	return l, nil
}

// constExprValue folds a parsed expression into a constant Value if it is
// one (possibly negated).
func constExprValue(e expr.Expr) (vector.Value, bool) {
	switch n := e.(type) {
	case *expr.Const:
		return n.Val, true
	case *expr.Neg:
		if v, ok := constExprValue(n.E); ok {
			switch v.Kind {
			case vector.Int, vector.Timestamp:
				v.I = -v.I
				return v, true
			case vector.Float:
				v.F = -v.F
				return v, true
			}
		}
	}
	return vector.Value{}, false
}

func (p *parser) addExpr() (expr.Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = expr.NewBin(expr.Add, l, r)
		case p.acceptOp("-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = expr.NewBin(expr.Sub, l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (expr.Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = expr.NewBin(expr.Mul, l, r)
		case p.acceptOp("/"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = expr.NewBin(expr.Div, l, r)
		case p.acceptOp("%"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = expr.NewBin(expr.Mod, l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) unaryExpr() (expr.Expr, error) {
	if p.acceptOp("-") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return expr.NewNeg(e), nil
	}
	if p.acceptOp("+") {
		return p.unaryExpr()
	}
	return p.primary()
}

// caseExpr parses a searched CASE expression. The ELSE arm is required:
// the engine has no NULL values.
func (p *parser) caseExpr() (expr.Expr, error) {
	if err := p.expectKw("case"); err != nil {
		return nil, err
	}
	var whens []expr.WhenClause
	for p.acceptKw("when") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("then"); err != nil {
			return nil, err
		}
		then, err := p.expr()
		if err != nil {
			return nil, err
		}
		whens = append(whens, expr.WhenClause{Cond: cond, Then: then})
	}
	if len(whens) == 0 {
		return nil, p.errf("case without when arms")
	}
	if !p.acceptKw("else") {
		return nil, p.errf("case requires an else arm")
	}
	els, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return expr.NewCase(whens, els), nil
}

// intervalMicros maps interval unit keywords to microseconds.
var intervalMicros = map[string]int64{
	"second": 1e6, "seconds": 1e6,
	"minute": 60e6, "minutes": 60e6,
	"hour": 3600e6, "hours": 3600e6,
	"day": 86400e6, "days": 86400e6,
}

func (p *parser) primary() (expr.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.i++
		// "1 hour" shorthand: a number followed by an interval unit is an
		// interval constant in microseconds (the paper's now()-1 hour).
		if u := p.peek(); u.Kind == TokKeyword {
			if us, ok := intervalMicros[u.Text]; ok {
				p.i++
				n, err := strconv.ParseInt(t.Text, 10, 64)
				if err != nil {
					return nil, p.errf("bad interval %q", t.Text)
				}
				return expr.NewConst(vector.NewInt(n * us)), nil
			}
		}
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return expr.NewConst(vector.NewFloat(f)), nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return expr.NewConst(vector.NewInt(n)), nil
	case TokString:
		p.i++
		return expr.NewConst(vector.NewStr(t.Text)), nil
	case TokKeyword:
		switch t.Text {
		case "true":
			p.i++
			return expr.NewConst(vector.NewBool(true)), nil
		case "false":
			p.i++
			return expr.NewConst(vector.NewBool(false)), nil
		case "null":
			return nil, p.errf("null literals are not supported")
		case "interval":
			// interval '5' second
			p.i++
			v := p.peek()
			if v.Kind != TokString && v.Kind != TokNumber {
				return nil, p.errf("expected interval magnitude, got %s", v)
			}
			p.i++
			n, err := strconv.ParseInt(v.Text, 10, 64)
			if err != nil {
				return nil, p.errf("bad interval %q", v.Text)
			}
			u := p.peek()
			us, ok := intervalMicros[u.Text]
			if !ok {
				return nil, p.errf("expected interval unit, got %s", u)
			}
			p.i++
			return expr.NewConst(vector.NewInt(n * us)), nil
		case "case":
			return p.caseExpr()
		case "count", "sum", "avg", "min", "max":
			return nil, p.errf("aggregate %s not allowed in this context", t.Text)
		}
		if softKeywords[t.Text] {
			p.i++
			return p.identPrimary(t.Text)
		}
		return nil, p.errf("unexpected keyword %s in expression", t)
	case TokOp:
		if t.Text == "(" {
			p.i++
			// Scalar subquery or parenthesised expression.
			if p.at(TokKeyword, "select") {
				sel, err := p.selectStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Sel: sel}, nil
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case TokIdent:
		p.i++
		return p.identPrimary(t.Text)
	}
	return nil, p.errf("unexpected token %s in expression", t)
}

// identPrimary parses the remainder of a primary that started with an
// identifier (or soft keyword): a qualified column, a function call or a
// bare column reference.
func (p *parser) identPrimary(name string) (expr.Expr, error) {
	// Qualified column a.b
	if p.at(TokOp, ".") {
		p.i++
		f, err := p.ident()
		if err != nil {
			return nil, err
		}
		return expr.NewCol(strings.ToLower(name) + "." + strings.ToLower(f)), nil
	}
	// Function call
	if p.at(TokOp, "(") {
		p.i++
		var args []expr.Expr
		if !p.at(TokOp, ")") {
			for {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.acceptOp(",") {
					break
				}
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return expr.NewCall(name, args...), nil
	}
	return expr.NewCol(strings.ToLower(name)), nil
}
