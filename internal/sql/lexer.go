// Package sql implements the DataCell's SQL front-end: a lexer and parser
// for the SQL'03 subset the paper uses, extended with the two orthogonal
// DataCell constructs — basket expressions ([select … from …] sub-queries
// with delete side-effects) and compound with…begin…end blocks for stream
// splitting. The parser produces an AST whose scalar expressions reuse the
// engine's expr nodes; internal/plan compiles the AST into factories.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexer tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp // punctuation and operators
)

// Token is one lexical unit with its source position (byte offset).
type Token struct {
	Kind TokKind
	Text string // keywords lower-cased; idents preserved; ops literal
	Pos  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "order": true, "asc": true, "desc": true, "top": true,
	"limit": true, "distinct": true, "all": true, "as": true, "and": true,
	"or": true, "not": true, "insert": true, "into": true, "values": true,
	"create": true, "basket": true, "table": true, "stream": true,
	"declare": true, "set": true, "with": true, "begin": true, "end": true,
	"true": true, "false": true, "null": true, "union": true,
	"between": true, "in": true, "like": true, "case": true, "when": true,
	"then": true, "else": true,
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"int": true, "integer": true, "bigint": true, "float": true,
	"double": true, "real": true, "bool": true, "boolean": true,
	"varchar": true, "string": true, "text": true, "timestamp": true,
	"interval": true, "second": true, "seconds": true, "minute": true,
	"minutes": true, "hour": true, "hours": true, "day": true, "days": true,
	"explain": true, "analyze": true,
}

// Lex tokenises src. It returns an error for unterminated strings or
// unexpected characters.
func Lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // line comment
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*': // block comment
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("sql: unterminated comment at offset %d", i)
			}
			i += end + 4
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(src[i])) {
				i++
			}
			word := src[start:i]
			if keywords[strings.ToLower(word)] {
				toks = append(toks, Token{TokKeyword, strings.ToLower(word), start})
			} else {
				toks = append(toks, Token{TokIdent, word, start})
			}
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			start := i
			seenDot, seenExp := false, false
			for i < n {
				d := src[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < n && (src[i] == '+' || src[i] == '-') {
						i++
					}
					continue
				}
				break
			}
			toks = append(toks, Token{TokNumber, src[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
				}
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, Token{TokString, sb.String(), start})
		default:
			start := i
			// Multi-char operators first.
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				op := two
				if op == "!=" {
					op = "<>"
				}
				toks = append(toks, Token{TokOp, op, start})
				i += 2
				continue
			}
			switch c {
			case '(', ')', '[', ']', ',', ';', '.', '+', '-', '*', '/', '%', '<', '>', '=':
				toks = append(toks, Token{TokOp, string(c), start})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, Token{TokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
