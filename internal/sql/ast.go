package sql

import (
	"fmt"
	"strings"

	"datacell/internal/bat"
	"datacell/internal/expr"
	"datacell/internal/relop"
	"datacell/internal/vector"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a (possibly continuous) select query. A query is
// continuous exactly when at least one of its table references — at any
// nesting depth — is a basket expression; that is how the system
// distinguishes continuous from one-time queries.
type SelectStmt struct {
	Distinct bool
	Top      int // TOP n / LIMIT n result-set constraint; -1 if absent
	Items    []SelectItem
	From     []TableRef
	Where    expr.Expr
	GroupBy  []expr.Expr
	Having   expr.Expr
	OrderBy  []OrderItem
	// Union, when non-nil, appends the second branch's rows to this
	// statement's (set semantics unless UnionAll). ORDER BY and TOP on
	// this statement apply to the combined result.
	Union    *SelectStmt
	UnionAll bool
}

func (*SelectStmt) stmt() {}

// IsContinuous reports whether the query contains a basket expression.
func (s *SelectStmt) IsContinuous() bool {
	for _, t := range s.From {
		if t.Basket != nil {
			return true
		}
		if t.Sub != nil && t.Sub.IsContinuous() {
			return true
		}
	}
	return s.Union != nil && s.Union.IsContinuous()
}

// SelectItem is one select-list entry.
type SelectItem struct {
	Star      bool   // * or alias.*
	StarAlias string // qualifier of alias.*; empty for bare *
	Expr      expr.Expr
	Agg       *AggSpec // non-nil for aggregate items
	Alias     string
}

// AggSpec describes an aggregate select item.
type AggSpec struct {
	Kind     relop.AggKind
	Star     bool // count(*) / sum(*)
	Distinct bool // count(distinct x)
	Arg      expr.Expr
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr expr.Expr
	Desc bool
}

// TableRef is a FROM-clause entry: a named basket/table, a basket
// expression (continuous, consuming), or a plain sub-query.
type TableRef struct {
	Name   string      // named basket or table
	Basket *SelectStmt // [select …]: basket expression with delete side-effects
	Sub    *SelectStmt // (select …): ordinary derived table
	Alias  string
}

// InsertStmt is INSERT INTO target [(cols)] select…; the select may itself
// be a bare basket expression, as in the paper's garbage-collection
// example.
type InsertStmt struct {
	Target string
	Cols   []string
	Query  *SelectStmt
}

func (*InsertStmt) stmt() {}

// ColDef declares one column of a basket or table.
type ColDef struct {
	Name string
	Type vector.Type
}

// CreateStmt is CREATE BASKET|STREAM|TABLE name (cols). Baskets and
// streams are synonymous; tables differ only in consumption semantics
// (they are never consumed by basket expressions referencing them
// directly).
type CreateStmt struct {
	Kind string // "basket", "stream" or "table"
	Name string
	Cols []ColDef
}

func (*CreateStmt) stmt() {}

// DeclareStmt declares a session variable.
type DeclareStmt struct {
	Name string
	Type vector.Type
}

func (*DeclareStmt) stmt() {}

// SetStmt assigns a session variable. In a continuous with-block the
// assignment re-runs at every firing (the paper's incremental-aggregate
// idiom). On, when set, scopes an engine pragma to one stream's query
// group (`set parallelism = 4 on trades`); session variables never
// carry it.
type SetStmt struct {
	Name  string
	Value expr.Expr
	On    string
}

func (*SetStmt) stmt() {}

// WithBlock is the DataCell split construct: the basket expression binds
// Alias once per firing and the compound body (inserts and sets) runs
// against that binding.
//
//	with A as [select * from X] begin insert into Y select * from A …; end
type WithBlock struct {
	Alias  string
	Basket *SelectStmt
	Body   []Statement // InsertStmt or SetStmt
}

func (*WithBlock) stmt() {}

// ExplainStmt is the explain surface. `explain <statement>` carries the
// inner statement in Stmt; `explain analyze <query-name>` sets Analyze
// and names the registered query whose live stage timings are wanted.
type ExplainStmt struct {
	Analyze bool
	Query   string    // registered query name (analyze form)
	Stmt    Statement // inner statement (plain form)
}

func (*ExplainStmt) stmt() {}

// SubqueryExpr is a scalar sub-query placeholder inside an expression,
// e.g. set cnt = cnt + (select count(*) from Z). It satisfies expr.Expr so
// it can sit in expression trees; the planner rewrites it before
// evaluation.
type SubqueryExpr struct {
	Sel *SelectStmt
}

// Eval implements expr.Expr; a SubqueryExpr must be rewritten by the
// planner before evaluation.
func (s *SubqueryExpr) Eval(*bat.Relation) (*vector.Vector, error) {
	return nil, fmt.Errorf("sql: unplanned scalar subquery")
}

// EvalInto implements expr.Expr; like Eval, it must never be reached.
func (s *SubqueryExpr) EvalInto(*bat.Relation, *vector.Vector, *expr.Scratch) (*vector.Vector, error) {
	return nil, fmt.Errorf("sql: unplanned scalar subquery")
}

// Type implements expr.Expr.
func (s *SubqueryExpr) Type(*bat.Relation) (vector.Type, error) {
	if len(s.Sel.Items) == 1 && s.Sel.Items[0].Agg != nil {
		switch s.Sel.Items[0].Agg.Kind {
		case relop.AggCount:
			return vector.Int, nil
		case relop.AggAvg:
			return vector.Float, nil
		}
	}
	return vector.Int, nil
}

func (s *SubqueryExpr) String() string { return "(subquery)" }

// statementName returns a short descriptor for error messages.
func statementName(s Statement) string {
	switch s.(type) {
	case *SelectStmt:
		return "select"
	case *InsertStmt:
		return "insert"
	case *CreateStmt:
		return "create"
	case *DeclareStmt:
		return "declare"
	case *SetStmt:
		return "set"
	case *WithBlock:
		return "with"
	case *ExplainStmt:
		return "explain"
	}
	return "statement"
}

var _ = statementName // used by tests and diagnostics

// ItemName derives the output column name of a select item.
func (it SelectItem) ItemName(i int) string {
	if it.Alias != "" {
		return strings.ToLower(it.Alias)
	}
	if it.Agg != nil {
		return it.Agg.Kind.String()
	}
	if c, ok := it.Expr.(*expr.Col); ok {
		name := c.Name
		if k := strings.LastIndexByte(name, '.'); k >= 0 {
			name = name[k+1:]
		}
		return name
	}
	return fmt.Sprintf("col%d", i+1)
}
