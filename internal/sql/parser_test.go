package sql

import (
	"strings"
	"testing"

	"datacell/internal/expr"
	"datacell/internal/relop"
	"datacell/internal/vector"
)

func mustParseOne(t *testing.T, src string) Statement {
	t.Helper()
	s, err := ParseOne(src)
	if err != nil {
		t.Fatalf("ParseOne(%q): %v", src, err)
	}
	return s
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, b FROM t WHERE a >= 1.5 AND s = 'it''s' -- c\n;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	if texts[0] != "select" || kinds[0] != TokKeyword {
		t.Errorf("keyword lowering: %v", toks[0])
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == TokString && tok.Text == "it's" {
			found = true
		}
	}
	if !found {
		t.Error("escaped quote not handled")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("select 'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("select a ? b"); err == nil {
		t.Error("bad character should fail")
	}
	if _, err := Lex("/* no end"); err == nil {
		t.Error("unterminated comment should fail")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("select /* block */ a -- line\nfrom t")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 5 { // select a from t EOF
		t.Errorf("tokens: %v", toks)
	}
}

func TestParsePaperQ1(t *testing.T) {
	s := mustParseOne(t, "select * from [select * from R] as S where S.a > 10").(*SelectStmt)
	if !s.IsContinuous() {
		t.Error("q1 should be continuous")
	}
	if len(s.From) != 1 || s.From[0].Basket == nil || s.From[0].Alias != "s" {
		t.Errorf("from: %+v", s.From)
	}
	if !s.Items[0].Star {
		t.Error("select list should be *")
	}
	if s.Where == nil {
		t.Error("where missing")
	}
	inner := s.From[0].Basket
	if inner.From[0].Name != "r" || inner.IsContinuous() {
		t.Errorf("inner: %+v", inner.From)
	}
}

func TestParsePaperQ2(t *testing.T) {
	s := mustParseOne(t, "select * from [select * from R where R.b<20] as S where S.a >10").(*SelectStmt)
	inner := s.From[0].Basket
	if inner.Where == nil {
		t.Error("inner predicate window missing")
	}
	if inner.Where.String() != "(r.b < 20)" {
		t.Errorf("inner where = %s", inner.Where)
	}
}

func TestParseOutliersExample(t *testing.T) {
	src := `insert into outliers
		select b.tag, b.payload
		from [select top 20 from X order by tag] as b
		where b.payload > 100`
	ins := mustParseOne(t, src).(*InsertStmt)
	if ins.Target != "outliers" {
		t.Errorf("target = %q", ins.Target)
	}
	be := ins.Query.From[0].Basket
	if be.Top != 20 {
		t.Errorf("top = %d", be.Top)
	}
	if len(be.OrderBy) != 1 || be.OrderBy[0].Desc {
		t.Errorf("order by: %+v", be.OrderBy)
	}
	if !be.Items[0].Star {
		t.Error("top-without-list should mean *")
	}
	if len(ins.Query.Items) != 2 {
		t.Errorf("outer select list: %+v", ins.Query.Items)
	}
}

func TestParseSplitWithBlock(t *testing.T) {
	src := `with A as [select * from X]
	begin
		insert into Y select * from A where A.payload>100;
		insert into Z select * from A where A.payload<=200;
	end`
	w := mustParseOne(t, src).(*WithBlock)
	if w.Alias != "a" || w.Basket == nil || len(w.Body) != 2 {
		t.Fatalf("with: %+v", w)
	}
	ins := w.Body[1].(*InsertStmt)
	if ins.Target != "z" {
		t.Errorf("second insert target = %q", ins.Target)
	}
}

func TestParseMergeJoin(t *testing.T) {
	s := mustParseOne(t, "select A.* from [select * from X,Y where X.id=Y.id] as A").(*SelectStmt)
	be := s.From[0].Basket
	if len(be.From) != 2 || be.From[0].Name != "x" || be.From[1].Name != "y" {
		t.Errorf("join sources: %+v", be.From)
	}
	if s.Items[0].StarAlias != "a" {
		t.Errorf("alias.*: %+v", s.Items[0])
	}
}

func TestParseTrashWithIntervalAndBareBasket(t *testing.T) {
	ins := mustParseOne(t, "insert into trash [select all from X where X.tag < now()-1 hour]").(*InsertStmt)
	be := ins.Query.From[0].Basket
	if be == nil {
		t.Fatal("bare basket expression not wrapped")
	}
	w := be.Where.String()
	if !strings.Contains(w, "3600000000") {
		t.Errorf("interval not folded to micros: %s", w)
	}
	if !strings.Contains(w, "now()") {
		t.Errorf("now() missing: %s", w)
	}
}

func TestParseAggregationBlock(t *testing.T) {
	src := `with Z as [select top 10 payload from X]
	begin
		set cnt = cnt + (select count(*) from Z);
		set tot = tot + (select sum(payload) from Z);
	end`
	w := mustParseOne(t, src).(*WithBlock)
	set := w.Body[0].(*SetStmt)
	if set.Name != "cnt" {
		t.Errorf("set name = %q", set.Name)
	}
	b, ok := set.Value.(*expr.Bin)
	if !ok {
		t.Fatalf("set value: %T", set.Value)
	}
	sub, ok := b.R.(*SubqueryExpr)
	if !ok {
		t.Fatalf("rhs: %T", b.R)
	}
	if sub.Sel.Items[0].Agg == nil || sub.Sel.Items[0].Agg.Kind != relop.AggCount || !sub.Sel.Items[0].Agg.Star {
		t.Errorf("count(*): %+v", sub.Sel.Items[0])
	}
}

func TestParseGroupByHaving(t *testing.T) {
	s := mustParseOne(t, `select seg, avg(speed) v from [select * from pos] p
		group by seg having v > 3 order by seg desc limit 5`).(*SelectStmt)
	if len(s.GroupBy) != 1 {
		t.Errorf("group by: %+v", s.GroupBy)
	}
	if s.Items[1].Agg == nil || s.Items[1].Agg.Kind != relop.AggAvg || s.Items[1].Alias != "v" {
		t.Errorf("agg item: %+v", s.Items[1])
	}
	if s.Having == nil || s.Top != 5 || !s.OrderBy[0].Desc {
		t.Errorf("having/top/order: %+v", s)
	}
}

func TestParseCreate(t *testing.T) {
	cs := mustParseOne(t, "create basket X (tag int, payload float, name varchar(32))").(*CreateStmt)
	if cs.Kind != "basket" || cs.Name != "x" || len(cs.Cols) != 3 {
		t.Fatalf("create: %+v", cs)
	}
	if cs.Cols[1].Type != vector.Float || cs.Cols[2].Type != vector.Str {
		t.Errorf("types: %+v", cs.Cols)
	}
	ct := mustParseOne(t, "create table history (id int, bal float)").(*CreateStmt)
	if ct.Kind != "table" {
		t.Errorf("kind = %q", ct.Kind)
	}
	cst := mustParseOne(t, "create stream s (v int)").(*CreateStmt)
	if cst.Kind != "basket" {
		t.Errorf("stream kind = %q", cst.Kind)
	}
}

func TestParseDeclareSet(t *testing.T) {
	d := mustParseOne(t, "declare cnt integer").(*DeclareStmt)
	if d.Name != "cnt" || d.Type != vector.Int {
		t.Errorf("declare: %+v", d)
	}
	s := mustParseOne(t, "set cnt = 0").(*SetStmt)
	if s.Name != "cnt" {
		t.Errorf("set: %+v", s)
	}
	// The engine pragmas parse as ordinary set statements with literal
	// values (the engine intercepts the names).
	p := mustParseOne(t, "set parallelism = 4").(*SetStmt)
	c, ok := p.Value.(*expr.Const)
	if p.Name != "parallelism" || !ok || c.Val.Kind != vector.Int || c.Val.I != 4 {
		t.Errorf("set parallelism pragma: %+v", p)
	}
	st := mustParseOne(t, "set strategy = 'shared'").(*SetStmt)
	cs, ok := st.Value.(*expr.Const)
	if st.Name != "strategy" || !ok || cs.Val.Kind != vector.Str || cs.Val.S != "shared" {
		t.Errorf("set strategy pragma: %+v", st)
	}
}

func TestParseMultipleStatements(t *testing.T) {
	ss, err := Parse(`create basket a (x int);
		create basket b (x int);
		insert into b select * from [select * from a] t where t.x > 0;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 3 {
		t.Fatalf("statements = %d", len(ss))
	}
}

func TestParseIntervalKeywordForm(t *testing.T) {
	s := mustParseOne(t, "select * from t where ts > now() - interval '5' second").(*SelectStmt)
	if !strings.Contains(s.Where.String(), "5000000") {
		t.Errorf("interval: %s", s.Where)
	}
}

func TestParseExpressionsPrecedence(t *testing.T) {
	s := mustParseOne(t, "select * from t where a + 2 * b < 10 and not c = 3 or d > 1").(*SelectStmt)
	want := "(((a + (2 * b)) < 10) and not (c = 3))"
	if got := s.Where.String(); !strings.HasPrefix(got, "(") || !strings.Contains(got, want) {
		t.Errorf("precedence: %s", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"selec * from t",
		"select * from",
		"select * from [select * from x",
		"insert into t values (1)",
		"create basket ()",
		"with a as [select * from x] begin end",
		"with a as [select * from x] begin delete from y; end",
		"select * from t where",
		"select count(* from t",
		"select null from t",
		"set x 5",
		"select * from t where a between 1",
		"select * from t where a in (b)",
		"select * from t where s like 5",
		"select case when a > 1 then 2 end c from t",
		"select * from t where not between 1 and 2",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseFunctionsAndQualifiedStars(t *testing.T) {
	s := mustParseOne(t, "select abs(a - b) d, t.* from t where mod(a, 2) = 0").(*SelectStmt)
	if s.Items[0].Alias != "d" {
		t.Errorf("alias: %+v", s.Items[0])
	}
	if !s.Items[1].Star || s.Items[1].StarAlias != "t" {
		t.Errorf("t.*: %+v", s.Items[1])
	}
}

func TestItemName(t *testing.T) {
	s := mustParseOne(t, "select a, b as bb, count(*), a+1 from t").(*SelectStmt)
	names := []string{}
	for i, it := range s.Items {
		names = append(names, it.ItemName(i))
	}
	want := []string{"a", "bb", "count", "col4"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("ItemName[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestSubqueryExprUnplanned(t *testing.T) {
	sub := &SubqueryExpr{Sel: &SelectStmt{Top: -1}}
	if _, err := sub.Eval(nil); err == nil {
		t.Error("unplanned subquery must not evaluate")
	}
	if sub.String() == "" {
		t.Error("String empty")
	}
}
