package sql

import (
	"strings"
	"testing"

	"datacell/internal/expr"
	"datacell/internal/relop"
)

func TestParseBetweenInLikeCase(t *testing.T) {
	s := mustParseOne(t, `select case when v between 1 and 5 then 'low' else 'hi' end b
		from t where s like 'a%' and v in (1, 2, -3) and w not in (9)
		and u not between 5 and 6 and z not like '%x'`).(*SelectStmt)
	w := s.Where.String()
	for _, frag := range []string{
		"s like 'a%'", "v in (1, 2, -3)", "w not in (9)",
		"u not between 5 and 6", "z not like '%x'",
	} {
		if !strings.Contains(w, frag) {
			t.Errorf("where missing %q: %s", frag, w)
		}
	}
	if _, ok := s.Items[0].Expr.(*expr.Case); !ok {
		t.Errorf("case item: %T", s.Items[0].Expr)
	}
	if s.Items[0].Alias != "b" {
		t.Errorf("alias: %+v", s.Items[0])
	}
}

func TestParseBetweenBindsBeforeAnd(t *testing.T) {
	// "a between 1 and 2 and b = 3" must parse the first AND as the
	// between separator and the second as a conjunction.
	s := mustParseOne(t, "select * from t where a between 1 and 2 and b = 3").(*SelectStmt)
	b, ok := s.Where.(*expr.Bin)
	if !ok || b.Op != expr.And {
		t.Fatalf("where: %s", s.Where)
	}
	if _, ok := b.L.(*expr.Between); !ok {
		t.Errorf("left: %T", b.L)
	}
}

func TestParseUnion(t *testing.T) {
	s := mustParseOne(t, `select a from t union all select b from u order by a limit 3`).(*SelectStmt)
	if s.Union == nil || !s.UnionAll {
		t.Fatalf("union: %+v", s)
	}
	// ORDER BY / LIMIT hoisted to the union level.
	if len(s.OrderBy) != 1 || s.Top != 3 {
		t.Errorf("hoisting: order=%v top=%d", s.OrderBy, s.Top)
	}
	if len(s.Union.OrderBy) != 0 || s.Union.Top != -1 {
		t.Errorf("rhs kept clauses: %+v", s.Union)
	}
	// Distinct union.
	s = mustParseOne(t, `select a from t union select b from u`).(*SelectStmt)
	if s.Union == nil || s.UnionAll {
		t.Errorf("distinct union: %+v", s)
	}
}

func TestParseCountDistinct(t *testing.T) {
	s := mustParseOne(t, "select count(distinct vid) from t").(*SelectStmt)
	a := s.Items[0].Agg
	if a == nil || a.Kind != relop.AggCount || !a.Distinct || a.Arg == nil {
		t.Errorf("agg: %+v", a)
	}
}

func TestSoftKeywordsAsIdentifiers(t *testing.T) {
	// "day", "hour" etc. are interval units but must still work as column
	// and basket names (Linear Road has a "day" column).
	s := mustParseOne(t, "select d.day, d.hour from dayq d where d.day > 3").(*SelectStmt)
	if s.Items[0].ItemName(0) != "day" || s.Items[1].ItemName(1) != "hour" {
		t.Errorf("items: %+v", s.Items)
	}
	cs := mustParseOne(t, "create basket q (day int, tag timestamp)").(*CreateStmt)
	if cs.Cols[0].Name != "day" {
		t.Errorf("cols: %+v", cs.Cols)
	}
	// Interval shorthand still works.
	s2 := mustParseOne(t, "select * from t where ts > now() - 2 hours").(*SelectStmt)
	if !strings.Contains(s2.Where.String(), "7200000000") {
		t.Errorf("interval: %s", s2.Where)
	}
}

func TestParseIsContinuousThroughUnion(t *testing.T) {
	s := mustParseOne(t, "select v from tt union select t.v from [select * from s] t").(*SelectStmt)
	if !s.IsContinuous() {
		t.Error("union with basket expression should be continuous")
	}
	s = mustParseOne(t, "select v from tt union select v from uu").(*SelectStmt)
	if s.IsContinuous() {
		t.Error("plain union should be one-time")
	}
}
