package stream

import (
	"bufio"
	"io"
	"sync"
	"sync/atomic"

	"datacell/internal/basket"
	"datacell/internal/bat"
)

// Receptor is a separate thread that continuously picks up incoming events
// from a communication channel, validates their structure and forwards
// their content to its basket. Structurally invalid events are counted and
// dropped — the same silent-filter behaviour as basket integrity
// constraints.
type Receptor struct {
	b *basket.Basket
	// BatchSize controls how many validated tuples are collected before a
	// single append into the basket (amortising lock traffic); 1 appends
	// tuple-at-a-time. Flush happens on channel end regardless.
	BatchSize int

	received atomic.Int64
	invalid  atomic.Int64

	mu      sync.Mutex
	wg      sync.WaitGroup
	started bool
}

// NewReceptor returns a receptor feeding basket b with batch size 64.
func NewReceptor(b *basket.Basket) *Receptor {
	return &Receptor{b: b, BatchSize: 64}
}

// Basket returns the destination basket.
func (r *Receptor) Basket() *basket.Basket { return r.b }

// Received returns the number of structurally valid tuples forwarded.
func (r *Receptor) Received() int64 { return r.received.Load() }

// Invalid returns the number of malformed events dropped.
func (r *Receptor) Invalid() int64 { return r.invalid.Load() }

// Listen consumes the textual tuple stream from rd until EOF (or basket
// close) on the calling goroutine. Use Go to run it as the receptor
// thread.
func (r *Receptor) Listen(rd io.Reader) error {
	names, types := r.b.UserSchema()
	// One decode batch for the whole connection: the basket copies the
	// tuples on Append, so the batch is Clear()ed and refilled instead of
	// reallocated per flush.
	batch := bat.NewEmptyRelation(names, types)
	// flush forwards the batch and settles the received accounting: a
	// decoded tuple counts only once it reaches the basket, so a failed
	// flush (basket closed mid-stream) credits exactly the tuples the
	// basket accepted before the failure instead of the whole batch.
	flush := func() error {
		if batch.Len() == 0 {
			return nil
		}
		n, err := r.b.Append(batch)
		if err != nil {
			r.received.Add(int64(n))
		} else {
			// Constraint-dropped tuples were still forwarded; the basket's
			// silent-filter semantics hide them downstream, not here.
			r.received.Add(int64(batch.Len()))
		}
		batch.Clear()
		return err
	}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if err := DecodeRowInto(line, types, batch); err != nil {
			r.invalid.Add(1)
			continue
		}
		if batch.Len() >= r.BatchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return sc.Err()
}

// Go runs Listen on a new goroutine.
func (r *Receptor) Go(rd io.Reader) {
	r.mu.Lock()
	r.started = true
	r.wg.Add(1)
	r.mu.Unlock()
	go func() {
		defer r.wg.Done()
		_ = r.Listen(rd)
	}()
}

// Wait blocks until all Go-launched listeners have finished.
func (r *Receptor) Wait() { r.wg.Wait() }
