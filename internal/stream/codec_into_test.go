package stream

import (
	"strings"
	"testing"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/vector"
)

// TestDecodeRowIntoMatchesDecodeRow checks the typed decode path against
// the boxed one, including its all-or-nothing behaviour on malformed
// lines.
func TestDecodeRowIntoMatchesDecodeRow(t *testing.T) {
	types := []vector.Type{vector.Int, vector.Float, vector.Bool, vector.Str}
	names := []string{"a", "b", "c", "d"}
	good := []string{
		"1|2.5|true|hello",
		"-7|0|false|",
		"0|1e3|true|with spaces\r\n",
	}
	bad := []string{
		"",
		"1|2.5|true",          // too few fields
		"1|2.5|true|x|extra",  // too many fields
		"oops|2.5|true|hello", // unparsable int
	}
	rel := bat.NewEmptyRelation(names, types)
	for _, line := range good {
		vals, err := DecodeRow(line, types)
		if err != nil {
			t.Fatalf("DecodeRow(%q): %v", line, err)
		}
		before := rel.Len()
		if err := DecodeRowInto(line, types, rel); err != nil {
			t.Fatalf("DecodeRowInto(%q): %v", line, err)
		}
		for i, v := range vals {
			if !rel.Col(i).Get(before).Equal(v) {
				t.Fatalf("DecodeRowInto(%q) col %d = %v, want %v", line, i, rel.Col(i).Get(before), v)
			}
		}
	}
	for _, line := range bad {
		before := rel.Len()
		if err := DecodeRowInto(line, types, rel); err == nil {
			t.Fatalf("DecodeRowInto(%q) should fail", line)
		}
		if rel.Len() != before {
			t.Fatalf("DecodeRowInto(%q) left a partial row", line)
		}
		for i := 0; i < rel.NumCols(); i++ {
			if rel.Col(i).Len() != before {
				t.Fatalf("DecodeRowInto(%q) misaligned column %d", line, i)
			}
		}
	}
}

// TestReceptorReusesBatch feeds a receptor more lines than one batch and
// checks counts and contents survive the Clear()-based batch reuse.
func TestReceptorReusesBatch(t *testing.T) {
	b := basket.New("rx", []string{"v", "s"}, []vector.Type{vector.Int, vector.Str})
	r := NewReceptor(b)
	r.BatchSize = 4
	var sb strings.Builder
	for i := 0; i < 11; i++ {
		sb.WriteString("1|x\n")
	}
	sb.WriteString("bad-row\n")
	if err := r.Listen(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	if r.Received() != 11 || r.Invalid() != 1 {
		t.Fatalf("received %d invalid %d, want 11/1", r.Received(), r.Invalid())
	}
	rel := b.TakeAll()
	if rel.Len() != 11 {
		t.Fatalf("basket holds %d tuples, want 11", rel.Len())
	}
	for i := 0; i < 11; i++ {
		if rel.Col(0).Ints()[i] != 1 || rel.Col(1).Strs()[i] != "x" {
			t.Fatalf("row %d corrupted: %v|%v", i, rel.Col(0).Get(i), rel.Col(1).Get(i))
		}
	}
}
