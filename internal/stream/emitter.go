package stream

import (
	"bufio"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
)

// Emitter is a separate thread that picks up result tuples prepared by the
// kernel and delivers them to interested clients. One emitter serves one
// result basket; multiple clients may subscribe to it.
type Emitter struct {
	b *basket.Basket

	mu      sync.Mutex
	writers []io.Writer
	funcs   []func(rel *bat.Relation)

	delivered atomic.Int64
	busy      atomic.Int64 // nanoseconds spent delivering batches
	done      chan struct{}
	started   bool
}

// NewEmitter returns an emitter draining basket b.
func NewEmitter(b *basket.Basket) *Emitter {
	return &Emitter{b: b}
}

// Basket returns the source basket.
func (e *Emitter) Basket() *basket.Basket { return e.b }

// Delivered returns the number of tuples delivered so far.
func (e *Emitter) Delivered() int64 { return e.delivered.Load() }

// Busy returns the cumulative time the emitter thread spent delivering
// batches to its clients — the emit stage of the latency breakdown.
func (e *Emitter) Busy() time.Duration { return time.Duration(e.busy.Load()) }

// SubscribeWriter adds a textual-protocol client: every result tuple is
// written as one line.
func (e *Emitter) SubscribeWriter(w io.Writer) {
	e.mu.Lock()
	e.writers = append(e.writers, w)
	e.mu.Unlock()
}

// Subscribe adds a callback client invoked with each drained batch. The
// callback must not retain the relation.
func (e *Emitter) Subscribe(fn func(rel *bat.Relation)) {
	e.mu.Lock()
	e.funcs = append(e.funcs, fn)
	e.mu.Unlock()
}

// Start launches the emitter thread. It runs until the basket is closed.
func (e *Emitter) Start() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.done = make(chan struct{})
	e.mu.Unlock()
	go func() {
		defer close(e.done)
		nUser := len(firstOf(e.b.UserSchema()))
		for {
			if err := e.b.WaitNotEmpty(1); err != nil {
				return
			}
			rel := e.b.TakeAll()
			if rel.Len() == 0 {
				continue
			}
			e.deliver(rel, nUser)
		}
	}()
}

func firstOf[A, B any](a A, _ B) A { return a }

func (e *Emitter) deliver(rel *bat.Relation, nUser int) {
	start := time.Now()
	defer func() { e.busy.Add(int64(time.Since(start))) }()
	e.mu.Lock()
	writers := append([]io.Writer(nil), e.writers...)
	funcs := append([]func(rel *bat.Relation){}, e.funcs...)
	e.mu.Unlock()
	if len(writers) > 0 {
		lines := EncodeRelation(rel, nUser)
		for _, w := range writers {
			bw := bufio.NewWriter(w)
			for _, l := range lines {
				bw.WriteString(l)
				bw.WriteByte('\n')
			}
			bw.Flush()
		}
	}
	for _, fn := range funcs {
		fn(rel)
	}
	e.delivered.Add(int64(rel.Len()))
}

// Stop closes the underlying basket, which terminates the emitter thread,
// and waits for it to exit.
func (e *Emitter) Stop() {
	e.mu.Lock()
	started := e.started
	done := e.done
	e.mu.Unlock()
	e.b.Close()
	if started {
		<-done
	}
}
