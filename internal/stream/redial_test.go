package stream

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// scriptConn is a net.Conn whose Write fails after failAfter successful
// writes, recording everything written before the failure.
type scriptConn struct {
	net.Conn // panics on unimplemented methods, none are used
	buf      bytes.Buffer
	writes   int
	failAt   int // fail on the Nth write (1-based); 0 = never
	closed   bool
}

func (c *scriptConn) Write(p []byte) (int, error) {
	c.writes++
	if c.failAt > 0 && c.writes >= c.failAt {
		return 0, errors.New("broken pipe")
	}
	return c.buf.Write(p)
}

func (c *scriptConn) Close() error { c.closed = true; return nil }

func TestDialRetryBackoff(t *testing.T) {
	var delays []time.Duration
	fails := 3
	dials := 0
	d := &Dialer{
		Addr:      "test:1",
		Attempts:  5,
		BaseDelay: 10 * time.Millisecond,
		MaxDelay:  40 * time.Millisecond,
		Jitter:    -1, // deterministic
		Dial: func(string) (net.Conn, error) {
			dials++
			if dials <= fails {
				return nil, errors.New("refused")
			}
			return &scriptConn{}, nil
		},
		Sleep: func(dur time.Duration) { delays = append(delays, dur) },
	}
	conn, err := d.DialRetry()
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	conn.Close()
	if dials != 4 {
		t.Fatalf("dials = %d, want 4", dials)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(delays) != len(want) {
		t.Fatalf("delays = %v, want %v", delays, want)
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delay[%d] = %v, want %v (capped doubling)", i, delays[i], want[i])
		}
	}
}

func TestDialRetryExhaustsAttempts(t *testing.T) {
	dials := 0
	d := &Dialer{
		Addr:     "test:1",
		Attempts: 3,
		Jitter:   -1,
		Dial:     func(string) (net.Conn, error) { dials++; return nil, errors.New("refused") },
		Sleep:    func(time.Duration) {},
	}
	_, err := d.DialRetry()
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v, want final error after 3 attempts", err)
	}
	if dials != 3 {
		t.Fatalf("dials = %d, want 3", dials)
	}
}

func TestDialRetryJitterBounded(t *testing.T) {
	d := &Dialer{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.5}
	for i := 0; i < 50; i++ {
		dur := d.delay(1)
		if dur < 100*time.Millisecond || dur > 150*time.Millisecond {
			t.Fatalf("jittered delay %v outside [100ms, 150ms]", dur)
		}
	}
}

func TestReconnWriterResendsRecord(t *testing.T) {
	var conns []*scriptConn
	d := &Dialer{
		Addr:   "test:1",
		Jitter: -1,
		Dial: func(string) (net.Conn, error) {
			c := &scriptConn{}
			if len(conns) == 0 {
				c.failAt = 3 // first conn dies on its third record
			}
			conns = append(conns, c)
			return c, nil
		},
		Sleep: func(time.Duration) {},
	}
	w, err := NewReconnWriter(d)
	if err != nil {
		t.Fatalf("NewReconnWriter: %v", err)
	}
	for _, rec := range []string{"a|1\n", "b|2\n", "c|3\n", "d|4\n"} {
		if _, err := w.Write([]byte(rec)); err != nil {
			t.Fatalf("Write(%q): %v", rec, err)
		}
	}
	w.Close()
	if len(conns) != 2 {
		t.Fatalf("connections = %d, want 2", len(conns))
	}
	if !conns[0].closed {
		t.Fatalf("dead connection not closed")
	}
	if got := conns[0].buf.String(); got != "a|1\nb|2\n" {
		t.Fatalf("conn0 got %q", got)
	}
	// The record that hit the failure was resent whole on the new conn.
	if got := conns[1].buf.String(); got != "c|3\nd|4\n" {
		t.Fatalf("conn1 got %q, want the failed record resent first", got)
	}
	if w.Reconnects != 1 {
		t.Fatalf("Reconnects = %d, want 1", w.Reconnects)
	}
}

func TestReconnWriterSurfacesFinalError(t *testing.T) {
	first := true
	d := &Dialer{
		Addr:     "test:1",
		Attempts: 2,
		Jitter:   -1,
		Dial: func(string) (net.Conn, error) {
			if first {
				first = false
				return &scriptConn{failAt: 1}, nil
			}
			return nil, errors.New("refused")
		},
		Sleep: func(time.Duration) {},
	}
	w, err := NewReconnWriter(d)
	if err != nil {
		t.Fatalf("NewReconnWriter: %v", err)
	}
	if _, err := w.Write([]byte("x|1\n")); err == nil {
		t.Fatalf("Write should surface the exhausted-redial error")
	}
	if _, err := w.Write([]byte("y|2\n")); err == nil {
		t.Fatalf("writes after a failed reconnect should keep failing")
	}
}
