package stream

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/vector"
)

func twoColBasket(name string) *basket.Basket {
	return basket.New(name, []string{"ts", "v"}, []vector.Type{vector.Timestamp, vector.Int})
}

func TestCodecRoundTrip(t *testing.T) {
	types := []vector.Type{vector.Int, vector.Float, vector.Str, vector.Bool, vector.Timestamp}
	row := []vector.Value{
		vector.NewInt(-7), vector.NewFloat(2.5), vector.NewStr("hello"),
		vector.NewBool(true), vector.NewTimestampMicros(12345),
	}
	line := EncodeRow(row)
	got, err := DecodeRow(line+"\r\n", types)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if !got[i].Equal(row[i]) {
			t.Errorf("field %d: %v != %v", i, got[i], row[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	types := []vector.Type{vector.Int, vector.Int}
	cases := []string{"", "1", "1|2|3", "a|2"}
	for _, c := range cases {
		if _, err := DecodeRow(c, types); err == nil {
			t.Errorf("DecodeRow(%q) should fail", c)
		}
	}
}

func TestEncodeRelation(t *testing.T) {
	rel := bat.NewRelation([]string{"a", "b"}, []*vector.Vector{
		vector.FromInts([]int64{1, 2}),
		vector.FromStrs([]string{"x", "y"}),
	})
	lines := EncodeRelation(rel, 0)
	if len(lines) != 2 || lines[0] != "1|x" || lines[1] != "2|y" {
		t.Errorf("lines: %v", lines)
	}
	lines = EncodeRelation(rel, 1)
	if lines[0] != "1" {
		t.Errorf("restricted: %v", lines)
	}
}

func TestReceptorValidatesAndBatches(t *testing.T) {
	b := twoColBasket("in")
	r := NewReceptor(b)
	r.BatchSize = 2
	input := "100|1\nmalformed\n200|2\n300|3\n"
	if err := r.Listen(strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	if r.Received() != 3 || r.Invalid() != 1 {
		t.Errorf("received=%d invalid=%d", r.Received(), r.Invalid())
	}
	if b.Len() != 3 {
		t.Errorf("basket = %d", b.Len())
	}
}

func TestReceptorGoWait(t *testing.T) {
	b := twoColBasket("in")
	r := NewReceptor(b)
	pr, pw := net.Pipe()
	r.Go(pr)
	go func() {
		fmt.Fprintf(pw, "1|10\n2|20\n")
		pw.Close()
	}()
	r.Wait()
	if b.Len() != 2 {
		t.Errorf("basket = %d", b.Len())
	}
}

func TestEmitterDeliversToWriterAndCallback(t *testing.T) {
	b := twoColBasket("out")
	e := NewEmitter(b)
	var buf bytes.Buffer
	var mu sync.Mutex
	e.SubscribeWriter(&syncWriter{w: &buf, mu: &mu})
	var cbRows int
	e.Subscribe(func(rel *bat.Relation) {
		mu.Lock()
		cbRows += rel.Len()
		mu.Unlock()
	})
	e.Start()
	b.AppendRow(vector.NewTimestampMicros(1), vector.NewInt(10))
	b.AppendRow(vector.NewTimestampMicros(2), vector.NewInt(20))
	deadline := time.Now().Add(2 * time.Second)
	for e.Delivered() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	mu.Lock()
	defer mu.Unlock()
	if cbRows != 2 {
		t.Errorf("callback rows = %d", cbRows)
	}
	out := buf.String()
	if !strings.Contains(out, "1|10") || !strings.Contains(out, "2|20") {
		t.Errorf("writer output: %q", out)
	}
	// Only user columns are emitted, not the implicit arrival timestamp.
	if strings.Count(strings.TrimSpace(strings.Split(out, "\n")[0]), FieldSep) != 1 {
		t.Errorf("emitted extra columns: %q", out)
	}
}

type syncWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestTCPPipelineSensorToActuator(t *testing.T) {
	// Full periphery: sensor --TCP--> receptor basket == emitter --TCP--> actuator.
	b := twoColBasket("pipe")
	tr, err := ListenTCP("127.0.0.1:0", NewReceptor(b))
	if err != nil {
		t.Fatal(err)
	}
	te, err := ServeTCP("127.0.0.1:0", NewEmitter(b))
	if err != nil {
		t.Fatal(err)
	}
	// Actuator connects first so it sees everything.
	actuator, err := net.Dial("tcp", te.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer actuator.Close()
	time.Sleep(10 * time.Millisecond) // allow subscription
	te.Emitter.Start()

	sensor, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			fmt.Fprintf(sensor, "%d|%d\n", time.Now().UnixMicro(), i)
		}
		sensor.Close()
	}()

	got := 0
	actuator.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	var acc []byte
	for got < n {
		m, err := actuator.Read(buf)
		if err != nil {
			t.Fatalf("actuator read after %d tuples: %v", got, err)
		}
		acc = append(acc, buf[:m]...)
		got = bytes.Count(acc, []byte{'\n'})
	}
	if got != n {
		t.Errorf("delivered %d, want %d", got, n)
	}
	tr.Close()
	te.Close()
}

func TestReplayerPacing(t *testing.T) {
	trace := "0|a\n0|b\n2|c\n5|d\n"
	var slept []time.Duration
	rp := NewReplayer(0, 1)
	rp.Sleep = func(d time.Duration) { slept = append(slept, d) }
	var out bytes.Buffer
	if err := rp.Replay(strings.NewReader(trace), &out); err != nil {
		t.Fatal(err)
	}
	if rp.Lines != 4 {
		t.Errorf("lines = %d", rp.Lines)
	}
	// Gaps: 0->2 (2s) and 2->5 (3s); same-timestamp tuples do not pause.
	if len(slept) != 2 || slept[0] != 2*time.Second || slept[1] != 3*time.Second {
		t.Errorf("pauses: %v", slept)
	}
	if out.String() != trace {
		t.Errorf("output: %q", out.String())
	}
}

func TestReplayerSpeedupAndNoPacing(t *testing.T) {
	trace := "0|x\n10|y\n"
	var slept []time.Duration
	rp := NewReplayer(0, 5)
	rp.Sleep = func(d time.Duration) { slept = append(slept, d) }
	var out bytes.Buffer
	if err := rp.Replay(strings.NewReader(trace), &out); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Errorf("speedup pauses: %v", slept)
	}
	// TimeCol -1 disables pacing entirely.
	slept = nil
	rp2 := NewReplayer(-1, 1)
	rp2.Sleep = func(d time.Duration) { slept = append(slept, d) }
	if err := rp2.Replay(strings.NewReader(trace), &out); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 0 {
		t.Errorf("unpaced replay slept: %v", slept)
	}
}

func TestFieldInt(t *testing.T) {
	if v, ok := fieldInt("1|22|333", 1); !ok || v != 22 {
		t.Errorf("field 1: %d %v", v, ok)
	}
	if v, ok := fieldInt("1|22|333", 2); !ok || v != 333 {
		t.Errorf("field 2: %d %v", v, ok)
	}
	if _, ok := fieldInt("1|x|3", 1); ok {
		t.Error("non-numeric field parsed")
	}
	if _, ok := fieldInt("1", 3); ok {
		t.Error("missing field parsed")
	}
}
