package stream

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"
)

// Dialer dials a receptor with capped exponential backoff and jitter —
// the sensor-side answer to a kernel that is restarting, recovering its
// WAL, or momentarily out of accept slots. A zero Dialer with just Addr
// set uses the defaults below.
type Dialer struct {
	// Addr is the receptor address ("host:port").
	Addr string
	// Attempts caps how many dials one DialRetry (or one mid-stream
	// reconnect) makes before surfacing the final error. Default 5.
	Attempts int
	// BaseDelay is the pause after the first failure; each further
	// failure doubles it up to MaxDelay. Defaults 50ms and 2s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter scales a uniform random addition to each delay: a delay d
	// becomes d + rand(0, d*Jitter). Default 0.5; negative disables.
	Jitter float64
	// Dial and Sleep are swappable for tests. Defaults: net.Dial("tcp",
	// addr) and time.Sleep.
	Dial  func(addr string) (net.Conn, error)
	Sleep func(d time.Duration)
}

func (d *Dialer) attempts() int {
	if d.Attempts > 0 {
		return d.Attempts
	}
	return 5
}

func (d *Dialer) delay(failures int) time.Duration {
	base := d.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := d.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	delay := base << uint(failures-1)
	if delay > max || delay <= 0 { // <=0 catches shift overflow
		delay = max
	}
	jitter := d.Jitter
	if jitter == 0 {
		jitter = 0.5
	}
	if jitter > 0 {
		delay += time.Duration(rand.Int63n(int64(float64(delay)*jitter) + 1))
	}
	return delay
}

func (d *Dialer) dial() (net.Conn, error) {
	if d.Dial != nil {
		return d.Dial(d.Addr)
	}
	return net.Dial("tcp", d.Addr)
}

func (d *Dialer) sleep(dur time.Duration) {
	if d.Sleep != nil {
		d.Sleep(dur)
		return
	}
	time.Sleep(dur)
}

// DialRetry dials Addr, retrying with exponential backoff and jitter up
// to Attempts times, and returns the connection or the final error.
func (d *Dialer) DialRetry() (net.Conn, error) {
	var err error
	for i := 1; i <= d.attempts(); i++ {
		var conn net.Conn
		conn, err = d.dial()
		if err == nil {
			return conn, nil
		}
		if i < d.attempts() {
			d.sleep(d.delay(i))
		}
	}
	return nil, fmt.Errorf("stream: dial %s failed after %d attempts: %w", d.Addr, d.attempts(), err)
}

// ReconnWriter is a record-aligned retrying writer over a Dialer: each
// Write must carry one complete wire record (a binary frame or a textual
// line), so that a reconnect never splits a record across connections.
// On a write error it closes the dead connection, redials with backoff,
// and resends the same record on the fresh connection; only when the
// dialer's attempts are exhausted does the error surface to the caller.
//
// Redelivery is at-least-once: records buffered in a dead kernel's
// socket are lost with it, and a record whose write half-succeeded
// before the failure may arrive twice. The WAL tee on the receiving side
// makes accepted records durable; exactly-once is out of scope.
type ReconnWriter struct {
	d    *Dialer
	conn net.Conn
	// Reconnects counts mid-stream redials (not the initial dial).
	Reconnects int
}

var _ io.WriteCloser = (*ReconnWriter)(nil)

// NewReconnWriter dials the target (with retry) and returns the writer.
func NewReconnWriter(d *Dialer) (*ReconnWriter, error) {
	conn, err := d.DialRetry()
	if err != nil {
		return nil, err
	}
	return &ReconnWriter{d: d, conn: conn}, nil
}

// Write sends one complete record, reconnecting and resending on failure.
func (w *ReconnWriter) Write(p []byte) (int, error) {
	if w.conn == nil {
		return 0, fmt.Errorf("stream: write on closed ReconnWriter")
	}
	if _, err := w.conn.Write(p); err == nil {
		return len(p), nil
	}
	w.conn.Close()
	conn, err := w.d.DialRetry()
	if err != nil {
		w.conn = nil
		return 0, err
	}
	w.conn = conn
	w.Reconnects++
	if _, err := w.conn.Write(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Close closes the current connection.
func (w *ReconnWriter) Close() error {
	if w.conn == nil {
		return nil
	}
	err := w.conn.Close()
	w.conn = nil
	return err
}
