package stream

import (
	"bufio"
	"io"
	"strconv"
	"strings"
	"time"
)

// Replayer feeds a recorded tuple trace (one pipe-separated tuple per
// line, as produced by cmd/lrgen or EncodeRelation) into an io.Writer —
// typically a TCP connection to a receptor — optionally pacing tuples by a
// timestamp column, so a three-hour trace can be replayed at any speedup.
// It is the sensor tool of the paper's experimental setup.
type Replayer struct {
	// TimeCol is the zero-based field carrying the tuple's timestamp in
	// seconds; -1 disables pacing (replay as fast as possible).
	TimeCol int
	// Speedup divides the trace's inter-tuple gaps: 60 replays an hour of
	// trace per minute. Values <= 0 mean 1.
	Speedup float64
	// Sleep is replaceable for tests; defaults to time.Sleep.
	Sleep func(d time.Duration)

	Lines  int64 // lines replayed
	Paused time.Duration
}

// NewReplayer returns a pacing replayer on the given timestamp column.
func NewReplayer(timeCol int, speedup float64) *Replayer {
	return &Replayer{TimeCol: timeCol, Speedup: speedup}
}

// ReplayFunc paces the trace through arbitrary emitters: every
// non-empty line is handed to emit in trace order, and flush (if
// non-nil) runs before every pacing pause and once at the end, so
// downstream sees tuples at their paced times whatever the transport —
// a single writer, several sharded connections, a binary frame encoder.
func (rp *Replayer) ReplayFunc(r io.Reader, emit func(line string) error, flush func() error) error {
	sleep := rp.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	speed := rp.Speedup
	if speed <= 0 {
		speed = 1
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var last int64 = -1
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rp.TimeCol >= 0 {
			if ts, ok := fieldInt(line, rp.TimeCol); ok {
				if last >= 0 && ts > last {
					gap := time.Duration(float64(ts-last) * float64(time.Second) / speed)
					if flush != nil {
						if err := flush(); err != nil {
							return err
						}
					}
					sleep(gap)
					rp.Paused += gap
				}
				last = ts
			}
		}
		if err := emit(line); err != nil {
			return err
		}
		rp.Lines++
	}
	if flush != nil {
		if err := flush(); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Replay copies the trace from r to w, pacing by the timestamp column.
func (rp *Replayer) Replay(r io.Reader, w io.Writer) error {
	bw := bufio.NewWriter(w)
	return rp.ReplayFunc(r,
		func(line string) error {
			if _, err := bw.WriteString(line); err != nil {
				return err
			}
			return bw.WriteByte('\n')
		},
		bw.Flush)
}

// fieldInt extracts the i-th pipe-separated field as an integer.
func fieldInt(line string, i int) (int64, bool) {
	for ; i > 0; i-- {
		k := strings.IndexByte(line, '|')
		if k < 0 {
			return 0, false
		}
		line = line[k+1:]
	}
	if k := strings.IndexByte(line, '|'); k >= 0 {
		line = line[:k]
	}
	v, err := strconv.ParseInt(line, 10, 64)
	return v, err == nil
}
