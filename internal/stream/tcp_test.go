package stream

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/vector"
)

// TestTCPReceptorCloseAcceptRace is the regression test for the
// accept/close race: an accept that wins the race with ln.Close() must
// not join the wait group after Close started waiting (a WaitGroup
// misuse panic) and Close must be idempotent. Run under -race in CI.
func TestTCPReceptorCloseAcceptRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		b := basket.New("s", []string{"v"}, []vector.Type{vector.Int})
		tr, err := ListenTCP("127.0.0.1:0", NewReceptor(b))
		if err != nil {
			t.Fatal(err)
		}
		addr := tr.Addr()
		var wg sync.WaitGroup
		stop := make(chan struct{})
		// Dial storm: keep new connections racing against Close.
		for d := 0; d < 4; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					conn, err := net.Dial("tcp", addr)
					if err != nil {
						return
					}
					fmt.Fprintf(conn, "%d\n", 1)
					conn.Close()
				}
			}()
		}
		// Concurrent double-Close: both must return without panicking.
		var cwg sync.WaitGroup
		for c := 0; c < 2; c++ {
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				tr.Close()
			}()
		}
		cwg.Wait()
		tr.Close() // and a third, after the drain
		close(stop)
		wg.Wait()
	}
}

// TestReceptorFlushErrorAccounting pins the exact received accounting:
// tuples count once they reach the basket, so a flush that fails against
// a closed basket credits nothing for the lost batch — not the whole
// batch, as the pre-fix accounting did.
func TestReceptorFlushErrorAccounting(t *testing.T) {
	b := basket.New("s", []string{"v"}, []vector.Type{vector.Int})
	r := NewReceptor(b)
	r.BatchSize = 4

	var feed strings.Builder
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&feed, "%d\n", i)
	}
	// Close the basket after the first flush lands, so a later flush
	// fails with ErrClosed while tuples are still buffered.
	firstFlush := make(chan struct{})
	proceed := make(chan struct{})
	b.SetOnAppend(func() {
		select {
		case firstFlush <- struct{}{}:
			<-proceed
		default:
		}
	})
	errc := make(chan error, 1)
	go func() { errc <- r.Listen(strings.NewReader(feed.String())) }()
	<-firstFlush
	b.Close()
	close(proceed)
	err := <-errc
	if err == nil {
		t.Fatal("Listen returned nil; want the flush error")
	}
	// Exactly one batch of 4 made it before the close; the failed batch
	// must not be credited.
	if got := r.Received(); got != 4 {
		t.Fatalf("received = %d after a failed flush, want exactly the 4 appended tuples", got)
	}
	if b.Len() != 4 {
		t.Fatalf("basket holds %d tuples, want 4", b.Len())
	}
}

// TestReceptorReceivedCountsConstraintDropped pins that received keeps
// its forwarded semantics: tuples silently dropped by basket integrity
// constraints still count (they were forwarded; the basket's silent
// filter hides them downstream), only structural rejects and failed
// flushes do not.
func TestReceptorReceivedCountsConstraintDropped(t *testing.T) {
	b := basket.New("s", []string{"v"}, []vector.Type{vector.Int})
	b.AddConstraint(basket.Constraint{
		Name: "nonneg",
		Check: func(rel *bat.Relation) []int32 {
			var keep []int32
			vs := rel.ColByName("v").Ints()
			for i, v := range vs {
				if v >= 0 {
					keep = append(keep, int32(i))
				}
			}
			return keep
		},
	})
	r := NewReceptor(b)
	r.BatchSize = 100
	if err := r.Listen(strings.NewReader("1\n-2\n3\nbogus\n")); err != nil {
		t.Fatal(err)
	}
	if got := r.Received(); got != 3 {
		t.Fatalf("received = %d, want 3 (constraint drops still count as forwarded)", got)
	}
	if r.Invalid() != 1 {
		t.Fatalf("invalid = %d, want 1", r.Invalid())
	}
	if b.Len() != 2 {
		t.Fatalf("basket holds %d tuples, want 2 after the constraint filter", b.Len())
	}
}
