// Package stream implements the periphery of the DataCell: receptors that
// pick up events from communication channels and place them in baskets, and
// emitters that deliver result tuples to subscribed clients. The
// interchange format is purposely simple — flat relational tuples in a
// textual, pipe-separated form — matching the paper's adapter design.
// Receptors and emitters run as independent goroutines; together with the
// factories between them they form the multi-threaded Petri net through
// which the stream flows.
package stream

import (
	"fmt"
	"strings"

	"datacell/internal/bat"
	"datacell/internal/vector"
)

// FieldSep separates attribute values in the textual tuple format.
const FieldSep = "|"

// EncodeRow renders one tuple in the flat textual interchange format.
func EncodeRow(vals []vector.Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.String()
	}
	return strings.Join(parts, FieldSep)
}

// DecodeRow parses one textual tuple according to the given types.
func DecodeRow(line string, types []vector.Type) ([]vector.Value, error) {
	line = strings.TrimRight(line, "\r\n")
	if line == "" {
		return nil, fmt.Errorf("stream: empty tuple")
	}
	parts := strings.Split(line, FieldSep)
	if len(parts) != len(types) {
		return nil, fmt.Errorf("stream: tuple has %d fields, want %d", len(parts), len(types))
	}
	vals := make([]vector.Value, len(parts))
	for i, p := range parts {
		v, err := vector.ParseValue(types[i], p)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

// EncodeRelation renders every tuple of rel, one line each, restricted to
// its first ncols columns (use rel.NumCols() for all).
func EncodeRelation(rel *bat.Relation, ncols int) []string {
	if ncols <= 0 || ncols > rel.NumCols() {
		ncols = rel.NumCols()
	}
	out := make([]string, rel.Len())
	row := make([]vector.Value, ncols)
	for i := 0; i < rel.Len(); i++ {
		for j := 0; j < ncols; j++ {
			row[j] = rel.Col(j).Get(i)
		}
		out[i] = EncodeRow(row)
	}
	return out
}
