// Package stream implements the periphery of the DataCell: receptors that
// pick up events from communication channels and place them in baskets, and
// emitters that deliver result tuples to subscribed clients. The
// interchange format is purposely simple — flat relational tuples in a
// textual, pipe-separated form — matching the paper's adapter design.
// Receptors and emitters run as independent goroutines; together with the
// factories between them they form the multi-threaded Petri net through
// which the stream flows.
package stream

import (
	"fmt"
	"strings"

	"datacell/internal/bat"
	"datacell/internal/vector"
)

// FieldSep separates attribute values in the textual tuple format.
const FieldSep = "|"

// EncodeRow renders one tuple in the flat textual interchange format.
func EncodeRow(vals []vector.Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.String()
	}
	return strings.Join(parts, FieldSep)
}

// DecodeRow parses one textual tuple according to the given types.
func DecodeRow(line string, types []vector.Type) ([]vector.Value, error) {
	vals := make([]vector.Value, len(types))
	if err := decodeFields(line, types, vals); err != nil {
		return nil, err
	}
	return vals, nil
}

// decodeFields parses the pipe-separated fields of line into vals
// (len(vals) == len(types)) without allocating: fields are substrings of
// line and every value is validated before any is considered accepted.
func decodeFields(line string, types []vector.Type, vals []vector.Value) error {
	line = strings.TrimRight(line, "\r\n")
	if line == "" {
		return fmt.Errorf("stream: empty tuple")
	}
	rest := line
	for i := range types {
		var field string
		k := strings.IndexByte(rest, FieldSep[0])
		switch {
		case k < 0 && i == len(types)-1:
			field = rest
			rest = ""
		case k < 0:
			return fmt.Errorf("stream: tuple has %d fields, want %d", i+1, len(types))
		case i == len(types)-1:
			return fmt.Errorf("stream: tuple has more than %d fields", len(types))
		default:
			field, rest = rest[:k], rest[k+1:]
		}
		v, err := vector.ParseValue(types[i], field)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	return nil
}

// DecodeRowInto parses one textual tuple straight into the columns of rel
// (whose schema must match types), appending one row with typed column
// appends — no per-row slice and no boxing that outlives the call. The
// row is validated in full before anything is appended, so a malformed
// line leaves rel untouched.
func DecodeRowInto(line string, types []vector.Type, rel *bat.Relation) error {
	var buf [16]vector.Value
	vals := buf[:]
	if len(types) > len(vals) {
		vals = make([]vector.Value, len(types))
	} else {
		vals = vals[:len(types)]
	}
	if err := decodeFields(line, types, vals); err != nil {
		return err
	}
	for i, v := range vals {
		rel.Col(i).Append(v)
	}
	return nil
}

// EncodeRelation renders every tuple of rel, one line each, restricted to
// its first ncols columns (use rel.NumCols() for all).
func EncodeRelation(rel *bat.Relation, ncols int) []string {
	if ncols <= 0 || ncols > rel.NumCols() {
		ncols = rel.NumCols()
	}
	out := make([]string, rel.Len())
	row := make([]vector.Value, ncols)
	for i := 0; i < rel.Len(); i++ {
		for j := 0; j < ncols; j++ {
			row[j] = rel.Col(j).Get(i)
		}
		out[i] = EncodeRow(row)
	}
	return out
}
