package stream

import (
	"net"
	"sync"
)

// TCPReceptor listens on a TCP address and feeds every accepted
// connection's tuple stream into the receptor's basket. It models the
// paper's sensor-to-kernel channel.
type TCPReceptor struct {
	*Receptor
	ln   net.Listener
	mu   sync.Mutex
	wg   sync.WaitGroup
	stop bool
}

// ListenTCP starts a TCP receptor on addr (e.g. "127.0.0.1:0"). The
// returned receptor is already accepting connections; query Addr for the
// bound address.
func ListenTCP(addr string, r *Receptor) (*TCPReceptor, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCPReceptor{Receptor: r, ln: ln}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCPReceptor) Addr() string { return t.ln.Addr().String() }

func (t *TCPReceptor) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		// An accept can win the race with ln.Close(): re-check the stop
		// flag under the lock before joining the wait group, so Close
		// never observes a wg.Add after its Wait started (a WaitGroup
		// misuse panic) and never strands a connection handler.
		t.mu.Lock()
		if t.stop {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.wg.Add(1)
		t.mu.Unlock()
		go func() {
			defer t.wg.Done()
			defer conn.Close()
			_ = t.Listen(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections to drain.
// Idempotent: concurrent and repeated calls all block until the drain
// completes.
func (t *TCPReceptor) Close() {
	t.mu.Lock()
	already := t.stop
	t.stop = true
	t.mu.Unlock()
	if !already {
		t.ln.Close()
	}
	t.wg.Wait()
}

// TCPEmitter serves an emitter's result stream over TCP: every accepted
// client is subscribed and receives all subsequent result tuples. It
// models the kernel-to-actuator channel.
type TCPEmitter struct {
	*Emitter
	ln net.Listener
	wg sync.WaitGroup
}

// ServeTCP starts a TCP emitter on addr.
func ServeTCP(addr string, e *Emitter) (*TCPEmitter, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCPEmitter{Emitter: e, ln: ln}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCPEmitter) Addr() string { return t.ln.Addr().String() }

func (t *TCPEmitter) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.SubscribeWriter(conn)
	}
}

// Close stops accepting new clients and shuts down the emitter.
func (t *TCPEmitter) Close() {
	t.ln.Close()
	t.wg.Wait()
	t.Stop()
}
