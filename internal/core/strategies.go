package core

import (
	"fmt"
	"slices"
	"sync"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/vector"
)

// stagePool recycles gather staging relations for firing bodies that are
// shared across factories (partition clones invoke the same StreamQuery
// Fire concurrently, so the staging cannot live in the closure).
var stagePool = sync.Pool{New: func() any { return &bat.Relation{} }}

// StreamQuery is one continuous query over a stream, in the form the
// multi-query wiring strategies consume. It generalises the earlier
// positional ScanQuery callbacks so that fully compiled plans (the plan
// package's StreamScan artifacts) and hand-wired kernel scans plug into
// the same wirings — including the partitioned ones, which clone a query
// per partition by substituting Out with a per-partition staging basket.
//
// Fire runs the query once over `in`, a basket holding tuples of the
// query's input stream, appending results to `out`. The consumption
// contract depends on the report argument:
//
//   - report == nil: the query owns `in` exclusively (separate-baskets
//     private copy, or a partial-deletes chain basket). It must delete the
//     tuples its basket expression covers from `in` and leave the rest.
//   - report != nil: `in` is shared with other queries. The query must not
//     modify `in`; it reports the positions its basket expression covered
//     through report instead, and the group wiring deletes them once every
//     member is done.
//
// Both in and out (and every LockOnly basket) are locked by the wiring for
// the duration of the firing.
type StreamQuery struct {
	Name      string
	Threshold int            // minimum input tuples per firing; <=1 means any
	Out       *basket.Basket // result basket; wirings may substitute staging here
	LockOnly  []*basket.Basket
	Fire      func(in, out *basket.Basket, report func(covered []int32)) error
	// Combine, when non-nil, marks the query as two-phase under
	// partitioned wiring: clones run Combine.Partial into staging baskets
	// shaped by Combine's partial schema, and a CombiningMergeEmitter
	// folds the staged partial states into the result basket. Ignored by
	// the unpartitioned wirings, which run Fire against the whole stream.
	Combine *Combine
}

// outputs is the factory output set of the query: result basket first,
// then the read-only side baskets.
func (q StreamQuery) outputs() []*basket.Basket {
	return append([]*basket.Basket{q.Out}, q.LockOnly...)
}

// ScanQuery describes one continuous query as a positional scan callback:
// Scan inspects the (locked) input relation and returns the positions that
// match the query (emitted to its result basket) and the positions covered
// by the query's basket expression (eligible for removal once every query
// in the group has seen them). For a full-stream query both are usually
// the same. It is the micro-benchmark and test idiom; Bind turns it into a
// StreamQuery for the wiring strategies.
type ScanQuery struct {
	Name string
	Scan func(rel *bat.Relation) (matched, covered []int32)
}

// Bind attaches a result basket to the scan callback, producing the
// generalised StreamQuery form.
func (q ScanQuery) Bind(out *basket.Basket) StreamQuery {
	scan := q.Scan
	return StreamQuery{
		Name: q.Name,
		Out:  out,
		Fire: func(in, out *basket.Basket, report func(covered []int32)) error {
			rel := in.RelLocked()
			matched, covered := scan(rel)
			if len(matched) > 0 {
				stage := stagePool.Get().(*bat.Relation)
				_, err := out.AppendLocked(rel.GatherInto(stage, matched))
				stagePool.Put(stage)
				if err != nil {
					return err
				}
			}
			if report != nil {
				report(covered)
				return nil
			}
			if len(covered) > 0 {
				in.DeleteLocked(sortedPositions(covered))
			}
			return nil
		},
	}
}

// sortedPositions returns the ascending, deduplicated copy of a position
// list, the form the basket delete operations require.
func sortedPositions(sel []int32) []int32 {
	out := slices.Clone(sel)
	slices.Sort(out)
	return slices.Compact(out)
}

// NewReplicator builds the fan-out factory of the separate-baskets
// strategy: every firing moves all tuples of in into each of the outs,
// replicating the stream once per interested query. Two relations
// ping-pong through ExchangeLocked so the input basket's column capacity
// is reused across firings (firings of one factory are serialised, so the
// closure-held spare needs no locking beyond the firing's basket locks).
func NewReplicator(name string, in *basket.Basket, outs []*basket.Basket) (*Factory, error) {
	var spare *bat.Relation
	return NewFactory(name, []*basket.Basket{in}, outs, func(ctx *Context) error {
		rel := ctx.In(0).ExchangeLocked(spare)
		spare = rel
		if rel.Len() == 0 {
			return nil
		}
		for i := 0; i < ctx.NumOut(); i++ {
			if _, err := ctx.Out(i).AppendLocked(rel); err != nil {
				return err
			}
		}
		return nil
	})
}

// NewStreamQueryFactory wires one StreamQuery in the separate-baskets
// style: the query owns `in` exclusively and each firing lets it consume
// the tuples its basket expression covers. A generation guard makes the
// factory fire only on new arrivals, so residual (uncovered) tuples —
// a predicate window waiting for more data — do not retrigger it.
func NewStreamQueryFactory(name string, in *basket.Basket, q StreamQuery) (*Factory, error) {
	lastGen := int64(-1)
	f, err := NewFactory(name, []*basket.Basket{in}, q.outputs(), func(ctx *Context) error {
		lastGen = ctx.In(0).AppendedLocked()
		return q.Fire(ctx.In(0), q.Out, nil)
	})
	if err != nil {
		return nil, err
	}
	f.SetGuard(func(ctx *Context) bool { return ctx.In(0).AppendedLocked() != lastGen })
	if q.Threshold > 1 {
		f.SetThreshold(0, q.Threshold)
	}
	return f, nil
}

// SeparateBaskets wires the paper's first strategy around stream basket in:
// a replicator copies arriving tuples into one private basket per query and
// each query runs independently over its own copy (Figure 2a). It returns
// the replicator followed by one factory per query.
func SeparateBaskets(prefix string, in *basket.Basket, queries []StreamQuery) ([]*Factory, error) {
	names, types := in.UserSchema()
	privates := make([]*basket.Basket, len(queries))
	for i := range queries {
		privates[i] = basket.New(fmt.Sprintf("%s.copy.%d", prefix, i), names, types)
	}
	rep, err := NewReplicator(prefix+".replicate", in, privates)
	if err != nil {
		return nil, err
	}
	fs := []*Factory{rep}
	for i, q := range queries {
		f, err := NewStreamQueryFactory(fmt.Sprintf("%s.q.%s", prefix, q.Name), privates[i], q)
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	return fs, nil
}

// flagSchema is the single-bit schema of the locker's "go" baskets and the
// readers' "done" marker rows.
var (
	flagNames = []string{"flag"}
	flagTypes = []vector.Type{vector.Bool}
)

// flagRel is the shared one-row token relation appended to go/done/idle
// baskets. Appends copy out of it and nothing mutates it, so every firing
// can reuse the same instance.
var flagRel = func() *bat.Relation {
	r := bat.NewEmptyRelation(flagNames, flagTypes)
	r.AppendRow(vector.NewBool(true))
	return r
}()

func flagRow() *bat.Relation { return flagRel }

// SharedBaskets wires the paper's second strategy (Figure 2b): all queries
// share the stream basket. A locker factory L fires when the shared basket
// holds tuples and the group is idle; it blocks the stream and hands one
// "go" token to every query. Each query scans the shared basket without
// deleting, emits its matches, and marks the positions its basket
// expression covered as cover credits on the shared basket. Once every
// query is done, the unlocker factory U removes the union of covered
// tuples in one step and unblocks the stream. The returned factories are
// ordered [locker, query 0 … query k-1, unlocker].
func SharedBaskets(prefix string, shared *basket.Basket, queries []StreamQuery) ([]*Factory, error) {
	k := len(queries)
	idle := basket.New(prefix+".idle", flagNames, flagTypes)
	if err := idle.AppendRow(vector.NewBool(true)); err != nil {
		return nil, err
	}
	goB := make([]*basket.Basket, k)
	doneB := make([]*basket.Basket, k)
	for i := range queries {
		goB[i] = basket.New(fmt.Sprintf("%s.go.%d", prefix, i), flagNames, flagTypes)
		doneB[i] = basket.New(fmt.Sprintf("%s.done.%d", prefix, i), flagNames, flagTypes)
	}

	// Locker: consumes the idle token, blocks the stream, releases the
	// group. The guard makes it fire only when tuples arrived since the
	// previous cycle, so residual (uncovered) tuples do not retrigger the
	// whole group.
	var lastGen int64
	var idleSpare *bat.Relation
	locker, err := NewFactory(prefix+".lock",
		[]*basket.Basket{shared, idle}, goB,
		func(ctx *Context) error {
			idleSpare = ctx.In(1).ExchangeLocked(idleSpare) // consume idle token
			lastGen = ctx.In(0).AppendedLocked()
			ctx.In(0).SetEnabledLocked(false)
			row := flagRow()
			for i := 0; i < ctx.NumOut(); i++ {
				if _, err := ctx.Out(i).AppendLocked(row); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	locker.SetGuard(func(ctx *Context) bool {
		return ctx.In(0).AppendedLocked() != lastGen
	})
	// Batch thresholds gate the whole group at the locker: once the stream
	// is blocked the readers must be able to run, so they cannot wait on a
	// tuple count themselves.
	maxTh := 1
	for _, q := range queries {
		if q.Threshold > maxTh {
			maxTh = q.Threshold
		}
	}
	if maxTh > 1 {
		locker.SetThreshold(0, maxTh)
	}
	fs := []*Factory{locker}

	for i, q := range queries {
		q := q
		outs := append(q.outputs(), doneB[i])
		var goSpare *bat.Relation
		var covBuf []int32
		reader, err := NewFactory(fmt.Sprintf("%s.q.%s", prefix, q.Name),
			[]*basket.Basket{shared, goB[i]}, outs,
			func(ctx *Context) error {
				goSpare = ctx.In(1).ExchangeLocked(goSpare) // consume go token
				covered := covBuf[:0]
				fireErr := q.Fire(ctx.In(0), q.Out, func(c []int32) {
					covered = append(covered, c...)
				})
				// Record the cover credits and mark this reader done so the
				// unlocker's firing condition is met. The done flag goes out
				// even when the query failed: a missing flag would wedge the
				// whole group with the stream left blocked, turning one bad
				// firing into a permanent stall.
				slices.Sort(covered)
				covered = slices.Compact(covered)
				ctx.In(0).CoverLocked(covered)
				covBuf = covered
				if _, err := ctx.Out(ctx.NumOut() - 1).AppendLocked(flagRow()); err != nil {
					return err
				}
				return fireErr
			})
		if err != nil {
			return nil, err
		}
		fs = append(fs, reader)
	}

	// Unlocker: once all done markers are in, delete every tuple some
	// query covered from the shared basket in one step and unblock the
	// stream.
	unlockIns := append([]*basket.Basket(nil), doneB...)
	doneSpares := make([]*bat.Relation, len(doneB))
	unlocker, err := NewFactory(prefix+".unlock",
		unlockIns, []*basket.Basket{idle, shared},
		func(ctx *Context) error {
			for i := 0; i < ctx.NumIn(); i++ {
				doneSpares[i] = ctx.In(i).ExchangeLocked(doneSpares[i])
			}
			ctx.Out(1).DeleteCoveredLocked(1)
			ctx.Out(1).SetEnabledLocked(true)
			_, err := ctx.Out(0).AppendLocked(flagRow())
			return err
		})
	if err != nil {
		return nil, err
	}
	return append(fs, unlocker), nil
}

// PartialDeletes wires the paper's third strategy (Figure 2c): the queries
// form a chain. Each query consumes its chain basket, removes the tuples
// covered by its basket expression and forwards only the residue to the
// next query, so later queries analyse progressively less data at the cost
// of reorganising the basket at every step. The last query's residue is
// dropped (garbage collection of tuples no query needs). The returned
// factories are in query order.
func PartialDeletes(prefix string, in *basket.Basket, queries []StreamQuery) ([]*Factory, error) {
	names, types := in.UserSchema()
	chain := in
	var fs []*Factory
	for i, q := range queries {
		q := q
		last := i == len(queries)-1
		var next *basket.Basket
		outs := q.outputs()
		if !last {
			next = basket.New(fmt.Sprintf("%s.chain.%d", prefix, i+1), names, types)
			outs = append(outs, next)
		}
		var spare *bat.Relation
		f, err := NewFactory(fmt.Sprintf("%s.q.%s", prefix, q.Name),
			[]*basket.Basket{chain}, outs,
			func(ctx *Context) error {
				if ctx.In(0).LenLocked() == 0 {
					return nil
				}
				// The query consumes the tuples it covers; what remains in
				// the chain basket afterwards is the residue.
				if err := q.Fire(ctx.In(0), q.Out, nil); err != nil {
					return err
				}
				residue := ctx.In(0).ExchangeLocked(spare)
				spare = residue
				if next != nil && residue.Len() > 0 {
					if _, err := next.AppendLocked(residue); err != nil {
						return err
					}
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
		if q.Threshold > 1 {
			f.SetThreshold(0, q.Threshold)
		}
		fs = append(fs, f)
		chain = next
	}
	return fs, nil
}
