package core

import (
	"fmt"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/relop"
	"datacell/internal/vector"
)

// ScanQuery describes one continuous query for the multi-query processing
// strategies. Scan inspects the (locked) input relation and returns the
// positions that match the query (emitted to its result basket) and the
// positions covered by the query's basket expression (eligible for removal
// once every query in the group has seen them). For a full-stream query
// both are usually the same.
type ScanQuery struct {
	Name string
	Scan func(rel *bat.Relation) (matched, covered []int32)
}

// NewReplicator builds the fan-out factory of the separate-baskets
// strategy: every firing moves all tuples of in into each of the outs,
// replicating the stream once per interested query.
func NewReplicator(name string, in *basket.Basket, outs []*basket.Basket) (*Factory, error) {
	return NewFactory(name, []*basket.Basket{in}, outs, func(ctx *Context) error {
		rel := ctx.In(0).TakeAllLocked()
		if rel.Len() == 0 {
			return nil
		}
		for i := 0; i < ctx.NumOut(); i++ {
			if _, err := ctx.Out(i).AppendLocked(rel); err != nil {
				return err
			}
		}
		return nil
	})
}

// NewScanFactory builds a single-query factory in the separate-baskets
// style: it owns its input exclusively, so each firing consumes the whole
// basket, emits the matching tuples and drops the rest.
func NewScanFactory(name string, in, out *basket.Basket, scan func(rel *bat.Relation) []int32) (*Factory, error) {
	return NewFactory(name, []*basket.Basket{in}, []*basket.Basket{out}, func(ctx *Context) error {
		rel := ctx.In(0).TakeAllLocked()
		if rel.Len() == 0 {
			return nil
		}
		sel := scan(rel)
		if len(sel) == 0 {
			return nil
		}
		_, err := ctx.Out(0).AppendLocked(rel.Gather(sel))
		return err
	})
}

// SeparateBaskets wires the paper's first strategy around stream basket in:
// a replicator copies arriving tuples into one private basket per query and
// each query runs independently over its own copy (Figure 2a). It returns
// all factories to register.
func SeparateBaskets(prefix string, in *basket.Basket, queries []ScanQuery, results []*basket.Basket) ([]*Factory, error) {
	if len(queries) != len(results) {
		return nil, fmt.Errorf("core: %d queries but %d result baskets", len(queries), len(results))
	}
	names, types := in.UserSchema()
	privates := make([]*basket.Basket, len(queries))
	for i := range queries {
		privates[i] = basket.New(fmt.Sprintf("%s.copy.%d", prefix, i), names, types)
	}
	rep, err := NewReplicator(prefix+".replicate", in, privates)
	if err != nil {
		return nil, err
	}
	fs := []*Factory{rep}
	for i, q := range queries {
		q := q
		f, err := NewScanFactory(fmt.Sprintf("%s.q.%s", prefix, q.Name), privates[i], results[i],
			func(rel *bat.Relation) []int32 { m, _ := q.Scan(rel); return m })
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	return fs, nil
}

// flagSchema is the single-bit schema of the locker's "go" baskets and the
// readers' "done" marker rows.
var (
	flagNames = []string{"flag"}
	flagTypes = []vector.Type{vector.Bool}
	posNames  = []string{"pos"}
	posTypes  = []vector.Type{vector.Int}
)

func flagRow() *bat.Relation {
	r := bat.NewEmptyRelation(flagNames, flagTypes)
	r.AppendRow(vector.NewBool(true))
	return r
}

// SharedBaskets wires the paper's second strategy (Figure 2b): all queries
// share the stream basket. A locker factory L fires when the shared basket
// holds tuples and the group is idle; it blocks the stream and hands one
// "go" token to every query. Each query scans the shared basket without
// deleting, emits its matches, and reports the positions its basket
// expression covered. Once every query is done, the unlocker factory U
// removes the union of covered positions in one step and unblocks the
// stream.
func SharedBaskets(prefix string, shared *basket.Basket, queries []ScanQuery, results []*basket.Basket) ([]*Factory, error) {
	if len(queries) != len(results) {
		return nil, fmt.Errorf("core: %d queries but %d result baskets", len(queries), len(results))
	}
	k := len(queries)
	idle := basket.New(prefix+".idle", flagNames, flagTypes)
	if err := idle.AppendRow(vector.NewBool(true)); err != nil {
		return nil, err
	}
	goB := make([]*basket.Basket, k)
	doneB := make([]*basket.Basket, k)
	for i := range queries {
		goB[i] = basket.New(fmt.Sprintf("%s.go.%d", prefix, i), flagNames, flagTypes)
		doneB[i] = basket.New(fmt.Sprintf("%s.done.%d", prefix, i), posNames, posTypes)
	}

	// Locker: consumes the idle token, blocks the stream, releases the
	// group. The guard makes it fire only when tuples arrived since the
	// previous cycle, so residual (uncovered) tuples do not retrigger the
	// whole group.
	var lastGen int64
	locker, err := NewFactory(prefix+".lock",
		[]*basket.Basket{shared, idle}, goB,
		func(ctx *Context) error {
			ctx.In(1).TakeAllLocked() // consume idle token
			lastGen = ctx.In(0).AppendedLocked()
			ctx.In(0).SetEnabledLocked(false)
			row := flagRow()
			for i := 0; i < ctx.NumOut(); i++ {
				if _, err := ctx.Out(i).AppendLocked(row); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	locker.SetGuard(func(ctx *Context) bool {
		return ctx.In(0).AppendedLocked() != lastGen
	})
	fs := []*Factory{locker}

	for i, q := range queries {
		q := q
		reader, err := NewFactory(fmt.Sprintf("%s.q.%s", prefix, q.Name),
			[]*basket.Basket{shared, goB[i]},
			[]*basket.Basket{results[i], doneB[i]},
			func(ctx *Context) error {
				ctx.In(1).TakeAllLocked() // consume go token
				rel := ctx.In(0).RelLocked()
				matched, covered := q.Scan(rel)
				if len(matched) > 0 {
					if _, err := ctx.Out(0).AppendLocked(rel.Gather(matched)); err != nil {
						return err
					}
				}
				// Report covered positions plus a sentinel so the
				// unlocker's firing condition is always met.
				rep := bat.NewEmptyRelation(posNames, posTypes)
				rep.AppendRow(vector.NewInt(-1))
				for _, p := range covered {
					rep.AppendRow(vector.NewInt(int64(p)))
				}
				_, err := ctx.Out(1).AppendLocked(rep)
				return err
			})
		if err != nil {
			return nil, err
		}
		fs = append(fs, reader)
	}

	// Unlocker: once all done markers are in, delete the union of covered
	// tuples from the shared basket in one step and unblock the stream.
	unlockIns := append([]*basket.Basket(nil), doneB...)
	unlocker, err := NewFactory(prefix+".unlock",
		unlockIns, []*basket.Basket{idle, shared},
		func(ctx *Context) error {
			var union []int32
			seen := map[int32]bool{}
			for i := 0; i < ctx.NumIn(); i++ {
				rep := ctx.In(i).TakeAllLocked()
				for _, p := range rep.Col(0).Ints() {
					if p >= 0 && !seen[int32(p)] {
						seen[int32(p)] = true
						union = append(union, int32(p))
					}
				}
			}
			if len(union) > 0 {
				sortInt32s(union)
				ctx.Out(1).DeleteLocked(union)
			}
			ctx.Out(1).SetEnabledLocked(true)
			_, err := ctx.Out(0).AppendLocked(flagRow())
			return err
		})
	if err != nil {
		return nil, err
	}
	return append(fs, unlocker), nil
}

// PartialDeletes wires the paper's third strategy (Figure 2c): the queries
// form a chain. Each query consumes its chain basket, removes the tuples
// covered by its basket expression and forwards only the residue to the
// next query, so later queries analyse progressively less data at the cost
// of reorganising the basket at every step.
func PartialDeletes(prefix string, in *basket.Basket, queries []ScanQuery, results []*basket.Basket) ([]*Factory, error) {
	if len(queries) != len(results) {
		return nil, fmt.Errorf("core: %d queries but %d result baskets", len(queries), len(results))
	}
	names, types := in.UserSchema()
	chain := in
	var fs []*Factory
	for i, q := range queries {
		q := q
		var next *basket.Basket
		if i < len(queries)-1 {
			next = basket.New(fmt.Sprintf("%s.chain.%d", prefix, i+1), names, types)
		} else {
			next = basket.New(prefix+".residue", names, types)
		}
		f, err := NewFactory(fmt.Sprintf("%s.q.%s", prefix, q.Name),
			[]*basket.Basket{chain},
			[]*basket.Basket{results[i], next},
			func(ctx *Context) error {
				rel := ctx.In(0).TakeAllLocked()
				if rel.Len() == 0 {
					return nil
				}
				matched, covered := q.Scan(rel)
				if len(matched) > 0 {
					if _, err := ctx.Out(0).AppendLocked(rel.Gather(matched)); err != nil {
						return err
					}
				}
				residue := relop.CandNot(covered, rel.Len())
				if len(residue) > 0 {
					rel.KeepSorted(residue)
					if _, err := ctx.Out(1).AppendLocked(rel); err != nil {
						return err
					}
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
		chain = next
	}
	return fs, nil
}

func sortInt32s(s []int32) {
	// Insertion sort is fine for small covered sets; fall back to a simple
	// quicksort for larger ones.
	if len(s) < 32 {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j-1] > s[j]; j-- {
				s[j-1], s[j] = s[j], s[j-1]
			}
		}
		return
	}
	quickSortInt32(s)
}

func quickSortInt32(s []int32) {
	if len(s) < 2 {
		return
	}
	p := s[len(s)/2]
	l, r := 0, len(s)-1
	for l <= r {
		for s[l] < p {
			l++
		}
		for s[r] > p {
			r--
		}
		if l <= r {
			s[l], s[r] = s[r], s[l]
			l++
			r--
		}
	}
	quickSortInt32(s[:r+1])
	quickSortInt32(s[l:])
}
