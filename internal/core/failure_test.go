package core

import (
	"errors"
	"testing"
	"time"

	"datacell/internal/basket"
)

// Failure-injection tests: the scheduler and the factory network must stay
// live when individual factory bodies fail, and basket shutdown must
// propagate cleanly.

func TestSchedulerSurvivesFailingFactory(t *testing.T) {
	in1, out1 := intBasket("f.in1"), intBasket("f.out1")
	in2, out2 := intBasket("f.in2"), intBasket("f.out2")
	boom := errors.New("boom")
	bad := MustFactory("bad", []*basket.Basket{in1}, []*basket.Basket{out1},
		func(ctx *Context) error {
			ctx.In(0).TakeAllLocked()
			return boom
		})
	good := MustFactory("good", []*basket.Basket{in2}, []*basket.Basket{out2},
		func(ctx *Context) error {
			_, err := ctx.Out(0).AppendLocked(ctx.In(0).TakeAllLocked())
			return err
		})
	s := NewScheduler()
	s.Register(bad)
	s.Register(good)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	in1.Append(intRel(1))
	in2.Append(intRel(2, 3))
	deadline := time.Now().Add(2 * time.Second)
	for out2.Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if out2.Len() != 2 {
		t.Error("healthy factory starved by failing sibling")
	}
	for bad.Errors() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if bad.Errors() == 0 || !errors.Is(bad.LastError(), boom) {
		t.Errorf("error not recorded: n=%d err=%v", bad.Errors(), bad.LastError())
	}
	// The failing factory keeps running: a second tuple is still consumed.
	in1.Append(intRel(9))
	for in1.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if in1.Len() != 0 {
		t.Error("failing factory stopped consuming")
	}
}

func TestRunUntilQuiescentStopsOnError(t *testing.T) {
	in, out := intBasket("e.in"), intBasket("e.out")
	f := MustFactory("bad", []*basket.Basket{in}, []*basket.Basket{out},
		func(ctx *Context) error {
			ctx.In(0).TakeAllLocked()
			return errors.New("sync failure")
		})
	s := NewScheduler()
	s.Register(f)
	in.Append(intRel(1))
	if _, err := s.RunUntilQuiescent(0); err == nil {
		t.Error("synchronous mode must surface the factory error")
	}
}

func TestClosedBasketTerminatesPipeline(t *testing.T) {
	in, out := intBasket("c.in"), intBasket("c.out")
	f := MustFactory("f", []*basket.Basket{in}, []*basket.Basket{out},
		func(ctx *Context) error {
			_, err := ctx.Out(0).AppendLocked(ctx.In(0).TakeAllLocked())
			return err
		})
	s := NewScheduler()
	s.Register(f)
	s.Start()
	defer s.Stop()
	in.Append(intRel(1))
	out.Close()
	// Further firings hit the closed output; the error is recorded but the
	// scheduler stays up.
	in.Append(intRel(2))
	deadline := time.Now().Add(2 * time.Second)
	for f.Errors() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if f.Errors() == 0 {
		t.Error("closed-basket append error not recorded")
	}
}

func TestStopIsIdempotentAndQuiescentOnEmpty(t *testing.T) {
	s := NewScheduler()
	in, out := intBasket("s.in"), intBasket("s.out")
	s.Register(MustFactory("f", []*basket.Basket{in}, []*basket.Basket{out},
		func(ctx *Context) error {
			ctx.In(0).TakeAllLocked()
			return nil
		}))
	if !s.Quiescent() {
		t.Error("empty network should be quiescent")
	}
	s.Start()
	s.Stop()
	s.Stop() // second stop is a no-op
}

func TestSchedulerUnregister(t *testing.T) {
	in, out := intBasket("u.in"), intBasket("u.out")
	f := MustFactory("u", []*basket.Basket{in}, []*basket.Basket{out},
		func(ctx *Context) error {
			_, err := ctx.Out(0).AppendLocked(ctx.In(0).TakeAllLocked())
			return err
		})
	s := NewScheduler()
	s.Register(f)
	s.Start()
	defer s.Stop()
	in.Append(intRel(1))
	deadline := time.Now().Add(2 * time.Second)
	for out.Len() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Unregister(f)
	in.Append(intRel(2))
	time.Sleep(20 * time.Millisecond)
	if in.Len() != 1 {
		t.Errorf("unregistered factory consumed input: len=%d", in.Len())
	}
	if !s.Quiescent() {
		t.Error("network with only dead factory should be quiescent")
	}
	// Unregister in synchronous mode too: RunUntilQuiescent skips it.
	if n, _ := s.RunUntilQuiescent(0); n != 0 {
		t.Errorf("dead factory fired %d times", n)
	}
}
