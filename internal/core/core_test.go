package core

import (
	"fmt"
	"testing"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/relop"
	"datacell/internal/vector"
)

func intBasket(name string) *basket.Basket {
	return basket.New(name, []string{"x"}, []vector.Type{vector.Int})
}

func intRel(vals ...int64) *bat.Relation {
	return bat.NewRelation([]string{"x"}, []*vector.Vector{vector.FromInts(vals)})
}

// rangeScan returns a ScanQuery matching lo <= x < hi, covering everything
// it matched.
func rangeScan(name string, lo, hi int64) ScanQuery {
	return ScanQuery{
		Name: name,
		Scan: func(rel *bat.Relation) (matched, covered []int32) {
			sel := relop.SelectRange(rel.ColByName("x"), vector.NewInt(lo), vector.NewInt(hi), true, false, nil)
			return sel, sel
		},
	}
}

// allScan matches and covers every tuple.
func allScan(name string) ScanQuery {
	return ScanQuery{
		Name: name,
		Scan: func(rel *bat.Relation) (matched, covered []int32) {
			sel := relop.CandAll(rel.Len())
			return sel, sel
		},
	}
}

// bindAll pairs scan callbacks with their result baskets in the
// StreamQuery form the strategies consume.
func bindAll(qs []ScanQuery, results []*basket.Basket) []StreamQuery {
	out := make([]StreamQuery, len(qs))
	for i, q := range qs {
		out[i] = q.Bind(results[i])
	}
	return out
}

func TestFactoryValidation(t *testing.T) {
	b := intBasket("b")
	if _, err := NewFactory("f", nil, []*basket.Basket{b}, func(*Context) error { return nil }); err == nil {
		t.Error("factory without inputs should be rejected")
	}
	if _, err := NewFactory("f", []*basket.Basket{b}, nil, func(*Context) error { return nil }); err == nil {
		t.Error("factory without outputs should be rejected")
	}
	if _, err := NewFactory("f", []*basket.Basket{b}, []*basket.Basket{b}, nil); err == nil {
		t.Error("factory without body should be rejected")
	}
}

func TestFactorySelectPipeline(t *testing.T) {
	// The paper's Algorithm 1: select values of X in [v1,v2) from input to
	// output, emptying the input each firing.
	in, out := intBasket("in"), intBasket("out")
	f := MustFactory("select", []*basket.Basket{in}, []*basket.Basket{out}, func(ctx *Context) error {
		rel := ctx.In(0).TakeAllLocked()
		sel := relop.SelectRange(rel.ColByName("x"), vector.NewInt(10), vector.NewInt(20), true, false, nil)
		if len(sel) > 0 {
			_, err := ctx.Out(0).AppendLocked(rel.Gather(sel))
			return err
		}
		return nil
	})
	in.Append(intRel(5, 12, 25, 15))
	fired, err := f.TryFire()
	if err != nil || !fired {
		t.Fatalf("fired=%v err=%v", fired, err)
	}
	if in.Len() != 0 {
		t.Errorf("input not emptied: %d", in.Len())
	}
	got := out.TakeAll()
	if got.Len() != 2 || got.Col(0).Ints()[0] != 12 || got.Col(0).Ints()[1] != 15 {
		t.Errorf("output: %v", got.Col(0).Ints())
	}
	if f.Fires() != 1 {
		t.Errorf("fires = %d", f.Fires())
	}
}

func TestFactoryThreshold(t *testing.T) {
	in, out := intBasket("in"), intBasket("out")
	f := MustFactory("batch", []*basket.Basket{in}, []*basket.Basket{out}, func(ctx *Context) error {
		_, err := ctx.Out(0).AppendLocked(ctx.In(0).TakeAllLocked())
		return err
	})
	f.SetThreshold(0, 3)
	in.Append(intRel(1, 2))
	if fired, _ := f.TryFire(); fired {
		t.Error("fired below threshold")
	}
	in.Append(intRel(3))
	if fired, _ := f.TryFire(); !fired {
		t.Error("did not fire at threshold")
	}
	if out.Len() != 3 {
		t.Errorf("out = %d", out.Len())
	}
}

func TestFactorySavedState(t *testing.T) {
	// Factory state survives between calls via the closure: a running sum.
	in, out := intBasket("in"), intBasket("out")
	var total int64
	f := MustFactory("sum", []*basket.Basket{in}, []*basket.Basket{out}, func(ctx *Context) error {
		rel := ctx.In(0).TakeAllLocked()
		for _, v := range rel.ColByName("x").Ints() {
			total += v
		}
		_, err := ctx.Out(0).AppendLocked(intRel(total))
		return err
	})
	in.Append(intRel(1, 2))
	f.TryFire()
	in.Append(intRel(3))
	f.TryFire()
	got := out.TakeAll()
	if got.Col(0).Ints()[1] != 6 {
		t.Errorf("running sums: %v", got.Col(0).Ints())
	}
}

func TestFactoryErrorTracking(t *testing.T) {
	in, out := intBasket("in"), intBasket("out")
	f := MustFactory("bad", []*basket.Basket{in}, []*basket.Basket{out}, func(ctx *Context) error {
		ctx.In(0).TakeAllLocked()
		return fmt.Errorf("boom")
	})
	in.Append(intRel(1))
	fired, err := f.TryFire()
	if !fired || err == nil {
		t.Fatalf("fired=%v err=%v", fired, err)
	}
	if f.Errors() != 1 || f.LastError() == nil {
		t.Errorf("errors=%d lastErr=%v", f.Errors(), f.LastError())
	}
}

func TestSchedulerPipelineConcurrent(t *testing.T) {
	// R -> B1 -> Q -> B2 -> drain, concurrent mode.
	b1, b2 := intBasket("b1"), intBasket("b2")
	q := MustFactory("q", []*basket.Basket{b1}, []*basket.Basket{b2}, func(ctx *Context) error {
		rel := ctx.In(0).TakeAllLocked()
		sel := relop.SelectPred(rel.ColByName("x"), relop.GT, vector.NewInt(50), nil)
		if len(sel) > 0 {
			_, err := ctx.Out(0).AppendLocked(rel.Gather(sel))
			return err
		}
		return nil
	})
	s := NewScheduler()
	if err := s.Register(q); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	for i := int64(0); i < 100; i++ {
		b1.Append(intRel(i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for b2.Len() < 49 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := b2.Len(); got != 49 {
		t.Errorf("results = %d, want 49", got)
	}
	if !s.WaitQuiescent(time.Second) {
		t.Error("network did not quiesce")
	}
}

func TestSchedulerRunUntilQuiescent(t *testing.T) {
	// Chain of three factories, synchronous mode.
	b := []*basket.Basket{intBasket("c0"), intBasket("c1"), intBasket("c2"), intBasket("c3")}
	s := NewScheduler()
	for i := 0; i < 3; i++ {
		i := i
		f := MustFactory(fmt.Sprintf("f%d", i), []*basket.Basket{b[i]}, []*basket.Basket{b[i+1]}, func(ctx *Context) error {
			_, err := ctx.Out(0).AppendLocked(ctx.In(0).TakeAllLocked())
			return err
		})
		s.Register(f)
	}
	b[0].Append(intRel(1, 2, 3))
	fires, err := s.RunUntilQuiescent(0)
	if err != nil {
		t.Fatal(err)
	}
	if fires != 3 {
		t.Errorf("fires = %d", fires)
	}
	if b[3].Len() != 3 {
		t.Errorf("sink = %d", b[3].Len())
	}
	if !s.Quiescent() {
		t.Error("not quiescent after drain")
	}
}

func TestSchedulerDynamicRegistration(t *testing.T) {
	s := NewScheduler()
	in, out := intBasket("i"), intBasket("o")
	f := MustFactory("f", []*basket.Basket{in}, []*basket.Basket{out}, func(ctx *Context) error {
		_, err := ctx.Out(0).AppendLocked(ctx.In(0).TakeAllLocked())
		return err
	})
	s.Register(f)
	s.Start()
	defer s.Stop()
	if err := s.Start(); err == nil {
		t.Error("double start should fail")
	}
	// A factory registered while running starts firing immediately.
	in2, out2 := intBasket("i2"), intBasket("o2")
	f2 := MustFactory("f2", []*basket.Basket{in2}, []*basket.Basket{out2}, func(ctx *Context) error {
		_, err := ctx.Out(0).AppendLocked(ctx.In(0).TakeAllLocked())
		return err
	})
	if err := s.Register(f2); err != nil {
		t.Fatal(err)
	}
	in2.Append(intRel(1, 2, 3))
	deadline := time.Now().Add(2 * time.Second)
	for out2.Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if out2.Len() != 3 {
		t.Errorf("dynamic factory results = %d", out2.Len())
	}
}

func TestSeparateBasketsStrategy(t *testing.T) {
	in := intBasket("stream")
	results := []*basket.Basket{intBasket("r0"), intBasket("r1")}
	qs := []ScanQuery{rangeScan("low", 0, 50), rangeScan("high", 50, 100)}
	fs, err := SeparateBaskets("sep", in, bindAll(qs, results))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 { // replicator + 2 queries
		t.Fatalf("factories = %d", len(fs))
	}
	s := NewScheduler()
	for _, f := range fs {
		s.Register(f)
	}
	in.Append(intRel(10, 60, 45, 99))
	if _, err := s.RunUntilQuiescent(0); err != nil {
		t.Fatal(err)
	}
	if got := results[0].Len(); got != 2 {
		t.Errorf("low results = %d", got)
	}
	if got := results[1].Len(); got != 2 {
		t.Errorf("high results = %d", got)
	}
}

func TestSharedBasketsStrategy(t *testing.T) {
	in := intBasket("stream")
	results := []*basket.Basket{intBasket("r0"), intBasket("r1"), intBasket("r2")}
	qs := []ScanQuery{rangeScan("a", 0, 30), rangeScan("b", 30, 60), rangeScan("c", 60, 100)}
	fs, err := SharedBaskets("sh", in, bindAll(qs, results))
	if err != nil {
		t.Fatal(err)
	}
	// locker + 3 readers + unlocker
	if len(fs) != 5 {
		t.Fatalf("factories = %d", len(fs))
	}
	s := NewScheduler()
	for _, f := range fs {
		s.Register(f)
	}
	in.Append(intRel(10, 40, 70, 20, 90))
	if _, err := s.RunUntilQuiescent(100); err != nil {
		t.Fatal(err)
	}
	if got := results[0].Len(); got != 2 {
		t.Errorf("q a results = %d", got)
	}
	if got := results[1].Len(); got != 1 {
		t.Errorf("q b results = %d", got)
	}
	if got := results[2].Len(); got != 2 {
		t.Errorf("q c results = %d", got)
	}
	// All tuples were covered by some query, so the shared basket drains
	// and is re-enabled for the next round.
	if in.Len() != 0 {
		t.Errorf("shared basket residue = %d", in.Len())
	}
	if !in.Enabled() {
		t.Error("shared basket left disabled")
	}
	// Second round works (idle token was returned).
	in.Append(intRel(25, 65))
	if _, err := s.RunUntilQuiescent(100); err != nil {
		t.Fatal(err)
	}
	if got := results[0].Len(); got != 3 {
		t.Errorf("round 2: q a results = %d", got)
	}
}

func TestSharedBasketsKeepsUncoveredTuples(t *testing.T) {
	in := intBasket("stream")
	results := []*basket.Basket{intBasket("r0")}
	// Query covers only x < 10; other tuples must survive in the basket.
	qs := []ScanQuery{rangeScan("small", 0, 10)}
	fs, err := SharedBaskets("sh2", in, bindAll(qs, results))
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler()
	for _, f := range fs {
		s.Register(f)
	}
	in.Append(intRel(5, 50))
	// Bound the run: the uncovered tuple keeps the shared basket non-empty,
	// so the locker cycle would spin forever in synchronous mode.
	if _, err := s.RunUntilQuiescent(20); err != nil {
		t.Fatal(err)
	}
	if results[0].Len() != 1 {
		t.Errorf("results = %d", results[0].Len())
	}
	if snap := in.Snapshot(); snap.Len() != 1 || snap.Col(0).Ints()[0] != 50 {
		t.Errorf("residue: %v", snap)
	}
}

func TestPartialDeletesStrategy(t *testing.T) {
	in := intBasket("stream")
	results := []*basket.Basket{intBasket("r0"), intBasket("r1")}
	qs := []ScanQuery{rangeScan("low", 0, 50), rangeScan("high", 50, 100)}
	fs, err := PartialDeletes("pd", in, bindAll(qs, results))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("factories = %d", len(fs))
	}
	s := NewScheduler()
	for _, f := range fs {
		s.Register(f)
	}
	in.Append(intRel(10, 60, 45, 99))
	if _, err := s.RunUntilQuiescent(0); err != nil {
		t.Fatal(err)
	}
	if got := results[0].Len(); got != 2 {
		t.Errorf("low results = %d", got)
	}
	if got := results[1].Len(); got != 2 {
		t.Errorf("high results = %d", got)
	}
}

func TestPartialDeletesShrinkChain(t *testing.T) {
	// The second query must only see the residue of the first.
	in := intBasket("stream")
	var secondSaw int
	q1 := rangeScan("q1", 0, 50)
	q2 := ScanQuery{
		Name: "probe",
		Scan: func(rel *bat.Relation) (matched, covered []int32) {
			secondSaw = rel.Len()
			all := relop.CandAll(rel.Len())
			return all, all
		},
	}
	results := []*basket.Basket{intBasket("r0"), intBasket("r1")}
	fs, _ := PartialDeletes("pd2", in, bindAll([]ScanQuery{q1, q2}, results))
	s := NewScheduler()
	for _, f := range fs {
		s.Register(f)
	}
	in.Append(intRel(10, 20, 80, 90, 95))
	s.RunUntilQuiescent(0)
	if secondSaw != 3 {
		t.Errorf("second query saw %d tuples, want 3", secondSaw)
	}
}

func TestMetronome(t *testing.T) {
	b := basket.New("hb", []string{"tick"}, []vector.Type{vector.Timestamp})
	m := NewMetronome(b, 5*time.Millisecond, nil)
	m.Start()
	defer m.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for b.Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.Len() < 3 {
		t.Errorf("ticks = %d", b.Len())
	}
	m.Stop() // idempotent with deferred Stop
	n := b.Len()
	time.Sleep(20 * time.Millisecond)
	if b.Len() != n {
		t.Error("metronome kept ticking after Stop")
	}
}

func TestMetronomeManualTick(t *testing.T) {
	b := basket.New("hb", []string{"tick"}, []vector.Type{vector.Timestamp})
	m := NewMetronome(b, time.Hour, nil)
	if err := m.Tick(time.Unix(5, 0)); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Errorf("len = %d", b.Len())
	}
}

func TestHeartbeatFactory(t *testing.T) {
	events := basket.New("ev", []string{"tag", "payload"}, []vector.Type{vector.Int, vector.Int})
	hb := basket.New("hb", []string{"tag"}, []vector.Type{vector.Int})
	out := basket.New("out", []string{"tag", "isevent"}, []vector.Type{vector.Int, vector.Bool})
	f, err := NewHeartbeatFactory("hb", events, hb, out, "tag")
	if err != nil {
		t.Fatal(err)
	}
	// Heartbeat clock runs ahead: epochs 1..5 pre-filled.
	for i := int64(1); i <= 5; i++ {
		hb.AppendRow(vector.NewInt(i))
	}
	events.AppendRow(vector.NewInt(2), vector.NewInt(100))
	events.AppendRow(vector.NewInt(4), vector.NewInt(200))
	if fired, err := f.TryFire(); !fired || err != nil {
		t.Fatalf("fired=%v err=%v", fired, err)
	}
	got := out.TakeAll()
	// Epochs 1..4 from heartbeats, plus 2 events, in tag order.
	tags := got.Col(0).Ints()
	want := []int64{1, 2, 2, 3, 4, 4}
	if len(tags) != len(want) {
		t.Fatalf("merged = %v", tags)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Errorf("merged[%d] = %d, want %d", i, tags[i], want[i])
		}
	}
	// Epoch 5 stays queued for the next window.
	if hb.Len() != 1 {
		t.Errorf("heartbeat residue = %d", hb.Len())
	}
}

func TestSlidingWindowJoinWithTriggerBasket(t *testing.T) {
	// The §4.1 auxiliary-basket pattern: join fires only when the trigger
	// holds a token; inputs b1/b2 are locked via the output set so tuples
	// can persist across firings (partial deletes of the window).
	b1 := basket.New("b1", []string{"id", "v"}, []vector.Type{vector.Int, vector.Int})
	b2 := basket.New("b2", []string{"id", "w"}, []vector.Type{vector.Int, vector.Int})
	trig := intBasket("trigger")
	out := basket.New("j", []string{"id", "v", "w"}, []vector.Type{vector.Int, vector.Int, vector.Int})

	join := MustFactory("winjoin",
		[]*basket.Basket{trig},
		[]*basket.Basket{out, b1, b2},
		func(ctx *Context) error {
			ctx.In(0).TakeAllLocked() // consume trigger
			l, r := ctx.Out(1).RelLocked(), ctx.Out(2).RelLocked()
			ls, rs := relop.HashJoin(l.ColByName("id"), r.ColByName("id"))
			if len(ls) == 0 {
				return nil
			}
			res := bat.NewEmptyRelation([]string{"id", "v", "w"},
				[]vector.Type{vector.Int, vector.Int, vector.Int})
			for i := range ls {
				res.AppendRow(l.ColByName("id").Get(int(ls[i])), l.ColByName("v").Get(int(ls[i])), r.ColByName("w").Get(int(rs[i])))
			}
			if _, err := ctx.Out(0).AppendLocked(res); err != nil {
				return err
			}
			// Matched tuples leave the window (merge semantics: matching
			// tuples are removed; non-matched wait for late arrivals).
			ctx.Out(1).DeleteLocked(sortedPositions(ls))
			ctx.Out(2).DeleteLocked(sortedPositions(rs))
			return nil
		})

	s := NewScheduler()
	s.Register(join)

	b1.AppendRow(vector.NewInt(1), vector.NewInt(10))
	trig.Append(intRel(1))
	s.RunUntilQuiescent(0)
	if out.Len() != 0 {
		t.Error("join emitted without matches")
	}
	// Late arrival matches the waiting tuple.
	b2.AppendRow(vector.NewInt(1), vector.NewInt(20))
	trig.Append(intRel(1))
	s.RunUntilQuiescent(0)
	got := out.TakeAll()
	if got.Len() != 1 || got.Col(2).Ints()[0] != 20 {
		t.Errorf("join result: %v", got)
	}
	if b1.Len() != 0 || b2.Len() != 0 {
		t.Error("matched tuples not removed from window")
	}
}

func TestSortedPositions(t *testing.T) {
	got := sortedPositions([]int32{5, 1, 5, 3, 1})
	want := []int32{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("sortedPositions = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sortedPositions[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSharedBasketsReaderErrorDoesNotWedgeGroup(t *testing.T) {
	// A failing reader must still report done, or the unlocker never
	// fires and the stream stays blocked forever.
	in := intBasket("stream")
	good := intBasket("good.out")
	bad := StreamQuery{
		Name: "bad",
		Out:  intBasket("bad.out"),
		Fire: func(in, out *basket.Basket, report func([]int32)) error {
			return fmt.Errorf("boom")
		},
	}
	fs, err := SharedBaskets("shw", in, []StreamQuery{bad, rangeScan("ok", 0, 100).Bind(good)})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler()
	for _, f := range fs {
		s.Register(f)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	in.Append(intRel(5, 50))
	deadline := time.Now().Add(5 * time.Second)
	for good.Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if good.Len() != 2 {
		t.Fatalf("healthy reader delivered %d results, want 2", good.Len())
	}
	// Second round: the stream was unblocked and the cycle restarts.
	in.Append(intRel(7))
	for good.Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if good.Len() != 3 {
		t.Errorf("group wedged after reader error: %d results", good.Len())
	}
	if !in.Enabled() {
		t.Error("stream left disabled")
	}
}
