package core

import (
	"fmt"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/relop"
	"datacell/internal/vector"
)

// The window helpers realise the paper's §4.1 window treatment: tuple-based
// windows are enforced at the scheduler level through firing thresholds,
// while time-based windows plug auxiliary checks into the factory — the
// factory inspects the input's timestamps and only processes complete
// windows, retaining the tuples that remain valid for the next window
// (partial deletes of the window).

// WindowFunc processes one complete window of tuples and returns the
// result to append to the output basket (nil or empty for none). The
// window relation is staging storage owned by the factory and reused
// across firings; it must not be retained after the call returns.
type WindowFunc func(window *bat.Relation) (*bat.Relation, error)

// NewTumblingCountWindow builds a factory that fires once `size` tuples
// have collected, processes exactly the oldest `size` tuples in arrival
// order and drops them. Surplus tuples stay for the next window — the
// "query a basket only after x tuples arrive" batching control.
func NewTumblingCountWindow(name string, in, out *basket.Basket, size int, fn WindowFunc) (*Factory, error) {
	if size < 1 {
		return nil, fmt.Errorf("core: window size %d", size)
	}
	stage := &bat.Relation{}
	var selBuf []int32
	f, err := NewFactory(name, []*basket.Basket{in}, []*basket.Basket{out},
		func(ctx *Context) error {
			for ctx.In(0).LenLocked() >= size {
				selBuf = relop.CandAllInto(selBuf, size)
				window := ctx.In(0).TakeIntoLocked(stage, selBuf)
				res, err := fn(window)
				if err != nil {
					return err
				}
				if res != nil && res.Len() > 0 {
					if _, err := ctx.Out(0).AppendLocked(res); err != nil {
						return err
					}
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	f.SetThreshold(0, size)
	return f, nil
}

// NewTumblingTimeWindow builds a factory that slices the input into
// consecutive, non-overlapping windows of `width` by the named timestamp
// column (Timestamp or Int seconds). A window [t0, t0+width) is processed
// only once a tuple with timestamp >= t0+width has arrived — the
// auxiliary-query check the paper plugs into factories for time-based
// windows. Tuples of later windows remain in the basket.
func NewTumblingTimeWindow(name string, in, out *basket.Basket, tsCol string, width time.Duration, fn WindowFunc) (*Factory, error) {
	widthUnits := width.Microseconds()
	var epoch int64 = -1 // start of the current open window
	stage := &bat.Relation{}
	var selBuf []int32
	f, err := NewFactory(name, []*basket.Basket{in}, []*basket.Basket{out},
		func(ctx *Context) error {
			rel := ctx.In(0).RelLocked()
			ts := rel.ColByName(tsCol)
			if ts == nil {
				return fmt.Errorf("core: window column %q missing", tsCol)
			}
			if ts.Kind() == vector.Int {
				// Plain integer timestamps count in seconds.
				widthUnits = int64(width / time.Second)
				if widthUnits < 1 {
					widthUnits = 1
				}
			}
			for {
				n := ts.Len()
				if n == 0 {
					return nil
				}
				// Initialise the epoch from the oldest resident tuple.
				if epoch < 0 {
					epoch = ts.Get(0).AsInt()
					for i := 1; i < n; i++ {
						if v := ts.Get(i).AsInt(); v < epoch {
							epoch = v
						}
					}
					epoch -= epoch % widthUnits
				}
				closeAt := epoch + widthUnits
				ready := false
				inWindow := selBuf[:0]
				for i := 0; i < n; i++ {
					v := ts.Get(i).AsInt()
					if v >= closeAt {
						ready = true
					} else if v >= epoch {
						inWindow = append(inWindow, int32(i))
					}
				}
				selBuf = inWindow
				if !ready {
					return nil
				}
				window := ctx.In(0).TakeIntoLocked(stage, inWindow)
				epoch = closeAt
				res, err := fn(window)
				if err != nil {
					return err
				}
				if res != nil && res.Len() > 0 {
					if _, err := ctx.Out(0).AppendLocked(res); err != nil {
						return err
					}
				}
				rel = ctx.In(0).RelLocked()
				ts = rel.ColByName(tsCol)
			}
		})
	return f, err
}

// NewSlidingCountWindow builds a factory that fires on every new batch of
// tuples once at least `size` are resident, processes the newest `size`
// tuples (older ones are evicted — the partial delete of the window) and
// keeps the window in the basket for the next slide.
func NewSlidingCountWindow(name string, in, out *basket.Basket, size int, fn WindowFunc) (*Factory, error) {
	if size < 1 {
		return nil, fmt.Errorf("core: window size %d", size)
	}
	var lastSeen int64
	f, err := NewFactory(name, []*basket.Basket{in}, []*basket.Basket{out},
		func(ctx *Context) error {
			n := ctx.In(0).LenLocked()
			if n > size {
				// Evict tuples that fell out of the window.
				evict := relop.CandAll(n - size)
				ctx.In(0).DeleteLocked(evict)
				n = size
			}
			window := ctx.In(0).RelLocked()
			res, err := fn(window)
			if err != nil {
				return err
			}
			lastSeen = ctx.In(0).AppendedLocked()
			if res != nil && res.Len() > 0 {
				if _, err := ctx.Out(0).AppendLocked(res); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	f.SetThreshold(0, size)
	// Re-fire only when new tuples arrived, not on the retained window.
	f.SetGuard(func(ctx *Context) bool {
		return ctx.In(0).AppendedLocked() != lastSeen
	})
	return f, nil
}
