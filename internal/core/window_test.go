package core

import (
	"testing"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/vector"
)

// sumWindow sums the x column of a window into a single-row relation.
func sumWindow(window *bat.Relation) (*bat.Relation, error) {
	var sum int64
	for _, v := range window.ColByName("x").Ints() {
		sum += v
	}
	out := bat.NewEmptyRelation([]string{"x"}, []vector.Type{vector.Int})
	out.AppendRow(vector.NewInt(sum))
	return out, nil
}

func TestTumblingCountWindow(t *testing.T) {
	in, out := intBasket("w.in"), intBasket("w.out")
	f, err := NewTumblingCountWindow("w", in, out, 3, sumWindow)
	if err != nil {
		t.Fatal(err)
	}
	in.Append(intRel(1, 2))
	if fired, _ := f.TryFire(); fired {
		t.Error("fired below window size")
	}
	in.Append(intRel(3, 10, 20, 30, 99))
	if fired, _ := f.TryFire(); !fired {
		t.Fatal("did not fire with full windows")
	}
	got := out.TakeAll()
	// Two complete windows: (1,2,3)=6 and (10,20,30)=60; 99 remains.
	if got.Len() != 2 || got.Col(0).Ints()[0] != 6 || got.Col(0).Ints()[1] != 60 {
		t.Errorf("windows: %v", got.Col(0).Ints())
	}
	if in.Len() != 1 {
		t.Errorf("residue = %d", in.Len())
	}
}

func TestTumblingTimeWindow(t *testing.T) {
	in := basket.New("tw.in", []string{"ts", "x"}, []vector.Type{vector.Int, vector.Int})
	out := intBasket("tw.out")
	f, err := NewTumblingTimeWindow("tw", in, out, "ts", 10*time.Second,
		func(w *bat.Relation) (*bat.Relation, error) { return sumWindow(w) })
	if err != nil {
		t.Fatal(err)
	}
	row := func(ts, x int64) *bat.Relation {
		r := bat.NewEmptyRelation([]string{"ts", "x"}, []vector.Type{vector.Int, vector.Int})
		r.AppendRow(vector.NewInt(ts), vector.NewInt(x))
		return r
	}
	in.Append(row(1, 5))
	in.Append(row(4, 7))
	f.TryFire()
	if out.Len() != 0 {
		t.Fatal("window closed early")
	}
	// A tuple at ts=12 closes window [0,10).
	in.Append(row(12, 100))
	f.TryFire()
	got := out.TakeAll()
	if got.Len() != 1 || got.Col(0).Ints()[0] != 12 {
		t.Errorf("window sum: %v", got)
	}
	// The ts=12 tuple remains for the open window.
	if in.Len() != 1 {
		t.Errorf("residue = %d", in.Len())
	}
	// Jumping far ahead closes [10,20) containing the 100.
	in.Append(row(25, 1))
	f.TryFire()
	got = out.TakeAll()
	if got.Len() != 1 || got.Col(0).Ints()[0] != 100 {
		t.Errorf("second window: %v", got)
	}
}

func TestSlidingCountWindow(t *testing.T) {
	in, out := intBasket("sw.in"), intBasket("sw.out")
	f, err := NewSlidingCountWindow("sw", in, out, 3, sumWindow)
	if err != nil {
		t.Fatal(err)
	}
	in.Append(intRel(1, 2, 3))
	if fired, _ := f.TryFire(); !fired {
		t.Fatal("did not fire at window size")
	}
	got := out.TakeAll()
	if got.Len() != 1 || got.Col(0).Ints()[0] != 6 {
		t.Errorf("first slide: %v", got)
	}
	// The window stays resident; without new input the guard suppresses
	// re-firing.
	if fired, _ := f.TryFire(); fired {
		t.Error("re-fired without new tuples")
	}
	// Two more tuples slide the window to (3,4,5).
	in.Append(intRel(4, 5))
	if fired, _ := f.TryFire(); !fired {
		t.Fatal("did not fire on slide")
	}
	got = out.TakeAll()
	if got.Len() != 1 || got.Col(0).Ints()[0] != 12 {
		t.Errorf("second slide: %v", got)
	}
	if in.Len() != 3 {
		t.Errorf("window residue = %d, want 3", in.Len())
	}
}
