package core

import (
	"fmt"
	"sync/atomic"

	"datacell/internal/basket"
	"datacell/internal/bat"
)

// NewPartitionSplitter builds the fan-out transition of partitioned stream
// execution: every firing moves all tuples of `in` into the partitions of
// pb (round-robin, hash or range routing; range routing additionally
// diverts tuples no query can match into pb's catch-all basket, which no
// clone scans). A guard defers the firing while any partition is disabled
// — a shared-baskets cycle is mid-flight on it and appending would let
// that cycle's readers see different snapshots — and re-enabling a
// partition pings the splitter, so deferred tuples never strand.
func NewPartitionSplitter(name string, in *basket.Basket, pb *basket.PartitionedBasket) (*Factory, error) {
	parts := pb.Parts()
	var spare *bat.Relation
	f, err := NewFactory(name, []*basket.Basket{in}, pb.Destinations(), func(ctx *Context) error {
		rel := ctx.In(0).ExchangeLocked(spare)
		spare = rel
		if rel.Len() == 0 {
			return nil
		}
		_, err := pb.AppendLocked(rel)
		return err
	})
	if err != nil {
		return nil, err
	}
	f.SetGuard(func(*Context) bool {
		for _, p := range parts {
			if !p.EnabledLocked() {
				return false
			}
		}
		return true
	})
	for _, p := range parts {
		p.SetOnEnable(f.ping)
	}
	return f, nil
}

// NewMergeEmitter builds the fan-in transition of partitioned execution:
// it fires as soon as any staging basket holds tuples and concatenates
// everything present into the query's result basket, in partition order.
func NewMergeEmitter(name string, staging []*basket.Basket, out *basket.Basket) (*Factory, error) {
	spares := make([]*bat.Relation, len(staging))
	f, err := NewFactory(name, staging, []*basket.Basket{out}, func(ctx *Context) error {
		for i := 0; i < ctx.NumIn(); i++ {
			rel := ctx.In(i).ExchangeLocked(spares[i])
			spares[i] = rel
			if rel.Len() == 0 {
				continue
			}
			if _, err := ctx.Out(0).AppendLocked(rel); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	f.SetFireAnyInput()
	return f, nil
}

// Partitioned is the factory network of one partitioned multi-query
// wiring: the splitter, the per-partition strategy wirings writing into
// per-(query, partition) staging baskets, and one merge emitter per query.
type Partitioned struct {
	Splitter *Factory
	Parts    []*basket.Basket
	// CatchAll is the range-routing residual basket (nil otherwise): the
	// splitter parks tuples no query of the wiring can match there, and
	// no clone ever scans it.
	CatchAll *basket.Basket
	// Staging and QueryFs are indexed [query][partition]: the staging
	// result basket and the clone factory executing that query on that
	// partition.
	Staging [][]*basket.Basket
	QueryFs [][]*Factory
	Merges  []*Factory
	// Factories is every factory of the wiring in registration order.
	Factories []*Factory
}

// PartitionedShared replicates the shared-baskets strategy (Figure 2b)
// over the partitions of pb: the splitter shards stream `in`, each
// partition runs an independent locker/readers/unlocker cycle over clones
// of the queries, and merge emitters concatenate the per-partition results
// into each query's result basket.
func PartitionedShared(prefix string, in *basket.Basket, pb *basket.PartitionedBasket, queries []StreamQuery) (*Partitioned, error) {
	return partitioned(prefix, in, pb, queries, SharedBaskets, 1, false)
}

// PartitionedPartial replicates the partial-deletes strategy (Figure 2c)
// over the partitions of pb: one delete chain per partition.
func PartitionedPartial(prefix string, in *basket.Basket, pb *basket.PartitionedBasket, queries []StreamQuery) (*Partitioned, error) {
	return partitioned(prefix, in, pb, queries, PartialDeletes, 0, true)
}

// PartitionedQuery wires a single query over the partitions of pb in the
// separate-baskets style: the splitter shards `in` (the query's exclusive
// replica), one clone per partition consumes its partition, and a merge
// emitter concatenates the staged results into the query's result basket.
func PartitionedQuery(prefix string, in *basket.Basket, pb *basket.PartitionedBasket, q StreamQuery) (*Partitioned, error) {
	return partitioned(prefix, in, pb, []StreamQuery{q},
		func(p string, part *basket.Basket, qs []StreamQuery) ([]*Factory, error) {
			f, err := NewStreamQueryFactory(p+".q."+qs[0].Name, part, qs[0])
			if err != nil {
				return nil, err
			}
			return []*Factory{f}, nil
		}, 0, false)
}

// partitioned wires the generic partitioned topology. base builds one
// partition's strategy wiring; qOffset locates query i's factory in base's
// result (SharedBaskets returns [locker, readers…, unlocker], so 1;
// PartialDeletes returns the queries in order, so 0). chained marks base
// wirings where query i+1's feed is filled by query i's firing (the
// partial-deletes residue chain): a combining merge must then wait for the
// whole upstream chain to settle, not just its own feed, because a settled
// chain basket can still be owed residue from upstream.
func partitioned(prefix string, in *basket.Basket, pb *basket.PartitionedBasket, queries []StreamQuery,
	base func(string, *basket.Basket, []StreamQuery) ([]*Factory, error), qOffset int, chained bool) (*Partitioned, error) {

	split, err := NewPartitionSplitter(prefix+".split", in, pb)
	if err != nil {
		return nil, err
	}
	parts := pb.Parts()
	p := len(parts)
	pw := &Partitioned{
		Splitter:  split,
		Parts:     parts,
		CatchAll:  pb.CatchAll(),
		Staging:   make([][]*basket.Basket, len(queries)),
		QueryFs:   make([][]*Factory, len(queries)),
		Factories: []*Factory{split},
	}
	combining := false
	for _, q := range queries {
		if q.Combine != nil {
			combining = true
			break
		}
	}
	// With any two-phase query in the wiring, every clone firing reports
	// its feed progress so the combining merges can hold the round barrier
	// — including clones of non-combining queries, whose firings move the
	// residue chain a downstream combining merge waits on.
	var track *progress
	if combining {
		track = newProgress(len(queries), p)
	}
	for qi, q := range queries {
		names, types := q.Out.UserSchema()
		if q.Combine != nil {
			names, types = q.Combine.Names, q.Combine.Types
		}
		pw.Staging[qi] = make([]*basket.Basket, p)
		pw.QueryFs[qi] = make([]*Factory, p)
		for k := 0; k < p; k++ {
			pw.Staging[qi][k] = basket.New(fmt.Sprintf("%s.stage.%s.%d", prefix, q.Name, k), names, types)
		}
	}
	for k := 0; k < p; k++ {
		clones := make([]StreamQuery, len(queries))
		for qi, q := range queries {
			q.Out = pw.Staging[qi][k]
			if q.Combine != nil {
				q.Fire = q.Combine.Partial
			}
			if track != nil {
				orig := q.Fire
				qi, k := qi, k
				q.Fire = func(in, out *basket.Basket, report func(covered []int32)) error {
					err := orig(in, out, report)
					// The feed's appended counter is read under the clone's
					// held input lock: exactly what this firing could see.
					track.done(qi, k, in.AppendedLocked())
					return err
				}
			}
			clones[qi] = q
		}
		fs, err := base(fmt.Sprintf("%s.p%d", prefix, k), parts[k], clones)
		if err != nil {
			return nil, err
		}
		for qi := range queries {
			pw.QueryFs[qi][k] = fs[qOffset+qi]
		}
		pw.Factories = append(pw.Factories, fs...)
	}
	for qi, q := range queries {
		var merge *Factory
		var err error
		if q.Combine != nil {
			lo := qi
			if chained {
				lo = 0
			}
			var feeds []*basket.Basket
			var seen []*atomic.Int64
			for j := lo; j <= qi; j++ {
				for k := 0; k < p; k++ {
					feeds = append(feeds, pw.QueryFs[j][k].Inputs()[0])
					seen = append(seen, &track.seen[j][k])
				}
			}
			merge, err = NewCombiningMergeEmitter(fmt.Sprintf("%s.merge.%s", prefix, q.Name),
				pw.Staging[qi], feeds, seen, q.Combine, q.Out)
		} else {
			merge, err = NewMergeEmitter(fmt.Sprintf("%s.merge.%s", prefix, q.Name), pw.Staging[qi], q.Out)
		}
		if err != nil {
			return nil, err
		}
		pw.Merges = append(pw.Merges, merge)
		pw.Factories = append(pw.Factories, merge)
	}
	if track != nil {
		track.merges = pw.Merges
	}
	return pw, nil
}
