package core

import (
	"sync/atomic"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/vector"
)

// BarrierStats accumulates the round-barrier wait episodes of a combining
// merge emitter: an episode starts when staged partial state exists but
// some clone has not caught up with its feed (the guard refuses), and
// ends when the guard finally passes. Waits counts completed episodes,
// WaitTime their cumulative duration — the two-phase merge's contribution
// to end-to-end latency, exported per query by the observability layer.
// All fields are atomics; the guard path never allocates.
type BarrierStats struct {
	since atomic.Int64 // episode start in unix nanos; 0 when not blocked
	ns    atomic.Int64
	n     atomic.Int64
}

// blocked marks the start of a wait episode (idempotent within one).
func (b *BarrierStats) blocked() {
	if b.since.Load() == 0 {
		b.since.Store(time.Now().UnixNano())
	}
}

// released closes the current episode, if any.
func (b *BarrierStats) released() {
	if s := b.since.Swap(0); s != 0 {
		b.ns.Add(time.Now().UnixNano() - s)
		b.n.Add(1)
	}
}

// Waits returns the number of completed wait episodes.
func (b *BarrierStats) Waits() int64 { return b.n.Load() }

// WaitTime returns the cumulative completed-episode wait duration.
func (b *BarrierStats) WaitTime() time.Duration { return time.Duration(b.ns.Load()) }

// Combine is the two-phase decomposition of an aggregating stream query:
// the classic partial-aggregate/final-merge split of parallel relational
// engines, applied to DataCell's factory graph. A query that carries a
// Combine runs its Partial body on every partition clone (producing
// mergeable partial state — SUM+COUNT pairs for AVG, per-group MIN/MAX,
// per-partition sorted top-N runs — into the per-partition staging
// baskets) and a CombiningMergeEmitter folds the staged partials into
// final result tuples, instead of the concatenating merge that suffices
// for row-local plans.
type Combine struct {
	// Names and Types describe the partial-state schema: the staging
	// baskets are created with this schema instead of the query's result
	// schema.
	Names []string
	Types []vector.Type
	// Partial replaces the query's Fire on partition clones. It follows
	// the same contract (consume covered tuples, or report them when
	// report is non-nil) but appends partial-aggregate state rather than
	// final results.
	Partial func(in, out *basket.Basket, report func(covered []int32)) error
	// Merge folds one round of staged per-partition partial relations
	// (parts[k] is partition k's staged state, possibly empty) into final
	// result tuples conforming to `out`'s schema. The caller appends the
	// returned relation; Merge itself must not touch `out`'s contents.
	// Returned columns must be freshly allocated — they outlive the call.
	Merge func(parts []*bat.Relation, out *basket.Basket) (*bat.Relation, error)
}

// progress tracks, per (query, partition), how much of the clone's feed
// basket it has processed: after each clone firing the wrapper stores the
// feed's total-appended counter. A combining merge may only fire when
// every relevant clone has caught up with its feed — the round barrier
// that keeps one splitter round from being merged as two.
type progress struct {
	seen   [][]atomic.Int64 // [query][partition]
	merges []*Factory       // filled once construction completes
}

func newProgress(queries, parts int) *progress {
	t := &progress{seen: make([][]atomic.Int64, queries)}
	for i := range t.seen {
		t.seen[i] = make([]atomic.Int64, parts)
	}
	return t
}

// done records that query qi's clone on partition k processed its feed up
// to `appended` total tuples, then wakes the combining merges: the firing
// that completes a barrier may stage nothing (so no append notification
// reaches the merge), and without the ping the staged results of the
// other partitions would strand until the next round.
func (t *progress) done(qi, k int, appended int64) {
	t.seen[qi][k].Store(appended)
	for _, m := range t.merges {
		m.ping()
	}
}

// NewCombiningMergeEmitter builds the fan-in transition of two-phase
// partitioned aggregation. Like the concatenating merge emitter it drains
// the query's per-partition staging baskets, but instead of forwarding
// the staged tuples it hands them to the query's Combine.Merge and
// appends the folded result.
//
// The feed baskets (the baskets the clones fire on) are extra inputs:
// TryFire's ID-ordered lock-all therefore holds every feed lock while the
// guard runs, so the guard can read each feed's AppendedLocked counter
// race-free and compare it with the clones' progress. The guard passes
// only when some staging basket holds partial state AND every clone has
// processed everything its feed ever received — i.e. the current splitter
// round is complete. Firing mid-round would split one round's partials
// into two merges and, for aggregates, two result rows where the
// unpartitioned plan emits one.
func NewCombiningMergeEmitter(name string, staging, feeds []*basket.Basket, seen []*atomic.Int64, c *Combine, out *basket.Basket) (*Factory, error) {
	inputs := make([]*basket.Basket, 0, len(staging)+len(feeds))
	inputs = append(inputs, staging...)
	inputs = append(inputs, feeds...)
	spares := make([]*bat.Relation, len(staging))
	parts := make([]*bat.Relation, len(staging))
	f, err := NewFactory(name, inputs, []*basket.Basket{out}, func(ctx *Context) error {
		staged := false
		for i := range staging {
			rel := ctx.In(i).ExchangeLocked(spares[i])
			spares[i] = rel
			parts[i] = rel
			if rel.Len() > 0 {
				staged = true
			}
		}
		if !staged {
			return nil
		}
		rel, err := c.Merge(parts, out)
		if err != nil {
			return err
		}
		if rel.Len() == 0 {
			return nil
		}
		_, err = out.AppendLocked(rel)
		return err
	})
	if err != nil {
		return nil, err
	}
	f.SetFireAnyInput()
	bar := &BarrierStats{}
	f.SetBarrierStats(bar)
	f.SetGuard(func(ctx *Context) bool {
		staged := false
		for i := range staging {
			if ctx.In(i).LenLocked() > 0 {
				staged = true
				break
			}
		}
		if !staged {
			return false
		}
		for j, fb := range feeds {
			if seen[j].Load() != fb.AppendedLocked() {
				// Partial state is staged but this clone's round is still in
				// flight: the barrier is holding the merge back. Time it.
				bar.blocked()
				return false
			}
		}
		bar.released()
		return true
	})
	return f, nil
}
