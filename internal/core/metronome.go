package core

import (
	"sync"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/vector"
)

// Metronome injects marker events into a basket at a fixed interval. It is
// the DataCell's answer to reacting to the *lack* of events: a separate
// process whose argument is a time interval and which injects a value
// timestamp into a basket (§5).
type Metronome struct {
	b        *basket.Basket
	interval time.Duration
	makeRow  func(t time.Time) []vector.Value

	mu      sync.Mutex
	stopc   chan struct{}
	done    chan struct{}
	started bool
}

// NewMetronome builds a metronome that appends makeRow(now) to b every
// interval. makeRow may be nil when b's user schema is a single timestamp
// column.
func NewMetronome(b *basket.Basket, interval time.Duration, makeRow func(t time.Time) []vector.Value) *Metronome {
	if makeRow == nil {
		makeRow = func(t time.Time) []vector.Value {
			return []vector.Value{vector.NewTimestamp(t)}
		}
	}
	return &Metronome{b: b, interval: interval, makeRow: makeRow}
}

// Start launches the metronome goroutine. Calling Start twice is a no-op.
func (m *Metronome) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return
	}
	m.started = true
	m.stopc = make(chan struct{})
	m.done = make(chan struct{})
	go func() {
		defer close(m.done)
		tick := time.NewTicker(m.interval)
		defer tick.Stop()
		for {
			select {
			case t := <-tick.C:
				// A closed basket ends the metronome.
				if err := m.b.AppendRow(m.makeRow(t)...); err != nil {
					return
				}
			case <-m.stopc:
				return
			}
		}
	}()
}

// Stop terminates the metronome and waits for its goroutine to exit.
func (m *Metronome) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		return
	}
	m.started = false
	close(m.stopc)
	<-m.done
}

// Tick injects one marker immediately, bypassing the timer. Used by
// simulated-time harnesses and tests.
func (m *Metronome) Tick(t time.Time) error {
	return m.b.AppendRow(m.makeRow(t)...)
}

// NewHeartbeatFactory builds the heartbeat transition of §5: it merges an
// event basket with a metronome-fed heartbeat basket so that downstream
// queries observe a uniform stream — epochs with no events are represented
// by the heartbeat markers themselves. Events and heartbeats are combined
// in timestamp order; heartbeat markers newer than the newest event remain
// in the heartbeat basket (the heartbeat clock runs ahead of the events).
//
// events must carry a column named tagCol (timestamp or int); the heartbeat
// basket's first user column carries the epoch markers of the same type.
// Each firing drains the events basket, picks all heartbeat markers up to
// the newest event tag, and emits the union sorted by tag into out, whose
// schema is (tag, isevent bool).
func NewHeartbeatFactory(name string, events, heartbeat, out *basket.Basket, tagCol string) (*Factory, error) {
	return NewFactory(name,
		[]*basket.Basket{events, heartbeat},
		[]*basket.Basket{out},
		func(ctx *Context) error {
			ev := ctx.In(0).TakeAllLocked()
			tags := ev.ColByName(tagCol)
			if tags == nil || tags.Len() == 0 {
				return nil
			}
			maxTag := tags.Get(0)
			for i := 1; i < tags.Len(); i++ {
				if tags.Get(i).Compare(maxTag) > 0 {
					maxTag = tags.Get(i)
				}
			}
			hb := ctx.In(1).RelLocked()
			hbTags := hb.Col(0)
			var take []int32
			for i := 0; i < hbTags.Len(); i++ {
				if hbTags.Get(i).Compare(maxTag) <= 0 {
					take = append(take, int32(i))
				}
			}
			marks := ctx.In(1).TakeLocked(take)

			merged := bat.NewEmptyRelation([]string{"tag", "isevent"}, []vector.Type{tags.Kind(), vector.Bool})
			for i := 0; i < tags.Len(); i++ {
				merged.AppendRow(tags.Get(i), vector.NewBool(true))
			}
			for i := 0; i < marks.Len(); i++ {
				merged.AppendRow(marks.Col(0).Get(i), vector.NewBool(false))
			}
			perm := sortByCol(merged.Col(0))
			_, err := ctx.Out(0).AppendLocked(merged.Gather(perm))
			return err
		})
}

func sortByCol(v *vector.Vector) []int32 {
	perm := make([]int32, v.Len())
	for i := range perm {
		perm[i] = int32(i)
	}
	// Stable insertion sort over the small merged batches a heartbeat sees.
	for i := 1; i < len(perm); i++ {
		for j := i; j > 0 && v.Get(int(perm[j-1])).Compare(v.Get(int(perm[j]))) > 0; j-- {
			perm[j-1], perm[j] = perm[j], perm[j-1]
		}
	}
	return perm
}
