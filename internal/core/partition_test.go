package core

import (
	"testing"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/relop"
	"datacell/internal/vector"
)

func kvBasket(name string) *basket.Basket {
	return basket.New(name, []string{"k", "v"}, []vector.Type{vector.Int, vector.Int})
}

func kvPartitioned(t *testing.T, name string, p int, mode basket.PartitionMode, col string) *basket.PartitionedBasket {
	t.Helper()
	pb, err := basket.NewPartitioned(name, []string{"k", "v"},
		[]vector.Type{vector.Int, vector.Int}, p, mode, col)
	if err != nil {
		t.Fatal(err)
	}
	return pb
}

func appendKV(t *testing.T, b *basket.Basket, pairs ...int64) {
	t.Helper()
	for i := 0; i+1 < len(pairs); i += 2 {
		if err := b.AppendRow(vector.NewInt(pairs[i]), vector.NewInt(pairs[i+1])); err != nil {
			t.Fatal(err)
		}
	}
}

// kvRange is a full-coverage range query over v for the kv schema:
// matches lo <= v < hi and covers what it matched.
func kvRange(name string, lo, hi int64) ScanQuery {
	return ScanQuery{
		Name: name,
		Scan: func(rel *bat.Relation) (matched, covered []int32) {
			sel := relop.SelectRange(rel.ColByName("v"),
				vector.NewInt(lo), vector.NewInt(hi), true, false, nil)
			return sel, sel
		},
	}
}

func TestPartitionSplitterMovesEverything(t *testing.T) {
	in := kvBasket("in")
	pb := kvPartitioned(t, "in.part", 3, basket.PartitionRoundRobin, "")
	split, err := NewPartitionSplitter("split", in, pb)
	if err != nil {
		t.Fatal(err)
	}
	appendKV(t, in, 1, 10, 2, 20, 3, 30, 4, 40, 5, 50)
	if _, err := split.TryFire(); err != nil {
		t.Fatal(err)
	}
	if in.Len() != 0 {
		t.Fatalf("splitter left %d tuples in the stream", in.Len())
	}
	total := 0
	for _, p := range pb.Parts() {
		total += p.Len()
	}
	if total != 5 {
		t.Fatalf("partitions hold %d tuples, want 5", total)
	}
}

func TestPartitionSplitterDefersWhileDisabled(t *testing.T) {
	in := kvBasket("in")
	pb := kvPartitioned(t, "in.part", 2, basket.PartitionRoundRobin, "")
	split, err := NewPartitionSplitter("split", in, pb)
	if err != nil {
		t.Fatal(err)
	}
	pb.Parts()[1].SetEnabled(false)
	appendKV(t, in, 1, 10, 2, 20)
	fired, err := split.TryFire()
	if err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("splitter fired while a partition was disabled")
	}
	if in.Len() != 2 {
		t.Fatalf("stream lost tuples: %d left, want 2", in.Len())
	}
	pb.Parts()[1].SetEnabled(true)
	if fired, err = split.TryFire(); err != nil || !fired {
		t.Fatalf("splitter should fire after re-enable (fired=%v err=%v)", fired, err)
	}
	if in.Len() != 0 {
		t.Fatalf("splitter left %d tuples after firing", in.Len())
	}
}

func TestMergeEmitterFiresOnAnyInput(t *testing.T) {
	s0, s1 := kvBasket("stage0"), kvBasket("stage1")
	out := kvBasket("out")
	merge, err := NewMergeEmitter("merge", []*basket.Basket{s0, s1}, out)
	if err != nil {
		t.Fatal(err)
	}
	// Only one staging basket has tuples; the AND firing rule would wait
	// forever for the other partition.
	appendKV(t, s1, 9, 90)
	fired, err := merge.TryFire()
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("merge emitter did not fire with one non-empty staging basket")
	}
	if out.Len() != 1 || s1.Len() != 0 {
		t.Fatalf("merge moved %d tuples (staging left %d)", out.Len(), s1.Len())
	}
}

// TestPartitionedSharedMatchesUnpartitioned runs the same workload through
// the plain shared-baskets wiring and the partitioned one and compares
// result counts per query.
func TestPartitionedSharedMatchesUnpartitioned(t *testing.T) {
	queries := func(outs []*basket.Basket) []StreamQuery {
		return []StreamQuery{
			kvRange("q0", 0, 30).Bind(outs[0]),
			kvRange("q1", 30, 60).Bind(outs[1]),
			kvRange("q2", 60, 100).Bind(outs[2]),
		}
	}
	feed := func(in *basket.Basket) {
		for i := int64(0); i < 90; i++ {
			appendKV(t, in, i%11, i)
		}
	}

	run := func(partitioned bool) []int {
		in := kvBasket("stream")
		outs := []*basket.Basket{kvBasket("o0"), kvBasket("o1"), kvBasket("o2")}
		sch := NewScheduler()
		var fs []*Factory
		var err error
		if partitioned {
			pb := kvPartitioned(t, "stream.part", 4, basket.PartitionRoundRobin, "")
			var pw *Partitioned
			pw, err = PartitionedShared("ps", in, pb, queries(outs))
			if err == nil {
				fs = pw.Factories
			}
		} else {
			fs, err = SharedBaskets("sh", in, queries(outs))
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fs {
			if err := sch.Register(f); err != nil {
				t.Fatal(err)
			}
		}
		feed(in)
		if _, err := sch.RunUntilQuiescent(0); err != nil {
			t.Fatal(err)
		}
		counts := make([]int, len(outs))
		for i, o := range outs {
			counts[i] = o.Len()
		}
		return counts
	}

	plain := run(false)
	parted := run(true)
	for i := range plain {
		if plain[i] != parted[i] {
			t.Errorf("query %d: partitioned shared delivered %d rows, plain %d", i, parted[i], plain[i])
		}
		if plain[i] == 0 {
			t.Errorf("query %d produced no rows; comparison is vacuous", i)
		}
	}
}

// TestPartitionedPartialChainsPerPartition checks the partial-deletes
// wiring over partitions: disjoint queries each get their matches and the
// chains drain fully.
func TestPartitionedPartialChainsPerPartition(t *testing.T) {
	in := kvBasket("stream")
	outs := []*basket.Basket{kvBasket("o0"), kvBasket("o1")}
	pb := kvPartitioned(t, "stream.part", 2, basket.PartitionHash, "k")
	pw, err := PartitionedPartial("pp", in, pb, []StreamQuery{
		kvRange("q0", 0, 50).Bind(outs[0]),
		kvRange("q1", 50, 100).Bind(outs[1]),
	})
	if err != nil {
		t.Fatal(err)
	}
	sch := NewScheduler()
	for _, f := range pw.Factories {
		if err := sch.Register(f); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 100; i++ {
		appendKV(t, in, i%13, i)
	}
	if _, err := sch.RunUntilQuiescent(0); err != nil {
		t.Fatal(err)
	}
	if outs[0].Len() != 50 || outs[1].Len() != 50 {
		t.Fatalf("partitioned partial delivered %d+%d rows, want 50+50", outs[0].Len(), outs[1].Len())
	}
	for _, p := range pw.Parts {
		if p.Len() != 0 {
			t.Errorf("partition %s still holds %d tuples", p.Name(), p.Len())
		}
	}
}

// TestUnregisterTwiceAndHookCleanup covers the scheduler satellite fixes:
// a double unregister must not panic on a closed kill channel, and the
// last watcher leaving a basket must clear its append hook.
func TestUnregisterTwiceAndHookCleanup(t *testing.T) {
	in, out := kvBasket("in"), kvBasket("out")
	f := MustFactory("f", []*basket.Basket{in}, []*basket.Basket{out},
		func(ctx *Context) error {
			ctx.In(0).TakeAllLocked()
			return nil
		})
	s := NewScheduler()
	if err := s.Register(f); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	watching := len(s.watchers[in])
	s.mu.Unlock()
	if watching != 1 {
		t.Fatalf("registered factory has %d watchers on its input, want 1", watching)
	}
	s.Unregister(f)
	s.Unregister(f) // must not panic on double close
	s.mu.Lock()
	_, still := s.watchers[in]
	s.mu.Unlock()
	if still {
		t.Error("watcher entry not removed after last unregister")
	}
	// The stale hook is gone: an append must not ping the dead factory.
	appendKV(t, in, 1, 1)
	select {
	case <-f.wake:
		t.Error("unregistered factory still pinged by its former input")
	default:
	}
}
