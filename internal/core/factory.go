// Package core implements the DataCell kernel: factories (continuous-query
// plans whose execution state is saved between calls), the Petri-net
// scheduler that fires them, the shared-basket and partial-delete
// processing strategies, and the metronome/heartbeat utilities.
//
// Baskets are the Petri-net places, tuples the tokens; receptors, factories
// and emitters are the transitions. A factory fires when each of its input
// baskets holds at least its threshold of tuples; one firing locks every
// input and output basket, runs the factory body exactly once, and releases
// the locks — the model's atomic, non-interruptible step.
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"datacell/internal/basket"
	"datacell/internal/histo"
)

// Body is the code of a factory: the (part of a) query plan it executes per
// firing. The body runs with every input and output basket locked, exactly
// like the lock/process/unlock loop of the paper's Algorithm 1. State that
// must survive between calls lives in the closure, mirroring the saved
// execution state of MAL factories.
type Body func(ctx *Context) error

// Context gives a firing access to its locked baskets.
type Context struct {
	f *Factory
}

// In returns input basket i (locked for the duration of the firing).
func (c *Context) In(i int) *basket.Basket { return c.f.inputs[i] }

// Out returns output basket i (locked for the duration of the firing).
func (c *Context) Out(i int) *basket.Basket { return c.f.outputs[i] }

// NumIn returns the number of input baskets.
func (c *Context) NumIn() int { return len(c.f.inputs) }

// NumOut returns the number of output baskets.
func (c *Context) NumOut() int { return len(c.f.outputs) }

// Factory is a continuous-query transition. Per the Petri-net model it has
// at least one input and one output basket. Thresholds generalise the
// firing rule to "input i holds at least Threshold[i] tuples", which is how
// tuple-based windows and batch processing are controlled at the scheduler
// level.
type Factory struct {
	name      string
	inputs    []*basket.Basket
	outputs   []*basket.Basket
	threshold []int // per-input minimum tuple counts; default 1
	body      Body

	lockSet []*basket.Basket // inputs+outputs deduplicated, ID-ordered

	// guard, when set, is an extra firing condition evaluated under the
	// basket locks after the thresholds pass. Used e.g. by the shared-
	// baskets locker to fire only when new tuples arrived since its last
	// cycle.
	guard func(ctx *Context) bool

	// anyInput switches the firing rule from AND to OR over the inputs:
	// the factory fires when at least one input meets its threshold. Merge
	// emitters use it — partition outputs arrive independently and must
	// not wait for every partition to produce.
	anyInput bool

	runMu   sync.Mutex // serialises firings of this factory
	fires   atomic.Int64
	errs    atomic.Int64
	busy    atomic.Int64 // nanoseconds spent executing the body
	lastErr atomic.Value // error

	// Latency instrumentation (SetLatency): each successful firing records
	// one ingest-to-emit sample into latH — the age of the oldest tuple
	// resident in latSrc when the body completes, measured against the
	// sys_ts arrival stamps the receptor side wrote. All pieces are read
	// with latSrc locked (it is an input), recorded with two atomic adds:
	// zero allocation, O(1) per firing regardless of batch size.
	latH   *histo.H
	latSrc *basket.Basket
	latNow func() time.Time

	// bar, when set, accumulates round-barrier wait episodes (combining
	// merge emitters; see BarrierStats).
	bar *BarrierStats

	wake   chan struct{} // scheduler wake-up, buffered 1
	kill   chan struct{} // closed by Scheduler.Unregister
	killed atomic.Bool
}

// NewFactory builds a factory. Every factory needs at least one input and
// one output basket.
func NewFactory(name string, inputs, outputs []*basket.Basket, body Body) (*Factory, error) {
	if len(inputs) == 0 || len(outputs) == 0 {
		return nil, fmt.Errorf("core: factory %s needs at least one input and one output basket", name)
	}
	if body == nil {
		return nil, fmt.Errorf("core: factory %s has no body", name)
	}
	f := &Factory{
		name:      name,
		inputs:    inputs,
		outputs:   outputs,
		threshold: make([]int, len(inputs)),
		body:      body,
		wake:      make(chan struct{}, 1),
		kill:      make(chan struct{}),
	}
	for i := range f.threshold {
		f.threshold[i] = 1
	}
	seen := map[uint64]bool{}
	for _, b := range append(append([]*basket.Basket(nil), inputs...), outputs...) {
		if !seen[b.ID()] {
			seen[b.ID()] = true
			f.lockSet = append(f.lockSet, b)
		}
	}
	sort.Slice(f.lockSet, func(i, j int) bool { return f.lockSet[i].ID() < f.lockSet[j].ID() })
	return f, nil
}

// MustFactory is NewFactory that panics on error; for static wiring.
func MustFactory(name string, inputs, outputs []*basket.Basket, body Body) *Factory {
	f, err := NewFactory(name, inputs, outputs, body)
	if err != nil {
		panic(err)
	}
	return f
}

// Name returns the factory name.
func (f *Factory) Name() string { return f.name }

// Inputs returns the input baskets.
func (f *Factory) Inputs() []*basket.Basket { return f.inputs }

// Outputs returns the output baskets.
func (f *Factory) Outputs() []*basket.Basket { return f.outputs }

// SetThreshold sets the firing threshold of input i to n tuples (n >= 1).
// A factory with a threshold of n runs only after n tuples have been
// collected, the hook for explicit batch processing and tuple-based
// windows.
func (f *Factory) SetThreshold(i, n int) {
	if n < 1 {
		n = 1
	}
	f.threshold[i] = n
}

// SetGuard installs an extra firing condition, evaluated with all baskets
// locked. A false guard suppresses the firing without counting it.
func (f *Factory) SetGuard(g func(ctx *Context) bool) { f.guard = g }

// SetFireAnyInput relaxes the firing rule to "at least one input meets its
// threshold" instead of all of them. Call before registering.
func (f *Factory) SetFireAnyInput() { f.anyInput = true }

// SetLatency arms per-firing ingest-to-emit latency sampling: src must be
// one of the factory's input baskets (its implicit sys_ts column carries
// the arrival stamps), h receives one sample per successful firing, and
// now supplies the emit-side clock (nil for time.Now; pass the engine
// clock so simulated-time runs stay consistent). Call before registering.
func (f *Factory) SetLatency(h *histo.H, src *basket.Basket, now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	f.latH, f.latSrc, f.latNow = h, src, now
}

// SetBarrierStats attaches a barrier-wait accumulator (combining merge
// emitters record their round-barrier episodes through it).
func (f *Factory) SetBarrierStats(b *BarrierStats) { f.bar = b }

// Barrier returns the factory's barrier-wait accumulator, nil for
// factories without one.
func (f *Factory) Barrier() *BarrierStats { return f.bar }

// Fires returns how many times the factory has fired.
func (f *Factory) Fires() int64 { return f.fires.Load() }

// Errors returns how many firings returned an error.
func (f *Factory) Errors() int64 { return f.errs.Load() }

// Busy returns the cumulative time firings spent executing the factory
// body. Together with Fires it is the utilisation signal the adaptive
// parallelism controller samples: busy clones justify their partitions,
// idle ones get merged away. Maintained with two clock reads and one
// atomic add per firing — no locks, no allocations.
func (f *Factory) Busy() time.Duration { return time.Duration(f.busy.Load()) }

// LastError returns the most recent body error, or nil.
func (f *Factory) LastError() error {
	if e, ok := f.lastErr.Load().(error); ok {
		return e
	}
	return nil
}

// fireable reports whether the inputs meet the firing rule (all inputs at
// threshold, or any input under SetFireAnyInput). It takes no locks: a
// stale positive is re-checked under locks in TryFire, and a stale
// negative is repaired by the wake-up hook.
func (f *Factory) fireable() bool {
	if f.anyInput {
		for i, in := range f.inputs {
			if in.Len() >= f.threshold[i] {
				return true
			}
		}
		return false
	}
	for i, in := range f.inputs {
		if in.Len() < f.threshold[i] {
			return false
		}
	}
	return true
}

// readyLocked is the firing rule evaluated under the basket locks.
func (f *Factory) readyLocked() bool {
	if f.anyInput {
		for i, in := range f.inputs {
			if in.LenLocked() >= f.threshold[i] {
				return true
			}
		}
		return false
	}
	for i, in := range f.inputs {
		if in.LenLocked() < f.threshold[i] {
			return false
		}
	}
	return true
}

// Enabled reports whether the factory would fire right now: thresholds
// met and guard passing, evaluated under the basket locks. Quiescence
// checks need it because the lock-free fireable() cannot consult the
// guard — a factory whose input holds residual tuples but whose guard
// waits for new arrivals is fireable-looking yet permanently disabled.
func (f *Factory) Enabled() bool {
	if f.killed.Load() {
		return false
	}
	for _, b := range f.lockSet {
		b.Lock()
	}
	ready := f.readyLocked()
	if ready && f.guard != nil && !f.guard(&Context{f: f}) {
		ready = false
	}
	for i := len(f.lockSet) - 1; i >= 0; i-- {
		f.lockSet[i].Unlock()
	}
	return ready
}

// TryFire locks all baskets, re-checks the firing condition, runs the body
// once if met and reports whether it ran. Locks are taken in global basket
// ID order, so any set of factories sharing baskets is deadlock-free.
func (f *Factory) TryFire() (bool, error) {
	f.runMu.Lock()
	defer f.runMu.Unlock()
	if f.killed.Load() {
		// Unregistered: never touch the baskets again. Unregister followed
		// by WaitIdle is therefore a full quiesce of this factory.
		return false, nil
	}

	for _, b := range f.lockSet {
		b.Lock()
	}
	ready := f.readyLocked()
	if ready && f.guard != nil && !f.guard(&Context{f: f}) {
		ready = false
	}
	if !ready {
		for i := len(f.lockSet) - 1; i >= 0; i-- {
			f.lockSet[i].Unlock()
		}
		return false, nil
	}

	outBefore := make([]int, len(f.outputs))
	for i, o := range f.outputs {
		outBefore[i] = o.LenLocked()
	}

	// Read the arrival stamp of the oldest tuple about to be processed
	// before the body consumes it. Baskets append in arrival order and
	// keep sys_ts as their last column, so this is one slice index.
	arrivalUs := int64(-1)
	if f.latH != nil {
		if r := f.latSrc.RelLocked(); r.Len() > 0 {
			arrivalUs = r.Col(r.NumCols() - 1).Ints()[0]
		}
	}

	bodyStart := time.Now()
	err := f.body(&Context{f: f})
	f.busy.Add(int64(time.Since(bodyStart)))
	if err == nil && arrivalUs >= 0 {
		f.latH.RecordValue((f.latNow().UnixMicro() - arrivalUs) * 1000)
	}

	grew := make([]bool, len(f.outputs))
	for i, o := range f.outputs {
		grew[i] = o.LenLocked() > outBefore[i]
	}
	for i := len(f.lockSet) - 1; i >= 0; i-- {
		f.lockSet[i].Unlock()
	}

	f.fires.Add(1)
	if err != nil {
		f.errs.Add(1)
		f.lastErr.Store(err)
	}
	// Wake downstream transitions whose input baskets grew.
	for i, o := range f.outputs {
		if grew[i] {
			o.NotifyAppend()
		}
	}
	return true, err
}

// WaitIdle blocks until no firing of this factory is in progress. After
// Scheduler.Unregister followed by WaitIdle, the factory is guaranteed to
// never touch its baskets again — the handshake group rewiring relies on.
func (f *Factory) WaitIdle() {
	f.runMu.Lock()
	//lint:ignore SA2001 acquiring runMu is the synchronisation point itself
	f.runMu.Unlock()
}

// ping delivers a non-blocking wake-up.
func (f *Factory) ping() {
	select {
	case f.wake <- struct{}{}:
	default:
	}
}
