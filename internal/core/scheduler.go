package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datacell/internal/basket"
)

// Scheduler organises the execution of the transitions. It continuously
// re-evaluates the firing condition of every registered factory: in
// concurrent mode each factory runs on its own goroutine (the paper's
// multi-threaded architecture where every component is an independent
// thread), woken whenever one of its input baskets receives tuples. The
// synchronous RunUntilQuiescent mode fires factories on the caller's
// goroutine until no transition is enabled, which benchmarks use to measure
// pure kernel work.
type Scheduler struct {
	mu        sync.Mutex
	factories []*Factory
	watchers  map[*basket.Basket][]*Factory // input basket -> interested factories
	running   bool
	stop      chan struct{}
	wg        sync.WaitGroup
	active    atomic.Int64 // number of factories currently firing
}

// NewScheduler returns an empty scheduler.
func NewScheduler() *Scheduler {
	return &Scheduler{watchers: map[*basket.Basket][]*Factory{}}
}

// Register adds a factory to the scheduler and hooks its input baskets'
// append notifications. If the scheduler is already running, the factory's
// thread starts immediately (continuous queries can be installed while the
// stream flows).
func (s *Scheduler) Register(f *Factory) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.factories = append(s.factories, f)
	for _, in := range f.Inputs() {
		if len(s.watchers[in]) == 0 {
			in := in
			in.SetOnAppend(func() { s.notify(in) })
		}
		s.watchers[in] = append(s.watchers[in], f)
	}
	if s.running {
		s.spawnLocked(f)
	}
	return nil
}

// Factories returns the registered factories.
func (s *Scheduler) Factories() []*Factory {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Factory(nil), s.factories...)
}

func (s *Scheduler) notify(b *basket.Basket) {
	s.mu.Lock()
	fs := s.watchers[b]
	s.mu.Unlock()
	for _, f := range fs {
		f.ping()
	}
}

// Start launches one goroutine per factory. Each goroutine fires its
// factory as long as it is enabled and then suspends until woken by an
// input-basket append.
func (s *Scheduler) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return errors.New("core: scheduler already running")
	}
	s.running = true
	s.stop = make(chan struct{})
	for _, f := range s.factories {
		s.spawnLocked(f)
	}
	return nil
}

// spawnLocked launches one factory thread; the caller holds s.mu.
func (s *Scheduler) spawnLocked(f *Factory) {
	stop := s.stop
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			if f.killed.Load() {
				return
			}
			s.active.Add(1)
			fired, _ := f.TryFire()
			s.active.Add(-1)
			if fired {
				continue
			}
			select {
			case <-f.wake:
			case <-f.kill:
				return
			case <-stop:
				return
			}
		}
	}()
}

// Unregister removes a factory: its thread (if any) terminates after the
// current firing and it no longer gates quiescence. The factory's baskets
// are left untouched, except that a basket whose last watcher goes away
// also loses its append hook — otherwise the basket would keep pinging a
// factory set that no longer exists. Unregistering a factory twice is a
// no-op.
func (s *Scheduler) Unregister(f *Factory) {
	s.mu.Lock()
	for i, g := range s.factories {
		if g == f {
			s.factories = append(s.factories[:i], s.factories[i+1:]...)
			break
		}
	}
	for _, in := range f.Inputs() {
		ws := s.watchers[in]
		for i, g := range ws {
			if g == f {
				// Copy-on-write removal: notify snapshots the slice header
				// under the lock but pings outside it, so the old backing
				// array must stay intact for concurrent readers (a stale
				// ping to this factory is a no-op once it is killed).
				nw := make([]*Factory, 0, len(ws)-1)
				nw = append(nw, ws[:i]...)
				ws = append(nw, ws[i+1:]...)
				break
			}
		}
		if len(ws) == 0 {
			delete(s.watchers, in)
			in.SetOnAppend(nil)
		} else {
			s.watchers[in] = ws
		}
	}
	s.mu.Unlock()
	if f.killed.CompareAndSwap(false, true) {
		close(f.kill)
	}
}

// Stop terminates the factory goroutines and waits for in-flight firings to
// complete.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	close(s.stop)
	s.mu.Unlock()
	s.wg.Wait()
}

// RunUntilQuiescent fires enabled factories on the calling goroutine until
// none is enabled, returning the number of firings. maxFires of 0 means
// unbounded; cyclic networks should pass a bound.
func (s *Scheduler) RunUntilQuiescent(maxFires int) (int, error) {
	s.mu.Lock()
	fs := append([]*Factory(nil), s.factories...)
	s.mu.Unlock()
	fires := 0
	for {
		progress := false
		for _, f := range fs {
			if !f.fireable() {
				continue
			}
			fired, err := f.TryFire()
			if err != nil {
				return fires, fmt.Errorf("core: factory %s: %w", f.Name(), err)
			}
			if fired {
				fires++
				progress = true
				if maxFires > 0 && fires >= maxFires {
					return fires, nil
				}
			}
		}
		if !progress {
			return fires, nil
		}
	}
}

// Quiescent reports whether no factory is currently firing and none is
// enabled. A true result is a snapshot: new input can enable factories
// immediately after.
func (s *Scheduler) Quiescent() bool {
	if s.active.Load() != 0 {
		return false
	}
	s.mu.Lock()
	fs := append([]*Factory(nil), s.factories...)
	s.mu.Unlock()
	for _, f := range fs {
		// Cheap lock-free screen first; confirm under locks so a guarded
		// factory sitting on residual tuples does not block quiescence.
		if f.fireable() && f.Enabled() {
			return false
		}
	}
	return s.active.Load() == 0
}

// WaitQuiescent polls until the network is quiescent or the timeout
// elapses. It is intended for tests and benchmark harnesses that feed a
// known amount of input and want to observe the drained state.
func (s *Scheduler) WaitQuiescent(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if s.Quiescent() {
			// Double-check after a short settle to avoid racing a
			// factory that is between firings.
			time.Sleep(50 * time.Microsecond)
			if s.Quiescent() {
				return true
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}
