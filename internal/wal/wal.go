// Package wal is the durable half of the ingest periphery: a per-stream
// write-ahead log of the binary ingest wire frames. The wire format is
// already a log record — length-prefixed, CRC'd, self-delimiting — so the
// log appends accepted frames verbatim to segment files, batches fsyncs
// (group commit on a byte threshold or a background interval), rotates
// segments, and stamps a monotonic frame sequence number into each
// segment header. On open it repairs a torn tail, and replay hands the
// surviving frames back in order so recovery can drive them through the
// engine's normal append/router path.
//
// Failure semantics follow the process, not the API: a simulated or real
// crash loses buffered-but-unflushed records (exactly what kill -9 loses
// from a bufio layer) while flushed records survive in the page cache,
// and a failed fsync poisons the log — subsequent appends return the sync
// error instead of silently claiming durability.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"datacell/internal/bat"
	"datacell/internal/faultpoint"
	"datacell/internal/ingest"
)

// Aliases keeping the scanner readable: the record body format is the
// ingest wire format, validated by the same code both on the socket and on
// disk.
const ingestHeaderSize = ingest.WireHeaderSize

var (
	frameSize   = ingest.FrameSize
	verifyFrame = ingest.VerifyFrame
)

// Faultpoint sites threaded through the log. Tests arm them via
// internal/faultpoint; disarmed they cost one atomic load.
const (
	// FaultAppend fires in LogBatch before the record is buffered: Err
	// rejects the batch cleanly, Short persists a torn half-record and
	// crashes, Crash dies before writing.
	FaultAppend = "wal.append"
	// FaultSync fires in sync before flush+fsync: Err poisons the log
	// like a real fsync failure, Crash dies with buffered records unflushed.
	FaultSync = "wal.sync"
	// FaultSynced fires immediately after a successful fsync: Crash dies
	// with everything durable.
	FaultSynced = "wal.synced"
)

var (
	// ErrCrashed is returned by operations on a log that simulated a crash.
	ErrCrashed = errors.New("wal: log crashed")
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
)

// Options tune a Log. Zero values take the defaults noted on each field.
type Options struct {
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size. Default 64 MiB.
	SegmentBytes int
	// SyncInterval is the group-commit tick: a background goroutine
	// flushes and fsyncs any pending records this often. Default 2ms.
	SyncInterval time.Duration
	// SyncBytes flushes and fsyncs inline once this many record bytes are
	// pending, bounding the unsynced window under burst load. Default 1 MiB.
	SyncBytes int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 2 * time.Millisecond
	}
	if o.SyncBytes <= 0 {
		o.SyncBytes = 1 << 20
	}
	return o
}

// OpenInfo reports what Open found and repaired.
type OpenInfo struct {
	Segments        int
	Frames          int    // intact frames surviving in the log
	LastSeq         uint64 // sequence number of the last intact frame
	Checkpoint      uint64 // replay starts after this sequence number
	TruncatedBytes  int64  // torn-tail bytes removed from the final segment
	RemovedSegments int    // headless tail segments deleted outright
}

// Stats are cumulative counters for one log.
type Stats struct {
	Frames    uint64 // frame records appended
	Bytes     uint64 // record bytes appended (including record kind bytes)
	Syncs     uint64 // fsync batches issued
	Rotations uint64 // segment rotations
	// Group-commit batch accounting: a batch is the run of frames one
	// successful sync makes durable together. Empty syncs (ticker flushes
	// with nothing pending) are not counted, so BatchFrames/Batches is the
	// true mean commit batch size and MaxBatch its peak.
	Batches     uint64
	BatchFrames uint64
	MaxBatch    uint64
}

// Log is a single stream's write-ahead log: an append-only sequence of
// wire frames across rotated segment files. All methods are safe for
// concurrent use; appends from many receptor shards serialize on one
// mutex and share one group-commit window.
type Log struct {
	dir  string
	opts Options

	mu          sync.Mutex
	f           *os.File
	w           *bufWriter
	enc         []byte // reused frame-encode buffer
	seq         uint64 // sequence number of the next frame
	ckpt        uint64
	segSize     int64
	pending     int    // record bytes since the last sync
	batchFrames uint64 // frames since the last sync (group-commit batch)
	stats       Stats
	crashed     bool
	closed      bool
	failed      error // first sync failure; poisons the log

	stop chan struct{}
	done chan struct{}
}

// bufWriter is a tiny bufio.Writer replacement whose buffer we can drop on
// a simulated crash: exactly the bytes a real process death would lose.
type bufWriter struct {
	f   *os.File
	buf []byte
}

func (b *bufWriter) write(p []byte) {
	b.buf = append(b.buf, p...)
}

func (b *bufWriter) writeByte(c byte) {
	b.buf = append(b.buf, c)
}

func (b *bufWriter) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	_, err := b.f.Write(b.buf)
	b.buf = b.buf[:0]
	return err
}

// Open opens (creating if needed) the write-ahead log in dir, scanning
// every segment, verifying frame CRCs, deleting a headless tail segment
// and truncating a torn tail so the log ends at its last intact record.
func Open(dir string, opts Options) (*Log, *OpenInfo, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	d, err := scanDir(dir, ^uint64(0), nil)
	if err != nil {
		return nil, nil, err
	}
	info := &OpenInfo{
		Segments:   len(d.segs),
		Frames:     d.frames,
		LastSeq:    d.lastSeq(),
		Checkpoint: d.ckpt,
	}
	// Repair the tail: a headless final segment carries nothing and is
	// removed; a torn final segment is truncated to its last intact record.
	if n := len(d.segs); n > 0 {
		s := &d.segs[n-1]
		if s.headless {
			if err := os.Remove(s.path); err != nil {
				return nil, nil, fmt.Errorf("wal: removing headless segment: %w", err)
			}
			info.RemovedSegments++
			info.TruncatedBytes += s.size
			info.Segments--
			d.segs = d.segs[:n-1]
		} else if s.size > s.validEnd {
			if err := os.Truncate(s.path, s.validEnd); err != nil {
				return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			info.TruncatedBytes += s.size - s.validEnd
		}
	}

	l := &Log{
		dir:  dir,
		opts: opts,
		seq:  d.nextSeq,
		ckpt: d.ckpt,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if n := len(d.segs); n > 0 {
		s := &d.segs[n-1]
		f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		l.f = f
		l.segSize = s.validEnd
	} else {
		if err := l.newSegmentLocked(); err != nil {
			return nil, nil, err
		}
	}
	l.w = &bufWriter{f: l.f, buf: make([]byte, 0, 256<<10)}
	go l.syncLoop()
	return l, info, nil
}

// newSegmentLocked creates the segment whose first frame will be l.seq and
// makes it current. The header goes straight to the file so a fresh
// segment is never headless unless the creating write itself tore.
func (l *Log) newSegmentLocked() error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.seq)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var head [segHeaderSize]byte
	copy(head[:4], segMagic[:])
	head[4] = segVersion
	binary.LittleEndian.PutUint64(head[8:], l.seq)
	if _, err := f.Write(head[:]); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segSize = segHeaderSize
	if l.w != nil {
		l.w.f = f
	}
	return nil
}

func (l *Log) stateErrLocked() error {
	switch {
	case l.crashed:
		return ErrCrashed
	case l.closed:
		return ErrClosed
	case l.failed != nil:
		return fmt.Errorf("wal: log failed: %w", l.failed)
	}
	return nil
}

// LogBatch encodes rel (user columns, schema order) as one wire frame and
// appends it, returning the frame's sequence number. The frame is durable
// after the next group commit, not on return. The encode buffer is reused,
// so steady-state appends stay allocation-free.
func (l *Log) LogBatch(rel *bat.Relation) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.stateErrLocked(); err != nil {
		return 0, err
	}
	enc, err := ingest.AppendFrame(l.enc[:0], rel)
	if err != nil {
		return 0, err
	}
	l.enc = enc

	switch act, ferr := faultpoint.Check(FaultAppend); act {
	case faultpoint.Err:
		return 0, ferr
	case faultpoint.Short:
		// Tear the record on disk: persist the kind byte plus half the
		// frame, fsync so the torn prefix genuinely survives, then die.
		l.w.flush()
		l.f.Write(append([]byte{kindFrame}, enc[:len(enc)/2]...))
		l.f.Sync()
		l.crashLocked()
		return 0, ErrCrashed
	case faultpoint.Crash:
		l.crashLocked()
		return 0, ErrCrashed
	}

	recLen := 1 + len(enc)
	if l.segSize+int64(recLen) > int64(l.opts.SegmentBytes) && l.segSize > segHeaderSize {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	l.w.writeByte(kindFrame)
	l.w.write(enc)
	seq := l.seq
	l.seq++
	l.segSize += int64(recLen)
	l.pending += recLen
	l.stats.Frames++
	l.stats.Bytes += uint64(recLen)
	l.batchFrames++
	if l.pending >= l.opts.SyncBytes {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// rotateLocked seals the current segment (flush + fsync) and starts the
// next one.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	if err := l.newSegmentLocked(); err != nil {
		return err
	}
	l.stats.Rotations++
	return nil
}

// syncLocked is one group commit: flush buffered records and fsync.
func (l *Log) syncLocked() error {
	switch act, ferr := faultpoint.Check(FaultSync); act {
	case faultpoint.Err:
		l.failed = ferr
		return fmt.Errorf("wal: log failed: %w", ferr)
	case faultpoint.Crash, faultpoint.Short:
		l.crashLocked()
		return ErrCrashed
	}
	if err := l.w.flush(); err != nil {
		l.failed = err
		return fmt.Errorf("wal: log failed: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.failed = err
		return fmt.Errorf("wal: log failed: %w", err)
	}
	l.pending = 0
	l.stats.Syncs++
	if l.batchFrames > 0 {
		l.stats.Batches++
		l.stats.BatchFrames += l.batchFrames
		if l.batchFrames > l.stats.MaxBatch {
			l.stats.MaxBatch = l.batchFrames
		}
		l.batchFrames = 0
	}
	if act, _ := faultpoint.Check(FaultSynced); act == faultpoint.Crash || act == faultpoint.Short {
		l.crashLocked()
		return ErrCrashed
	}
	return nil
}

// crashLocked simulates abrupt process death at this point: if a real
// crash function is installed (subprocess tests exit here) it never
// returns; otherwise buffered-unflushed records are dropped — what the
// kernel never saw — the file is closed, and the log refuses further use.
func (l *Log) crashLocked() {
	if faultpoint.CrashNow() {
		return // unreachable when the crash fn exits the process
	}
	l.crashed = true
	l.w.buf = l.w.buf[:0]
	if l.f != nil {
		l.f.Close()
	}
}

// syncLoop is the group-commit metronome.
func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.pending > 0 && l.stateErrLocked() == nil {
				l.syncLocked() //nolint:errcheck // poisons l.failed; next append surfaces it
			}
			l.mu.Unlock()
		}
	}
}

// Sync forces a group commit now.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.stateErrLocked(); err != nil {
		return err
	}
	return l.syncLocked()
}

// WriteCheckpoint durably records that every frame up to LastSeq has been
// consumed by the kernel, so recovery replays only frames after it. It is
// a no-op when nothing new was logged since the last checkpoint.
func (l *Log) WriteCheckpoint() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.stateErrLocked(); err != nil {
		return err
	}
	seq := l.seq - 1
	if seq == l.ckpt {
		return nil
	}
	var rec [13]byte
	rec[0] = kindCheckpoint
	binary.LittleEndian.PutUint64(rec[1:], seq)
	binary.LittleEndian.PutUint32(rec[9:], crc32.ChecksumIEEE(rec[1:9]))
	l.w.write(rec[:])
	l.segSize += int64(len(rec))
	l.pending += len(rec)
	if err := l.syncLocked(); err != nil {
		return err
	}
	l.ckpt = seq
	return nil
}

// Tail replays every intact frame with sequence number greater than from,
// in order. Callers recovering a stream pass max(Checkpoint, already
// replayed); passing Checkpoint() replays exactly the un-checkpointed
// tail. Pending records are flushed first so the scan sees them.
func (l *Log) Tail(from uint64, emit func(seq uint64, frame []byte) error) error {
	l.mu.Lock()
	if !l.crashed && !l.closed {
		if err := l.w.flush(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	l.mu.Unlock()
	_, err := Scan(l.dir, from, emit)
	return err
}

// LastSeq returns the sequence number of the most recently appended frame
// (0 when the log is empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq - 1
}

// Checkpoint returns the highest checkpointed sequence number.
func (l *Log) Checkpoint() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckpt
}

// Stats returns cumulative counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Prune deletes whole segments every frame of which has sequence number
// ≤ upTo, never touching the current segment. History readers
// (LineSource) lose access to pruned frames, so the engine does not prune
// automatically; it is an operator decision.
func (l *Log) Prune(upTo uint64) (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	names, err := listSegments(l.dir)
	if err != nil {
		return 0, err
	}
	for i := 0; i+1 < len(names); i++ {
		// A segment is fully covered when the next segment starts at or
		// below upTo+1 (frame seqs are contiguous across segments).
		nextFirst, perr := parseSegName(names[i+1])
		if perr != nil || nextFirst > upTo+1 {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, names[i])); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}

func parseSegName(name string) (uint64, error) {
	var seq uint64
	_, err := fmt.Sscanf(name, "%016x"+segSuffix, &seq)
	return seq, err
}

// Crash simulates abrupt process death from outside (Engine.Kill):
// buffered records are dropped, the file closes, and every subsequent
// operation returns ErrCrashed. Unlike a faultpoint-triggered crash it
// never invokes the installed crash function — the caller is simulating,
// not dying.
func (l *Log) Crash() {
	l.mu.Lock()
	if !l.crashed {
		l.crashed = true
		l.w.buf = l.w.buf[:0]
		if l.f != nil {
			l.f.Close()
		}
	}
	l.mu.Unlock()
	l.stopSyncLoop()
}

// Close flushes and fsyncs pending records and closes the log. A crashed
// log closes without touching the file again.
func (l *Log) Close() error {
	l.stopSyncLoop()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.crashed {
		return nil
	}
	var err error
	if l.failed == nil {
		err = l.syncLockedIgnoringClosed()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncLockedIgnoringClosed lets Close run the final sync after setting
// l.closed (syncLocked itself has no state check, but keep the intent
// explicit at the call site).
func (l *Log) syncLockedIgnoringClosed() error { return l.syncLocked() }

func (l *Log) stopSyncLoop() {
	l.mu.Lock()
	select {
	case <-l.stop:
		l.mu.Unlock()
		return
	default:
		close(l.stop)
	}
	l.mu.Unlock()
	<-l.done
}

// Compile-time check: *Log satisfies the receptor tee interface.
var _ interface {
	LogBatch(rel *bat.Relation) (uint64, error)
} = (*Log)(nil)
