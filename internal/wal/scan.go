package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment file layout:
//
//	offset 0   magic  "DCWL"
//	offset 4   version (currently 1)
//	offset 5   3 reserved bytes (zero)
//	offset 8   first frame sequence number in this segment (uint64 LE)
//	offset 16  records:
//	           'F' + one binary ingest frame, verbatim (self-delimiting:
//	               its 12-byte header carries the payload length, its CRC
//	               covers the payload) — consumes one sequence number
//	           'C' + checkpoint seq (uint64 LE) + CRC-32 IEEE over those
//	               8 bytes — consumes no sequence number
//
// Frame sequence numbers are implicit: the i-th frame record of a segment
// has seq firstSeq+i, and consecutive segments must be seq-contiguous.
// Everything after the last intact record of the *last* segment is a torn
// tail (the write that died mid-crash) and is truncated on open; a tear or
// gap anywhere else is hard corruption and refuses to open.
const (
	segHeaderSize = 16
	segVersion    = 1
	segSuffix     = ".seg"

	kindFrame      = 'F'
	kindCheckpoint = 'C'
)

var segMagic = [4]byte{'D', 'C', 'W', 'L'}

type segInfo struct {
	path     string
	firstSeq uint64
	frames   int
	ckpt     uint64 // highest intact checkpoint record, 0 if none
	validEnd int64  // offset just past the last intact record
	size     int64  // file size on disk
	torn     bool   // scan stopped before EOF (torn or corrupt tail)
	headless bool   // missing/short/corrupt segment header
}

func (s *segInfo) nextSeq() uint64 { return s.firstSeq + uint64(s.frames) }

// segName returns the canonical file name of the segment whose first frame
// has the given sequence number.
func segName(firstSeq uint64) string {
	return fmt.Sprintf("%016x%s", firstSeq, segSuffix)
}

// listSegments returns the segment files of dir in sequence order.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		if _, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64); err != nil {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// scanSegment reads one segment file, validating every record, and calls
// emit (when non-nil) with each intact frame and its sequence number. It
// never modifies the file: tears are reported via the returned segInfo.
func scanSegment(path string, from uint64, emit func(seq uint64, frame []byte) error) (segInfo, error) {
	info := segInfo{path: path}
	f, err := os.Open(path)
	if err != nil {
		return info, err
	}
	defer f.Close()
	if st, err := f.Stat(); err == nil {
		info.size = st.Size()
	}

	br := bufio.NewReaderSize(f, 256<<10)
	var head [segHeaderSize]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		info.headless = true
		return info, nil
	}
	if [4]byte(head[:4]) != segMagic || head[4] != segVersion {
		info.headless = true
		return info, nil
	}
	info.firstSeq = binary.LittleEndian.Uint64(head[8:])
	info.validEnd = segHeaderSize

	var frame []byte
	offset := int64(segHeaderSize)
	seq := info.firstSeq
	for {
		kind, err := br.ReadByte()
		if err != nil {
			return info, nil // clean end of segment
		}
		switch kind {
		case kindFrame:
			if cap(frame) < ingestHeaderSize {
				frame = make([]byte, 0, 4096)
			}
			frame = frame[:ingestHeaderSize]
			if _, err := io.ReadFull(br, frame); err != nil {
				info.torn = true
				return info, nil
			}
			size, err := frameSize(frame)
			if err != nil {
				info.torn = true
				return info, nil
			}
			if cap(frame) < size {
				grown := make([]byte, size)
				copy(grown, frame)
				frame = grown
			}
			frame = frame[:size]
			if _, err := io.ReadFull(br, frame[ingestHeaderSize:]); err != nil {
				info.torn = true
				return info, nil
			}
			if err := verifyFrame(frame); err != nil {
				info.torn = true
				return info, nil
			}
			if emit != nil && seq > from {
				if err := emit(seq, frame); err != nil {
					return info, err
				}
			}
			seq++
			info.frames++
			offset += int64(1 + size)
			info.validEnd = offset
		case kindCheckpoint:
			var rec [12]byte
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				info.torn = true
				return info, nil
			}
			if crc32.ChecksumIEEE(rec[:8]) != binary.LittleEndian.Uint32(rec[8:]) {
				info.torn = true
				return info, nil
			}
			cp := binary.LittleEndian.Uint64(rec[:8])
			if cp > info.ckpt {
				info.ckpt = cp
			}
			offset += 13
			info.validEnd = offset
		default:
			info.torn = true
			return info, nil
		}
	}
}

// dirInfo summarizes a scan of every segment in a log directory.
type dirInfo struct {
	segs    []segInfo
	nextSeq uint64 // 1 + last frame seq (1 when the log is empty)
	ckpt    uint64 // highest checkpoint across segments, clamped to lastSeq
	frames  int
}

func (d *dirInfo) lastSeq() uint64 { return d.nextSeq - 1 }

// scanDir scans every segment of dir in order, emitting intact frames with
// seq > from. A torn or headless tail segment is tolerated (recovery
// truncates it); a tear, gap or bad header anywhere earlier is hard
// corruption and returns an error.
func scanDir(dir string, from uint64, emit func(seq uint64, frame []byte) error) (dirInfo, error) {
	d := dirInfo{nextSeq: 1}
	names, err := listSegments(dir)
	if err != nil {
		return d, err
	}
	for i, name := range names {
		last := i == len(names)-1
		info, err := scanSegment(filepath.Join(dir, name), from, emit)
		if err != nil {
			return d, err
		}
		if info.headless {
			if !last {
				return d, fmt.Errorf("wal: segment %s mid-log has a corrupt header", name)
			}
			d.segs = append(d.segs, info)
			return d, nil
		}
		if (info.torn || info.size > info.validEnd) && !last {
			return d, fmt.Errorf("wal: segment %s is corrupt mid-log", name)
		}
		if len(d.segs) > 0 {
			prev := &d.segs[len(d.segs)-1]
			if !prev.headless && info.firstSeq != prev.nextSeq() {
				return d, fmt.Errorf("wal: segment %s starts at seq %d, want %d (gap)",
					name, info.firstSeq, prev.nextSeq())
			}
		}
		d.segs = append(d.segs, info)
		d.nextSeq = info.nextSeq()
		d.frames += info.frames
		if info.ckpt > d.ckpt {
			d.ckpt = info.ckpt
		}
	}
	if d.ckpt > d.lastSeq() {
		// A checkpoint past the last surviving frame (e.g. the checkpointed
		// frames themselves were torn away) must not suppress future frames.
		d.ckpt = d.lastSeq()
	}
	return d, nil
}

// ScanInfo summarizes a read-only Scan of a log directory.
type ScanInfo struct {
	Segments   int
	Frames     int    // intact frames in the log (not just those emitted)
	LastSeq    uint64 // sequence number of the last intact frame, 0 if none
	Checkpoint uint64 // highest intact checkpoint, clamped to LastSeq
	Torn       bool   // the final segment ends in a torn record
}

// Scan reads the WAL directory without modifying it, calling emit with
// every intact frame whose sequence number is greater than from, in order.
// A torn tail on the final segment stops the scan cleanly (Torn is set); a
// tear anywhere else is an error. It is safe on a directory that a live
// Log is still appending to — the scan simply stops at the last intact
// record it can see.
func Scan(dir string, from uint64, emit func(seq uint64, frame []byte) error) (ScanInfo, error) {
	d, err := scanDir(dir, from, emit)
	if err != nil {
		return ScanInfo{}, err
	}
	info := ScanInfo{
		Segments:   len(d.segs),
		Frames:     d.frames,
		LastSeq:    d.lastSeq(),
		Checkpoint: d.ckpt,
	}
	if n := len(d.segs); n > 0 {
		s := &d.segs[n-1]
		info.Torn = s.torn || s.headless || s.size > s.validEnd
	}
	return info, nil
}
