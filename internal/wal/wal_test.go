package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"datacell/internal/bat"
	"datacell/internal/faultpoint"
	"datacell/internal/ingest"
	"datacell/internal/vector"
)

var (
	testNames = []string{"k", "v"}
	testTypes = []vector.Type{vector.Int, vector.Int}
)

// manualSync are options that never sync in the background, so tests
// control exactly what is flushed and what a crash loses.
func manualSync() Options {
	return Options{SyncInterval: time.Hour, SyncBytes: 1 << 30}
}

func testRel(t *testing.T, rows ...[2]int64) *bat.Relation {
	t.Helper()
	rel := bat.NewEmptyRelation(testNames, testTypes)
	for _, r := range rows {
		rel.AppendRow(vector.NewInt(r[0]), vector.NewInt(r[1]))
	}
	return rel
}

func mustLog(t *testing.T, l *Log, rows ...[2]int64) uint64 {
	t.Helper()
	seq, err := l.LogBatch(testRel(t, rows...))
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// collect replays the log from `from` and returns the decoded rows per
// frame sequence number.
func collect(t *testing.T, dir string, from uint64) (seqs []uint64, rows [][2]int64) {
	t.Helper()
	br := bufio.NewReader(nil)
	fr := ingest.NewFrameReader(br, testTypes)
	rel := bat.NewEmptyRelation(testNames, testTypes)
	_, err := Scan(dir, from, func(seq uint64, frame []byte) error {
		br.Reset(bytes.NewReader(frame))
		rel.Clear()
		if _, err := fr.DecodeFrameInto(rel); err != nil {
			return err
		}
		seqs = append(seqs, seq)
		for i := 0; i < rel.Len(); i++ {
			rows = append(rows, [2]int64{rel.Col(0).Ints()[i], rel.Col(1).Ints()[i]})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return seqs, rows
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, info, err := Open(dir, manualSync())
	if err != nil {
		t.Fatal(err)
	}
	if info.Frames != 0 || info.LastSeq != 0 {
		t.Fatalf("fresh open info = %+v", info)
	}
	if seq := mustLog(t, l, [2]int64{1, 10}, [2]int64{2, 20}); seq != 1 {
		t.Fatalf("first seq = %d, want 1", seq)
	}
	if seq := mustLog(t, l, [2]int64{3, 30}); seq != 2 {
		t.Fatalf("second seq = %d, want 2", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, info, err := Open(dir, manualSync())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.Frames != 2 || info.LastSeq != 2 || info.TruncatedBytes != 0 {
		t.Fatalf("reopen info = %+v", info)
	}
	if l2.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d", l2.LastSeq())
	}
	seqs, rows := collect(t, dir, 0)
	wantRows := [][2]int64{{1, 10}, {2, 20}, {3, 30}}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("seqs = %v", seqs)
	}
	for i, w := range wantRows {
		if rows[i] != w {
			t.Fatalf("rows = %v, want %v", rows, wantRows)
		}
	}
	// Appends after reopen continue the sequence.
	if seq := mustLog(t, l2, [2]int64{4, 40}); seq != 3 {
		t.Fatalf("post-reopen seq = %d, want 3", seq)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, manualSync())
	if err != nil {
		t.Fatal(err)
	}
	mustLog(t, l, [2]int64{1, 10})
	mustLog(t, l, [2]int64{2, 20})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail by hand: append a frame record cut off mid-payload.
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0])
	frame, err := ingest.AppendFrame(nil, testRel(t, [2]int64{9, 90}))
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte{kindFrame}, frame[:len(frame)-3]...)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(torn)
	f.Close()
	pre, _ := os.Stat(path)

	si, err := Scan(dir, 0, nil)
	if err != nil || !si.Torn || si.Frames != 2 {
		t.Fatalf("scan of torn log = %+v, %v", si, err)
	}

	l2, info, err := Open(dir, manualSync())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.Frames != 2 || info.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("repair info = %+v (torn %d bytes, pre-size %d)", info, len(torn), pre.Size())
	}
	if _, rows := collect(t, dir, 0); len(rows) != 2 {
		t.Fatalf("rows after repair = %v", rows)
	}
	// The repaired log accepts appends at the right seq.
	if seq := mustLog(t, l2, [2]int64{3, 30}); seq != 3 {
		t.Fatalf("post-repair seq = %d, want 3", seq)
	}
}

func TestHeadlessTailSegmentRemoved(t *testing.T) {
	for _, size := range []int{0, 7} { // empty file; partial header
		dir := t.TempDir()
		l, _, err := Open(dir, manualSync())
		if err != nil {
			t.Fatal(err)
		}
		mustLog(t, l, [2]int64{1, 10})
		l.Close()
		path := filepath.Join(dir, segName(99))
		if err := os.WriteFile(path, bytes.Repeat([]byte{0xAB}, size), 0o644); err != nil {
			t.Fatal(err)
		}
		l2, info, err := Open(dir, manualSync())
		if err != nil {
			t.Fatalf("open with %d-byte headless segment: %v", size, err)
		}
		if info.RemovedSegments != 1 || info.Frames != 1 {
			t.Fatalf("info = %+v", info)
		}
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("headless segment still present")
		}
		l2.Close()
	}
}

func TestCheckpointBeyondLastFrameClamped(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, manualSync())
	if err != nil {
		t.Fatal(err)
	}
	mustLog(t, l, [2]int64{1, 10})
	l.Close()
	// Hand-craft a checkpoint record claiming seq 99 was consumed.
	segs, _ := listSegments(dir)
	var rec [13]byte
	rec[0] = kindCheckpoint
	binary.LittleEndian.PutUint64(rec[1:], 99)
	binary.LittleEndian.PutUint32(rec[9:], crc32.ChecksumIEEE(rec[1:9]))
	f, _ := os.OpenFile(filepath.Join(dir, segs[0]), os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write(rec[:])
	f.Close()

	l2, info, err := Open(dir, manualSync())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.Checkpoint != 1 {
		t.Fatalf("checkpoint = %d, want clamped to 1", info.Checkpoint)
	}
	replayed := 0
	if err := l2.Tail(l2.Checkpoint(), func(uint64, []byte) error { replayed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("tail replayed %d frames past a full checkpoint", replayed)
	}
	// New frames after the clamped checkpoint do replay.
	mustLog(t, l2, [2]int64{2, 20})
	if err := l2.Tail(l2.Checkpoint(), func(uint64, []byte) error { replayed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if replayed != 1 {
		t.Fatalf("new frame not replayed (%d)", replayed)
	}
}

func TestCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, manualSync())
	if err != nil {
		t.Fatal(err)
	}
	mustLog(t, l, [2]int64{1, 10})
	mustLog(t, l, [2]int64{2, 20})
	if err := l.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	mustLog(t, l, [2]int64{3, 30})
	l.Close()

	l2, info, err := Open(dir, manualSync())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.Checkpoint != 2 || info.LastSeq != 3 {
		t.Fatalf("info = %+v", info)
	}
	var seqs []uint64
	if err := l2.Tail(l2.Checkpoint(), func(seq uint64, _ []byte) error {
		seqs = append(seqs, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0] != 3 {
		t.Fatalf("tail seqs = %v, want [3]", seqs)
	}
	// Checkpoint with nothing new is a durable no-op.
	if err := l2.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l2.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if l2.Checkpoint() != 3 {
		t.Fatalf("checkpoint = %d, want 3", l2.Checkpoint())
	}
}

func TestSegmentRotationAndOrder(t *testing.T) {
	dir := t.TempDir()
	opts := manualSync()
	opts.SegmentBytes = 256 // rotate every few frames
	l, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		mustLog(t, l, [2]int64{int64(i), int64(i * 10)})
	}
	if l.Stats().Rotations == 0 {
		t.Fatalf("no rotations with %d-byte segments", opts.SegmentBytes)
	}
	l.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("segments = %v", segs)
	}
	seqs, rows := collect(t, dir, 0)
	if len(seqs) != n {
		t.Fatalf("replayed %d frames, want %d", len(seqs), n)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seqs = %v", seqs)
		}
		if rows[i] != [2]int64{int64(i), int64(i * 10)} {
			t.Fatalf("row %d = %v", i, rows[i])
		}
	}
}

func TestCrashLosesBufferedKeepsSynced(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, manualSync())
	if err != nil {
		t.Fatal(err)
	}
	mustLog(t, l, [2]int64{1, 10})
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	mustLog(t, l, [2]int64{2, 20}) // buffered, never flushed
	l.Crash()
	if _, err := l.LogBatch(testRel(t, [2]int64{3, 30})); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append on crashed log = %v", err)
	}
	if err := l.WriteCheckpoint(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("checkpoint on crashed log = %v", err)
	}
	_, rows := collect(t, dir, 0)
	if len(rows) != 1 || rows[0] != [2]int64{1, 10} {
		t.Fatalf("durable rows = %v, want only the synced frame", rows)
	}
}

func TestFaultpointShortWriteRepaired(t *testing.T) {
	defer faultpoint.Clear()
	dir := t.TempDir()
	l, _, err := Open(dir, manualSync())
	if err != nil {
		t.Fatal(err)
	}
	mustLog(t, l, [2]int64{1, 10})
	faultpoint.Inject(FaultAppend, faultpoint.Short, 0, nil)
	if _, err := l.LogBatch(testRel(t, [2]int64{2, 20})); !errors.Is(err, ErrCrashed) {
		t.Fatalf("short write = %v, want ErrCrashed", err)
	}
	si, err := Scan(dir, 0, nil)
	if err != nil || !si.Torn {
		t.Fatalf("expected a torn tail on disk, got %+v, %v", si, err)
	}
	l2, info, err := Open(dir, manualSync())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.Frames != 1 || info.TruncatedBytes == 0 {
		t.Fatalf("repair info = %+v", info)
	}
}

func TestFaultpointSyncErrorPoisonsLog(t *testing.T) {
	defer faultpoint.Clear()
	dir := t.TempDir()
	l, _, err := Open(dir, manualSync())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustLog(t, l, [2]int64{1, 10})
	faultpoint.Inject(FaultSync, faultpoint.Err, 0, nil)
	if err := l.Sync(); !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("sync = %v, want injected error", err)
	}
	if _, err := l.LogBatch(testRel(t, [2]int64{2, 20})); !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("append after failed sync = %v, want the poisoning error", err)
	}
}

func TestPrune(t *testing.T) {
	dir := t.TempDir()
	opts := manualSync()
	opts.SegmentBytes = 256
	l, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 50; i++ {
		mustLog(t, l, [2]int64{int64(i), int64(i)})
	}
	l.Sync()
	before, _ := listSegments(dir)
	removed, err := l.Prune(25)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 || removed >= len(before) {
		t.Fatalf("pruned %d of %d segments", removed, len(before))
	}
	// Everything after seq 25 must survive.
	seqs, _ := collect(t, dir, 25)
	if len(seqs) != 25 || seqs[len(seqs)-1] != 50 {
		t.Fatalf("post-prune tail seqs = %v", seqs)
	}
}

func TestLineSource(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, manualSync())
	if err != nil {
		t.Fatal(err)
	}
	mustLog(t, l, [2]int64{1, 10}, [2]int64{2, 20})
	mustLog(t, l, [2]int64{3, 30})
	l.Close()
	src := LineSource(dir, 0, testTypes)
	defer src.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(src); err != nil {
		t.Fatal(err)
	}
	want := "1|10\n2|20\n3|30\n"
	if buf.String() != want {
		t.Fatalf("lines = %q, want %q", buf.String(), want)
	}
	// from skips already-seen frames: frame 1 held the first two rows.
	src2 := LineSource(dir, 1, testTypes)
	defer src2.Close()
	buf.Reset()
	buf.ReadFrom(src2)
	if buf.String() != "3|30\n" {
		t.Fatalf("tail lines = %q", buf.String())
	}
}

func TestLogBatchAllocs(t *testing.T) {
	dir := t.TempDir()
	opts := manualSync() // no inline syncs during the measurement
	l, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rel := testRel(t, [2]int64{1, 10}, [2]int64{2, 20}, [2]int64{3, 30}, [2]int64{4, 40})
	// Warm the encode and record buffers.
	for i := 0; i < 8; i++ {
		if _, err := l.LogBatch(rel); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := l.LogBatch(rel); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("LogBatch allocates %.1f allocs/frame, budget is ≤1", allocs)
	}
}
