package wal

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"datacell/internal/bat"
	"datacell/internal/ingest"
	"datacell/internal/stream"
	"datacell/internal/vector"
)

// LineSource streams the frames of a WAL directory as textual
// pipe-separated tuple lines — the input format stream.Replayer consumes —
// so a late-registered query can read a stream's history from disk instead
// of memory. Frames with sequence number ≤ from are skipped; pass 0 for
// the full history. The returned reader is a live pipe: reading drives the
// scan, and Close stops it.
func LineSource(dir string, from uint64, types []vector.Type) io.ReadCloser {
	names := make([]string, len(types))
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
	}
	pr, pw := io.Pipe()
	go func() {
		rel := bat.NewEmptyRelation(names, types)
		br := bufio.NewReader(nil)
		fr := ingest.NewFrameReader(br, types)
		out := bufio.NewWriterSize(pw, 64<<10)
		_, err := Scan(dir, from, func(seq uint64, frame []byte) error {
			br.Reset(bytes.NewReader(frame))
			rel.Clear()
			if _, derr := fr.DecodeFrameInto(rel); derr != nil {
				return fmt.Errorf("wal: frame %d: %w", seq, derr)
			}
			for _, line := range stream.EncodeRelation(rel, rel.NumCols()) {
				if _, werr := out.WriteString(line); werr != nil {
					return werr
				}
				if werr := out.WriteByte('\n'); werr != nil {
					return werr
				}
			}
			return nil
		})
		if err == nil {
			err = out.Flush()
		}
		pw.CloseWithError(err)
	}()
	return pr
}
