package datacell

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"datacell/internal/ingest"
	"datacell/internal/vector"
)

// ingestQueries is the differential workload: every sargable shape the
// router understands plus a residual-producing feed, so range-routed
// wirings exercise their catch-all.
var ingestQueries = []NamedQuery{
	{Name: "range", SQL: `select t.v from [select * from s where v >= 100 and v < 400] t`},
	{Name: "between", SQL: `select t.k, t.v from [select * from s where v between 250 and 600] t where t.v % 2 = 0`},
	{Name: "orunion", SQL: `select t.v from [select * from s where v < 50 or v >= 900 and v < 950] t`},
}

// ingestRows builds the deterministic feed shared by every differential
// leg: values range to 2000 so every predicate leaves residuals.
func ingestRows(n int, seed int64) [][2]int64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][2]int64, n)
	for i := range rows {
		rows[i] = [2]int64{rng.Int63n(16), rng.Int63n(2000)}
	}
	return rows
}

// ingestWorkload feeds rows over TCP — either k binary sharded
// connections through the route-at-ingest path, or one textual
// connection forced through the stream basket and splitter — and
// returns each query's output as a sorted row multiset.
func ingestWorkload(t *testing.T, strategy Strategy, parallelism int, rows [][2]int64, binary bool, shards int, splitterPath bool) map[string][]string {
	t.Helper()
	eng := New()
	defer eng.Stop()
	if err := eng.SetStrategy(strategy); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelism(parallelism); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQueries(ingestQueries); err != nil {
		t.Fatal(err)
	}
	l, err := eng.ListenIngest("s", "127.0.0.1:0", IngestOptions{
		Shards:       shards,
		BatchSize:    64,
		SplitterPath: splitterPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	addrs := l.Addrs()
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addrs[s%len(addrs)])
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			if binary {
				bw := ingest.NewBatchWriter(conn, []string{"k", "v"}, []vector.Type{vector.Int, vector.Int}, 64)
				for i := s; i < len(rows); i += shards {
					if err := bw.WriteRow(vector.NewInt(rows[i][0]), vector.NewInt(rows[i][1])); err != nil {
						t.Error(err)
						return
					}
				}
				if err := bw.Flush(); err != nil {
					t.Error(err)
				}
			} else {
				w := bufio.NewWriter(conn)
				for i := s; i < len(rows); i += shards {
					fmt.Fprintf(w, "%d|%d\n", rows[i][0], rows[i][1])
				}
				w.Flush()
			}
		}(s)
	}
	wg.Wait()
	waitIngested(t, eng, "s", int64(len(rows)))
	if !eng.Drain(60 * time.Second) {
		t.Fatal("engine did not drain")
	}

	got := map[string][]string{}
	for _, q := range ingestQueries {
		out, err := eng.Out(q.Name)
		if err != nil {
			t.Fatal(err)
		}
		tbl := tableOf(out.Snapshot())
		lines := make([]string, 0, len(tbl.Rows))
		for _, r := range tbl.Rows {
			parts := make([]string, len(r))
			for i, c := range r {
				parts[i] = fmt.Sprint(c)
			}
			lines = append(lines, strings.Join(parts, "|"))
		}
		sort.Strings(lines)
		got[q.Name] = lines
	}
	return got
}

// waitIngested polls until the stream's receptors have delivered n
// tuples into the kernel.
func waitIngested(t *testing.T, eng *Engine, stream string, n int64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		for _, g := range eng.Groups() {
			if g.Stream == stream && g.IngestTuples >= n {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("receptors did not deliver %d tuples in time", n)
}

// TestIngestDifferential is the acceptance differential: for every
// strategy and P ∈ {1, 4}, N tuples over k binary sharded connections
// yield byte-identical query results to the single textual receptor
// forced through the stream basket and splitter — including range-routed
// groups whose catch-all collects residuals.
func TestIngestDifferential(t *testing.T) {
	rows := ingestRows(4000, 7)
	for _, strategy := range []Strategy{StrategySeparate, StrategyShared, StrategyPartial} {
		for _, p := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s_P%d", strategy, p), func(t *testing.T) {
				want := ingestWorkload(t, strategy, p, rows, false, 1, true)
				got := ingestWorkload(t, strategy, p, rows, true, 4, false)
				for name, w := range want {
					g := got[name]
					if len(w) == 0 {
						t.Fatalf("%s produced no rows; differential is vacuous", name)
					}
					if len(g) != len(w) {
						t.Fatalf("%s: binary sharded produced %d rows, textual splitter %d", name, len(g), len(w))
					}
					for i := range w {
						if g[i] != w[i] {
							t.Fatalf("%s: row %d differs: %q vs %q", name, i, g[i], w[i])
						}
					}
				}
			})
		}
	}
}

// TestIngestRouteAtIngestActive pins that under a partitioned
// shared-strategy wiring the receptors really do skip the splitter:
// decoded batches land in partition baskets directly, the stream basket
// stays empty, and Groups reports the route.
func TestIngestRouteAtIngestActive(t *testing.T) {
	eng := New()
	defer eng.Stop()
	if err := eng.SetStrategy(StrategyShared); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select t.v from [select * from s where v >= 0 and v < 1000] t`); err != nil {
		t.Fatal(err)
	}
	l, err := eng.ListenIngest("s", "127.0.0.1:0", IngestOptions{Shards: 2, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, g := range eng.Groups() {
		if g.Stream == "s" {
			found = true
			if !strings.HasPrefix(g.IngestPath, "route-at-ingest") {
				t.Fatalf("ingest path = %q, want route-at-ingest", g.IngestPath)
			}
		}
	}
	if !found {
		t.Fatal("stream s missing from Groups")
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", l.Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	bw := ingest.NewBatchWriter(conn, []string{"k", "v"}, []vector.Type{vector.Int, vector.Int}, 32)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := bw.WriteRow(vector.NewInt(int64(i)), vector.NewInt(int64(i%1000))); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitIngested(t, eng, "s", n)
	if !eng.Drain(30 * time.Second) {
		t.Fatal("engine did not drain")
	}
	// The stream basket never saw the tuples: they were routed at ingest.
	eng.mu.Lock()
	streamAppended := eng.groups["s"].stream.Stats().Appended
	eng.mu.Unlock()
	if streamAppended != 0 {
		t.Fatalf("stream basket ingested %d tuples; route-at-ingest should have bypassed it", streamAppended)
	}
	out, err := eng.Out("q")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != n {
		t.Fatalf("query emitted %d rows, want %d", out.Len(), n)
	}
}

// TestIngestBackpressureStalledFactory is the acceptance backpressure
// test: with the scheduler not yet started (a stalled kernel), binary
// ingest into a partitioned wiring stalls at the high-water mark —
// partition-basket occupancy stays bounded — and once the factories
// start draining, every tuple is processed.
func TestIngestBackpressureStalledFactory(t *testing.T) {
	eng := New()
	defer eng.Stop()
	if err := eng.SetStrategy(StrategyShared); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select t.v from [select * from s where v >= 0 and v < 1000000] t`); err != nil {
		t.Fatal(err)
	}
	const hw, batch, total = 256, 32, 20000
	l, err := eng.ListenIngest("s", "127.0.0.1:0", IngestOptions{BatchSize: batch, HighWater: hw, LowWater: hw / 2})
	if err != nil {
		t.Fatal(err)
	}
	// Engine NOT started: the factories are a stalled kernel.
	done := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", l.Addr())
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		bw := ingest.NewBatchWriter(conn, []string{"k", "v"}, []vector.Type{vector.Int, vector.Int}, batch)
		for i := 0; i < total; i++ {
			if err := bw.WriteRow(vector.NewInt(int64(i)), vector.NewInt(int64(i))); err != nil {
				done <- err
				return
			}
		}
		done <- bw.Flush()
	}()

	// Wait for the stall, then watch occupancy for a while: it must stay
	// bounded by the high-water mark plus one in-flight batch.
	deadline := time.Now().Add(30 * time.Second)
	stalled := false
	for time.Now().Before(deadline) && !stalled {
		for _, g := range eng.Groups() {
			if g.Stream == "s" && g.IngestStalls > 0 {
				stalled = true
			}
		}
		time.Sleep(time.Millisecond)
	}
	if !stalled {
		t.Fatal("receptor never stalled against the stalled kernel")
	}
	maxOcc := 0
	for i := 0; i < 100; i++ {
		eng.mu.Lock()
		for _, pb := range eng.groups["s"].pbs {
			for _, p := range pb.Parts() {
				if n := p.Len(); n > maxOcc {
					maxOcc = n
				}
			}
		}
		eng.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	if maxOcc > hw+batch {
		t.Fatalf("partition occupancy reached %d, want <= high water %d + batch %d", maxOcc, hw, batch)
	}

	// Unstall the kernel: everything must arrive, nothing lost.
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	waitIngested(t, eng, "s", total)
	if !eng.Drain(60 * time.Second) {
		t.Fatal("engine did not drain")
	}
	out, err := eng.Out("q")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != total {
		t.Fatalf("query emitted %d rows, want %d: tuples were lost across the stall", out.Len(), total)
	}
}

// TestIngestLiveReRoute rewires the group — parallelism and strategy
// flips — while binary sharded connections are mid-feed: the quiesced
// sink swaps must neither lose nor duplicate tuples.
func TestIngestLiveReRoute(t *testing.T) {
	eng := New()
	defer eng.Stop()
	if err := eng.SetStrategy(StrategyShared); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select t.v from [select * from s where v >= 0 and v < 500] t`); err != nil {
		t.Fatal(err)
	}
	l, err := eng.ListenIngest("s", "127.0.0.1:0", IngestOptions{Shards: 2, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	const total = 20000 // v = i % 1000: exactly half match
	addrs := l.Addrs()
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addrs[s])
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			bw := ingest.NewBatchWriter(conn, []string{"k", "v"}, []vector.Type{vector.Int, vector.Int}, 16)
			for i := s; i < total; i += 2 {
				if err := bw.WriteRow(vector.NewInt(int64(i)), vector.NewInt(int64(i%1000))); err != nil {
					t.Error(err)
					return
				}
			}
			if err := bw.Flush(); err != nil {
				t.Error(err)
			}
		}(s)
	}

	// Rewire storm while the feed runs.
	for i := 0; i < 6; i++ {
		time.Sleep(5 * time.Millisecond)
		if err := eng.SetParallelism(1 + i%4); err != nil {
			t.Fatal(err)
		}
		st := []Strategy{StrategyShared, StrategySeparate, StrategyPartial}[i%3]
		if err := eng.SetStrategy(st); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	waitIngested(t, eng, "s", total)
	if !eng.Drain(60 * time.Second) {
		t.Fatal("engine did not drain")
	}
	out, err := eng.Out("q")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != total/2 {
		t.Fatalf("query emitted %d rows, want %d (lost or duplicated across rewires)", out.Len(), total/2)
	}
}

// TestListenTCPSpeaksBothProtocols pins backwards compatibility: the
// engine's plain ListenTCP accepts the old textual protocol and the new
// binary frames on the same socket.
func TestListenTCPSpeaksBothProtocols(t *testing.T) {
	eng := New()
	defer eng.Stop()
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select t.v from [select * from s] t`); err != nil {
		t.Fatal(err)
	}
	addr, err := eng.ListenTCP("s", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	tc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(tc, "1|10\n2|20\n")
	tc.Close()

	bc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	bw := ingest.NewBatchWriter(bc, []string{"k", "v"}, []vector.Type{vector.Int, vector.Int}, 8)
	if err := bw.WriteRow(vector.NewInt(3), vector.NewInt(30)); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	bc.Close()

	waitIngested(t, eng, "s", 3)
	if !eng.Drain(30 * time.Second) {
		t.Fatal("engine did not drain")
	}
	out, err := eng.Out("q")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("query emitted %d rows, want 3", out.Len())
	}
}
