package datacell

import (
	"fmt"
	"math/rand"
	"time"
)

// PruneResult is one point of the partition-pruning sweep
// (`microbench -fig prune`): a sargable multi-query workload at one
// (strategy, selectivity, parallelism) setting, with the routing
// counters that separate work reduction from mere placement.
type PruneResult struct {
	Strategy    Strategy
	Parallelism int
	Queries     int
	Tuples      int
	Selectivity float64 // fraction of the value domain the queries cover
	Batch       int
	Elapsed     time.Duration
	Throughput  float64 // stream tuples per second, feed to drain
	Results     int     // result tuples across all queries
	Partitions  int     // partitions the group wiring actually uses
	Routing     string  // installed routing ("range(v)", "round-robin", …)
	// PerClone is the average number of stream tuples routed into each
	// scanned partition of each partitioned wiring — the input a single
	// query clone actually sees. Under blind round-robin placement this
	// would be PlacementPerClone; under range routing it shrinks by the
	// workload's selectivity, because non-matching tuples go to the
	// catch-all instead.
	PerClone          float64
	PlacementPerClone float64 // tuples/P: what blind placement would deliver
	Pruned            int64   // tuples short-circuited to catch-all baskets
}

// RunPrune measures partition pruning end to end: q adjacent
// predicate-window range queries jointly covering the fraction
// `selectivity` of a uniform integer stream, wired at the given strategy
// and parallelism. The plan layer derives each query's sargable interval,
// the group routes tuples by range (union of the members' intervals under
// shared/partial wiring, per-member interval under separate wiring) and
// parks tuples outside every interval in the catch-all, so each clone
// fires over a strict subset of the stream: PerClone ≈ selectivity ×
// PlacementPerClone, the work reduction the paper's P-way split alone
// cannot deliver.
func RunPrune(strategy Strategy, parallelism, q, tuples int, selectivity float64, batch int, seed int64) (PruneResult, error) {
	if selectivity <= 0 || selectivity > 1 {
		return PruneResult{}, fmt.Errorf("datacell: prune selectivity must be in (0,1], got %g", selectivity)
	}
	eng := New()
	defer eng.Stop()
	if err := eng.SetStrategy(strategy); err != nil {
		return PruneResult{}, err
	}
	if err := eng.SetParallelism(parallelism); err != nil {
		return PruneResult{}, err
	}
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		return PruneResult{}, err
	}
	const domain = int64(100_000)
	span := int64(selectivity * float64(domain))
	if span < int64(q) {
		span = int64(q)
	}
	width := span / int64(q)
	queries := make([]NamedQuery, q)
	for i := 0; i < q; i++ {
		lo := int64(i) * width
		hi := lo + width
		queries[i] = NamedQuery{
			Name: fmt.Sprintf("prune_%d", i),
			SQL:  fmt.Sprintf(`select t.v from [select * from s where v >= %d and v < %d] t`, lo, hi),
		}
	}
	if err := eng.RegisterQueries(queries); err != nil {
		return PruneResult{}, err
	}
	if err := eng.Start(); err != nil {
		return PruneResult{}, err
	}
	if batch < 1 {
		batch = tuples
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Row, 0, batch)
	start := time.Now()
	for fed := 0; fed < tuples; {
		n := min(batch, tuples-fed)
		rows = rows[:0]
		for i := 0; i < n; i++ {
			rows = append(rows, Row{rng.Int63n(domain)})
		}
		if err := eng.Append("s", rows...); err != nil {
			return PruneResult{}, err
		}
		fed += n
	}
	if !eng.Drain(120 * time.Second) {
		return PruneResult{}, fmt.Errorf("datacell: prune run (%s, sel=%g, P=%d) did not drain", strategy, selectivity, parallelism)
	}
	elapsed := time.Since(start)
	res := PruneResult{
		Strategy:          strategy,
		Parallelism:       parallelism,
		Queries:           q,
		Tuples:            tuples,
		Selectivity:       selectivity,
		Batch:             batch,
		Elapsed:           elapsed,
		Throughput:        float64(tuples) / elapsed.Seconds(),
		Partitions:        1,
		PerClone:          float64(tuples),
		PlacementPerClone: float64(tuples),
	}
	for i := 0; i < q; i++ {
		out, err := eng.Out(fmt.Sprintf("prune_%d", i))
		if err != nil {
			return PruneResult{}, err
		}
		res.Results += out.Len()
	}
	for _, g := range eng.Groups() {
		if g.Partitions > res.Partitions {
			res.Partitions = g.Partitions
		}
		res.Routing = g.Routing
		res.Pruned += g.Pruned
		if g.Wirings > 0 {
			res.PerClone = float64(g.RoutedParts) / float64(g.Wirings*g.Partitions)
			res.PlacementPerClone = float64(tuples) / float64(g.Partitions)
		}
	}
	return res, nil
}
