package datacell

import (
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"datacell/internal/ingest"
	"datacell/internal/vector"
)

// flipProxy forwards one client connection to backend, XOR-flipping the
// byte at absolute stream offset flipAt — a mid-stream corruption that
// keeps the frame header valid and breaks only the CRC.
func flipProxy(t *testing.T, backend string, flipAt int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		b, err := net.Dial("tcp", backend)
		if err != nil {
			return
		}
		defer b.Close()
		buf := make([]byte, 4096)
		off := 0
		for {
			n, rerr := c.Read(buf)
			if n > 0 {
				if flipAt >= off && flipAt < off+n {
					buf[flipAt-off] ^= 0xFF
				}
				off += n
				if _, werr := b.Write(buf[:n]); werr != nil {
					return
				}
			}
			if rerr != nil {
				return
			}
		}
	}()
	return ln.Addr().String()
}

// TestIngestMidStreamCorruption is the regression for the hardened
// binary failure path: a byte flipped inside a frame's payload fails the
// CRC, the receptor counts the connection invalid and poisons it (frame
// boundaries are lost), the corrupted frame's tuples never reach the
// kernel, and a fresh clean connection works untouched.
func TestIngestMidStreamCorruption(t *testing.T) {
	eng := New()
	defer eng.Stop()
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select t.k, t.v from [select * from s] t`); err != nil {
		t.Fatal(err)
	}
	l, err := eng.ListenIngest("s", "127.0.0.1:0", IngestOptions{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	// Corrupt a payload byte of the first frame: offset just past the
	// 12-byte header, so the magic/length stay intact and only the CRC
	// trips.
	proxyAddr := flipProxy(t, l.Addr(), ingest.WireHeaderSize+2)
	conn, err := net.Dial("tcp", proxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	bw := ingest.NewBatchWriter(conn, []string{"k", "v"}, []vector.Type{vector.Int, vector.Int}, 16)
	for i := 0; i < 80; i++ {
		if err := bw.WriteRow(vector.NewInt(int64(i)), vector.NewInt(int64(i))); err != nil {
			break // server may already have dropped the poisoned conn
		}
	}
	bw.Flush()
	conn.Close()

	// The corrupted connection must be counted invalid and deliver none of
	// the poisoned stream's tuples.
	deadline := time.Now().Add(10 * time.Second)
	invalid := int64(0)
	for time.Now().Before(deadline) && invalid == 0 {
		invalid = 0
		for _, st := range l.Stats() {
			invalid += st.Invalid
		}
		time.Sleep(time.Millisecond)
	}
	if invalid != 1 {
		t.Fatalf("invalid connections = %d, want 1", invalid)
	}

	// A fresh, clean connection is unaffected.
	conn2, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	bw2 := ingest.NewBatchWriter(conn2, []string{"k", "v"}, []vector.Type{vector.Int, vector.Int}, 16)
	const clean = 48
	for i := 0; i < clean; i++ {
		if err := bw2.WriteRow(vector.NewInt(int64(i)), vector.NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw2.Flush(); err != nil {
		t.Fatal(err)
	}
	conn2.Close()
	waitIngested(t, eng, "s", clean)
	if !eng.Drain(30 * time.Second) {
		t.Fatal("engine did not drain")
	}
	out, err := eng.Out("q")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != clean {
		t.Fatalf("query emitted %d rows, want %d: corrupted frames must not deliver", out.Len(), clean)
	}
}

// TestIngestIdleTimeout pins IngestOptions.IdleTimeout: a connection
// that goes silent — mid-stream or straight after connecting — is closed
// by the receptor and counted as timed out, while the tuples it sent
// before the silence are delivered normally.
func TestIngestIdleTimeout(t *testing.T) {
	eng := New()
	defer eng.Stop()
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select t.k, t.v from [select * from s] t`); err != nil {
		t.Fatal(err)
	}
	l, err := eng.ListenIngest("s", "127.0.0.1:0", IngestOptions{
		BatchSize:   4,
		IdleTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	// One connection sends a tuple then goes silent; another never sends a
	// byte (it times out during the protocol sniff).
	talker, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer talker.Close()
	if _, err := fmt.Fprintf(talker, "1|10\n"); err != nil {
		t.Fatal(err)
	}
	silent, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()

	// The server must close both; the reads observe the remote close.
	for _, c := range []net.Conn{talker, silent} {
		c.SetReadDeadline(time.Now().Add(10 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == io.EOF {
			continue
		} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatal("receptor did not close the idle connection")
		}
	}
	timedOut := int64(0)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && timedOut < 2 {
		timedOut = 0
		for _, st := range l.Stats() {
			timedOut += st.TimedOut
		}
		time.Sleep(time.Millisecond)
	}
	if timedOut != 2 {
		t.Fatalf("timed-out connections = %d, want 2", timedOut)
	}

	// The tuple sent before the silence was delivered.
	waitIngested(t, eng, "s", 1)
	if !eng.Drain(30 * time.Second) {
		t.Fatal("engine did not drain")
	}
	out, err := eng.Out("q")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("query emitted %d rows, want 1", out.Len())
	}
}
