package datacell

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// AdminServer is the engine's opt-in observability endpoint: a plain HTTP
// server exposing the metric surface, the consistent snapshot, the event
// trace and the Go runtime profiles of the process the engine runs in.
// Nothing listens until ServeAdmin is called; production data paths are
// untouched by its existence.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition (WriteMetrics)
//	/snapshot      Engine.Snapshot as indented JSON
//	/events        Engine.Events (the trace ring) as indented JSON
//	/debug/pprof/  net/http/pprof index, profile, heap, trace, …
type AdminServer struct {
	eng *Engine
	ln  net.Listener
	srv *http.Server
}

// ServeAdmin starts the admin HTTP server on addr (e.g. ":9090" or
// "127.0.0.1:0") and returns it. The engine tracks at most one admin
// server; Engine.Stop closes it, or call Close directly. The bound
// address is available via Addr (useful with a wildcard port).
func (e *Engine) ServeAdmin(addr string) (*AdminServer, error) {
	e.mu.Lock()
	if e.admin != nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("datacell: admin server already running at %s", e.admin.Addr())
	}
	e.mu.Unlock()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		e.WriteMetrics(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, e.Snapshot())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, e.Events())
	})
	// Explicit pprof routes: the engine must not depend on handlers the
	// process may have hung on http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a := &AdminServer{eng: e, ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}}
	e.mu.Lock()
	if e.admin != nil {
		prev := e.admin
		e.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("datacell: admin server already running at %s", prev.Addr())
	}
	e.admin = a
	e.mu.Unlock()
	go a.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return a, nil
}

// Addr returns the server's bound address.
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close stops the server and releases its port. Idempotent.
func (a *AdminServer) Close() error {
	a.eng.mu.Lock()
	if a.eng.admin == a {
		a.eng.admin = nil
	}
	a.eng.mu.Unlock()
	return a.srv.Close()
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}
